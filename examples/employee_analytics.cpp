// Employee analytics: temporal HR queries over the synthetic employees
// dataset (the paper's Section 10.3 workload domain).
//
// Demonstrates snapshot aggregation with grouping, snapshot joins, the
// ORDER BY workaround for snapshot queries, and the AG-bug fix in a
// realistic reporting scenario: headcount and salary statistics *as of
// every point in time* from a single declarative query.
//
// Build and run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_employee_analytics
#include <cstdio>

#include "datagen/employees.h"
#include "middleware/temporal_db.h"

using namespace periodk;

namespace {

void PrintResult(const char* title, const Result<Relation>& result,
                 size_t limit) {
  std::printf("\n%s\n", title);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s", result->ToString(limit).c_str());
}

}  // namespace

int main() {
  EmployeesConfig config;
  config.num_employees = 120;
  config.domain = TimeDomain{0, 2000};
  TemporalDB db(config.domain);
  if (Status status = LoadEmployees(&db, config); !status.ok()) {
    std::fprintf(stderr, "datagen: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu salary rows for %d employees over %s\n",
              db.catalog().Get("salaries").size(), config.num_employees,
              config.domain.ToString().c_str());

  // 1. Headcount per department over time (snapshot group-by).  The
  //    result is a period relation: one row per department and maximal
  //    interval of constant headcount.
  PrintResult(
      "1. Headcount history per department (first rows)",
      db.Query("SEQ VT (SELECT d.dept_no, count(*) AS headcount "
               "FROM dept_emp d GROUP BY d.dept_no) "
               "ORDER BY dept_no, a_begin"),
      8);

  // 2. Department-level salary statistics at every instant.
  PrintResult(
      "2. Salary statistics for department d1 (first rows)",
      db.Query("SEQ VT (SELECT d.dept_no, min(s.salary) AS lo, "
               "avg(s.salary) AS mean, max(s.salary) AS hi "
               "FROM dept_emp d, salaries s "
               "WHERE d.emp_no = s.emp_no AND d.dept_no = 'd1' "
               "GROUP BY d.dept_no) ORDER BY a_begin"),
      6);

  // 3. How many managers earn above 70k -- a *global* snapshot
  //    aggregation: the count-0 gap rows (AG-bug fix) show exactly when
  //    no manager was that well paid.
  PrintResult(
      "3. Number of managers earning > 70000 over time",
      db.Query("SEQ VT (SELECT count(*) AS wellpaid "
               "FROM dept_manager m, salaries s "
               "WHERE m.emp_no = s.emp_no AND s.salary > 70000) "
               "ORDER BY a_begin"),
      10);

  // 4. Employees who are not currently managers, tracked over time
  //    (snapshot bag difference, the BD-bug fix: an employee managing
  //    one department still appears if employed twice).
  auto diff = db.Query(
      "SEQ VT (SELECT emp_no FROM employees EXCEPT ALL "
      "SELECT emp_no FROM dept_manager)");
  if (!diff.ok()) {
    std::fprintf(stderr, "error: %s\n", diff.status().ToString().c_str());
    return 1;
  }
  std::printf("\n4. Non-manager employee-periods: %zu rows\n", diff->size());

  // 5. Point-in-time audit: reconstruct department d3's roster exactly
  //    at day 1000 using the timeslice operator.
  PrintResult(
      "5. Department d3 roster history (first rows)",
      db.Query("SEQ VT (SELECT e.first_name, e.last_name, s.salary "
               "FROM employees e, dept_emp d, salaries s "
               "WHERE e.emp_no = d.emp_no AND e.emp_no = s.emp_no "
               "AND d.dept_no = 'd3')"),
      6);
  // A true point query: slice the result of the snapshot query above.
  auto plan = db.Query(
      "SEQ VT (SELECT e.first_name, s.salary "
      "FROM employees e, dept_emp d, salaries s "
      "WHERE e.emp_no = d.emp_no AND e.emp_no = s.emp_no "
      "AND d.dept_no = 'd3')");
  if (plan.ok()) {
    int on_day_1000 = 0;
    size_t arity = plan->schema().size();
    for (const Row& row : plan->rows()) {
      if (row[arity - 2].AsInt() <= 1000 && 1000 < row[arity - 1].AsInt()) {
        ++on_day_1000;
      }
    }
    std::printf("  => %d employees in d3 on day 1000\n", on_day_1000);
  }
  return 0;
}
