// Infrastructure monitoring: snapshot semantics for SLO accounting.
//
// A fleet of service instances comes and goes (deployments, crashes,
// autoscaling); incidents open and close.  Snapshot queries answer the
// questions operators actually ask:
//   * how many healthy replicas did each service have *at every
//     moment*?  (grouped snapshot aggregation)
//   * when was a service below its replication target?  (the AG-bug
//     fix matters: windows with *zero* replicas must be reported)
//   * which capacity reservations were not backed by a running
//     replica, counting multiplicities?  (snapshot bag difference)
//
// Build and run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_infrastructure_monitoring
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "middleware/temporal_db.h"

using namespace periodk;

// The setup statements below cannot fail; Check keeps that claim
// honest without burying the example in error plumbing.
static void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::abort();
  }
}

int main() {
  // One day at minute granularity.
  TimeDomain day{0, 1440};
  TemporalDB db(day);
  Check(db.CreatePeriodTable("replicas",
                             {"service", "instance", "vt_begin", "vt_end"},
                             "vt_begin", "vt_end"));
  Check(db.CreatePeriodTable("reservations",
                             {"service", "slots", "vt_begin", "vt_end"},
                             "vt_begin", "vt_end"));

  // Deterministic synthetic fleet: replicas churn during the day.
  Rng rng(2024);
  const char* services[] = {"api", "worker", "cache"};
  int instance_id = 0;
  for (const char* service : services) {
    int replicas = service == std::string("api") ? 6 : 4;
    for (int r = 0; r < replicas; ++r) {
      // Each replica slot is filled by a succession of instances with
      // small outage gaps in between (crash + reschedule).
      TimePoint t = rng.Range(0, 120);
      while (t < day.tmax - 30) {
        TimePoint up_for = rng.Range(180, 600);
        TimePoint end = std::min<TimePoint>(day.tmax, t + up_for);
        Check(db.Insert(
            "replicas",
            {Value::String(service),
             Value::String("i-" + std::to_string(instance_id++)),
             Value::Int(t), Value::Int(end)}));
        t = end + rng.Range(1, 45);  // outage gap
      }
    }
  }
  // Reservations: one row per reserved slot (multiset!).
  for (const char* service : services) {
    int slots = service == std::string("api") ? 6 : 4;
    for (int s = 0; s < slots; ++s) {
      Check(db.Insert("reservations", {Value::String(service), Value::Int(1),
                                       Value::Int(0), Value::Int(day.tmax)}));
    }
  }

  // 1. Healthy replica count per service over time.
  auto counts = db.Query(
      "SEQ VT (SELECT service, count(*) AS healthy FROM replicas "
      "GROUP BY service) ORDER BY service, a_begin");
  if (!counts.ok()) {
    std::fprintf(stderr, "%s\n", counts.status().ToString().c_str());
    return 1;
  }
  std::printf("Replica-count history rows: %zu (showing first 8)\n",
              counts->size());
  std::printf("%s", counts->ToString(8).c_str());

  // 2. SLO audit for the api service: minutes with fewer than 4
  //    healthy replicas -- including *total* outages, which only show
  //    up because global snapshot aggregation reports gaps (count 0).
  auto api = db.Query(
      "SEQ VT (SELECT count(*) AS healthy FROM replicas "
      "WHERE service = 'api') ORDER BY a_begin");
  if (!api.ok()) {
    std::fprintf(stderr, "%s\n", api.status().ToString().c_str());
    return 1;
  }
  TimePoint underprovisioned = 0, dark = 0;
  for (const Row& row : api->rows()) {
    TimePoint span = row[2].AsInt() - row[1].AsInt();
    if (row[0].AsInt() < 4) underprovisioned += span;
    if (row[0].AsInt() == 0) dark += span;
  }
  std::printf(
      "\napi SLO audit: %lld of %lld minutes below 4 replicas, "
      "%lld minutes with ZERO replicas\n",
      static_cast<long long>(underprovisioned),
      static_cast<long long>(day.size()), static_cast<long long>(dark));

  // 3. Unbacked reservations over time: reservations EXCEPT ALL running
  //    replicas, per service.  Bag semantics is essential -- 6 reserved
  //    slots minus 4 healthy replicas = 2 unbacked slots, not 0/1.
  auto unbacked = db.Query(
      "SEQ VT (SELECT service FROM reservations EXCEPT ALL "
      "SELECT service FROM replicas) ORDER BY service, a_begin");
  if (!unbacked.ok()) {
    std::fprintf(stderr, "%s\n", unbacked.status().ToString().c_str());
    return 1;
  }
  // Aggregate the result into per-service unbacked slot-minutes.
  std::map<std::string, int64_t> slot_minutes;
  for (const Row& row : unbacked->rows()) {
    slot_minutes[row[0].AsString()] += row[2].AsInt() - row[1].AsInt();
  }
  std::printf("\nUnbacked reservation slot-minutes per service:\n");
  for (const auto& [service, minutes] : slot_minutes) {
    std::printf("  %-7s %lld\n", service.c_str(),
                static_cast<long long>(minutes));
  }
  std::printf(
      "\n(A NOT EXISTS-style difference -- the BD bug -- would report 0\n"
      "whenever at least one replica runs, hiding partial capacity loss.)\n");
  return 0;
}
