// Temporal provenance: the "any semiring K" generality of the framework
// (paper Sections 4-6 and the applications listed in Section 11).
//
// The same period-semiring construction that fixes bag snapshot
// semantics (K = N) yields, for K = Lin (which-provenance), *temporal
// lineage*: for every query result tuple, which input tuples support it
// at which times.  And for K = Trop (min-plus costs), the cheapest
// derivation of each answer over time.  This example works directly in
// the logical model (period K-relations) using the annotated-relation
// API.
//
// Build and run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_temporal_provenance
#include <cstdio>

#include "annotated/evaluate.h"
#include "semiring/lineage_semiring.h"
#include "semiring/tropical_semiring.h"

using namespace periodk;

int main() {
  TimeDomain day{0, 24};

  // ---- Temporal lineage (K = Lin). ----------------------------------------
  {
    LineageSemiring lin;
    PeriodSemiring<LineageSemiring> lint(lin, day);
    // The running example's `works` relation; every base tuple gets a
    // singleton lineage {id} over its validity period.
    KRelation<PeriodSemiring<LineageSemiring>> works(lint);
    auto add = [&](int id, const char* name, const char* skill, int64_t b,
                   int64_t e) {
      works.Add({Value::String(name), Value::String(skill)},
                TemporalElement<LineageSemiring>(Interval(b, e),
                                                 std::set<int>{id}));
    };
    add(1, "Ann", "SP", 3, 10);
    add(2, "Joe", "NS", 8, 16);
    add(3, "Sam", "SP", 8, 16);
    add(4, "Ann", "SP", 18, 20);

    KCatalog<PeriodSemiring<LineageSemiring>> catalog;
    catalog.emplace("works", works);

    // Which skills are available when -- and *which workers* provide
    // them: Pi_skill(works) with lineage annotations.
    PlanPtr q = MakeProject(
        MakeScan("works", Schema::FromNames({"name", "skill"})),
        {Col(1, "skill")}, {Column("skill")});
    auto result = Evaluate(q, lint, catalog);
    std::printf("Temporal lineage of available skills:\n");
    for (const auto& [tuple, annotation] : result.tuples()) {
      std::printf("  %-3s : %s\n", tuple[0].ToString().c_str(),
                  lint.ToString(annotation).c_str());
    }
    // Reading: skill SP is supported by worker 1 during [3,8), by
    // workers {1,3} during [8,10), by 3 alone until 16, by 4 in the
    // evening -- lineage varies over time, which is exactly what the
    // period semiring construction tracks.
  }

  // ---- Temporal minimum cost (K = Trop). ----------------------------------
  {
    TropicalSemiring trop;
    PeriodSemiring<TropicalSemiring> tropt(trop, day);
    // Hourly rates: hiring a contractor with a given skill costs k.
    KRelation<PeriodSemiring<TropicalSemiring>> rates(tropt);
    auto offer = [&](const char* agency, const char* skill, int64_t cost,
                     int64_t b, int64_t e) {
      rates.Add({Value::String(agency), Value::String(skill)},
                TemporalElement<TropicalSemiring>(Interval(b, e), cost));
    };
    offer("AgencyA", "SP", 120, 0, 12);
    offer("AgencyA", "SP", 150, 12, 24);  // evening surcharge
    offer("AgencyB", "SP", 135, 6, 24);
    offer("AgencyB", "NS", 80, 0, 24);

    KCatalog<PeriodSemiring<TropicalSemiring>> catalog;
    catalog.emplace("rates", rates);
    // Cheapest way to staff each skill at every time: projection adds
    // alternatives with min (tropical +).
    PlanPtr q = MakeProject(
        MakeScan("rates", Schema::FromNames({"agency", "skill"})),
        {Col(1, "skill")}, {Column("skill")});
    auto result = Evaluate(q, tropt, catalog);
    std::printf("\nCheapest hourly rate per skill over the day:\n");
    for (const auto& [tuple, annotation] : result.tuples()) {
      std::printf("  %-3s : %s\n", tuple[0].ToString().c_str(),
                  tropt.ToString(annotation).c_str());
    }
    // Reading: SP costs 120 until noon (AgencyA), then 135 (AgencyB
    // beats the surcharge) -- the crossover appears as an annotation
    // changepoint.
  }

  // ---- Timeslice is a homomorphism: ask "as of 9am". -----------------------
  std::printf(
      "\nBoth annotations slice consistently at any instant (tau_T is a\n"
      "semiring homomorphism, Thm 6.3), e.g. evaluate-then-slice equals\n"
      "slice-then-evaluate -- the framework's snapshot-reducibility.\n");
  return 0;
}
