// Quickstart: the paper's running example (Figure 1) end to end.
//
// Loads the `works` and `assign` period relations, then evaluates the
// two motivating queries under snapshot semantics through the SQL
// middleware:
//   Q_onduty   -- how many specialized (SP) workers are on duty at any
//                 point in time?  (snapshot aggregation; the count-0
//                 gap rows expose safety violations)
//   Q_skillreq -- which skills are missing during which periods?
//                 (snapshot bag difference)
//
// Build and run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/example_quickstart
#include <cstdio>
#include <cstdlib>

#include "middleware/temporal_db.h"

using namespace periodk;

// The setup statements below cannot fail; Check keeps that claim
// honest without burying the example in error plumbing.
static void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    std::abort();
  }
}

int main() {
  // The time domain: the hours of 2018-01-01, as in the paper.
  TemporalDB db(TimeDomain{0, 24});

  // Period tables store the validity interval in two integer columns.
  Check(
      db.CreatePeriodTable("works", {"name", "skill", "ts", "te"}, "ts", "te"));
  Check(
      db.CreatePeriodTable("assign", {"mach", "skill", "ts", "te"}, "ts",
                           "te"));

  auto work = [&](const char* name, const char* skill, int64_t b, int64_t e) {
    Check(db.Insert("works", {Value::String(name), Value::String(skill),
                              Value::Int(b), Value::Int(e)}));
  };
  work("Ann", "SP", 3, 10);
  work("Joe", "NS", 8, 16);
  work("Sam", "SP", 8, 16);
  work("Ann", "SP", 18, 20);

  auto assign = [&](const char* mach, const char* skill, int64_t b,
                    int64_t e) {
    Check(db.Insert("assign", {Value::String(mach), Value::String(skill),
                               Value::Int(b), Value::Int(e)}));
  };
  assign("M1", "SP", 3, 12);
  assign("M2", "SP", 6, 14);
  assign("M3", "NS", 3, 16);

  // Snapshot queries are ordinary SQL wrapped in SEQ VT ( ... ).
  std::printf("Q_onduty: number of SP workers on duty over time\n");
  auto onduty = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') "
      "ORDER BY a_begin");
  if (!onduty.ok()) {
    std::fprintf(stderr, "error: %s\n", onduty.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : onduty->rows()) {
    std::printf("  cnt = %s during [%s, %s)%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str(),
                row[0] == Value::Int(0) ? "   <-- safety violation!" : "");
  }

  std::printf("\nQ_skillreq: missing skills over time (bag difference)\n");
  auto skillreq = db.Query(
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL "
      "SELECT skill FROM works) ORDER BY skill DESC, a_begin");
  if (!skillreq.ok()) {
    std::fprintf(stderr, "error: %s\n", skillreq.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : skillreq->rows()) {
    std::printf("  one more %s worker needed during [%s, %s)\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str());
  }

  // Timeslice: the snapshot of a period table at one instant.
  std::printf("\nWho is in the factory at 08:00?\n");
  auto at8 = db.Timeslice("works", 8);
  for (const Row& row : at8->rows()) {
    std::printf("  %s (%s)\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // AS OF: any snapshot query evaluated at one instant (tau_T of the
  // SEQ VT result; served from the timeline index).  The result is an
  // ordinary non-temporal relation.
  std::printf("\nHow many SP workers are on duty at 08:00?\n");
  auto at8cnt =
      db.Query("SEQ VT AS OF 8 (SELECT count(*) AS cnt FROM works "
               "WHERE skill = 'SP')");
  if (!at8cnt.ok()) {
    std::fprintf(stderr, "error: %s\n", at8cnt.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : at8cnt->rows()) {
    std::printf("  cnt = %s\n", row[0].ToString().c_str());
  }
  return 0;
}
