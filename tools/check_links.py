#!/usr/bin/env python3
"""Markdown link checker for the repository docs (stdlib only, offline).

Scans the given Markdown files (default: README.md and docs/*.md) for
inline links/images `[text](target)` and reference definitions
`[id]: target`, and verifies that every *relative* target resolves to an
existing file or directory (anchors are stripped; pure in-page anchors
and external http(s)/mailto targets are skipped — CI stays offline and
deterministic).

Exit code 0 when every link resolves, 1 otherwise, listing each broken
link as `file:line: target`.
"""

import re
import sys
from pathlib import Path

# Inline links/images, skipping images' leading '!': [text](target)
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style definitions: [id]: target
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

# Fenced code blocks contain things like `db.Query(...)` and array
# indexing that regexes would misread as links; drop them up front.
FENCE = re.compile(r"^(```|~~~)")


def targets_in(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in INLINE.finditer(line):
            yield lineno, match.group(1)
        ref = REFDEF.match(line)
        if ref:
            yield lineno, ref.group(1)


def main(argv):
    root = Path(__file__).resolve().parent.parent
    if len(argv) > 1:
        files = [Path(a) for a in argv[1:]]
    else:
        files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    broken = []
    checked = 0
    for md in files:
        for lineno, target in targets_in(md):
            if target.startswith(SKIP_PREFIXES):
                continue
            checked += 1
            resolved = (md.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}:{lineno}: {target}")
    for b in broken:
        print(b)
    print(f"checked {checked} relative links in {len(files)} files, "
          f"{len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
