#!/usr/bin/env python3
"""Runs clang-tidy over the library sources using the repo .clang-tidy.

Reads compile_commands.json from the build directory (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON, the repo default), filters it to
src/*.cc, and fans the files out over a process pool.  Exits nonzero
if any file produces a diagnostic -- .clang-tidy sets
WarningsAsErrors: '*', so warnings fail too.

Usage:
    tools/run_clang_tidy.py [--build-dir build] [--clang-tidy BIN] [-j N]
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys


def find_clang_tidy(explicit):
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"] + [f"clang-tidy-{v}"
                                    for v in range(22, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="build dir containing compile_commands.json")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: search PATH)")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        print("run_clang_tidy: no clang-tidy binary found on PATH",
              file=sys.stderr)
        return 2

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_clang_tidy: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src_prefix = os.path.join(root, "src") + os.sep
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    files = sorted({
        os.path.abspath(os.path.join(e["directory"], e["file"]))
        for e in entries})
    files = [p for p in files if p.startswith(src_prefix)]
    if not files:
        print("run_clang_tidy: no src/ entries in the compilation database",
              file=sys.stderr)
        return 2

    def run_one(path):
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, output in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if code != 0:
                failed += 1
                print(f"--- {rel}")
                print(output)
            else:
                print(f"ok  {rel}")
    if failed:
        print(f"run_clang_tidy: {failed}/{len(files)} file(s) failed",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
