#!/usr/bin/env python3
"""Repo-specific lint pass for periodk.

Checks invariants that neither the compiler nor clang-tidy can express:

  row-api-in-columnar-lane
      Inside a marked columnar lane (see below) the row view is off
      limits: rows() / AddRow / mutable_rows materialize or decay the
      row representation and silently forfeit the vectorized path.
      Lanes are delimited with marker comments:
          // periodk-lint: columnar-lane-begin(<name>)
          // periodk-lint: columnar-lane-end(<name>)

  naked-mutex
      src/ code must use the annotated wrappers from
      common/thread_annotations.h (Mutex, SharedMutex, MutexLock, ...)
      so Clang's thread-safety analysis sees every lock.  Raw
      std::mutex & friends are invisible to the analysis.

  relation-by-value
      Relation is a deep container (row vectors or whole columns);
      passing it by value copies the table.  Take const Relation& (or
      Relation&& for sinks).  Deliberate ownership sinks carry an
      allow() suppression naming the reason.

  missing-nodiscard
      Function declarations in headers returning Status or Result<T>
      must be marked [[nodiscard]].  The class-level [[nodiscard]] on
      Status/Result already catches discards at call sites; the
      per-declaration marker keeps the contract visible at the API and
      survives wrappers (e.g. auto-returning forwarders).

Suppressions: a finding is waived by a comment on the same or the
preceding line --

    // periodk-lint: allow(<rule-id>): <reason>

The reason is mandatory; a blanket allow() without one is itself
reported.

Usage:
    tools/periodk_lint.py [--root DIR] [FILE...]
    tools/periodk_lint.py --self-test
"""

import argparse
import os
import re
import sys
import tempfile

ALLOW_RE = re.compile(r"periodk-lint:\s*allow\(([a-z-]+)\):?\s*(.*)")
LANE_BEGIN_RE = re.compile(r"periodk-lint:\s*columnar-lane-begin\(([\w-]+)\)")
LANE_END_RE = re.compile(r"periodk-lint:\s*columnar-lane-end\(([\w-]+)\)")

ROW_API_RE = re.compile(r"\.rows\(\)|\bAddRow\s*\(|\bmutable_rows\s*\(")
NAKED_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b")
# A Relation parameter passed by value: `Relation ident` directly
# followed by `,` / `)` / `=` (default argument).  References, rvalue
# references and pointers do not match.  DOTALL so parameters on
# continuation lines are still seen.
RELATION_BY_VALUE_RE = re.compile(
    r"[(,]\s*Relation\s+\w+\s*(?=[,)=])", re.DOTALL)
# `Status f(...)` / `Result<...> f(...)` at a declaration head.  The
# required whitespace after the type excludes qualified calls such as
# Status::OK(); the lookbehind excludes template arguments.
NODISCARD_DECL_RE = re.compile(
    r"(?<![:\w<,])(?:Status|Result<[^;{}()]*>)\s+\w+\s*\(")

# Files exempt from naked-mutex: the wrappers themselves.
MUTEX_EXEMPT = ("common/thread_annotations.h",)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so token scans cannot match inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2
                       else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def collect_allows(lines, findings, path):
    """Maps line number -> set of allowed rule ids.  An allow() on line
    L waives findings on L..L+2: the comment sits on or above the
    flagged line, and declarations wrap onto a continuation line."""
    allows = {}
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            findings.append(Finding(
                path, idx, "suppression-missing-reason",
                f"allow({rule}) must state a reason after the colon"))
            continue
        for covered in (idx, idx + 1, idx + 2):
            allows.setdefault(covered, set()).add(rule)
    return allows


def check_columnar_lanes(path, rel, lines, findings):
    if not rel.startswith("engine/"):
        return
    lane = None  # (name, begin line)
    for idx, line in enumerate(lines, start=1):
        begin = LANE_BEGIN_RE.search(line)
        end = LANE_END_RE.search(line)
        if begin is not None:
            if lane is not None:
                findings.append(Finding(
                    path, idx, "row-api-in-columnar-lane",
                    f"lane '{begin.group(1)}' opened inside open lane "
                    f"'{lane[0]}' (line {lane[1]})"))
            lane = (begin.group(1), idx)
            continue
        if end is not None:
            if lane is None or end.group(1) != lane[0]:
                findings.append(Finding(
                    path, idx, "row-api-in-columnar-lane",
                    f"stray lane end '{end.group(1)}'"))
            lane = None
            continue
        if lane is not None and ROW_API_RE.search(line) is not None:
            findings.append(Finding(
                path, idx, "row-api-in-columnar-lane",
                f"row API inside columnar lane '{lane[0]}' "
                "(rows()/AddRow/mutable_rows decay the columnar path)"))
    if lane is not None:
        findings.append(Finding(
            path, lane[1], "row-api-in-columnar-lane",
            f"lane '{lane[0]}' is never closed"))


def check_naked_mutex(path, rel, stripped_lines, findings):
    if any(rel.endswith(e) for e in MUTEX_EXEMPT):
        return
    for idx, line in enumerate(stripped_lines, start=1):
        m = NAKED_MUTEX_RE.search(line)
        if m is not None:
            findings.append(Finding(
                path, idx, "naked-mutex",
                f"use the annotated wrappers from "
                f"common/thread_annotations.h instead of {m.group(0)}"))


def check_relation_by_value(path, stripped, findings):
    for m in RELATION_BY_VALUE_RE.finditer(stripped):
        # Position the finding on the line of the Relation token, where
        # a same-line or preceding-line allow() naturally sits.
        token = stripped.index("Relation", m.start(), m.end())
        findings.append(Finding(
            path, line_of(stripped, token), "relation-by-value",
            "Relation passed by value copies the table; take "
            "const Relation& (or suppress for a deliberate sink)"))


def check_missing_nodiscard(path, rel, stripped, findings):
    if not rel.endswith(".h"):
        return
    for m in NODISCARD_DECL_RE.finditer(stripped):
        # The declaration segment: everything since the previous
        # ; { or } must mention [[nodiscard]].
        start = max(stripped.rfind(c, 0, m.start()) for c in ";{}")
        segment = stripped[start + 1:m.start()]
        if "[[nodiscard]]" in segment:
            continue
        if re.search(r"\breturn\s*$", segment):
            continue  # return statement in an inline body, not a decl
        findings.append(Finding(
            path, line_of(stripped, m.start()), "missing-nodiscard",
            "Status/Result-returning declaration lacks [[nodiscard]]"))


def lint_file(path, rel):
    try:
        text = open(path, encoding="utf-8").read()
    except (OSError, UnicodeDecodeError) as err:
        return [Finding(path, 0, "io-error", str(err))]
    findings = []
    lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()
    allows = collect_allows(lines, findings, path)
    check_columnar_lanes(path, rel, lines, findings)
    check_naked_mutex(path, rel, stripped_lines, findings)
    check_relation_by_value(path, stripped, findings)
    check_missing_nodiscard(path, rel, stripped, findings)
    return [f for f in findings
            if f.rule not in allows.get(f.line, ())]


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, src)
            findings.extend(lint_file(path, rel))
    return findings


# --- self test --------------------------------------------------------------

SELF_TEST_FILES = {
    # One violation per rule, plus a suppressed twin proving allow()
    # works and a clean lane proving markers do not themselves fire.
    "src/engine/lane_bad.cc": """\
// periodk-lint: columnar-lane-begin(demo)
void Kernel(const Relation& input) {
  for (const Row& row : input.rows()) Use(row);
}
// periodk-lint: columnar-lane-end(demo)
""",
    "src/engine/lane_ok.cc": """\
// periodk-lint: columnar-lane-begin(demo)
void Kernel(const Relation& input) {
  const int64_t* xs = input.col(0).ints();
}
// periodk-lint: columnar-lane-end(demo)
""",
    "src/common/mutex_bad.cc": """\
#include <mutex>
std::mutex raw_mu;
""",
    "src/ra/byvalue_bad.h": """\
void Consume(Relation relation);
// periodk-lint: allow(relation-by-value): ownership sink for the test
void ConsumeAllowed(Relation relation);
""",
    "src/sql/nodiscard_bad.h": """\
class Status;
Status Flush();
[[nodiscard]] Status FlushChecked();
""",
    "src/common/reasonless.cc": """\
// periodk-lint: allow(naked-mutex):
""",
}

SELF_TEST_EXPECT = {
    ("lane_bad.cc", "row-api-in-columnar-lane"): 1,
    ("mutex_bad.cc", "naked-mutex"): 1,
    ("byvalue_bad.h", "relation-by-value"): 1,
    ("nodiscard_bad.h", "missing-nodiscard"): 1,
    ("reasonless.cc", "suppression-missing-reason"): 1,
}


def self_test():
    with tempfile.TemporaryDirectory(prefix="periodk_lint_") as root:
        for rel, body in SELF_TEST_FILES.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(body)
        findings = lint_tree(root)
        got = {}
        for f in findings:
            got[(os.path.basename(f.path), f.rule)] = got.get(
                (os.path.basename(f.path), f.rule), 0) + 1
        failures = []
        if got != SELF_TEST_EXPECT:
            for key in sorted(set(got) | set(SELF_TEST_EXPECT)):
                want_n, got_n = SELF_TEST_EXPECT.get(key, 0), got.get(key, 0)
                if want_n != got_n:
                    failures.append(
                        f"{key[0]} [{key[1]}]: expected {want_n}, "
                        f"got {got_n}")
        if failures:
            print("self-test FAILED:")
            for f in failures:
                print(f"  {f}")
            for f in findings:
                print(f"  raw: {f}")
            return 1
    print("self-test passed: every rule fires and allow() suppresses.")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in rule self test and exit")
    ap.add_argument("files", nargs="*",
                    help="specific files to lint (default: all of src/)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.files:
        findings = []
        src = os.path.join(args.root, "src")
        for path in args.files:
            rel = os.path.relpath(os.path.abspath(path), src)
            findings.extend(lint_file(path, rel))
    else:
        findings = lint_tree(args.root)

    for f in findings:
        print(f)
    if findings:
        print(f"periodk-lint: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
