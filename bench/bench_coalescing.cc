// Reproduces paper Figure 5: multiset coalescing runtime for varying
// input size (the paper sweeps 1k..3M rows of the salaries table and
// observes runtime linear in the input for the analytic-window SQL
// implementation on all three DBMSs).
//
// Two implementations are measured:
//  * window  -- the SQL-style implementation the paper's middleware
//    ships to the backend (RANGE running sum + LAG changepoint filter +
//    LEAD interval close; several sort passes) => the Figure 5 series;
//  * native  -- the in-kernel sweep the paper proposes as future work
//    (Sec. 10.5 predicts a significantly smaller constant).
//
// Expected shape: both linear in input size; native has the smaller
// constant factor.
#include <benchmark/benchmark.h>

#include "datagen/employees.h"
#include "engine/temporal_ops.h"

namespace periodk {
namespace {

// Salary-history shaped input (the paper's coalescing input): slices of
// a generated salaries table, largest size first so one generation
// serves all benchmarks.
constexpr int64_t kMaxRows = 300000;

const Relation& FullSalaries() {
  static const Relation* kSalaries = [] {
    EmployeesConfig config;
    // ~9 salary rows per employee.
    config.num_employees = static_cast<int>(kMaxRows / 9 + 1);
    TemporalDB db(config.domain);
    Status status = LoadEmployees(&db, config);
    if (!status.ok()) std::abort();
    // Normalize to (emp_no, salary, a_begin, a_end).
    return new Relation(db.catalog().Get("salaries"));
  }();
  return *kSalaries;
}

Relation InputSlice(int64_t n) {
  const Relation& full = FullSalaries();
  std::vector<Row> rows(full.rows().begin(),
                        full.rows().begin() +
                            std::min<int64_t>(n, full.size()));
  return Relation(full.schema(), std::move(rows));
}

void BM_CoalesceWindow(benchmark::State& state) {
  Relation input = InputSlice(state.range(0));
  for (auto _ : state) {
    Relation out = CoalesceWindow(input);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}

void BM_CoalesceNative(benchmark::State& state) {
  Relation input = InputSlice(state.range(0));
  for (auto _ : state) {
    Relation out = CoalesceNative(input);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * input.size());
}

BENCHMARK(BM_CoalesceWindow)
    ->Arg(1000)
    ->Arg(3000)
    ->Arg(10000)
    ->Arg(30000)
    ->Arg(100000)
    ->Arg(300000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CoalesceNative)
    ->Arg(1000)
    ->Arg(3000)
    ->Arg(10000)
    ->Arg(30000)
    ->Arg(100000)
    ->Arg(300000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace periodk

BENCHMARK_MAIN();
