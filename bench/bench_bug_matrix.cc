// Reproduces paper Table 1: which interval-based approaches support
// multisets, avoid the aggregation-gap (AG) and bag-difference (BD)
// bugs, and produce a unique encoding.  Each cell is *measured*, not
// asserted: the probes run the paper's running example (Fig. 1) through
// every implemented semantics and inspect the results.
//
//  * AG probe  -- Q_onduty (Example 1.1): a correct approach returns
//    count = 0 rows over the gaps [0,3), [16,18), [20,24).
//  * BD probe  -- Q_skillreq (Example 1.2): a correct approach returns
//    the SP rows [6,8) and [10,12).
//  * uniqueness probe -- the identity query over two different (but
//    snapshot-equivalent) encodings of `works`; unique approaches
//    return syntactically identical relations.
#include <cstdio>

#include "bench_common.h"
#include "baseline/naive.h"
#include "engine/temporal_ops.h"
#include "rewrite/rewriter.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

struct Probe {
  bool multisets = false;
  bool ag_free = false;
  bool bd_free = false;
  bool bd_supported = true;
  bool unique = false;
};

Relation RunWith(const PlanPtr& query, const RewriteOptions& options,
                 const Catalog& catalog) {
  SnapshotRewriter rewriter(kExampleDomain, options);
  return Execute(rewriter.Rewrite(query), catalog);
}

Catalog SplitEncodingCatalog() {
  // Snapshot-equivalent alternative encoding of `works`: Ann's first
  // duty period split into [3,8) + [8,10).
  Catalog catalog;
  Relation works(Schema::FromNames({"name", "skill", "a_begin", "a_end"}));
  auto add = [&](const char* n, const char* s, int64_t b, int64_t e) {
    works.AddRow({Value::String(n), Value::String(s), Value::Int(b),
                  Value::Int(e)});
  };
  add("Ann", "SP", 3, 8);
  add("Ann", "SP", 8, 10);
  add("Joe", "NS", 8, 16);
  add("Sam", "SP", 8, 16);
  add("Ann", "SP", 18, 20);
  catalog.Put("works", std::move(works));
  catalog.Put("assign", AssignRelation());
  return catalog;
}

Probe ProbeSemantics(const RewriteOptions& options) {
  Catalog catalog = ExampleCatalog();
  Probe probe;
  probe.multisets = true;  // all engine paths are bag-semantics

  // AG probe: gap rows present?
  Relation agg = RunWith(QOnDuty(), options, catalog);
  int gap_rows = 0;
  for (const Row& row : agg.rows()) {
    if (row[0] == Value::Int(0)) ++gap_rows;
  }
  probe.ag_free = gap_rows == 3;

  // BD probe: SP rows present with correct multiplicity-awareness?
  // Approaches without snapshot difference report N/A (paper Table 1).
  try {
    Relation diff = RunWith(QSkillReq(), options, catalog);
    TimePoint sp_duration = 0;
    for (const Row& row : diff.rows()) {
      if (row[0] == Value::String("SP")) {
        sp_duration += row[2].AsInt() - row[1].AsInt();
      }
    }
    probe.bd_free = sp_duration == 4;  // [6,8) + [10,12)
    probe.bd_supported = true;
  } catch (const EngineError&) {
    probe.bd_supported = false;
  }

  // Uniqueness probe: identical output for equivalent input encodings.
  PlanPtr identity = MakeScan("works", WorksSnapshotSchema());
  Relation a = RunWith(identity, options, catalog);
  Relation b = RunWith(identity, options, SplitEncodingCatalog());
  probe.unique = a.BagEquals(b);
  return probe;
}

Probe ProbeNaive() {
  Catalog catalog = ExampleCatalog();
  Probe probe;
  probe.multisets = true;
  Relation agg = NaiveSnapshotEval(QOnDuty(), catalog, kExampleDomain);
  int gap_rows = 0;
  for (const Row& row : agg.rows()) {
    if (row[0] == Value::Int(0)) ++gap_rows;
  }
  probe.ag_free = gap_rows == 3;
  Relation diff = NaiveSnapshotEval(QSkillReq(), catalog, kExampleDomain);
  TimePoint sp = 0;
  for (const Row& row : diff.rows()) {
    if (row[0] == Value::String("SP")) sp += row[2].AsInt() - row[1].AsInt();
  }
  probe.bd_free = sp == 4;
  PlanPtr identity = MakeScan("works", WorksSnapshotSchema());
  probe.unique =
      NaiveSnapshotEval(identity, catalog, kExampleDomain)
          .BagEquals(NaiveSnapshotEval(identity, SplitEncodingCatalog(),
                                       kExampleDomain));
  return probe;
}

const char* Mark(bool ok) { return ok ? "yes" : "NO"; }

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  bench::PrintBanner(
      "Table 1 -- interval-based approaches for snapshot semantics",
      "Measured on the running example (Fig. 1); paper rows map to the\n"
      "semantics implemented here: interval preservation ~ ATSQL [9],\n"
      "alignment ~ change preservation / PG-Nat [16,18], snapshot-by-\n"
      "snapshot ~ SQL/TP-style evaluation, period-K = our approach.");

  bench::TablePrinter table(
      {"Approach", "Multisets", "AG-bug-free", "BD-bug-free", "Unique-enc"},
      {38, 11, 13, 13, 11});
  table.PrintHeader();

  RewriteOptions ip;
  ip.semantics = SnapshotSemantics::kIntervalPreservation;
  Probe p = ProbeSemantics(ip);
  table.PrintRow({"Interval preservation (ATSQL-like)", Mark(p.multisets),
                  Mark(p.ag_free), Mark(p.bd_free), Mark(p.unique)});

  RewriteOptions al;
  al.semantics = SnapshotSemantics::kAlignment;
  p = ProbeSemantics(al);
  table.PrintRow({"Alignment (PG-Nat-like)", Mark(p.multisets),
                  Mark(p.ag_free), Mark(p.bd_free), Mark(p.unique)});

  RewriteOptions td;
  td.semantics = SnapshotSemantics::kTeradata;
  p = ProbeSemantics(td);
  table.PrintRow({"Statement modifiers (Teradata-like)", Mark(p.multisets),
                  Mark(p.ag_free), p.bd_supported ? Mark(p.bd_free) : "N/A",
                  Mark(p.unique)});

  p = ProbeNaive();
  table.PrintRow({"Snapshot-by-snapshot (SQL/TP-like)", Mark(p.multisets),
                  Mark(p.ag_free), Mark(p.bd_free), Mark(p.unique)});

  p = ProbeSemantics(RewriteOptions{});
  table.PrintRow({"Period K-relations (this paper)", Mark(p.multisets),
                  Mark(p.ag_free), Mark(p.bd_free), Mark(p.unique)});

  std::printf(
      "\nPaper Table 1 expectation: only the period K-relation approach\n"
      "is simultaneously multiset-capable, AG-free, BD-free and unique.\n"
      "(The naive evaluator is correct but enumerates every snapshot,\n"
      "which Sections 2 and 10 dismiss as data-dependent and slow.)\n");
  return 0;
}
