// Cost-based planning ablation (docs/architecture.md §11): the same
// queries with the cost model's three decision points switched off
// (structural behavior) vs on.  Three workloads isolate one decision
// each: join-order picks the selective table first instead of the
// structural left-deep order, tiny-nl runs a small overlap join as a
// nested loop instead of partition-then-sweep, and fanout-gate keeps a
// below-break-even aggregation off the thread pool.  Outputs are
// checked equal (bag-equal for tiny-nl, whose nested-loop row order
// legitimately differs; row-identical otherwise) before timing.
// Record medians into BENCH_planner.json per docs/benchmarks.md.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "ra/cost_model.h"
#include "ra/plan.h"
#include "stats/table_stats.h"

namespace periodk {
namespace {

constexpr TimePoint kDomainEnd = 50000;

// periodk-lint: allow(relation-by-value): ownership sink, callers move
void PutWithStats(Catalog* catalog, const std::string& name, Relation rel,
                  int begin_col = -1, int end_col = -1) {
  rel.ToColumnar();
  catalog->Put(name, std::move(rel));
  catalog->PutStats(name,
                    TableStats::Collect(catalog->GetShared(name), begin_col,
                                        end_col));
}

Relation MakeKeyed(Rng* rng, int rows, int keys) {
  Relation rel(Schema::FromNames({"k", "v"}));
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    rel.AddRow({Value::Int(rng->Range(0, keys - 1)),
                Value::Int(rng->Range(0, 999))});
  }
  return rel;
}

Relation MakeIntervals(Rng* rng, int rows) {
  Relation rel(Schema::FromNames({"v", "a_begin", "a_end"}));
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(0, kDomainEnd - 201);
    rel.AddRow({Value::Int(rng->Range(0, 999)), Value::Int(b),
                Value::Int(b + rng->Range(1, 200))});
  }
  return rel;
}

bool SameRows(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a.rows()[i], b.rows()[i]) != 0) return false;
  }
  return true;
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_PLANNER_ROWS", 200000);
  int probes = bench::EnvInt("PERIODK_BENCH_PLANNER_PROBES", 2000);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "cost-based planning off vs on: join order, tiny-join strategy, "
      "fan-out gating",
      "Scale via PERIODK_BENCH_PLANNER_ROWS (default 200000) and "
      "PERIODK_BENCH_PLANNER_PROBES (default 2000).");

  Rng rng(20260807);
  const int keys = std::max(rows / 16, 2);
  const int tiny_keys = std::max(keys / 16, 1);

  Catalog catalog;
  PutWithStats(&catalog, "a", MakeKeyed(&rng, rows, keys));
  PutWithStats(&catalog, "b", MakeKeyed(&rng, rows, keys));
  {
    // A selective dimension table: one row per key for a 1/16 slice of
    // the key domain.
    Relation tiny(Schema::FromNames({"tk"}));
    for (int k = 0; k < tiny_keys; ++k) tiny.AddRow({Value::Int(k)});
    PutWithStats(&catalog, "tiny", std::move(tiny));
  }
  {
    // Deliberately row-store: the tiny-join hint matters most for
    // small *derived* inputs (join/select outputs are row relations),
    // where the sweep pays its hash-partition row path per execution.
    Relation iv = MakeIntervals(&rng, 24);
    catalog.Put("iv", std::move(iv));
    catalog.PutStats("iv", TableStats::Collect(catalog.GetShared("iv"), 1, 2));
  }
  {
    // 1024 interval rows over 64 group keys: below the fan-out
    // break-even, so the gate should keep the coalesce sweep off the
    // thread pool.
    Relation small(Schema::FromNames({"k", "a_begin", "a_end"}));
    small.Reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      TimePoint b = rng.Range(0, kDomainEnd - 201);
      small.AddRow({Value::Int(rng.Range(0, 63)), Value::Int(b),
                    Value::Int(b + rng.Range(1, 200))});
    }
    PutWithStats(&catalog, "small", std::move(small), 1, 2);
  }

  TimeDomain domain{0, kDomainEnd};
  CostModel cost(&catalog, domain);
  auto scan = [&](const char* name) {
    return MakeScan(name, catalog.Get(name).schema());
  };

  bench::TablePrinter table(
      {"Workload", "Rows", "Out rows", "CostOff", "CostOn", "Speedup"},
      {15, 10, 12, 12, 12, 10});
  table.PrintHeader();
  auto report = [&](const std::string& name, int in_rows, size_t out_rows,
                    double off_s, double on_s) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", off_s / on_s);
    table.PrintRow({name, std::to_string(in_rows), std::to_string(out_rows),
                    bench::TablePrinter::Seconds(off_s),
                    bench::TablePrinter::Seconds(on_s), speedup});
  };

  // --- 1. Join order: the structural plan joins the two fact tables
  // first (a 16x-fanout many-to-many intermediate); the cost order
  // filters through the dimension table before touching b.
  {
    PlanPtr structural =
        MakeJoin(MakeJoin(scan("a"), scan("b"), Eq(Col(0), Col(2))),
                 scan("tiny"), Eq(Col(0), Col(4)));
    PlanPtr reordered = ReorderJoins(structural, cost);
    if (reordered.get() == structural.get()) {
      std::fprintf(stderr, "FATAL: cost model declined to reorder\n");
      return 1;
    }
    Relation off_rows = Execute(structural, catalog);
    Relation on_rows = Execute(reordered, catalog);
    if (!on_rows.BagEquals(off_rows)) {
      std::fprintf(stderr, "FATAL: reordered join diverges\n");
      return 1;
    }
    double off_s = bench::TimeMedian([&] { Execute(structural, catalog); },
                                     repeats);
    double on_s = bench::TimeMedian([&] { Execute(reordered, catalog); },
                                    repeats);
    report("join-order", rows, on_rows.size(), off_s, on_s);
  }

  // --- 2. Tiny-join strategy: a 24x24 overlap join where the
  // partition-then-sweep setup costs more than the |L|*|R| compares.
  {
    PlanPtr sweep = MakeJoin(scan("iv"), scan("iv"),
                             AndAll({Lt(Col(1), Col(5)), Lt(Col(4), Col(2))}));
    PlanPtr nested = ApplyJoinStrategyHints(sweep, cost);
    if (nested.get() == sweep.get()) {
      std::fprintf(stderr, "FATAL: tiny overlap join not marked NL\n");
      return 1;
    }
    Relation off_rows = Execute(sweep, catalog);
    Relation on_rows = Execute(nested, catalog);
    // Nested-loop output order legitimately differs from sweep order.
    if (!on_rows.BagEquals(off_rows)) {
      std::fprintf(stderr, "FATAL: nested-loop join diverges\n");
      return 1;
    }
    double off_s = bench::TimeMedian(
        [&] {
          for (int i = 0; i < probes; ++i) Execute(sweep, catalog);
        },
        repeats);
    double on_s = bench::TimeMedian(
        [&] {
          for (int i = 0; i < probes; ++i) Execute(nested, catalog);
        },
        repeats);
    report("tiny-nl", 24, on_rows.size(), off_s, on_s);
  }

  // --- 3. Fan-out gating: a 1024-row coalesce (below kParallelMinRows)
  // with an 8-thread budget.  Blind fan-out pays per-query pool
  // dispatch, chunk bookkeeping, and stats merging; the gate keeps the
  // sweep sequential.
  {
    PlanPtr agg = MakeCoalesce(scan("small"));
    ExecOptions off;
    off.num_threads = 8;
    off.use_cost_model = false;
    ExecOptions on;
    on.num_threads = 8;
    on.use_cost_model = true;
    Relation off_rows = Execute(agg, catalog, off);
    Relation on_rows = Execute(agg, catalog, on);
    // The gate is row-identical: same rows, same order.
    if (!SameRows(off_rows, on_rows)) {
      std::fprintf(stderr, "FATAL: fan-out gate changes rows\n");
      return 1;
    }
    double off_s = bench::TimeMedian(
        [&] {
          for (int i = 0; i < probes; ++i) Execute(agg, catalog, off);
        },
        repeats);
    double on_s = bench::TimeMedian(
        [&] {
          for (int i = 0; i < probes; ++i) Execute(agg, catalog, on);
        },
        repeats);
    report("fanout-gate", 1024, on_rows.size(), off_s, on_s);
  }
  return 0;
}
