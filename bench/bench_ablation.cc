// Ablation study for the two Section 9 optimizations (experiments
// A1/A2 in docs/benchmarks.md):
//  A1 coalesce hoisting -- one final coalesce (justified by Lemma 6.1)
//     vs a coalesce after every rewritten operator;
//  A2 pre-aggregation   -- aggregate per (group, interval) before the
//     endpoint sweep vs sweeping raw tuples, vs the fully unfused
//     split-then-aggregate plan (which is also what the alignment
//     baseline does).
//
// Expected shape: hoisting removes a per-operator O(n log n) pass, and
// pre-aggregation shrinks the sweep input dramatically (the paper's
// explanation for the orders-of-magnitude aggregation speedups).
#include <benchmark/benchmark.h>

#include "datagen/employees.h"
#include "datagen/workloads.h"
#include "engine/temporal_ops.h"

namespace periodk {
namespace {

const TemporalDB& Db() {
  static const TemporalDB* kDb = [] {
    EmployeesConfig config;
    config.num_employees = 400;
    auto* db = new TemporalDB(config.domain);
    if (!LoadEmployees(db, config).ok()) std::abort();
    return db;
  }();
  return *kDb;
}

const std::string& QuerySql(const char* name) {
  for (const WorkloadQuery& q : EmployeeWorkload()) {
    if (q.name == name) return q.sql;
  }
  std::abort();
}

void RunQuery(benchmark::State& state, const char* name,
              RewriteOptions options) {
  const std::string& sql = QuerySql(name);
  for (auto _ : state) {
    auto result = Db().Query(sql, options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->size());
  }
}

// --- A1: coalesce hoisting (join-heavy query). -----------------------------

void BM_Hoisting_On(benchmark::State& state) {
  RewriteOptions options;
  options.hoist_coalesce = true;
  RunQuery(state, "join-1", options);
}

void BM_Hoisting_Off(benchmark::State& state) {
  RewriteOptions options;
  options.hoist_coalesce = false;
  RunQuery(state, "join-1", options);
}

BENCHMARK(BM_Hoisting_On)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hoisting_Off)->Unit(benchmark::kMillisecond);

// --- A2: pre-aggregation (aggregation-heavy query). ------------------------

void BM_Aggregation_FusedPreagg(benchmark::State& state) {
  RewriteOptions options;  // fused + pre-aggregated (default)
  RunQuery(state, "agg-1", options);
}

void BM_Aggregation_FusedNoPreagg(benchmark::State& state) {
  RewriteOptions options;
  options.pre_aggregate = false;
  RunQuery(state, "agg-1", options);
}

void BM_Aggregation_Unfused(benchmark::State& state) {
  RewriteOptions options;
  options.fuse_aggregation = false;
  RunQuery(state, "agg-1", options);
}

BENCHMARK(BM_Aggregation_FusedPreagg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregation_FusedNoPreagg)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aggregation_Unfused)->Unit(benchmark::kMillisecond);

// --- Final coalesce implementation on a realistic query output. ------------

void BM_FinalCoalesce_Native(benchmark::State& state) {
  RewriteOptions options;
  options.coalesce_impl = CoalesceImpl::kNative;
  RunQuery(state, "join-2", options);
}

void BM_FinalCoalesce_Window(benchmark::State& state) {
  RewriteOptions options;
  options.coalesce_impl = CoalesceImpl::kWindow;
  RunQuery(state, "join-2", options);
}

BENCHMARK(BM_FinalCoalesce_Native)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FinalCoalesce_Window)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace periodk

BENCHMARK_MAIN();
