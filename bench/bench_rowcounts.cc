// Reproduces paper Table 2: the number of result rows of every workload
// query (employees workload and the TPC-H subset at two scale factors).
// Absolute counts differ from the paper (synthetic data at reduced
// scale); the comparison points are the *relative* shapes: join-1/2 and
// diff-2 return large results, join-3/4 and the aggregations return
// small ones, and TPC-H counts grow mildly from the small to the large
// scale factor.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "datagen/employees.h"
#include "datagen/tpcbih.h"
#include "datagen/workloads.h"

namespace periodk {
namespace {



}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int n_employees = bench::EnvInt("PERIODK_BENCH_EMPLOYEES", 1000);
  double sf_small = bench::EnvDouble("PERIODK_BENCH_SF_SMALL", 0.002);
  double sf_large = bench::EnvDouble("PERIODK_BENCH_SF_LARGE", 0.02);

  bench::PrintBanner(
      "Table 2 -- number of query result rows",
      "Synthetic data; scale via PERIODK_BENCH_EMPLOYEES / _SF_SMALL / "
      "_SF_LARGE.");

  {
    EmployeesConfig config;
    config.num_employees = n_employees;
    TemporalDB db(config.domain);
    Status status = LoadEmployees(&db, config);
    if (!status.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nEmployees workload (%d employees, %zu salary rows)\n",
                n_employees, db.catalog().Get("salaries").size());
    bench::TablePrinter table({"Query", "Rows"}, {12, 12});
    table.PrintHeader();
    for (const WorkloadQuery& q : EmployeeWorkload()) {
      auto result = db.Query(q.sql);
      if (!result.ok()) {
        table.PrintRow({q.name, result.status().ToString()});
        continue;
      }
      table.PrintRow({q.name, std::to_string(result->size())});
    }
  }

  for (double sf : {sf_small, sf_large}) {
    TpcBihConfig config;
    config.scale_factor = sf;
    TemporalDB db(config.domain);
    Status status = LoadTpcBih(&db, config);
    if (!status.ok()) {
      std::fprintf(stderr, "datagen failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("\nTPC-BiH, SF %.4g (%zu lineitem rows)\n", sf,
                db.catalog().Get("lineitem").size());
    bench::TablePrinter table({"Query", "Rows"}, {12, 12});
    table.PrintHeader();
    for (const WorkloadQuery& q : TpcBihWorkload()) {
      auto result = db.Query(q.sql);
      if (!result.ok()) {
        table.PrintRow({q.name, result.status().ToString()});
        continue;
      }
      table.PrintRow({q.name, std::to_string(result->size())});
    }
  }
  return 0;
}
