// Reproduces paper Table 3 (bottom): TPC-H queries under snapshot
// semantics over the valid-time TPC-BiH dataset at two scale factors
// (the paper uses SF1 and SF10; we use two synthetic scales with the
// same 10x ratio).
//
// Expected shapes (paper Sec. 10.4): Seq scales roughly linearly with
// the scale factor; Nat (alignment) is one to three orders of magnitude
// slower on these aggregation-heavy queries and times out on the
// largest ones (paper: PG-Nat TO (2h) on Q1/Q9 at SF10).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "datagen/tpcbih.h"
#include "datagen/workloads.h"
#include "engine/temporal_ops.h"

namespace periodk {
namespace {

constexpr int64_t kSplitBudget = 30'000'000;



double TimeQuery(const TemporalDB& db, const std::string& sql,
                 const RewriteOptions& options, bool final_coalesce,
                 size_t* rows_out, int repeats) {
  try {
    return bench::TimeMedian(
        [&] {
          SplitBudgetScope budget(kSplitBudget);
          auto result = db.Query(sql, options);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          Relation relation = std::move(result.value());
          if (final_coalesce) relation = CoalesceNative(relation);
          *rows_out = relation.size();
        },
        repeats);
  } catch (const SplitBudgetExceeded&) {
    return -1.0;
  }
}

void RunScale(double sf, int repeats) {
  TpcBihConfig config;
  config.scale_factor = sf;
  TemporalDB db(config.domain);
  Status status = LoadTpcBih(&db, config);
  if (!status.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\nTPC-BiH, SF %.4g: %zu lineitem / %zu orders rows\n", sf,
              db.catalog().Get("lineitem").size(),
              db.catalog().Get("orders").size());
  RewriteOptions seq;
  RewriteOptions nat;
  nat.semantics = SnapshotSemantics::kAlignment;
  bench::TablePrinter table({"Query", "Seq", "Nat", "Rows(Seq)", "Bug(Nat)"},
                            {10, 12, 12, 12, 8});
  table.PrintHeader();
  for (const WorkloadQuery& q : TpcBihWorkload()) {
    size_t rows = 0, nat_rows = 0;
    double t_seq = TimeQuery(db, q.sql, seq, false, &rows, repeats);
    double t_nat = TimeQuery(db, q.sql, nat, true, &nat_rows, repeats);
    table.PrintRow({q.name, bench::TablePrinter::Seconds(t_seq),
                    t_nat < 0 ? "TO" : bench::TablePrinter::Seconds(t_nat),
                    std::to_string(rows), q.bug.empty() ? "-" : q.bug});
  }
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  double sf_small = bench::EnvDouble("PERIODK_BENCH_SF_SMALL", 0.002);
  double sf_large = bench::EnvDouble("PERIODK_BENCH_SF_LARGE", 0.02);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);
  bench::PrintBanner(
      "Table 3 (bottom) -- TPC-H under snapshot semantics (TPC-BiH)",
      "Seconds, median of " + std::to_string(repeats) +
          " runs.  TO = split fragment budget exceeded (paper: TO (2h)).\n"
          "Scale via PERIODK_BENCH_SF_SMALL / PERIODK_BENCH_SF_LARGE.");
  RunScale(sf_small, repeats);
  RunScale(sf_large, repeats);
  return 0;
}
