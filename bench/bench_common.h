// Shared harness code for the paper-reproduction benchmarks: wall-clock
// timing and aligned table printing in the style of the paper's Tables
// 2/3 and Figure 5 data series.
#ifndef PERIODK_BENCH_BENCH_COMMON_H_
#define PERIODK_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace periodk {
namespace bench {

/// Scale knobs from the environment (PERIODK_BENCH_*); fallback when
/// the variable is unset.
int EnvInt(const char* name, int fallback);
double EnvDouble(const char* name, double fallback);

/// Wall-clock seconds elapsed while running fn once.
double TimeOnce(const std::function<void()>& fn);

/// Median wall-clock seconds over `repeats` runs (paper: median over
/// 10/100 runs with warm cache; we default to fewer for CI-scale data).
double TimeMedian(const std::function<void()>& fn, int repeats = 3);

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  static std::string Seconds(double s);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// Prints the standard benchmark banner with the paper artifact this
/// binary reproduces.
void PrintBanner(const std::string& artifact, const std::string& note);

}  // namespace bench
}  // namespace periodk

#endif  // PERIODK_BENCH_BENCH_COMMON_H_
