// Reproduces paper Table 3 (top): runtimes of the ten snapshot queries
// over the employees dataset, comparing
//  * Seq      -- our rewriting with native coalescing,
//  * Seq-winC -- our rewriting with the SQL-style (window function)
//                coalescing, modelling what the middleware achieves on
//                a stock DBMS (PG-Seq / DBX-Seq / DBY-Seq),
//  * Nat      -- the alignment baseline (PG-Nat-like) plus a final
//                coalescing pass (as in the paper's methodology); its
//                buggy queries are flagged in the Bug column.
//
// Expected shapes (paper Sec. 10.3): joins comparable across systems;
// aggregations orders of magnitude faster for Seq thanks to
// pre-aggregation (except tiny inputs, agg-3); Nat competitive on
// diff-1, slower on diff-2; Nat "TO" rows mirror the paper's timeouts
// (here: split fragment budget exceeded).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "datagen/employees.h"
#include "datagen/workloads.h"
#include "engine/temporal_ops.h"

namespace periodk {
namespace {

constexpr int64_t kSplitBudget = 30'000'000;


/// Runs the query; returns median seconds, or -1 on budget timeout.
double TimeQuery(const TemporalDB& db, const std::string& sql,
                 const RewriteOptions& options, bool final_coalesce,
                 size_t* rows_out, int repeats) {
  try {
    double t = bench::TimeMedian(
        [&] {
          SplitBudgetScope budget(kSplitBudget);
          auto result = db.Query(sql, options);
          if (!result.ok()) {
            std::fprintf(stderr, "query failed: %s\n",
                         result.status().ToString().c_str());
            std::exit(1);
          }
          Relation relation = std::move(result.value());
          if (final_coalesce) relation = CoalesceNative(relation);
          *rows_out = relation.size();
        },
        repeats);
    return t;
  } catch (const SplitBudgetExceeded&) {
    return -1.0;
  }
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int n_employees = bench::EnvInt("PERIODK_BENCH_EMPLOYEES", 1000);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  EmployeesConfig config;
  config.num_employees = n_employees;
  TemporalDB db(config.domain);
  Status status = LoadEmployees(&db, config);
  if (!status.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", status.ToString().c_str());
    return 1;
  }

  bench::PrintBanner(
      "Table 3 (top) -- snapshot query runtimes, employees dataset",
      "Seconds, median of " + std::to_string(repeats) + " runs; " +
          std::to_string(n_employees) + " employees, " +
          std::to_string(db.catalog().Get("salaries").size()) +
          " salary rows.  TO = split fragment budget exceeded "
          "(paper: TO (2h)).  Scale via PERIODK_BENCH_EMPLOYEES.");

  RewriteOptions seq;  // defaults: ours
  RewriteOptions seq_win;
  seq_win.coalesce_impl = CoalesceImpl::kWindow;
  RewriteOptions nat;
  nat.semantics = SnapshotSemantics::kAlignment;

  bench::TablePrinter table(
      {"Query", "Seq", "Seq-winC", "Nat", "Rows(Seq)", "Bug(Nat)"},
      {10, 12, 12, 12, 12, 8});
  table.PrintHeader();
  for (const WorkloadQuery& q : EmployeeWorkload()) {
    size_t rows = 0, nat_rows = 0;
    double t_seq = TimeQuery(db, q.sql, seq, false, &rows, repeats);
    double t_win = TimeQuery(db, q.sql, seq_win, false, &rows, repeats);
    double t_nat =
        TimeQuery(db, q.sql, nat, /*final_coalesce=*/true, &nat_rows,
                  repeats);
    table.PrintRow({q.name, bench::TablePrinter::Seconds(t_seq),
                    bench::TablePrinter::Seconds(t_win),
                    t_nat < 0 ? "TO" : bench::TablePrinter::Seconds(t_nat),
                    std::to_string(rows), q.bug.empty() ? "-" : q.bug});
  }
  std::printf(
      "\nReading guide: Seq vs Seq-winC isolates the coalescing\n"
      "implementation; Seq vs Nat isolates the rewriting (pre-aggregated\n"
      "split vs align-then-aggregate).  On queries flagged AG/BD the Nat\n"
      "column also returns *incorrect* results (see bench_bug_matrix).\n");
  return 0;
}
