// Partition-parallel execution: the hot operators (interval-overlap
// join, hash aggregation, fused split+aggregate, native coalescing)
// fan their partitions out to the work-stealing pool
// (src/common/thread_pool.h).  This benchmark records the scaling
// curve over thread counts for each workload; thread count 1 is the
// sequential executor, bit for bit.  Results are BagEquals-checked
// against the sequential run before timing.  Record medians into
// BENCH_parallel.json per docs/benchmarks.md (note the machine's core
// count: speedups flatten at the physical parallelism, and a 1-core
// container shows pool overhead instead of speedup).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "ra/plan.h"
#include "rewrite/rewriter.h"

namespace periodk {
namespace {

constexpr TimePoint kDomainEnd = 4000;

Schema EncodedSchema() {
  return Schema::FromNames({"k", "v", "a_begin", "a_end"});
}

// `keys` distinct partition keys: the interval join buckets by them and
// the aggregation groups by them, so they bound the fan-out width.
Relation MakeTable(Rng* rng, int rows, int keys) {
  Relation rel(EncodedSchema());
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(0, kDomainEnd - 51);
    TimePoint e = b + rng->Range(1, 50);
    rel.AddRow({Value::Int(rng->Range(0, keys)),
                Value::Int(rng->Range(0, 1000)), Value::Int(b),
                Value::Int(e)});
  }
  return rel;
}

struct Workload {
  std::string name;
  PlanPtr plan;  // executable plan
};

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_PAR_ROWS", 60000);
  int keys = bench::EnvInt("PERIODK_BENCH_PAR_KEYS", 256);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "Partition-parallel execution: scaling over ExecOptions::num_threads",
      "Scale via PERIODK_BENCH_PAR_ROWS / _KEYS; threads 1 is the "
      "sequential executor.");

  Rng rng(20190802);
  TimeDomain domain{0, kDomainEnd};
  Catalog catalog;
  catalog.Put("r", MakeTable(&rng, rows, keys));
  catalog.Put("s", MakeTable(&rng, rows, keys));
  SnapshotRewriter rewriter(domain);
  Schema snap_schema = Schema::FromNames({"k", "v"});

  std::vector<Workload> workloads;
  {
    // Equi-key + overlap join: RewriteJoin's predicate shape; the
    // equi-key partitions are the parallel work units.
    PlanPtr q = MakeJoin(MakeScan("r", snap_schema),
                         MakeScan("s", snap_schema), Eq(Col(0), Col(2)));
    workloads.push_back(
        {"interval-join", rewriter.Rewrite(MakeProjectColumns(q, {0, 1, 3}))});
  }
  {
    // Grouped snapshot aggregation: hash aggregation plus the fused
    // split+aggregate per-group sweeps.
    PlanPtr q = MakeAggregate(
        MakeScan("r", snap_schema), {Col(0, "k")}, {Column("k")},
        {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
         AggExpr{AggFunc::kSum, Col(1), "s"}});
    workloads.push_back({"aggregation", rewriter.Rewrite(q)});
  }
  {
    // DISTINCT: coalesce-heavy (the per-group sweeps dominate).
    PlanPtr q = MakeDistinct(MakeScan("r", snap_schema));
    workloads.push_back({"distinct-coalesce", rewriter.Rewrite(q)});
  }

  const int thread_counts[] = {1, 2, 4, 8};
  bench::TablePrinter table(
      {"Workload", "Rows", "Out rows", "Threads", "Seconds", "Speedup",
       "Par tasks"},
      {18, 8, 9, 8, 10, 8, 10});
  table.PrintHeader();
  for (const Workload& w : workloads) {
    Relation reference = Execute(w.plan, catalog);
    double base = 0.0;
    for (int threads : thread_counts) {
      ExecOptions options;
      options.num_threads = threads;
      ExecStats stats;
      Relation result = Execute(w.plan, catalog, options, &stats);
      if (!result.BagEquals(reference)) {
        std::fprintf(stderr, "FATAL: %s diverges at %d threads\n",
                     w.name.c_str(), threads);
        return 1;
      }
      double secs = bench::TimeMedian(
          [&] { Execute(w.plan, catalog, options); }, repeats);
      if (threads == 1) base = secs;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx", base / secs);
      table.PrintRow({w.name, std::to_string(rows),
                      std::to_string(reference.size()),
                      std::to_string(threads),
                      bench::TablePrinter::Seconds(secs), speedup,
                      std::to_string(stats.parallel_tasks)});
    }
  }
  return 0;
}
