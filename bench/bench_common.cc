#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace periodk {
namespace bench {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoi(v);
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atof(v);
}

double TimeOnce(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double TimeMedian(const std::function<void()>& fn, int repeats) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(repeats));
  for (int i = 0; i < repeats; ++i) times.push_back(TimeOnce(fn));
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::PrintHeader() const {
  std::string line;
  for (size_t i = 0; i < headers_.size(); ++i) {
    std::printf("%-*s", widths_[i], headers_[i].c_str());
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Seconds(double s) {
  char buf[32];
  if (s < 0) return "N/A";
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

void PrintBanner(const std::string& artifact, const std::string& note) {
  std::printf("==========================================================\n");
  std::printf("periodk reproduction: %s\n", artifact.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("==========================================================\n");
  std::fflush(stdout);
}

}  // namespace bench
}  // namespace periodk
