// Mixed insert / AS-OF workload over the differential timeline index
// (engine/timeline_index.h WithDelta + middleware maintenance): indexed
// read latency must stay flat while writes stream in, because each
// append publishes a bounded delta next to the warm index instead of
// invalidating it.  Series: read-only indexed baseline, streaming
// inserts with differential maintenance (the claim: within ~2x of the
// baseline), rebuild-per-insert (the pre-differential behavior — every
// post-write read pays a full index rebuild), and the O(table) scan
// reference.  All outputs are checked row-exact against the scan path
// before anything is timed.  Record medians into
// BENCH_incremental_index.json per docs/benchmarks.md.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/temporal_ops.h"
#include "middleware/temporal_db.h"
#include "rewrite/rewriter.h"

namespace periodk {
namespace {

constexpr TimePoint kDomainEnd = 1000000;

/// Short-lived intervals (1..2000 ticks) over a wide domain, the same
/// shape as bench_timeslice: any instant sees a small alive fraction.
Row RandomRow(Rng* rng) {
  TimePoint b = rng->Range(0, kDomainEnd - 2001);
  TimePoint e = b + rng->Range(1, 2000);
  return {Value::Int(rng->Range(0, 63)), Value::Int(rng->Range(0, 1 << 20)),
          Value::Int(b), Value::Int(e)};
}

TemporalDB MakeDb(Rng* rng, int rows, const IndexMaintenanceOptions& maint) {
  TemporalDB db(TimeDomain{0, kDomainEnd});
  db.set_index_maintenance(maint);
  if (!db.CreatePeriodTable("t", {"k", "v", "ts", "te"}, "ts", "te").ok()) {
    std::fprintf(stderr, "FATAL: CreatePeriodTable failed\n");
    std::exit(1);
  }
  std::vector<Row> batch;
  batch.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) batch.push_back(RandomRow(rng));
  if (!db.InsertRows("t", std::move(batch)).ok()) {
    std::fprintf(stderr, "FATAL: bulk load failed\n");
    std::exit(1);
  }
  return db;
}

/// One timed probe; FATAL on error so timings never cover failures.
size_t Probe(const TemporalDB& db, TimePoint t) {
  auto result = db.Timeslice("t", t);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return result->size();
}

/// Row-exactness gate: the DB's (indexed) timeslice vs the scan path
/// over the current relation, same rows in the same order.
void CheckExact(const TemporalDB& db, TimePoint t, const char* series) {
  auto result = db.Timeslice("t", t);
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::shared_ptr<const Relation> rel = db.catalog().GetShared("t");
  Relation scanned = TimesliceEncoded(*rel, t);
  bool same = result->size() == scanned.size();
  for (size_t i = 0; same && i < scanned.size(); ++i) {
    // The timeslice drops the two trailing interval columns.
    for (size_t c = 0; same && c < result->schema().size(); ++c) {
      same = (*result).rows()[i][c] == scanned.rows()[i][c];
    }
  }
  if (!same) {
    std::fprintf(stderr, "FATAL: %s diverges from the scan at t=%lld\n",
                 series, static_cast<long long>(t));
    std::exit(1);
  }
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

std::string Sci(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", seconds);
  return buf;
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_INCR_ROWS", 100000);
  int writes = bench::EnvInt("PERIODK_BENCH_INCR_WRITES", 300);
  int probes_per_write = bench::EnvInt("PERIODK_BENCH_INCR_PROBES", 4);
  // Every 4th write is a batch of this many rows (a mixed single/bulk
  // insert stream), and the streaming series caps the compaction
  // threshold here so the fold-and-republish path is part of what is
  // measured, not just the delta appends.
  int batch_rows = bench::EnvInt("PERIODK_BENCH_INCR_BATCH_ROWS", 16);
  int compact_events = bench::EnvInt("PERIODK_BENCH_INCR_COMPACT_EVENTS", 256);
  // Rebuild-per-insert pays a full O(n log n) build per write; cap it
  // so the degenerate series stays bounded at record scale.
  int rebuild_writes =
      std::min(writes, bench::EnvInt("PERIODK_BENCH_INCR_REBUILD_WRITES", 20));

  bench::PrintBanner(
      "incremental index maintenance: AS-OF latency under streaming inserts",
      "Scale via PERIODK_BENCH_INCR_ROWS (preloaded rows, default 100000) "
      "and PERIODK_BENCH_INCR_WRITES (streamed inserts, default 300).");

  Rng rng(20260807);
  std::vector<TimePoint> probes;
  for (int i = 0; i < writes * probes_per_write; ++i) {
    probes.push_back(rng.Range(0, kDomainEnd));
  }

  bench::TablePrinter table(
      {"Series", "Rows", "Writes", "Read/q", "vs baseline"},
      {22, 9, 8, 12, 12});
  table.PrintHeader();

  // --- Read-only indexed baseline. -----------------------------------------
  double baseline;
  {
    TemporalDB db = MakeDb(&rng, rows, IndexMaintenanceOptions{});
    Probe(db, probes[0]);  // warm (lazy index build)
    for (int i = 0; i < 8; ++i) CheckExact(db, probes[i], "baseline");
    std::vector<double> lat;
    for (TimePoint t : probes) {
      lat.push_back(bench::TimeOnce([&] { Probe(db, t); }));
    }
    baseline = Median(std::move(lat));
    table.PrintRow({"read-only indexed", std::to_string(rows), "0",
                    Sci(baseline), "1.0x"});
  }

  // --- Streaming inserts, differential maintenance (this PR). --------------
  double streaming;
  double write_seconds;
  IndexMaintenanceStats maint_stats;
  {
    IndexMaintenanceOptions maint;
    maint.min_compaction_events = std::min<int64_t>(
        maint.min_compaction_events, compact_events);
    maint.max_compaction_events = compact_events;
    TemporalDB db = MakeDb(&rng, rows, maint);
    Probe(db, probes[0]);  // warm, so appends maintain differentially
    std::vector<double> lat;
    std::vector<double> wlat;
    size_t p = 0;
    for (int w = 0; w < writes; ++w) {
      std::vector<Row> batch;
      int n = (w % 4 == 3) ? batch_rows : 1;
      for (int i = 0; i < n; ++i) batch.push_back(RandomRow(&rng));
      wlat.push_back(bench::TimeOnce([&] {
        if (!db.InsertRows("t", std::move(batch)).ok()) {
          std::fprintf(stderr, "FATAL: streamed insert failed\n");
          std::exit(1);
        }
      }));
      for (int q = 0; q < probes_per_write; ++q, ++p) {
        lat.push_back(bench::TimeOnce([&] { Probe(db, probes[p]); }));
      }
    }
    for (int i = 0; i < 8; ++i) CheckExact(db, probes[i], "streaming");
    streaming = Median(std::move(lat));
    write_seconds = Median(std::move(wlat));
    maint_stats = db.index_maintenance_stats();
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%.2fx", streaming / baseline);
    table.PrintRow({"streaming differential", std::to_string(rows),
                    std::to_string(writes), Sci(streaming), rel});
  }

  // --- Rebuild-per-insert (pre-differential behavior). ---------------------
  double rebuild;
  {
    IndexMaintenanceOptions maint;
    maint.maintain_indexes = false;  // writes drop the index slot
    TemporalDB db = MakeDb(&rng, rows, maint);
    Probe(db, probes[0]);
    CheckExact(db, probes[1], "rebuild-per-insert");
    std::vector<double> lat;
    for (int w = 0; w < rebuild_writes; ++w) {
      Row row = RandomRow(&rng);
      if (!db.Insert("t", std::move(row)).ok()) {
        std::fprintf(stderr, "FATAL: insert failed\n");
        std::exit(1);
      }
      // The first read after the write pays the full lazy rebuild.
      lat.push_back(bench::TimeOnce([&] { Probe(db, probes[w]); }));
    }
    rebuild = Median(std::move(lat));
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%.1fx", rebuild / baseline);
    table.PrintRow({"rebuild-per-insert", std::to_string(rows),
                    std::to_string(rebuild_writes), Sci(rebuild), rel});
  }

  // --- O(table) scan reference. --------------------------------------------
  {
    TemporalDB db = MakeDb(&rng, rows, IndexMaintenanceOptions{});
    RewriteOptions opts = db.options();
    opts.use_timeline_index = false;
    db.set_options(opts);
    std::vector<double> lat;
    int scan_probes = std::min<int>(200, static_cast<int>(probes.size()));
    for (int i = 0; i < scan_probes; ++i) {
      lat.push_back(bench::TimeOnce([&] { Probe(db, probes[i]); }));
    }
    double scan = Median(std::move(lat));
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%.1fx", scan / baseline);
    table.PrintRow({"scan", std::to_string(rows), "0", Sci(scan), rel});
  }

  std::printf(
      "\nstreamed writes: %s s/insert (median); %s\n"
      "claim check: streaming read latency %.2fx of read-only baseline "
      "(target ~2x); rebuild-per-insert %.1fx\n",
      Sci(write_seconds).c_str(), maint_stats.ToString().c_str(),
      streaming / baseline, rebuild / baseline);
  return 0;
}
