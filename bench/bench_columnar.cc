// Columnar storage ablation (docs/architecture.md §9): the same plans
// over the same base tables stored as vector<Row> (kernel row lanes)
// vs typed columns (vectorized lanes reading contiguous endpoint
// arrays and packed keys).  Four workloads cover the hot loops the
// refactor targets: hash aggregation over a scan, the partition-then-
// sweep interval join, native coalescing, and the fused split-
// aggregate sweep.  Outputs are checked row-identical before timing.
// Record medians into BENCH_columnar.json per docs/benchmarks.md.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "ra/plan.h"

namespace periodk {
namespace {

constexpr TimePoint kDomainEnd = 50000;

Schema EncodedSchema() {
  return Schema::FromNames({"k", "v", "a_begin", "a_end"});
}

// `keys` distinct string keys, `vals` distinct small ints; intervals
// short (1..200) so sweep active sets stay realistic.  String keys are
// deliberate: the dictionary-code path is what the refactor claims
// keeps string workloads cheap.
Relation MakeTable(Rng* rng, int rows, int keys, int vals) {
  Relation rel(EncodedSchema());
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(0, kDomainEnd - 201);
    rel.AddRow({Value::String("key" + std::to_string(rng->Range(0, keys - 1))),
                Value::Int(rng->Range(0, vals - 1)), Value::Int(b),
                Value::Int(b + rng->Range(1, 200))});
  }
  return rel;
}

struct Workload {
  std::string name;
  PlanPtr plan;
};

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_COL_ROWS", 500000);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "columnar storage vs row storage on the interval-kernel hot paths",
      "Scale via PERIODK_BENCH_COL_ROWS (rows per table, default 500000).");

  Rng rng(20260807);
  int keys = rows / 64 + 1;
  Catalog row_cat;
  row_cat.Put("t", MakeTable(&rng, rows, keys, 4));
  row_cat.Put("u", MakeTable(&rng, rows, keys, 4));
  Catalog col_cat = row_cat;
  for (const std::string& name : col_cat.TableNames()) {
    Relation rel = col_cat.Get(name);
    rel.ToColumnar();
    col_cat.Put(name, std::move(rel));
  }

  PlanPtr scan = MakeScan("t", EncodedSchema());
  std::vector<Workload> workloads;
  workloads.push_back(
      {"hash-agg",
       MakeAggregate(scan, {Col(0, "k"), Col(1, "v")},
                     {Column("k"), Column("v")},
                     {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
                      AggExpr{AggFunc::kSum, Col(2), "s"}})});
  workloads.push_back(
      {"interval-join",
       MakeJoin(scan, MakeScan("u", EncodedSchema()),
                AndAll({Eq(Col(0), Col(4)), Lt(Col(2), Col(7)),
                        Lt(Col(6), Col(3))}))});
  workloads.push_back({"coalesce", MakeCoalesce(scan)});
  workloads.push_back(
      {"split-agg",
       MakeSplitAggregate(scan, {0},
                          {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
                           AggExpr{AggFunc::kSum, Col(1), "s"}},
                          /*gap_rows=*/false, TimeDomain{0, kDomainEnd})});

  bench::TablePrinter table(
      {"Workload", "Rows", "Out rows", "RowStore", "Columnar", "Speedup"},
      {15, 10, 12, 12, 12, 10});
  table.PrintHeader();
  for (const Workload& w : workloads) {
    Relation by_rows = Execute(w.plan, row_cat);
    Relation by_cols = Execute(w.plan, col_cat);
    // Row-identical, not just bag-equal: the vectorized lanes promise
    // the exact sequential row-path output.
    if (by_rows.size() != by_cols.size() || !by_rows.BagEquals(by_cols)) {
      std::fprintf(stderr, "FATAL: columnar path diverges on %s\n",
                   w.name.c_str());
      return 1;
    }
    for (size_t i = 0; i < by_rows.size(); ++i) {
      if (CompareRows(by_rows.rows()[i], by_cols.rows()[i]) != 0) {
        std::fprintf(stderr, "FATAL: row order diverges on %s at %zu\n",
                     w.name.c_str(), i);
        return 1;
      }
    }
    double row_s =
        bench::TimeMedian([&] { Execute(w.plan, row_cat); }, repeats);
    double col_s =
        bench::TimeMedian([&] { Execute(w.plan, col_cat); }, repeats);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", row_s / col_s);
    table.PrintRow({w.name, std::to_string(rows),
                    std::to_string(by_rows.size()),
                    bench::TablePrinter::Seconds(row_s),
                    bench::TablePrinter::Seconds(col_s), speedup});
  }
  return 0;
}
