// DAG-aware execution: REWR emits plans that reference shared subplans
// several times (snapshot DISTINCT splits a query against itself,
// snapshot EXCEPT ALL uses each rewritten input in both splits), so the
// executor's per-run memo turns what used to be exponential tree
// expansion for nested DISTINCT/EXCEPT chains into one execution per
// unique node.  The third workload measures the middleware serving
// path: repeated Query() calls with the bound-plan cache on vs off.
// Record medians into BENCH_dag_exec.json per docs/benchmarks.md.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "middleware/temporal_db.h"
#include "ra/plan.h"
#include "rewrite/rewriter.h"

namespace periodk {
namespace {


constexpr TimePoint kDomainEnd = 2000;

Schema SnapshotSchema() { return Schema::FromNames({"k", "v"}); }

Schema EncodedSchema() {
  return Schema::FromNames({"k", "v", "a_begin", "a_end"});
}

// Few distinct values so DISTINCT/EXCEPT have duplicates to chew on.
Relation MakeTable(Rng* rng, int rows) {
  Relation rel(EncodedSchema());
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(0, kDomainEnd - 51);
    TimePoint e = b + rng->Range(1, 50);
    rel.AddRow({Value::Int(rng->Range(0, 20)), Value::Int(rng->Range(0, 5)),
                Value::Int(b), Value::Int(e)});
  }
  return rel;
}

struct Workload {
  std::string name;
  PlanPtr plan;  // rewritten (executable) plan
};

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_DAG_ROWS", 4000);
  int depth = bench::EnvInt("PERIODK_BENCH_DAG_DEPTH", 4);
  int queries = bench::EnvInt("PERIODK_BENCH_DAG_QUERIES", 2000);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "DAG-aware execution: shared-subplan memo + middleware plan cache",
      "Scale via PERIODK_BENCH_DAG_ROWS / _DEPTH / _QUERIES.");

  Rng rng(20190802);
  TimeDomain domain{0, kDomainEnd};
  Catalog catalog;
  catalog.Put("r", MakeTable(&rng, rows));
  catalog.Put("s", MakeTable(&rng, rows));
  SnapshotRewriter rewriter(domain);

  std::vector<Workload> workloads;
  {
    // distinct(distinct(...(r))): every level splits its input against
    // itself, doubling the tree expansion.
    PlanPtr q = MakeScan("r", SnapshotSchema());
    for (int d = 0; d < depth; ++d) q = MakeDistinct(q);
    workloads.push_back({"nested-distinct", rewriter.Rewrite(q)});
  }
  {
    // ((r - s) - s) - ...: each EXCEPT references its left input in
    // both N_sch splits.
    PlanPtr q = MakeScan("r", SnapshotSchema());
    for (int d = 0; d < depth; ++d) {
      q = MakeExceptAll(q, MakeScan("s", SnapshotSchema()));
    }
    workloads.push_back({"nested-except", rewriter.Rewrite(q)});
  }

  bench::TablePrinter table({"Workload", "Rows", "Out rows", "NoMemo",
                             "Memo", "Speedup", "Hits", "Nodes"},
                            {16, 8, 10, 12, 12, 9, 6, 12});
  table.PrintHeader();
  for (const Workload& w : workloads) {
    // Sanity: identical bags before timing anything.
    ExecStats memo_stats;
    Relation memoized = Execute(w.plan, catalog, &memo_stats);
    ExecStats ref_stats;
    Relation expanded =
        Execute(w.plan, catalog, &ref_stats, /*memoize=*/false);
    if (!memoized.BagEquals(expanded)) {
      std::fprintf(stderr, "FATAL: memoized execution diverges on %s\n",
                   w.name.c_str());
      return 1;
    }
    double no_memo = bench::TimeMedian(
        [&] { Execute(w.plan, catalog, nullptr, /*memoize=*/false); },
        repeats);
    double memo = bench::TimeMedian(
        [&] { Execute(w.plan, catalog); }, repeats);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", no_memo / memo);
    char nodes[32];
    std::snprintf(nodes, sizeof(nodes), "%lld vs %lld",
                  static_cast<long long>(memo_stats.nodes_executed),
                  static_cast<long long>(ref_stats.nodes_executed));
    table.PrintRow({w.name, std::to_string(rows),
                    std::to_string(memoized.size()),
                    bench::TablePrinter::Seconds(no_memo),
                    bench::TablePrinter::Seconds(memo), speedup,
                    std::to_string(memo_stats.memo_hits), nodes});
  }

  // Serving workload: the same statement issued over and over.  With
  // the plan cache every call after the first skips parse/bind/rewrite.
  TemporalDB db(domain);
  {
    // Point-lookup-sized tables: a serving workload's per-query work is
    // small, which is exactly when parse/bind/rewrite overhead matters.
    Relation r = MakeTable(&rng, 64);
    Relation s = MakeTable(&rng, 64);
    if (!db.PutPeriodTable("r", std::move(r), "a_begin", "a_end").ok() ||
        !db.PutPeriodTable("s", std::move(s), "a_begin", "a_end").ok()) {
      std::fprintf(stderr, "FATAL: period table setup failed\n");
      return 1;
    }
  }
  const std::string sql =
      "SEQ VT (SELECT r.k, count(*) AS cnt FROM r, s "
      "WHERE r.k = s.k AND r.v >= 1 GROUP BY r.k)";
  auto serve = [&](int n) {
    for (int i = 0; i < n; ++i) {
      auto result = db.Query(sql);
      if (!result.ok()) {
        std::fprintf(stderr, "FATAL: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
    }
  };
  db.set_plan_cache_enabled(false);
  double uncached = bench::TimeMedian([&] { serve(queries); }, repeats);
  db.set_plan_cache_enabled(true);
  double cached = bench::TimeMedian([&] { serve(queries); }, repeats);

  std::printf("\nrepeated-query serving (%d x same statement):\n", queries);
  bench::TablePrinter serving({"Plan cache", "Total", "Queries/s"},
                              {12, 12, 12});
  serving.PrintHeader();
  char qps[32];
  std::snprintf(qps, sizeof(qps), "%.0f", queries / uncached);
  serving.PrintRow({"off", bench::TablePrinter::Seconds(uncached), qps});
  std::snprintf(qps, sizeof(qps), "%.0f", queries / cached);
  serving.PrintRow({"on", bench::TablePrinter::Seconds(cached), qps});
  std::printf("plan-cache speedup: %.2fx; %s\n", uncached / cached,
              db.plan_cache_stats().ToString().c_str());
  return 0;
}
