// Temporal-join hot path: the sweep-based interval-overlap join
// (engine/interval_join.h) against the nested-loop reference it
// replaces.  Three workloads mirror the join shapes of the paper's
// Sec. 10 evaluation: the equi+overlap shape RewriteJoin emits, the
// overlap-only self-join that previously degenerated to O(n^2), and a
// skewed-duration mix (a few domain-spanning intervals among many short
// ones) that stresses the sweep's active sets.  Record medians into
// BENCH_interval_join.json per docs/benchmarks.md.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "engine/interval_join.h"
#include "ra/plan.h"

namespace periodk {
namespace {


constexpr TimePoint kDomainEnd = 50000;

Schema EncodedSchema() {
  return Schema::FromNames({"k", "v", "a_begin", "a_end"});
}

// `keys` distinct key values (1 = overlap-only shape), `long_chance`
// fraction of domain-spanning intervals, the rest short (1..200).
Relation MakeTable(Rng* rng, int rows, int keys, double long_chance) {
  Relation rel(EncodedSchema());
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b;
    TimePoint e;
    if (rng->Chance(long_chance)) {
      b = 0;
      e = kDomainEnd;
    } else {
      b = rng->Range(0, kDomainEnd - 201);
      e = b + rng->Range(1, 200);
    }
    rel.AddRow({Value::Int(rng->Range(0, keys - 1)), Value::Int(i),
                Value::Int(b), Value::Int(e)});
  }
  return rel;
}

struct Workload {
  std::string name;
  PlanPtr join;      // routed through the sweep by the executor
  Catalog catalog;
};

ExprPtr OverlapPred() {
  // b1 < e2 AND b2 < e1 over the trailing PERIODENC columns.
  return And(Lt(Col(2), Col(7)), Lt(Col(6), Col(3)));
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int rows = bench::EnvInt("PERIODK_BENCH_JOIN_ROWS", 4000);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "interval-overlap join vs nested-loop fallback",
      "Scale via PERIODK_BENCH_JOIN_ROWS (rows per input, default 4000).");

  Rng rng(20190731);
  std::vector<Workload> workloads;
  {
    // REWR's equi+overlap shape: theta' AND overlaps.
    Workload w;
    w.name = "equi+overlap";
    w.catalog.Put("l", MakeTable(&rng, rows, rows / 64 + 1, 0.0));
    w.catalog.Put("r", MakeTable(&rng, rows, rows / 64 + 1, 0.0));
    w.join = MakeJoin(MakeScan("l", EncodedSchema()),
                      MakeScan("r", EncodedSchema()),
                      And(Eq(Col(0), Col(4)), OverlapPred()));
    workloads.push_back(std::move(w));
  }
  {
    // Pure temporal self-join: no equi-key, one sweep bucket.
    Workload w;
    w.name = "overlap-self";
    w.catalog.Put("t", MakeTable(&rng, rows, 1, 0.0));
    w.join = MakeJoin(MakeScan("t", EncodedSchema()),
                      MakeScan("t", EncodedSchema()), OverlapPred());
    workloads.push_back(std::move(w));
  }
  {
    // Skewed durations: 1% of intervals span the whole domain.
    Workload w;
    w.name = "skewed-duration";
    w.catalog.Put("l", MakeTable(&rng, rows, 1, 0.01));
    w.catalog.Put("r", MakeTable(&rng, rows, 1, 0.01));
    w.join = MakeJoin(MakeScan("l", EncodedSchema()),
                      MakeScan("r", EncodedSchema()), OverlapPred());
    workloads.push_back(std::move(w));
  }

  bench::TablePrinter table(
      {"Workload", "Rows/side", "Out rows", "NestedLoop", "Sweep", "Speedup"},
      {18, 10, 12, 12, 12, 10});
  table.PrintHeader();
  for (Workload& w : workloads) {
    const Relation& left = w.catalog.Get(w.join->left->table);
    const Relation& right = w.catalog.Get(w.join->right->table);
    // Sanity: identical bags before timing anything.
    Relation sweep = Execute(w.join, w.catalog);
    Relation reference = NestedLoopJoin(*w.join, left, right);
    if (!sweep.BagEquals(reference)) {
      std::fprintf(stderr, "FATAL: sweep join diverges on %s\n",
                   w.name.c_str());
      return 1;
    }
    double nested = bench::TimeMedian(
        [&] { NestedLoopJoin(*w.join, left, right); }, repeats);
    double swept =
        bench::TimeMedian([&] { Execute(w.join, w.catalog); }, repeats);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", nested / swept);
    table.PrintRow({w.name, std::to_string(rows),
                    std::to_string(sweep.size()),
                    bench::TablePrinter::Seconds(nested),
                    bench::TablePrinter::Seconds(swept), speedup});
  }
  return 0;
}
