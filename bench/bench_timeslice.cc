// Timeslice serving hot path: the checkpointed timeline index
// (engine/timeline_index.h) against the O(table) scan
// (TimesliceEncoded) it bypasses — the tau_T lookup behind every
// `SEQ VT AS OF t` query and `TemporalDB::Timeslice()` call.  Measures
// point timeslices across table sizes (indexed vs scan, plus the
// one-off build cost amortized over the lookups) and the sensitivity to
// the checkpoint interval K (replay length vs checkpoint memory).
// Record medians into BENCH_timeslice.json per docs/benchmarks.md.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "engine/temporal_ops.h"
#include "engine/timeline_index.h"
#include "ra/plan.h"

namespace periodk {
namespace {

constexpr TimePoint kDomainEnd = 1000000;

Schema EncodedSchema() {
  return Schema::FromNames({"k", "v", "a_begin", "a_end"});
}

/// Short-lived intervals (1..2000 ticks) over a wide domain: the
/// time-travel dashboard shape, where any instant sees a small fraction
/// of the table's history alive.
Relation MakeTable(Rng* rng, int rows) {
  Relation rel(EncodedSchema());
  rel.Reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(0, kDomainEnd - 2001);
    TimePoint e = b + rng->Range(1, 2000);
    rel.AddRow({Value::Int(rng->Range(0, 63)), Value::Int(i), Value::Int(b),
                Value::Int(e)});
  }
  return rel;
}

/// Per-query times span 1e-7..1e-2 s, far below TablePrinter::Seconds'
/// fixed 4 decimals, so print them in scientific notation.
std::string Sci(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", seconds);
  return buf;
}

std::vector<TimePoint> ProbePoints(Rng* rng, int count) {
  std::vector<TimePoint> probes;
  probes.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) probes.push_back(rng->Range(0, kDomainEnd));
  return probes;
}

}  // namespace
}  // namespace periodk

int main() {
  using namespace periodk;
  int max_rows = bench::EnvInt("PERIODK_BENCH_TSLICE_ROWS", 500000);
  int probes_n = bench::EnvInt("PERIODK_BENCH_TSLICE_PROBES", 200);
  int repeats = bench::EnvInt("PERIODK_BENCH_REPEATS", 3);

  bench::PrintBanner(
      "timeline-index timeslice vs O(table) scan",
      "Scale via PERIODK_BENCH_TSLICE_ROWS (largest table, default 500000) "
      "and PERIODK_BENCH_TSLICE_PROBES (point lookups per run).");

  Rng rng(20260731);

  // --- Indexed vs scan across table sizes (default K). ---------------------
  bench::TablePrinter table({"Rows", "K", "Checkpoints", "Build", "Scan/q",
                             "Indexed/q", "Speedup"},
                            {9, 7, 12, 10, 12, 12, 10});
  table.PrintHeader();
  std::vector<int> sizes;
  for (int n = max_rows; n >= 1000; n /= 10) sizes.insert(sizes.begin(), n);
  for (int rows : sizes) {
    auto rel = std::make_shared<const Relation>(MakeTable(&rng, rows));
    std::vector<TimePoint> probes = ProbePoints(&rng, probes_n);
    auto index = TimelineIndex::Build(rel);
    if (index == nullptr) {
      std::fprintf(stderr, "FATAL: index refused a well-formed table\n");
      return 1;
    }
    // Sanity: row-exact against the scan path before timing anything.
    for (TimePoint t : probes) {
      Relation indexed = index->Timeslice(t);
      Relation scanned = TimesliceEncoded(*rel, t);
      if (indexed.size() != scanned.size() ||
          !indexed.BagEquals(scanned)) {
        std::fprintf(stderr, "FATAL: indexed timeslice diverges at t=%lld\n",
                     static_cast<long long>(t));
        return 1;
      }
    }
    double build = bench::TimeOnce([&] { TimelineIndex::Build(rel); });
    double scan = bench::TimeMedian(
        [&] {
          for (TimePoint t : probes) TimesliceEncoded(*rel, t);
        },
        repeats);
    double indexed = bench::TimeMedian(
        [&] {
          for (TimePoint t : probes) index->Timeslice(t);
        },
        repeats);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx", scan / indexed);
    table.PrintRow({std::to_string(rows),
                    std::to_string(index->checkpoint_interval()),
                    std::to_string(index->num_checkpoints()),
                    bench::TablePrinter::Seconds(build),
                    Sci(scan / probes_n), Sci(indexed / probes_n), speedup});
  }

  // --- Checkpoint-interval sweep on the largest table. ---------------------
  std::printf("\nCheckpoint-interval sensitivity (%d rows): replay length "
              "vs checkpoint count.\n", max_rows);
  bench::TablePrinter ktable({"K", "Checkpoints", "Build", "Indexed/q"},
                             {7, 12, 10, 12});
  ktable.PrintHeader();
  auto rel = std::make_shared<const Relation>(MakeTable(&rng, max_rows));
  std::vector<TimePoint> probes = ProbePoints(&rng, probes_n);
  // K = 1 is exercised by the ctest edge cases; at bench scale it would
  // checkpoint after every event (O(#events * avg alive) memory).
  for (int64_t k : {int64_t{16}, int64_t{64}, int64_t{256}, int64_t{4096}}) {
    auto index = TimelineIndex::Build(rel, k);
    double build = bench::TimeOnce([&] { TimelineIndex::Build(rel, k); });
    double indexed = bench::TimeMedian(
        [&] {
          for (TimePoint t : probes) index->Timeslice(t);
        },
        repeats);
    ktable.PrintRow({std::to_string(k),
                     std::to_string(index->num_checkpoints()),
                     bench::TablePrinter::Seconds(build),
                     Sci(indexed / probes_n)});
  }
  return 0;
}
