// Lightweight status / result types used at fallible API boundaries
// (SQL parsing, binding, middleware entry points).  Internal engine code
// throws EngineError for invariant violations; the middleware converts
// escaped exceptions into a Status so that library consumers never see
// exceptions cross the public API (RocksDB-style Status discipline).
#ifndef PERIODK_COMMON_STATUS_H_
#define PERIODK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace periodk {

/// Error taxonomy for the library.  kOk is represented by Status::OK().
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kBindError,
  kNotFound,
  kAlreadyExists,
  kUnsupported,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "ParseError").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a message.  Cheap to copy
/// in the OK case (empty message).  [[nodiscard]] at class level: a
/// dropped Status is a swallowed error, so every compiler flags the
/// discard site (tools/periodk_lint.py additionally enforces the
/// per-declaration markers as documentation).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  [[nodiscard]] static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error.  Modeled after absl::StatusOr / arrow::Result.
/// [[nodiscard]] like Status: discarding a Result loses the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Internal engine failure.  Thrown by execution code on invariant
/// violations (e.g. type mismatch that escaped binding); converted to
/// Status::Internal at the middleware boundary.
class EngineError : public std::runtime_error {
 public:
  explicit EngineError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace periodk

#endif  // PERIODK_COMMON_STATUS_H_
