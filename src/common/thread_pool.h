// A small work-stealing thread pool for intra-query parallelism.  The
// engine's hot operators (interval-overlap join, hash aggregation, the
// per-group coalesce/split-aggregate sweeps) already partition their
// work before processing it; this pool fans those partitions out to
// workers.
//
// Design: one deque per executor (the constructing thread plus
// `num_threads - 1` spawned workers).  An executor pops its own deque
// LIFO (cache-warm) and steals from other deques FIFO (oldest first,
// the classic Chase-Lev discipline, here with a per-deque mutex for
// simplicity — task granularity is whole partitions, so queue traffic
// is tiny next to task cost).  The thread that calls Run() participates
// in execution, so a pool of `num_threads` applies exactly that much
// CPU and Run() never deadlocks even with zero spawned workers.
//
// Exceptions thrown by tasks are captured and the first one is
// rethrown from Run() after the batch completes (engine operators
// throw EngineError; a parallel operator must not lose it).
#ifndef PERIODK_COMMON_THREAD_POOL_H_
#define PERIODK_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace periodk {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller of Run() is the
  /// remaining executor.  `num_threads <= 1` spawns nothing and Run()
  /// degenerates to a sequential loop.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs every task to completion; the calling thread executes tasks
  /// alongside the workers.  Rethrows the first task exception after
  /// the whole batch has finished (remaining tasks still run, so no
  /// task observes a half-abandoned batch).
  void Run(std::vector<std::function<void()>> tasks);

  /// Fire-and-forget: enqueues one task for the workers and returns
  /// immediately (runs it inline when the pool spawned no workers).
  /// Background tasks own their error handling — exceptions are
  /// swallowed, never rethrown (there is no caller left to receive
  /// them).  An owner that posted tasks must Drain() before destroying
  /// the pool: destruction stops workers without claiming queued tasks.
  /// Used for index-compaction handoff (middleware/temporal_db.cc).
  void Post(std::function<void()> task);

  /// Blocks until every task Post()ed so far has finished.  Safe to
  /// call concurrently with Post from other threads; tasks posted while
  /// draining extend the wait.
  void Drain() PERIODK_EXCLUDES(drain_mu_);

 private:
  struct Queue {
    Mutex mu;
    std::deque<std::function<void()>> tasks PERIODK_GUARDED_BY(mu);
  };

  /// Pops and runs one task: own queue LIFO, then steals FIFO from the
  /// other queues.  Returns false when every queue is empty.
  bool TryRunOne(size_t home);
  void WorkerLoop(size_t id);

  // queues_[0] belongs to the Run() caller; queues_[1..] to workers.
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  Mutex wake_mu_;
  CondVar wake_cv_;
  // Tasks pushed but not yet claimed; workers sleep while it is zero.
  std::atomic<int64_t> pending_{0};
  bool stop_ PERIODK_GUARDED_BY(wake_mu_) = false;

  // Post()/Drain() completion accounting (Run() has its own per-batch
  // state and never touches these).
  Mutex drain_mu_;
  CondVar drain_cv_;
  int64_t detached_remaining_ PERIODK_GUARDED_BY(drain_mu_) = 0;
};

/// Creates the pool on first use: a query whose operators all stay
/// single-chunk (small tables, the cached-plan serving path) never
/// spawns a thread, while the first real fan-out pays the spawn cost
/// once per execution.  Not itself thread-safe — it lives in the
/// single-threaded executor driver, which is the only caller of get().
class LazyThreadPool {
 public:
  explicit LazyThreadPool(int num_threads) : num_threads_(num_threads) {}
  int num_threads() const { return num_threads_; }
  ThreadPool* get() {
    if (pool_ == nullptr && num_threads_ > 1) {
      pool_ = std::make_unique<ThreadPool>(num_threads_);
    }
    return pool_.get();
  }

 private:
  int num_threads_;
  std::unique_ptr<ThreadPool> pool_;
};

/// A contiguous partition of [0, n): chunk i covers [ranges[i].first,
/// ranges[i].second).  At most 4 chunks per thread, each at least
/// `min_grain` items (so tiny inputs stay sequential);
/// `num_threads <= 1` yields one chunk.  Call sites preallocate one
/// output slot per chunk and concatenate in chunk order, which makes
/// the parallel result independent of scheduling.
std::vector<std::pair<int64_t, int64_t>> PlanChunks(int num_threads,
                                                    int64_t n,
                                                    int64_t min_grain);

/// Runs body(chunk_index, begin, end) over the planned chunks — inline
/// when there is a single chunk (the sequential path stays free of any
/// pool machinery), on the pool otherwise.
void RunChunks(ThreadPool* pool,
               const std::vector<std::pair<int64_t, int64_t>>& ranges,
               const std::function<void(size_t, int64_t, int64_t)>& body);

}  // namespace periodk

#endif  // PERIODK_COMMON_THREAD_POOL_H_
