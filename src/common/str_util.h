// Small string helpers (the toolchain lacks std::format).
#ifndef PERIODK_COMMON_STR_UTIL_H_
#define PERIODK_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

namespace periodk {

/// Concatenates the stream representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins the elements of a container with a separator, using ToString()
/// on elements when available via the functor.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, const std::string& sep, Fn fn) {
  std::string out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out += sep;
    first = false;
    out += fn(item);
  }
  return out;
}

inline std::string Join(const std::vector<std::string>& items,
                        const std::string& sep) {
  return JoinMapped(items, sep, [](const std::string& s) { return s; });
}

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// SQL LIKE matching with % (any sequence) and _ (single char).
bool SqlLikeMatch(const std::string& text, const std::string& pattern);

}  // namespace periodk

#endif  // PERIODK_COMMON_STR_UTIL_H_
