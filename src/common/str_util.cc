#include "common/str_util.h"

#include <cctype>

namespace periodk {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool SqlLikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard match with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace periodk
