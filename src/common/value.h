// Dynamically typed SQL value used throughout the engine and the
// annotated-relation layers.  The engine is dynamically typed (SQLite
// style): a column may in principle hold any value type, and binding
// performs only light checking.  Numeric comparisons treat int64 and
// double uniformly.
#ifndef PERIODK_COMMON_VALUE_H_
#define PERIODK_COMMON_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace periodk {

enum class ValueType { kNull, kBool, kInt, kDouble, kString };

/// Returns "null", "bool", "int", "double" or "string".
const char* ValueTypeName(ValueType type);

/// A single SQL value.  Nulls compare equal to each other under the total
/// order used for sorting/grouping (Compare); SQL three-valued comparison
/// semantics (null-propagating) live in SqlCompare and in the expression
/// evaluator.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Cheap typed accessors: a pointer to the payload when the value has
  /// exactly that type, nullptr otherwise.  Unlike As*(), these never
  /// throw, so hot loops can branch on one pointer test instead of
  /// paying a type() switch plus a checked std::get.
  const bool* TryBool() const noexcept { return std::get_if<bool>(&v_); }
  const int64_t* TryInt() const noexcept { return std::get_if<int64_t>(&v_); }
  const double* TryDouble() const noexcept { return std::get_if<double>(&v_); }
  const std::string* TryString() const noexcept {
    return std::get_if<std::string>(&v_);
  }

  /// Numeric value as double; requires is_numeric().
  double NumericAsDouble() const;

  /// Total order used for sorting and grouping: null < bool < numeric <
  /// string; nulls are equal; int/double are compared numerically.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form: null -> "NULL", strings unquoted, doubles shortest
  /// round-trippable form.
  std::string ToString() const;

  /// 64-bit hash consistent with Compare-equality (int 3 and double 3.0
  /// hash identically).
  uint64_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}
  Repr v_;
};

/// SQL comparison: returns nullopt when either side is NULL or the types
/// are incomparable (e.g. int vs string); otherwise <0/0/>0.
std::optional<int> SqlCompare(const Value& a, const Value& b);

/// A tuple of values; used both as an engine row and as an abstract-model
/// tuple.
using Row = std::vector<Value>;

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  size_t operator()(const Row& row) const;
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

/// Lexicographic total order over rows (element-wise Value::Compare).
int CompareRows(const Row& a, const Row& b);

struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    return CompareRows(a, b) < 0;
  }
};

/// "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace periodk

#endif  // PERIODK_COMMON_VALUE_H_
