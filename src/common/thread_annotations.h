// Clang Thread Safety Analysis support: annotation macros plus thin
// annotated wrappers over the standard mutexes.  With clang, building
// with -Wthread-safety turns the repo's lock discipline (which mutex
// guards which field, which lock must be held where, lock ordering)
// into compile-time errors; with other compilers the macros expand to
// nothing and the wrappers are zero-cost pass-throughs.
//
// Policy (enforced by tools/periodk_lint.py, rule `naked-mutex`): all
// synchronization in src/ goes through these wrappers — a naked
// std::mutex cannot carry annotations, so it is invisible to the
// analysis.  See docs/architecture.md §10 for the full static-analysis
// gate description and the suppression policy.
//
// The macro set mirrors the canonical one in the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed so
// it cannot collide with a consumer's copy of the same macros.
#ifndef PERIODK_COMMON_THREAD_ANNOTATIONS_H_
#define PERIODK_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PERIODK_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PERIODK_THREAD_ANNOTATION
#define PERIODK_THREAD_ANNOTATION(x)  // not clang: annotations are comments
#endif

/// A type that acts as a lock (attached to the wrapper classes below).
#define PERIODK_CAPABILITY(x) PERIODK_THREAD_ANNOTATION(capability(x))
/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PERIODK_SCOPED_CAPABILITY \
  PERIODK_THREAD_ANNOTATION(scoped_lockable)
/// Field attribute: reads and writes require holding `x`.
#define PERIODK_GUARDED_BY(x) PERIODK_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field attribute: dereferences require holding `x`.
#define PERIODK_PT_GUARDED_BY(x) PERIODK_THREAD_ANNOTATION(pt_guarded_by(x))
/// Lock-ordering declarations (deadlock detection).
#define PERIODK_ACQUIRED_BEFORE(...) \
  PERIODK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PERIODK_ACQUIRED_AFTER(...) \
  PERIODK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Function attribute: the caller must hold the capability (exclusively
/// / at least shared).
#define PERIODK_REQUIRES(...) \
  PERIODK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PERIODK_REQUIRES_SHARED(...) \
  PERIODK_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function attribute: the function acquires / releases the capability.
#define PERIODK_ACQUIRE(...) \
  PERIODK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PERIODK_ACQUIRE_SHARED(...) \
  PERIODK_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define PERIODK_RELEASE(...) \
  PERIODK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PERIODK_RELEASE_SHARED(...) \
  PERIODK_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Release of a capability held in either mode (scoped-guard dtors).
#define PERIODK_RELEASE_GENERIC(...) \
  PERIODK_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
/// Function attribute: the caller must NOT hold the capability
/// (non-reentrancy / deadlock documentation).
#define PERIODK_EXCLUDES(...) \
  PERIODK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function attribute: returns a reference to the given capability.
#define PERIODK_RETURN_CAPABILITY(x) \
  PERIODK_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: the function body is not analyzed.  Reserved for the
/// wrapper internals below and for documented unsynchronized accessors;
/// never allowed on hot-path operator or middleware methods (see the
/// suppression policy in docs/architecture.md §10).
#define PERIODK_NO_THREAD_SAFETY_ANALYSIS \
  PERIODK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace periodk {

/// std::mutex carrying the `capability` annotation, so fields can be
/// declared PERIODK_GUARDED_BY(mu_) against it.
class PERIODK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PERIODK_ACQUIRE() { mu_.lock(); }
  void Unlock() PERIODK_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex carrying the `capability` annotation: exclusive
/// (writer) and shared (reader) modes.
class PERIODK_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PERIODK_ACQUIRE() { mu_.lock(); }
  void Unlock() PERIODK_RELEASE() { mu_.unlock(); }
  void LockShared() PERIODK_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PERIODK_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex (std::lock_guard counterpart).
class PERIODK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PERIODK_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PERIODK_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over SharedMutex (writer side).
class PERIODK_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) PERIODK_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexLock() PERIODK_RELEASE() { mu_.Unlock(); }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock over SharedMutex (reader side).
class PERIODK_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) PERIODK_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  // Generic release: the analysis tracks that this guard holds the
  // capability in shared mode and releases whatever was acquired.
  ~SharedReaderLock() PERIODK_RELEASE_GENERIC() { mu_.UnlockShared(); }
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex.  Wait() is annotated
/// REQUIRES(mu): the analysis checks that callers hold the mutex, and
/// treats it as held across the call (the internal unlock/relock is
/// invisible to the analysis, which matches the caller-visible
/// contract).  No predicate overload on purpose: a predicate lambda
/// reading GUARDED_BY fields would be analyzed as an unlocked context,
/// so callers loop explicitly:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PERIODK_REQUIRES(mu) { cv_.wait(mu.mu_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on the raw std::mutex directly (it is
  // BasicLockable), bypassing the annotated Lock/Unlock so the analysis
  // keeps seeing the capability as held across Wait().
  std::condition_variable_any cv_;
};

}  // namespace periodk

#endif  // PERIODK_COMMON_THREAD_ANNOTATIONS_H_
