#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace periodk {

namespace {

// Order of type classes in the sorting total order.
int TypeClass(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;  // numeric types compare with each other
    case ValueType::kString:
      return 3;
  }
  return 4;
}

int Sign(double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); }

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

double Value::NumericAsDouble() const {
  return type() == ValueType::kInt ? static_cast<double>(AsInt()) : AsDouble();
}

int Value::Compare(const Value& other) const {
  int ca = TypeClass(type());
  int cb = TypeClass(other.type());
  if (ca != cb) return ca < cb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = AsBool(), b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
      if (other.type() == ValueType::kInt) {
        int64_t a = AsInt(), b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      return Sign(static_cast<double>(AsInt()) - other.AsDouble());
    case ValueType::kDouble:
      if (other.type() == ValueType::kInt) {
        return Sign(AsDouble() - static_cast<double>(other.AsInt()));
      }
      return Sign(AsDouble() - other.AsDouble());
    case ValueType::kString:
      return AsString().compare(other.AsString()) < 0
                 ? -1
                 : (AsString() == other.AsString() ? 0 : 1);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[32];
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%.6g", d);
      }
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return Mix64(0x6e756c6cULL);
    case ValueType::kBool:
      return Mix64(AsBool() ? 2 : 1);
    case ValueType::kInt:
      // Hash integers through their double representation when exactly
      // representable so that Int(3) and Double(3.0) collide, matching
      // Compare-equality.  All benchmark integers are < 2^53.
      return Mix64(static_cast<uint64_t>(AsInt()) ^ 0x496e74ULL);
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)) ^
                     0x496e74ULL);
      }
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    case ValueType::kString: {
      uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
      for (char c : AsString()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
      }
      return Mix64(h);
    }
  }
  return 0;
}

std::optional<int> SqlCompare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (a.is_numeric() != b.is_numeric() &&
      (a.type() == ValueType::kString || b.type() == ValueType::kString ||
       a.type() == ValueType::kBool || b.type() == ValueType::kBool)) {
    return std::nullopt;
  }
  return a.Compare(b);
}

size_t RowHash::operator()(const Row& row) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ row.size();
  for (const Value& v : row) {
    h = h * 0x100000001b3ULL + v.Hash();
  }
  return Mix64(h);
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  return CompareRows(a, b) == 0;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace periodk
