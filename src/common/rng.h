// Deterministic pseudo-random number generation for data generators and
// property tests.  Every generator in the repository is seeded so that
// datasets, workloads and randomized tests are exactly reproducible.
#ifndef PERIODK_COMMON_RNG_H_
#define PERIODK_COMMON_RNG_H_

#include <cstdint>

namespace periodk {

/// splitmix64: tiny, fast, high-quality 64-bit PRNG.  Not for
/// cryptographic use.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace periodk

#endif  // PERIODK_COMMON_RNG_H_
