#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace periodk {

namespace {

/// Shared completion state of one Run() batch.
struct BatchState {
  Mutex mu;
  CondVar cv;
  int64_t remaining PERIODK_GUARDED_BY(mu) = 0;
  std::exception_ptr error PERIODK_GUARDED_BY(mu);
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(0, num_threads - 1);
  queues_.reserve(static_cast<size_t>(workers) + 1);
  for (int i = 0; i <= workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 1; i <= workers; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::TryRunOne(size_t home) {
  std::function<void()> task;
  {
    Queue& own = *queues_[home];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    for (size_t off = 1; off < queues_.size() && !task; ++off) {
      Queue& victim = *queues_[(home + off) % queues_.size()];
      MutexLock lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t id) {
  for (;;) {
    if (TryRunOne(id)) continue;
    MutexLock lock(wake_mu_);
    // Explicit loop instead of a predicate wait: a predicate lambda
    // would be analyzed outside the lock (see CondVar).
    while (!stop_ && pending_.load(std::memory_order_relaxed) <= 0) {
      wake_cv_.Wait(wake_mu_);
    }
    if (stop_) return;
  }
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Same batch semantics as the pooled path: every task runs, the
    // first exception is rethrown once the batch has drained.
    std::exception_ptr error;
    for (std::function<void()>& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  auto state = std::make_shared<BatchState>();
  {
    MutexLock lock(state->mu);
    state->remaining = static_cast<int64_t>(tasks.size());
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    auto wrapped = [task = std::move(tasks[i]), state] {
      try {
        task();
      } catch (...) {
        MutexLock lock(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      MutexLock lock(state->mu);
      if (--state->remaining == 0) state->cv.NotifyAll();
    };
    Queue& q = *queues_[i % queues_.size()];
    MutexLock lock(q.mu);
    q.tasks.push_back(std::move(wrapped));
  }
  pending_.fetch_add(static_cast<int64_t>(tasks.size()),
                     std::memory_order_relaxed);
  {
    // Lock/unlock pairs the pending_ update with the workers' wait-loop
    // check so no wakeup is lost between check and wait.
    MutexLock lock(wake_mu_);
  }
  wake_cv_.NotifyAll();

  // The caller works the batch down alongside the workers, then waits
  // for in-flight tasks it could not claim.
  std::exception_ptr error;
  for (;;) {
    if (TryRunOne(0)) continue;
    MutexLock lock(state->mu);
    while (state->remaining != 0) state->cv.Wait(state->mu);
    error = state->error;
    break;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::Post(std::function<void()> task) {
  {
    MutexLock lock(drain_mu_);
    ++detached_remaining_;
  }
  auto wrapped = [this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      // Fire-and-forget: no caller is left to rethrow to.  The task
      // owner must catch anything it cares about.
    }
    MutexLock lock(drain_mu_);
    if (--detached_remaining_ == 0) drain_cv_.NotifyAll();
  };
  if (workers_.empty()) {
    wrapped();
    return;
  }
  {
    Queue& q = *queues_[0];
    MutexLock lock(q.mu);
    q.tasks.push_back(std::move(wrapped));
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    // Pair the pending_ update with the workers' wait-loop check so no
    // wakeup is lost between check and wait (same as Run()).
    MutexLock lock(wake_mu_);
  }
  wake_cv_.NotifyAll();
}

void ThreadPool::Drain() {
  MutexLock lock(drain_mu_);
  while (detached_remaining_ != 0) drain_cv_.Wait(drain_mu_);
}

std::vector<std::pair<int64_t, int64_t>> PlanChunks(int num_threads,
                                                    int64_t n,
                                                    int64_t min_grain) {
  int64_t threads = num_threads;
  int64_t chunks = 1;
  if (threads > 1 && n > 0) {
    // Floor division honors the contract that every chunk carries at
    // least min_grain items (ceil would split n = min_grain + 1 into
    // two half-grain chunks).
    int64_t by_grain = min_grain > 0 ? n / min_grain : n;
    chunks = std::clamp<int64_t>(std::min(threads * 4, by_grain), 1, n);
  }
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(static_cast<size_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    ranges.emplace_back(c * n / chunks, (c + 1) * n / chunks);
  }
  return ranges;
}

void RunChunks(ThreadPool* pool,
               const std::vector<std::pair<int64_t, int64_t>>& ranges,
               const std::function<void(size_t, int64_t, int64_t)>& body) {
  if (pool == nullptr || ranges.size() <= 1) {
    for (size_t c = 0; c < ranges.size(); ++c) {
      body(c, ranges[c].first, ranges[c].second);
    }
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) {
    tasks.push_back(
        [&body, &ranges, c] { body(c, ranges[c].first, ranges[c].second); });
  }
  pool->Run(std::move(tasks));
}

}  // namespace periodk
