// TemporalDB: the database middleware of paper Section 9.  It stores
// SQL period relations, accepts SQL with the SEQ VT (...) snapshot
// modifier, rewrites snapshot queries with REWR and executes them on
// the bundled multiset engine.  This is the library's primary public
// entry point:
//
//   TemporalDB db(TimeDomain{0, 24});
//   db.CreatePeriodTable("works", {"name", "skill", "ts", "te"},
//                        "ts", "te");
//   db.Insert("works", {...});
//   auto result = db.Query(
//       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
//
// Serving path: executable plans are cached per (SQL text, rewrite
// options), so a repeated Query() skips parse/bind/rewrite entirely.
// Any catalog mutation (CreateTable / CreatePeriodTable / PutPeriodTable
// / Insert / InsertRows) flushes the cache — plans can embed catalog
// state (schemas, encoded-scan reorderings), so staleness is resolved
// with whole-cache invalidation rather than per-table tracking.
#ifndef PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
#define PERIODK_MIDDLEWARE_TEMPORAL_DB_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "rewrite/rewriter.h"
#include "sql/binder.h"

namespace periodk {

/// Counters of the middleware plan cache.
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;        // lookups that had to plan (or failed to)
  int64_t invalidations = 0; // cache flushes triggered by mutations
  int64_t entries = 0;       // currently cached plans

  std::string ToString() const;
};

class TemporalDB {
 public:
  explicit TemporalDB(TimeDomain domain, RewriteOptions options = {})
      : domain_(domain), options_(options) {}

  /// Movable (the destination gets a fresh cache mutex); not copyable.
  /// As with any mutex-holding type, moving while another thread uses
  /// `other` is undefined.
  TemporalDB(TemporalDB&& other) noexcept
      : domain_(other.domain_),
        options_(other.options_),
        catalog_(std::move(other.catalog_)),
        period_tables_(std::move(other.period_tables_)),
        plan_cache_enabled_(other.plan_cache_enabled_),
        plan_cache_(std::move(other.plan_cache_)),
        cache_stats_(other.cache_stats_) {}
  TemporalDB& operator=(TemporalDB&&) = delete;

  const TimeDomain& domain() const { return domain_; }
  const RewriteOptions& options() const { return options_; }
  void set_options(const RewriteOptions& options) { options_ = options; }

  /// Creates an ordinary (non-temporal) table.
  Status CreateTable(const std::string& name,
                     const std::vector<std::string>& columns);

  /// Creates a period table; `begin_column` / `end_column` must be two
  /// distinct members of `columns` holding integer time points within
  /// the domain.
  Status CreatePeriodTable(const std::string& name,
                           const std::vector<std::string>& columns,
                           const std::string& begin_column,
                           const std::string& end_column);

  /// Registers an existing relation as a period table (bulk load).
  Status PutPeriodTable(const std::string& name, Relation relation,
                        const std::string& begin_column,
                        const std::string& end_column);

  Status Insert(const std::string& table, Row row);
  /// Bulk insert; atomic: every row's arity is validated before any row
  /// lands, so a failure leaves the table untouched.
  Status InsertRows(const std::string& table, std::vector<Row> rows);

  /// Parses, binds, (for SEQ VT queries) rewrites, and executes.
  /// Planning is served from the plan cache when possible.
  Result<Relation> Query(const std::string& sql) const;
  Result<Relation> Query(const std::string& sql,
                         const RewriteOptions& options) const;

  /// The executable plan for a statement (after rewriting), for EXPLAIN.
  Result<PlanPtr> Plan(const std::string& sql) const;
  Result<PlanPtr> Plan(const std::string& sql,
                       const RewriteOptions& options) const;

  /// Plans the statement and warms the plan cache (no execution);
  /// subsequent Query() calls with the same text and options are cache
  /// hits until the next catalog mutation.
  Result<PlanPtr> Prepare(const std::string& sql) const;
  Result<PlanPtr> Prepare(const std::string& sql,
                          const RewriteOptions& options) const;

  /// EXPLAIN: the executable plan rendered as an indented tree; shared
  /// subplans are printed once and tagged `[shared #n]`.
  Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: executes the statement and appends the engine's
  /// execution counters (nodes executed, memo hits, rows materialized).
  Result<std::string> ExplainAnalyze(const std::string& sql) const;

  /// tau_T of a period table: its snapshot at time t.
  Result<Relation> Timeslice(const std::string& table, TimePoint t) const;

  const Catalog& catalog() const { return catalog_; }
  bool IsPeriodTable(const std::string& name) const {
    return period_tables_.count(name) > 0;
  }

  /// Plan-cache observability and control.  Disabling the cache (for
  /// ablation/benchmarks) also stops it from filling.
  PlanCacheStats plan_cache_stats() const;
  void set_plan_cache_enabled(bool enabled);

 private:
  Result<sql::BoundStatement> BindSql(const std::string& sql) const;
  Result<PlanPtr> PlanBound(const sql::BoundStatement& bound,
                            const RewriteOptions& options) const;
  /// Flushes cached plans after a successful catalog mutation.
  void InvalidatePlanCache();

  TimeDomain domain_;
  RewriteOptions options_;
  Catalog catalog_;
  std::map<std::string, sql::PeriodTableInfo> period_tables_;

  // Bound-plan cache, keyed by (SQL text, rewrite options).  Mutable:
  // Query()/Plan() are logically const; the cache is an optimization.
  // All cache state is guarded by plan_cache_mu_ so concurrent reads
  // (Query/Plan/Prepare on a shared const TemporalDB) stay safe; the
  // catalog itself is NOT synchronized — reads concurrent with catalog
  // mutations need external locking.  The cache is bounded (it restarts
  // empty on overflow), so unboundedly many distinct statements cannot
  // grow memory forever.
  mutable std::mutex plan_cache_mu_;
  bool plan_cache_enabled_ = true;
  mutable std::unordered_map<std::string, PlanPtr> plan_cache_;
  mutable PlanCacheStats cache_stats_;
};

}  // namespace periodk

#endif  // PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
