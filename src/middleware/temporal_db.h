// TemporalDB: the database middleware of paper Section 9.  It stores
// SQL period relations, accepts SQL with the SEQ VT (...) snapshot
// modifier, rewrites snapshot queries with REWR and executes them on
// the bundled multiset engine.  This is the library's primary public
// entry point:
//
//   TemporalDB db(TimeDomain{0, 24});
//   db.CreatePeriodTable("works", {"name", "skill", "ts", "te"},
//                        "ts", "te");
//   db.Insert("works", {...});
//   auto result = db.Query(
//       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
#ifndef PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
#define PERIODK_MIDDLEWARE_TEMPORAL_DB_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "rewrite/rewriter.h"
#include "sql/binder.h"

namespace periodk {

class TemporalDB {
 public:
  explicit TemporalDB(TimeDomain domain, RewriteOptions options = {})
      : domain_(domain), options_(options) {}

  const TimeDomain& domain() const { return domain_; }
  const RewriteOptions& options() const { return options_; }
  void set_options(const RewriteOptions& options) { options_ = options; }

  /// Creates an ordinary (non-temporal) table.
  Status CreateTable(const std::string& name,
                     const std::vector<std::string>& columns);

  /// Creates a period table; `begin_column` / `end_column` must be among
  /// `columns` and hold integer time points within the domain.
  Status CreatePeriodTable(const std::string& name,
                           const std::vector<std::string>& columns,
                           const std::string& begin_column,
                           const std::string& end_column);

  /// Registers an existing relation as a period table (bulk load).
  Status PutPeriodTable(const std::string& name, Relation relation,
                        const std::string& begin_column,
                        const std::string& end_column);

  Status Insert(const std::string& table, Row row);
  Status InsertRows(const std::string& table, std::vector<Row> rows);

  /// Parses, binds, (for SEQ VT queries) rewrites, and executes.
  Result<Relation> Query(const std::string& sql) const;
  Result<Relation> Query(const std::string& sql,
                         const RewriteOptions& options) const;

  /// The executable plan for a statement (after rewriting), for EXPLAIN.
  Result<PlanPtr> Plan(const std::string& sql) const;
  Result<PlanPtr> Plan(const std::string& sql,
                       const RewriteOptions& options) const;

  /// EXPLAIN: the executable plan rendered as an indented tree.
  Result<std::string> Explain(const std::string& sql) const;

  /// tau_T of a period table: its snapshot at time t.
  Result<Relation> Timeslice(const std::string& table, TimePoint t) const;

  const Catalog& catalog() const { return catalog_; }
  bool IsPeriodTable(const std::string& name) const {
    return period_tables_.count(name) > 0;
  }

 private:
  Result<sql::BoundStatement> BindSql(const std::string& sql) const;
  Result<PlanPtr> PlanBound(const sql::BoundStatement& bound,
                            const RewriteOptions& options) const;

  TimeDomain domain_;
  RewriteOptions options_;
  Catalog catalog_;
  std::map<std::string, sql::PeriodTableInfo> period_tables_;
};

}  // namespace periodk

#endif  // PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
