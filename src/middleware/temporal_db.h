// TemporalDB: the database middleware of paper Section 9.  It stores
// SQL period relations, accepts SQL with the SEQ VT (...) snapshot
// modifier, rewrites snapshot queries with REWR and executes them on
// the bundled multiset engine.  This is the library's primary public
// entry point:
//
//   TemporalDB db(TimeDomain{0, 24});
//   db.CreatePeriodTable("works", {"name", "skill", "ts", "te"},
//                        "ts", "te");
//   db.Insert("works", {...});
//   auto result = db.Query(
//       "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
//
// Concurrency model — snapshot isolation: the catalog stores immutable
// relations behind shared_ptr<const Relation>.  Every read entry point
// (Query/Plan/Prepare/Explain/ExplainAnalyze/Timeslice) pins a snapshot
// — an O(#tables) copy of the handle map plus the period-table metadata
// and a generation number, taken under a shared_mutex — and runs
// entirely against that pinned state.  Writers (CreateTable /
// CreatePeriodTable / PutPeriodTable / Insert / InsertRows) serialize
// among themselves, build the mutated table copy-on-write *outside* the
// reader lock, and publish it with a brief exclusive lock.  Any number
// of concurrent readers therefore observe consistent snapshots while a
// writer mutates; no external locking is needed.
//
// Serving path: executable plans are cached per (SQL text, rewrite
// options).  Each cache entry records the base tables its plan scans
// and the per-table version each was at when the plan was bound; an
// entry is served only to queries whose pinned snapshot still has every
// one of those tables at the recorded version, so a plan raced by a
// catalog mutation (or by a cache disable/re-enable toggle) can never
// be served stale.  Invalidation is per table: mutating T (Insert /
// InsertRows / PutPeriodTable) evicts only the plans that read T, so a
// hot plan survives writes to unrelated tables.  Creating a table
// conservatively flushes everything; disabling the cache drops it
// outright.  Tables are stored columnar (engine/column.h) by default:
// writers re-encode the mutated copy before publishing it, so every
// query scans typed column arrays.
// Point-in-time reads (SEQ VT AS OF, Timeslice) are answered from
// per-table timeline indexes (engine/timeline_index.h) built lazily on
// the first indexed read.  Appends keep them warm: the new rows become
// a differential delta published next to the base index, folded into a
// fresh full index by threshold-triggered compaction (inline or
// background — IndexMaintenanceOptions); see docs/architecture.md §8.
#ifndef PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
#define PERIODK_MIDDLEWARE_TEMPORAL_DB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "rewrite/rewriter.h"
#include "sql/binder.h"

namespace periodk {

/// Counters of the middleware plan cache.
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;        // lookups that had to plan (or failed to)
  int64_t invalidations = 0; // mutations that evicted at least one plan
  int64_t entries = 0;       // currently cached plans

  std::string ToString() const;
};

/// Write-path index maintenance (ROADMAP "incremental index maintenance
/// under write traffic").  With maintenance on, Insert/InsertRows keep
/// a table's timeline index warm instead of dropping it: the appended
/// rows become a differential delta (TimelineIndex::WithDelta) published
/// in the catalog slot alongside the new relation, and once the delta
/// crosses the compaction threshold the writer folds it into a fresh
/// fully checkpointed index — inline by default, or handed to a
/// work-stealing pool when background_compaction is set (published
/// double-checked under the table's generation tag, so a racing writer
/// simply wins).  Either mode answers every query identically; the
/// knobs trade write latency against read-side delta replay.
struct IndexMaintenanceOptions {
  /// Master switch.  Off restores the pre-differential behavior: every
  /// append drops the index for a lazy rebuild-from-scratch.
  bool maintain_indexes = true;
  /// Compaction triggers when the delta reaches
  /// clamp(compaction_ratio * base_events, min_compaction_events,
  /// max_compaction_events) events.
  int64_t min_compaction_events = 64;
  int64_t max_compaction_events = 4096;
  double compaction_ratio = 0.10;
  /// Hand compactions to a background worker instead of running them on
  /// the writer.  The delta index is still published immediately — the
  /// compacted replacement lands asynchronously (WaitForIndexMaintenance
  /// blocks until in-flight compactions settle).
  bool background_compaction = false;
};

/// Counters of the write-path index maintenance.
struct IndexMaintenanceStats {
  int64_t delta_publishes = 0;        // appends that published a delta index
  int64_t compactions = 0;            // deltas folded inline by the writer
  int64_t background_compactions = 0; // compactions completed on the pool
  std::string ToString() const;
};

class TemporalDB {
 public:
  explicit TemporalDB(TimeDomain domain, RewriteOptions options = {})
      : domain_(domain), options_(options) {}

  /// Movable (the destination gets fresh mutexes); not copyable.  The
  /// move takes `other`'s writer, catalog, and plan-cache locks — in
  /// that order, the same order the serving path acquires them — so a
  /// move racing concurrent readers or writers of `other` linearizes
  /// as one big exclusive writer instead of being undefined behavior.
  /// The thread-safety annotations enforce that the guarded state is
  /// only moved under those locks.  The moved-from instance is empty
  /// (no tables, no cached plans) and safe only to destroy or reassign.
  TemporalDB(TemporalDB&& other);
  TemporalDB& operator=(TemporalDB&&) = delete;

  /// Waits for in-flight background compactions before tearing the
  /// catalog down (their tasks reference this object's locks and
  /// catalog state).
  ~TemporalDB();

  const TimeDomain& domain() const { return domain_; }
  const RewriteOptions& options() const { return options_; }
  /// Not synchronized: configure options before sharing the instance
  /// across threads (per-call options are the thread-safe alternative).
  void set_options(const RewriteOptions& options) { options_ = options; }

  /// Creates an ordinary (non-temporal) table.  AlreadyExists when the
  /// name is taken.  Thread-safe (serializes with other writers).
  [[nodiscard]] Status CreateTable(const std::string& name,
                                   const std::vector<std::string>& columns);

  /// Creates a period table; `begin_column` / `end_column` must be two
  /// distinct members of `columns` holding integer time points within
  /// the domain (InvalidArgument otherwise; AlreadyExists when the name
  /// is taken).  Thread-safe (serializes with other writers).
  [[nodiscard]] Status CreatePeriodTable(
      const std::string& name, const std::vector<std::string>& columns,
      const std::string& begin_column, const std::string& end_column);

  /// Registers an existing relation as a period table (bulk load);
  /// replaces any previous table of that name atomically.  Readers
  /// pinned to the old snapshot keep the old relation alive.
  /// Thread-safe (serializes with other writers).
  // periodk-lint: allow(relation-by-value): ownership sink, callers move
  [[nodiscard]] Status PutPeriodTable(const std::string& name,
                                      Relation relation,
                                      const std::string& begin_column,
                                      const std::string& end_column);

  /// Copy-on-write append: readers pinned to the old snapshot keep
  /// seeing the table without the row.  O(table) per call — batch with
  /// InsertRows when loading.  InvalidArgument on arity mismatch,
  /// NotFound for unknown tables.  Thread-safe.
  [[nodiscard]] Status Insert(const std::string& table, Row row);
  /// Bulk insert; atomic: every row's arity is validated before any row
  /// lands, so a failure leaves the table untouched.  O(table + batch)
  /// per call.  Thread-safe.
  [[nodiscard]] Status InsertRows(const std::string& table,
                                  std::vector<Row> rows);

  /// Parses, binds, (for SEQ VT queries) rewrites, and executes against
  /// a pinned catalog snapshot.  Planning is served from the plan cache
  /// when possible; options.num_threads > 1 fans partitioned operators
  /// out to a work-stealing pool, and options.use_timeline_index routes
  /// AS-OF timeslices through lazily built timeline indexes.
  /// Thread-safe: any number of concurrent Query() calls may race any
  /// writer; each observes one consistent snapshot.  Never throws; all
  /// failures (parse/bind/execution) come back as the Status.
  [[nodiscard]] Result<Relation> Query(const std::string& sql) const;
  [[nodiscard]] Result<Relation> Query(const std::string& sql,
                                       const RewriteOptions& options) const;

  /// The executable plan for a statement (after rewriting), for EXPLAIN.
  [[nodiscard]] Result<PlanPtr> Plan(const std::string& sql) const;
  [[nodiscard]] Result<PlanPtr> Plan(const std::string& sql,
                                     const RewriteOptions& options) const;

  /// Plans the statement and warms the plan cache (no execution);
  /// subsequent Query() calls with the same text and options are cache
  /// hits until the next catalog mutation.  Returns a Status for every
  /// failure (unknown table, parse error, ...) — never throws across
  /// the middleware boundary.
  [[nodiscard]] Result<PlanPtr> Prepare(const std::string& sql) const;
  [[nodiscard]] Result<PlanPtr> Prepare(
      const std::string& sql, const RewriteOptions& options) const;

  /// EXPLAIN: the executable plan rendered as an indented tree; shared
  /// subplans are printed once and tagged `[shared #n]`.
  [[nodiscard]] Result<std::string> Explain(const std::string& sql) const;

  /// EXPLAIN ANALYZE: executes the statement and appends the engine's
  /// execution counters (nodes executed, memo hits, rows materialized,
  /// parallel tasks).
  [[nodiscard]] Result<std::string> ExplainAnalyze(
      const std::string& sql) const;

  /// tau_T of a period table: its snapshot at time t, with the two
  /// interval columns dropped.  NotFound for unknown tables,
  /// InvalidArgument for non-period tables.  Served from the table's
  /// timeline index — O(log #events + K + answer) after the first call
  /// has built the index — unless options().use_timeline_index is off
  /// or the table holds non-integer endpoints, in which case it is the
  /// O(table) scan.  Both paths return identical rows in identical
  /// order.  Thread-safe, like every read entry point.
  [[nodiscard]] Result<Relation> Timeslice(const std::string& table,
                                           TimePoint t) const;

  /// The live catalog.  Unsynchronized direct access for single-threaded
  /// use (tests, benches); references obtained through it are
  /// invalidated by the next mutation of the same table.  Concurrent
  /// readers should go through Query()/Timeslice(), which pin snapshots.
  /// Unsynchronized by contract (see the doc comment above), so the
  /// one legitimate analysis opt-out: taking the reader lock here would
  /// only pretend to help — the returned reference outlives it.
  const Catalog& catalog() const PERIODK_NO_THREAD_SAFETY_ANALYSIS {
    return catalog_;
  }
  bool IsPeriodTable(const std::string& name) const {
    SharedReaderLock lock(catalog_mu_);
    return period_tables_.count(name) > 0;
  }

  /// Plan-cache observability and control.  Disabling the cache (for
  /// ablation/benchmarks) also drops every existing entry, so a plan
  /// bound before the toggle can never be served after re-enabling.
  [[nodiscard]] PlanCacheStats plan_cache_stats() const;
  void set_plan_cache_enabled(bool enabled);

  /// Columnar table storage (on by default): writers re-encode each
  /// mutated table copy as typed columns before publishing, so scans
  /// and the vectorized kernels read contiguous arrays.  Turning it off
  /// keeps subsequently published tables in row storage (ablation /
  /// differential testing).  Not synchronized: configure before sharing
  /// the instance across threads.
  void set_columnar_storage(bool enabled) { columnar_storage_ = enabled; }
  bool columnar_storage() const { return columnar_storage_; }

  /// Write-path index maintenance knobs (see IndexMaintenanceOptions).
  /// Not synchronized: configure before sharing the instance across
  /// threads, like set_columnar_storage.
  void set_index_maintenance(const IndexMaintenanceOptions& options) {
    index_maintenance_ = options;
  }
  const IndexMaintenanceOptions& index_maintenance() const {
    return index_maintenance_;
  }
  /// Maintenance observability: delta publishes and compactions so far.
  /// Thread-safe.
  [[nodiscard]] IndexMaintenanceStats index_maintenance_stats() const;
  /// Blocks until every background compaction scheduled so far has
  /// finished (each either published its index or lost its
  /// generation-tag race and discarded it).  No-op when background
  /// compaction never ran.  Thread-safe; serializes with writers.
  void WaitForIndexMaintenance();

 private:
  /// An immutable view of the catalog pinned by one read operation: the
  /// relation-handle map (shares table storage with the live catalog),
  /// the period-table metadata, and the generation that identifies this
  /// exact catalog state for plan-cache tagging.
  struct Snapshot {
    Catalog catalog;
    std::map<std::string, sql::PeriodTableInfo> period_tables;
    uint64_t generation = 0;
    // Per-table publication versions (the generation at which each
    // table last changed) — what plan-cache hits are validated against.
    std::map<std::string, uint64_t> table_versions;
  };
  Snapshot PinSnapshot() const PERIODK_EXCLUDES(catalog_mu_);

  /// Lazily builds/publishes the timeline index of `table` over the
  /// endpoint columns (begin_col, end_col), attaching it to the pinned
  /// snapshot.  Publication back to the live catalog is double-checked
  /// under the generation tag: it happens only while the catalog is
  /// still at the snapshot's generation (a concurrent writer's
  /// copy-on-write publication simply wins and the index stays
  /// snapshot-local).  Returns nullptr when the table cannot be indexed
  /// exactly (non-integer endpoints) — callers fall back to the scan.
  /// `use_cost_model` sizes the checkpoint interval from the table's
  /// statistics (CostModel::PickCheckpointInterval) instead of the
  /// fixed default; either interval yields identical query results.
  std::shared_ptr<const TimelineIndex> EnsureTimelineIndex(
      const std::string& table, int begin_col, int end_col, Snapshot& snap,
      bool use_cost_model) const PERIODK_EXCLUDES(catalog_mu_);
  /// Ensures an index for every table the plan timeslices directly over
  /// a scan (the shape PushDownTimeslice produces for AS OF queries).
  void EnsureTimelineIndexes(const PlanPtr& plan, Snapshot& snap,
                             bool use_cost_model) const;

  /// What an append publishes into the table's index slot, decided by
  /// PlanAppendIndex.
  struct AppendIndexPlan {
    /// Published next to the relation in the same exclusive-lock
    /// section; nullptr drops the slot (maintenance off, stale index,
    /// or unindexable appended rows) for a lazy rebuild on read.
    std::shared_ptr<const TimelineIndex> index;
    /// The delta crossed the threshold but compaction is deferred to
    /// the pool: the writer publishes `index` (the delta) now and
    /// schedules ScheduleBackgroundCompaction after the publication.
    bool compact_in_background = false;
    int64_t checkpoint_interval = 0;
  };
  /// Maintains `table`'s timeline index across a copy-on-write append:
  /// wraps the current index and the appended rows of `next` into a
  /// differential index, or — past the compaction threshold — folds
  /// them into a fresh full index (checkpoint-K sized from `next`'s
  /// statistics when the cost model is on).  Pure apart from the
  /// maintenance counters; runs outside the catalog locks like the rest
  /// of the writer's build phase.
  AppendIndexPlan PlanAppendIndex(
      const std::shared_ptr<const Relation>& old_relation,
      const std::shared_ptr<const TimelineIndex>& old_index,
      const std::shared_ptr<const Relation>& next,
      const std::shared_ptr<const TableStats>& next_stats, int begin_idx,
      int end_idx) const PERIODK_EXCLUDES(catalog_mu_, maintenance_mu_);
  /// Hands a full rebuild of `table`'s index (over `relation`, the
  /// just-published state at `published_version`) to the compaction
  /// pool.  The task builds outside every lock and publishes
  /// double-checked under the generation tag: only while the table is
  /// still at `published_version` — a writer that raced in between
  /// simply wins and the stale index is discarded.  At most one
  /// compaction is in flight per table (later appends re-arm once it
  /// settles).  Caller must hold writer_mu_ (the pool handle is
  /// writer state).
  void ScheduleBackgroundCompaction(const std::string& table,
                                    std::shared_ptr<const Relation> relation,
                                    int begin_idx, int end_idx,
                                    int64_t checkpoint_interval,
                                    uint64_t published_version)
      PERIODK_REQUIRES(writer_mu_) PERIODK_EXCLUDES(maintenance_mu_);

  [[nodiscard]] Result<sql::BoundStatement> BindSql(
      const std::string& sql, const Snapshot& snap) const;
  /// Plans a bound statement against `snap` (the snapshot supplies the
  /// statistics the cost model reads when options.use_cost_model is on).
  [[nodiscard]] Result<PlanPtr> PlanBound(
      const sql::BoundStatement& bound, const RewriteOptions& options,
      const Snapshot& snap) const;
  /// Plans against the pinned snapshot, consulting/warming the cache.
  [[nodiscard]] Result<PlanPtr> PlanForSnapshot(
      const std::string& sql, const RewriteOptions& options,
      const Snapshot& snap) const;
  /// Flushes every cached plan (table creation, cache disable).
  void InvalidatePlanCache() PERIODK_EXCLUDES(plan_cache_mu_);
  /// Evicts only the cached plans whose base-table set contains
  /// `table` (Insert / InsertRows / PutPeriodTable).  Plans over other
  /// tables stay hot; the per-table version check at serve time makes
  /// eviction purely hygienic, so a racing in-flight planner is
  /// harmless.
  void InvalidatePlanCacheForTable(const std::string& table)
      PERIODK_EXCLUDES(plan_cache_mu_);

  TimeDomain domain_;
  RewriteOptions options_;

  // Catalog state.  catalog_mu_ orders readers (shared: snapshot pins)
  // against publication (exclusive: pointer swaps only — writers build
  // table copies outside it).  writer_mu_ serializes writers so
  // copy-on-write never loses an update; it is always acquired before
  // catalog_mu_ (declared to the analysis via ACQUIRED_BEFORE).
  mutable SharedMutex catalog_mu_;
  Mutex writer_mu_ PERIODK_ACQUIRED_BEFORE(catalog_mu_);
  // Mutable for exactly one reason: read entry points lazily attach
  // timeline indexes (a cache over immutable relations, never data)
  // under the exclusive lock — see EnsureTimelineIndex.
  mutable Catalog catalog_ PERIODK_GUARDED_BY(catalog_mu_);
  std::map<std::string, sql::PeriodTableInfo> period_tables_
      PERIODK_GUARDED_BY(catalog_mu_);
  // Bumped under the exclusive lock on every publication; a pinned
  // generation therefore names one exact catalog state.
  uint64_t catalog_generation_ PERIODK_GUARDED_BY(catalog_mu_) = 0;
  // table name -> generation at which that table was last published.
  std::map<std::string, uint64_t> table_versions_
      PERIODK_GUARDED_BY(catalog_mu_);
  // See set_columnar_storage().
  bool columnar_storage_ = true;
  // See set_index_maintenance().
  IndexMaintenanceOptions index_maintenance_;

  // Maintenance bookkeeping.  maintenance_mu_ guards the counters and
  // the per-table in-flight set; it is leaf-level (nothing is acquired
  // under it), so background tasks may take it while a writer holds
  // writer_mu_ waiting in Drain() without a cycle.  Mutable: readers
  // (index_maintenance_stats, ExplainAnalyze) snapshot the counters.
  mutable Mutex maintenance_mu_;
  mutable IndexMaintenanceStats maintenance_stats_
      PERIODK_GUARDED_BY(maintenance_mu_);
  // Tables with a background compaction in flight; gates re-scheduling
  // so a write burst queues at most one rebuild per table.
  std::set<std::string> pending_compactions_
      PERIODK_GUARDED_BY(maintenance_mu_);
  // Background compaction workers, created on first use.  Writer state:
  // only writers (who serialize on writer_mu_) schedule tasks, and
  // WaitForIndexMaintenance/the destructor drain under the same lock.
  // Deliberately not moved by the move constructor: in-flight tasks
  // capture `this` of the moved-from object, which therefore keeps its
  // pool and drains it at destruction (against its then-empty catalog).
  std::unique_ptr<ThreadPool> compaction_pool_ PERIODK_GUARDED_BY(writer_mu_);

  // Bound-plan cache, keyed by (SQL text, rewrite options).  Mutable:
  // Query()/Plan() are logically const; the cache is an optimization.
  // All cache state is guarded by plan_cache_mu_.  Entries record the
  // per-table versions their plan was bound against and are only served
  // to queries whose snapshot matches every one of them — correctness
  // does not depend on invalidation racing well with in-flight
  // planners.
  // The cache is bounded (it restarts empty on overflow), so
  // unboundedly many distinct statements cannot grow memory forever.
  struct CachedPlan {
    PlanPtr plan;
    // Base tables the plan scans, each with the version it was bound
    // against.  A hit requires every listed table to still be at its
    // recorded version in the query's snapshot; a plan scanning no
    // table (constant-only) is valid forever.
    std::vector<std::pair<std::string, uint64_t>> table_versions;
  };
  mutable Mutex plan_cache_mu_;
  bool plan_cache_enabled_ PERIODK_GUARDED_BY(plan_cache_mu_) = true;
  mutable std::unordered_map<std::string, CachedPlan> plan_cache_
      PERIODK_GUARDED_BY(plan_cache_mu_);
  mutable PlanCacheStats cache_stats_ PERIODK_GUARDED_BY(plan_cache_mu_);
};

/// Batches row-at-a-time producers into atomic InsertRows() calls.
/// Insert() is copy-on-write per call — O(table) so that pinned reader
/// snapshots stay untouched — which makes row-wise bulk loading
/// quadratic; the loader buffers rows per table and ships each table's
/// batch once at Flush().  Row order per table is preserved.
class BulkLoader {
 public:
  explicit BulkLoader(TemporalDB* db) : db_(db) {}
  /// Buffers one row; validation happens at Flush() (InsertRows checks
  /// every arity before any row lands).
  [[nodiscard]] Status Insert(const std::string& table, Row row) {
    pending_[table].push_back(std::move(row));
    return Status::OK();
  }
  /// Ships every buffered batch; stops at the first failure.  Each
  /// batch is erased from the buffer as it is handed to InsertRows —
  /// whether it lands or fails — so a retrying Flush() never
  /// double-inserts an already-shipped table and never reports success
  /// for rows that were consumed by a failed batch.
  [[nodiscard]] Status Flush() {
    while (!pending_.empty()) {
      auto it = pending_.begin();
      std::vector<Row> rows = std::move(it->second);
      const std::string table = it->first;
      pending_.erase(it);
      Status status = db_->InsertRows(table, std::move(rows));
      if (!status.ok()) return status;
    }
    return Status::OK();
  }

 private:
  TemporalDB* db_;
  std::map<std::string, std::vector<Row>> pending_;
};

}  // namespace periodk

#endif  // PERIODK_MIDDLEWARE_TEMPORAL_DB_H_
