#include "middleware/temporal_db.h"

#include "common/str_util.h"
#include "engine/temporal_ops.h"
#include "sql/parser.h"

namespace periodk {

namespace {

/// Plan-cache capacity; on overflow the cache restarts empty (a serving
/// workload inlining distinct literals must not grow memory forever).
constexpr size_t kPlanCacheMaxEntries = 1024;

/// Cache key for a (SQL text, rewrite options) pair.  Every option that
/// changes the produced plan is part of the key, so plans cached under
/// different options never alias.
std::string PlanCacheKey(const std::string& sql,
                         const RewriteOptions& options) {
  return StrCat(static_cast<int>(options.semantics),
                static_cast<int>(options.hoist_coalesce),
                static_cast<int>(options.fuse_aggregation),
                static_cast<int>(options.pre_aggregate),
                static_cast<int>(options.final_coalesce),
                static_cast<int>(options.coalesce_impl), "|", sql);
}

}  // namespace

std::string PlanCacheStats::ToString() const {
  return StrCat("plan cache: ", hits, " hits, ", misses, " misses, ",
                invalidations, " invalidations, ", entries, " entries");
}

Status TemporalDB::CreateTable(const std::string& name,
                               const std::vector<std::string>& columns) {
  if (catalog_.Has(name)) {
    return Status::AlreadyExists(StrCat("table exists: ", name));
  }
  catalog_.Put(name, Relation(Schema::FromNames(columns)));
  InvalidatePlanCache();
  return Status::OK();
}

Status TemporalDB::CreatePeriodTable(const std::string& name,
                                     const std::vector<std::string>& columns,
                                     const std::string& begin_column,
                                     const std::string& end_column) {
  if (begin_column == end_column) {
    return Status::InvalidArgument(
        StrCat("period begin and end must be distinct columns, got (",
               begin_column, ", ", end_column, ")"));
  }
  Schema schema = Schema::FromNames(columns);
  if (schema.Find("", begin_column) < 0 || schema.Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  Status status = CreateTable(name, columns);
  if (!status.ok()) return status;
  period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
  return Status::OK();
}

Status TemporalDB::PutPeriodTable(const std::string& name, Relation relation,
                                  const std::string& begin_column,
                                  const std::string& end_column) {
  if (begin_column == end_column) {
    return Status::InvalidArgument(
        StrCat("period begin and end must be distinct columns, got (",
               begin_column, ", ", end_column, ")"));
  }
  if (relation.schema().Find("", begin_column) < 0 ||
      relation.schema().Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  catalog_.Put(name, std::move(relation));
  period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
  InvalidatePlanCache();
  return Status::OK();
}

Status TemporalDB::Insert(const std::string& table, Row row) {
  Relation* relation = catalog_.GetMutable(table);
  if (relation == nullptr) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  if (row.size() != relation->schema().size()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into ", table, ": got ", row.size(),
               " values, expected ", relation->schema().size()));
  }
  relation->AddRow(std::move(row));
  InvalidatePlanCache();
  return Status::OK();
}

Status TemporalDB::InsertRows(const std::string& table,
                              std::vector<Row> rows) {
  Relation* relation = catalog_.GetMutable(table);
  if (relation == nullptr) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  // Validate every arity before any row lands: a bulk insert is atomic,
  // so a mid-batch mismatch must not leave the table half-populated.
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != relation->schema().size()) {
      return Status::InvalidArgument(StrCat(
          "arity mismatch inserting into ", table, " at row ", i, ": got ",
          rows[i].size(), " values, expected ", relation->schema().size()));
    }
  }
  if (rows.empty()) return Status::OK();
  relation->Reserve(relation->size() + rows.size());
  for (Row& row : rows) relation->AddRow(std::move(row));
  InvalidatePlanCache();
  return Status::OK();
}

void TemporalDB::InvalidatePlanCache() {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  if (plan_cache_.empty()) return;
  plan_cache_.clear();
  ++cache_stats_.invalidations;
}

PlanCacheStats TemporalDB::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  PlanCacheStats stats = cache_stats_;
  stats.entries = static_cast<int64_t>(plan_cache_.size());
  return stats;
}

void TemporalDB::set_plan_cache_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(plan_cache_mu_);
  plan_cache_enabled_ = enabled;
  if (!enabled) plan_cache_.clear();
}

Result<sql::BoundStatement> TemporalDB::BindSql(const std::string& sql) const {
  Result<sql::Statement> parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  sql::Binder binder(&catalog_, &period_tables_);
  return binder.Bind(*parsed);
}

Result<PlanPtr> TemporalDB::PlanBound(const sql::BoundStatement& bound,
                                      const RewriteOptions& options) const {
  try {
    PlanPtr plan = bound.plan;
    if (bound.snapshot) {
      SnapshotRewriter rewriter(domain_, options, bound.encoded_tables);
      plan = rewriter.Rewrite(plan);
      if (bound.as_of.has_value()) {
        // tau_T of the snapshot result (Thm 6.3 guarantees this equals
        // evaluating the query over the sliced database).
        if (!domain_.Contains(*bound.as_of)) {
          return Status::InvalidArgument(
              StrCat("AS OF time ", *bound.as_of, " outside the domain ",
                     domain_.ToString()));
        }
        plan = MakeTimeslice(std::move(plan), *bound.as_of);
      }
    }
    if (!bound.order_by.empty()) {
      Result<std::vector<SortKey>> keys =
          sql::BindOrderBy(bound.order_by, plan->schema);
      if (!keys.ok()) return keys.status();
      plan = MakeSort(std::move(plan), std::move(keys.value()));
    }
    return plan;
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql) const {
  return Plan(sql, options_);
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql,
                                 const RewriteOptions& options) const {
  const std::string key = PlanCacheKey(sql, options);
  bool use_cache;
  {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    use_cache = plan_cache_enabled_;
    if (use_cache) {
      auto it = plan_cache_.find(key);
      if (it != plan_cache_.end()) {
        ++cache_stats_.hits;
        return it->second;
      }
      ++cache_stats_.misses;
    }
  }
  // Parse/bind/rewrite outside the lock: planning is the expensive part
  // and touches no cache state.
  Result<sql::BoundStatement> bound = BindSql(sql);
  if (!bound.ok()) return bound.status();
  Result<PlanPtr> plan = PlanBound(*bound, options);
  // Failed statements are not cached: they carry no plan to reuse and
  // an error may be transient (e.g. a table created later).
  if (use_cache && plan.ok()) {
    std::lock_guard<std::mutex> lock(plan_cache_mu_);
    if (plan_cache_.size() >= kPlanCacheMaxEntries) plan_cache_.clear();
    plan_cache_.emplace(key, *plan);
  }
  return plan;
}

Result<PlanPtr> TemporalDB::Prepare(const std::string& sql) const {
  return Prepare(sql, options_);
}

Result<PlanPtr> TemporalDB::Prepare(const std::string& sql,
                                    const RewriteOptions& options) const {
  return Plan(sql, options);
}

Result<std::string> TemporalDB::Explain(const std::string& sql) const {
  Result<PlanPtr> plan = Plan(sql, options_);
  if (!plan.ok()) return plan.status();
  return (*plan)->ToString();
}

Result<std::string> TemporalDB::ExplainAnalyze(const std::string& sql) const {
  Result<PlanPtr> plan = Plan(sql, options_);
  if (!plan.ok()) return plan.status();
  try {
    ExecStats stats;
    Relation result = Execute(*plan, catalog_, &stats);
    return StrCat((*plan)->ToString(), stats.ToString(), "\n",
                  result.size(), " result rows\n");
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<Relation> TemporalDB::Query(const std::string& sql) const {
  return Query(sql, options_);
}

Result<Relation> TemporalDB::Query(const std::string& sql,
                                   const RewriteOptions& options) const {
  Result<PlanPtr> plan = Plan(sql, options);
  if (!plan.ok()) return plan.status();
  try {
    return Execute(*plan, catalog_);
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<Relation> TemporalDB::Timeslice(const std::string& table,
                                       TimePoint t) const {
  if (!catalog_.Has(table)) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  auto it = period_tables_.find(table);
  if (it == period_tables_.end()) {
    return Status::InvalidArgument(StrCat(table, " is not a period table"));
  }
  const Relation& stored = catalog_.Get(table);
  // Normalize the period columns into the trailing position, then slice.
  int begin_idx = stored.schema().Find("", it->second.begin_column);
  int end_idx = stored.schema().Find("", it->second.end_column);
  std::vector<int> order;
  for (size_t i = 0; i < stored.schema().size(); ++i) {
    if (static_cast<int>(i) != begin_idx && static_cast<int>(i) != end_idx) {
      order.push_back(static_cast<int>(i));
    }
  }
  order.push_back(begin_idx);
  order.push_back(end_idx);
  try {
    Relation normalized =
        Execute(MakeProjectColumns(MakeConstant(stored), order), catalog_);
    return TimesliceEncoded(normalized, t);
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

}  // namespace periodk
