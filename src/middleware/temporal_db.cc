#include "middleware/temporal_db.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/str_util.h"
#include "engine/temporal_ops.h"
#include "engine/timeline_index.h"
#include "ra/cost_model.h"
#include "sql/parser.h"
#include "stats/table_stats.h"

namespace periodk {

namespace {

/// Plan-cache capacity; on overflow the cache restarts empty (a serving
/// workload inlining distinct literals must not grow memory forever).
constexpr size_t kPlanCacheMaxEntries = 1024;

/// Cache key for a (SQL text, rewrite options) pair.  Every option that
/// changes the produced plan is part of the key — use_cost_model shapes
/// plans (join reorder, strategy hints), so it is included — and plans
/// cached under different options never alias.  num_threads and
/// use_timeline_index are deliberately absent: they only change how a
/// plan executes, never the plan itself.
std::string PlanCacheKey(const std::string& sql,
                         const RewriteOptions& options) {
  return StrCat(static_cast<int>(options.semantics),
                static_cast<int>(options.hoist_coalesce),
                static_cast<int>(options.fuse_aggregation),
                static_cast<int>(options.pre_aggregate),
                static_cast<int>(options.final_coalesce),
                static_cast<int>(options.coalesce_impl),
                static_cast<int>(options.push_down_timeslice),
                static_cast<int>(options.use_cost_model), "|", sql);
}

/// A mutated table ready to publish: the shared relation handle plus
/// its statistics, both built *outside* the catalog locks (stats are a
/// pure function of the immutable relation).  Period tables profile
/// their stored interval columns; (-1, -1) means no period columns.
struct PublishedTable {
  std::shared_ptr<const Relation> relation;
  std::shared_ptr<const TableStats> stats;
};

// periodk-lint: allow(relation-by-value): ownership sink, callers move
PublishedTable PrepareTable(Relation relation, int begin_col, int end_col) {
  auto shared = std::make_shared<const Relation>(std::move(relation));
  auto stats = TableStats::Collect(shared, begin_col, end_col);
  return PublishedTable{std::move(shared), std::move(stats)};
}

}  // namespace

std::string PlanCacheStats::ToString() const {
  return StrCat("plan cache: ", hits, " hits, ", misses, " misses, ",
                invalidations, " invalidations, ", entries, " entries");
}

std::string IndexMaintenanceStats::ToString() const {
  return StrCat("index maintenance: ", delta_publishes, " delta publishes, ",
                compactions, " compactions, ", background_compactions,
                " background compactions");
}

TemporalDB::TemporalDB(TemporalDB&& other)
    : domain_(other.domain_), options_(other.options_) {
  // Steal the guarded state under other's locks, in the serving path's
  // order (writer before catalog; plan cache last).  Writes to this
  // object's own guarded fields need no locks: nothing else can see an
  // object still under construction.
  MutexLock writer_lock(other.writer_mu_);
  SharedMutexLock catalog_lock(other.catalog_mu_);
  MutexLock cache_lock(other.plan_cache_mu_);
  catalog_ = std::move(other.catalog_);
  period_tables_ = std::move(other.period_tables_);
  catalog_generation_ = other.catalog_generation_;
  table_versions_ = std::move(other.table_versions_);
  columnar_storage_ = other.columnar_storage_;
  index_maintenance_ = other.index_maintenance_;
  {
    MutexLock maintenance_lock(other.maintenance_mu_);
    maintenance_stats_ = other.maintenance_stats_;
  }
  // compaction_pool_ stays with `other`: its in-flight tasks captured
  // `other`'s `this` and drain against the (now empty) moved-from
  // catalog, where every generation-tag check fails harmlessly.
  plan_cache_enabled_ = other.plan_cache_enabled_;
  plan_cache_ = std::move(other.plan_cache_);
  cache_stats_ = other.cache_stats_;
}

TemporalDB::~TemporalDB() {
  // Serialize with writers so no new compaction can be scheduled, then
  // wait out the in-flight ones: their tasks dereference this object.
  MutexLock writer_lock(writer_mu_);
  if (compaction_pool_ != nullptr) compaction_pool_->Drain();
}

IndexMaintenanceStats TemporalDB::index_maintenance_stats() const {
  MutexLock lock(maintenance_mu_);
  return maintenance_stats_;
}

void TemporalDB::WaitForIndexMaintenance() {
  MutexLock writer_lock(writer_mu_);
  if (compaction_pool_ != nullptr) compaction_pool_->Drain();
}

// --- Writers.  All serialize on writer_mu_, build new table state
// outside the reader lock, and publish with a brief exclusive lock so
// readers only ever block for a pointer swap. -------------------------------

TemporalDB::AppendIndexPlan TemporalDB::PlanAppendIndex(
    const std::shared_ptr<const Relation>& old_relation,
    const std::shared_ptr<const TimelineIndex>& old_index,
    const std::shared_ptr<const Relation>& next,
    const std::shared_ptr<const TableStats>& next_stats, int begin_idx,
    int end_idx) const {
  AppendIndexPlan plan;
  if (!index_maintenance_.maintain_indexes || old_index == nullptr) {
    return plan;  // nothing to maintain: the slot drops, reads rebuild
  }
  // Only a current index over exactly the columns the period metadata
  // names can be extended; anything else (a racing layout change, a
  // hand-attached index) is dropped like before.
  if (!old_index->BuiltFor(old_relation.get()) ||
      old_index->begin_col() != begin_idx ||
      old_index->end_col() != end_idx) {
    return plan;
  }
  plan.index = TimelineIndex::WithDelta(old_index, next);
  if (plan.index == nullptr) return plan;  // unindexable appended rows
  // Threshold: ratio of the compacted core, clamped.  The delta is
  // checkpointed too, so this bounds memory/merge overhead rather than
  // correctness or per-lookup replay.
  int64_t base_events = static_cast<int64_t>(plan.index->num_events() -
                                             plan.index->num_delta_events());
  int64_t threshold = static_cast<int64_t>(
      index_maintenance_.compaction_ratio * static_cast<double>(base_events));
  threshold = std::clamp(threshold, index_maintenance_.min_compaction_events,
                         index_maintenance_.max_compaction_events);
  bool compact =
      static_cast<int64_t>(plan.index->num_delta_events()) >= threshold;
  // Checkpoint-K for the folded index comes from the fresh statistics
  // when the cost model is on, like the lazy build path.
  plan.checkpoint_interval = TimelineIndex::kDefaultCheckpointInterval;
  if (options_.use_cost_model && next_stats != nullptr &&
      next_stats->BuiltFor(next.get())) {
    plan.checkpoint_interval = CostModel::PickCheckpointInterval(*next_stats);
  }
  if (compact && !index_maintenance_.background_compaction) {
    std::shared_ptr<const TimelineIndex> folded = TimelineIndex::Build(
        next, begin_idx, end_idx, plan.checkpoint_interval);
    if (folded != nullptr) {
      plan.index = std::move(folded);
      MutexLock lock(maintenance_mu_);
      ++maintenance_stats_.compactions;
      return plan;
    }
  }
  plan.compact_in_background =
      compact && index_maintenance_.background_compaction;
  MutexLock lock(maintenance_mu_);
  ++maintenance_stats_.delta_publishes;
  return plan;
}

void TemporalDB::ScheduleBackgroundCompaction(
    const std::string& table, std::shared_ptr<const Relation> relation,
    int begin_idx, int end_idx, int64_t checkpoint_interval,
    uint64_t published_version) {
  {
    // One in-flight rebuild per table: a burst of appends keeps growing
    // the delta and re-arms once the current rebuild settles.
    MutexLock lock(maintenance_mu_);
    if (!pending_compactions_.insert(table).second) return;
  }
  if (compaction_pool_ == nullptr) {
    compaction_pool_ = std::make_unique<ThreadPool>(2);
  }
  compaction_pool_->Post([this, table, relation = std::move(relation),
                          begin_idx, end_idx, checkpoint_interval,
                          published_version] {
    // Build outside every lock — the expensive part.
    std::shared_ptr<const TimelineIndex> folded = TimelineIndex::Build(
        relation, begin_idx, end_idx, checkpoint_interval);
    bool published = false;
    if (folded != nullptr) {
      // Double-checked publication under the generation tag, like the
      // lazy read-side build: the folded index replaces the delta index
      // only while the table is still the exact published state it was
      // built from; any later append's publication wins.
      SharedMutexLock lock(catalog_mu_);
      auto version = table_versions_.find(table);
      if (version != table_versions_.end() &&
          version->second == published_version) {
        catalog_.PutIndex(table, folded);
        published = true;
      }
    }
    MutexLock lock(maintenance_mu_);
    if (published) ++maintenance_stats_.background_compactions;
    pending_compactions_.erase(table);
  });
}

Status TemporalDB::CreateTable(const std::string& name,
                               const std::vector<std::string>& columns) {
  MutexLock writer_lock(writer_mu_);
  // writer_mu_ alone would suffice for this read (only writers modify
  // the catalog and they serialize), but "either of two locks" is not
  // a provable protocol — the shared lock is contention-free here and
  // lets the analysis check the read.
  {
    SharedReaderLock lock(catalog_mu_);
    if (catalog_.Has(name)) {
      return Status::AlreadyExists(StrCat("table exists: ", name));
    }
  }
  Relation table{Schema::FromNames(columns)};
  if (columnar_storage_) table.ToColumnar();
  PublishedTable pub = PrepareTable(std::move(table), -1, -1);
  {
    SharedMutexLock lock(catalog_mu_);
    catalog_.PutShared(name, std::move(pub.relation));
    catalog_.PutStats(name, std::move(pub.stats));
    ++catalog_generation_;
    table_versions_[name] = catalog_generation_;
  }
  InvalidatePlanCache();
  return Status::OK();
}

Status TemporalDB::CreatePeriodTable(const std::string& name,
                                     const std::vector<std::string>& columns,
                                     const std::string& begin_column,
                                     const std::string& end_column) {
  if (begin_column == end_column) {
    return Status::InvalidArgument(
        StrCat("period begin and end must be distinct columns, got (",
               begin_column, ", ", end_column, ")"));
  }
  Schema schema = Schema::FromNames(columns);
  if (schema.Find("", begin_column) < 0 || schema.Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  MutexLock writer_lock(writer_mu_);
  {
    SharedReaderLock lock(catalog_mu_);
    if (catalog_.Has(name)) {
      return Status::AlreadyExists(StrCat("table exists: ", name));
    }
  }
  const int begin_idx = schema.Find("", begin_column);
  const int end_idx = schema.Find("", end_column);
  Relation table{std::move(schema)};
  if (columnar_storage_) table.ToColumnar();
  PublishedTable pub = PrepareTable(std::move(table), begin_idx, end_idx);
  {
    SharedMutexLock lock(catalog_mu_);
    catalog_.PutShared(name, std::move(pub.relation));
    catalog_.PutStats(name, std::move(pub.stats));
    period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
    ++catalog_generation_;
    table_versions_[name] = catalog_generation_;
  }
  InvalidatePlanCache();
  return Status::OK();
}

// periodk-lint: allow(relation-by-value): ownership sink, callers move
Status TemporalDB::PutPeriodTable(const std::string& name, Relation relation,
                                  const std::string& begin_column,
                                  const std::string& end_column) {
  if (begin_column == end_column) {
    return Status::InvalidArgument(
        StrCat("period begin and end must be distinct columns, got (",
               begin_column, ", ", end_column, ")"));
  }
  if (relation.schema().Find("", begin_column) < 0 ||
      relation.schema().Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  MutexLock writer_lock(writer_mu_);
  if (columnar_storage_) relation.ToColumnar();
  const int begin_idx = relation.schema().Find("", begin_column);
  const int end_idx = relation.schema().Find("", end_column);
  PublishedTable pub = PrepareTable(std::move(relation), begin_idx, end_idx);
  {
    SharedMutexLock lock(catalog_mu_);
    catalog_.PutShared(name, std::move(pub.relation));
    catalog_.PutStats(name, std::move(pub.stats));
    period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
    ++catalog_generation_;
    table_versions_[name] = catalog_generation_;
  }
  InvalidatePlanCacheForTable(name);
  return Status::OK();
}

Status TemporalDB::Insert(const std::string& table, Row row) {
  MutexLock writer_lock(writer_mu_);
  std::shared_ptr<const Relation> current;
  std::shared_ptr<const TimelineIndex> old_index;
  int begin_idx = -1;
  int end_idx = -1;
  {
    SharedReaderLock lock(catalog_mu_);
    if (!catalog_.Has(table)) {
      return Status::NotFound(StrCat("unknown table: ", table));
    }
    current = catalog_.GetShared(table);
    old_index = catalog_.GetIndex(table);
    auto pt = period_tables_.find(table);
    if (pt != period_tables_.end()) {
      begin_idx = current->schema().Find("", pt->second.begin_column);
      end_idx = current->schema().Find("", pt->second.end_column);
    }
  }
  if (row.size() != current->schema().size()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into ", table, ": got ", row.size(),
               " values, expected ", current->schema().size()));
  }
  // Copy-on-write outside the reader lock: pinned snapshots keep the
  // old relation alive and untouched.
  Relation next = *current;
  next.AddRow(std::move(row));
  if (columnar_storage_) next.ToColumnar();
  PublishedTable pub = PrepareTable(std::move(next), begin_idx, end_idx);
  // Index maintenance rides the same copy-on-write publication: the old
  // index plus the appended row become a differential index (or, past
  // the threshold, a freshly folded one) — still outside the locks.
  AppendIndexPlan index_plan = PlanAppendIndex(
      current, old_index, pub.relation, pub.stats, begin_idx, end_idx);
  uint64_t published_version = 0;
  {
    SharedMutexLock lock(catalog_mu_);
    catalog_.PutShared(table, pub.relation);
    catalog_.PutStats(table, std::move(pub.stats));
    // PutShared dropped the index slot; restore the maintained index in
    // the same critical section so no reader observes the gap.
    if (index_plan.index != nullptr) {
      catalog_.PutIndex(table, index_plan.index);
    }
    ++catalog_generation_;
    table_versions_[table] = catalog_generation_;
    published_version = catalog_generation_;
  }
  InvalidatePlanCacheForTable(table);
  if (index_plan.compact_in_background) {
    ScheduleBackgroundCompaction(table, pub.relation, begin_idx, end_idx,
                                 index_plan.checkpoint_interval,
                                 published_version);
  }
  return Status::OK();
}

Status TemporalDB::InsertRows(const std::string& table,
                              std::vector<Row> rows) {
  MutexLock writer_lock(writer_mu_);
  std::shared_ptr<const Relation> current;
  std::shared_ptr<const TimelineIndex> old_index;
  int begin_idx = -1;
  int end_idx = -1;
  {
    SharedReaderLock lock(catalog_mu_);
    if (!catalog_.Has(table)) {
      return Status::NotFound(StrCat("unknown table: ", table));
    }
    current = catalog_.GetShared(table);
    old_index = catalog_.GetIndex(table);
    auto pt = period_tables_.find(table);
    if (pt != period_tables_.end()) {
      begin_idx = current->schema().Find("", pt->second.begin_column);
      end_idx = current->schema().Find("", pt->second.end_column);
    }
  }
  // Validate every arity before any row lands: a bulk insert is atomic,
  // so a mid-batch mismatch must not leave the table half-populated.
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != current->schema().size()) {
      return Status::InvalidArgument(StrCat(
          "arity mismatch inserting into ", table, " at row ", i, ": got ",
          rows[i].size(), " values, expected ", current->schema().size()));
    }
  }
  if (rows.empty()) return Status::OK();
  Relation next = *current;
  next.Reserve(next.size() + rows.size());
  for (Row& row : rows) next.AddRow(std::move(row));
  if (columnar_storage_) next.ToColumnar();
  PublishedTable pub = PrepareTable(std::move(next), begin_idx, end_idx);
  AppendIndexPlan index_plan = PlanAppendIndex(
      current, old_index, pub.relation, pub.stats, begin_idx, end_idx);
  uint64_t published_version = 0;
  {
    SharedMutexLock lock(catalog_mu_);
    catalog_.PutShared(table, pub.relation);
    catalog_.PutStats(table, std::move(pub.stats));
    if (index_plan.index != nullptr) {
      catalog_.PutIndex(table, index_plan.index);
    }
    ++catalog_generation_;
    table_versions_[table] = catalog_generation_;
    published_version = catalog_generation_;
  }
  InvalidatePlanCacheForTable(table);
  if (index_plan.compact_in_background) {
    ScheduleBackgroundCompaction(table, pub.relation, begin_idx, end_idx,
                                 index_plan.checkpoint_interval,
                                 published_version);
  }
  return Status::OK();
}

// --- Plan cache. -----------------------------------------------------------

void TemporalDB::InvalidatePlanCache() {
  MutexLock lock(plan_cache_mu_);
  if (plan_cache_.empty()) return;
  plan_cache_.clear();
  ++cache_stats_.invalidations;
}

void TemporalDB::InvalidatePlanCacheForTable(const std::string& table) {
  MutexLock lock(plan_cache_mu_);
  size_t dropped = 0;
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    bool reads_table = false;
    for (const auto& [name, version] : it->second.table_versions) {
      if (name == table) {
        reads_table = true;
        break;
      }
    }
    if (reads_table) {
      it = plan_cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) ++cache_stats_.invalidations;
}

PlanCacheStats TemporalDB::plan_cache_stats() const {
  MutexLock lock(plan_cache_mu_);
  PlanCacheStats stats = cache_stats_;
  stats.entries = static_cast<int64_t>(plan_cache_.size());
  return stats;
}

void TemporalDB::set_plan_cache_enabled(bool enabled) {
  MutexLock lock(plan_cache_mu_);
  plan_cache_enabled_ = enabled;
  // Disabling drops every entry: a bound plan from before the toggle
  // must not resurface after re-enabling (the per-table version tags
  // would already refuse to serve stale entries, but an explicit
  // disable means "no cached state, period").
  if (!enabled) plan_cache_.clear();
}

// --- Readers.  Every entry point pins one snapshot and runs entirely
// against it. ---------------------------------------------------------------

TemporalDB::Snapshot TemporalDB::PinSnapshot() const {
  SharedReaderLock lock(catalog_mu_);
  return Snapshot{catalog_, period_tables_, catalog_generation_,
                  table_versions_};
}

std::shared_ptr<const TimelineIndex> TemporalDB::EnsureTimelineIndex(
    const std::string& table, int begin_col, int end_col, Snapshot& snap,
    bool use_cost_model) const {
  std::shared_ptr<const Relation> relation = snap.catalog.GetShared(table);
  std::shared_ptr<const TimelineIndex> index = snap.catalog.GetIndex(table);
  if (index != nullptr && index->BuiltFor(relation.get()) &&
      index->begin_col() == begin_col && index->end_col() == end_col) {
    return index;
  }
  // Replay cost per lookup is O(K); checkpoint memory is O(avg alive
  // set) per checkpoint.  With statistics available, size K to the
  // table's alive-set profile instead of the one-size default (either
  // choice answers every lookup identically).
  int64_t checkpoint_interval = TimelineIndex::kDefaultCheckpointInterval;
  if (use_cost_model) {
    std::shared_ptr<const TableStats> stats = snap.catalog.GetStats(table);
    if (stats != nullptr && stats->BuiltFor(relation.get())) {
      checkpoint_interval = CostModel::PickCheckpointInterval(*stats);
    }
  }
  index = TimelineIndex::Build(relation, begin_col, end_col,
                               checkpoint_interval);
  if (index == nullptr) return nullptr;  // unindexable: scan path decides
  snap.catalog.PutIndex(table, index);
  {
    // Publish back to the live catalog, double-checked under the
    // generation tag: only while the catalog still is the exact state
    // the index was built against.  If another reader raced its own
    // build in first, keep that one — the two are interchangeable.
    SharedMutexLock lock(catalog_mu_);
    if (catalog_generation_ == snap.generation &&
        catalog_.GetIndex(table) == nullptr) {
      catalog_.PutIndex(table, index);
    }
  }
  return index;
}

void TemporalDB::EnsureTimelineIndexes(const PlanPtr& plan, Snapshot& snap,
                                       bool use_cost_model) const {
  // A middleware plan acquires its kTimeslice at the statement root and
  // PushDownTimeslice only moves it through unary nodes, so any
  // indexable timeslice sits on the unary left spine — an
  // allocation-free probe, so the common no-AS-OF serving path pays
  // O(spine) instead of a full DAG walk.  Hand-built plans holding
  // timeslices elsewhere are merely not accelerated (the executor falls
  // back to the scan path without an index).
  // (`class` disambiguates from the TemporalDB::Plan member function.)
  for (const class Plan* node = plan.get(); node != nullptr;
       node = node->left.get()) {
    if (node->kind != PlanKind::kTimeslice || node->left == nullptr ||
        node->left->kind != PlanKind::kScan) {
      continue;
    }
    const std::string& table = node->left->table;
    if (!snap.catalog.Has(table)) continue;
    int arity = static_cast<int>(snap.catalog.Get(table).schema().size());
    if (arity < 2) continue;
    // Index over exactly the columns this slice reads: the trailing two
    // for the PERIODENC default, or the stored positions when the
    // pushdown crossed a non-trailing period table's encoded
    // projection.  The executor rejects any other layout.
    auto [begin_col, end_col] = ResolveSliceColumns(*node);
    if (begin_col >= arity || end_col >= arity) continue;
    EnsureTimelineIndex(table, begin_col, end_col, snap, use_cost_model);
  }
}

Result<sql::BoundStatement> TemporalDB::BindSql(const std::string& sql,
                                                const Snapshot& snap) const {
  Result<sql::Statement> parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  sql::Binder binder(&snap.catalog, &snap.period_tables);
  return binder.Bind(*parsed);
}

Result<PlanPtr> TemporalDB::PlanBound(const sql::BoundStatement& bound,
                                      const RewriteOptions& options,
                                      const Snapshot& snap) const {
  try {
    PlanPtr plan = bound.plan;
    // One model per planning pass: it reads the snapshot's statistics
    // and memoizes per plan node, so the rewriter's reorder pre-pass
    // and the strategy-hint pass below share estimates.
    std::optional<CostModel> cost;
    if (options.use_cost_model) cost.emplace(&snap.catalog, domain_);
    if (bound.snapshot) {
      SnapshotRewriter rewriter(domain_, options, bound.encoded_tables,
                                cost.has_value() ? &*cost : nullptr);
      plan = rewriter.Rewrite(plan);
      if (bound.as_of.has_value()) {
        // tau_T of the snapshot result (Thm 6.3 guarantees this equals
        // evaluating the query over the sliced database).
        if (!domain_.Contains(*bound.as_of)) {
          return Status::InvalidArgument(
              StrCat("AS OF time ", *bound.as_of, " outside the domain ",
                     domain_.ToString()));
        }
        plan = MakeTimeslice(std::move(plan), *bound.as_of);
        if (options.push_down_timeslice) {
          // Move tau below the final coalesce and through the REWR
          // select/project shapes so it lands on the scans, where the
          // executor can answer it from the timeline index.
          plan = PushDownTimeslice(plan);
        }
      }
    } else if (cost.has_value()) {
      // Non-snapshot statements scan stored tables directly; their
      // commutative join clusters reorder with the same model.
      plan = ReorderJoins(plan, *cost);
    }
    if (cost.has_value()) {
      // Mark tiny overlap joins for the nested loop.  Runs on the final
      // encoded plan (post-rewrite/pushdown) so the hint lands on the
      // joins that actually execute.
      plan = ApplyJoinStrategyHints(plan, *cost);
    }
    if (!bound.order_by.empty()) {
      Result<std::vector<SortKey>> keys =
          sql::BindOrderBy(bound.order_by, plan->schema);
      if (!keys.ok()) return keys.status();
      plan = MakeSort(std::move(plan), std::move(keys.value()));
    }
    return plan;
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<PlanPtr> TemporalDB::PlanForSnapshot(const std::string& sql,
                                            const RewriteOptions& options,
                                            const Snapshot& snap) const {
  const std::string key = PlanCacheKey(sql, options);
  bool use_cache;
  {
    MutexLock lock(plan_cache_mu_);
    use_cache = plan_cache_enabled_;
    if (use_cache) {
      auto it = plan_cache_.find(key);
      if (it != plan_cache_.end()) {
        // An entry is served iff every base table it was bound against
        // is still at the version the binding saw.  Mutations of tables
        // the plan never reads leave it hot.
        bool valid = true;
        for (const auto& [table, version] : it->second.table_versions) {
          auto tv = snap.table_versions.find(table);
          if (tv == snap.table_versions.end() || tv->second != version) {
            valid = false;
            break;
          }
        }
        if (valid) {
          ++cache_stats_.hits;
          return it->second.plan;
        }
      }
      ++cache_stats_.misses;
    }
  }
  // Parse/bind/rewrite outside the lock: planning is the expensive part
  // and touches no cache state.  Failed statements are not cached: they
  // carry no plan to reuse and an error may be transient (e.g. a table
  // created later).
  Result<sql::BoundStatement> bound = BindSql(sql, snap);
  if (!bound.ok()) return bound.status();
  Result<PlanPtr> plan = PlanBound(*bound, options, snap);
  if (use_cache && plan.ok()) {
    // Record the base tables the plan reads at the versions the pinned
    // snapshot saw: the entry stays valid exactly as long as none of
    // those tables mutates.  A table absent from the snapshot's version
    // map (never published through a writer) pins version 0 and can
    // never be served once it appears — the conservative direction.
    std::vector<std::pair<std::string, uint64_t>> versions;
    for (const std::string& table : CollectScanTables(*plan)) {
      auto tv = snap.table_versions.find(table);
      versions.emplace_back(table,
                            tv == snap.table_versions.end() ? 0 : tv->second);
    }
    MutexLock lock(plan_cache_mu_);
    // Re-check the toggle: a disable while we planned means "cache
    // nothing".  The version tags carry the snapshot state this plan is
    // valid for, so an insert racing a catalog mutation is harmless —
    // queries pinned to any other state simply miss.
    if (plan_cache_enabled_) {
      if (plan_cache_.size() >= kPlanCacheMaxEntries) plan_cache_.clear();
      plan_cache_.insert_or_assign(key, CachedPlan{*plan, std::move(versions)});
    }
  }
  return plan;
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql) const {
  return Plan(sql, options_);
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql,
                                 const RewriteOptions& options) const {
  try {
    return PlanForSnapshot(sql, options, PinSnapshot());
  } catch (const std::exception& error) {
    // Planning reports every failure as a Status; this is the backstop
    // that keeps the no-throw middleware boundary airtight.
    return Status::Internal(error.what());
  }
}

Result<PlanPtr> TemporalDB::Prepare(const std::string& sql) const {
  return Prepare(sql, options_);
}

Result<PlanPtr> TemporalDB::Prepare(const std::string& sql,
                                    const RewriteOptions& options) const {
  return Plan(sql, options);
}

Result<std::string> TemporalDB::Explain(const std::string& sql) const {
  Result<PlanPtr> plan = Plan(sql, options_);
  if (!plan.ok()) return plan.status();
  return (*plan)->ToString();
}

Result<std::string> TemporalDB::ExplainAnalyze(const std::string& sql) const {
  Snapshot snap = PinSnapshot();
  Result<PlanPtr> plan = PlanForSnapshot(sql, options_, snap);
  if (!plan.ok()) return plan.status();
  try {
    ExecStats stats;
    ExecOptions exec;
    exec.num_threads = options_.num_threads;
    exec.use_timeline_index = options_.use_timeline_index;
    exec.use_cost_model = options_.use_cost_model;
    if (exec.use_timeline_index) {
      EnsureTimelineIndexes(*plan, snap, options_.use_cost_model);
    }
    Relation result = Execute(*plan, snap.catalog, exec, &stats);
    std::string rendered;
    if (options_.use_cost_model) {
      // Per-node estimated vs. actual cardinality.  Deterministic:
      // estimates are a pure function of plan + snapshot statistics,
      // actuals are looked up per node while the *plan walk* dictates
      // the order (node_rows is never iterated).
      CostModel cost(&snap.catalog, domain_);
      PlanAnnotator annotate = [&](const class Plan& node) {
        std::string suffix =
            StrCat("  [est=", static_cast<int64_t>(cost.EstimateRows(node)));
        auto it = stats.node_rows.find(&node);
        if (it != stats.node_rows.end()) {
          suffix = StrCat(suffix, " actual=", it->second);
        }
        return StrCat(suffix, "]");
      };
      rendered = (*plan)->ToString(0, annotate);
    } else {
      rendered = (*plan)->ToString();
    }
    // The execution counters carry the per-run delta replay
    // (index delta events); the maintenance line adds the DB-lifetime
    // write-path view (delta publishes / compactions) so an operator
    // can see whether a slow AS-OF is riding an uncompacted delta.
    return StrCat(rendered, stats.ToString(), "\n",
                  index_maintenance_stats().ToString(), "\n",
                  result.size(), " result rows\n");
  } catch (const std::exception& error) {
    // EngineError plus anything execution-adjacent (e.g. std::thread
    // failing to spawn pool workers): the boundary never throws.
    return Status::Internal(error.what());
  }
}

Result<Relation> TemporalDB::Query(const std::string& sql) const {
  return Query(sql, options_);
}

Result<Relation> TemporalDB::Query(const std::string& sql,
                                   const RewriteOptions& options) const {
  Snapshot snap = PinSnapshot();
  Result<PlanPtr> plan = PlanForSnapshot(sql, options, snap);
  if (!plan.ok()) return plan.status();
  try {
    ExecOptions exec;
    exec.num_threads = options.num_threads;
    exec.use_timeline_index = options.use_timeline_index;
    exec.use_cost_model = options.use_cost_model;
    // First indexed read builds the (per-snapshot, COW-shared) index.
    if (exec.use_timeline_index) {
      EnsureTimelineIndexes(*plan, snap, options.use_cost_model);
    }
    return Execute(*plan, snap.catalog, exec);
  } catch (const std::exception& error) {
    // EngineError plus anything execution-adjacent (e.g. std::thread
    // failing to spawn pool workers): the boundary never throws.
    return Status::Internal(error.what());
  }
}

Result<Relation> TemporalDB::Timeslice(const std::string& table,
                                       TimePoint t) const {
  Snapshot snap = PinSnapshot();
  if (!snap.catalog.Has(table)) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  auto it = snap.period_tables.find(table);
  if (it == snap.period_tables.end()) {
    return Status::InvalidArgument(StrCat(table, " is not a period table"));
  }
  const Relation& stored = snap.catalog.Get(table);
  int begin_idx = stored.schema().Find("", it->second.begin_column);
  int end_idx = stored.schema().Find("", it->second.end_column);
  try {  // the middleware boundary never throws, index path included
    if (options_.use_timeline_index) {
      // Point lookup through the timeline index: checkpoint + bounded
      // replay, row-identical to the scan path below.  Build() returns
      // nullptr for unindexable tables (non-integer endpoints), which
      // keeps the scan path's diagnostics.
      std::shared_ptr<const TimelineIndex> index = EnsureTimelineIndex(
          table, begin_idx, end_idx, snap, options_.use_cost_model);
      if (index != nullptr) return index->Timeslice(t);
    }
    // Normalize the period columns into the trailing position, slice.
    std::vector<int> order;
    for (size_t i = 0; i < stored.schema().size(); ++i) {
      if (static_cast<int>(i) != begin_idx &&
          static_cast<int>(i) != end_idx) {
        order.push_back(static_cast<int>(i));
      }
    }
    order.push_back(begin_idx);
    order.push_back(end_idx);
    Relation normalized =
        Execute(MakeProjectColumns(MakeConstant(stored), order), snap.catalog);
    return TimesliceEncoded(normalized, t);
  } catch (const std::exception& error) {
    return Status::Internal(error.what());
  }
}

}  // namespace periodk
