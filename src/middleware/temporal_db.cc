#include "middleware/temporal_db.h"

#include "common/str_util.h"
#include "engine/temporal_ops.h"
#include "sql/parser.h"

namespace periodk {

Status TemporalDB::CreateTable(const std::string& name,
                               const std::vector<std::string>& columns) {
  if (catalog_.Has(name)) {
    return Status::AlreadyExists(StrCat("table exists: ", name));
  }
  catalog_.Put(name, Relation(Schema::FromNames(columns)));
  return Status::OK();
}

Status TemporalDB::CreatePeriodTable(const std::string& name,
                                     const std::vector<std::string>& columns,
                                     const std::string& begin_column,
                                     const std::string& end_column) {
  Schema schema = Schema::FromNames(columns);
  if (schema.Find("", begin_column) < 0 || schema.Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  Status status = CreateTable(name, columns);
  if (!status.ok()) return status;
  period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
  return Status::OK();
}

Status TemporalDB::PutPeriodTable(const std::string& name, Relation relation,
                                  const std::string& begin_column,
                                  const std::string& end_column) {
  if (relation.schema().Find("", begin_column) < 0 ||
      relation.schema().Find("", end_column) < 0) {
    return Status::InvalidArgument(
        StrCat("period columns (", begin_column, ", ", end_column,
               ") must be part of the schema"));
  }
  catalog_.Put(name, std::move(relation));
  period_tables_[name] = sql::PeriodTableInfo{begin_column, end_column};
  return Status::OK();
}

Status TemporalDB::Insert(const std::string& table, Row row) {
  Relation* relation = catalog_.GetMutable(table);
  if (relation == nullptr) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  if (row.size() != relation->schema().size()) {
    return Status::InvalidArgument(
        StrCat("arity mismatch inserting into ", table, ": got ", row.size(),
               " values, expected ", relation->schema().size()));
  }
  relation->AddRow(std::move(row));
  return Status::OK();
}

Status TemporalDB::InsertRows(const std::string& table,
                              std::vector<Row> rows) {
  for (Row& row : rows) {
    Status status = Insert(table, std::move(row));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

Result<sql::BoundStatement> TemporalDB::BindSql(const std::string& sql) const {
  Result<sql::Statement> parsed = sql::Parse(sql);
  if (!parsed.ok()) return parsed.status();
  sql::Binder binder(&catalog_, &period_tables_);
  return binder.Bind(*parsed);
}

Result<PlanPtr> TemporalDB::PlanBound(const sql::BoundStatement& bound,
                                      const RewriteOptions& options) const {
  try {
    PlanPtr plan = bound.plan;
    if (bound.snapshot) {
      SnapshotRewriter rewriter(domain_, options, bound.encoded_tables);
      plan = rewriter.Rewrite(plan);
      if (bound.as_of.has_value()) {
        // tau_T of the snapshot result (Thm 6.3 guarantees this equals
        // evaluating the query over the sliced database).
        if (!domain_.Contains(*bound.as_of)) {
          return Status::InvalidArgument(
              StrCat("AS OF time ", *bound.as_of, " outside the domain ",
                     domain_.ToString()));
        }
        plan = MakeTimeslice(std::move(plan), *bound.as_of);
      }
    }
    if (!bound.order_by.empty()) {
      Result<std::vector<SortKey>> keys =
          sql::BindOrderBy(bound.order_by, plan->schema);
      if (!keys.ok()) return keys.status();
      plan = MakeSort(std::move(plan), std::move(keys.value()));
    }
    return plan;
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql) const {
  return Plan(sql, options_);
}

Result<PlanPtr> TemporalDB::Plan(const std::string& sql,
                                 const RewriteOptions& options) const {
  Result<sql::BoundStatement> bound = BindSql(sql);
  if (!bound.ok()) return bound.status();
  return PlanBound(*bound, options);
}

Result<std::string> TemporalDB::Explain(const std::string& sql) const {
  Result<PlanPtr> plan = Plan(sql, options_);
  if (!plan.ok()) return plan.status();
  return (*plan)->ToString();
}

Result<Relation> TemporalDB::Query(const std::string& sql) const {
  return Query(sql, options_);
}

Result<Relation> TemporalDB::Query(const std::string& sql,
                                   const RewriteOptions& options) const {
  Result<PlanPtr> plan = Plan(sql, options);
  if (!plan.ok()) return plan.status();
  try {
    return Execute(*plan, catalog_);
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

Result<Relation> TemporalDB::Timeslice(const std::string& table,
                                       TimePoint t) const {
  if (!catalog_.Has(table)) {
    return Status::NotFound(StrCat("unknown table: ", table));
  }
  auto it = period_tables_.find(table);
  if (it == period_tables_.end()) {
    return Status::InvalidArgument(StrCat(table, " is not a period table"));
  }
  const Relation& stored = catalog_.Get(table);
  // Normalize the period columns into the trailing position, then slice.
  int begin_idx = stored.schema().Find("", it->second.begin_column);
  int end_idx = stored.schema().Find("", it->second.end_column);
  std::vector<int> order;
  for (size_t i = 0; i < stored.schema().size(); ++i) {
    if (static_cast<int>(i) != begin_idx && static_cast<int>(i) != end_idx) {
      order.push_back(static_cast<int>(i));
    }
  }
  order.push_back(begin_idx);
  order.push_back(end_idx);
  try {
    Relation normalized =
        Execute(MakeProjectColumns(MakeConstant(stored), order), catalog_);
    return TimesliceEncoded(normalized, t);
  } catch (const EngineError& error) {
    return Status::Internal(error.what());
  }
}

}  // namespace periodk
