// Cardinality estimation over logical plans, fed by the per-table
// statistics of stats/table_stats.h (docs/architecture.md §11).  The
// model is deliberately small — textbook selectivities refined with the
// interval profiles the stats collector gathers for period tables — and
// every consumer treats an estimate as a *hint*: the rewriter orders
// commutative join clusters (ReorderJoins), plan build marks tiny joins
// for nested-loop execution (ApplyJoinStrategyHints), the executor
// gates partition fan-out, and TemporalDB sizes timeline-index
// checkpoints.  All of it sits behind RewriteOptions/ExecOptions::
// use_cost_model; off reproduces the structural behavior bit-identically.
#ifndef PERIODK_RA_COST_MODEL_H_
#define PERIODK_RA_COST_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "ra/plan.h"
#include "temporal/interval.h"

namespace periodk {

class Catalog;
class TableStats;

/// Break-even thresholds shared by the planner and the executor so the
/// plan-level hints and the execution-time gates agree on what "tiny"
/// means.
///
/// A join whose estimated input product is below this executes as a
/// nested loop: the hash/sweep setup costs more than |L|*|R| compares.
inline constexpr int64_t kTinyJoinProduct = 1024;
/// Partitioned operators fan out to the thread pool only when the
/// operator's input work (rows) reaches this; below it the chunk
/// bookkeeping and stats merging dominate (BENCH_parallel.json showed
/// blind fan-out losing ~25% on small aggregations).
inline constexpr int64_t kParallelMinRows = 2048;

/// Cardinality estimator over one catalog snapshot.  One instance is
/// built per planning pass and discarded with it.  Estimates never
/// fail:
/// missing stats degrade to actual relation sizes (scans) and fixed
/// default selectivities.
class CostModel {
 public:
  /// `catalog` may be null (every scan then estimates a default size);
  /// `domain` bounds interval spans when a table profile is missing.
  CostModel(const Catalog* catalog, TimeDomain domain);

  /// Estimated output rows of `plan` (>= 0, finite).  Memoized per
  /// node within one top-level call, so shared DAG nodes are costed
  /// once per estimate.
  double EstimateRows(const Plan& plan) const;
  double EstimateRows(const PlanPtr& plan) const { return EstimateRows(*plan); }

  /// Estimated distinct values of output column `col` of `plan`,
  /// capped by the node's estimated rows-producing child.
  double EstimateDistinct(const Plan& plan, int col) const;

  /// Selectivity in [0, 1] of `predicate` filtering the output of
  /// `input` (conjunctions multiply, disjunctions use
  /// inclusion-exclusion, unknown shapes default to 1/3).
  double Selectivity(const ExprPtr& predicate, const Plan& input) const;

  /// Timeline-index checkpoint interval for a table with this profile:
  /// about twice the average number of alive rows, clamped to
  /// [16, 4096] and rounded to a power of two — checkpoints then cost
  /// about as much as the bounded replay they save.  Result rows are
  /// identical for any K; only build size / probe time move.
  static int64_t PickCheckpointInterval(const TableStats& stats);

 private:
  struct IntervalProfile {
    bool valid = false;
    double avg_length = 0.0;
    double min_begin = 0.0;
    double max_end = 0.0;
  };

  double EstimateRowsImpl(const Plan& plan) const;
  /// Interval profile of the node's PERIODENC payload, traced through
  /// the interval-preserving operators down to period-table scans.
  IntervalProfile Profile(const Plan& plan) const;
  double OverlapSelectivity(const Plan& left, const Plan& right) const;
  const TableStats* StatsFor(const Plan& scan) const;

  const Catalog* catalog_;
  TimeDomain domain_;
  // Keyed by node identity, valid only while those nodes are alive:
  // cleared at the start of every outermost EstimateRows call (the
  // reorder search discards candidate nodes between calls, and the
  // allocator recycles their addresses).
  mutable std::unordered_map<const Plan*, double> memo_;
  mutable int memo_depth_ = 0;
  // Stats handles consulted so far, pinned for the model's lifetime
  // (nullptr entries cache "table has no current stats").
  mutable std::unordered_map<std::string, std::shared_ptr<const TableStats>>
      stats_cache_;
};

/// Reorders maximal clusters of adjacent kJoin nodes greedily by
/// estimated intermediate cardinality.  The result is semantically
/// equal (same bag of rows, same schema): conjuncts move to the first
/// join covering their columns and a final column projection restores
/// the original output order.  Clusters whose reordering does not beat
/// the structural order by a margin keep the original nodes, so flat
/// estimates return `plan` itself (bit-identical).  Shared subplans are
/// rewritten once; multi-parent join nodes are treated as cluster
/// leaves to preserve DAG sharing.
[[nodiscard]] PlanPtr ReorderJoins(const PlanPtr& plan, const CostModel& cost);

/// Marks joins whose estimated input product is below kTinyJoinProduct
/// with JoinStrategy::kNestedLoop — a *plan-level* choice (rendered by
/// Plan::ToString) because the sweep join's output order differs from
/// the nested loop's, so the substitution must be visible, not a silent
/// execution-time swap.  Returns `plan` itself when nothing changes.
[[nodiscard]] PlanPtr ApplyJoinStrategyHints(const PlanPtr& plan,
                                             const CostModel& cost);

}  // namespace periodk

#endif  // PERIODK_RA_COST_MODEL_H_
