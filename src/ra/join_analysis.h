// Build-time structural analysis of join predicates.  REWR's join rule
// (paper Fig. 4 / Sec. 8) emits `theta' AND b1 < e2 AND b2 < e1` over
// PERIODENC-encoded inputs; recognizing that shape once, when the plan
// is built, lets the executor route temporal joins to the sweep-based
// interval-overlap join instead of re-deriving the predicate structure
// (or worse, falling back to a nested loop) on every execution.
#ifndef PERIODK_RA_JOIN_ANALYSIS_H_
#define PERIODK_RA_JOIN_ANALYSIS_H_

#include <optional>
#include <utility>
#include <vector>

#include "engine/expr.h"

namespace periodk {

/// An interval-overlap conjunct `left[left_begin] < right[right_end] AND
/// right[right_begin] < left[left_end]` recognized inside a join
/// predicate.  Right-side indices are relative to the right input's
/// schema.  For plans produced by RewriteJoin these are the trailing
/// PERIODENC endpoint columns, but any pair of opposing cross-input
/// strict inequalities forms a valid overlap test.
struct OverlapSpec {
  int left_begin = -1;
  int left_end = -1;
  int right_begin = -1;
  int right_end = -1;
};

/// Decomposition of a join predicate over the concatenated
/// (left ++ right) schema into the parts the executor can exploit:
/// hashable equi-key pairs, an interval-overlap conjunct for the sweep
/// join, and an opaque residual evaluated per candidate pair (nullptr
/// when nothing remains).
struct JoinAnalysis {
  std::vector<std::pair<int, int>> equi_keys;  // (left idx, right-rel idx)
  std::optional<OverlapSpec> overlap;
  ExprPtr residual;
};

/// Splits the top-level conjunction of `predicate`.  Equi-keys are
/// column-column equalities across the inputs (NULL keys never join);
/// a pair of strict `<`/`>` column comparisons in opposite directions
/// across the inputs is lifted into OverlapSpec.  Everything else --
/// same-side comparisons, non-column operands, further overlap pairs --
/// lands in the residual, so the decomposition conjoined back together
/// is equivalent to the original predicate under SQL three-valued logic.
JoinAnalysis AnalyzeJoinPredicate(const ExprPtr& predicate, size_t left_arity);

}  // namespace periodk

#endif  // PERIODK_RA_JOIN_ANALYSIS_H_
