#include "ra/plan.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/str_util.h"

namespace periodk {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kConstant:
      return "Constant";
    case PlanKind::kSelect:
      return "Select";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kUnionAll:
      return "UnionAll";
    case PlanKind::kExceptAll:
      return "ExceptAll";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kAntiJoin:
      return "AntiJoin";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kCoalesce:
      return "Coalesce";
    case PlanKind::kSplit:
      return "Split";
    case PlanKind::kSplitAggregate:
      return "SplitAggregate";
    case PlanKind::kTimeslice:
      return "Timeslice";
  }
  return "?";
}

namespace {

std::shared_ptr<Plan> NewPlan(PlanKind kind) {
  auto p = std::make_shared<Plan>();
  p->kind = kind;
  return p;
}

void RequireSameArity(const PlanPtr& l, const PlanPtr& r, const char* op) {
  if (l->schema.size() != r->schema.size()) {
    throw EngineError(StrCat(op, " requires union-compatible inputs, got ",
                             l->schema.size(), " vs ", r->schema.size(),
                             " columns"));
  }
}

/// How often each node is referenced in the DAG; children are counted
/// once per unique parent (matching the executor's consumer counting).
void CountRefs(const Plan* plan,
               std::unordered_map<const Plan*, int>& refs) {
  if (plan == nullptr) return;
  if (++refs[plan] > 1) return;
  CountRefs(plan->left.get(), refs);
  CountRefs(plan->right.get(), refs);
}

}  // namespace

/// One-line description of this node (no padding, newline or children).
std::string Plan::NodeLine() const {
  std::string out = PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
      out += StrCat(" ", table, " ", schema.ToString());
      break;
    case PlanKind::kConstant:
      out += StrCat(" (", constant->size(), " rows) ", schema.ToString());
      break;
    case PlanKind::kSelect:
      out += StrCat(" [", predicate->ToString(), "]");
      break;
    case PlanKind::kJoin:
      out += StrCat(" [", predicate->ToString(), "]");
      if (join_strategy == JoinStrategy::kNestedLoop) {
        // Cost-model hint: the tiny-input nested loop replaces whatever
        // the structural dispatch would pick (visible because the sweep
        // and the nested loop emit rows in different orders).
        out += " (nested loop: tiny inputs)";
      } else if (join.overlap.has_value()) {
        out += join.equi_keys.empty() ? " (interval sweep)"
                                      : " (partitioned interval sweep)";
      } else if (!join.equi_keys.empty()) {
        out += " (hash)";
      }
      break;
    case PlanKind::kProject:
      out += StrCat(
          " [",
          JoinMapped(exprs, ", ",
                     [](const ExprPtr& e) { return e->ToString(); }),
          "] -> ", schema.ToString());
      break;
    case PlanKind::kAggregate:
    case PlanKind::kSplitAggregate:
      out += StrCat(
          " groups=[",
          kind == PlanKind::kAggregate
              ? JoinMapped(exprs, ", ",
                           [](const ExprPtr& e) { return e->ToString(); })
              : JoinMapped(split_group, ", ",
                           [](int c) { return StrCat("#", c); }),
          "] aggs=[",
          JoinMapped(aggs, ", ",
                     [](const AggExpr& a) {
                       return StrCat(AggFuncName(a.func), "(",
                                     a.arg ? a.arg->ToString() : "*", ")");
                     }),
          "]");
      if (kind == PlanKind::kSplitAggregate && gap_rows) out += " +gaps";
      break;
    case PlanKind::kSplit:
      out += StrCat(" on=[",
                    JoinMapped(split_group, ", ",
                               [](int c) { return StrCat("#", c); }),
                    "]");
      break;
    case PlanKind::kCoalesce:
      out += coalesce_impl == CoalesceImpl::kNative ? " (native)" : " (window)";
      break;
    case PlanKind::kTimeslice:
      out += StrCat(" @", slice_time);
      if (slice_begin_col >= 0) {
        out += StrCat(" cols=(#", slice_begin_col, ", #", slice_end_col, ")");
      }
      break;
    default:
      break;
  }
  return out;
}

void Plan::AppendTo(int indent,
                    const std::unordered_map<const Plan*, int>& refs,
                    std::unordered_map<const Plan*, int>& ids,
                    const Annotator& annotate, std::string& out) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string suffix = annotate == nullptr ? "" : annotate(*this);
  if (refs.at(this) > 1) {
    // Shared node: the first visit prints the full subtree tagged with a
    // DAG id; later visits print only a back reference, so EXPLAIN shows
    // the plan's real shape instead of silently expanding it to a tree.
    auto [it, inserted] =
        ids.try_emplace(this, static_cast<int>(ids.size()) + 1);
    if (!inserted) {
      out += StrCat(pad, PlanKindName(kind), " [shared #", it->second,
                    ", see above]\n");
      return;
    }
    out += StrCat(pad, NodeLine(), " [shared #", it->second, "]", suffix,
                  "\n");
  } else {
    out += StrCat(pad, NodeLine(), suffix, "\n");
  }
  if (left != nullptr) left->AppendTo(indent + 1, refs, ids, annotate, out);
  if (right != nullptr) right->AppendTo(indent + 1, refs, ids, annotate, out);
}

std::string Plan::ToString(int indent) const {
  return ToString(indent, Annotator());
}

std::string Plan::ToString(int indent, const Annotator& annotate) const {
  std::unordered_map<const Plan*, int> refs;
  CountRefs(this, refs);
  std::unordered_map<const Plan*, int> ids;
  std::string out;
  AppendTo(indent, refs, ids, annotate, out);
  return out;
}

PlanPtr MakeScan(std::string table, Schema schema) {
  auto p = NewPlan(PlanKind::kScan);
  p->table = std::move(table);
  p->schema = std::move(schema);
  return p;
}

// periodk-lint: allow(relation-by-value): ownership sink, callers move
PlanPtr MakeConstant(Relation relation) {
  auto p = NewPlan(PlanKind::kConstant);
  p->schema = relation.schema();
  p->constant = std::make_shared<const Relation>(std::move(relation));
  return p;
}

PlanPtr MakeSelect(PlanPtr child, ExprPtr predicate) {
  auto p = NewPlan(PlanKind::kSelect);
  p->schema = child->schema;
  p->left = std::move(child);
  p->predicate = std::move(predicate);
  return p;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<Column> columns) {
  if (exprs.size() != columns.size()) {
    throw EngineError("Project: expression/name count mismatch");
  }
  auto p = NewPlan(PlanKind::kProject);
  p->schema = Schema(std::move(columns));
  p->left = std::move(child);
  p->exprs = std::move(exprs);
  return p;
}

PlanPtr MakeProjectColumns(PlanPtr child, const std::vector<int>& columns) {
  std::vector<ExprPtr> exprs;
  std::vector<Column> names;
  for (int c : columns) {
    exprs.push_back(Col(c, child->schema.at(static_cast<size_t>(c)).name));
    names.push_back(child->schema.at(static_cast<size_t>(c)));
  }
  return MakeProject(std::move(child), std::move(exprs), std::move(names));
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr predicate) {
  auto p = NewPlan(PlanKind::kJoin);
  p->schema = Schema::Concat(left->schema, right->schema);
  p->left = std::move(left);
  p->right = std::move(right);
  p->predicate = std::move(predicate);
  p->join = AnalyzeJoinPredicate(p->predicate, p->left->schema.size());
  return p;
}

PlanPtr MakeUnionAll(PlanPtr left, PlanPtr right) {
  RequireSameArity(left, right, "UnionAll");
  auto p = NewPlan(PlanKind::kUnionAll);
  p->schema = left->schema;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

PlanPtr MakeExceptAll(PlanPtr left, PlanPtr right) {
  RequireSameArity(left, right, "ExceptAll");
  auto p = NewPlan(PlanKind::kExceptAll);
  p->schema = left->schema;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

PlanPtr MakeAntiJoin(PlanPtr left, PlanPtr right) {
  RequireSameArity(left, right, "AntiJoin");
  auto p = NewPlan(PlanKind::kAntiJoin);
  p->schema = left->schema;
  p->left = std::move(left);
  p->right = std::move(right);
  return p;
}

PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_exprs,
                      std::vector<Column> group_names,
                      std::vector<AggExpr> aggs) {
  if (group_exprs.size() != group_names.size()) {
    throw EngineError("Aggregate: group expression/name count mismatch");
  }
  auto p = NewPlan(PlanKind::kAggregate);
  Schema schema(std::move(group_names));
  for (const AggExpr& a : aggs) schema.Append(Column(a.name));
  p->schema = std::move(schema);
  p->left = std::move(child);
  p->exprs = std::move(group_exprs);
  p->aggs = std::move(aggs);
  return p;
}

PlanPtr MakeDistinct(PlanPtr child) {
  auto p = NewPlan(PlanKind::kDistinct);
  p->schema = child->schema;
  p->left = std::move(child);
  return p;
}

PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  auto p = NewPlan(PlanKind::kSort);
  p->schema = child->schema;
  p->left = std::move(child);
  p->sort_keys = std::move(keys);
  return p;
}

PlanPtr MakeCoalesce(PlanPtr child, CoalesceImpl impl) {
  if (child->schema.size() < 2) {
    throw EngineError("Coalesce requires a period-encoded input");
  }
  auto p = NewPlan(PlanKind::kCoalesce);
  p->schema = child->schema;
  p->left = std::move(child);
  p->coalesce_impl = impl;
  return p;
}

PlanPtr MakeSplit(PlanPtr left, PlanPtr right, std::vector<int> group_cols) {
  RequireSameArity(left, right, "Split");
  if (left->schema.size() < 2) {
    throw EngineError("Split requires period-encoded inputs");
  }
  auto p = NewPlan(PlanKind::kSplit);
  p->schema = left->schema;
  p->left = std::move(left);
  p->right = std::move(right);
  p->split_group = std::move(group_cols);
  return p;
}

PlanPtr MakeSplitAggregate(PlanPtr child, std::vector<int> group_cols,
                           std::vector<AggExpr> aggs, bool gap_rows,
                           TimeDomain domain, bool pre_aggregate) {
  auto p = NewPlan(PlanKind::kSplitAggregate);
  Schema schema;
  for (int c : group_cols) {
    schema.Append(child->schema.at(static_cast<size_t>(c)));
  }
  for (const AggExpr& a : aggs) schema.Append(Column(a.name));
  schema.Append(Column("a_begin"));
  schema.Append(Column("a_end"));
  p->schema = std::move(schema);
  p->left = std::move(child);
  p->split_group = std::move(group_cols);
  p->aggs = std::move(aggs);
  p->gap_rows = gap_rows;
  p->domain = domain;
  p->pre_aggregate = pre_aggregate;
  return p;
}

PlanPtr MakeTimeslice(PlanPtr child, TimePoint t) {
  if (child->schema.size() < 2) {
    throw EngineError("Timeslice requires a period-encoded input");
  }
  auto p = NewPlan(PlanKind::kTimeslice);
  p->schema = child->schema.Prefix(child->schema.size() - 2);
  p->left = std::move(child);
  p->slice_time = t;
  return p;
}

PlanPtr MakeTimesliceAt(PlanPtr child, TimePoint t, int begin_col,
                        int end_col) {
  int arity = static_cast<int>(child->schema.size());
  if (arity < 2 || begin_col < 0 || end_col < 0 || begin_col >= arity ||
      end_col >= arity || begin_col == end_col) {
    throw EngineError(StrCat("TimesliceAt: bad endpoint columns (", begin_col,
                             ", ", end_col, ") for arity ", arity));
  }
  if (begin_col == arity - 2 && end_col == arity - 1) {
    return MakeTimeslice(std::move(child), t);
  }
  auto p = NewPlan(PlanKind::kTimeslice);
  Schema schema;
  for (int c = 0; c < arity; ++c) {
    if (c == begin_col || c == end_col) continue;
    schema.Append(child->schema.at(static_cast<size_t>(c)));
  }
  p->schema = std::move(schema);
  p->left = std::move(child);
  p->slice_time = t;
  p->slice_begin_col = begin_col;
  p->slice_end_col = end_col;
  return p;
}

std::pair<int, int> ResolveSliceColumns(const Plan& timeslice) {
  int arity = static_cast<int>(timeslice.left->schema.size());
  int b = timeslice.slice_begin_col >= 0 ? timeslice.slice_begin_col
                                         : arity - 2;
  int e = timeslice.slice_end_col >= 0 ? timeslice.slice_end_col : arity - 1;
  return {b, e};
}

bool ContainsKind(const PlanPtr& plan, PlanKind kind) {
  if (plan == nullptr) return false;
  if (plan->kind == kind) return true;
  return ContainsKind(plan->left, kind) || ContainsKind(plan->right, kind);
}

int CountKind(const PlanPtr& plan, PlanKind kind) {
  if (plan == nullptr) return 0;
  return (plan->kind == kind ? 1 : 0) + CountKind(plan->left, kind) +
         CountKind(plan->right, kind);
}

namespace {

void CollectScanTablesImpl(const Plan* node,
                           std::unordered_set<const Plan*>* visited,
                           std::vector<std::string>* out) {
  if (node == nullptr || !visited->insert(node).second) return;
  if (node->kind == PlanKind::kScan &&
      std::find(out->begin(), out->end(), node->table) == out->end()) {
    out->push_back(node->table);
  }
  CollectScanTablesImpl(node->left.get(), visited, out);
  CollectScanTablesImpl(node->right.get(), visited, out);
}

}  // namespace

std::vector<std::string> CollectScanTables(const PlanPtr& plan) {
  std::vector<std::string> out;
  std::unordered_set<const Plan*> visited;
  CollectScanTablesImpl(plan.get(), &visited, &out);
  return out;
}

namespace {

/// True iff every column `expr` references lies below `limit`.
bool ReferencesOnlyBelow(const ExprPtr& expr, int limit) {
  if (expr == nullptr) return true;
  std::vector<int> cols;
  CollectColumns(expr, &cols);
  for (int c : cols) {
    if (c >= limit) return false;
  }
  return true;
}

/// True iff `expr` references neither column a nor column b.
bool AvoidsColumns(const ExprPtr& expr, int a, int b) {
  if (expr == nullptr) return true;
  std::vector<int> cols;
  CollectColumns(expr, &cols);
  for (int c : cols) {
    if (c == a || c == b) return false;
  }
  return true;
}

}  // namespace

bool TimesliceCommutesWithSelect(const Plan& select) {
  if (select.kind != PlanKind::kSelect || select.left == nullptr) return false;
  int arity = static_cast<int>(select.left->schema.size());
  if (arity < 2) return false;
  return ReferencesOnlyBelow(select.predicate, arity - 2);
}

bool TimesliceCommutesWithSelect(const Plan& select, int begin_col,
                                 int end_col) {
  if (select.kind != PlanKind::kSelect || select.left == nullptr) return false;
  return AvoidsColumns(select.predicate, begin_col, end_col);
}

bool TimesliceCommutesWithProject(const Plan& project) {
  if (project.kind != PlanKind::kProject || project.left == nullptr) {
    return false;
  }
  int arity = static_cast<int>(project.left->schema.size());
  if (arity < 2 || project.exprs.size() < 2) return false;
  const ExprPtr& b = project.exprs[project.exprs.size() - 2];
  const ExprPtr& e = project.exprs[project.exprs.size() - 1];
  if (b->kind != ExprKind::kColumn || b->column != arity - 2) return false;
  if (e->kind != ExprKind::kColumn || e->column != arity - 1) return false;
  for (size_t i = 0; i + 2 < project.exprs.size(); ++i) {
    if (!ReferencesOnlyBelow(project.exprs[i], arity - 2)) return false;
  }
  return true;
}

bool TimesliceCommutesWithProject(const Plan& project, int begin_col,
                                  int end_col, int* child_begin_col,
                                  int* child_end_col) {
  if (project.kind != PlanKind::kProject || project.left == nullptr) {
    return false;
  }
  int out_arity = static_cast<int>(project.exprs.size());
  if (begin_col < 0 || end_col < 0 || begin_col >= out_arity ||
      end_col >= out_arity || begin_col == end_col) {
    return false;
  }
  const ExprPtr& b = project.exprs[static_cast<size_t>(begin_col)];
  const ExprPtr& e = project.exprs[static_cast<size_t>(end_col)];
  if (b->kind != ExprKind::kColumn || e->kind != ExprKind::kColumn ||
      b->column == e->column) {
    return false;
  }
  // The slice below drops the referenced child columns, so every other
  // output expression must survive without them.
  for (int i = 0; i < out_arity; ++i) {
    if (i == begin_col || i == end_col) continue;
    if (!AvoidsColumns(project.exprs[static_cast<size_t>(i)], b->column,
                       e->column)) {
      return false;
    }
  }
  *child_begin_col = b->column;
  *child_end_col = e->column;
  return true;
}

}  // namespace periodk
