// Logical relational algebra plans.  REWR (paper Fig. 4) is a
// plan-to-plan transformation; the engine executor interprets plans over
// a catalog of materialized relations, and the annotated-model
// evaluators interpret the same plans over K-relations.
//
// Temporal-encoding invariant: every relation that encodes an
// N^T-relation (PERIODENC, Def 8.1) carries its interval endpoints in
// the *last two* columns (a_begin, a_end).
#ifndef PERIODK_RA_PLAN_H_
#define PERIODK_RA_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/agg.h"
#include "engine/expr.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "ra/join_analysis.h"
#include "temporal/interval.h"

namespace periodk {

enum class PlanKind {
  kScan,
  kConstant,
  kSelect,
  kProject,
  kJoin,
  kUnionAll,
  kExceptAll,
  kAggregate,
  kDistinct,
  kSort,
  // Exact-row anti join: left rows with no equal row in the right input
  // (used by the buggy NOT EXISTS difference of the baselines).
  kAntiJoin,
  // Temporal operators over PERIODENC-encoded relations:
  kCoalesce,        // multiset coalescing C (paper Def 8.2)
  kSplit,           // split operator N_G (paper Def 8.3)
  kSplitAggregate,  // split fused with (pre-)aggregation (paper Sec. 9)
  kTimeslice,       // tau_T: snapshot extraction
};

const char* PlanKindName(PlanKind kind);

/// Which implementation the coalesce operator uses (paper Sec. 10.2
/// compares the SQL/analytic-window implementation across DBMSs; the
/// native sweep is the "inside the kernel" implementation the paper
/// proposes as future work).
enum class CoalesceImpl { kNative, kWindow };

/// Physical-join hint for kJoin nodes.  kAuto leaves the choice to the
/// executor's structural dispatch (sweep for overlap joins, hash for
/// equi-keys, nested loop otherwise).  kNestedLoop forces the nested
/// loop — the cost model (ra/cost_model.h) marks joins whose estimated
/// input product is tiny, where sweep/hash setup costs more than the
/// quadratic scan.  The hint is part of the plan (rendered by
/// ToString) because the sweep's output *order* differs from the
/// nested loop's, so the substitution must be a visible plan property,
/// never a silent execution-time swap.
enum class JoinStrategy { kAuto, kNestedLoop };

/// One aggregate expression: func(arg) named `name`; arg is null for
/// count(*).
struct AggExpr {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr arg;
  std::string name;
};

struct SortKey {
  int column = 0;
  bool ascending = true;
};

class Plan;
using PlanPtr = std::shared_ptr<const Plan>;

class Plan {
 public:
  PlanKind kind = PlanKind::kScan;
  Schema schema;  // output schema
  PlanPtr left;
  PlanPtr right;

  std::string table;                         // kScan
  std::shared_ptr<const Relation> constant;  // kConstant
  ExprPtr predicate;                         // kSelect, kJoin
  // kJoin: structural decomposition of `predicate` computed once by
  // MakeJoin (equi-keys, interval-overlap conjunct, residual); the
  // executor picks the physical join from this instead of re-deriving
  // the predicate shape per execution.
  JoinAnalysis join;
  // kJoin: cost-model hint overriding the structural dispatch above.
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  std::vector<ExprPtr> exprs;                // kProject / kAggregate groups
  std::vector<AggExpr> aggs;                 // kAggregate, kSplitAggregate
  std::vector<int> split_group;    // kSplit / kSplitAggregate: group cols
  std::vector<SortKey> sort_keys;  // kSort
  TimePoint slice_time = 0;        // kTimeslice
  // kTimeslice: which child columns hold the interval endpoints; -1
  // means the trailing-two PERIODENC default.  Non-default positions
  // arise when the pushdown crosses the encoded-table projection of a
  // period table that stores its interval columns elsewhere.
  int slice_begin_col = -1;
  int slice_end_col = -1;
  CoalesceImpl coalesce_impl = CoalesceImpl::kNative;  // kCoalesce
  // kSplitAggregate without groups emits rows for *every* elementary
  // segment of the domain, including gaps (count = 0 / sum = NULL);
  // this implements the union-with-neutral-tuple trick of REWR's
  // aggregation rule (Fig. 4) in fused form.
  bool gap_rows = false;
  TimeDomain domain;  // kSplitAggregate with gap_rows
  // kSplitAggregate: pre-aggregate per (group, begin, end) before the
  // endpoint sweep (paper Sec. 9 optimization); false = ablation mode.
  bool pre_aggregate = true;

  /// Pretty rendering for debugging / EXPLAIN.  Plans are DAGs (the
  /// rewriter shares subplans); nodes with several parents are printed
  /// once, tagged `[shared #n]`, and referenced on later visits.
  std::string ToString(int indent = 0) const;

  /// Per-node suffix appended to a node's line by the annotated
  /// ToString overload (e.g. ExplainAnalyze's "est=... actual=...").
  /// Must be deterministic for a given plan — the rendering order is
  /// the tree walk, so annotator output is the only way nondeterminism
  /// could leak into EXPLAIN text.
  using Annotator = std::function<std::string(const Plan&)>;

  /// ToString with a per-node annotation suffix.
  std::string ToString(int indent, const Annotator& annotate) const;

 private:
  std::string NodeLine() const;
  void AppendTo(int indent, const std::unordered_map<const Plan*, int>& refs,
                std::unordered_map<const Plan*, int>& ids,
                const Annotator& annotate, std::string& out) const;
};

/// Free-function alias; consumers (middleware ExplainAnalyze) name the
/// callback type without spelling the nested name.
using PlanAnnotator = Plan::Annotator;

// --- Builders (compute output schemas, validate arities). ------------------

PlanPtr MakeScan(std::string table, Schema schema);
// periodk-lint: allow(relation-by-value): ownership sink, callers move
PlanPtr MakeConstant(Relation relation);
PlanPtr MakeSelect(PlanPtr child, ExprPtr predicate);
/// Output column i is exprs[i] named columns[i].
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<Column> columns);
/// Convenience: project onto existing columns by index.
PlanPtr MakeProjectColumns(PlanPtr child, const std::vector<int>& columns);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, ExprPtr predicate);
PlanPtr MakeUnionAll(PlanPtr left, PlanPtr right);
PlanPtr MakeExceptAll(PlanPtr left, PlanPtr right);
PlanPtr MakeAntiJoin(PlanPtr left, PlanPtr right);
/// Output schema: group columns (named after group_names) then one
/// column per aggregate.
PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_exprs,
                      std::vector<Column> group_names,
                      std::vector<AggExpr> aggs);
PlanPtr MakeDistinct(PlanPtr child);
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeCoalesce(PlanPtr child, CoalesceImpl impl = CoalesceImpl::kNative);
/// N_G(left, right): splits left's intervals at the endpoints of
/// group-mates in left UNION right; schema = left's schema.
PlanPtr MakeSplit(PlanPtr left, PlanPtr right, std::vector<int> group_cols);
/// Fused split + aggregation; output (group cols..., aggs..., begin, end).
PlanPtr MakeSplitAggregate(PlanPtr child, std::vector<int> group_cols,
                           std::vector<AggExpr> aggs, bool gap_rows,
                           TimeDomain domain, bool pre_aggregate = true);
PlanPtr MakeTimeslice(PlanPtr child, TimePoint t);
/// Timeslice over explicit endpoint columns: keeps rows with
/// child[begin_col] <= t < child[end_col] and drops those two columns
/// (remaining columns keep their relative order).  Trailing positions
/// normalize to the plain MakeTimeslice shape.
PlanPtr MakeTimesliceAt(PlanPtr child, TimePoint t, int begin_col,
                        int end_col);

/// Endpoint columns a kTimeslice node slices on, with the -1 defaults
/// resolved against the child's arity.
std::pair<int, int> ResolveSliceColumns(const Plan& timeslice);

/// True if the plan subtree contains a node of the given kind.
bool ContainsKind(const PlanPtr& plan, PlanKind kind);

/// Number of nodes of the given kind in the subtree.
int CountKind(const PlanPtr& plan, PlanKind kind);

/// Deduplicated names of every base table the plan scans (kScan
/// nodes), in first-visit order.  DAG-aware: shared subplans are
/// visited once.  The middleware records this set per cached plan so a
/// mutation of table T evicts only the plans that read T.
std::vector<std::string> CollectScanTables(const PlanPtr& plan);

// --- Timeslice pushdown legality (consumed by PushDownTimeslice in
// rewrite/rewriter.h).  Both judge a single parent/child edge of an
// encoded plan, whose trailing two columns are the interval endpoints. -------

/// True iff tau_t commutes with this kSelect node: its predicate
/// references only the non-temporal prefix of its input (no column at
/// or above input arity - 2), so filtering before or after slicing
/// keeps the exact same rows.
bool TimesliceCommutesWithSelect(const Plan& select);

/// Generalized form: the slice reads endpoint columns (begin_col,
/// end_col) of the select's schema; commutes iff the predicate never
/// references either.
bool TimesliceCommutesWithSelect(const Plan& select, int begin_col,
                                 int end_col);

/// True iff tau_t commutes with this kProject node: its last two
/// expressions are plain references to the child's trailing endpoint
/// columns (the REWR projection shape that passes intervals through)
/// and no other expression reads an endpoint column.  Pushing tau below
/// then simply drops those two expressions.
bool TimesliceCommutesWithProject(const Plan& project);

/// Generalized form for a slice over output columns (begin_col,
/// end_col): commutes iff those two expressions are plain column
/// references into the child (to distinct columns) and no other
/// expression reads either referenced child column.  On success,
/// *child_begin_col / *child_end_col receive the child columns the
/// pushed-down slice must read — the positions of the period table's
/// stored interval columns, trailing or not.
bool TimesliceCommutesWithProject(const Plan& project, int begin_col,
                                  int end_col, int* child_begin_col,
                                  int* child_end_col);

}  // namespace periodk

#endif  // PERIODK_RA_PLAN_H_
