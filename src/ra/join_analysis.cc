#include "ra/join_analysis.h"

namespace periodk {

namespace {

void FlattenConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kAnd) {
    FlattenConjuncts(e->children[0], out);
    FlattenConjuncts(e->children[1], out);
    return;
  }
  // Literal TRUE conjuncts carry no information.
  if (e->kind == ExprKind::kLiteral &&
      e->literal.type() == ValueType::kBool && e->literal.AsBool()) {
    return;
  }
  out->push_back(e);
}

// A conjunct `value(lo) < value(hi)` between columns of opposite inputs,
// normalized so kGt reads as a flipped kLt.
struct CrossLess {
  int lo = -1;        // global column index of the smaller side
  int hi = -1;        // global column index of the larger side
  bool lo_is_left = false;
};

std::optional<CrossLess> AsCrossLess(const ExprPtr& e, int left_arity) {
  if (e->kind != ExprKind::kCompare) return std::nullopt;
  if (e->cmp != CompareOp::kLt && e->cmp != CompareOp::kGt) {
    return std::nullopt;
  }
  if (e->children[0]->kind != ExprKind::kColumn ||
      e->children[1]->kind != ExprKind::kColumn) {
    return std::nullopt;
  }
  CrossLess c;
  if (e->cmp == CompareOp::kLt) {
    c.lo = e->children[0]->column;
    c.hi = e->children[1]->column;
  } else {
    c.lo = e->children[1]->column;
    c.hi = e->children[0]->column;
  }
  if ((c.lo < left_arity) == (c.hi < left_arity)) return std::nullopt;
  c.lo_is_left = c.lo < left_arity;
  return c;
}

}  // namespace

JoinAnalysis AnalyzeJoinPredicate(const ExprPtr& predicate,
                                  size_t left_arity) {
  JoinAnalysis out;
  int la = static_cast<int>(left_arity);
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(predicate, &conjuncts);

  // First pass: one `left < right` and one `right < left` strict
  // inequality pair up into the overlap conjunct; further candidates
  // stay residual (conjoining them again is always sound).
  std::optional<CrossLess> fwd;  // left[lo] < right[hi]
  std::optional<CrossLess> bwd;  // right[lo] < left[hi]
  std::vector<bool> consumed(conjuncts.size(), false);
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    const ExprPtr& c = conjuncts[i];
    if (c->kind == ExprKind::kCompare && c->cmp == CompareOp::kEq &&
        c->children[0]->kind == ExprKind::kColumn &&
        c->children[1]->kind == ExprKind::kColumn) {
      int a = c->children[0]->column;
      int b = c->children[1]->column;
      if (a < la && b >= la) {
        out.equi_keys.emplace_back(a, b - la);
        consumed[i] = true;
        continue;
      }
      if (b < la && a >= la) {
        out.equi_keys.emplace_back(b, a - la);
        consumed[i] = true;
        continue;
      }
    }
    std::optional<CrossLess> less = AsCrossLess(c, la);
    if (less.has_value()) {
      if (less->lo_is_left && !fwd.has_value()) {
        fwd = less;
        consumed[i] = true;
        continue;
      }
      if (!less->lo_is_left && !bwd.has_value()) {
        bwd = less;
        consumed[i] = true;
        continue;
      }
    }
  }

  if (fwd.has_value() && bwd.has_value()) {
    OverlapSpec spec;
    spec.left_begin = fwd->lo;
    spec.left_end = bwd->hi;
    spec.right_begin = bwd->lo - la;
    spec.right_end = fwd->hi - la;
    out.overlap = spec;
  }

  std::vector<ExprPtr> residual;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    bool keep = !consumed[i];
    // An unmatched half of an overlap candidate goes back verbatim.
    if (!out.overlap.has_value() && consumed[i] &&
        AsCrossLess(conjuncts[i], la).has_value()) {
      keep = true;
    }
    if (keep) residual.push_back(conjuncts[i]);
  }
  if (!residual.empty()) out.residual = AndAll(std::move(residual));
  return out;
}

}  // namespace periodk
