#include "ra/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "stats/table_stats.h"

namespace periodk {

namespace {

constexpr double kDefaultSelectivity = 1.0 / 3.0;
constexpr double kMinSelectivity = 1e-4;
/// Scan estimate when neither the catalog nor stats know the table.
constexpr double kDefaultScanRows = 1000.0;
/// Distinct estimate when nothing better is known: one value per ten
/// rows.
constexpr double kDefaultDistinctShare = 0.1;

double ClampSel(double s) { return std::clamp(s, kMinSelectivity, 1.0); }

bool IsLiteralTrue(const ExprPtr& e) {
  if (e == nullptr) return true;
  const bool* b =
      e->kind == ExprKind::kLiteral ? e->literal.TryBool() : nullptr;
  return b != nullptr && *b;
}

/// A comparison between one column of `input` and a literal, normalized
/// so the column is on the left.
struct ColumnLiteral {
  int column = -1;
  Value literal;
  CompareOp op = CompareOp::kEq;
};

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

std::optional<ColumnLiteral> MatchColumnLiteral(const Expr& e) {
  if (e.kind != ExprKind::kCompare || e.children.size() != 2) {
    return std::nullopt;
  }
  const ExprPtr& l = e.children[0];
  const ExprPtr& r = e.children[1];
  if (l->kind == ExprKind::kColumn && r->kind == ExprKind::kLiteral) {
    return ColumnLiteral{l->column, r->literal, e.cmp};
  }
  if (r->kind == ExprKind::kColumn && l->kind == ExprKind::kLiteral) {
    return ColumnLiteral{r->column, l->literal, FlipCompare(e.cmp)};
  }
  return std::nullopt;
}

/// Observed integer range of output column `col`, traced through the
/// column-preserving operators down to scans with stats.
std::optional<std::pair<int64_t, int64_t>> RangeOf(
    const CostModel& model, const Catalog* catalog, const Plan& plan,
    int col);

}  // namespace

CostModel::CostModel(const Catalog* catalog, TimeDomain domain)
    : catalog_(catalog), domain_(domain) {}

const TableStats* CostModel::StatsFor(const Plan& scan) const {
  if (catalog_ == nullptr || !catalog_->Has(scan.table)) return nullptr;
  auto it = stats_cache_.find(scan.table);
  if (it != stats_cache_.end()) return it->second.get();
  std::shared_ptr<const TableStats> stats = catalog_->GetStats(scan.table);
  if (stats != nullptr &&
      !stats->BuiltFor(catalog_->GetShared(scan.table).get())) {
    stats = nullptr;  // stale slot: trust nothing it says
  }
  const TableStats* raw = stats.get();
  stats_cache_.emplace(scan.table, std::move(stats));
  return raw;
}

double CostModel::EstimateRows(const Plan& plan) const {
  // The memo is scoped to the outermost call: entries are keyed by node
  // address, and the reorder search frees candidate nodes between
  // calls, so a longer-lived cache would serve stale values whenever
  // the allocator recycles one of those addresses.  Within one call
  // every visited node is reachable from `plan` and therefore alive.
  if (memo_depth_ == 0) memo_.clear();
  ++memo_depth_;
  auto it = memo_.find(&plan);
  if (it != memo_.end()) {
    --memo_depth_;
    return it->second;
  }
  double rows = EstimateRowsImpl(plan);
  if (!std::isfinite(rows)) rows = 1e18;  // overflowed products stay huge
  if (rows < 0.0) rows = 0.0;
  memo_.emplace(&plan, rows);
  --memo_depth_;
  return rows;
}

double CostModel::EstimateRowsImpl(const Plan& plan) const {
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (catalog_ != nullptr && catalog_->Has(plan.table)) {
        return static_cast<double>(catalog_->Get(plan.table).size());
      }
      return kDefaultScanRows;
    }
    case PlanKind::kConstant:
      return plan.constant == nullptr
                 ? 0.0
                 : static_cast<double>(plan.constant->size());
    case PlanKind::kSelect:
      return EstimateRows(*plan.left) * Selectivity(plan.predicate, *plan.left);
    case PlanKind::kProject:
    case PlanKind::kSort:
      return EstimateRows(*plan.left);
    case PlanKind::kJoin: {
      const double l = EstimateRows(*plan.left);
      const double r = EstimateRows(*plan.right);
      double sel = 1.0;
      for (const auto& [lc, rc] : plan.join.equi_keys) {
        sel /= std::max({1.0, EstimateDistinct(*plan.left, lc),
                         EstimateDistinct(*plan.right, rc)});
      }
      if (plan.join.overlap.has_value()) {
        sel *= OverlapSelectivity(*plan.left, *plan.right);
      }
      if (plan.join.residual != nullptr) {
        sel *= Selectivity(plan.join.residual, plan);
      }
      if (plan.join.equi_keys.empty() && !plan.join.overlap.has_value() &&
          plan.join.residual == nullptr && !IsLiteralTrue(plan.predicate)) {
        sel *= kDefaultSelectivity;
      }
      return l * r * sel;
    }
    case PlanKind::kUnionAll:
      return EstimateRows(*plan.left) + EstimateRows(*plan.right);
    case PlanKind::kExceptAll: {
      const double l = EstimateRows(*plan.left);
      return std::max(l - EstimateRows(*plan.right), l * 0.1);
    }
    case PlanKind::kAntiJoin:
      return EstimateRows(*plan.left) * 0.5;
    case PlanKind::kAggregate: {
      if (plan.exprs.empty()) return 1.0;  // global aggregate
      const double input = EstimateRows(*plan.left);
      double groups = 1.0;
      for (const ExprPtr& g : plan.exprs) {
        groups *= g->kind == ExprKind::kColumn
                      ? EstimateDistinct(*plan.left, g->column)
                      : std::max(1.0, input * kDefaultDistinctShare);
        if (groups > input) break;
      }
      const double lo = input > 0.0 ? std::min(1.0, input) : 0.0;
      return std::clamp(groups, lo, std::max(lo, input));
    }
    case PlanKind::kDistinct: {
      const double input = EstimateRows(*plan.left);
      double combos = 1.0;
      for (size_t c = 0; c < plan.left->schema.size(); ++c) {
        combos *= EstimateDistinct(*plan.left, static_cast<int>(c));
        if (combos > input) break;
      }
      const double lo = input > 0.0 ? std::min(1.0, input) : 0.0;
      return std::clamp(combos, lo, std::max(lo, input));
    }
    case PlanKind::kCoalesce:
      // Merging adjacent/overlapping group-mates shrinks the output.
      return EstimateRows(*plan.left) * 0.6;
    case PlanKind::kSplit:
      // Each interval is cut at the endpoints of overlapping
      // group-mates: about one extra segment per row on average.
      return EstimateRows(*plan.left) * 2.0;
    case PlanKind::kSplitAggregate: {
      const double input = EstimateRows(*plan.left);
      return std::max(input * 1.5, plan.gap_rows ? 1.0 : 0.0);
    }
    case PlanKind::kTimeslice: {
      const double input = EstimateRows(*plan.left);
      const IntervalProfile prof = Profile(*plan.left);
      const double span = prof.max_end - prof.min_begin;
      if (prof.valid && span > 0.0) {
        return input * std::clamp(prof.avg_length / span, kMinSelectivity, 1.0);
      }
      return input * 0.1;
    }
  }
  return kDefaultScanRows;
}

double CostModel::EstimateDistinct(const Plan& plan, int col) const {
  if (col < 0 || static_cast<size_t>(col) >= plan.schema.size()) return 1.0;
  switch (plan.kind) {
    case PlanKind::kScan: {
      const TableStats* stats = StatsFor(plan);
      if (stats != nullptr) {
        const int idx = stats->FindColumn(plan.schema.at(
            static_cast<size_t>(col)).name);
        if (idx >= 0) {
          return std::max(
              1.0, static_cast<double>(
                       stats->column(static_cast<size_t>(idx)).distinct));
        }
      }
      break;
    }
    case PlanKind::kProject: {
      const ExprPtr& e = plan.exprs[static_cast<size_t>(col)];
      if (e->kind == ExprKind::kColumn) {
        return EstimateDistinct(*plan.left, e->column);
      }
      break;
    }
    case PlanKind::kSelect:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kCoalesce:
      return EstimateDistinct(*plan.left, col);
    case PlanKind::kSplit:
      // Splitting changes endpoints, not payload columns.
      if (static_cast<size_t>(col) + 2 < plan.schema.size()) {
        return EstimateDistinct(*plan.left, col);
      }
      break;
    case PlanKind::kTimeslice: {
      // Output keeps the child's columns minus the two slice columns.
      const auto [b, e] = ResolveSliceColumns(plan);
      int child_col = 0;
      int remaining = col;
      for (;; ++child_col) {
        if (child_col == b || child_col == e) continue;
        if (remaining == 0) break;
        --remaining;
      }
      return EstimateDistinct(*plan.left, child_col);
    }
    case PlanKind::kJoin: {
      const int nl = static_cast<int>(plan.left->schema.size());
      return col < nl ? EstimateDistinct(*plan.left, col)
                      : EstimateDistinct(*plan.right, col - nl);
    }
    case PlanKind::kUnionAll:
      return EstimateDistinct(*plan.left, col) +
             EstimateDistinct(*plan.right, col);
    case PlanKind::kAggregate: {
      if (static_cast<size_t>(col) < plan.exprs.size()) {
        const ExprPtr& g = plan.exprs[static_cast<size_t>(col)];
        if (g->kind == ExprKind::kColumn) {
          return EstimateDistinct(*plan.left, g->column);
        }
      }
      break;
    }
    case PlanKind::kExceptAll:
    case PlanKind::kAntiJoin:
      return EstimateDistinct(*plan.left, col);
    default:
      break;
  }
  return std::max(1.0, EstimateRows(plan) * kDefaultDistinctShare);
}

double CostModel::Selectivity(const ExprPtr& predicate,
                              const Plan& input) const {
  if (predicate == nullptr) return 1.0;
  const Expr& e = *predicate;
  switch (e.kind) {
    case ExprKind::kLiteral: {
      const bool* b = e.literal.TryBool();
      return b != nullptr && *b ? 1.0 : 0.0;
    }
    case ExprKind::kAnd:
      return Selectivity(e.children[0], input) *
             Selectivity(e.children[1], input);
    case ExprKind::kOr: {
      const double a = Selectivity(e.children[0], input);
      const double b = Selectivity(e.children[1], input);
      return std::clamp(a + b - a * b, 0.0, 1.0);
    }
    case ExprKind::kNot:
      return std::clamp(1.0 - Selectivity(e.children[0], input), 0.0, 1.0);
    case ExprKind::kCompare: {
      const ExprPtr& l = e.children[0];
      const ExprPtr& r = e.children[1];
      if ((e.cmp == CompareOp::kEq || e.cmp == CompareOp::kNe) &&
          l->kind == ExprKind::kColumn && r->kind == ExprKind::kColumn) {
        const double d = std::max({1.0, EstimateDistinct(input, l->column),
                                   EstimateDistinct(input, r->column)});
        return e.cmp == CompareOp::kEq ? ClampSel(1.0 / d)
                                       : std::clamp(1.0 - 1.0 / d, 0.0, 1.0);
      }
      const std::optional<ColumnLiteral> cl = MatchColumnLiteral(e);
      if (cl.has_value()) {
        if (cl->op == CompareOp::kEq || cl->op == CompareOp::kNe) {
          const double d =
              std::max(1.0, EstimateDistinct(input, cl->column));
          return cl->op == CompareOp::kEq
                     ? ClampSel(1.0 / d)
                     : std::clamp(1.0 - 1.0 / d, 0.0, 1.0);
        }
        const int64_t* lit = cl->literal.TryInt();
        const auto range = RangeOf(*this, catalog_, input, cl->column);
        if (lit != nullptr && range.has_value() &&
            range->second > range->first) {
          const double width =
              static_cast<double>(range->second - range->first) + 1.0;
          double frac = kDefaultSelectivity;
          switch (cl->op) {
            case CompareOp::kLt:
              frac = static_cast<double>(*lit - range->first) / width;
              break;
            case CompareOp::kLe:
              frac = (static_cast<double>(*lit - range->first) + 1.0) / width;
              break;
            case CompareOp::kGt:
              frac = static_cast<double>(range->second - *lit) / width;
              break;
            case CompareOp::kGe:
              frac = (static_cast<double>(range->second - *lit) + 1.0) / width;
              break;
            default:
              break;
          }
          return ClampSel(frac);
        }
      }
      return kDefaultSelectivity;
    }
    case ExprKind::kBetween: {
      const ExprPtr& x = e.children[0];
      const int64_t* lo = e.children[1]->kind == ExprKind::kLiteral
                              ? e.children[1]->literal.TryInt()
                              : nullptr;
      const int64_t* hi = e.children[2]->kind == ExprKind::kLiteral
                              ? e.children[2]->literal.TryInt()
                              : nullptr;
      if (x->kind == ExprKind::kColumn && lo != nullptr && hi != nullptr) {
        const auto range = RangeOf(*this, catalog_, input, x->column);
        if (range.has_value() && range->second > range->first) {
          const double width =
              static_cast<double>(range->second - range->first) + 1.0;
          const double covered =
              std::max(0.0, static_cast<double>(
                                std::min(*hi, range->second) -
                                std::max(*lo, range->first)) +
                                1.0);
          const double frac = ClampSel(covered / width);
          return e.negated ? std::clamp(1.0 - frac, 0.0, 1.0) : frac;
        }
      }
      return e.negated ? 1.0 - kDefaultSelectivity / 2.0
                       : kDefaultSelectivity / 2.0;
    }
    case ExprKind::kIn: {
      const double d =
          e.children[0]->kind == ExprKind::kColumn
              ? std::max(1.0, EstimateDistinct(input, e.children[0]->column))
              : 1.0 / kDefaultSelectivity;
      const double hits = static_cast<double>(e.children.size() - 1) / d;
      const double frac = std::clamp(hits, kMinSelectivity, 1.0);
      return e.negated ? std::clamp(1.0 - frac, 0.0, 1.0) : frac;
    }
    case ExprKind::kIsNull:
      return e.negated ? 0.9 : 0.1;
    default:
      return kDefaultSelectivity;
  }
}

CostModel::IntervalProfile CostModel::Profile(const Plan& plan) const {
  IntervalProfile out;
  switch (plan.kind) {
    case PlanKind::kScan: {
      const TableStats* stats = StatsFor(plan);
      if (stats != nullptr && stats->has_period() &&
          stats->interval_count() > 0) {
        out.valid = true;
        out.avg_length = stats->avg_interval_length();
        out.min_begin = static_cast<double>(stats->min_begin());
        out.max_end = static_cast<double>(stats->max_end());
      }
      return out;
    }
    case PlanKind::kSelect:
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kCoalesce:
      return Profile(*plan.left);
    case PlanKind::kSplit:
    case PlanKind::kSplitAggregate: {
      out = Profile(*plan.left);
      out.avg_length /= 2.0;  // splitting halves segments on average
      return out;
    }
    case PlanKind::kJoin: {
      const IntervalProfile l = Profile(*plan.left);
      const IntervalProfile r = Profile(*plan.right);
      if (l.valid && r.valid) {
        out.valid = true;
        // Join output intervals are intersections.
        out.avg_length = std::min(l.avg_length, r.avg_length);
        out.min_begin = std::max(l.min_begin, r.min_begin);
        out.max_end = std::min(l.max_end, r.max_end);
        if (out.max_end <= out.min_begin) {
          out.min_begin = std::min(l.min_begin, r.min_begin);
          out.max_end = std::max(l.max_end, r.max_end);
        }
        return out;
      }
      return l.valid ? l : r;
    }
    case PlanKind::kUnionAll: {
      const IntervalProfile l = Profile(*plan.left);
      const IntervalProfile r = Profile(*plan.right);
      if (l.valid && r.valid) {
        out.valid = true;
        out.avg_length = (l.avg_length + r.avg_length) / 2.0;
        out.min_begin = std::min(l.min_begin, r.min_begin);
        out.max_end = std::max(l.max_end, r.max_end);
        return out;
      }
      return l.valid ? l : r;
    }
    default:
      return out;
  }
}

double CostModel::OverlapSelectivity(const Plan& left,
                                     const Plan& right) const {
  const IntervalProfile l = Profile(left);
  const IntervalProfile r = Profile(right);
  if (l.valid && r.valid) {
    const double span =
        std::max(l.max_end, r.max_end) - std::min(l.min_begin, r.min_begin);
    return ClampSel((l.avg_length + r.avg_length) / std::max(1.0, span));
  }
  if (l.valid || r.valid) {
    const IntervalProfile& p = l.valid ? l : r;
    const double span = std::max<double>(1.0, static_cast<double>(
                                                  domain_.size()));
    return ClampSel(2.0 * p.avg_length / span);
  }
  return 0.3;
}

int64_t CostModel::PickCheckpointInterval(const TableStats& stats) {
  const double target = 2.0 * stats.AvgAliveRows();
  int64_t k = 16;
  while (k < 4096 && static_cast<double>(k) < target) k <<= 1;
  return k;
}

namespace {

std::optional<std::pair<int64_t, int64_t>> RangeOf(const CostModel& model,
                                                   const Catalog* catalog,
                                                   const Plan& plan, int col) {
  (void)model;
  if (col < 0 || static_cast<size_t>(col) >= plan.schema.size()) {
    return std::nullopt;
  }
  switch (plan.kind) {
    case PlanKind::kScan: {
      if (catalog == nullptr || !catalog->Has(plan.table)) return std::nullopt;
      std::shared_ptr<const TableStats> stats = catalog->GetStats(plan.table);
      if (stats == nullptr ||
          !stats->BuiltFor(catalog->GetShared(plan.table).get())) {
        return std::nullopt;
      }
      const int idx =
          stats->FindColumn(plan.schema.at(static_cast<size_t>(col)).name);
      if (idx < 0) return std::nullopt;
      const ColumnStats& cs = stats->column(static_cast<size_t>(idx));
      if (!cs.has_int_range) return std::nullopt;
      return std::make_pair(cs.min_int, cs.max_int);
    }
    case PlanKind::kSelect:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kCoalesce:
      return RangeOf(model, catalog, *plan.left, col);
    case PlanKind::kProject: {
      const ExprPtr& e = plan.exprs[static_cast<size_t>(col)];
      if (e->kind == ExprKind::kColumn) {
        return RangeOf(model, catalog, *plan.left, e->column);
      }
      return std::nullopt;
    }
    case PlanKind::kJoin: {
      const int nl = static_cast<int>(plan.left->schema.size());
      return col < nl ? RangeOf(model, catalog, *plan.left, col)
                      : RangeOf(model, catalog, *plan.right, col - nl);
    }
    default:
      return std::nullopt;
  }
}

// --- Join-cluster reordering. ----------------------------------------------

void CountPlanRefs(const Plan* plan,
                   std::unordered_map<const Plan*, int>& refs) {
  if (plan == nullptr) return;
  if (++refs[plan] > 1) return;
  CountPlanRefs(plan->left.get(), refs);
  CountPlanRefs(plan->right.get(), refs);
}

void SplitConjunction(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kAnd) {
    SplitConjunction(e->children[0], out);
    SplitConjunction(e->children[1], out);
    return;
  }
  out->push_back(e);
}

/// A maximal cluster of adjacent single-parent kJoin nodes, flattened:
/// `leaves` in left-to-right order with their column offsets in the
/// concatenated (global) schema, and every join conjunct remapped into
/// that global space.  Multi-parent join nodes stay leaves so the DAG
/// sharing the rest of the plan relies on survives the rebuild.
struct JoinCluster {
  std::vector<PlanPtr> leaves;
  std::vector<int> offsets;
  std::vector<ExprPtr> conjuncts;
};

int FlattenCluster(const PlanPtr& n, int offset, bool is_root,
                   const std::unordered_map<const Plan*, int>& refs,
                   JoinCluster* out) {
  if (n->kind == PlanKind::kJoin && (is_root || refs.at(n.get()) <= 1)) {
    const int nl = FlattenCluster(n->left, offset, false, refs, out);
    const int nr = FlattenCluster(n->right, offset + nl, false, refs, out);
    std::vector<ExprPtr> parts;
    SplitConjunction(n->predicate, &parts);
    for (ExprPtr& part : parts) {
      if (IsLiteralTrue(part)) continue;  // cross-join filler
      out->conjuncts.push_back(offset == 0 ? std::move(part)
                                           : ShiftColumns(part, offset));
    }
    return nl + nr;
  }
  out->offsets.push_back(offset);
  out->leaves.push_back(n);
  return static_cast<int>(n->schema.size());
}

/// Rebuilds the cluster in the original shape over (possibly rewritten)
/// leaves, mirroring FlattenCluster's traversal.  Returns `n` itself
/// when no leaf changed.
PlanPtr RebuildSameShape(const PlanPtr& n, bool is_root,
                         const std::unordered_map<const Plan*, int>& refs,
                         const std::vector<PlanPtr>& leaves, size_t* next) {
  if (n->kind == PlanKind::kJoin && (is_root || refs.at(n.get()) <= 1)) {
    PlanPtr l = RebuildSameShape(n->left, false, refs, leaves, next);
    PlanPtr r = RebuildSameShape(n->right, false, refs, leaves, next);
    if (l == n->left && r == n->right) return n;
    return MakeJoin(std::move(l), std::move(r), n->predicate);
  }
  return leaves[(*next)++];
}

/// Sum of estimated cardinalities over the cluster's internal join
/// nodes — the "intermediate result volume" both orders are compared
/// on.
double ClusterCost(const PlanPtr& n, bool is_root,
                   const std::unordered_map<const Plan*, int>& refs,
                   const CostModel& cost) {
  if (n->kind != PlanKind::kJoin || (!is_root && refs.at(n.get()) > 1)) {
    return 0.0;
  }
  return cost.EstimateRows(n) + ClusterCost(n->left, false, refs, cost) +
         ClusterCost(n->right, false, refs, cost);
}

/// Greedily reorders one flattened cluster.  Returns nullptr when the
/// greedy order does not beat the structural one by the margin (the
/// caller then keeps the original nodes).
PlanPtr ReorderCluster(const PlanPtr& root, const JoinCluster& c,
                       const std::unordered_map<const Plan*, int>& refs,
                       const CostModel& cost) {
  const int n = static_cast<int>(c.leaves.size());
  const int total =
      c.offsets.back() + static_cast<int>(c.leaves.back()->schema.size());

  // Leaves each conjunct needs (by flattened leaf index).
  auto leaf_of = [&](int g) {
    int l = n - 1;
    while (l > 0 && c.offsets[static_cast<size_t>(l)] > g) --l;
    return l;
  };
  std::vector<std::vector<int>> needs(c.conjuncts.size());
  for (size_t ci = 0; ci < c.conjuncts.size(); ++ci) {
    std::vector<int> cols;
    CollectColumns(c.conjuncts[ci], &cols);
    std::vector<char> seen(static_cast<size_t>(n), 0);
    for (int g : cols) seen[static_cast<size_t>(leaf_of(g))] = 1;
    for (int l = 0; l < n; ++l) {
      if (seen[static_cast<size_t>(l)] != 0) needs[ci].push_back(l);
    }
  }

  std::vector<char> in(static_cast<size_t>(n), 0);
  std::vector<char> used(c.conjuncts.size(), 0);
  std::vector<int> pos(static_cast<size_t>(total), -1);

  // Conjuncts applicable once `extra` joins the covered set.
  auto applicable = [&](int extra) {
    std::vector<size_t> out;
    for (size_t ci = 0; ci < c.conjuncts.size(); ++ci) {
      if (used[ci] != 0) continue;
      bool ok = true;
      for (int l : needs[ci]) {
        if (in[static_cast<size_t>(l)] == 0 && l != extra) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(ci);
    }
    return out;
  };
  auto connects = [&](const std::vector<size_t>& cs, int extra) {
    for (size_t ci : cs) {
      bool touches_extra = false;
      bool touches_in = false;
      for (int l : needs[ci]) {
        if (l == extra) touches_extra = true;
        if (l != extra && in[static_cast<size_t>(l)] != 0) touches_in = true;
      }
      if (touches_extra && touches_in) return true;
    }
    return false;
  };
  const auto arity_of = [&](int l) {
    return static_cast<int>(c.leaves[static_cast<size_t>(l)]->schema.size());
  };

  PlanPtr cur;
  double new_cost = 0.0;
  int cur_arity = 0;

  // Seed: the cheapest ordered pair, strongly preferring connected
  // pairs; ties resolve to the smallest (i, j), so equal estimates
  // keep the structural order.
  {
    double best = std::numeric_limits<double>::infinity();
    int bi = -1;
    int bj = -1;
    PlanPtr best_plan;
    for (int i = 0; i < n; ++i) {
      in.assign(static_cast<size_t>(n), 0);
      in[static_cast<size_t>(i)] = 1;
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const std::vector<size_t> cs = applicable(j);
        std::vector<ExprPtr> preds;
        preds.reserve(cs.size());
        for (size_t ci : cs) {
          preds.push_back(RemapColumns(c.conjuncts[ci], [&](int g) {
            const int l = leaf_of(g);
            const int local = g - c.offsets[static_cast<size_t>(l)];
            return l == i ? local : arity_of(i) + local;
          }));
        }
        PlanPtr cand = MakeJoin(c.leaves[static_cast<size_t>(i)],
                                c.leaves[static_cast<size_t>(j)],
                                AndAll(std::move(preds)));
        double score = cost.EstimateRows(cand);
        if (!connects(cs, j)) score *= 1e6;  // avoid cross products
        if (score < best) {
          best = score;
          bi = i;
          bj = j;
          best_plan = std::move(cand);
        }
      }
    }
    in.assign(static_cast<size_t>(n), 0);
    in[static_cast<size_t>(bi)] = 1;
    for (size_t ci : applicable(bj)) used[ci] = 1;
    in[static_cast<size_t>(bj)] = 1;
    for (int g = c.offsets[static_cast<size_t>(bi)];
         g < c.offsets[static_cast<size_t>(bi)] + arity_of(bi); ++g) {
      pos[static_cast<size_t>(g)] = g - c.offsets[static_cast<size_t>(bi)];
    }
    for (int g = c.offsets[static_cast<size_t>(bj)];
         g < c.offsets[static_cast<size_t>(bj)] + arity_of(bj); ++g) {
      pos[static_cast<size_t>(g)] =
          arity_of(bi) + g - c.offsets[static_cast<size_t>(bj)];
    }
    cur = std::move(best_plan);
    cur_arity = arity_of(bi) + arity_of(bj);
    new_cost += cost.EstimateRows(cur);
  }

  // Extend one leaf at a time.
  for (int step = 2; step < n; ++step) {
    double best = std::numeric_limits<double>::infinity();
    int bk = -1;
    PlanPtr best_plan;
    std::vector<size_t> best_cs;
    for (int k = 0; k < n; ++k) {
      if (in[static_cast<size_t>(k)] != 0) continue;
      const std::vector<size_t> cs = applicable(k);
      std::vector<ExprPtr> preds;
      preds.reserve(cs.size());
      for (size_t ci : cs) {
        preds.push_back(RemapColumns(c.conjuncts[ci], [&](int g) {
          const int l = leaf_of(g);
          if (l == k) {
            return cur_arity + g - c.offsets[static_cast<size_t>(l)];
          }
          return pos[static_cast<size_t>(g)];
        }));
      }
      PlanPtr cand =
          MakeJoin(cur, c.leaves[static_cast<size_t>(k)], AndAll(std::move(preds)));
      double score = cost.EstimateRows(cand);
      if (!connects(cs, k)) score *= 1e6;
      if (score < best) {
        best = score;
        bk = k;
        best_plan = std::move(cand);
        best_cs = cs;
      }
    }
    for (size_t ci : best_cs) used[ci] = 1;
    in[static_cast<size_t>(bk)] = 1;
    for (int g = c.offsets[static_cast<size_t>(bk)];
         g < c.offsets[static_cast<size_t>(bk)] + arity_of(bk); ++g) {
      pos[static_cast<size_t>(g)] =
          cur_arity + g - c.offsets[static_cast<size_t>(bk)];
    }
    cur = std::move(best_plan);
    cur_arity += arity_of(bk);
    new_cost += cost.EstimateRows(cur);
  }

  for (char u : used) {
    if (u == 0) return nullptr;  // conjunct left behind: keep original
  }

  // Keep the original structure unless the reorder clearly wins —
  // flat estimates then leave the plan bit-identical.
  const double old_cost = ClusterCost(root, true, refs, cost);
  if (!(new_cost < 0.8 * old_cost)) return nullptr;

  std::vector<int> restore(static_cast<size_t>(total));
  for (int g = 0; g < total; ++g) {
    restore[static_cast<size_t>(g)] = pos[static_cast<size_t>(g)];
  }
  return MakeProjectColumns(std::move(cur), restore);
}

PlanPtr ReorderWalk(const PlanPtr& n, const CostModel& cost,
                    const std::unordered_map<const Plan*, int>& refs,
                    std::unordered_map<const Plan*, PlanPtr>& memo) {
  if (n == nullptr) return n;
  auto it = memo.find(n.get());
  if (it != memo.end()) return it->second;
  PlanPtr out;
  if (n->kind == PlanKind::kJoin) {
    JoinCluster c;
    FlattenCluster(n, 0, true, refs, &c);
    bool leaf_changed = false;
    std::vector<PlanPtr> new_leaves;
    new_leaves.reserve(c.leaves.size());
    for (const PlanPtr& leaf : c.leaves) {
      PlanPtr r = ReorderWalk(leaf, cost, refs, memo);
      leaf_changed |= (r != leaf);
      new_leaves.push_back(std::move(r));
    }
    PlanPtr reordered;
    if (c.leaves.size() >= 2 && c.leaves.size() <= 8) {
      JoinCluster rebased = c;
      rebased.leaves = new_leaves;
      reordered = ReorderCluster(n, rebased, refs, cost);
    }
    if (reordered != nullptr) {
      out = std::move(reordered);
    } else if (!leaf_changed) {
      out = n;
    } else {
      size_t next = 0;
      out = RebuildSameShape(n, true, refs, new_leaves, &next);
    }
  } else {
    PlanPtr l = ReorderWalk(n->left, cost, refs, memo);
    PlanPtr r = ReorderWalk(n->right, cost, refs, memo);
    if (l == n->left && r == n->right) {
      out = n;
    } else {
      auto copy = std::make_shared<Plan>(*n);
      copy->left = std::move(l);
      copy->right = std::move(r);
      out = std::move(copy);
    }
  }
  memo.emplace(n.get(), out);
  return out;
}

PlanPtr HintWalk(const PlanPtr& n, const CostModel& cost,
                 std::unordered_map<const Plan*, PlanPtr>& memo) {
  if (n == nullptr) return n;
  auto it = memo.find(n.get());
  if (it != memo.end()) return it->second;
  PlanPtr l = HintWalk(n->left, cost, memo);
  PlanPtr r = HintWalk(n->right, cost, memo);
  JoinStrategy strategy = n->join_strategy;
  if (n->kind == PlanKind::kJoin && n->join.overlap.has_value()) {
    const double product =
        cost.EstimateRows(*n->left) * cost.EstimateRows(*n->right);
    strategy = product <= static_cast<double>(kTinyJoinProduct)
                   ? JoinStrategy::kNestedLoop
                   : JoinStrategy::kAuto;
  }
  PlanPtr out;
  if (l == n->left && r == n->right && strategy == n->join_strategy) {
    out = n;
  } else {
    auto copy = std::make_shared<Plan>(*n);
    copy->left = std::move(l);
    copy->right = std::move(r);
    copy->join_strategy = strategy;
    out = std::move(copy);
  }
  memo.emplace(n.get(), out);
  return out;
}

}  // namespace

PlanPtr ReorderJoins(const PlanPtr& plan, const CostModel& cost) {
  if (plan == nullptr) return plan;
  std::unordered_map<const Plan*, int> refs;
  CountPlanRefs(plan.get(), refs);
  std::unordered_map<const Plan*, PlanPtr> memo;
  return ReorderWalk(plan, cost, refs, memo);
}

PlanPtr ApplyJoinStrategyHints(const PlanPtr& plan, const CostModel& cost) {
  if (plan == nullptr) return plan;
  std::unordered_map<const Plan*, PlanPtr> memo;
  return HintWalk(plan, cost, memo);
}

}  // namespace periodk
