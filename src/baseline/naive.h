// Naive snapshot-by-snapshot evaluation: the executable form of the
// paper's *abstract model* (Def 4.4) and the correctness oracle for
// everything else.  For every time point T of the domain the period
// tables are timesliced, the non-temporal query is evaluated under bag
// semantics, and the per-snapshot results are folded back into a
// coalesced period encoding.  This is also how SQL/TP-style approaches
// evaluate snapshot queries (one subquery per snapshot group), which the
// paper points out is data-dependent and slow -- reproduced as such by
// the benchmarks.
#ifndef PERIODK_BASELINE_NAIVE_H_
#define PERIODK_BASELINE_NAIVE_H_

#include "engine/executor.h"
#include "ra/plan.h"
#include "temporal/interval.h"

namespace periodk {

/// Evaluates `query` (expressed over snapshot schemas) under snapshot
/// semantics by brute force.  `catalog` holds the PERIODENC-encoded
/// period tables under the names used by the query's Scan nodes.
/// Returns the coalesced period encoding of the result.
Relation NaiveSnapshotEval(const PlanPtr& query, const Catalog& catalog,
                           const TimeDomain& domain);

}  // namespace periodk

#endif  // PERIODK_BASELINE_NAIVE_H_
