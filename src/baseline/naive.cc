#include "baseline/naive.h"

#include <map>
#include <set>

#include "common/status.h"
#include "engine/temporal_ops.h"
#include "semiring/nat_semiring.h"
#include "temporal/temporal_element.h"

namespace periodk {

namespace {

void CollectScanTables(const PlanPtr& plan, std::set<std::string>* out) {
  if (plan == nullptr) return;
  if (plan->kind == PlanKind::kScan) out->insert(plan->table);
  CollectScanTables(plan->left, out);
  CollectScanTables(plan->right, out);
}

}  // namespace

Relation NaiveSnapshotEval(const PlanPtr& query, const Catalog& catalog,
                           const TimeDomain& domain) {
  std::set<std::string> tables;
  CollectScanTables(query, &tables);

  NatSemiring n;
  std::map<Row, TemporalElement<NatSemiring>, RowLess> raw;
  // Track open runs of constant multiplicity to keep the intermediate
  // representation linear in the number of *changes*, not time points.
  std::map<Row, std::pair<TimePoint, int64_t>, RowLess> open;

  auto close_run = [&](const Row& row, TimePoint start, int64_t count,
                       TimePoint end) {
    if (count > 0 && start < end) {
      raw[row].Add(Interval(start, end), count);
    }
  };

  for (TimePoint t = domain.tmin; t < domain.tmax; ++t) {
    Catalog sliced;
    for (const std::string& name : tables) {
      sliced.Put(name, TimesliceEncoded(catalog.Get(name), t));
    }
    Relation snapshot = Execute(query, sliced);
    std::map<Row, int64_t, RowLess> counts;
    for (const Row& row : snapshot.rows()) ++counts[row];
    // Close runs that ended or changed multiplicity; open new ones.
    for (auto it = open.begin(); it != open.end();) {
      auto ct = counts.find(it->first);
      if (ct == counts.end() || ct->second != it->second.second) {
        close_run(it->first, it->second.first, it->second.second, t);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [row, count] : counts) {
      open.try_emplace(row, std::make_pair(t, count));
    }
  }
  for (const auto& [row, run] : open) {
    close_run(row, run.first, run.second, domain.tmax);
  }

  Schema schema = query->schema;
  schema.Append(Column("a_begin"));
  schema.Append(Column("a_end"));
  Relation out(std::move(schema));
  for (auto& [row, te] : raw) {
    TemporalElement<NatSemiring> coalesced = Coalesce(n, te);
    for (const auto& [interval, mult] : coalesced.entries()) {
      for (int64_t m = 0; m < mult; ++m) {
        Row r = row;
        r.push_back(Value::Int(interval.begin));
        r.push_back(Value::Int(interval.end));
        out.AddRow(std::move(r));
      }
    }
  }
  return out;
}

}  // namespace periodk
