// TimelineIndex: a checkpointed timeline index over one PERIODENC
// relation, in the spirit of the Timeline Index of Kaufmann et al.
// (SIGMOD 2013) and of the endpoint-sorted sweep structures the
// interval-overlap join already uses.  It turns the timeslice operator
// tau_T (paper Sec. 5.1, Def 6.2) — an O(table) scan per query in
// `TimesliceEncoded` — into a binary search over a global event list
// plus a bounded replay:
//
//   * every valid row [b, e) contributes a begin event at b and an end
//     event at e; events are globally sorted by time;
//   * every `checkpoint_interval` (K) events, the index stores a
//     checkpoint: the sorted set of row ids alive after applying the
//     events so far;
//   * Timeslice(t) binary-searches the number of events with time <= t,
//     starts from the nearest checkpoint at or below that position, and
//     replays at most K - 1 endpoint events.
//
// The index is immutable and tied to the exact Relation object it was
// built from (writers publish new Relation objects copy-on-write, so a
// stale index can always be detected by pointer identity — see
// `BuiltFor`).  The executor routes kTimeslice-over-kScan through it
// when the catalog carries one (ExecOptions::use_timeline_index), and
// the middleware builds it lazily on the first indexed read.
//
// Differential layer (rdf3x-style DifferentialIndex): a copy-on-write
// append publishes a new Relation whose prefix rows are value-identical
// to the old one, so instead of rebuilding, `WithDelta` wraps the old
// index (the *base*) together with a small index built over only the
// appended rows (the *delta*, with absolute row ids).  Lookups merge
// the two answers: base ids are all smaller than delta ids, so the
// merged alive set stays sorted and Timeslice's projection is untouched.
// Chained appends flatten — the base of a delta-carrying index never
// itself carries a delta — and the delta is checkpointed like the base,
// so replay stays bounded by K even before compaction folds the delta
// into a fresh full index (see TemporalDB's IndexMaintenanceOptions).
#ifndef PERIODK_ENGINE_TIMELINE_INDEX_H_
#define PERIODK_ENGINE_TIMELINE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/relation.h"
#include "engine/schema.h"
#include "temporal/interval.h"

namespace periodk {

class TimelineIndex {
 public:
  /// Default events-per-checkpoint.  Checkpoints cost
  /// O(avg alive set) memory each; K = 64 keeps replay short while the
  /// checkpoint storage stays well below the table itself for
  /// short-interval workloads.
  static constexpr int64_t kDefaultCheckpointInterval = 64;

  /// Builds the index over the trailing two (a_begin, a_end) columns of
  /// `source` — the PERIODENC invariant position.  Returns nullptr when
  /// the index cannot represent the relation exactly: fewer than two
  /// columns, or any row whose endpoint values are not integers (the
  /// scan path throws on such rows, so callers must fall back to it).
  /// Rows with an empty validity interval (begin >= end) are indexed as
  /// never alive, exactly like the scan path treats them.
  /// Complexity: O(n log n) time, O(n + checkpoints) space.
  /// Thread-safety: Build is a pure function; the returned index is
  /// immutable and safe to share across threads.
  static std::shared_ptr<const TimelineIndex> Build(
      std::shared_ptr<const Relation> source,
      int64_t checkpoint_interval = kDefaultCheckpointInterval);

  /// As above with explicit endpoint columns (used by
  /// TemporalDB::Timeslice for period tables whose interval columns are
  /// stored away from the trailing position).  Preconditions:
  /// 0 <= begin_col, end_col < arity and begin_col != end_col.
  static std::shared_ptr<const TimelineIndex> Build(
      std::shared_ptr<const Relation> source, int begin_col, int end_col,
      int64_t checkpoint_interval = kDefaultCheckpointInterval);

  /// Differential wrap: an index for `source` that answers from `base`
  /// plus a delta built over only the appended row range — O(appended)
  /// instead of O(table).  Preconditions checked (nullptr returned on
  /// violation, so callers fall back to a full build or the scan):
  /// `source` must have the same arity as base's relation, at least as
  /// many rows (the copy-on-write append contract: prefix rows are
  /// value-identical), and integer endpoints in every appended row.
  /// When `base` already carries a delta, the chain flattens: the new
  /// index keeps base's *core* and re-derives one delta covering every
  /// row appended since the core was built (still O(total delta), which
  /// the compaction threshold bounds).  Zero appended rows are valid
  /// and yield an empty delta.
  /// Thread-safety: pure; the result is immutable like Build's.
  static std::shared_ptr<const TimelineIndex> WithDelta(
      std::shared_ptr<const TimelineIndex> base,
      std::shared_ptr<const Relation> source);

  /// True iff the index was built from exactly this Relation object.
  /// Catalog mutations publish new Relation objects (copy-on-write), so
  /// pointer identity proves the index is current.
  bool BuiltFor(const Relation* relation) const {
    return source_.get() == relation;
  }

  /// True iff the indexed endpoint columns are the trailing two — the
  /// only layout kTimeslice's encoded-input invariant permits, and
  /// therefore a precondition for the executor to use this index.
  bool ColumnsAreTrailing() const;

  int begin_col() const { return begin_col_; }
  int end_col() const { return end_col_; }
  int64_t checkpoint_interval() const { return checkpoint_interval_; }
  /// Total events answered from, base and delta combined.
  size_t num_events() const {
    return base_ != nullptr ? base_->events_.size() + delta_->events_.size()
                            : events_.size();
  }
  size_t num_checkpoints() const {
    return base_ != nullptr
               ? base_->checkpoints_.size() + delta_->checkpoints_.size()
               : checkpoints_.size();
  }
  /// True iff this index answers through a differential delta (built by
  /// WithDelta and not yet compacted into a full index).
  bool has_delta() const { return base_ != nullptr; }
  /// Events in the delta layer; 0 for a fully compacted index.  The
  /// writer's compaction threshold and ExecStats::index_delta_events
  /// both read this.
  size_t num_delta_events() const {
    return delta_ != nullptr ? delta_->events_.size() : 0;
  }
  /// The fully compacted core a differential index answers from
  /// (nullptr when this index has no delta).  Exposed so tests can pin
  /// the flattening invariant: a base never itself carries a delta.
  std::shared_ptr<const TimelineIndex> base() const { return base_; }

  /// Row ids (ascending) of rows alive at t: begin <= t < end.  Pure
  /// comparisons — any int64 t is safe, including domain bounds.
  /// Complexity: O(log #events + K + |result|).
  std::vector<uint32_t> AliveAt(TimePoint t) const;

  /// Row ids (ascending) of rows whose interval overlaps [b, e):
  /// begin < e and end > b.  Empty when b >= e.  Yields the pre-sorted
  /// candidate list an endpoint sweep (interval join, coalesce) can
  /// consume in place of sorting a full scan; the operators themselves
  /// do not consult it yet (ROADMAP item — they run over arbitrary
  /// intermediates, not just indexed base tables).
  /// Complexity: O(log #events + K + |result| log |result|).
  std::vector<uint32_t> AliveInRange(TimePoint b, TimePoint e) const;

  /// Materialized tau_t: the alive rows with the two endpoint columns
  /// dropped, in source row order — result rows are identical, in
  /// identical order, to `TimesliceEncoded(source, t)`.
  Relation Timeslice(TimePoint t) const;

 private:
  TimelineIndex() = default;

  /// Build over rows [first_row, source->size()) with absolute row ids;
  /// Build is the first_row = 0 case, WithDelta's delta the rest.
  static std::shared_ptr<const TimelineIndex> BuildFrom(
      std::shared_ptr<const Relation> source, int begin_col, int end_col,
      int64_t checkpoint_interval, size_t first_row);

  struct Event {
    TimePoint time = 0;
    uint32_t row = 0;
    bool is_end = false;  // tie-break only; any order at equal t works
  };

  std::shared_ptr<const Relation> source_;
  int begin_col_ = 0;
  int end_col_ = 0;
  int64_t checkpoint_interval_ = kDefaultCheckpointInterval;
  Schema out_schema_;          // source schema minus the endpoint columns
  std::vector<int> keep_cols_;  // source column ids of out_schema_
  // Globally sorted by (time, is_end, row); event_times_ mirrors the
  // times for branch-free binary search.
  std::vector<Event> events_;
  std::vector<TimePoint> event_times_;
  // checkpoints_[c] = sorted row ids alive after the first
  // c * checkpoint_interval_ events (checkpoints_[0] is empty).
  std::vector<std::vector<uint32_t>> checkpoints_;
  // Begin events only, sorted by time, for AliveInRange's "starts
  // within [b, e)" lookup.
  std::vector<TimePoint> begin_times_;
  std::vector<uint32_t> begin_rows_;
  // Differential layer (both set or both null; see WithDelta).  When
  // set, this object's own event/checkpoint vectors are empty and every
  // lookup concatenates base answers (ids < delta_first_row_) with
  // delta answers (ids >= delta_first_row_).  base_ is always a core:
  // base_->base_ == nullptr.
  std::shared_ptr<const TimelineIndex> base_;
  std::shared_ptr<const TimelineIndex> delta_;
  // First row id the delta covers == base_'s relation row count.
  size_t delta_first_row_ = 0;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_TIMELINE_INDEX_H_
