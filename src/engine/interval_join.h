// Sweep-based interval-overlap join (the temporal hot path of the
// paper's Sec. 10 evaluation).  RewriteJoin emits `theta' AND overlaps`
// predicates; once MakeJoin has recognized the overlap conjunct
// structurally (ra/join_analysis.h), this operator answers it with a
// hash-partition on the equi-keys followed by an endpoint plane sweep
// per partition -- O(n log n + output) instead of the O(n * m) nested
// loop a pure temporal join (no equi-key) otherwise degenerates to.
#ifndef PERIODK_ENGINE_INTERVAL_JOIN_H_
#define PERIODK_ENGINE_INTERVAL_JOIN_H_

#include "engine/executor.h"
#include "engine/relation.h"
#include "ra/plan.h"

namespace periodk {

/// Optional per-side sweep pruning, produced by the executor from a
/// table's TimelineIndex (AliveInRange over the opposite side's
/// endpoint span).  Bit i false marks source row i as provably unable
/// to overlap anything on the opposite side, so the sweep's fast lane
/// skips it; nullptr keeps every row.  Pruning never touches the slow
/// lane (malformed-interval rows are absent from the index anyway), and
/// the pruned join is row-identical — same rows, same order — to the
/// unpruned one.
struct JoinCandidates {
  const std::vector<char>* left = nullptr;
  const std::vector<char>* right = nullptr;
};

/// Executes a kJoin plan whose analysis carries an overlap conjunct
/// (plan.join.overlap must be set).  Exactly equivalent to evaluating
/// plan.predicate over the cross product: rows whose endpoint columns
/// are not well-formed intervals (non-integer values, begin >= end) are
/// routed through a per-partition nested-loop slow lane so SQL
/// three-valued comparison semantics are preserved bit-for-bit.
/// With a pool in `ctx` the equi-key partitions fan out to workers
/// (a pure temporal join has one partition and stays sequential).
Relation IntervalOverlapJoin(const Plan& plan, const Relation& left,
                             const Relation& right, const OpContext& ctx = {},
                             const JoinCandidates& candidates = {});

/// Reference implementation: O(n * m) nested loop evaluating the full
/// join predicate on every pair.  Kept as the correctness baseline for
/// the property tests and benchmarks, and as the executor's fallback
/// for genuinely opaque predicates.
Relation NestedLoopJoin(const Plan& plan, const Relation& left,
                        const Relation& right);

}  // namespace periodk

#endif  // PERIODK_ENGINE_INTERVAL_JOIN_H_
