#include "engine/relation.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "common/str_util.h"

namespace periodk {

Relation Relation::FromColumns(Schema schema, std::vector<ColumnData> columns,
                               size_t num_rows) {
  if (columns.size() != schema.size()) {
    throw EngineError(StrCat("FromColumns: ", columns.size(),
                             " columns but schema ", schema.ToString(),
                             " has ", schema.size()));
  }
  for (const ColumnData& c : columns) {
    if (c.size() != num_rows) {
      throw EngineError(StrCat("FromColumns: column has ", c.size(),
                               " rows, expected ", num_rows));
    }
  }
  Relation out(std::move(schema));
  out.columns_ = std::move(columns);
  out.num_rows_ = num_rows;
  out.columnar_ = true;
  out.rows_ready_.store(false, std::memory_order_relaxed);
  return out;
}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      columns_(other.columns_),
      num_rows_(other.num_rows_),
      columnar_(other.columnar_) {
  // The source may be a shared base table whose row view another
  // thread is materializing right now; only touch other.rows_ once the
  // release store says it is complete.
  if (other.rows_ready_.load(std::memory_order_acquire)) {
    rows_ = other.rows_;
    rows_ready_.store(true, std::memory_order_relaxed);
  } else {
    rows_ready_.store(false, std::memory_order_relaxed);
  }
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      rows_(std::move(other.rows_)),
      columns_(std::move(other.columns_)),
      num_rows_(other.num_rows_),
      columnar_(other.columnar_) {
  rows_ready_.store(other.rows_ready_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  other.columns_.clear();
  other.num_rows_ = 0;
  other.columnar_ = false;
  other.rows_ready_.store(true, std::memory_order_relaxed);
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    Relation copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    rows_ = std::move(other.rows_);
    columns_ = std::move(other.columns_);
    num_rows_ = other.num_rows_;
    columnar_ = other.columnar_;
    rows_ready_.store(other.rows_ready_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    other.columns_.clear();
    other.num_rows_ = 0;
    other.columnar_ = false;
    other.rows_ready_.store(true, std::memory_order_relaxed);
  }
  return *this;
}

void Relation::ToColumnar() {
  if (columnar_) return;
  std::vector<ColumnData> columns;
  columns.reserve(schema_.size());
  for (size_t c = 0; c < schema_.size(); ++c) {
    columns.push_back(ColumnData::Encode(rows_, c));
  }
  num_rows_ = rows_.size();
  columns_ = std::move(columns);
  columnar_ = true;
  rows_.clear();
  rows_.shrink_to_fit();
  rows_ready_.store(false, std::memory_order_relaxed);
}

void Relation::MaterializeRows() const {
  MutexLock lock(rows_mu_);
  if (rows_ready_.load(std::memory_order_relaxed)) return;
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    Row row;
    row.reserve(columns_.size());
    for (const ColumnData& c : columns_) row.push_back(c.Get(i));
    rows.push_back(std::move(row));
  }
  rows_ = std::move(rows);
  rows_ready_.store(true, std::memory_order_release);
}

void Relation::DecayToRows() {
  if (!columnar_) return;
  if (!rows_ready_.load(std::memory_order_acquire)) MaterializeRows();
  columns_.clear();
  num_rows_ = 0;
  columnar_ = false;
}

void Relation::ThrowArityMismatch(size_t got) const {
  throw EngineError(StrCat("AddRow: row has ", got, " values but schema ",
                           schema_.ToString(), " has ", schema_.size(),
                           " columns"));
}

void Relation::CheckRowArities() const {
  for (const Row& row : rows_) {
    if (row.size() != schema_.size()) {
      throw EngineError(StrCat("Relation: row has ", row.size(),
                               " values but schema ", schema_.ToString(),
                               " has ", schema_.size(), " columns"));
    }
  }
}

void Relation::SortRows() {
  DecayToRows();
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
}

bool Relation::BagEquals(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  if (size() != other.size()) return false;
  std::vector<Row> a = rows(), b = other.rows();
  auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a[i], b[i]) != 0) return false;
  }
  return true;
}

std::string Relation::ToString(size_t limit) const {
  std::vector<Row> sorted = rows();
  std::sort(sorted.begin(), sorted.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  std::string out = schema_.ToString();
  out += "\n";
  size_t n = limit == 0 ? sorted.size() : std::min(limit, sorted.size());
  for (size_t i = 0; i < n; ++i) {
    out += RowToString(sorted[i]);
    out += "\n";
  }
  if (n < sorted.size()) {
    out += StrCat("... (", sorted.size() - n, " more rows)\n");
  }
  return out;
}

}  // namespace periodk
