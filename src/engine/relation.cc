#include "engine/relation.h"

#include <algorithm>

#include "common/status.h"
#include "common/str_util.h"

namespace periodk {

void Relation::ThrowArityMismatch(size_t got) const {
  throw EngineError(StrCat("AddRow: row has ", got, " values but schema ",
                           schema_.ToString(), " has ", schema_.size(),
                           " columns"));
}

void Relation::CheckRowArities() const {
  for (const Row& row : rows_) {
    if (row.size() != schema_.size()) {
      throw EngineError(StrCat("Relation: row has ", row.size(),
                               " values but schema ", schema_.ToString(),
                               " has ", schema_.size(), " columns"));
    }
  }
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
}

bool Relation::BagEquals(const Relation& other) const {
  if (schema_.size() != other.schema_.size()) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::vector<Row> a = rows_, b = other.rows_;
  auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a[i], b[i]) != 0) return false;
  }
  return true;
}

std::string Relation::ToString(size_t limit) const {
  std::vector<Row> sorted = rows_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Row& a, const Row& b) { return CompareRows(a, b) < 0; });
  std::string out = schema_.ToString();
  out += "\n";
  size_t n = limit == 0 ? sorted.size() : std::min(limit, sorted.size());
  for (size_t i = 0; i < n; ++i) {
    out += RowToString(sorted[i]);
    out += "\n";
  }
  if (n < sorted.size()) {
    out += StrCat("... (", sorted.size() - n, " more rows)\n");
  }
  return out;
}

}  // namespace periodk
