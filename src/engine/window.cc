#include "engine/window.h"

#include <algorithm>
#include <numeric>

#include "common/status.h"

namespace periodk {

namespace {

int ComparePartition(const Row& a, const Row& b,
                     const std::vector<int>& cols) {
  for (int c : cols) {
    int r = a[static_cast<size_t>(c)].Compare(b[static_cast<size_t>(c)]);
    if (r != 0) return r;
  }
  return 0;
}

int CompareOrder(const Row& a, const Row& b,
                 const std::vector<WindowOrderKey>& keys) {
  for (const WindowOrderKey& k : keys) {
    int r = a[static_cast<size_t>(k.column)].Compare(
        b[static_cast<size_t>(k.column)]);
    if (r != 0) return k.ascending ? r : -r;
  }
  return 0;
}

}  // namespace

Relation ApplyWindow(const Relation& input, const WindowSpec& spec,
                     const std::string& out_name) {
  const std::vector<Row>& rows = input.rows();
  std::vector<size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int p = ComparePartition(rows[a], rows[b], spec.partition_by);
    if (p != 0) return p < 0;
    int o = CompareOrder(rows[a], rows[b], spec.order_by);
    if (o != 0) return o < 0;
    return a < b;  // stable tie-break
  });

  std::vector<Value> result(rows.size());
  size_t i = 0;
  while (i < order.size()) {
    // Locate the current partition [i, part_end).
    size_t part_end = i + 1;
    while (part_end < order.size() &&
           ComparePartition(rows[order[i]], rows[order[part_end]],
                            spec.partition_by) == 0) {
      ++part_end;
    }
    switch (spec.func) {
      case WindowFunc::kRunningSumRange: {
        int64_t running = 0;
        size_t j = i;
        while (j < part_end) {
          // Peer block: equal order keys share the same frame.
          size_t peer_end = j + 1;
          while (peer_end < part_end &&
                 CompareOrder(rows[order[j]], rows[order[peer_end]],
                              spec.order_by) == 0) {
            ++peer_end;
          }
          for (size_t p = j; p < peer_end; ++p) {
            const Value& v =
                rows[order[p]][static_cast<size_t>(spec.arg_col)];
            if (!v.is_null()) running += v.AsInt();
          }
          for (size_t p = j; p < peer_end; ++p) {
            result[order[p]] = Value::Int(running);
          }
          j = peer_end;
        }
        break;
      }
      case WindowFunc::kRowNumber:
        for (size_t j = i; j < part_end; ++j) {
          result[order[j]] = Value::Int(static_cast<int64_t>(j - i + 1));
        }
        break;
      case WindowFunc::kLag:
        for (size_t j = i; j < part_end; ++j) {
          result[order[j]] =
              j == i ? Value::Null()
                     : rows[order[j - 1]][static_cast<size_t>(spec.arg_col)];
        }
        break;
      case WindowFunc::kLead:
        for (size_t j = i; j < part_end; ++j) {
          result[order[j]] =
              j + 1 == part_end
                  ? Value::Null()
                  : rows[order[j + 1]][static_cast<size_t>(spec.arg_col)];
        }
        break;
    }
    i = part_end;
  }

  Schema schema = input.schema();
  schema.Append(Column(out_name));
  Relation out(std::move(schema));
  out.Reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    Row row = rows[r];
    row.push_back(result[r]);
    out.AddRow(std::move(row));
  }
  return out;
}

}  // namespace periodk
