#include "engine/schema.h"

#include "common/str_util.h"

namespace periodk {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Column> columns;
  columns.reserve(names.size());
  for (const std::string& n : names) columns.emplace_back(n);
  return Schema(std::move(columns));
}

int Schema::Find(const std::string& qualifier, const std::string& name) const {
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(columns_[i].table, qualifier)) {
      continue;
    }
    if (found >= 0) return -2;  // ambiguous
    found = static_cast<int>(i);
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns = left.columns_;
  columns.insert(columns.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(columns));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<Column> columns = columns_;
  for (Column& c : columns) c.table = alias;
  return Schema(std::move(columns));
}

Schema Schema::Prefix(size_t n) const {
  return Schema(std::vector<Column>(columns_.begin(),
                                    columns_.begin() + static_cast<long>(n)));
}

std::string Schema::ToString() const {
  return StrCat("(",
                JoinMapped(columns_, ", ",
                           [](const Column& c) { return c.ToString(); }),
                ")");
}

}  // namespace periodk
