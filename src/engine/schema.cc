#include "engine/schema.h"

#include "common/str_util.h"

namespace periodk {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Column> columns;
  columns.reserve(names.size());
  for (const std::string& n : names) columns.emplace_back(n);
  return Schema(std::move(columns));
}

const Schema::NameIndex& Schema::EnsureIndex() const {
  NameIndex* index = index_.get();
  std::call_once(index->once, [this, index] {
    index->by_name.reserve(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      index->by_name[ToLower(columns_[i].name)].push_back(
          static_cast<int>(i));
    }
  });
  return *index;
}

int Schema::Find(const std::string& qualifier, const std::string& name) const {
  const NameIndex& index = EnsureIndex();
  auto it = index.by_name.find(ToLower(name));
  if (it == index.by_name.end()) return -1;
  // Candidates are in column order, so duplicate-name shadowing (-2 on
  // two unqualified matches, qualifier narrowing) behaves exactly like
  // the old whole-schema linear scan.
  int found = -1;
  for (int i : it->second) {
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(columns_[static_cast<size_t>(i)].table, qualifier)) {
      continue;
    }
    if (found >= 0) return -2;  // ambiguous
    found = i;
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> columns = left.columns_;
  columns.insert(columns.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(columns));
}

Schema Schema::WithQualifier(const std::string& alias) const {
  std::vector<Column> columns = columns_;
  for (Column& c : columns) c.table = alias;
  return Schema(std::move(columns));
}

Schema Schema::Prefix(size_t n) const {
  return Schema(std::vector<Column>(columns_.begin(),
                                    columns_.begin() + static_cast<long>(n)));
}

std::string Schema::ToString() const {
  return StrCat("(",
                JoinMapped(columns_, ", ",
                           [](const Column& c) { return c.ToString(); }),
                ")");
}

}  // namespace periodk
