#include "engine/column.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_map>

#include "common/status.h"
#include "common/str_util.h"

namespace periodk {

namespace {

// splitmix64 finalizer; also used to combine packed key words.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ColumnTagName(ColumnTag tag) {
  switch (tag) {
    case ColumnTag::kInt:
      return "int";
    case ColumnTag::kDouble:
      return "double";
    case ColumnTag::kBool:
      return "bool";
    case ColumnTag::kString:
      return "string";
    case ColumnTag::kMixed:
      return "mixed";
  }
  return "?";
}

void ColumnData::InitValidity() {
  validity_.assign((size_ + 63) / 64, 0);
}

ColumnData ColumnData::Encode(const std::vector<Row>& rows, size_t col) {
  ColumnData out;
  out.size_ = rows.size();

  bool has_bool = false, has_int = false, has_double = false;
  bool has_string = false;
  size_t nulls = 0;
  for (const Row& row : rows) {
    switch (row[col].type()) {
      case ValueType::kNull:
        ++nulls;
        break;
      case ValueType::kBool:
        has_bool = true;
        break;
      case ValueType::kInt:
        has_int = true;
        break;
      case ValueType::kDouble:
        has_double = true;
        break;
      case ValueType::kString:
        has_string = true;
        break;
    }
  }
  int kinds = static_cast<int>(has_bool) + static_cast<int>(has_int) +
              static_cast<int>(has_double) + static_cast<int>(has_string);
  if (kinds > 1) {
    out.tag_ = ColumnTag::kMixed;
  } else if (has_bool) {
    out.tag_ = ColumnTag::kBool;
  } else if (has_double) {
    out.tag_ = ColumnTag::kDouble;
  } else if (has_string) {
    out.tag_ = ColumnTag::kString;
  } else {
    out.tag_ = ColumnTag::kInt;  // pure int, or all-null/empty
  }

  out.null_count_ = nulls;
  if (nulls > 0) out.InitValidity();
  switch (out.tag_) {
    case ColumnTag::kInt:
      out.ints_.resize(rows.size(), 0);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (const int64_t* v = rows[i][col].TryInt()) {
          out.ints_[i] = *v;
          if (nulls > 0) out.SetValid(i);
        }
      }
      break;
    case ColumnTag::kDouble:
      out.doubles_.resize(rows.size(), 0.0);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (const double* v = rows[i][col].TryDouble()) {
          out.doubles_[i] = *v;
          if (std::isnan(*v)) out.has_nan_ = true;
          if (nulls > 0) out.SetValid(i);
        }
      }
      break;
    case ColumnTag::kBool:
      out.bools_.resize(rows.size(), 0);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (const bool* v = rows[i][col].TryBool()) {
          out.bools_[i] = *v ? 1 : 0;
          if (nulls > 0) out.SetValid(i);
        }
      }
      break;
    case ColumnTag::kString: {
      std::vector<std::string> dict;
      dict.reserve(rows.size() - nulls);
      for (const Row& row : rows) {
        if (const std::string* s = row[col].TryString()) dict.push_back(*s);
      }
      std::sort(dict.begin(), dict.end());
      dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
      std::unordered_map<std::string_view, uint32_t> code_of;
      code_of.reserve(dict.size());
      for (size_t c = 0; c < dict.size(); ++c) {
        code_of.emplace(dict[c], static_cast<uint32_t>(c));
      }
      out.codes_.resize(rows.size(), 0);
      for (size_t i = 0; i < rows.size(); ++i) {
        if (const std::string* s = rows[i][col].TryString()) {
          out.codes_[i] = code_of.find(*s)->second;
          if (nulls > 0) out.SetValid(i);
        }
      }
      out.dict_ = std::make_shared<const StringDict>(std::move(dict));
      break;
    }
    case ColumnTag::kMixed:
      out.mixed_.reserve(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        out.mixed_.push_back(rows[i][col]);
        if (nulls > 0 && !rows[i][col].is_null()) out.SetValid(i);
      }
      break;
  }
  return out;
}

ColumnData ColumnData::FromInts(std::vector<int64_t> values) {
  ColumnData out;
  out.tag_ = ColumnTag::kInt;
  out.size_ = values.size();
  out.ints_ = std::move(values);
  return out;
}

ColumnData ColumnData::Gather(const ColumnData& src,
                              const std::vector<uint32_t>& indices) {
  ColumnData out;
  out.tag_ = src.tag_;
  out.size_ = indices.size();
  out.dict_ = src.dict_;
  out.has_nan_ = src.has_nan_;
  size_t nulls = 0;
  if (src.has_nulls()) {
    out.InitValidity();
    for (size_t k = 0; k < indices.size(); ++k) {
      if (src.IsNull(indices[k])) {
        ++nulls;
      } else {
        out.SetValid(k);
      }
    }
    if (nulls == 0) out.validity_.clear();
  }
  out.null_count_ = nulls;
  switch (src.tag_) {
    case ColumnTag::kInt:
      out.ints_.resize(indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        out.ints_[k] = src.ints_[indices[k]];
      }
      break;
    case ColumnTag::kDouble:
      out.doubles_.resize(indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        out.doubles_[k] = src.doubles_[indices[k]];
      }
      break;
    case ColumnTag::kBool:
      out.bools_.resize(indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        out.bools_[k] = src.bools_[indices[k]];
      }
      break;
    case ColumnTag::kString:
      out.codes_.resize(indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        out.codes_[k] = src.codes_[indices[k]];
      }
      break;
    case ColumnTag::kMixed:
      out.mixed_.reserve(indices.size());
      for (uint32_t i : indices) out.mixed_.push_back(src.mixed_[i]);
      break;
  }
  return out;
}

Value ColumnData::Get(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (tag_) {
    case ColumnTag::kInt:
      return Value::Int(ints_[i]);
    case ColumnTag::kDouble:
      return Value::Double(doubles_[i]);
    case ColumnTag::kBool:
      return Value::Bool(bools_[i] != 0);
    case ColumnTag::kString:
      return Value::String(dict_->At(codes_[i]));
    case ColumnTag::kMixed:
      return mixed_[i];
  }
  return Value::Null();
}

bool FastKeyable(const ColumnData& column) {
  switch (column.tag()) {
    case ColumnTag::kInt:
    case ColumnTag::kBool:
    case ColumnTag::kString:
      return true;
    case ColumnTag::kDouble:
      return !column.has_nan();
    case ColumnTag::kMixed:
      return false;
  }
  return false;
}

bool BuildPackedKeys(const std::vector<ColumnData>& columns,
                     const std::vector<int>& key_cols, size_t num_rows,
                     std::vector<uint64_t>* out) {
  if (num_rows >= 0xffffffffull) return false;
  if (key_cols.size() > 63) return false;
  for (int c : key_cols) {
    if (!FastKeyable(columns[static_cast<size_t>(c)])) return false;
  }
  size_t width = key_cols.size() + 1;
  out->assign(num_rows * width, 0);
  for (size_t j = 0; j < key_cols.size(); ++j) {
    const ColumnData& col = columns[static_cast<size_t>(key_cols[j])];
    uint64_t* word = out->data() + j;
    uint64_t* nulls = out->data() + key_cols.size();
    switch (col.tag()) {
      case ColumnTag::kInt: {
        const int64_t* v = col.ints();
        for (size_t i = 0; i < num_rows; ++i, word += width) {
          *word = static_cast<uint64_t>(v[i]);
        }
        break;
      }
      case ColumnTag::kDouble: {
        const double* v = col.doubles();
        for (size_t i = 0; i < num_rows; ++i, word += width) {
          double d = v[i] == 0.0 ? 0.0 : v[i];  // -0.0 == +0.0
          *word = std::bit_cast<uint64_t>(d);
        }
        break;
      }
      case ColumnTag::kBool: {
        const uint8_t* v = col.bools();
        for (size_t i = 0; i < num_rows; ++i, word += width) {
          *word = v[i];
        }
        break;
      }
      case ColumnTag::kString: {
        const uint32_t* v = col.codes();
        for (size_t i = 0; i < num_rows; ++i, word += width) {
          *word = v[i];
        }
        break;
      }
      case ColumnTag::kMixed:
        return false;  // unreachable: rejected by FastKeyable above
    }
    if (col.has_nulls()) {
      word = out->data() + j;
      for (size_t i = 0; i < num_rows; ++i, word += width, nulls += width) {
        if (col.IsNull(i)) {
          *word = 0;
          *nulls |= uint64_t{1} << j;
        }
      }
    }
  }
  return true;
}

PackedKeyMap::PackedKeyMap(size_t width, size_t expected) : width_(width) {
  size_t cap = 16;
  while (cap < expected * 2) cap *= 2;
  slots_.assign(cap, kEmptySlot);
  mask_ = cap - 1;
  arena_.reserve(expected * width_);
}

uint64_t PackedKeyMap::HashKey(const uint64_t* key) const {
  uint64_t h = 0x8445d61a4e774912ULL;
  for (size_t j = 0; j < width_; ++j) h = Mix64(h ^ key[j]);
  return h;
}

uint32_t PackedKeyMap::FindOrInsert(const uint64_t* key) {
  if ((count_ + 1) * 10 >= slots_.size() * 7) Grow();
  size_t pos = HashKey(key) & mask_;
  while (true) {
    uint32_t id = slots_[pos];
    if (id == kEmptySlot) {
      uint32_t fresh = static_cast<uint32_t>(count_++);
      slots_[pos] = fresh;
      arena_.insert(arena_.end(), key, key + width_);
      return fresh;
    }
    if (std::equal(key, key + width_, &arena_[id * width_])) return id;
    pos = (pos + 1) & mask_;
  }
}

void PackedKeyMap::Grow() {
  size_t cap = slots_.size() * 2;
  slots_.assign(cap, kEmptySlot);
  mask_ = cap - 1;
  for (uint32_t id = 0; id < count_; ++id) {
    size_t pos = HashKey(&arena_[id * width_]) & mask_;
    while (slots_[pos] != kEmptySlot) pos = (pos + 1) & mask_;
    slots_[pos] = id;
  }
}

}  // namespace periodk
