// Physical temporal operators over PERIODENC-encoded relations
// (multiset relations whose last two columns are interval endpoints):
//
//  * multiset coalescing C (paper Def 8.2) -- both a native sweep
//    implementation and a "SQL-style" implementation built from analytic
//    window functions (the form the paper's middleware emits, Sec. 9);
//  * the split operator N_G (paper Def 8.3);
//  * split fused with aggregation and pre-aggregation (the key
//    optimization of Sec. 9 responsible for the Table 3 aggregation
//    speedups);
//  * the timeslice operator.
#ifndef PERIODK_ENGINE_TEMPORAL_OPS_H_
#define PERIODK_ENGINE_TEMPORAL_OPS_H_

#include <vector>

#include "common/status.h"
#include "engine/agg.h"
#include "engine/executor.h"
#include "engine/expr.h"
#include "engine/relation.h"
#include "ra/plan.h"
#include "temporal/interval.h"

namespace periodk {

/// Native multiset coalescing: hash-groups rows by their non-temporal
/// prefix, then sweeps interval endpoints per group counting open
/// intervals, emitting `count` duplicates per maximal constant-count
/// interval.  O(n log n) from the per-group endpoint sort; this is the
/// "inside the database kernel" implementation the paper proposes.
/// With a pool in `ctx` the per-group sweeps fan out to workers.
Relation CoalesceNative(const Relation& input, const OpContext& ctx = {});

/// SQL-style multiset coalescing via analytic window functions,
/// mirroring the rewriting the paper's middleware ships to the backend
/// (count open intervals per time point with a RANGE running sum,
/// detect changepoints with LAG, close intervals with LEAD, keep
/// maximal intervals with a filter).  Several sort passes, like the
/// 2-7 sorting steps the paper observes across DBMSs.  Both coalesce
/// implementations drop rows with an empty validity interval
/// (begin >= end, annotation 0 everywhere) through the same decoding
/// helper, so they cannot diverge on degenerate rows.
Relation CoalesceWindow(const Relation& input);

/// Dispatches on the requested implementation.
Relation CoalesceRelation(const Relation& input, CoalesceImpl impl,
                          const OpContext& ctx = {});

/// N_G(left, right) (Def 8.3): splits every interval of `left` at all
/// endpoint time points of G-group-mates in left UNION right.  Output
/// fragments cover exactly the input intervals; any two output
/// fragments of the same group are equal or disjoint.
Relation SplitRelation(const Relation& left, const Relation& right,
                       const std::vector<int>& group_cols);

/// Split + aggregation in one operator, with pre-aggregation: input is
/// first aggregated per (group, begin, end), then a per-group endpoint
/// sweep maintains running aggregate state and emits one row
/// (group..., aggs..., frag_begin, frag_end) per elementary fragment.
/// With `gap_rows`, fragments covering the whole `domain` are emitted,
/// including empty gaps (count = 0, sum/avg/min/max = NULL): for global
/// aggregation this is the fused form of REWR's union-with-neutral-tuple
/// rule that fixes the AG bug; for grouped aggregation it yields
/// Teradata-style per-observed-group gaps (used by that baseline only --
/// snapshot semantics has no gap rows for groups).
/// `pre_aggregate = false` disables the pre-aggregation optimization
/// (for the ablation benchmark): the sweep then treats every input row
/// as its own partial.  With a pool in `ctx` the per-group endpoint
/// sweeps fan out to workers.  Running integer sums are kept in 128-bit
/// arithmetic: a fragment whose sum fits int64 finalizes as that exact
/// integer even through transient overflow, and one that does not
/// widens to the double sum — so aggregating endpoint-magnitude values
/// (a TimeDomain touching INT64_MIN/INT64_MAX) is defined behavior.
Relation SplitAggregateRelation(const Relation& input,
                                const std::vector<int>& group_cols,
                                const std::vector<AggExpr>& aggs,
                                bool gap_rows, const TimeDomain& domain,
                                bool pre_aggregate = true,
                                const OpContext& ctx = {});

/// tau_T over an encoded relation: rows whose interval contains t, with
/// the two temporal columns dropped.
Relation TimesliceEncoded(const Relation& input, TimePoint t);

/// tau_T with explicit endpoint columns (the generalized kTimeslice
/// shape): rows with input[begin_col] <= t < input[end_col], those two
/// columns dropped and the rest kept in order.
Relation TimesliceEncodedAt(const Relation& input, TimePoint t,
                            int begin_col, int end_col);

/// Thrown by SplitRelation when a SplitBudgetScope is active and the
/// number of materialized fragments exceeds the budget.  The alignment
/// baseline materializes per-tuple fragments for aggregation (its split
/// is not fused), which explodes on large groups -- the benchmarks
/// report such runs as timeouts, mirroring the paper's "TO (2h)"
/// entries for PG-Nat.
class SplitBudgetExceeded : public EngineError {
 public:
  SplitBudgetExceeded() : EngineError("split fragment budget exceeded") {}
};

/// RAII guard bounding the total number of fragments SplitRelation may
/// materialize on this thread while the scope is alive.
class SplitBudgetScope {
 public:
  explicit SplitBudgetScope(int64_t max_fragments);
  ~SplitBudgetScope();
  SplitBudgetScope(const SplitBudgetScope&) = delete;
  SplitBudgetScope& operator=(const SplitBudgetScope&) = delete;

 private:
  int64_t previous_;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_TEMPORAL_OPS_H_
