// Scalar expression trees evaluated over rows.  Column references are
// *resolved indices* (the SQL binder translates names to indices), so
// evaluation needs no catalog.  Comparison and boolean operators follow
// SQL three-valued logic; a predicate holds iff it evaluates to
// Bool(true).
#ifndef PERIODK_ENGINE_EXPR_H_
#define PERIODK_ENGINE_EXPR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace periodk {

enum class ExprKind {
  kColumn,
  kLiteral,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kArith,
  kNeg,
  kFunc,
  kCase,     // children: [when1, then1, ..., whenN, thenN, else]
  kIn,       // children: [needle, candidate1, ..., candidateN]
  kBetween,  // children: [expr, lo, hi]
  kIsNull,   // children: [expr]; `negated` for IS NOT NULL
  kLike,     // children: [expr, pattern]; `negated` for NOT LIKE
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

/// Scalar functions.  kYear interprets an integer day number in the
/// synthetic 365-day calendar used by the data generators
/// (day 0 = year base, year(d) = base_year + d / 365).
enum class ScalarFunc { kLeast, kGreatest, kAbs, kYear, kIfNull };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  ExprKind kind = ExprKind::kLiteral;
  int column = -1;           // kColumn
  std::string display;       // kColumn: name for printing
  Value literal;             // kLiteral
  CompareOp cmp = CompareOp::kEq;
  ArithOp arith = ArithOp::kAdd;
  ScalarFunc func = ScalarFunc::kAbs;
  bool negated = false;      // kIsNull / kIn / kBetween / kLike
  std::vector<ExprPtr> children;

  /// Evaluates against a row; throws EngineError on structural errors.
  Value Eval(const Row& row) const;

  /// True iff Eval returns Bool(true) (SQL predicate semantics: NULL and
  /// false both reject).
  bool EvalBool(const Row& row) const;

  std::string ToString() const;
};

// --- Factory helpers (the only way to build expressions). ------------------

ExprPtr Col(int index, std::string display = "");
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitStr(std::string v);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
/// Conjunction of a list; empty list yields literal TRUE.
ExprPtr AndAll(std::vector<ExprPtr> conjuncts);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Neg(ExprPtr e);
ExprPtr Func(ScalarFunc f, std::vector<ExprPtr> args);
/// CASE WHEN c1 THEN v1 ... ELSE e END; pass nullptr else for NULL.
ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr);
ExprPtr InList(ExprPtr needle, std::vector<ExprPtr> candidates,
               bool negated = false);
ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi, bool negated = false);
ExprPtr IsNull(ExprPtr e, bool negated = false);
ExprPtr Like(ExprPtr e, ExprPtr pattern, bool negated = false);

// --- Structural helpers used by the binder and the rewriter. ---------------

/// Clones `e` applying `fn` to every column index.
ExprPtr RemapColumns(const ExprPtr& e, const std::function<int(int)>& fn);

/// Clones `e` adding `offset` to every column index.
ExprPtr ShiftColumns(const ExprPtr& e, int offset);

/// Appends all referenced column indices to `out`.
void CollectColumns(const ExprPtr& e, std::vector<int>* out);

/// Structural equality ignoring display names (used by the SQL binder to
/// match SELECT expressions against GROUP BY expressions).
bool ExprStructurallyEqual(const ExprPtr& a, const ExprPtr& b);

// Join-predicate decomposition (equi-keys, overlap conjunct, residual)
// lives in ra/join_analysis.h; MakeJoin runs it at plan build time.

}  // namespace periodk

#endif  // PERIODK_ENGINE_EXPR_H_
