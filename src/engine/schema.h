// Relation schemas: ordered lists of (optional qualifier, name) columns.
// The engine is dynamically typed, so schemas carry names only; the SQL
// binder resolves qualified references (alias.column) against them.
#ifndef PERIODK_ENGINE_SCHEMA_H_
#define PERIODK_ENGINE_SCHEMA_H_

#include <string>
#include <vector>

namespace periodk {

struct Column {
  std::string table;  // qualifier (table alias); may be empty
  std::string name;

  Column() = default;
  Column(std::string t, std::string n)
      : table(std::move(t)), name(std::move(n)) {}
  explicit Column(std::string n) : name(std::move(n)) {}

  /// "name" or "table.name".
  std::string ToString() const {
    return table.empty() ? name : table + "." + name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  /// Convenience: unqualified column names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void Append(Column column) { columns_.push_back(std::move(column)); }

  /// Resolves an (optionally qualified) column reference.  Returns the
  /// index of the unique match, -1 if there is no match, or -2 if the
  /// reference is ambiguous.  Matching is case-insensitive.
  int Find(const std::string& qualifier, const std::string& name) const;

  /// Concatenation (join output schema).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Schema with every qualifier replaced by `alias` (subquery/table
  /// aliasing).
  Schema WithQualifier(const std::string& alias) const;

  /// Schema consisting of the first `n` columns.
  Schema Prefix(size_t n) const;

  /// "(a, b.c, ...)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_SCHEMA_H_
