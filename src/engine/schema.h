// Relation schemas: ordered lists of (optional qualifier, name) columns.
// The engine is dynamically typed, so schemas carry names only; the SQL
// binder resolves qualified references (alias.column) against them.
#ifndef PERIODK_ENGINE_SCHEMA_H_
#define PERIODK_ENGINE_SCHEMA_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace periodk {

struct Column {
  std::string table;  // qualifier (table alias); may be empty
  std::string name;

  Column() = default;
  Column(std::string t, std::string n)
      : table(std::move(t)), name(std::move(n)) {}
  explicit Column(std::string n) : name(std::move(n)) {}

  /// "name" or "table.name".
  std::string ToString() const {
    return table.empty() ? name : table + "." + name;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  // Copies and moves take the column list but not the lazily built
  // name-lookup index: each Schema object owns a private index, so two
  // objects never share one (a shared index would have to stay in sync
  // across independent Append calls).
  Schema(const Schema& other) : columns_(other.columns_) {}
  Schema(Schema&& other) noexcept : columns_(std::move(other.columns_)) {}
  Schema& operator=(const Schema& other) {
    if (this != &other) {
      columns_ = other.columns_;
      InvalidateIndex();
    }
    return *this;
  }
  Schema& operator=(Schema&& other) noexcept {
    if (this != &other) {
      columns_ = std::move(other.columns_);
      InvalidateIndex();
    }
    return *this;
  }

  /// Convenience: unqualified column names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void Append(Column column) {
    columns_.push_back(std::move(column));
    InvalidateIndex();
  }

  /// Resolves an (optionally qualified) column reference.  Returns the
  /// index of the unique match, -1 if there is no match, or -2 if the
  /// reference is ambiguous.  Matching is case-insensitive.  O(1)
  /// expected: candidates come from a lazily built name->index map
  /// (the binder calls this per column reference, and some row-at-a-
  /// time paths per row).
  int Find(const std::string& qualifier, const std::string& name) const;

  /// Concatenation (join output schema).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Schema with every qualifier replaced by `alias` (subquery/table
  /// aliasing).
  Schema WithQualifier(const std::string& alias) const;

  /// Schema consisting of the first `n` columns.
  Schema Prefix(size_t n) const;

  /// "(a, b.c, ...)".
  std::string ToString() const;

 private:
  // Lazy lookup index: lowercase name -> candidate column positions.
  // Built at most once per Schema object (std::call_once, so concurrent
  // Find calls on a shared const Schema -- catalog schemas are read
  // from many query threads -- are race-free); any mutation swaps in a
  // fresh unbuilt index.
  struct NameIndex {
    std::once_flag once;
    std::unordered_map<std::string, std::vector<int>> by_name;
  };
  const NameIndex& EnsureIndex() const;
  void InvalidateIndex() { index_ = std::make_shared<NameIndex>(); }

  std::vector<Column> columns_;
  mutable std::shared_ptr<NameIndex> index_ = std::make_shared<NameIndex>();
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_SCHEMA_H_
