#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "engine/interval_join.h"
#include "engine/temporal_ops.h"
#include "engine/timeline_index.h"
#include "ra/cost_model.h"
#include "stats/table_stats.h"

namespace periodk {

const Relation& Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw EngineError(StrCat("unknown table: ", name));
  }
  return *it->second;
}

std::shared_ptr<const Relation> Catalog::GetShared(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw EngineError(StrCat("unknown table: ", name));
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) names.push_back(name);
  return names;
}

std::shared_ptr<const TimelineIndex> Catalog::GetIndex(
    const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second;
}

std::shared_ptr<const TableStats> Catalog::GetStats(
    const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : it->second;
}

namespace {

// Execution passes relations between operators through shared handles
// so that leaves need no materialization: scans share the catalog's
// relation handle and constants share the plan's, while every computed
// intermediate is uniquely owned.  Operators that only read take a
// const reference; operators that want to consume their input call
// Materialize, which moves from a uniquely-owned intermediate and
// copies only when the input is a leaf handle or still shared.
using RelHandle = std::shared_ptr<const Relation>;

Relation Materialize(RelHandle h) {
  if (h.use_count() == 1) {
    // Sole owner of a computed intermediate (created via Own below, so
    // the underlying object is non-const): steal it.  A memoized handle
    // reaches use_count 1 only after its last consumer claimed it, and
    // scan/constant handles are co-owned by the catalog/plan, so the
    // steal never races an outstanding reader.
    return std::move(*std::const_pointer_cast<Relation>(h));
  }
  return *h;
}

Relation ExecSelect(const Plan& plan, RelHandle in) {
  Relation out(plan.schema);
  if (in.use_count() == 1) {
    Relation input = Materialize(std::move(in));
    for (Row& row : input.mutable_rows()) {
      if (plan.predicate->EvalBool(row)) out.AddRow(std::move(row));
    }
  } else {
    for (const Row& row : in->rows()) {
      if (plan.predicate->EvalBool(row)) out.AddRow(row);
    }
  }
  return out;
}

Relation ExecProject(const Plan& plan, const Relation& input) {
  Relation out(plan.schema);
  out.Reserve(input.size());
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(plan.exprs.size());
    for (const ExprPtr& e : plan.exprs) projected.push_back(e->Eval(row));
    out.AddRow(std::move(projected));
  }
  return out;
}

Relation ExecHashJoin(const Plan& plan, const Relation& left,
                      const Relation& right) {
  const std::vector<std::pair<int, int>>& keys = plan.join.equi_keys;
  const ExprPtr& residual = plan.join.residual;
  Relation out(plan.schema);
  // Build on the right input.
  std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> build;
  build.reserve(right.size());
  for (const Row& row : right.rows()) {
    Row key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const auto& [l, r] : keys) {
      const Value& v = row[static_cast<size_t>(r)];
      if (v.is_null()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;  // NULL never equi-joins
    build[key].push_back(&row);
  }
  for (const Row& lrow : left.rows()) {
    Row key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const auto& [l, r] : keys) {
      const Value& v = lrow[static_cast<size_t>(l)];
      if (v.is_null()) has_null = true;
      key.push_back(v);
    }
    if (has_null) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (const Row* rrow : it->second) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow->begin(), rrow->end());
      if (residual == nullptr || residual->EvalBool(combined)) {
        out.AddRow(std::move(combined));
      }
    }
  }
  return out;
}

Relation ExecJoin(const Plan& plan, const Relation& left,
                  const Relation& right, const OpContext& ctx) {
  // The cost model's plan-level hint wins over the structural dispatch
  // (it is part of the plan shape: the sweep and the nested loop emit
  // rows in different orders, so this substitution is never silent).
  if (plan.join_strategy == JoinStrategy::kNestedLoop) {
    return NestedLoopJoin(plan, left, right);
  }
  // Physical join selection from the build-time predicate analysis:
  // interval sweep when an overlap conjunct was recognized (with the
  // equi-keys as partition keys), hash join on plain equi-keys, nested
  // loop only for genuinely opaque predicates.
  if (plan.join.overlap.has_value()) {
    return IntervalOverlapJoin(plan, left, right, ctx);
  }
  if (!plan.join.equi_keys.empty()) {
    // Execution-time cost gate: for tiny inputs the hash build costs
    // more than |L|*|R| predicate evaluations.  The demotion is
    // row-identical — the hash join probes left in order and chains
    // right matches in right order, exactly the nested loop's emission
    // order — so it is safe without a plan-level marker.
    if (ctx.use_cost_model &&
        static_cast<int64_t>(left.size()) *
                static_cast<int64_t>(right.size()) <=
            kTinyJoinProduct) {
      if (ctx.stats != nullptr) ++ctx.stats->cost_nl_joins;
      return NestedLoopJoin(plan, left, right);
    }
    return ExecHashJoin(plan, left, right);
  }
  return NestedLoopJoin(plan, left, right);
}

// periodk-lint: allow(relation-by-value): left's rows are adopted
Relation ExecUnionAll(const Plan& plan, Relation left, const Relation& right) {
  Relation out(plan.schema, std::move(left.mutable_rows()));
  out.Reserve(out.size() + right.size());
  for (const Row& row : right.rows()) out.AddRow(row);
  return out;
}

// periodk-lint: allow(relation-by-value): left is consumed in place
Relation ExecExceptAll(const Plan& plan, Relation left,
                       const Relation& right) {
  // Bag difference: each right row cancels one left duplicate.
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(right.size());
  for (const Row& row : right.rows()) ++counts[row];
  Relation out(plan.schema);
  for (Row& row : left.mutable_rows()) {
    auto it = counts.find(row);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.AddRow(std::move(row));
  }
  return out;
}

// periodk-lint: allow(relation-by-value): left is consumed in place
Relation ExecAntiJoin(const Plan& plan, Relation left, const Relation& right) {
  std::unordered_map<Row, bool, RowHash, RowEq> present;
  present.reserve(right.size());
  for (const Row& row : right.rows()) present.try_emplace(row, true);
  Relation out(plan.schema);
  for (Row& row : left.mutable_rows()) {
    if (present.count(row) == 0) out.AddRow(std::move(row));
  }
  return out;
}

struct GroupState {
  int64_t star_count = 0;
  std::vector<AggState> states;
};

/// Hash-aggregation groups in *first-appearance order*: keys[g] and
/// groups[g] describe the g-th distinct key encountered.  Both the row
/// path and the columnar packed-key path fill this structure, so their
/// outputs are row-for-row identical regardless of which lane ran.
struct GroupTable {
  std::vector<Row> keys;
  std::vector<GroupState> groups;
};

/// Accumulates rows [begin, end) of the input into `table`.
void AccumulateGroups(const Plan& plan, const Relation& input, int64_t begin,
                      int64_t end, GroupTable& table) {
  const size_t num_aggs = plan.aggs.size();
  // Columnar inputs whose group keys and aggregate arguments are all
  // plain column references skip the row view entirely; when every key
  // column is additionally fast-keyable, grouping runs on packed uint64
  // key words (dictionary codes for strings) instead of hashing Values.
  // periodk-lint: columnar-lane-begin(group-accumulate)
  if (input.is_columnar()) {
    std::vector<int> key_cols;
    std::vector<int> agg_cols;
    key_cols.reserve(plan.exprs.size());
    agg_cols.reserve(num_aggs);
    bool fast = true;
    for (const ExprPtr& e : plan.exprs) {
      if (e->kind != ExprKind::kColumn) {
        fast = false;
        break;
      }
      key_cols.push_back(e->column);
    }
    for (size_t a = 0; fast && a < num_aggs; ++a) {
      if (plan.aggs[a].func == AggFunc::kCountStar) {
        agg_cols.push_back(-1);
        continue;
      }
      const ExprPtr& arg = plan.aggs[a].arg;
      if (arg == nullptr || arg->kind != ExprKind::kColumn) {
        fast = false;
        break;
      }
      agg_cols.push_back(arg->column);
    }
    if (fast) {
      const std::vector<ColumnData>& cols = input.columns();
      auto accumulate = [&](GroupState& g, size_t r) {
        g.star_count += 1;
        for (size_t a = 0; a < num_aggs; ++a) {
          if (agg_cols[a] < 0) continue;
          g.states[a].AccumulateColumn(cols[static_cast<size_t>(agg_cols[a])],
                                       r);
        }
      };
      std::vector<uint64_t> packed;
      if (BuildPackedKeys(cols, key_cols, input.size(), &packed)) {
        const size_t width = key_cols.size() + 1;
        PackedKeyMap map(width, static_cast<size_t>(end - begin));
        std::vector<uint32_t> rep;  // first input row of each group
        for (int64_t i = begin; i < end; ++i) {
          size_t r = static_cast<size_t>(i);
          uint32_t gid = map.FindOrInsert(&packed[r * width]);
          if (gid == table.groups.size()) {
            rep.push_back(static_cast<uint32_t>(r));
            table.groups.emplace_back();
            table.groups.back().states.resize(num_aggs);
          }
          accumulate(table.groups[gid], r);
        }
        table.keys.reserve(rep.size());
        for (uint32_t r : rep) {
          Row key;
          key.reserve(key_cols.size());
          for (int c : key_cols) {
            key.push_back(cols[static_cast<size_t>(c)].Get(r));
          }
          table.keys.push_back(std::move(key));
        }
        return;
      }
      // Mixed/NaN key columns: Value keys, still straight off the
      // columns and still in first-appearance order.
      std::unordered_map<Row, size_t, RowHash, RowEq> gid_of;
      for (int64_t i = begin; i < end; ++i) {
        size_t r = static_cast<size_t>(i);
        Row key;
        key.reserve(key_cols.size());
        for (int c : key_cols) {
          key.push_back(cols[static_cast<size_t>(c)].Get(r));
        }
        auto [it, inserted] = gid_of.try_emplace(std::move(key),
                                                 table.groups.size());
        if (inserted) {
          table.keys.push_back(it->first);
          table.groups.emplace_back();
          table.groups.back().states.resize(num_aggs);
        }
        accumulate(table.groups[it->second], r);
      }
      return;
    }
  }
  // periodk-lint: columnar-lane-end(group-accumulate)
  std::unordered_map<Row, size_t, RowHash, RowEq> gid_of;
  const std::vector<Row>& rows = input.rows();
  for (int64_t i = begin; i < end; ++i) {
    const Row& row = rows[static_cast<size_t>(i)];
    Row key;
    key.reserve(plan.exprs.size());
    for (const ExprPtr& e : plan.exprs) key.push_back(e->Eval(row));
    auto [it, inserted] = gid_of.try_emplace(std::move(key),
                                             table.groups.size());
    if (inserted) {
      table.keys.push_back(it->first);
      table.groups.emplace_back();
      table.groups.back().states.resize(num_aggs);
    }
    GroupState& g = table.groups[it->second];
    g.star_count += 1;
    for (size_t i2 = 0; i2 < num_aggs; ++i2) {
      if (plan.aggs[i2].func == AggFunc::kCountStar) continue;
      g.states[i2].Accumulate(plan.aggs[i2].arg->Eval(row));
    }
  }
}

Relation ExecAggregate(const Plan& plan, const Relation& input,
                       const OpContext& ctx) {
  // Partition-parallel hash aggregation: each chunk of the input builds
  // a private group table, merged in chunk order at the join point
  // (AggState partials merge exactly — the same machinery
  // pre-aggregation uses).  The single-chunk path is the sequential
  // operator, bit for bit.
  auto ranges = PlanChunks(ctx.num_threads(static_cast<int64_t>(input.size())),
                           static_cast<int64_t>(input.size()),
                           /*min_grain=*/4096);
  GroupTable table;
  if (ranges.size() <= 1) {
    AccumulateGroups(plan, input, 0, static_cast<int64_t>(input.size()),
                     table);
  } else {
    std::vector<GroupTable> tables(ranges.size());
    std::vector<ExecStats> chunk_stats(ranges.size());
    RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
      AccumulateGroups(plan, input, b, e, tables[c]);
      chunk_stats[c].parallel_tasks = 1;
    });
    table = std::move(tables[0]);
    std::unordered_map<Row, size_t, RowHash, RowEq> gid_of;
    gid_of.reserve(table.keys.size());
    for (size_t g = 0; g < table.keys.size(); ++g) {
      gid_of.emplace(table.keys[g], g);
    }
    for (size_t c = 1; c < tables.size(); ++c) {
      GroupTable& src = tables[c];
      for (size_t g = 0; g < src.keys.size(); ++g) {
        auto [it, inserted] = gid_of.try_emplace(std::move(src.keys[g]),
                                                 table.groups.size());
        if (inserted) {
          table.keys.push_back(it->first);
          table.groups.push_back(std::move(src.groups[g]));
          continue;
        }
        GroupState& dst = table.groups[it->second];
        dst.star_count += src.groups[g].star_count;
        // Both sides sized their states on group creation, so this is
        // a straight element-wise merge (empty only when aggs is empty).
        for (size_t i = 0; i < dst.states.size(); ++i) {
          dst.states[i].Merge(src.groups[g].states[i]);
        }
      }
    }
    if (ctx.stats != nullptr) {
      for (const ExecStats& s : chunk_stats) ctx.stats->Merge(s);
    }
  }
  if (plan.exprs.empty() && table.groups.empty()) {
    table.keys.emplace_back();
    table.groups.emplace_back();
    table.groups.back().states.resize(plan.aggs.size());
  }
  Relation out(plan.schema);
  out.Reserve(table.groups.size());
  for (size_t g = 0; g < table.groups.size(); ++g) {
    Row row = std::move(table.keys[g]);
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      row.push_back(
          table.groups[g].states[i].Finalize(plan.aggs[i].func,
                                             table.groups[g].star_count));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

// periodk-lint: allow(relation-by-value): input is consumed in place
Relation ExecDistinct(const Plan& plan, Relation input) {
  std::unordered_map<Row, bool, RowHash, RowEq> seen;
  seen.reserve(input.size());
  Relation out(plan.schema);
  for (Row& row : input.mutable_rows()) {
    auto [it, inserted] = seen.try_emplace(row, true);
    if (inserted) out.AddRow(std::move(row));
  }
  return out;
}

// periodk-lint: allow(relation-by-value): input is sorted in place
Relation ExecSort(const Plan& plan, Relation input) {
  std::stable_sort(
      input.mutable_rows().begin(), input.mutable_rows().end(),
      [&](const Row& a, const Row& b) {
        for (const SortKey& k : plan.sort_keys) {
          int c = a[static_cast<size_t>(k.column)].Compare(
              b[static_cast<size_t>(k.column)]);
          if (c != 0) return k.ascending ? c < 0 : c > 0;
        }
        return false;
      });
  return Relation(plan.schema, std::move(input.mutable_rows()));
}

// One plan execution.  Plans are DAGs (REWR shares subplans), so the
// context pre-counts how many consumers each node has and memoizes the
// handle of every shared node: the node executes once, later consumers
// hit the memo.  The entry is dropped when its last consumer claims the
// handle, at which point that consumer may be the sole owner again and
// Materialize's move optimization applies — copy-on-consume happens
// only while use_count proves other consumers remain.
class ExecutionContext {
 public:
  ExecutionContext(const Catalog& catalog, ExecStats* stats, bool memoize,
                   LazyThreadPool* pool, bool use_timeline_index,
                   bool use_cost_model)
      : catalog_(catalog),
        stats_(stats),
        memoize_(memoize),
        pool_(pool),
        use_timeline_index_(use_timeline_index),
        use_cost_model_(use_cost_model) {}

  RelHandle Run(const PlanPtr& plan) {
    if (memoize_) CountConsumers(plan);
    return ExecuteNode(plan);
  }

 private:
  void CountConsumers(const PlanPtr& plan) {
    if (plan == nullptr) return;
    // Children are counted only on the node's first visit: under
    // memoization a shared parent executes once, so it requests each
    // child once regardless of how many parents it has itself.
    if (++consumers_left_[plan.get()] > 1) return;
    CountConsumers(plan->left);
    CountConsumers(plan->right);
  }

  RelHandle ExecuteNode(const PlanPtr& plan) {
    if (!memoize_) return Compute(plan);
    int& left = consumers_left_.at(plan.get());
    auto it = memo_.find(plan.get());
    if (it != memo_.end()) {
      if (stats_ != nullptr) ++stats_->memo_hits;
      RelHandle h = it->second;
      // The last consumer drops the memo entry; its handle may then be
      // uniquely owned again, re-enabling Materialize's move.
      if (--left == 0) memo_.erase(it);
      return h;
    }
    if (left <= 1) return Compute(plan);  // sole consumer: no memo entry
    RelHandle h = Compute(plan);
    memo_.emplace(plan.get(), h);
    --left;
    return h;
  }

  /// Wraps a freshly computed intermediate in a uniquely-owned handle.
  // periodk-lint: allow(relation-by-value): ownership sink, callers move
  RelHandle Own(Relation relation) {
    if (stats_ != nullptr) {
      stats_->rows_materialized += static_cast<int64_t>(relation.size());
    }
    return std::make_shared<Relation>(std::move(relation));
  }

  OpContext Ctx() const { return OpContext{pool_, stats_, use_cost_model_}; }

  /// Derives an interval-join sweep filter for one side of an overlap
  /// join: when that side is a base-table scan with a current
  /// TimelineIndex over exactly the overlap endpoint columns, rows
  /// whose interval misses the opposite side's combined endpoint span
  /// cannot satisfy the overlap conjunct against *any* opposite row —
  /// fast lane or slow lane — and are excluded from the sweep.
  /// Returns true and fills `keep` (one byte per source row) when
  /// pruning applies; false leaves the join untouched.
  bool ComputeJoinCandidates(const Plan& join_plan, bool left_side,
                             const RelHandle& self, const Relation& other,
                             std::vector<char>& keep) {
    const PlanPtr& child = left_side ? join_plan.left : join_plan.right;
    if (child->kind != PlanKind::kScan) return false;
    std::shared_ptr<const TimelineIndex> index =
        catalog_.GetIndex(child->table);
    const OverlapSpec& ov = *join_plan.join.overlap;
    int bcol = left_side ? ov.left_begin : ov.right_begin;
    int ecol = left_side ? ov.left_end : ov.right_end;
    if (index == nullptr || !index->BuiltFor(self.get()) ||
        index->begin_col() != bcol || index->end_col() != ecol) {
      return false;
    }
    // Combined span [lo, hi] of the opposite side's numeric endpoints:
    // a row [b, e) of this side matches some opposite row [ob, oe) only
    // if b < oe and ob < e, hence only if b < hi and e > lo.  Double
    // endpoints compare numerically against integers under SQL
    // semantics, so they widen the span via floor/ceil; NULL, string
    // and bool endpoints can never satisfy the strict comparisons and
    // do not contribute.
    int obcol = left_side ? ov.right_begin : ov.left_begin;
    int oecol = left_side ? ov.right_end : ov.left_end;
    constexpr double kInt64Lo = -9223372036854775808.0;  // -2^63 exactly
    constexpr double kInt64Hi = 9223372036854775808.0;   // 2^63 exactly
    bool any = false;
    TimePoint lo = 0;
    TimePoint hi = 0;
    bool give_up = false;
    auto bound = [&](const Value& v, bool round_down,
                     TimePoint* out) -> bool {
      if (v.type() == ValueType::kInt) {
        *out = v.AsInt();
        return true;
      }
      if (v.type() != ValueType::kDouble) return false;
      double d = round_down ? std::floor(v.AsDouble())
                            : std::ceil(v.AsDouble());
      if (!(d >= kInt64Lo && d < kInt64Hi)) {
        give_up = true;  // non-finite or beyond int64: skip pruning
        return false;
      }
      *out = static_cast<TimePoint>(d);
      return true;
    };
    for (const Row& row : other.rows()) {
      TimePoint b = 0;
      TimePoint e = 0;
      bool has_b = bound(row[static_cast<size_t>(obcol)], true, &b);
      bool has_e = bound(row[static_cast<size_t>(oecol)], false, &e);
      if (give_up) return false;
      if (!has_b || !has_e) continue;
      if (!any || b < lo) lo = b;
      if (!any || e > hi) hi = e;
      any = true;
    }
    keep.assign(self->size(), 0);
    if (any) {
      // AliveInRange is defined on half-open [lo, hi); a collapsed span
      // (every opposite interval empty or reversed) still matches rows
      // covering it, and those are exactly the rows alive at lo.
      std::vector<uint32_t> ids = lo < hi ? index->AliveInRange(lo, hi)
                                          : index->AliveAt(lo);
      for (uint32_t id : ids) keep[id] = 1;
    }
    if (stats_ != nullptr) {
      ++stats_->index_join_prunes;
      stats_->index_delta_events +=
          static_cast<int64_t>(index->num_delta_events());
    }
    return true;
  }

  RelHandle Compute(const PlanPtr& plan) {
    RelHandle h = ComputeImpl(plan);
    if (stats_ != nullptr) {
      // Actual output rows per node, for ExplainAnalyze's est-vs-actual
      // rendering.  Only this top-level dispatch (calling thread)
      // writes the map, never the chunk workers.
      stats_->node_rows[plan.get()] = static_cast<int64_t>(h->size());
    }
    return h;
  }

  RelHandle ComputeImpl(const PlanPtr& plan) {
    if (stats_ != nullptr) ++stats_->nodes_executed;
    switch (plan->kind) {
      case PlanKind::kScan:
        // Shares the catalog's handle: zero-copy, and the co-ownership
        // keeps use_count above 1 so Materialize never steals a base
        // table — and keeps the relation alive even if a concurrent
        // writer publishes a replacement into its source catalog.
        return catalog_.GetShared(plan->table);
      case PlanKind::kConstant:
        return plan->constant;
      case PlanKind::kSelect:
        return Own(ExecSelect(*plan, ExecuteNode(plan->left)));
      case PlanKind::kProject:
        return Own(ExecProject(*plan, *ExecuteNode(plan->left)));
      case PlanKind::kJoin: {
        RelHandle l = ExecuteNode(plan->left);
        RelHandle r = ExecuteNode(plan->right);
        if (use_timeline_index_ && plan->join.overlap.has_value() &&
            plan->join_strategy == JoinStrategy::kAuto) {
          JoinCandidates cands;
          std::vector<char> keep_l;
          std::vector<char> keep_r;
          if (ComputeJoinCandidates(*plan, /*left_side=*/true, l, *r,
                                    keep_l)) {
            cands.left = &keep_l;
          }
          if (ComputeJoinCandidates(*plan, /*left_side=*/false, r, *l,
                                    keep_r)) {
            cands.right = &keep_r;
          }
          if (cands.left != nullptr || cands.right != nullptr) {
            return Own(IntervalOverlapJoin(*plan, *l, *r, Ctx(), cands));
          }
        }
        return Own(ExecJoin(*plan, *l, *r, Ctx()));
      }
      case PlanKind::kUnionAll: {
        RelHandle l = ExecuteNode(plan->left);
        RelHandle r = ExecuteNode(plan->right);
        return Own(ExecUnionAll(*plan, Materialize(std::move(l)), *r));
      }
      case PlanKind::kExceptAll: {
        RelHandle l = ExecuteNode(plan->left);
        RelHandle r = ExecuteNode(plan->right);
        return Own(ExecExceptAll(*plan, Materialize(std::move(l)), *r));
      }
      case PlanKind::kAntiJoin: {
        RelHandle l = ExecuteNode(plan->left);
        RelHandle r = ExecuteNode(plan->right);
        return Own(ExecAntiJoin(*plan, Materialize(std::move(l)), *r));
      }
      case PlanKind::kAggregate:
        return Own(ExecAggregate(*plan, *ExecuteNode(plan->left), Ctx()));
      case PlanKind::kDistinct:
        return Own(ExecDistinct(*plan, Materialize(ExecuteNode(plan->left))));
      case PlanKind::kSort:
        return Own(ExecSort(*plan, Materialize(ExecuteNode(plan->left))));
      case PlanKind::kCoalesce:
        return Own(CoalesceRelation(*ExecuteNode(plan->left),
                                    plan->coalesce_impl, Ctx()));
      case PlanKind::kSplit: {
        RelHandle l = ExecuteNode(plan->left);
        RelHandle r = ExecuteNode(plan->right);
        return Own(SplitRelation(*l, *r, plan->split_group));
      }
      case PlanKind::kSplitAggregate:
        return Own(SplitAggregateRelation(
            *ExecuteNode(plan->left), plan->split_group, plan->aggs,
            plan->gap_rows, plan->domain, plan->pre_aggregate, Ctx()));
      case PlanKind::kTimeslice: {
        // Executing the child keeps the memo's consumer bookkeeping
        // exact and, for scans, is a zero-copy handle share anyway.
        RelHandle in = ExecuteNode(plan->left);
        auto [begin_col, end_col] = ResolveSliceColumns(*plan);
        if (use_timeline_index_ && plan->left->kind == PlanKind::kScan) {
          std::shared_ptr<const TimelineIndex> index =
              catalog_.GetIndex(plan->left->table);
          // Trust the index only if it was built from this exact
          // relation object (writers publish copy-on-write, so a stale
          // index fails the pointer check) over the same endpoint
          // columns this slice reads — trailing for the PERIODENC
          // default, or the stored positions of a non-trailing period
          // table after the generalized pushdown.
          if (index != nullptr && index->BuiltFor(in.get()) &&
              index->begin_col() == begin_col &&
              index->end_col() == end_col) {
            if (stats_ != nullptr) {
              ++stats_->index_timeslices;
              stats_->index_delta_events +=
                  static_cast<int64_t>(index->num_delta_events());
            }
            return Own(index->Timeslice(plan->slice_time));
          }
        }
        return Own(
            TimesliceEncodedAt(*in, plan->slice_time, begin_col, end_col));
      }
    }
    throw EngineError("unknown plan kind");
  }

  const Catalog& catalog_;
  ExecStats* stats_;
  bool memoize_;
  LazyThreadPool* pool_;
  bool use_timeline_index_;
  bool use_cost_model_;
  // Requests not yet served per node; nodes starting > 1 are shared.
  std::unordered_map<const Plan*, int> consumers_left_;
  // Results of shared nodes awaiting their remaining consumers.
  std::unordered_map<const Plan*, RelHandle> memo_;
};

}  // namespace

int OpContext::num_threads() const {
  return pool == nullptr ? 1 : pool->num_threads();
}

int OpContext::num_threads(int64_t work) const {
  const int n = num_threads();
  if (use_cost_model && work < kParallelMinRows) {
    if (n > 1 && stats != nullptr) ++stats->cost_gated_fanouts;
    return 1;
  }
  return n;
}

Relation GatherChunks(std::vector<Relation> outs,
                      std::vector<ExecStats> chunk_stats,
                      const OpContext& ctx) {
  Relation out = std::move(outs.front());
  for (size_t c = 1; c < outs.size(); ++c) {
    out.Reserve(out.size() + outs[c].size());
    for (Row& row : outs[c].mutable_rows()) out.AddRow(std::move(row));
  }
  if (ctx.stats != nullptr) {
    for (const ExecStats& s : chunk_stats) ctx.stats->Merge(s);
  }
  return out;
}

void ExecStats::Merge(const ExecStats& other) {
  nodes_executed += other.nodes_executed;
  memo_hits += other.memo_hits;
  rows_materialized += other.rows_materialized;
  parallel_tasks += other.parallel_tasks;
  index_timeslices += other.index_timeslices;
  index_delta_events += other.index_delta_events;
  index_join_prunes += other.index_join_prunes;
  cost_nl_joins += other.cost_nl_joins;
  cost_gated_fanouts += other.cost_gated_fanouts;
  for (const auto& [node, rows] : other.node_rows) node_rows[node] = rows;
}

std::string ExecStats::ToString() const {
  return StrCat("nodes executed: ", nodes_executed,
                ", memo hits: ", memo_hits,
                ", rows materialized: ", rows_materialized,
                ", parallel tasks: ", parallel_tasks,
                ", index timeslices: ", index_timeslices,
                ", index delta events: ", index_delta_events,
                ", index join prunes: ", index_join_prunes,
                ", cost nl joins: ", cost_nl_joins,
                ", cost gated fan-outs: ", cost_gated_fanouts);
}

Relation Execute(const PlanPtr& plan, const Catalog& catalog,
                 const ExecOptions& options, ExecStats* stats) {
  // Lazy: workers spawn only if some operator actually fans out, so
  // small (single-chunk) queries cost no thread churn even at high
  // num_threads settings.
  LazyThreadPool pool(options.num_threads);
  ExecutionContext context(catalog, stats, options.memoize,
                           options.num_threads > 1 ? &pool : nullptr,
                           options.use_timeline_index,
                           options.use_cost_model);
  return Materialize(context.Run(plan));
}

Relation Execute(const PlanPtr& plan, const Catalog& catalog,
                 ExecStats* stats, bool memoize) {
  ExecOptions options;
  options.memoize = memoize;
  return Execute(plan, catalog, options, stats);
}

}  // namespace periodk
