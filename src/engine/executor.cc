#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/status.h"
#include "common/str_util.h"
#include "engine/temporal_ops.h"

namespace periodk {

const Relation& Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw EngineError(StrCat("unknown table: ", name));
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, rel] : tables_) names.push_back(name);
  return names;
}

namespace {

Relation ExecSelect(const Plan& plan, Relation input) {
  Relation out(plan.schema);
  for (Row& row : input.mutable_rows()) {
    if (plan.predicate->EvalBool(row)) out.AddRow(std::move(row));
  }
  return out;
}

Relation ExecProject(const Plan& plan, const Relation& input) {
  Relation out(plan.schema);
  out.Reserve(input.size());
  for (const Row& row : input.rows()) {
    Row projected;
    projected.reserve(plan.exprs.size());
    for (const ExprPtr& e : plan.exprs) projected.push_back(e->Eval(row));
    out.AddRow(std::move(projected));
  }
  return out;
}

Relation ExecJoin(const Plan& plan, const Relation& left,
                  const Relation& right) {
  std::vector<std::pair<int, int>> keys;
  std::vector<ExprPtr> residual_conjuncts;
  ExtractEquiKeys(plan.predicate, left.schema().size(), &keys,
                  &residual_conjuncts);
  ExprPtr residual =
      residual_conjuncts.empty() ? nullptr : AndAll(residual_conjuncts);
  Relation out(plan.schema);

  if (!keys.empty()) {
    // Hash join: build on the right input.
    std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> build;
    build.reserve(right.size());
    for (const Row& row : right.rows()) {
      Row key;
      key.reserve(keys.size());
      bool has_null = false;
      for (auto& [l, r] : keys) {
        const Value& v = row[static_cast<size_t>(r)];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;  // NULL never equi-joins
      build[key].push_back(&row);
    }
    for (const Row& lrow : left.rows()) {
      Row key;
      key.reserve(keys.size());
      bool has_null = false;
      for (auto& [l, r] : keys) {
        const Value& v = lrow[static_cast<size_t>(l)];
        if (v.is_null()) has_null = true;
        key.push_back(v);
      }
      if (has_null) continue;
      auto it = build.find(key);
      if (it == build.end()) continue;
      for (const Row* rrow : it->second) {
        Row combined = lrow;
        combined.insert(combined.end(), rrow->begin(), rrow->end());
        if (residual == nullptr || residual->EvalBool(combined)) {
          out.AddRow(std::move(combined));
        }
      }
    }
    return out;
  }

  // Nested-loop fallback for non-equi predicates.
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row combined = lrow;
      combined.insert(combined.end(), rrow.begin(), rrow.end());
      if (plan.predicate->EvalBool(combined)) {
        out.AddRow(std::move(combined));
      }
    }
  }
  return out;
}

Relation ExecUnionAll(const Plan& plan, Relation left, const Relation& right) {
  Relation out(plan.schema, std::move(left.mutable_rows()));
  out.Reserve(out.size() + right.size());
  for (const Row& row : right.rows()) out.AddRow(row);
  return out;
}

Relation ExecExceptAll(const Plan& plan, Relation left,
                       const Relation& right) {
  // Bag difference: each right row cancels one left duplicate.
  std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
  counts.reserve(right.size());
  for (const Row& row : right.rows()) ++counts[row];
  Relation out(plan.schema);
  for (Row& row : left.mutable_rows()) {
    auto it = counts.find(row);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Relation ExecAntiJoin(const Plan& plan, Relation left, const Relation& right) {
  std::unordered_map<Row, bool, RowHash, RowEq> present;
  present.reserve(right.size());
  for (const Row& row : right.rows()) present.try_emplace(row, true);
  Relation out(plan.schema);
  for (Row& row : left.mutable_rows()) {
    if (present.count(row) == 0) out.AddRow(std::move(row));
  }
  return out;
}

struct GroupState {
  int64_t star_count = 0;
  std::vector<AggState> states;
};

Relation ExecAggregate(const Plan& plan, const Relation& input) {
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  for (const Row& row : input.rows()) {
    Row key;
    key.reserve(plan.exprs.size());
    for (const ExprPtr& e : plan.exprs) key.push_back(e->Eval(row));
    GroupState& g = groups[key];
    if (g.states.empty()) g.states.resize(plan.aggs.size());
    g.star_count += 1;
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      if (plan.aggs[i].func == AggFunc::kCountStar) continue;
      g.states[i].Accumulate(plan.aggs[i].arg->Eval(row));
    }
  }
  if (plan.exprs.empty() && groups.empty()) {
    groups[Row{}].states.resize(plan.aggs.size());
  }
  Relation out(plan.schema);
  out.Reserve(groups.size());
  for (auto& [key, g] : groups) {
    Row row = key;
    for (size_t i = 0; i < plan.aggs.size(); ++i) {
      row.push_back(g.states[i].Finalize(plan.aggs[i].func, g.star_count));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

Relation ExecDistinct(const Plan& plan, Relation input) {
  std::unordered_map<Row, bool, RowHash, RowEq> seen;
  seen.reserve(input.size());
  Relation out(plan.schema);
  for (Row& row : input.mutable_rows()) {
    auto [it, inserted] = seen.try_emplace(row, true);
    if (inserted) out.AddRow(std::move(row));
  }
  return out;
}

Relation ExecSort(const Plan& plan, Relation input) {
  std::stable_sort(
      input.mutable_rows().begin(), input.mutable_rows().end(),
      [&](const Row& a, const Row& b) {
        for (const SortKey& k : plan.sort_keys) {
          int c = a[static_cast<size_t>(k.column)].Compare(
              b[static_cast<size_t>(k.column)]);
          if (c != 0) return k.ascending ? c < 0 : c > 0;
        }
        return false;
      });
  return Relation(plan.schema, std::move(input.mutable_rows()));
}

}  // namespace

Relation Execute(const PlanPtr& plan, const Catalog& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return catalog.Get(plan->table);
    case PlanKind::kConstant:
      return *plan->constant;
    case PlanKind::kSelect:
      return ExecSelect(*plan, Execute(plan->left, catalog));
    case PlanKind::kProject:
      return ExecProject(*plan, Execute(plan->left, catalog));
    case PlanKind::kJoin:
      return ExecJoin(*plan, Execute(plan->left, catalog),
                      Execute(plan->right, catalog));
    case PlanKind::kUnionAll:
      return ExecUnionAll(*plan, Execute(plan->left, catalog),
                          Execute(plan->right, catalog));
    case PlanKind::kExceptAll:
      return ExecExceptAll(*plan, Execute(plan->left, catalog),
                           Execute(plan->right, catalog));
    case PlanKind::kAntiJoin:
      return ExecAntiJoin(*plan, Execute(plan->left, catalog),
                          Execute(plan->right, catalog));
    case PlanKind::kAggregate:
      return ExecAggregate(*plan, Execute(plan->left, catalog));
    case PlanKind::kDistinct:
      return ExecDistinct(*plan, Execute(plan->left, catalog));
    case PlanKind::kSort:
      return ExecSort(*plan, Execute(plan->left, catalog));
    case PlanKind::kCoalesce:
      return CoalesceRelation(Execute(plan->left, catalog),
                              plan->coalesce_impl);
    case PlanKind::kSplit:
      return SplitRelation(Execute(plan->left, catalog),
                           Execute(plan->right, catalog), plan->split_group);
    case PlanKind::kSplitAggregate:
      return SplitAggregateRelation(Execute(plan->left, catalog),
                                    plan->split_group, plan->aggs,
                                    plan->gap_rows, plan->domain,
                                    plan->pre_aggregate);
    case PlanKind::kTimeslice:
      return TimesliceEncoded(Execute(plan->left, catalog), plan->slice_time);
  }
  throw EngineError("unknown plan kind");
}

}  // namespace periodk
