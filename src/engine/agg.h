// Aggregate functions and incremental aggregation state, shared by the
// abstract-model bag aggregation (annotated/), the engine's group-by
// operator and the fused split+aggregate operator of the rewrite layer.
#ifndef PERIODK_ENGINE_AGG_H_
#define PERIODK_ENGINE_AGG_H_

#include <cstdint>

#include "common/value.h"
#include "engine/column.h"

namespace periodk {

enum class AggFunc { kCount, kCountStar, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// Incremental state for one aggregate over one group, with SQL
/// semantics: count(*) counts rows, count(A) counts non-null A, the
/// remaining functions ignore nulls and yield NULL on empty input.
/// Multiplicities allow bag-annotated accumulation (one call per
/// distinct tuple instead of per duplicate).
///
/// The integer sum is kept in 128 bits so that summing
/// endpoint-magnitude values — a TimeDomain touching INT64_MIN or
/// INT64_MAX puts such values in plain columns — is never UB, and so
/// that accumulation order cannot matter: a sum whose intermediate
/// prefix overflows int64 but whose total fits still finalizes as that
/// exact integer, identically for sequential accumulation and the
/// parallel chunk-and-Merge path.  Only a *total* outside int64 widens
/// to the double sum.  (128 bits cannot realistically overflow: it
/// would take 2^63 rows of INT64_MAX.)
struct AggState {
  int64_t count = 0;
  bool any = false;
  bool all_int = true;
  __int128 isum = 0;
  double dsum = 0.0;
  Value min_v;
  Value max_v;

  void Accumulate(const Value& v, int64_t mult = 1);

  /// Accumulates a non-null int64 without the Value round-trip; exactly
  /// equivalent to Accumulate(Value::Int(v), mult).
  void AccumulateInt(int64_t v, int64_t mult = 1);

  /// Accumulates cell `row` of a typed column.  Equivalent to
  /// Accumulate(col.Get(row), mult), but the hot non-null int case --
  /// the inner loop of the columnar split-aggregate and hash
  /// aggregation paths -- reads the raw array directly.
  void AccumulateColumn(const ColumnData& col, size_t row, int64_t mult = 1);

  /// Merges partially aggregated state (used by pre-aggregation: the
  /// fused split operator merges per-interval partials into per-fragment
  /// results).  Min/max merge unconditionally; count/sum add up.
  void Merge(const AggState& other);

  Value Finalize(AggFunc f, int64_t star_count) const;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_AGG_H_
