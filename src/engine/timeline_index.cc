#include "engine/timeline_index.h"

#include <algorithm>
#include <set>
#include <utility>

namespace periodk {

namespace {

/// Replay state shared by the point-lookup paths: the rows whose begin
/// (added) or end (removed) events fall between the checkpoint and the
/// query position.  Both lists hold at most checkpoint_interval - 1
/// entries.
struct Replay {
  std::vector<uint32_t> added;    // sorted ascending
  std::vector<uint32_t> removed;  // sorted ascending

  bool Removed(uint32_t row) const {
    return std::binary_search(removed.begin(), removed.end(), row);
  }
};

}  // namespace

std::shared_ptr<const TimelineIndex> TimelineIndex::Build(
    std::shared_ptr<const Relation> source, int64_t checkpoint_interval) {
  if (source == nullptr || source->schema().size() < 2) return nullptr;
  int n = static_cast<int>(source->schema().size());
  return Build(std::move(source), n - 2, n - 1, checkpoint_interval);
}

std::shared_ptr<const TimelineIndex> TimelineIndex::Build(
    std::shared_ptr<const Relation> source, int begin_col, int end_col,
    int64_t checkpoint_interval) {
  return BuildFrom(std::move(source), begin_col, end_col, checkpoint_interval,
                   /*first_row=*/0);
}

std::shared_ptr<const TimelineIndex> TimelineIndex::WithDelta(
    std::shared_ptr<const TimelineIndex> base,
    std::shared_ptr<const Relation> source) {
  if (base == nullptr || source == nullptr) return nullptr;
  // Flatten: keep the compacted core and re-derive one delta over every
  // row appended since it was built.
  std::shared_ptr<const TimelineIndex> core =
      base->base_ != nullptr ? base->base_ : std::move(base);
  size_t first_row = core->source_->size();
  if (source->schema().size() != core->source_->schema().size() ||
      source->size() < first_row) {
    return nullptr;  // not a copy-on-write append of core's relation
  }
  // The delta reuses the core's checkpoint interval, so even an
  // uncompacted lookup replays at most K - 1 events per layer.
  std::shared_ptr<const TimelineIndex> delta =
      BuildFrom(source, core->begin_col_, core->end_col_,
                core->checkpoint_interval_, first_row);
  if (delta == nullptr) return nullptr;  // unindexable appended endpoints
  auto index = std::shared_ptr<TimelineIndex>(new TimelineIndex());
  index->source_ = std::move(source);
  index->begin_col_ = core->begin_col_;
  index->end_col_ = core->end_col_;
  index->checkpoint_interval_ = core->checkpoint_interval_;
  index->out_schema_ = core->out_schema_;
  index->keep_cols_ = core->keep_cols_;
  index->delta_first_row_ = first_row;
  index->base_ = std::move(core);
  index->delta_ = std::move(delta);
  return index;
}

std::shared_ptr<const TimelineIndex> TimelineIndex::BuildFrom(
    std::shared_ptr<const Relation> source, int begin_col, int end_col,
    int64_t checkpoint_interval, size_t first_row) {
  if (source == nullptr) return nullptr;
  int arity = static_cast<int>(source->schema().size());
  if (begin_col < 0 || end_col < 0 || begin_col >= arity ||
      end_col >= arity || begin_col == end_col) {
    return nullptr;
  }
  if (checkpoint_interval < 1) {
    checkpoint_interval = kDefaultCheckpointInterval;
  }
  auto index = std::shared_ptr<TimelineIndex>(new TimelineIndex());
  index->source_ = source;
  index->begin_col_ = begin_col;
  index->end_col_ = end_col;
  index->checkpoint_interval_ = checkpoint_interval;
  for (int c = 0; c < arity; ++c) {
    if (c == begin_col || c == end_col) continue;
    index->keep_cols_.push_back(c);
    index->out_schema_.Append(source->schema().at(static_cast<size_t>(c)));
  }

  // Columnar sources build event lists straight from the raw endpoint
  // arrays.  Pure non-null int columns qualify; any other typed column
  // proves a non-integer (or NULL) endpoint exists, which the scan path
  // (TimesliceEncoded) would throw on -- so the index refuses to build,
  // like the row loop below.  Mixed columns vary per cell and take the
  // row loop.
  const int64_t* fast_b = nullptr;
  const int64_t* fast_e = nullptr;
  // periodk-lint: columnar-lane-begin(timeline-build)
  if (source->is_columnar()) {
    const ColumnData& bc = source->col(static_cast<size_t>(begin_col));
    const ColumnData& ec = source->col(static_cast<size_t>(end_col));
    bool b_int = bc.tag() == ColumnTag::kInt && !bc.has_nulls();
    bool e_int = ec.tag() == ColumnTag::kInt && !ec.has_nulls();
    if (b_int && e_int) {
      fast_b = bc.ints();
      fast_e = ec.ints();
    } else if (bc.tag() != ColumnTag::kMixed && ec.tag() != ColumnTag::kMixed) {
      return nullptr;
    }
  }
  if (fast_b != nullptr) {
    size_t n = source->size();
    index->events_.reserve((n - first_row) * 2);
    for (size_t i = first_row; i < n; ++i) {
      TimePoint b = fast_b[i];
      TimePoint e = fast_e[i];
      if (b >= e) continue;  // empty validity: never alive, like the scan
      uint32_t row = static_cast<uint32_t>(i);
      index->events_.push_back(Event{b, row, /*is_end=*/false});
      index->events_.push_back(Event{e, row, /*is_end=*/true});
    }
    // periodk-lint: columnar-lane-end(timeline-build)
  } else {
    const std::vector<Row>& rows = source->rows();
    index->events_.reserve((rows.size() - first_row) * 2);
    for (size_t i = first_row; i < rows.size(); ++i) {
      const Value& bv = rows[i][static_cast<size_t>(begin_col)];
      const Value& ev = rows[i][static_cast<size_t>(end_col)];
      // The scan path (TimesliceEncoded) throws on non-integer
      // endpoints; an index would silently skip them, so it refuses to
      // build and the caller keeps the scan path's behavior.
      if (bv.type() != ValueType::kInt || ev.type() != ValueType::kInt) {
        return nullptr;
      }
      TimePoint b = bv.AsInt();
      TimePoint e = ev.AsInt();
      if (b >= e) continue;  // empty validity: never alive, like the scan
      uint32_t row = static_cast<uint32_t>(i);
      index->events_.push_back(Event{b, row, /*is_end=*/false});
      index->events_.push_back(Event{e, row, /*is_end=*/true});
    }
  }
  std::sort(index->events_.begin(), index->events_.end(),
            [](const Event& a, const Event& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_end != b.is_end) return !a.is_end;
              return a.row < b.row;
            });

  index->event_times_.reserve(index->events_.size());
  std::set<uint32_t> alive;
  size_t k = static_cast<size_t>(checkpoint_interval);
  index->checkpoints_.reserve(index->events_.size() / k + 1);
  index->checkpoints_.emplace_back();  // checkpoint 0: nothing alive
  for (size_t i = 0; i < index->events_.size(); ++i) {
    const Event& event = index->events_[i];
    index->event_times_.push_back(event.time);
    if (!event.is_end) {
      alive.insert(event.row);
      index->begin_times_.push_back(event.time);
      index->begin_rows_.push_back(event.row);
    } else {
      alive.erase(event.row);
    }
    if ((i + 1) % k == 0) {
      index->checkpoints_.emplace_back(alive.begin(), alive.end());
    }
  }
  return index;
}

bool TimelineIndex::ColumnsAreTrailing() const {
  int arity = static_cast<int>(keep_cols_.size()) + 2;
  return begin_col_ == arity - 2 && end_col_ == arity - 1;
}

/// Positions the replay window for time t: base is the checkpoint at or
/// below the event position, and `replay` collects the window's begin /
/// end rows.  A row cannot be removed and later re-added within one
/// window (each row has exactly one begin and one end event), so the
/// alive set at t is exactly
///   { r in base : r not removed } union { r added : r not removed }.
std::vector<uint32_t> TimelineIndex::AliveAt(TimePoint t) const {
  if (base_ != nullptr) {
    // Every base id is below delta_first_row_ and every delta id at or
    // above it, so concatenation is the sorted merge.
    std::vector<uint32_t> out = base_->AliveAt(t);
    std::vector<uint32_t> delta = delta_->AliveAt(t);
    out.insert(out.end(), delta.begin(), delta.end());
    return out;
  }
  // Events with time <= t are applied; upper_bound gives their count.
  size_t pos = static_cast<size_t>(
      std::upper_bound(event_times_.begin(), event_times_.end(), t) -
      event_times_.begin());
  size_t k = static_cast<size_t>(checkpoint_interval_);
  size_t c = pos / k;
  const std::vector<uint32_t>& base = checkpoints_[c];
  Replay replay;
  for (size_t i = c * k; i < pos; ++i) {
    const Event& event = events_[i];
    if (event.is_end) {
      replay.removed.push_back(event.row);
    } else {
      replay.added.push_back(event.row);
    }
  }
  std::sort(replay.added.begin(), replay.added.end());
  std::sort(replay.removed.begin(), replay.removed.end());

  std::vector<uint32_t> out;
  out.reserve(base.size() + replay.added.size());
  // Merge the two disjoint sorted lists (base rows began at or before
  // the checkpoint, added rows after it), skipping removed rows.
  size_t bi = 0;
  size_t ai = 0;
  while (bi < base.size() || ai < replay.added.size()) {
    uint32_t next;
    if (ai >= replay.added.size() ||
        (bi < base.size() && base[bi] < replay.added[ai])) {
      next = base[bi++];
    } else {
      next = replay.added[ai++];
    }
    if (!replay.removed.empty() && replay.Removed(next)) continue;
    out.push_back(next);
  }
  return out;
}

std::vector<uint32_t> TimelineIndex::AliveInRange(TimePoint b,
                                                  TimePoint e) const {
  if (b >= e) return {};
  if (base_ != nullptr) {
    // Same id-partition argument as AliveAt: concat keeps the contract
    // that candidates come back ascending.
    std::vector<uint32_t> out = base_->AliveInRange(b, e);
    std::vector<uint32_t> delta = delta_->AliveInRange(b, e);
    out.insert(out.end(), delta.begin(), delta.end());
    return out;
  }
  // A row overlaps [b, e) iff begin < e and end > b.  Rows with
  // begin <= b are overlapping iff alive at b; the rest start inside
  // (b, e).  The two sets are disjoint, so one sorted merge suffices.
  std::vector<uint32_t> alive = AliveAt(b);
  auto lo = std::upper_bound(begin_times_.begin(), begin_times_.end(), b);
  auto hi = std::lower_bound(begin_times_.begin(), begin_times_.end(), e);
  std::vector<uint32_t> started(
      begin_rows_.begin() + (lo - begin_times_.begin()),
      begin_rows_.begin() + (hi - begin_times_.begin()));
  std::sort(started.begin(), started.end());

  std::vector<uint32_t> out;
  out.reserve(alive.size() + started.size());
  std::merge(alive.begin(), alive.end(), started.begin(), started.end(),
             std::back_inserter(out));
  return out;
}

Relation TimelineIndex::Timeslice(TimePoint t) const {
  std::vector<uint32_t> alive = AliveAt(t);
  // Columnar sources project by gathering the kept columns; `alive` is
  // ascending, so the row order matches the row-projection loop.
  // periodk-lint: columnar-lane-begin(timeline-timeslice)
  if (source_->is_columnar()) {
    std::vector<ColumnData> cols;
    cols.reserve(keep_cols_.size());
    for (int c : keep_cols_) {
      cols.push_back(
          ColumnData::Gather(source_->col(static_cast<size_t>(c)), alive));
    }
    return Relation::FromColumns(out_schema_, std::move(cols), alive.size());
  }
  // periodk-lint: columnar-lane-end(timeline-timeslice)
  Relation out(out_schema_);
  out.Reserve(alive.size());
  const std::vector<Row>& rows = source_->rows();
  for (uint32_t r : alive) {
    const Row& row = rows[r];
    Row projected;
    projected.reserve(keep_cols_.size());
    for (int c : keep_cols_) projected.push_back(row[static_cast<size_t>(c)]);
    out.AddRow(std::move(projected));
  }
  return out;
}

}  // namespace periodk
