#include "engine/expr.h"

#include <cmath>

#include "common/status.h"
#include "common/str_util.h"

namespace periodk {

namespace {

// The synthetic calendar used by the data generators: integer day
// numbers with 365-day years anchored at 1992 (TPC-H's epoch).
constexpr int64_t kYearBase = 1992;
constexpr int64_t kDaysPerYear = 365;

Value EvalCompare(CompareOp op, const Value& a, const Value& b) {
  std::optional<int> c = SqlCompare(a, b);
  if (!c.has_value()) return Value::Null();
  switch (op) {
    case CompareOp::kEq:
      return Value::Bool(*c == 0);
    case CompareOp::kNe:
      return Value::Bool(*c != 0);
    case CompareOp::kLt:
      return Value::Bool(*c < 0);
    case CompareOp::kLe:
      return Value::Bool(*c <= 0);
    case CompareOp::kGt:
      return Value::Bool(*c > 0);
    case CompareOp::kGe:
      return Value::Bool(*c >= 0);
  }
  throw EngineError("unknown comparison operator");
}

Value EvalArith(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) {
    throw EngineError(StrCat("arithmetic on non-numeric values: ",
                             a.ToString(), " vs ", b.ToString()));
  }
  bool both_int =
      a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  switch (op) {
    case ArithOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt())
                      : Value::Double(a.NumericAsDouble() + b.NumericAsDouble());
    case ArithOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt())
                      : Value::Double(a.NumericAsDouble() - b.NumericAsDouble());
    case ArithOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt())
                      : Value::Double(a.NumericAsDouble() * b.NumericAsDouble());
    case ArithOp::kDiv: {
      // Division always yields double (decimal semantics); x / 0 -> NULL.
      double d = b.NumericAsDouble();
      if (d == 0.0) return Value::Null();
      return Value::Double(a.NumericAsDouble() / d);
    }
    case ArithOp::kMod: {
      if (!both_int) throw EngineError("%% requires integer operands");
      if (b.AsInt() == 0) return Value::Null();
      return Value::Int(a.AsInt() % b.AsInt());
    }
  }
  throw EngineError("unknown arithmetic operator");
}

Value EvalFunc(ScalarFunc f, const std::vector<Value>& args) {
  switch (f) {
    case ScalarFunc::kLeast:
    case ScalarFunc::kGreatest: {
      // Postgres semantics: NULL arguments are ignored.
      Value best;
      bool any = false;
      for (const Value& v : args) {
        if (v.is_null()) continue;
        if (!any ||
            (f == ScalarFunc::kLeast ? v.Compare(best) < 0
                                     : v.Compare(best) > 0)) {
          best = v;
        }
        any = true;
      }
      return any ? best : Value::Null();
    }
    case ScalarFunc::kAbs: {
      const Value& v = args.at(0);
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) {
        return Value::Int(v.AsInt() < 0 ? -v.AsInt() : v.AsInt());
      }
      return Value::Double(std::fabs(v.NumericAsDouble()));
    }
    case ScalarFunc::kYear: {
      const Value& v = args.at(0);
      if (v.is_null()) return Value::Null();
      return Value::Int(kYearBase + v.AsInt() / kDaysPerYear);
    }
    case ScalarFunc::kIfNull:
      return args.at(0).is_null() ? args.at(1) : args.at(0);
  }
  throw EngineError("unknown scalar function");
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

const char* ScalarFuncName(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kLeast:
      return "least";
    case ScalarFunc::kGreatest:
      return "greatest";
    case ScalarFunc::kAbs:
      return "abs";
    case ScalarFunc::kYear:
      return "year";
    case ScalarFunc::kIfNull:
      return "ifnull";
  }
  return "?";
}

}  // namespace

Value Expr::Eval(const Row& row) const {
  switch (kind) {
    case ExprKind::kColumn:
      if (column < 0 || static_cast<size_t>(column) >= row.size()) {
        throw EngineError(StrCat("column index ", column,
                                 " out of range for row of arity ",
                                 row.size()));
      }
      return row[static_cast<size_t>(column)];
    case ExprKind::kLiteral:
      return literal;
    case ExprKind::kCompare:
      return EvalCompare(cmp, children[0]->Eval(row), children[1]->Eval(row));
    case ExprKind::kAnd: {
      // Kleene three-valued AND.
      Value a = children[0]->Eval(row);
      if (a.type() == ValueType::kBool && !a.AsBool()) {
        return Value::Bool(false);
      }
      Value b = children[1]->Eval(row);
      if (b.type() == ValueType::kBool && !b.AsBool()) {
        return Value::Bool(false);
      }
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(true);
    }
    case ExprKind::kOr: {
      Value a = children[0]->Eval(row);
      if (a.type() == ValueType::kBool && a.AsBool()) return Value::Bool(true);
      Value b = children[1]->Eval(row);
      if (b.type() == ValueType::kBool && b.AsBool()) return Value::Bool(true);
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Bool(false);
    }
    case ExprKind::kNot: {
      Value a = children[0]->Eval(row);
      if (a.is_null()) return Value::Null();
      return Value::Bool(!a.AsBool());
    }
    case ExprKind::kArith:
      return EvalArith(arith, children[0]->Eval(row), children[1]->Eval(row));
    case ExprKind::kNeg: {
      Value a = children[0]->Eval(row);
      if (a.is_null()) return Value::Null();
      if (a.type() == ValueType::kInt) return Value::Int(-a.AsInt());
      return Value::Double(-a.NumericAsDouble());
    }
    case ExprKind::kFunc: {
      std::vector<Value> args;
      args.reserve(children.size());
      for (const ExprPtr& c : children) args.push_back(c->Eval(row));
      return EvalFunc(func, args);
    }
    case ExprKind::kCase: {
      size_t n_branches = children.size() / 2;
      for (size_t i = 0; i < n_branches; ++i) {
        if (children[2 * i]->EvalBool(row)) {
          return children[2 * i + 1]->Eval(row);
        }
      }
      if (children.size() % 2 == 1) return children.back()->Eval(row);
      return Value::Null();
    }
    case ExprKind::kIn: {
      Value needle = children[0]->Eval(row);
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < children.size(); ++i) {
        std::optional<int> c = SqlCompare(needle, children[i]->Eval(row));
        if (!c.has_value()) {
          saw_null = true;
        } else if (*c == 0) {
          return Value::Bool(!negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(negated);
    }
    case ExprKind::kBetween: {
      Value v = children[0]->Eval(row);
      Value lo = children[1]->Eval(row);
      Value hi = children[2]->Eval(row);
      Value ge = EvalCompare(CompareOp::kGe, v, lo);
      Value le = EvalCompare(CompareOp::kLe, v, hi);
      if (ge.is_null() || le.is_null()) return Value::Null();
      bool in = ge.AsBool() && le.AsBool();
      return Value::Bool(negated ? !in : in);
    }
    case ExprKind::kIsNull: {
      bool is_null = children[0]->Eval(row).is_null();
      return Value::Bool(negated ? !is_null : is_null);
    }
    case ExprKind::kLike: {
      Value text = children[0]->Eval(row);
      Value pattern = children[1]->Eval(row);
      if (text.is_null() || pattern.is_null()) return Value::Null();
      bool m = SqlLikeMatch(text.AsString(), pattern.AsString());
      return Value::Bool(negated ? !m : m);
    }
  }
  throw EngineError("unknown expression kind");
}

bool Expr::EvalBool(const Row& row) const {
  Value v = Eval(row);
  return v.type() == ValueType::kBool && v.AsBool();
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return display.empty() ? StrCat("#", column) : display;
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? StrCat("'", literal.ToString(), "'")
                 : literal.ToString();
    case ExprKind::kCompare:
      return StrCat("(", children[0]->ToString(), " ", CompareOpName(cmp),
                    " ", children[1]->ToString(), ")");
    case ExprKind::kAnd:
      return StrCat("(", children[0]->ToString(), " AND ",
                    children[1]->ToString(), ")");
    case ExprKind::kOr:
      return StrCat("(", children[0]->ToString(), " OR ",
                    children[1]->ToString(), ")");
    case ExprKind::kNot:
      return StrCat("(NOT ", children[0]->ToString(), ")");
    case ExprKind::kArith:
      return StrCat("(", children[0]->ToString(), " ", ArithOpName(arith),
                    " ", children[1]->ToString(), ")");
    case ExprKind::kNeg:
      return StrCat("(-", children[0]->ToString(), ")");
    case ExprKind::kFunc:
      return StrCat(ScalarFuncName(func), "(",
                    JoinMapped(children, ", ",
                               [](const ExprPtr& c) { return c->ToString(); }),
                    ")");
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t n_branches = children.size() / 2;
      for (size_t i = 0; i < n_branches; ++i) {
        out += StrCat(" WHEN ", children[2 * i]->ToString(), " THEN ",
                      children[2 * i + 1]->ToString());
      }
      if (children.size() % 2 == 1) {
        out += StrCat(" ELSE ", children.back()->ToString());
      }
      return out + " END";
    }
    case ExprKind::kIn: {
      std::vector<ExprPtr> rest(children.begin() + 1, children.end());
      return StrCat(children[0]->ToString(), negated ? " NOT IN (" : " IN (",
                    JoinMapped(rest, ", ",
                               [](const ExprPtr& c) { return c->ToString(); }),
                    ")");
    }
    case ExprKind::kBetween:
      return StrCat(children[0]->ToString(),
                    negated ? " NOT BETWEEN " : " BETWEEN ",
                    children[1]->ToString(), " AND ",
                    children[2]->ToString());
    case ExprKind::kIsNull:
      return StrCat(children[0]->ToString(),
                    negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return StrCat(children[0]->ToString(), negated ? " NOT LIKE " : " LIKE ",
                    children[1]->ToString());
  }
  return "?";
}

namespace {

std::shared_ptr<Expr> MakeNode(ExprKind kind, std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->children = std::move(children);
  return e;
}

}  // namespace

ExprPtr Col(int index, std::string display) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumn;
  e->column = index;
  e->display = std::move(display);
  return e;
}

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitStr(std::string v) { return Lit(Value::String(std::move(v))); }

ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = MakeNode(ExprKind::kCompare, {std::move(l), std::move(r)});
  e->cmp = op;
  return e;
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kGe, std::move(l), std::move(r));
}

ExprPtr And(ExprPtr l, ExprPtr r) {
  return MakeNode(ExprKind::kAnd, {std::move(l), std::move(r)});
}

ExprPtr AndAll(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Lit(Value::Bool(true));
  ExprPtr out = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = And(out, conjuncts[i]);
  }
  return out;
}

ExprPtr Or(ExprPtr l, ExprPtr r) {
  return MakeNode(ExprKind::kOr, {std::move(l), std::move(r)});
}

ExprPtr Not(ExprPtr e) { return MakeNode(ExprKind::kNot, {std::move(e)}); }

ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = MakeNode(ExprKind::kArith, {std::move(l), std::move(r)});
  e->arith = op;
  return e;
}

ExprPtr Add(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return Arith(ArithOp::kDiv, std::move(l), std::move(r));
}

ExprPtr Neg(ExprPtr e) { return MakeNode(ExprKind::kNeg, {std::move(e)}); }

ExprPtr Func(ScalarFunc f, std::vector<ExprPtr> args) {
  auto e = MakeNode(ExprKind::kFunc, std::move(args));
  e->func = f;
  return e;
}

ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr) {
  std::vector<ExprPtr> children;
  for (auto& [cond, then] : branches) {
    children.push_back(std::move(cond));
    children.push_back(std::move(then));
  }
  if (else_expr != nullptr) children.push_back(std::move(else_expr));
  return MakeNode(ExprKind::kCase, std::move(children));
}

ExprPtr InList(ExprPtr needle, std::vector<ExprPtr> candidates, bool negated) {
  std::vector<ExprPtr> children = {std::move(needle)};
  for (ExprPtr& c : candidates) children.push_back(std::move(c));
  auto e = MakeNode(ExprKind::kIn, std::move(children));
  e->negated = negated;
  return e;
}

ExprPtr Between(ExprPtr e, ExprPtr lo, ExprPtr hi, bool negated) {
  auto n = MakeNode(ExprKind::kBetween,
                    {std::move(e), std::move(lo), std::move(hi)});
  n->negated = negated;
  return n;
}

ExprPtr IsNull(ExprPtr e, bool negated) {
  auto n = MakeNode(ExprKind::kIsNull, {std::move(e)});
  n->negated = negated;
  return n;
}

ExprPtr Like(ExprPtr e, ExprPtr pattern, bool negated) {
  auto n = MakeNode(ExprKind::kLike, {std::move(e), std::move(pattern)});
  n->negated = negated;
  return n;
}

ExprPtr RemapColumns(const ExprPtr& e, const std::function<int(int)>& fn) {
  auto copy = std::make_shared<Expr>(*e);
  if (copy->kind == ExprKind::kColumn) {
    copy->column = fn(copy->column);
  }
  for (ExprPtr& child : copy->children) {
    child = RemapColumns(child, fn);
  }
  return copy;
}

ExprPtr ShiftColumns(const ExprPtr& e, int offset) {
  return RemapColumns(e, [offset](int c) { return c + offset; });
}

void CollectColumns(const ExprPtr& e, std::vector<int>* out) {
  if (e->kind == ExprKind::kColumn) out->push_back(e->column);
  for (const ExprPtr& child : e->children) CollectColumns(child, out);
}

bool ExprStructurallyEqual(const ExprPtr& a, const ExprPtr& b) {
  if (a->kind != b->kind) return false;
  if (a->column != b->column) return false;
  if (a->literal.Compare(b->literal) != 0 ||
      a->literal.type() != b->literal.type()) {
    return false;
  }
  if (a->cmp != b->cmp || a->arith != b->arith || a->func != b->func ||
      a->negated != b->negated) {
    return false;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!ExprStructurallyEqual(a->children[i], b->children[i])) return false;
  }
  return true;
}

}  // namespace periodk
