#include "engine/temporal_ops.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_pool.h"
#include "engine/window.h"

namespace periodk {

namespace {

TimePoint TimeOf(const Value& v) {
  if (v.type() != ValueType::kInt) {
    throw EngineError("temporal column must hold integer time points, got " +
                      v.ToString());
  }
  return v.AsInt();
}

size_t NonTemporalArity(const Relation& r, const char* op) {
  if (r.schema().size() < 2) {
    throw EngineError(std::string(op) + " requires a period-encoded input");
  }
  return r.schema().size() - 2;
}

/// Decodes the trailing interval of an encoded row.  Returns false for
/// an empty validity interval (begin >= end: annotation 0 everywhere);
/// throws on non-integer endpoints.  Every temporal operator — and in
/// particular *both* coalesce implementations — routes its drop-empty
/// decision through here, so they cannot diverge on degenerate rows.
bool DecodeRowInterval(const Row& row, size_t nattr, TimePoint* b,
                       TimePoint* e) {
  *b = TimeOf(row[nattr]);
  *e = TimeOf(row[nattr + 1]);
  return *b < *e;
}

using Intervals = std::vector<std::pair<TimePoint, TimePoint>>;

// One coalesced maximal segment [begin, end) carrying `count`
// duplicates.
struct CoalescedSegment {
  TimePoint begin = 0;
  TimePoint end = 0;
  int64_t count = 0;
};

// Endpoint sweep over one group's intervals: ±1 events, segments
// between annotation changepoints.  Shared by the row and columnar
// grouping paths, so coalesce output is a pure function of the logical
// input regardless of storage layout.
void SweepIntervalsToSegments(const Intervals& intervals,
                              std::vector<std::pair<TimePoint, int64_t>>& events,
                              std::vector<CoalescedSegment>& out) {
  events.clear();
  events.reserve(intervals.size() * 2);
  for (const auto& [b, e] : intervals) {
    events.emplace_back(b, 1);
    events.emplace_back(e, -1);
  }
  std::sort(events.begin(), events.end());
  int64_t count = 0;
  TimePoint seg_start = 0;
  size_t i = 0;
  while (i < events.size()) {
    TimePoint t = events[i].first;
    int64_t delta = 0;
    while (i < events.size() && events[i].first == t) {
      delta += events[i].second;
      ++i;
    }
    int64_t next = count + delta;
    if (next == count) continue;  // not an annotation changepoint
    if (count > 0) out.push_back({seg_start, t, count});
    seg_start = t;
    count = next;
  }
}

// Coalesce groups in first-appearance order of their key -- identical
// whichever storage representation produced them.
struct CoalesceGroups {
  std::vector<Intervals> intervals;  // per group id
  std::vector<Row> keys;             // row path: key per group id
  std::vector<uint32_t> rep;         // columnar path: representative row
  bool columnar = false;
};

// Columnar grouping: packed uint64 keys over the attribute columns and
// raw endpoint arrays.  Requires the endpoint columns to be pure
// non-null int (anything else must throw through TimeOf on the row
// path) and the key columns to be FastKeyable.
// periodk-lint: columnar-lane-begin(coalesce-groups)
bool TryColumnarCoalesceGroups(const Relation& input, size_t nattr,
                               CoalesceGroups* g) {
  if (!input.is_columnar()) return false;
  const std::vector<ColumnData>& cols = input.columns();
  const ColumnData& bc = cols[nattr];
  const ColumnData& ec = cols[nattr + 1];
  if (bc.tag() != ColumnTag::kInt || bc.has_nulls()) return false;
  if (ec.tag() != ColumnTag::kInt || ec.has_nulls()) return false;
  std::vector<int> key_cols(nattr);
  for (size_t c = 0; c < nattr; ++c) key_cols[c] = static_cast<int>(c);
  std::vector<uint64_t> packed;
  if (!BuildPackedKeys(cols, key_cols, input.size(), &packed)) return false;
  const int64_t* bs = bc.ints();
  const int64_t* es = ec.ints();
  size_t width = nattr + 1;
  PackedKeyMap map(width, /*expected=*/64);
  for (size_t i = 0; i < input.size(); ++i) {
    if (bs[i] >= es[i]) continue;  // empty validity: annotation 0
    uint32_t gid = map.FindOrInsert(&packed[i * width]);
    if (gid == g->intervals.size()) {
      g->intervals.emplace_back();
      g->rep.push_back(static_cast<uint32_t>(i));
    }
    g->intervals[gid].emplace_back(bs[i], es[i]);
  }
  g->columnar = true;
  return true;
}
// periodk-lint: columnar-lane-end(coalesce-groups)

void RowCoalesceGroups(const Relation& input, size_t nattr,
                       CoalesceGroups* g) {
  std::unordered_map<Row, uint32_t, RowHash, RowEq> gid_of;
  for (const Row& row : input.rows()) {
    TimePoint b = 0;
    TimePoint e = 0;
    if (!DecodeRowInterval(row, nattr, &b, &e)) continue;
    Row key(row.begin(), row.begin() + static_cast<long>(nattr));
    auto [it, inserted] = gid_of.try_emplace(std::move(key),
                                             static_cast<uint32_t>(
                                                 g->intervals.size()));
    if (inserted) {
      g->intervals.emplace_back();
      g->keys.push_back(it->first);
    }
    g->intervals[it->second].emplace_back(b, e);
  }
}

}  // namespace

Relation CoalesceNative(const Relation& input, const OpContext& ctx) {
  size_t nattr = NonTemporalArity(input, "Coalesce");
  CoalesceGroups groups;
  if (!TryColumnarCoalesceGroups(input, nattr, &groups)) {
    RowCoalesceGroups(input, nattr, &groups);
  }
  size_t ngroups = groups.intervals.size();

  // The per-group sweeps are independent: chunks of groups fan out to
  // the pool, each into its own segment slots.
  std::vector<std::vector<CoalescedSegment>> segments(ngroups);
  auto ranges = PlanChunks(ctx.num_threads(static_cast<int64_t>(input.size())),
                           static_cast<int64_t>(ngroups),
                           /*min_grain=*/1);
  if (ranges.size() <= 1) {
    std::vector<std::pair<TimePoint, int64_t>> events;
    for (size_t gi = 0; gi < ngroups; ++gi) {
      SweepIntervalsToSegments(groups.intervals[gi], events, segments[gi]);
    }
  } else {
    std::vector<ExecStats> chunk_stats(ranges.size());
    RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
      std::vector<std::pair<TimePoint, int64_t>> events;
      for (int64_t gi = b; gi < e; ++gi) {
        SweepIntervalsToSegments(groups.intervals[static_cast<size_t>(gi)],
                                 events, segments[static_cast<size_t>(gi)]);
      }
      chunk_stats[c].parallel_tasks = 1;
    });
    if (ctx.stats != nullptr) {
      for (const ExecStats& s : chunk_stats) ctx.stats->Merge(s);
    }
  }

  // Emission in group order.  The columnar path gathers the attribute
  // prefix straight from the input columns (dictionary codes copied,
  // dictionaries shared); the row path rebuilds rows.
  if (groups.columnar) {
    std::vector<uint32_t> src;  // input row index per output row
    std::vector<int64_t> out_b;
    std::vector<int64_t> out_e;
    for (size_t gi = 0; gi < ngroups; ++gi) {
      for (const CoalescedSegment& s : segments[gi]) {
        for (int64_t c = 0; c < s.count; ++c) {
          src.push_back(groups.rep[gi]);
          out_b.push_back(s.begin);
          out_e.push_back(s.end);
        }
      }
    }
    size_t n = src.size();
    std::vector<ColumnData> out_cols;
    out_cols.reserve(nattr + 2);
    for (size_t c = 0; c < nattr; ++c) {
      out_cols.push_back(ColumnData::Gather(input.col(c), src));
    }
    out_cols.push_back(ColumnData::FromInts(std::move(out_b)));
    out_cols.push_back(ColumnData::FromInts(std::move(out_e)));
    return Relation::FromColumns(input.schema(), std::move(out_cols), n);
  }
  Relation out(input.schema());
  for (size_t gi = 0; gi < ngroups; ++gi) {
    for (const CoalescedSegment& s : segments[gi]) {
      for (int64_t c = 0; c < s.count; ++c) {
        Row row = groups.keys[gi];
        row.push_back(Value::Int(s.begin));
        row.push_back(Value::Int(s.end));
        out.AddRow(std::move(row));
      }
    }
  }
  return out;
}

Relation CoalesceWindow(const Relation& input) {
  size_t nattr = NonTemporalArity(input, "Coalesce");
  int tcol = static_cast<int>(nattr);
  int dcol = tcol + 1;

  // Step 1 (SQL: UNION ALL of two projections): each tuple becomes a
  // +1 event at its begin and a -1 event at its end.
  Schema ev_schema = input.schema().Prefix(nattr);
  ev_schema.Append(Column("t"));
  ev_schema.Append(Column("delta"));
  Relation events(std::move(ev_schema));
  events.Reserve(input.size() * 2);
  for (const Row& row : input.rows()) {
    TimePoint b = 0;
    TimePoint e = 0;
    if (!DecodeRowInterval(row, nattr, &b, &e)) continue;
    Row open(row.begin(), row.begin() + static_cast<long>(nattr));
    Row close = open;
    open.push_back(Value::Int(b));
    open.push_back(Value::Int(1));
    close.push_back(Value::Int(e));
    close.push_back(Value::Int(-1));
    events.AddRow(std::move(open));
    events.AddRow(std::move(close));
  }

  std::vector<int> partition;
  for (size_t i = 0; i < nattr; ++i) partition.push_back(static_cast<int>(i));

  // Step 2 (SQL: sum(delta) OVER (PARTITION BY attrs ORDER BY t RANGE
  // UNBOUNDED PRECEDING)): open-interval count per time point.
  WindowSpec w_count{partition, {{tcol, true}}, WindowFunc::kRunningSumRange,
                     dcol};
  Relation with_count = ApplyWindow(events, w_count, "cnt");
  int cntcol = dcol + 1;

  // Step 3 (SQL: row_number() OVER (PARTITION BY attrs, t)): keep one
  // row per distinct time point (peers carry the same count).
  std::vector<int> partition_t = partition;
  partition_t.push_back(tcol);
  WindowSpec w_rn{partition_t, {}, WindowFunc::kRowNumber, -1};
  Relation with_rn = ApplyWindow(with_count, w_rn, "rn");
  int rncol = cntcol + 1;
  Relation dedup(with_rn.schema());
  for (const Row& row : with_rn.rows()) {
    if (row[static_cast<size_t>(rncol)].AsInt() == 1) dedup.AddRow(row);
  }

  // Step 4 (SQL: lag(cnt) OVER (PARTITION BY attrs ORDER BY t)): keep
  // only annotation changepoints.
  WindowSpec w_lag{partition, {{tcol, true}}, WindowFunc::kLag, cntcol};
  Relation with_lag = ApplyWindow(dedup, w_lag, "prev_cnt");
  int lagcol = rncol + 1;
  Relation changes(with_lag.schema());
  for (const Row& row : with_lag.rows()) {
    const Value& prev = row[static_cast<size_t>(lagcol)];
    if (prev.is_null() ||
        prev.AsInt() != row[static_cast<size_t>(cntcol)].AsInt()) {
      changes.AddRow(row);
    }
  }

  // Step 5 (SQL: lead(t) OVER (PARTITION BY attrs ORDER BY t)): the end
  // of each maximal interval is the next changepoint.
  WindowSpec w_lead{partition, {{tcol, true}}, WindowFunc::kLead, tcol};
  Relation with_lead = ApplyWindow(changes, w_lead, "next_t");
  int leadcol = lagcol + 1;

  // Step 6 (SQL: final filter + join against a numbers relation to
  // restore multiplicities): emit cnt duplicates per maximal interval.
  Relation out(input.schema());
  for (const Row& row : with_lead.rows()) {
    int64_t cnt = row[static_cast<size_t>(cntcol)].AsInt();
    if (cnt <= 0) continue;
    const Value& next_t = row[static_cast<size_t>(leadcol)];
    if (next_t.is_null()) {
      throw EngineError("coalesce: open interval never closes");
    }
    for (int64_t c = 0; c < cnt; ++c) {
      Row o(row.begin(), row.begin() + static_cast<long>(nattr));
      o.push_back(row[static_cast<size_t>(tcol)]);
      o.push_back(next_t);
      out.AddRow(std::move(o));
    }
  }
  return out;
}

Relation CoalesceRelation(const Relation& input, CoalesceImpl impl,
                          const OpContext& ctx) {
  return impl == CoalesceImpl::kNative ? CoalesceNative(input, ctx)
                                       : CoalesceWindow(input);
}

namespace {
// -1 = unlimited; counts down while a SplitBudgetScope is active.
thread_local int64_t t_split_budget = -1;
}  // namespace

SplitBudgetScope::SplitBudgetScope(int64_t max_fragments)
    : previous_(t_split_budget) {
  t_split_budget = max_fragments;
}

SplitBudgetScope::~SplitBudgetScope() { t_split_budget = previous_; }

Relation SplitRelation(const Relation& left, const Relation& right,
                       const std::vector<int>& group_cols) {
  size_t nattr = NonTemporalArity(left, "Split");
  if (left.schema().size() != right.schema().size()) {
    throw EngineError("Split requires union-compatible inputs");
  }
  std::unordered_map<Row, std::vector<TimePoint>, RowHash, RowEq> endpoints;
  auto collect = [&](const Relation& r) {
    for (const Row& row : r.rows()) {
      TimePoint b = 0;
      TimePoint e = 0;
      if (!DecodeRowInterval(row, nattr, &b, &e)) continue;
      Row key;
      key.reserve(group_cols.size());
      for (int c : group_cols) key.push_back(row[static_cast<size_t>(c)]);
      auto& pts = endpoints[key];
      pts.push_back(b);
      pts.push_back(e);
    }
  };
  collect(left);
  collect(right);
  for (auto& [key, pts] : endpoints) {
    std::sort(pts.begin(), pts.end());
    pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  }
  Relation out(left.schema());
  auto charge_budget = [](int64_t fragments) {
    if (t_split_budget < 0) return;
    t_split_budget -= fragments;
    if (t_split_budget < 0) throw SplitBudgetExceeded();
  };
  for (const Row& row : left.rows()) {
    TimePoint b = 0;
    TimePoint e = 0;
    if (!DecodeRowInterval(row, nattr, &b, &e)) continue;
    Row key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(row[static_cast<size_t>(c)]);
    const std::vector<TimePoint>& pts = endpoints[key];
    TimePoint start = b;
    auto lo = std::upper_bound(pts.begin(), pts.end(), b);
    auto hi = std::lower_bound(lo, pts.end(), e);
    charge_budget(hi - lo + 1);
    for (auto it = lo; it != hi; ++it) {
      Row frag(row.begin(), row.begin() + static_cast<long>(nattr));
      frag.push_back(Value::Int(start));
      frag.push_back(Value::Int(*it));
      out.AddRow(std::move(frag));
      start = *it;
    }
    Row frag(row.begin(), row.begin() + static_cast<long>(nattr));
    frag.push_back(Value::Int(start));
    frag.push_back(Value::Int(e));
    out.AddRow(std::move(frag));
  }
  return out;
}

namespace {

// Partial aggregate for one (group, begin, end) cell.
struct Partial {
  TimePoint begin = 0;
  TimePoint end = 0;
  int64_t star = 0;
  std::vector<AggState> states;
};

// Running sweep state for one aggregate function: count/sum support
// subtraction; min/max keep an ordered multiset of partial extrema
// (min/max distribute over the partial decomposition).
//
// The integer sum is maintained in 128-bit arithmetic so that summing
// endpoint-magnitude values (a TimeDomain touching INT64_MIN/INT64_MAX
// puts such values in plain columns) is never UB: opens and closes
// cancel exactly, a fragment whose true sum fits int64 finalizes as
// that exact integer, and one that does not widens to the double sum —
// the same behavior AggState has on overflow.  (The 128-bit sum itself
// cannot overflow: it would take 2^64 simultaneously open partials.)
struct RunningAgg {
  int64_t count = 0;
  int64_t n_nonint = 0;
  __int128 isum = 0;
  double dsum = 0.0;
  std::map<Value, int64_t> mins;
  std::map<Value, int64_t> maxs;

  void Open(const AggState& s) {
    count += s.count;
    isum += s.isum;
    dsum += s.dsum;
    if (!s.all_int) ++n_nonint;
    if (s.any) {
      ++mins[s.min_v];
      ++maxs[s.max_v];
    }
  }

  void Close(const AggState& s) {
    count -= s.count;
    isum -= s.isum;
    dsum -= s.dsum;
    if (!s.all_int) --n_nonint;
    if (s.any) {
      if (--mins[s.min_v] == 0) mins.erase(s.min_v);
      if (--maxs[s.max_v] == 0) maxs.erase(s.max_v);
    }
  }

  Value Finalize(AggFunc f, int64_t star) const {
    switch (f) {
      case AggFunc::kCountStar:
        return Value::Int(star);
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        if (n_nonint == 0 &&
            isum >= static_cast<__int128>(
                        std::numeric_limits<int64_t>::min()) &&
            isum <= static_cast<__int128>(
                        std::numeric_limits<int64_t>::max())) {
          return Value::Int(static_cast<int64_t>(isum));
        }
        return Value::Double(dsum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Double(dsum / static_cast<double>(count));
      case AggFunc::kMin:
        return mins.empty() ? Value::Null() : mins.begin()->first;
      case AggFunc::kMax:
        return maxs.empty() ? Value::Null() : maxs.rbegin()->first;
    }
    throw EngineError("unknown aggregate function");
  }
};

}  // namespace

Relation SplitAggregateRelation(const Relation& input,
                                const std::vector<int>& group_cols,
                                const std::vector<AggExpr>& aggs,
                                bool gap_rows, const TimeDomain& domain,
                                bool pre_aggregate, const OpContext& ctx) {
  size_t nattr = NonTemporalArity(input, "SplitAggregate");
  // gap_rows with grouping emits full-domain coverage per *observed*
  // group (count 0 where the group is absent) -- Teradata-style grouped
  // gaps; without grouping it implements the paper's correct global
  // aggregation.

  // Output schema: group columns, aggregate columns, fragment interval.
  Schema schema;
  for (int c : group_cols) {
    schema.Append(input.schema().at(static_cast<size_t>(c)));
  }
  for (const AggExpr& a : aggs) schema.Append(Column(a.name));
  schema.Append(Column("a_begin"));
  schema.Append(Column("a_end"));

  // Phase 1: pre-aggregate per (group, begin, end).  Without the
  // optimization every row becomes its own partial (ablation mode).
  // Groups are kept in first-appearance order -- identical for both
  // storage layouts, so the fragment output order is a pure function of
  // the logical input.
  std::vector<Row> group_keys;
  std::vector<std::vector<Partial>> group_partials;

  // Columnar fast path: packed uint64 keys over the group columns and
  // raw endpoint arrays.  Aggregate arguments must be plain column
  // references (they are in every rewriter-produced plan); falls back
  // whenever the row path could throw (non-int or NULL endpoints) or
  // packed keys cannot represent the grouping exactly.
  // periodk-lint: columnar-lane-begin(split-aggregate-phase1)
  auto columnar_phase1 = [&]() -> bool {
    if (!input.is_columnar()) return false;
    const std::vector<ColumnData>& cols = input.columns();
    const ColumnData& bc = cols[nattr];
    const ColumnData& ec = cols[nattr + 1];
    if (bc.tag() != ColumnTag::kInt || bc.has_nulls()) return false;
    if (ec.tag() != ColumnTag::kInt || ec.has_nulls()) return false;
    std::vector<int> agg_cols(aggs.size(), -1);
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].func == AggFunc::kCountStar) continue;
      const ExprPtr& arg = aggs[a].arg;
      if (arg == nullptr || arg->kind != ExprKind::kColumn) return false;
      agg_cols[a] = arg->column;
    }
    std::vector<uint64_t> packed;
    if (!BuildPackedKeys(cols, group_cols, input.size(), &packed)) {
      return false;
    }
    const int64_t* bs = bc.ints();
    const int64_t* es = ec.ints();
    size_t gwidth = group_cols.size() + 1;
    size_t cwidth = gwidth + (pre_aggregate ? 2 : 3);
    PackedKeyMap group_map(gwidth, /*expected=*/64);
    PackedKeyMap cell_map(cwidth, /*expected=*/64);
    std::vector<uint32_t> group_rep;  // representative input row per group
    std::vector<std::pair<uint32_t, uint32_t>> cell_ref;  // cell id -> slot
    std::vector<uint64_t> cell_key(cwidth);
    int64_t row_ordinal = 0;
    for (size_t i = 0; i < input.size(); ++i) {
      if (bs[i] >= es[i]) continue;
      const uint64_t* gkey = &packed[i * gwidth];
      uint32_t gid = group_map.FindOrInsert(gkey);
      if (gid == group_partials.size()) {
        group_partials.emplace_back();
        group_rep.push_back(static_cast<uint32_t>(i));
      }
      std::copy(gkey, gkey + gwidth, cell_key.begin());
      cell_key[gwidth] = static_cast<uint64_t>(bs[i]);
      cell_key[gwidth + 1] = static_cast<uint64_t>(es[i]);
      if (!pre_aggregate) {
        cell_key[gwidth + 2] = static_cast<uint64_t>(row_ordinal++);
      }
      uint32_t cid = cell_map.FindOrInsert(cell_key.data());
      if (cid == cell_ref.size()) {
        std::vector<Partial>& partials = group_partials[gid];
        cell_ref.emplace_back(gid, static_cast<uint32_t>(partials.size()));
        Partial p;
        p.begin = bs[i];
        p.end = es[i];
        p.states.resize(aggs.size());
        partials.push_back(std::move(p));
      }
      Partial& p = group_partials[cell_ref[cid].first][cell_ref[cid].second];
      p.star += 1;
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (agg_cols[a] < 0) continue;
        p.states[a].AccumulateColumn(cols[static_cast<size_t>(agg_cols[a])],
                                     i);
      }
    }
    group_keys.reserve(group_partials.size());
    for (uint32_t rep : group_rep) {
      Row key;
      key.reserve(group_cols.size());
      for (int c : group_cols) {
        key.push_back(cols[static_cast<size_t>(c)].Get(rep));
      }
      group_keys.push_back(std::move(key));
    }
    return true;
  };
  // periodk-lint: columnar-lane-end(split-aggregate-phase1)

  if (!columnar_phase1()) {
    std::unordered_map<Row, uint32_t, RowHash, RowEq> gid_of;
    std::unordered_map<Row, size_t, RowHash, RowEq> cell_index;
    int64_t row_ordinal = 0;
    for (const Row& row : input.rows()) {
      TimePoint b = 0;
      TimePoint e = 0;
      if (!DecodeRowInterval(row, nattr, &b, &e)) continue;
      Row group;
      group.reserve(group_cols.size());
      for (int c : group_cols) group.push_back(row[static_cast<size_t>(c)]);
      auto [git, ginserted] = gid_of.try_emplace(
          group, static_cast<uint32_t>(group_partials.size()));
      if (ginserted) {
        group_keys.push_back(group);
        group_partials.emplace_back();
      }
      Row cell = std::move(group);
      cell.push_back(Value::Int(b));
      cell.push_back(Value::Int(e));
      if (!pre_aggregate) cell.push_back(Value::Int(row_ordinal++));
      auto [it, inserted] = cell_index.try_emplace(std::move(cell), 0);
      std::vector<Partial>& partials = group_partials[git->second];
      if (inserted) {
        it->second = partials.size();
        Partial p;
        p.begin = b;
        p.end = e;
        p.states.resize(aggs.size());
        partials.push_back(std::move(p));
      }
      Partial& p = partials[it->second];
      p.star += 1;
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i].func == AggFunc::kCountStar) continue;
        p.states[i].Accumulate(aggs[i].arg->Eval(row));
      }
    }
  }
  // Global aggregation over an empty input still produces the
  // full-domain gap row.  With grouping there is no such row: gaps are
  // emitted per *observed* group, and an empty input has none (a
  // synthetic empty-key group would emit rows narrower than the output
  // schema).
  if (gap_rows && group_cols.empty() && group_partials.empty()) {
    group_keys.emplace_back();
    group_partials.emplace_back();
  }

  // Phase 2: per group, sweep partial endpoints maintaining running
  // aggregate state; each elementary fragment gets the finalized values.
  auto sweep_group = [&](const Row& group, const std::vector<Partial>& partials,
                         Relation& out) {
    // (time, is_close, partial index); closes and opens at equal time
    // are both applied before the next segment is emitted.
    std::vector<std::tuple<TimePoint, int, size_t>> events;
    events.reserve(partials.size() * 2);
    for (size_t i = 0; i < partials.size(); ++i) {
      events.emplace_back(partials[i].begin, 0, i);
      events.emplace_back(partials[i].end, 1, i);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) {
                return std::get<0>(a) < std::get<0>(b);
              });
    std::vector<RunningAgg> running(aggs.size());
    int64_t star = 0;
    TimePoint prev = domain.tmin;
    bool have_prev = gap_rows;
    auto emit = [&](TimePoint from, TimePoint to) {
      if (gap_rows) {
        // Gap rows declare the result complete over [tmin, tmax); input
        // intervals may exceed the domain, so fragments are clamped to
        // it — otherwise the output would claim validity at time points
        // the domain does not contain.
        from = std::max(from, domain.tmin);
        to = std::min(to, domain.tmax);
      }
      if (from >= to) return;
      Row row = group;
      for (size_t i = 0; i < aggs.size(); ++i) {
        row.push_back(running[i].Finalize(aggs[i].func, star));
      }
      row.push_back(Value::Int(from));
      row.push_back(Value::Int(to));
      out.AddRow(std::move(row));
    };
    size_t i = 0;
    while (i < events.size()) {
      TimePoint t = std::get<0>(events[i]);
      if (have_prev && (star > 0 || gap_rows)) emit(prev, t);
      while (i < events.size() && std::get<0>(events[i]) == t) {
        const Partial& p = partials[std::get<2>(events[i])];
        if (std::get<1>(events[i]) == 0) {
          star += p.star;
          for (size_t a = 0; a < aggs.size(); ++a) running[a].Open(p.states[a]);
        } else {
          star -= p.star;
          for (size_t a = 0; a < aggs.size(); ++a) {
            running[a].Close(p.states[a]);
          }
        }
        ++i;
      }
      prev = t;
      have_prev = true;
    }
    if (gap_rows && prev < domain.tmax) emit(prev, domain.tmax);
  };

  // The per-group sweeps are independent; chunks of groups fan out to
  // the pool exactly like the coalesce sweep.
  size_t ngroups = group_partials.size();
  auto ranges = PlanChunks(ctx.num_threads(static_cast<int64_t>(input.size())),
                           static_cast<int64_t>(ngroups),
                           /*min_grain=*/1);
  if (ranges.size() <= 1) {
    Relation out(std::move(schema));
    for (size_t gi = 0; gi < ngroups; ++gi) {
      sweep_group(group_keys[gi], group_partials[gi], out);
    }
    return out;
  }
  std::vector<Relation> outs;
  outs.reserve(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) outs.emplace_back(schema);
  std::vector<ExecStats> chunk_stats(ranges.size());
  RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
    for (int64_t gi = b; gi < e; ++gi) {
      sweep_group(group_keys[static_cast<size_t>(gi)],
                  group_partials[static_cast<size_t>(gi)], outs[c]);
    }
    chunk_stats[c].parallel_tasks = 1;
  });
  return GatherChunks(std::move(outs), std::move(chunk_stats), ctx);
}

Relation TimesliceEncodedAt(const Relation& input, TimePoint t,
                            int begin_col, int end_col) {
  int arity = static_cast<int>(input.schema().size());
  if (arity < 2 || begin_col < 0 || end_col < 0 || begin_col >= arity ||
      end_col >= arity || begin_col == end_col) {
    throw EngineError(StrCat("TimesliceAt: bad endpoint columns (", begin_col,
                             ", ", end_col, ") for arity ", arity));
  }
  Schema schema;
  std::vector<int> keep;
  keep.reserve(static_cast<size_t>(arity) - 2);
  for (int c = 0; c < arity; ++c) {
    if (c == begin_col || c == end_col) continue;
    keep.push_back(c);
    schema.Append(input.schema().at(static_cast<size_t>(c)));
  }
  // Columnar inputs with pure int endpoints filter on the raw arrays
  // and gather the kept columns; row order is preserved either way.
  // (Any other endpoint representation must throw through TimeOf, so it
  // takes the row loop.)
  // periodk-lint: columnar-lane-begin(timeslice)
  if (input.is_columnar()) {
    const ColumnData& bc = input.col(static_cast<size_t>(begin_col));
    const ColumnData& ec = input.col(static_cast<size_t>(end_col));
    if (bc.tag() == ColumnTag::kInt && !bc.has_nulls() &&
        ec.tag() == ColumnTag::kInt && !ec.has_nulls()) {
      const int64_t* bs = bc.ints();
      const int64_t* es = ec.ints();
      std::vector<uint32_t> alive;
      for (size_t i = 0; i < input.size(); ++i) {
        if (bs[i] <= t && t < es[i]) alive.push_back(static_cast<uint32_t>(i));
      }
      std::vector<ColumnData> cols;
      cols.reserve(keep.size());
      for (int c : keep) {
        cols.push_back(
            ColumnData::Gather(input.col(static_cast<size_t>(c)), alive));
      }
      return Relation::FromColumns(std::move(schema), std::move(cols),
                                   alive.size());
    }
  }
  // periodk-lint: columnar-lane-end(timeslice)
  Relation out(std::move(schema));
  for (const Row& row : input.rows()) {
    TimePoint b = TimeOf(row[static_cast<size_t>(begin_col)]);
    TimePoint e = TimeOf(row[static_cast<size_t>(end_col)]);
    if (b <= t && t < e) {
      Row projected;
      projected.reserve(keep.size());
      for (int c : keep) projected.push_back(row[static_cast<size_t>(c)]);
      out.AddRow(std::move(projected));
    }
  }
  return out;
}

Relation TimesliceEncoded(const Relation& input, TimePoint t) {
  size_t nattr = NonTemporalArity(input, "Timeslice");
  // periodk-lint: columnar-lane-begin(timeslice-encoded)
  if (input.is_columnar()) {
    const ColumnData& bc = input.col(nattr);
    const ColumnData& ec = input.col(nattr + 1);
    if (bc.tag() == ColumnTag::kInt && !bc.has_nulls() &&
        ec.tag() == ColumnTag::kInt && !ec.has_nulls()) {
      const int64_t* bs = bc.ints();
      const int64_t* es = ec.ints();
      std::vector<uint32_t> alive;
      for (size_t i = 0; i < input.size(); ++i) {
        if (bs[i] <= t && t < es[i]) alive.push_back(static_cast<uint32_t>(i));
      }
      std::vector<ColumnData> cols;
      cols.reserve(nattr);
      for (size_t c = 0; c < nattr; ++c) {
        cols.push_back(ColumnData::Gather(input.col(c), alive));
      }
      return Relation::FromColumns(input.schema().Prefix(nattr),
                                   std::move(cols), alive.size());
    }
  }
  // periodk-lint: columnar-lane-end(timeslice-encoded)
  Relation out(input.schema().Prefix(nattr));
  for (const Row& row : input.rows()) {
    TimePoint b = TimeOf(row[nattr]);
    TimePoint e = TimeOf(row[nattr + 1]);
    // Pure comparisons — no endpoint arithmetic, so the whole int64
    // range (a TimeDomain touching INT64_MIN/INT64_MAX) is safe.
    if (b <= t && t < e) {
      out.AddRow(Row(row.begin(), row.begin() + static_cast<long>(nattr)));
    }
  }
  return out;
}

}  // namespace periodk
