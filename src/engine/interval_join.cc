#include "engine/interval_join.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "temporal/interval.h"

namespace periodk {

namespace {

// One input row staged for the sweep with its decoded interval.
struct SweepRow {
  TimePoint begin = 0;
  TimePoint end = 0;
  const Row* row = nullptr;
};

// Per-equi-key bucket.  Rows whose endpoint columns decode to a
// well-formed interval (integers, begin < end) ride the sweep; the rest
// -- NULL or string endpoints, empty-validity rows -- can still satisfy
// the raw predicate under SQL comparison semantics (an empty interval's
// `b1 < e2 AND b2 < e1` holds against any interval containing it), so
// they take the nested-loop slow lane.
struct Bucket {
  std::vector<SweepRow> fast_left;
  std::vector<SweepRow> fast_right;
  std::vector<const Row*> slow_left;
  std::vector<const Row*> slow_right;
};

bool DecodeInterval(const Row& row, int bcol, int ecol, TimePoint* b,
                    TimePoint* e) {
  const Value& vb = row[static_cast<size_t>(bcol)];
  const Value& ve = row[static_cast<size_t>(ecol)];
  if (vb.type() != ValueType::kInt || ve.type() != ValueType::kInt) {
    return false;
  }
  *b = vb.AsInt();
  *e = ve.AsInt();
  return *b < *e;
}

Row Concat(const Row& lrow, const Row& rrow) {
  Row combined;
  combined.reserve(lrow.size() + rrow.size());
  combined.insert(combined.end(), lrow.begin(), lrow.end());
  combined.insert(combined.end(), rrow.begin(), rrow.end());
  return combined;
}

// Reusable per-worker sweep scratch: the active sets keep arrival
// (begin-stable) order and drop expired entries lazily during the
// emission scan.  Arrival order makes the emitted row order a pure
// function of the staged rows — removing a row that never overlaps
// anything (index pruning) cannot perturb the order of the remaining
// pairs, which is what makes the pruned join row-identical.
using ActiveEntry = std::pair<TimePoint, const Row*>;
struct SweepScratch {
  std::vector<ActiveEntry> active_l;
  std::vector<ActiveEntry> active_r;
};

/// Joins one bucket into `out`.  Mutates the bucket (sorts its staged
/// rows), so each bucket must be processed by exactly one worker.
void ProcessBucket(const Plan& plan, Bucket& bucket, Relation& out,
                   SweepScratch& scratch) {
  const JoinAnalysis& ja = plan.join;
  // The sweep has already established the equi-keys (by bucketing) and
  // the overlap conjunct; only the residual remains to check.
  auto emit_fast = [&](const Row& lrow, const Row& rrow) {
    Row combined = Concat(lrow, rrow);
    if (ja.residual == nullptr || ja.residual->EvalBool(combined)) {
      out.AddRow(std::move(combined));
    }
  };
  // Slow-lane pairs get the full original predicate: re-checking the
  // already-matched keys is harmless and keeps the lane trivially
  // equivalent to the nested-loop reference.
  auto emit_slow = [&](const Row& lrow, const Row& rrow) {
    Row combined = Concat(lrow, rrow);
    if (plan.predicate->EvalBool(combined)) {
      out.AddRow(std::move(combined));
    }
  };

  // Slow lane first: every pair with a malformed side.
  for (const Row* lrow : bucket.slow_left) {
    for (const SweepRow& r : bucket.fast_right) emit_slow(*lrow, *r.row);
    for (const Row* rrow : bucket.slow_right) emit_slow(*lrow, *rrow);
  }
  for (const SweepRow& l : bucket.fast_left) {
    for (const Row* rrow : bucket.slow_right) emit_slow(*l.row, *rrow);
  }

  // Plane sweep over the well-formed intervals: advance both inputs
  // in begin order; an arriving interval pairs with every active
  // opposite interval that has not yet ended.  Each overlapping pair
  // is emitted exactly once, when its later-starting member arrives.
  std::vector<SweepRow>& ls = bucket.fast_left;
  std::vector<SweepRow>& rs = bucket.fast_right;
  if (ls.empty() || rs.empty()) return;
  auto by_begin = [](const SweepRow& a, const SweepRow& b) {
    return a.begin < b.begin;
  };
  // Stable: rows sharing a begin stay in staging (= source) order, so
  // the emitted order survives the removal of non-emitting rows.
  std::stable_sort(ls.begin(), ls.end(), by_begin);
  std::stable_sort(rs.begin(), rs.end(), by_begin);
  std::vector<ActiveEntry>& active_l = scratch.active_l;
  std::vector<ActiveEntry>& active_r = scratch.active_r;
  active_l.clear();
  active_r.clear();
  // Emits `cur` against every still-active opposite entry, compacting
  // expired entries (end <= cur.begin) out in the same pass.
  auto emit_against = [](const SweepRow& cur,
                         std::vector<ActiveEntry>& opposite,
                         const auto& emit_pair) {
    size_t kept = 0;
    for (ActiveEntry& entry : opposite) {
      if (entry.first > cur.begin) {
        emit_pair(entry);
        opposite[kept++] = entry;
      }
    }
    opposite.resize(kept);
  };
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() || j < rs.size()) {
    bool take_left =
        j >= rs.size() || (i < ls.size() && ls[i].begin <= rs[j].begin);
    if (take_left) {
      const SweepRow& cur = ls[i++];
      emit_against(cur, active_r, [&](const ActiveEntry& entry) {
        emit_fast(*cur.row, *entry.second);
      });
      active_l.emplace_back(cur.end, cur.row);
    } else {
      const SweepRow& cur = rs[j++];
      emit_against(cur, active_l, [&](const ActiveEntry& entry) {
        emit_fast(*entry.second, *cur.row);
      });
      active_r.emplace_back(cur.end, cur.row);
    }
  }
}

}  // namespace

Relation NestedLoopJoin(const Plan& plan, const Relation& left,
                        const Relation& right) {
  Relation out(plan.schema);
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      Row combined = Concat(lrow, rrow);
      if (plan.predicate->EvalBool(combined)) {
        out.AddRow(std::move(combined));
      }
    }
  }
  return out;
}

Relation IntervalOverlapJoin(const Plan& plan, const Relation& left,
                             const Relation& right, const OpContext& ctx,
                             const JoinCandidates& candidates) {
  const JoinAnalysis& ja = plan.join;
  if (!ja.overlap.has_value()) {
    throw EngineError("IntervalOverlapJoin requires an overlap conjunct");
  }
  const OverlapSpec& ov = *ja.overlap;

  // Hash-partition both inputs on the equi-keys (single bucket for a
  // pure temporal join).  NULL keys never equi-join, matching the
  // three-valued semantics of the predicate they came from.
  std::unordered_map<Row, Bucket, RowHash, RowEq> buckets;
  auto stage = [&](const Relation& rel, bool is_left) {
    int bcol = is_left ? ov.left_begin : ov.right_begin;
    int ecol = is_left ? ov.left_end : ov.right_end;
    const std::vector<char>* keep =
        is_left ? candidates.left : candidates.right;
    const auto& rows = rel.rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      Row key;
      key.reserve(ja.equi_keys.size());
      bool has_null = false;
      for (const auto& [l, r] : ja.equi_keys) {
        const Value& v = row[static_cast<size_t>(is_left ? l : r)];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null) continue;
      Bucket& bucket = buckets[key];
      TimePoint b = 0;
      TimePoint e = 0;
      if (DecodeInterval(row, bcol, ecol, &b, &e)) {
        // A pruned row provably overlaps nothing on the opposite side.
        // Its bucket is still created above so the partition set — and
        // with it the output's partition order — matches the unpruned
        // run exactly.
        if (keep == nullptr || (*keep)[i] != 0) {
          (is_left ? bucket.fast_left : bucket.fast_right)
              .push_back(SweepRow{b, e, &row});
        }
      } else {
        (is_left ? bucket.slow_left : bucket.slow_right).push_back(&row);
      }
    }
  };
  stage(left, /*is_left=*/true);
  stage(right, /*is_left=*/false);

  // The partitions the sweep needs anyway are the parallel work units:
  // chunks of buckets fan out to the pool, each emitting into its own
  // output slot, concatenated in partition order afterwards — so the
  // result row order depends only on the chunk plan, not on worker
  // scheduling.  A single-bucket join (pure temporal, no equi-keys)
  // stays sequential by construction.
  std::vector<Bucket*> ordered;
  ordered.reserve(buckets.size());
  for (auto& [key, bucket] : buckets) ordered.push_back(&bucket);
  auto ranges = PlanChunks(ctx.num_threads(),
                           static_cast<int64_t>(ordered.size()),
                           /*min_grain=*/1);

  if (ranges.size() <= 1) {
    Relation out(plan.schema);
    SweepScratch scratch;
    for (Bucket* bucket : ordered) {
      ProcessBucket(plan, *bucket, out, scratch);
    }
    return out;
  }
  std::vector<Relation> outs(ranges.size(), Relation(plan.schema));
  std::vector<ExecStats> chunk_stats(ranges.size());
  RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
    SweepScratch scratch;
    for (int64_t i = b; i < e; ++i) {
      ProcessBucket(plan, *ordered[static_cast<size_t>(i)], outs[c], scratch);
    }
    chunk_stats[c].parallel_tasks = 1;
  });
  return GatherChunks(std::move(outs), std::move(chunk_stats), ctx);
}

}  // namespace periodk
