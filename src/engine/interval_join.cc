#include "engine/interval_join.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "temporal/interval.h"

namespace periodk {

namespace {

// One input row staged for the sweep with its decoded interval.
struct SweepRow {
  TimePoint begin = 0;
  TimePoint end = 0;
  const Row* row = nullptr;
};

// Per-equi-key bucket.  Rows whose endpoint columns decode to a
// well-formed interval (integers, begin < end) ride the sweep; the rest
// -- NULL or string endpoints, empty-validity rows -- can still satisfy
// the raw predicate under SQL comparison semantics (an empty interval's
// `b1 < e2 AND b2 < e1` holds against any interval containing it), so
// they take the nested-loop slow lane.
struct Bucket {
  std::vector<SweepRow> fast_left;
  std::vector<SweepRow> fast_right;
  std::vector<const Row*> slow_left;
  std::vector<const Row*> slow_right;
};

bool DecodeInterval(const Row& row, int bcol, int ecol, TimePoint* b,
                    TimePoint* e) {
  const Value& vb = row[static_cast<size_t>(bcol)];
  const Value& ve = row[static_cast<size_t>(ecol)];
  if (vb.type() != ValueType::kInt || ve.type() != ValueType::kInt) {
    return false;
  }
  *b = vb.AsInt();
  *e = ve.AsInt();
  return *b < *e;
}

Row Concat(const Row& lrow, const Row& rrow) {
  Row combined;
  combined.reserve(lrow.size() + rrow.size());
  combined.insert(combined.end(), lrow.begin(), lrow.end());
  combined.insert(combined.end(), rrow.begin(), rrow.end());
  return combined;
}

// Reusable per-worker sweep scratch: the active sets keep arrival
// (begin-stable) order and drop expired entries lazily during the
// emission scan.  Arrival order makes the emitted row order a pure
// function of the staged rows — removing a row that never overlaps
// anything (index pruning) cannot perturb the order of the remaining
// pairs, which is what makes the pruned join row-identical.
using ActiveEntry = std::pair<TimePoint, const Row*>;
struct SweepScratch {
  std::vector<ActiveEntry> active_l;
  std::vector<ActiveEntry> active_r;
};

/// Joins one bucket into `out`.  Mutates the bucket (sorts its staged
/// rows), so each bucket must be processed by exactly one worker.
void ProcessBucket(const Plan& plan, Bucket& bucket, Relation& out,
                   SweepScratch& scratch) {
  const JoinAnalysis& ja = plan.join;
  // The sweep has already established the equi-keys (by bucketing) and
  // the overlap conjunct; only the residual remains to check.
  auto emit_fast = [&](const Row& lrow, const Row& rrow) {
    Row combined = Concat(lrow, rrow);
    if (ja.residual == nullptr || ja.residual->EvalBool(combined)) {
      out.AddRow(std::move(combined));
    }
  };
  // Slow-lane pairs get the full original predicate: re-checking the
  // already-matched keys is harmless and keeps the lane trivially
  // equivalent to the nested-loop reference.
  auto emit_slow = [&](const Row& lrow, const Row& rrow) {
    Row combined = Concat(lrow, rrow);
    if (plan.predicate->EvalBool(combined)) {
      out.AddRow(std::move(combined));
    }
  };

  // Slow lane first: every pair with a malformed side.
  for (const Row* lrow : bucket.slow_left) {
    for (const SweepRow& r : bucket.fast_right) emit_slow(*lrow, *r.row);
    for (const Row* rrow : bucket.slow_right) emit_slow(*lrow, *rrow);
  }
  for (const SweepRow& l : bucket.fast_left) {
    for (const Row* rrow : bucket.slow_right) emit_slow(*l.row, *rrow);
  }

  // Plane sweep over the well-formed intervals: advance both inputs
  // in begin order; an arriving interval pairs with every active
  // opposite interval that has not yet ended.  Each overlapping pair
  // is emitted exactly once, when its later-starting member arrives.
  std::vector<SweepRow>& ls = bucket.fast_left;
  std::vector<SweepRow>& rs = bucket.fast_right;
  if (ls.empty() || rs.empty()) return;
  auto by_begin = [](const SweepRow& a, const SweepRow& b) {
    return a.begin < b.begin;
  };
  // Stable: rows sharing a begin stay in staging (= source) order, so
  // the emitted order survives the removal of non-emitting rows.
  std::stable_sort(ls.begin(), ls.end(), by_begin);
  std::stable_sort(rs.begin(), rs.end(), by_begin);
  std::vector<ActiveEntry>& active_l = scratch.active_l;
  std::vector<ActiveEntry>& active_r = scratch.active_r;
  active_l.clear();
  active_r.clear();
  // Emits `cur` against every still-active opposite entry, compacting
  // expired entries (end <= cur.begin) out in the same pass.
  auto emit_against = [](const SweepRow& cur,
                         std::vector<ActiveEntry>& opposite,
                         const auto& emit_pair) {
    size_t kept = 0;
    for (ActiveEntry& entry : opposite) {
      if (entry.first > cur.begin) {
        emit_pair(entry);
        opposite[kept++] = entry;
      }
    }
    opposite.resize(kept);
  };
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() || j < rs.size()) {
    bool take_left =
        j >= rs.size() || (i < ls.size() && ls[i].begin <= rs[j].begin);
    if (take_left) {
      const SweepRow& cur = ls[i++];
      emit_against(cur, active_r, [&](const ActiveEntry& entry) {
        emit_fast(*cur.row, *entry.second);
      });
      active_l.emplace_back(cur.end, cur.row);
    } else {
      const SweepRow& cur = rs[j++];
      emit_against(cur, active_l, [&](const ActiveEntry& entry) {
        emit_fast(*entry.second, *cur.row);
      });
      active_r.emplace_back(cur.end, cur.row);
    }
  }
}

// --- Columnar fast lane -------------------------------------------------
//
// When both inputs are columnar, the endpoint columns are pure non-null
// ints with every interval well-formed, the equi-keys pack into uint64
// words and there is no residual predicate, the join never touches a
// Row: buckets hold row *indexes*, the sweep emits (left, right) index
// pairs, and the output is gathered column-by-column.  Any condition
// the packed encoding cannot reproduce exactly falls back to the row
// path above, which remains the semantic reference.

struct FastSweepRow {
  TimePoint begin = 0;
  TimePoint end = 0;
  uint32_t row = 0;
};

struct FastBucket {
  std::vector<FastSweepRow> left;
  std::vector<FastSweepRow> right;
};

using RowPair = std::pair<uint32_t, uint32_t>;

struct FastSweepScratch {
  std::vector<std::pair<TimePoint, uint32_t>> active_l;
  std::vector<std::pair<TimePoint, uint32_t>> active_r;
};

// Index-pair twin of ProcessBucket's sweep: same begin-stable sort,
// same arrival-order active sets, so it emits pairs in exactly the
// order the row sweep emits rows.
void SweepFastBucket(FastBucket& bucket, FastSweepScratch& scratch,
                     std::vector<RowPair>& out) {
  std::vector<FastSweepRow>& ls = bucket.left;
  std::vector<FastSweepRow>& rs = bucket.right;
  if (ls.empty() || rs.empty()) return;
  auto by_begin = [](const FastSweepRow& a, const FastSweepRow& b) {
    return a.begin < b.begin;
  };
  std::stable_sort(ls.begin(), ls.end(), by_begin);
  std::stable_sort(rs.begin(), rs.end(), by_begin);
  auto& active_l = scratch.active_l;
  auto& active_r = scratch.active_r;
  active_l.clear();
  active_r.clear();
  auto emit_against = [](const FastSweepRow& cur,
                         std::vector<std::pair<TimePoint, uint32_t>>& opposite,
                         const auto& emit_pair) {
    size_t kept = 0;
    for (auto& entry : opposite) {
      if (entry.first > cur.begin) {
        emit_pair(entry.second);
        opposite[kept++] = entry;
      }
    }
    opposite.resize(kept);
  };
  size_t i = 0;
  size_t j = 0;
  while (i < ls.size() || j < rs.size()) {
    bool take_left =
        j >= rs.size() || (i < ls.size() && ls[i].begin <= rs[j].begin);
    if (take_left) {
      const FastSweepRow& cur = ls[i++];
      emit_against(cur, active_r,
                   [&](uint32_t r) { out.emplace_back(cur.row, r); });
      active_l.emplace_back(cur.end, cur.row);
    } else {
      const FastSweepRow& cur = rs[j++];
      emit_against(cur, active_l,
                   [&](uint32_t l) { out.emplace_back(l, cur.row); });
      active_r.emplace_back(cur.end, cur.row);
    }
  }
}

// Packs both sides' equi-key columns into comparable uint64 words.
// Word equality must coincide with Value equality *across* the two
// relations, so: the paired columns must share a tag (a mixed pairing
// like int keys meeting double keys, where 3 == 3.0, has no shared
// word encoding and keeps the row path), and the right side's
// dictionary codes are translated into the left column's code space
// (both dictionaries are sorted).  Right-side strings absent from the
// left dictionary get codes past the left dictionary's range --
// distinct from every left code and from each other, so those rows
// bucket separately and never match, exactly like the row path.
bool BuildJoinKeys(const Relation& left, const Relation& right,
                   const std::vector<std::pair<int, int>>& equi_keys,
                   std::vector<uint64_t>* lpacked,
                   std::vector<uint64_t>* rpacked) {
  std::vector<int> lcols;
  std::vector<int> rcols;
  lcols.reserve(equi_keys.size());
  rcols.reserve(equi_keys.size());
  for (const auto& [l, r] : equi_keys) {
    lcols.push_back(l);
    rcols.push_back(r);
  }
  for (size_t j = 0; j < lcols.size(); ++j) {
    if (left.col(static_cast<size_t>(lcols[j])).tag() !=
        right.col(static_cast<size_t>(rcols[j])).tag()) {
      return false;
    }
  }
  if (!BuildPackedKeys(left.columns(), lcols, left.size(), lpacked)) {
    return false;
  }
  if (!BuildPackedKeys(right.columns(), rcols, right.size(), rpacked)) {
    return false;
  }
  size_t width = lcols.size() + 1;
  for (size_t j = 0; j < lcols.size(); ++j) {
    const ColumnData& lc = left.col(static_cast<size_t>(lcols[j]));
    const ColumnData& rc = right.col(static_cast<size_t>(rcols[j]));
    if (lc.tag() != ColumnTag::kString || lc.dict() == rc.dict()) continue;
    const std::vector<std::string>& lv = lc.dict()->values();
    const std::vector<std::string>& rv = rc.dict()->values();
    std::vector<uint64_t> remap(rv.size());
    for (size_t c = 0; c < rv.size(); ++c) {
      auto it = std::lower_bound(lv.begin(), lv.end(), rv[c]);
      remap[c] = (it != lv.end() && *it == rv[c])
                     ? static_cast<uint64_t>(it - lv.begin())
                     : lv.size() + c;
    }
    uint64_t* word = rpacked->data() + j;
    const uint64_t* nulls = rpacked->data() + lcols.size();
    for (size_t i = 0; i < right.size(); ++i, word += width, nulls += width) {
      if ((*nulls & (uint64_t{1} << j)) == 0) *word = remap[*word];
    }
  }
  return true;
}

// periodk-lint: columnar-lane-begin(overlap-join)
bool TryColumnarOverlapJoin(const Plan& plan, const Relation& left,
                            const Relation& right, const OpContext& ctx,
                            const JoinCandidates& candidates,
                            Relation* result) {
  const JoinAnalysis& ja = plan.join;
  const OverlapSpec& ov = *ja.overlap;
  if (ja.residual != nullptr) return false;
  if (!left.is_columnar() || !right.is_columnar()) return false;
  auto endpoints = [](const Relation& rel, int bcol, int ecol,
                      const int64_t** bs, const int64_t** es) {
    const ColumnData& bc = rel.col(static_cast<size_t>(bcol));
    const ColumnData& ec = rel.col(static_cast<size_t>(ecol));
    if (bc.tag() != ColumnTag::kInt || bc.has_nulls()) return false;
    if (ec.tag() != ColumnTag::kInt || ec.has_nulls()) return false;
    *bs = bc.ints();
    *es = ec.ints();
    // A malformed interval (begin >= end) rides the row path's slow
    // lane, where it can still emit under SQL comparison semantics --
    // one such row on either side disables the fast lane entirely.
    for (size_t i = 0; i < rel.size(); ++i) {
      if ((*bs)[i] >= (*es)[i]) return false;
    }
    return true;
  };
  const int64_t* lb = nullptr;
  const int64_t* le = nullptr;
  const int64_t* rb = nullptr;
  const int64_t* re = nullptr;
  if (!endpoints(left, ov.left_begin, ov.left_end, &lb, &le)) return false;
  if (!endpoints(right, ov.right_begin, ov.right_end, &rb, &re)) return false;
  std::vector<uint64_t> lpacked;
  std::vector<uint64_t> rpacked;
  if (!BuildJoinKeys(left, right, ja.equi_keys, &lpacked, &rpacked)) {
    return false;
  }

  size_t width = ja.equi_keys.size() + 1;
  std::vector<FastBucket> buckets;
  PackedKeyMap bucket_map(width, /*expected=*/64);
  auto stage = [&](bool is_left, const Relation& rel,
                   const std::vector<uint64_t>& packed, const int64_t* bs,
                   const int64_t* es, const std::vector<char>* keep) {
    for (size_t i = 0; i < rel.size(); ++i) {
      const uint64_t* key = &packed[i * width];
      if (key[width - 1] != 0) continue;  // NULL keys never equi-join
      uint32_t bid = bucket_map.FindOrInsert(key);
      if (bid == buckets.size()) buckets.emplace_back();
      // A pruned row overlaps nothing; its bucket is still created so
      // the partition order matches the unpruned run.
      if (keep != nullptr && (*keep)[i] == 0) continue;
      (is_left ? buckets[bid].left : buckets[bid].right)
          .push_back(FastSweepRow{bs[i], es[i], static_cast<uint32_t>(i)});
    }
  };
  stage(/*is_left=*/true, left, lpacked, lb, le, candidates.left);
  stage(/*is_left=*/false, right, rpacked, rb, re, candidates.right);

  auto ranges = PlanChunks(
      ctx.num_threads(static_cast<int64_t>(left.size() + right.size())),
      static_cast<int64_t>(buckets.size()),
      /*min_grain=*/1);
  std::vector<RowPair> pairs;
  if (ranges.size() <= 1) {
    FastSweepScratch scratch;
    for (FastBucket& bucket : buckets) {
      SweepFastBucket(bucket, scratch, pairs);
    }
  } else {
    std::vector<std::vector<RowPair>> chunk_pairs(ranges.size());
    std::vector<ExecStats> chunk_stats(ranges.size());
    RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
      FastSweepScratch scratch;
      for (int64_t i = b; i < e; ++i) {
        SweepFastBucket(buckets[static_cast<size_t>(i)], scratch,
                        chunk_pairs[c]);
      }
      chunk_stats[c].parallel_tasks = 1;
    });
    size_t total = 0;
    for (const auto& cp : chunk_pairs) total += cp.size();
    pairs.reserve(total);
    for (const auto& cp : chunk_pairs) {
      pairs.insert(pairs.end(), cp.begin(), cp.end());
    }
    if (ctx.stats != nullptr) {
      for (const ExecStats& s : chunk_stats) ctx.stats->Merge(s);
    }
  }

  std::vector<uint32_t> lidx;
  std::vector<uint32_t> ridx;
  lidx.reserve(pairs.size());
  ridx.reserve(pairs.size());
  for (const RowPair& p : pairs) {
    lidx.push_back(p.first);
    ridx.push_back(p.second);
  }
  std::vector<ColumnData> cols;
  cols.reserve(plan.schema.size());
  for (size_t c = 0; c < left.schema().size(); ++c) {
    cols.push_back(ColumnData::Gather(left.col(c), lidx));
  }
  for (size_t c = 0; c < right.schema().size(); ++c) {
    cols.push_back(ColumnData::Gather(right.col(c), ridx));
  }
  *result = Relation::FromColumns(plan.schema, std::move(cols), pairs.size());
  return true;
}
// periodk-lint: columnar-lane-end(overlap-join)

}  // namespace

Relation NestedLoopJoin(const Plan& plan, const Relation& left,
                        const Relation& right) {
  Relation out(plan.schema);
  const JoinAnalysis& ja = plan.join;
  if (ja.equi_keys.empty() && !ja.overlap.has_value()) {
    // Genuinely opaque predicate: evaluate it per pair.
    for (const Row& lrow : left.rows()) {
      for (const Row& rrow : right.rows()) {
        Row combined = Concat(lrow, rrow);
        if (plan.predicate->EvalBool(combined)) {
          out.AddRow(std::move(combined));
        }
      }
    }
    return out;
  }
  // Analyzed predicate: test the decomposed conjuncts directly on the
  // source rows (equivalent to the full predicate — join_analysis.h
  // guarantees the parts conjoined back are the original under SQL
  // three-valued logic) and materialize only matching pairs.  Same
  // left-major emission order as the opaque path.
  if (ja.equi_keys.empty() && ja.overlap.has_value() &&
      ja.residual == nullptr) {
    // Pure temporal join — the shape the tiny-join hint fires on.
    // Decode the endpoints once into typed arrays so the pair loop is
    // integer compares; bail to the generic Value loop only for
    // non-int non-null endpoints (where cross-type SQL comparison
    // rules must decide).
    const OverlapSpec& ov = *ja.overlap;
    auto extract = [](const Relation& rel, int bcol, int ecol,
                      std::vector<TimePoint>* b, std::vector<TimePoint>* e,
                      std::vector<char>* ok) {
      const auto& rows = rel.rows();
      b->resize(rows.size());
      e->resize(rows.size());
      ok->assign(rows.size(), 0);
      for (size_t i = 0; i < rows.size(); ++i) {
        const Value& vb = rows[i][static_cast<size_t>(bcol)];
        const Value& ve = rows[i][static_cast<size_t>(ecol)];
        if (vb.is_null() || ve.is_null()) continue;  // never matches
        if (vb.type() != ValueType::kInt || ve.type() != ValueType::kInt) {
          return false;
        }
        (*b)[i] = vb.AsInt();
        (*e)[i] = ve.AsInt();
        (*ok)[i] = 1;
      }
      return true;
    };
    std::vector<TimePoint> lb;
    std::vector<TimePoint> le;
    std::vector<TimePoint> rb;
    std::vector<TimePoint> re;
    std::vector<char> lok;
    std::vector<char> rok;
    if (extract(left, ov.left_begin, ov.left_end, &lb, &le, &lok) &&
        extract(right, ov.right_begin, ov.right_end, &rb, &re, &rok)) {
      for (size_t i = 0; i < left.rows().size(); ++i) {
        if (lok[i] == 0) continue;
        for (size_t j = 0; j < right.rows().size(); ++j) {
          if (rok[j] != 0 && lb[i] < re[j] && rb[j] < le[i]) {
            out.AddRow(Concat(left.rows()[i], right.rows()[j]));
          }
        }
      }
      return out;
    }
  }
  auto strictly_less = [](const Value& a, const Value& b) {
    const std::optional<int> c = SqlCompare(a, b);
    return c.has_value() && *c < 0;
  };
  for (const Row& lrow : left.rows()) {
    for (const Row& rrow : right.rows()) {
      bool match = true;
      for (const auto& [lc, rc] : ja.equi_keys) {
        const std::optional<int> c = SqlCompare(
            lrow[static_cast<size_t>(lc)], rrow[static_cast<size_t>(rc)]);
        if (!c.has_value() || *c != 0) {
          match = false;
          break;
        }
      }
      if (match && ja.overlap.has_value()) {
        const OverlapSpec& ov = *ja.overlap;
        match = strictly_less(lrow[static_cast<size_t>(ov.left_begin)],
                              rrow[static_cast<size_t>(ov.right_end)]) &&
                strictly_less(rrow[static_cast<size_t>(ov.right_begin)],
                              lrow[static_cast<size_t>(ov.left_end)]);
      }
      if (!match) continue;
      Row combined = Concat(lrow, rrow);
      if (ja.residual != nullptr && !ja.residual->EvalBool(combined)) {
        continue;
      }
      out.AddRow(std::move(combined));
    }
  }
  return out;
}

Relation IntervalOverlapJoin(const Plan& plan, const Relation& left,
                             const Relation& right, const OpContext& ctx,
                             const JoinCandidates& candidates) {
  const JoinAnalysis& ja = plan.join;
  if (!ja.overlap.has_value()) {
    throw EngineError("IntervalOverlapJoin requires an overlap conjunct");
  }
  const OverlapSpec& ov = *ja.overlap;

  Relation fast(plan.schema);
  if (TryColumnarOverlapJoin(plan, left, right, ctx, candidates, &fast)) {
    return fast;
  }

  // Hash-partition both inputs on the equi-keys (single bucket for a
  // pure temporal join).  NULL keys never equi-join, matching the
  // three-valued semantics of the predicate they came from.  Buckets
  // are kept in first-appearance order of their key -- the same order
  // the columnar lane produces, so the two lanes emit identical output.
  std::unordered_map<Row, size_t, RowHash, RowEq> bucket_of;
  std::vector<Bucket> buckets;
  auto stage = [&](const Relation& rel, bool is_left) {
    int bcol = is_left ? ov.left_begin : ov.right_begin;
    int ecol = is_left ? ov.left_end : ov.right_end;
    const std::vector<char>* keep =
        is_left ? candidates.left : candidates.right;
    const auto& rows = rel.rows();
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      Row key;
      key.reserve(ja.equi_keys.size());
      bool has_null = false;
      for (const auto& [l, r] : ja.equi_keys) {
        const Value& v = row[static_cast<size_t>(is_left ? l : r)];
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key.push_back(v);
      }
      if (has_null) continue;
      auto [bit, binserted] =
          bucket_of.try_emplace(std::move(key), buckets.size());
      if (binserted) buckets.emplace_back();
      Bucket& bucket = buckets[bit->second];
      TimePoint b = 0;
      TimePoint e = 0;
      if (DecodeInterval(row, bcol, ecol, &b, &e)) {
        // A pruned row provably overlaps nothing on the opposite side.
        // Its bucket is still created above so the partition set — and
        // with it the output's partition order — matches the unpruned
        // run exactly.
        if (keep == nullptr || (*keep)[i] != 0) {
          (is_left ? bucket.fast_left : bucket.fast_right)
              .push_back(SweepRow{b, e, &row});
        }
      } else {
        (is_left ? bucket.slow_left : bucket.slow_right).push_back(&row);
      }
    }
  };
  stage(left, /*is_left=*/true);
  stage(right, /*is_left=*/false);

  // The partitions the sweep needs anyway are the parallel work units:
  // chunks of buckets fan out to the pool, each emitting into its own
  // output slot, concatenated in partition order afterwards — so the
  // result row order depends only on the chunk plan, not on worker
  // scheduling.  A single-bucket join (pure temporal, no equi-keys)
  // stays sequential by construction.
  auto ranges = PlanChunks(
      ctx.num_threads(static_cast<int64_t>(left.size() + right.size())),
      static_cast<int64_t>(buckets.size()),
      /*min_grain=*/1);

  if (ranges.size() <= 1) {
    Relation out(plan.schema);
    SweepScratch scratch;
    for (Bucket& bucket : buckets) {
      ProcessBucket(plan, bucket, out, scratch);
    }
    return out;
  }
  std::vector<Relation> outs(ranges.size(), Relation(plan.schema));
  std::vector<ExecStats> chunk_stats(ranges.size());
  RunChunks(ctx.pool->get(), ranges, [&](size_t c, int64_t b, int64_t e) {
    SweepScratch scratch;
    for (int64_t i = b; i < e; ++i) {
      ProcessBucket(plan, buckets[static_cast<size_t>(i)], outs[c], scratch);
    }
    chunk_stats[c].parallel_tasks = 1;
  });
  return GatherChunks(std::move(outs), std::move(chunk_stats), ctx);
}

}  // namespace periodk
