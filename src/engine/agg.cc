#include "engine/agg.h"

#include <limits>

#include "common/status.h"

namespace periodk {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

void AggState::Accumulate(const Value& v, int64_t mult) {
  if (v.is_null()) return;
  count += mult;
  if (v.is_numeric()) {
    if (v.type() == ValueType::kInt) {
      isum += static_cast<__int128>(v.AsInt()) * mult;
    } else {
      all_int = false;
    }
    dsum += v.NumericAsDouble() * static_cast<double>(mult);
  }
  if (!any || v.Compare(min_v) < 0) min_v = v;
  if (!any || v.Compare(max_v) > 0) max_v = v;
  any = true;
}

void AggState::AccumulateInt(int64_t v, int64_t mult) {
  count += mult;
  isum += static_cast<__int128>(v) * mult;
  dsum += static_cast<double>(v) * static_cast<double>(mult);
  Value value = Value::Int(v);
  if (!any || value.Compare(min_v) < 0) min_v = value;
  if (!any || value.Compare(max_v) > 0) max_v = value;
  any = true;
}

void AggState::AccumulateColumn(const ColumnData& col, size_t row,
                                int64_t mult) {
  if (col.tag() == ColumnTag::kInt && !col.IsNull(row)) {
    AccumulateInt(col.ints()[row], mult);
    return;
  }
  Accumulate(col.Get(row), mult);
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  isum += other.isum;
  dsum += other.dsum;
  all_int = all_int && other.all_int;
  if (other.any) {
    if (!any || other.min_v.Compare(min_v) < 0) min_v = other.min_v;
    if (!any || other.max_v.Compare(max_v) > 0) max_v = other.max_v;
  }
  any = any || other.any;
}

Value AggState::Finalize(AggFunc f, int64_t star_count) const {
  switch (f) {
    case AggFunc::kCountStar:
      return Value::Int(star_count);
    case AggFunc::kCount:
      return Value::Int(count);
    case AggFunc::kSum: {
      if (!any) return Value::Null();
      constexpr __int128 kInt64Min = std::numeric_limits<int64_t>::min();
      constexpr __int128 kInt64Max = std::numeric_limits<int64_t>::max();
      if (all_int && isum >= kInt64Min && isum <= kInt64Max) {
        return Value::Int(static_cast<int64_t>(isum));
      }
      return Value::Double(dsum);
    }
    case AggFunc::kAvg:
      if (count == 0) return Value::Null();
      return Value::Double(dsum / static_cast<double>(count));
    case AggFunc::kMin:
      return any ? min_v : Value::Null();
    case AggFunc::kMax:
      return any ? max_v : Value::Null();
  }
  throw EngineError("unknown aggregate function");
}

}  // namespace periodk
