// Catalog of materialized relations and the plan executor.  Execution is
// operator-at-a-time (each operator materializes its output), which
// keeps the engine simple and is adequate for the paper-scale workloads.
// Leaves are zero-copy: scans borrow the catalog's relation, constants
// share the plan's.  Physical join selection reads the plan's build-time
// predicate analysis (ra/join_analysis.h): the sweep-based interval
// join when an overlap conjunct was recognized, a hash join on plain
// equi-keys, and a nested loop only for genuinely opaque predicates.
#ifndef PERIODK_ENGINE_EXECUTOR_H_
#define PERIODK_ENGINE_EXECUTOR_H_

#include <map>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "ra/plan.h"

namespace periodk {

class Catalog {
 public:
  void Put(const std::string& name, Relation relation) {
    tables_.insert_or_assign(name, std::move(relation));
  }
  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  const Relation& Get(const std::string& name) const;
  /// Mutable access for inserts; nullptr when absent.
  Relation* GetMutable(const std::string& name) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Relation> tables_;
};

/// Executes a logical plan against the catalog; throws EngineError on
/// invariant violations (e.g. unknown table).
Relation Execute(const PlanPtr& plan, const Catalog& catalog);

}  // namespace periodk

#endif  // PERIODK_ENGINE_EXECUTOR_H_
