// Catalog of materialized relations and the plan executor.  Execution is
// operator-at-a-time (each operator materializes its output), which
// keeps the engine simple and is adequate for the paper-scale workloads.
// Leaves are zero-copy: scans borrow the catalog's relation, constants
// share the plan's.  Physical join selection reads the plan's build-time
// predicate analysis (ra/join_analysis.h): the sweep-based interval
// join when an overlap conjunct was recognized, a hash join on plain
// equi-keys, and a nested loop only for genuinely opaque predicates.
//
// Plans are DAGs, not trees: REWR shares subplans (snapshot DISTINCT
// splits a query against itself, snapshot difference references each
// rewritten input twice), so execution memoizes per run — a subplan
// reachable through several parents executes exactly once and later
// consumers reuse the materialized handle (copying only when other
// consumers still need it; the last consumer may steal).
#ifndef PERIODK_ENGINE_EXECUTOR_H_
#define PERIODK_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "ra/plan.h"

namespace periodk {

class Catalog {
 public:
  void Put(const std::string& name, Relation relation) {
    tables_.insert_or_assign(name, std::move(relation));
  }
  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  const Relation& Get(const std::string& name) const;
  /// Mutable access for inserts; nullptr when absent.
  Relation* GetMutable(const std::string& name) {
    auto it = tables_.find(name);
    return it == tables_.end() ? nullptr : &it->second;
  }
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, Relation> tables_;
};

/// Per-execution counters, for tests and EXPLAIN ANALYZE-style output.
struct ExecStats {
  /// Operator evaluations actually performed (one per *unique* reachable
  /// plan node when memoization is on; one per tree-expanded node off).
  int64_t nodes_executed = 0;
  /// Node requests answered from the memo instead of re-executing.
  int64_t memo_hits = 0;
  /// Rows written into freshly materialized operator outputs (borrowed
  /// scan/constant handles do not count).
  int64_t rows_materialized = 0;

  std::string ToString() const;
};

/// Executes a logical plan against the catalog; throws EngineError on
/// invariant violations (e.g. unknown table).  `stats`, when non-null,
/// receives the run's counters.  `memoize` = false disables shared-
/// subplan reuse (reference semantics for tests and ablation: the plan
/// DAG is executed as its full tree expansion).
Relation Execute(const PlanPtr& plan, const Catalog& catalog,
                 ExecStats* stats = nullptr, bool memoize = true);

}  // namespace periodk

#endif  // PERIODK_ENGINE_EXECUTOR_H_
