// Catalog of materialized relations and the plan executor.  Execution is
// operator-at-a-time (each operator materializes its output), which
// keeps the engine simple and is adequate for the paper-scale workloads.
// Leaves are zero-copy: scans share the catalog's relation handle,
// constants share the plan's.  Physical join selection reads the plan's
// build-time predicate analysis (ra/join_analysis.h): the sweep-based
// interval join when an overlap conjunct was recognized, a hash join on
// plain equi-keys, and a nested loop only for genuinely opaque
// predicates.
//
// Plans are DAGs, not trees: REWR shares subplans (snapshot DISTINCT
// splits a query against itself, snapshot difference references each
// rewritten input twice), so execution memoizes per run — a subplan
// reachable through several parents executes exactly once and later
// consumers reuse the materialized handle (copying only when other
// consumers still need it; the last consumer may steal).
//
// Concurrency: the catalog stores immutable relations behind
// shared_ptr<const Relation>, so copying a Catalog produces an O(#tables)
// *snapshot* that shares table storage — the middleware pins such a
// snapshot per query and publishes mutations copy-on-write, which makes
// any number of concurrent executions against their pinned snapshots
// safe.  Within one execution, operators fan their partitions out to a
// work-stealing pool when ExecOptions::num_threads > 1; num_threads == 1
// is bit-identical to the sequential executor.
#ifndef PERIODK_ENGINE_EXECUTOR_H_
#define PERIODK_ENGINE_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "ra/plan.h"

namespace periodk {

class LazyThreadPool;
class TableStats;
class TimelineIndex;

class Catalog {
 public:
  // periodk-lint: allow(relation-by-value): ownership sink, callers move
  void Put(const std::string& name, Relation relation) {
    PutShared(name, std::make_shared<const Relation>(std::move(relation)));
  }

  /// Publishes a pre-wrapped relation handle (the middleware writers
  /// share one handle between the catalog and the stats collector).
  /// Like Put, replacing the relation drops its timeline index and
  /// statistics (stale ones would also be rejected by BuiltFor, but
  /// dropping here frees the memory).
  void PutShared(const std::string& name,
                 std::shared_ptr<const Relation> relation) {
    tables_.insert_or_assign(name, std::move(relation));
    indexes_.erase(name);
    stats_.erase(name);
  }
  bool Has(const std::string& name) const { return tables_.count(name) > 0; }
  const Relation& Get(const std::string& name) const;
  /// The shared handle of a table; throws EngineError when absent.
  /// Holding the handle keeps the relation alive across catalog
  /// mutations that replace the entry (copy-on-write publication).
  std::shared_ptr<const Relation> GetShared(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Attaches an immutable timeline index to a table.  The index should
  /// be built from the table's current relation object (BuiltFor);
  /// consumers verify that before trusting it, so attaching a
  /// mismatched index degrades to the scan path instead of corrupting
  /// results.  Like relations, index handles are shared by catalog
  /// copies and replaced — never mutated — in place.
  void PutIndex(const std::string& name,
                std::shared_ptr<const TimelineIndex> index) {
    indexes_.insert_or_assign(name, std::move(index));
  }
  /// The table's timeline index, or nullptr when none is attached.
  std::shared_ptr<const TimelineIndex> GetIndex(const std::string& name) const;

  /// Attaches immutable statistics to a table.  Same discipline as
  /// PutIndex: the stats should be collected from the table's current
  /// relation object (TableStats::BuiltFor), consumers verify that
  /// before trusting them, and handles are shared by catalog copies
  /// and replaced — never mutated — in place.
  void PutStats(const std::string& name,
                std::shared_ptr<const TableStats> stats) {
    stats_.insert_or_assign(name, std::move(stats));
  }
  /// The table's statistics, or nullptr when none are attached.
  std::shared_ptr<const TableStats> GetStats(const std::string& name) const;

 private:
  // Copying the maps copies shared_ptrs, not relations: a Catalog copy
  // is an immutable snapshot of the whole database (indexes and stats
  // included).
  std::map<std::string, std::shared_ptr<const Relation>> tables_;
  std::map<std::string, std::shared_ptr<const TimelineIndex>> indexes_;
  std::map<std::string, std::shared_ptr<const TableStats>> stats_;
};

/// Per-execution counters, for tests and EXPLAIN ANALYZE-style output.
/// Parallel operators accumulate into per-worker instances and Merge
/// them into the run's stats at their join points, so no counter is
/// ever written concurrently.
struct ExecStats {
  /// Operator evaluations actually performed (one per *unique* reachable
  /// plan node when memoization is on; one per tree-expanded node off).
  int64_t nodes_executed = 0;
  /// Node requests answered from the memo instead of re-executing.
  int64_t memo_hits = 0;
  /// Rows written into freshly materialized operator outputs (borrowed
  /// scan/constant handles do not count).
  int64_t rows_materialized = 0;
  /// Partition chunks executed on the thread pool (0 in sequential
  /// runs: the single-chunk path never touches the pool).
  int64_t parallel_tasks = 0;
  /// kTimeslice nodes answered from a timeline index instead of the
  /// O(table) scan (shown by TemporalDB::ExplainAnalyze as index hits).
  int64_t index_timeslices = 0;
  /// Differential-layer events consulted by indexed lookups: the sum of
  /// the delta sizes of every index answered from (0 when each index
  /// was fully compacted).  Measures how much uncompacted write traffic
  /// a read crossed — see TemporalDB's IndexMaintenanceOptions.
  int64_t index_delta_events = 0;
  /// Interval-join sides whose sweep input was pre-filtered with
  /// TimelineIndex::AliveInRange candidates (rows provably outside the
  /// opposite side's endpoint span skip the sweep).
  int64_t index_join_prunes = 0;
  /// Equi joins the cost gate demoted to the (row-identical) nested
  /// loop because the input product was below kTinyJoinProduct.
  int64_t cost_nl_joins = 0;
  /// Partition fan-outs the cost gate kept sequential because the
  /// operator's input was below kParallelMinRows.
  int64_t cost_gated_fanouts = 0;
  /// Actual output rows per executed plan node (filled only by the
  /// top-level per-node dispatch, which runs on the calling thread, so
  /// no entry is written concurrently).  Keys are plan-node identities;
  /// consumers (ExplainAnalyze) render them by walking the plan, never
  /// by iterating this map, so pointer order cannot leak into output.
  std::map<const Plan*, int64_t> node_rows;

  void Merge(const ExecStats& other);
  /// Counter rendering; deterministic (node_rows is deliberately not
  /// printed here — it has no meaning without the plan to walk).
  std::string ToString() const;
};

/// Execution-time knobs, distinct from the plan-shaping RewriteOptions.
struct ExecOptions {
  /// false disables shared-subplan reuse (reference semantics for tests
  /// and ablation: the plan DAG is executed as its full tree expansion).
  bool memoize = true;
  /// Intra-query parallelism: partitioned operators fan out to a
  /// work-stealing pool of this many threads.  1 (the default) keeps
  /// execution on the calling thread and bit-identical to the
  /// pre-parallel executor.
  int num_threads = 1;
  /// Route kTimeslice-over-kScan through the table's TimelineIndex when
  /// the catalog carries a current one (checkpoint lookup + bounded
  /// replay instead of an O(table) scan).  The indexed result is
  /// row-identical — same rows, same order — to the scan path; false is
  /// the num_threads-style bit-identical fallback that never consults
  /// an index.
  bool use_timeline_index = true;
  /// Let the executor's *row-identical* cost gates fire: tiny equi
  /// joins run as nested loops instead of building a hash table, and
  /// partitioned operators skip the thread-pool fan-out when the input
  /// is below the break-even size (ra/cost_model.h thresholds).  Both
  /// substitutions produce the same rows in the same order, so this is
  /// an execution-time knob (not part of the plan-cache key); false
  /// reproduces the structural dispatch bit-identically.
  bool use_cost_model = true;
};

/// What an operator needs from its execution context: the pool to fan
/// partitions out to (null = sequential; created lazily on the first
/// multi-chunk fan-out, so single-chunk queries never spawn threads)
/// and the run's stats to merge per-worker counters into (null = not
/// collected).
struct OpContext {
  LazyThreadPool* pool = nullptr;
  ExecStats* stats = nullptr;
  /// Mirrors ExecOptions::use_cost_model.  Default-off so operator
  /// tests that aggregate-initialize {&pool, &stats} keep today's
  /// ungated fan-out behavior.
  bool use_cost_model = false;

  /// Thread budget for PlanChunks; 1 when no pool was provided.
  int num_threads() const;

  /// Cost-gated thread budget for an operator touching `work` input
  /// rows: 1 (skip the fan-out, counted in cost_gated_fanouts) when
  /// the cost model is on and `work` is below kParallelMinRows,
  /// otherwise num_threads().
  int num_threads(int64_t work) const;
};

/// Concatenates per-chunk operator outputs in chunk order (so a
/// parallel result depends on the chunk plan, never on worker
/// scheduling) and merges the per-worker stats at this join point.
/// Shared by every partition-parallel operator.
Relation GatherChunks(std::vector<Relation> outs,
                      std::vector<ExecStats> chunk_stats,
                      const OpContext& ctx);

/// Executes a logical plan against the catalog; throws EngineError on
/// invariant violations (e.g. unknown table).  `stats`, when non-null,
/// receives the run's counters.
Relation Execute(const PlanPtr& plan, const Catalog& catalog,
                 const ExecOptions& options, ExecStats* stats = nullptr);

/// Legacy signature; `memoize` = false maps to ExecOptions::memoize.
Relation Execute(const PlanPtr& plan, const Catalog& catalog,
                 ExecStats* stats = nullptr, bool memoize = true);

}  // namespace periodk

#endif  // PERIODK_ENGINE_EXECUTOR_H_
