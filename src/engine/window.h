// SQL analytic window functions (the subset needed to express multiset
// coalescing the way the paper's middleware does on PostgreSQL/DBX/DBY:
// running sums with RANGE frames, row numbering, lag/lead).  Each
// ApplyWindow call performs one sort of the input, mirroring the
// per-window-declaration sorting steps the paper observes in the
// backends (Sec. 9: 2-7 sorting steps depending on window sharing).
#ifndef PERIODK_ENGINE_WINDOW_H_
#define PERIODK_ENGINE_WINDOW_H_

#include <string>
#include <vector>

#include "engine/relation.h"

namespace periodk {

struct WindowOrderKey {
  int column = 0;
  bool ascending = true;
};

enum class WindowFunc {
  /// Sum of arg_col from partition start through the current row *and
  /// all its order-key peers* (SQL default RANGE frame).
  kRunningSumRange,
  /// 1-based position within the partition (ROWS semantics).
  kRowNumber,
  /// arg_col of the previous row in the partition; NULL for the first.
  kLag,
  /// arg_col of the next row in the partition; NULL for the last.
  kLead,
};

struct WindowSpec {
  std::vector<int> partition_by;
  std::vector<WindowOrderKey> order_by;
  WindowFunc func = WindowFunc::kRunningSumRange;
  int arg_col = -1;  // unused for kRowNumber
};

/// Returns `input` with one column appended holding the window function
/// result for every row (original row order preserved).
Relation ApplyWindow(const Relation& input, const WindowSpec& spec,
                     const std::string& out_name);

}  // namespace periodk

#endif  // PERIODK_ENGINE_WINDOW_H_
