// Typed columnar storage for Relation (docs/architecture.md §9).
//
// A ColumnData holds one column of a relation in a contiguous typed
// vector plus a validity bitmap: int64/double/bool columns store raw
// values, string columns are dictionary-encoded as uint32_t codes into
// a per-column *sorted* dictionary (rdf3x-style: code order == string
// order), and columns whose non-null values mix types fall back to a
// vector<Value> ("mixed") representation so the dynamically typed
// engine loses nothing.  The interval kernels (interval join,
// coalescing, split-aggregate, timeline-index build) read the raw
// arrays directly instead of dispatching through std::variant per cell.
#ifndef PERIODK_ENGINE_COLUMN_H_
#define PERIODK_ENGINE_COLUMN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace periodk {

/// Physical representation chosen for a column at encode time.
enum class ColumnTag { kInt, kDouble, kBool, kString, kMixed };

/// Returns "int", "double", "bool", "string" or "mixed".
const char* ColumnTagName(ColumnTag tag);

/// Immutable sorted, duplicate-free string dictionary.  Shared by
/// pointer between a column and anything gathered from it, so join and
/// coalesce outputs reuse the input dictionary for free.
class StringDict {
 public:
  explicit StringDict(std::vector<std::string> sorted_values)
      : values_(std::move(sorted_values)) {}

  const std::string& At(uint32_t code) const { return values_[code]; }
  size_t size() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
};

/// One column of a columnar relation.  Immutable after construction;
/// new columns are built by Encode / FromInts / Gather.
class ColumnData {
 public:
  /// Encodes column `col` of `rows`.  Picks the narrowest tag that
  /// represents every non-null cell exactly (an all-null or empty
  /// column encodes as kInt with an all-invalid bitmap).
  static ColumnData Encode(const std::vector<Row>& rows, size_t col);

  /// A column of raw int64s with no NULLs (kernel interval outputs).
  static ColumnData FromInts(std::vector<int64_t> values);

  /// out[k] = src[indices[k]] -- gather emission for the vectorized
  /// join/coalesce paths.  Dictionary columns share src's dictionary.
  static ColumnData Gather(const ColumnData& src,
                           const std::vector<uint32_t>& indices);

  ColumnTag tag() const { return tag_; }
  size_t size() const { return size_; }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }
  bool IsNull(size_t i) const {
    return has_nulls() &&
           (validity_[i >> 6] & (uint64_t{1} << (i & 63))) == 0;
  }

  /// Value at row i (strings are copied out of the dictionary).
  Value Get(size_t i) const;

  // Raw typed payloads; meaningful only for the matching tag().  Cells
  // whose validity bit is clear hold an unspecified placeholder.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  const uint32_t* codes() const { return codes_.data(); }
  const std::shared_ptr<const StringDict>& dict() const { return dict_; }
  const std::vector<Value>& mixed() const { return mixed_; }

  /// kDouble only: true when any stored value is NaN.  Value::Compare
  /// is not a consistent order on NaN, so packed-key fast paths must
  /// fall back to the row path for such columns.
  bool has_nan() const { return has_nan_; }

 private:
  ColumnTag tag_ = ColumnTag::kInt;
  size_t size_ = 0;
  size_t null_count_ = 0;
  bool has_nan_ = false;
  std::vector<uint64_t> validity_;  // bit set = non-null; empty = no nulls
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<uint32_t> codes_;
  std::shared_ptr<const StringDict> dict_;
  std::vector<Value> mixed_;

  void InitValidity();               // all-invalid bitmap of size_ bits
  void SetValid(size_t i) { validity_[i >> 6] |= uint64_t{1} << (i & 63); }
};

/// True when a column can serve as a packed uint64 grouping key with
/// equality identical to Value::Compare within the column: ints, bools
/// and dictionary codes always; doubles unless they contain NaN; mixed
/// columns never.
bool FastKeyable(const ColumnData& column);

/// Builds row-major packed keys over `key_cols` of `columns`:
/// width = key_cols.size() + 1 words per row -- one word per key column
/// (int bits / bool / dictionary code / double bits with -0.0
/// normalized to +0.0) plus a trailing null-bitmap word.  Returns false
/// (leaving *out unspecified) if any listed column is not FastKeyable
/// or num_rows exceeds uint32 range.  Word equality then matches row
/// key equality under Value::Compare, and dictionary codes keep string
/// comparisons out of the grouping loops entirely.
bool BuildPackedKeys(const std::vector<ColumnData>& columns,
                     const std::vector<int>& key_cols, size_t num_rows,
                     std::vector<uint64_t>* out);

/// Open-addressing hash map from fixed-width uint64 keys to dense ids
/// (0, 1, 2, ... in first-appearance order).  Keys live in one arena
/// vector, so lookups are a hash over `width` contiguous words and a
/// linear probe -- no per-row allocation, unlike unordered_map<Row>.
class PackedKeyMap {
 public:
  explicit PackedKeyMap(size_t width, size_t expected = 0);

  /// Returns the id of `key` (width_ words), inserting it if new.
  uint32_t FindOrInsert(const uint64_t* key);

  size_t size() const { return count_; }
  /// Key words of group `id` (valid until the next FindOrInsert).
  const uint64_t* KeyOf(uint32_t id) const { return &arena_[id * width_]; }

 private:
  void Grow();
  uint64_t HashKey(const uint64_t* key) const;

  size_t width_;
  size_t count_ = 0;
  size_t mask_ = 0;                 // slots_.size() - 1 (power of two)
  std::vector<uint32_t> slots_;     // kEmptySlot or group id
  std::vector<uint64_t> arena_;     // count_ * width_ key words
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_COLUMN_H_
