// Materialized multiset relations: the engine's runtime representation
// and, with two trailing time columns, the paper's *SQL period
// relations* (Section 8).  Multiplicity is represented by duplicate
// rows, exactly as in SQL.
#ifndef PERIODK_ENGINE_RELATION_H_
#define PERIODK_ENGINE_RELATION_H_

#include <string>
#include <vector>

#include "common/value.h"
#include "engine/schema.h"

namespace periodk {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {
    CheckRowArities();
  }

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row.  Rejects arity mismatches: a row narrower or wider
  /// than the schema would silently corrupt every downstream operator
  /// (the check is one integer compare, so it is always on).
  void AddRow(Row row) {
    if (row.size() != schema_.size()) ThrowArityMismatch(row.size());
    rows_.push_back(std::move(row));
  }
  void Reserve(size_t n) { rows_.reserve(n); }

  /// Sorts rows lexicographically; canonical order for comparisons and
  /// printing (a multiset has no inherent order).
  void SortRows();

  /// Bag equality: same schema arity and same multiset of rows.
  bool BagEquals(const Relation& other) const;

  /// Tabular rendering of up to `limit` rows (0 = all), sorted.
  std::string ToString(size_t limit = 0) const;

 private:
  [[noreturn]] void ThrowArityMismatch(size_t got) const;
  /// Bulk-construction counterpart of the AddRow check: one integer
  /// compare per row, negligible next to whatever produced the rows.
  void CheckRowArities() const;

  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_RELATION_H_
