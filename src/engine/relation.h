// Materialized multiset relations: the engine's runtime representation
// and, with two trailing time columns, the paper's *SQL period
// relations* (Section 8).  Multiplicity is represented by duplicate
// rows, exactly as in SQL.
//
// A relation owns its data in one of two physical layouts:
//   * row storage (the default for operator outputs): vector<Row>;
//   * columnar storage (base tables, vectorized kernel outputs): one
//     typed ColumnData per schema column (engine/column.h).
// The row API is preserved over both: rows() on a columnar relation
// lazily materializes a cached row *view* (thread-safe -- base tables
// are shared across concurrent queries), and the mutating entry points
// (AddRow, mutable_rows, SortRows, Reserve) decay columnar storage back
// to rows first, so every pre-columnar call site works unchanged.
#ifndef PERIODK_ENGINE_RELATION_H_
#define PERIODK_ENGINE_RELATION_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "common/value.h"
#include "engine/column.h"
#include "engine/schema.h"

namespace periodk {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {
    CheckRowArities();
  }

  /// Adopts pre-built columns (vectorized kernel outputs).  Every
  /// column must have exactly `num_rows` entries; `num_rows` is
  /// explicit so zero-column relations (global aggregates) still carry
  /// a row count.
  [[nodiscard]] static Relation FromColumns(
      Schema schema, std::vector<ColumnData> columns, size_t num_rows);

  // Copyable and movable despite the view-cache synchronization
  // members.  Copying from a shared columnar relation is safe while
  // other threads materialize its row view: the copy takes the row
  // cache only when it is already published.
  Relation(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;

  const Schema& schema() const { return schema_; }

  /// Row view.  For row storage this is the storage itself; for
  /// columnar storage it materializes (once, thread-safely) a cached
  /// vector<Row> copy of the columns.
  const std::vector<Row>& rows() const {
    if (!rows_ready_.load(std::memory_order_acquire)) MaterializeRows();
    return rows_;
  }

  /// Mutable row access decays columnar storage to row storage.
  std::vector<Row>& mutable_rows() {
    DecayToRows();
    return rows_;
  }

  size_t size() const { return columnar_ ? num_rows_ : rows_.size(); }
  bool empty() const { return size() == 0; }

  bool is_columnar() const { return columnar_; }
  /// Columnar payload; valid only while is_columnar().
  const std::vector<ColumnData>& columns() const { return columns_; }
  const ColumnData& col(size_t i) const { return columns_[i]; }

  /// Re-encodes row storage as typed columns (no-op when already
  /// columnar).  The row vector is released; rows() rebuilds it on
  /// demand.
  void ToColumnar();

  /// Appends a row.  Rejects arity mismatches: a row narrower or wider
  /// than the schema would silently corrupt every downstream operator
  /// (the check is one integer compare, so it is always on).
  void AddRow(Row row) {
    if (row.size() != schema_.size()) ThrowArityMismatch(row.size());
    if (columnar_) DecayToRows();
    rows_.push_back(std::move(row));
  }
  void Reserve(size_t n) {
    if (columnar_) DecayToRows();
    rows_.reserve(n);
  }

  /// Sorts rows lexicographically; canonical order for comparisons and
  /// printing (a multiset has no inherent order).
  void SortRows();

  /// Bag equality: same schema arity and same multiset of rows.
  [[nodiscard]] bool BagEquals(const Relation& other) const;

  /// Tabular rendering of up to `limit` rows (0 = all), sorted.
  std::string ToString(size_t limit = 0) const;

 private:
  [[noreturn]] void ThrowArityMismatch(size_t got) const;
  /// Bulk-construction counterpart of the AddRow check: one integer
  /// compare per row, negligible next to whatever produced the rows.
  void CheckRowArities() const;
  void MaterializeRows() const;
  void DecayToRows();

  Schema schema_;
  mutable std::vector<Row> rows_;    // storage, or cached columnar view
  std::vector<ColumnData> columns_;  // authoritative when columnar_
  size_t num_rows_ = 0;              // row count while columnar_
  bool columnar_ = false;
  // False only for a columnar relation whose row view has not been
  // materialized yet.  acquire/release pairs with MaterializeRows so
  // concurrent readers of a shared base table never see a half-built
  // view.  rows_ is deliberately NOT GUARDED_BY(rows_mu_): readers
  // access the published view lock-free after the rows_ready_ acquire
  // load; the mutex only serializes the one-time materialization.
  mutable std::atomic<bool> rows_ready_{true};
  mutable Mutex rows_mu_;
};

}  // namespace periodk

#endif  // PERIODK_ENGINE_RELATION_H_
