#include "temporal/interval.h"

#include "common/str_util.h"

namespace periodk {

std::string TimeDomain::ToString() const {
  return StrCat("T=[", tmin, ", ", tmax, ")");
}

std::string Interval::ToString() const {
  return StrCat("[", begin, ", ", end, ")");
}

}  // namespace periodk
