// Time points, time domains and half-open intervals [Tb, Te)
// (paper Section 5.1).  The time domain T is a finite, totally ordered
// set of integer time points; Tmax is exclusive.
#ifndef PERIODK_TEMPORAL_INTERVAL_H_
#define PERIODK_TEMPORAL_INTERVAL_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>

namespace periodk {

using TimePoint = int64_t;

/// The finite time domain T = [tmin, tmax).  All intervals of a temporal
/// database must lie within its domain.
struct TimeDomain {
  TimePoint tmin = 0;
  TimePoint tmax = 0;

  TimePoint size() const { return tmax - tmin; }
  bool Contains(TimePoint t) const { return tmin <= t && t < tmax; }
  bool operator==(const TimeDomain&) const = default;
  std::string ToString() const;
};

/// A half-open interval [begin, end) with begin < end, denoting the set
/// of contiguous time points {T | begin <= T < end}.
struct Interval {
  TimePoint begin = 0;
  TimePoint end = 0;

  Interval() = default;
  Interval(TimePoint b, TimePoint e) : begin(b), end(e) {
    assert(b < e && "interval must be non-empty");
  }

  TimePoint duration() const { return end - begin; }
  bool Contains(TimePoint t) const { return begin <= t && t < end; }
  bool Contains(const Interval& other) const {
    return begin <= other.begin && other.end <= end;
  }
  bool Overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }
  /// adj(I1, I2) from the paper: the intervals meet end-to-end.
  bool Adjacent(const Interval& other) const {
    return end == other.begin || other.end == begin;
  }

  /// Intersection as a set of time points; nullopt when disjoint.
  static std::optional<Interval> Intersect(const Interval& a,
                                           const Interval& b) {
    TimePoint lo = a.begin > b.begin ? a.begin : b.begin;
    TimePoint hi = a.end < b.end ? a.end : b.end;
    if (lo >= hi) return std::nullopt;
    return Interval(lo, hi);
  }

  /// Union as a set of time points; defined only when the inputs overlap
  /// or are adjacent (paper's convention: empty otherwise).
  static std::optional<Interval> Union(const Interval& a, const Interval& b) {
    if (!a.Overlaps(b) && !a.Adjacent(b)) return std::nullopt;
    TimePoint lo = a.begin < b.begin ? a.begin : b.begin;
    TimePoint hi = a.end > b.end ? a.end : b.end;
    return Interval(lo, hi);
  }

  bool operator==(const Interval&) const = default;
  /// Orders by begin, then end; used for normal-form entry ordering.
  bool operator<(const Interval& other) const {
    return begin != other.begin ? begin < other.begin : end < other.end;
  }

  /// "[b, e)".
  std::string ToString() const;
};

}  // namespace periodk

#endif  // PERIODK_TEMPORAL_INTERVAL_H_
