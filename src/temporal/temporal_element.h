// Temporal K-elements (paper Section 5): functions from intervals to
// semiring values, recording how the K-annotation of a tuple changes
// over time.  A temporal element may map overlapping intervals to
// non-zero values; the annotation at a time point T is the *sum* of the
// annotations of all intervals containing T.  K-coalescing (Def 5.3)
// computes the unique normal form: maximal non-overlapping intervals of
// constant, non-zero annotation where adjacent intervals carry different
// annotations.
#ifndef PERIODK_TEMPORAL_TEMPORAL_ELEMENT_H_
#define PERIODK_TEMPORAL_TEMPORAL_ELEMENT_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "semiring/semiring.h"
#include "temporal/interval.h"

namespace periodk {

/// A temporal K-element: a finite-support function I -> K represented as
/// a list of (interval, annotation) entries.  Intervals not listed map
/// to 0_K.  Entries may overlap (annotations add up pointwise).
template <Semiring K>
class TemporalElement {
 public:
  using Annot = typename K::Value;
  using Entry = std::pair<Interval, Annot>;

  TemporalElement() = default;
  explicit TemporalElement(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  /// Singleton element {interval -> annot}.
  TemporalElement(Interval interval, Annot annot) {
    entries_.emplace_back(interval, std::move(annot));
  }

  void Add(Interval interval, Annot annot) {
    entries_.emplace_back(interval, std::move(annot));
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Sorts entries by interval (normal-form entries have unique,
  /// disjoint intervals, so this order is canonical for them).
  void SortEntries() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.first < b.first; });
  }

 private:
  std::vector<Entry> entries_;
};

/// Timeslice tau_T (paper Section 5.1): the annotation valid at time t,
/// i.e. the sum over all entries whose interval contains t.
template <Semiring K>
typename K::Value Timeslice(const K& k, const TemporalElement<K>& te,
                            TimePoint t) {
  typename K::Value out = k.Zero();
  for (const auto& [interval, annot] : te.entries()) {
    if (interval.Contains(t)) out = k.Plus(out, annot);
  }
  return out;
}

namespace internal {

/// Sorted, deduplicated endpoints of all entries of all given elements.
/// Consecutive endpoints delimit "elementary segments" on which every
/// input element is constant.
template <Semiring K>
std::vector<TimePoint> CollectEndpoints(
    std::initializer_list<const TemporalElement<K>*> elements) {
  std::vector<TimePoint> points;
  for (const TemporalElement<K>* te : elements) {
    for (const auto& [interval, annot] : te->entries()) {
      points.push_back(interval.begin);
      points.push_back(interval.end);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

/// Sum of the annotations of all entries covering the whole segment.
/// The segment must not cross any entry endpoint.
template <Semiring K>
typename K::Value SegmentValue(const K& k, const TemporalElement<K>& te,
                               const Interval& segment) {
  typename K::Value out = k.Zero();
  for (const auto& [interval, annot] : te.entries()) {
    if (interval.Contains(segment)) out = k.Plus(out, annot);
  }
  return out;
}

}  // namespace internal

/// K-coalescing C_K (paper Def 5.3): the unique normal form.  Scans the
/// elementary segments induced by the entry endpoints, merges adjacent
/// segments with equal annotation and drops zero-annotated segments.
/// The result has pairwise disjoint intervals, and any two adjacent
/// result intervals carry different annotations (annotation
/// changepoints, Def 5.2).
template <Semiring K>
TemporalElement<K> Coalesce(const K& k, const TemporalElement<K>& te) {
  std::vector<TimePoint> points = internal::CollectEndpoints<K>({&te});
  TemporalElement<K> out;
  bool have_open = false;
  Interval open;
  typename K::Value open_annot = k.Zero();
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval segment(points[i], points[i + 1]);
    typename K::Value v = internal::SegmentValue(k, te, segment);
    if (IsZero(k, v)) {
      if (have_open) out.Add(open, open_annot);
      have_open = false;
      continue;
    }
    if (have_open && open.end == segment.begin && k.Equal(open_annot, v)) {
      open.end = segment.end;
    } else {
      if (have_open) out.Add(open, open_annot);
      open = segment;
      open_annot = v;
      have_open = true;
    }
  }
  if (have_open) out.Add(open, open_annot);
  return out;
}

/// Structural equality of two *normal form* elements: identical interval
/// sequences with K-equal annotations.  (For raw elements this is
/// representation equality after sorting, not snapshot-equivalence.)
template <Semiring K>
bool StructurallyEqual(const K& k, const TemporalElement<K>& a,
                       const TemporalElement<K>& b) {
  if (a.size() != b.size()) return false;
  TemporalElement<K> sa = a, sb = b;
  sa.SortEntries();
  sb.SortEntries();
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!(sa.entries()[i].first == sb.entries()[i].first)) return false;
    if (!k.Equal(sa.entries()[i].second, sb.entries()[i].second)) return false;
  }
  return true;
}

/// Snapshot-equivalence (paper Section 5.1): equal timeslices at every
/// point.  Equivalent to equality of coalesced forms (Lemma 5.1).
template <Semiring K>
bool SnapshotEquivalent(const K& k, const TemporalElement<K>& a,
                        const TemporalElement<K>& b) {
  return StructurallyEqual(k, Coalesce(k, a), Coalesce(k, b));
}

/// Pointwise addition +_KP (paper Def 6.1): the union of the entries.
template <Semiring K>
TemporalElement<K> PointwisePlus(const K& /*k*/, const TemporalElement<K>& a,
                                 const TemporalElement<K>& b) {
  std::vector<typename TemporalElement<K>::Entry> entries = a.entries();
  entries.insert(entries.end(), b.entries().begin(), b.entries().end());
  return TemporalElement<K>(std::move(entries));
}

/// Pointwise multiplication ._KP (paper Def 6.1): products of annotations
/// over all pairs of overlapping intervals, valid during the overlap.
template <Semiring K>
TemporalElement<K> PointwiseTimes(const K& k, const TemporalElement<K>& a,
                                  const TemporalElement<K>& b) {
  TemporalElement<K> out;
  for (const auto& [ia, va] : a.entries()) {
    for (const auto& [ib, vb] : b.entries()) {
      std::optional<Interval> overlap = Interval::Intersect(ia, ib);
      if (overlap.has_value()) out.Add(*overlap, k.Times(va, vb));
    }
  }
  return out;
}

/// Pointwise monus -_KP (paper Section 7.1).  Defined there on singleton
/// intervals [T, T+1); evaluated here on the elementary segments on which
/// both inputs are constant, which yields a snapshot-equivalent element
/// (the monus is constant on each segment).  Segments where `a` is zero
/// contribute nothing since 0 monus x = 0.
template <MSemiring K>
TemporalElement<K> PointwiseMonus(const K& k, const TemporalElement<K>& a,
                                  const TemporalElement<K>& b) {
  std::vector<TimePoint> points = internal::CollectEndpoints<K>({&a, &b});
  TemporalElement<K> out;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval segment(points[i], points[i + 1]);
    typename K::Value va = internal::SegmentValue(k, a, segment);
    if (IsZero(k, va)) continue;
    typename K::Value vb = internal::SegmentValue(k, b, segment);
    typename K::Value v = k.Monus(va, vb);
    if (!IsZero(k, v)) out.Add(segment, v);
  }
  return out;
}

/// Natural order of K^T (paper Thm 7.1 proof): pointwise natural order
/// of the base semiring at every time point.
template <MSemiring K>
bool TemporalNaturalLeq(const K& k, const TemporalElement<K>& a,
                        const TemporalElement<K>& b) {
  std::vector<TimePoint> points = internal::CollectEndpoints<K>({&a, &b});
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    Interval segment(points[i], points[i + 1]);
    if (!k.NaturalLeq(internal::SegmentValue(k, a, segment),
                      internal::SegmentValue(k, b, segment))) {
      return false;
    }
  }
  return true;
}

/// "{}" or "{[b, e) -> v, ...}" with entries in interval order.
template <Semiring K>
std::string ToString(const K& k, const TemporalElement<K>& te) {
  TemporalElement<K> sorted = te;
  sorted.SortEntries();
  return StrCat(
      "{",
      JoinMapped(sorted.entries(), ", ",
                 [&](const typename TemporalElement<K>::Entry& e) {
                   return StrCat(e.first.ToString(), " -> ",
                                 k.ToString(e.second));
                 }),
      "}");
}

/// Random (possibly overlapping, possibly zero-containing) temporal
/// element within `dom`, for property tests.
template <Semiring K>
TemporalElement<K> RandomTemporalElement(const K& k, const TimeDomain& dom,
                                         Rng& rng, int max_entries = 4) {
  TemporalElement<K> out;
  int n = static_cast<int>(rng.Uniform(max_entries + 1));
  for (int i = 0; i < n; ++i) {
    TimePoint b = rng.Range(dom.tmin, dom.tmax - 1);
    TimePoint e = rng.Range(b + 1, dom.tmax);
    out.Add(Interval(b, e), k.RandomValue(rng));
  }
  return out;
}

}  // namespace periodk

#endif  // PERIODK_TEMPORAL_TEMPORAL_ELEMENT_H_
