// The period semiring K^T (paper Def 6.1): for any commutative semiring
// K and finite time domain T, the structure over *coalesced* temporal
// K-elements with
//   a +_{K^T} b = C_K(a +_KP b)      (pointwise addition, then coalesce)
//   a *_{K^T} b = C_K(a *_KP b)      (overlap products, then coalesce)
//   0 = {} (all intervals -> 0_K),   1 = {[Tmin, Tmax) -> 1_K}
// K^T is a semiring (Thm 6.2); if K is an m-semiring then so is K^T
// (Thm 7.1) with a -_{K^T} b = C_K(a -_KP b); and the timeslice operator
// tau_T is an (m-)semiring homomorphism K^T -> K (Thms 6.3 / 7.2), which
// is what makes period K-relations snapshot-reducible.
//
// PeriodSemiring<K> itself satisfies the Semiring (and, when applicable,
// MSemiring) concept, so all generic K-relation machinery -- including
// this very construction -- composes over it.
#ifndef PERIODK_TEMPORAL_PERIOD_SEMIRING_H_
#define PERIODK_TEMPORAL_PERIOD_SEMIRING_H_

#include <string>
#include <utility>

#include "common/rng.h"
#include "semiring/semiring.h"
#include "temporal/temporal_element.h"

namespace periodk {

template <Semiring K>
class PeriodSemiring {
 public:
  using Base = K;
  using Value = TemporalElement<K>;

  PeriodSemiring(K base, TimeDomain domain)
      : base_(std::move(base)), domain_(domain) {}

  const K& base() const { return base_; }
  const TimeDomain& domain() const { return domain_; }

  Value Zero() const { return Value(); }

  Value One() const {
    return Value(Interval(domain_.tmin, domain_.tmax), base_.One());
  }

  Value Plus(const Value& a, const Value& b) const {
    return periodk::Coalesce(base_, PointwisePlus(base_, a, b));
  }

  Value Times(const Value& a, const Value& b) const {
    return periodk::Coalesce(base_, PointwiseTimes(base_, a, b));
  }

  /// Structural equality; sound because K^T values are maintained in
  /// coalesced normal form, which is unique per Lemma 5.1.
  bool Equal(const Value& a, const Value& b) const {
    return StructurallyEqual(base_, a, b);
  }

  Value Monus(const Value& a, const Value& b) const
    requires MSemiring<K>
  {
    return periodk::Coalesce(base_, PointwiseMonus(base_, a, b));
  }

  bool NaturalLeq(const Value& a, const Value& b) const
    requires MSemiring<K>
  {
    return TemporalNaturalLeq(base_, a, b);
  }

  /// Normalizes an arbitrary temporal element into K^T.
  Value Coalesce(const Value& raw) const {
    return periodk::Coalesce(base_, raw);
  }

  /// The homomorphism tau_T : K^T -> K (Thm 6.3 / 7.2).
  typename K::Value TimesliceAt(const Value& te, TimePoint t) const {
    return Timeslice(base_, te, t);
  }

  std::string ToString(const Value& te) const {
    return periodk::ToString(base_, te);
  }

  std::string Name() const { return base_.Name() + "^T"; }

  /// Random *coalesced* element for property tests.
  Value RandomValue(Rng& rng) const {
    return periodk::Coalesce(
        base_, RandomTemporalElement(base_, domain_, rng));
  }

 private:
  K base_;
  TimeDomain domain_;
};

}  // namespace periodk

#endif  // PERIODK_TEMPORAL_PERIOD_SEMIRING_H_
