// Commutative semirings (K-relations annotation domains, Green et al.
// PODS'07) and m-semirings (semirings with monus, Geerts & Poggi).
//
// Semirings are modeled as *instances* (not purely static traits) so that
// structures requiring runtime state -- notably the period semiring K^T,
// which carries its time domain -- satisfy the same concept and compose
// (e.g. PeriodSemiring<NatSemiring> is itself a Semiring and an
// MSemiring).  This mirrors the paper's construction: for any semiring K,
// K^T is a semiring (Thm 6.2) and inherits the monus (Thm 7.1).
#ifndef PERIODK_SEMIRING_SEMIRING_H_
#define PERIODK_SEMIRING_SEMIRING_H_

#include <concepts>
#include <string>

namespace periodk {

/// A commutative semiring (K, +, *, 0, 1): both operations commutative
/// and associative with neutral elements, * distributes over +, and
/// 0 * k = 0.  `Equal` must be a congruence for + and *.
template <typename S>
concept Semiring = requires(const S s, const typename S::Value& a,
                            const typename S::Value& b) {
  typename S::Value;
  { s.Zero() } -> std::convertible_to<typename S::Value>;
  { s.One() } -> std::convertible_to<typename S::Value>;
  { s.Plus(a, b) } -> std::convertible_to<typename S::Value>;
  { s.Times(a, b) } -> std::convertible_to<typename S::Value>;
  { s.Equal(a, b) } -> std::convertible_to<bool>;
  { s.ToString(a) } -> std::convertible_to<std::string>;
  { s.Name() } -> std::convertible_to<std::string>;
};

/// A semiring with a well-defined monus (difference):
///   k monus k' = smallest k'' (w.r.t. the natural order) with
///   k <= k' + k''.
/// Requires the semiring to be naturally ordered (k <= k' iff
/// exists k'': k + k'' = k') and the minimum above to exist.
template <typename S>
concept MSemiring =
    Semiring<S> && requires(const S s, const typename S::Value& a,
                            const typename S::Value& b) {
      { s.Monus(a, b) } -> std::convertible_to<typename S::Value>;
      { s.NaturalLeq(a, b) } -> std::convertible_to<bool>;
    };

/// True iff `a` equals the additive neutral element of `s`.
template <Semiring S>
bool IsZero(const S& s, const typename S::Value& a) {
  return s.Equal(a, s.Zero());
}

/// True iff `a` equals the multiplicative neutral element of `s`.
template <Semiring S>
bool IsOne(const S& s, const typename S::Value& a) {
  return s.Equal(a, s.One());
}

}  // namespace periodk

#endif  // PERIODK_SEMIRING_SEMIRING_H_
