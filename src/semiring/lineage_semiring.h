// The lineage (which-provenance) semiring
//   Lin = (P(X) + bottom, union*, union*, bottom, {})
// where bottom absorbs multiplication and is neutral for addition.
// Annotating tuples with lineage tracks which input tuples contributed to
// each output tuple; combined with the period semiring construction this
// yields *temporal provenance*: which inputs contribute when.  Included
// to demonstrate that the framework works for any semiring K (paper
// Section 11 lists provenance as an application).  Lin has no
// well-defined monus (Amsterdamer et al., TaPP'11), so it exercises the
// RA+-only path.
#ifndef PERIODK_SEMIRING_LINEAGE_SEMIRING_H_
#define PERIODK_SEMIRING_LINEAGE_SEMIRING_H_

#include <optional>
#include <set>
#include <string>

#include "common/rng.h"
#include "common/str_util.h"

namespace periodk {

class LineageSemiring {
 public:
  /// nullopt is the annihilating zero (bottom); otherwise a set of input
  /// tuple identifiers.
  using Value = std::optional<std::set<int>>;

  Value Zero() const { return std::nullopt; }
  Value One() const { return std::set<int>{}; }

  Value Plus(const Value& a, const Value& b) const {
    if (!a.has_value()) return b;
    if (!b.has_value()) return a;
    return Merge(*a, *b);
  }

  Value Times(const Value& a, const Value& b) const {
    if (!a.has_value() || !b.has_value()) return std::nullopt;
    return Merge(*a, *b);
  }

  bool Equal(const Value& a, const Value& b) const { return a == b; }

  std::string ToString(const Value& a) const {
    if (!a.has_value()) return "_|_";
    return StrCat("{",
                  JoinMapped(*a, ",",
                             [](int id) { return std::to_string(id); }),
                  "}");
  }
  std::string Name() const { return "Lin"; }

  Value RandomValue(Rng& rng) const {
    if (rng.Chance(0.2)) return std::nullopt;
    std::set<int> s;
    uint64_t n = rng.Uniform(4);
    for (uint64_t i = 0; i < n; ++i) s.insert(static_cast<int>(rng.Uniform(8)));
    return s;
  }

 private:
  static std::set<int> Merge(const std::set<int>& a, const std::set<int>& b) {
    std::set<int> out = a;
    out.insert(b.begin(), b.end());
    return out;
  }
};

}  // namespace periodk

#endif  // PERIODK_SEMIRING_LINEAGE_SEMIRING_H_
