// The boolean semiring B = ({false,true}, or, and, false, true):
// set semantics.  B is an m-semiring; its monus is "and not", which makes
// difference over B-relations set difference (paper Section 7.1).
#ifndef PERIODK_SEMIRING_BOOL_SEMIRING_H_
#define PERIODK_SEMIRING_BOOL_SEMIRING_H_

#include <string>

#include "common/rng.h"

namespace periodk {

class BoolSemiring {
 public:
  using Value = bool;

  Value Zero() const { return false; }
  Value One() const { return true; }
  Value Plus(Value a, Value b) const { return a || b; }
  Value Times(Value a, Value b) const { return a && b; }
  bool Equal(Value a, Value b) const { return a == b; }

  /// Natural order: false <= true (B is naturally ordered).
  bool NaturalLeq(Value a, Value b) const { return !a || b; }
  /// a monus b = a and not b (set difference semantics).
  Value Monus(Value a, Value b) const { return a && !b; }

  std::string ToString(Value a) const { return a ? "true" : "false"; }
  std::string Name() const { return "B"; }

  /// Random element for property tests.
  Value RandomValue(Rng& rng) const { return rng.Chance(0.5); }
};

}  // namespace periodk

#endif  // PERIODK_SEMIRING_BOOL_SEMIRING_H_
