// The tropical (min-plus) semiring Trop = (N + {inf}, min, +, inf, 0):
// cost semantics -- the annotation of a query result is the minimum cost
// over all derivations.  Trop is totally ordered by its natural order
// (k <= k' iff min(k, k'') = k' for some k'', i.e. k' <= k numerically),
// which admits a monus.  Included to exercise the genericity of the
// period semiring construction over a non-N m-semiring with an
// "inverted" natural order.
#ifndef PERIODK_SEMIRING_TROPICAL_SEMIRING_H_
#define PERIODK_SEMIRING_TROPICAL_SEMIRING_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.h"

namespace periodk {

class TropicalSemiring {
 public:
  using Value = int64_t;
  static constexpr Value kInfinity = std::numeric_limits<int64_t>::max();

  Value Zero() const { return kInfinity; }
  Value One() const { return 0; }
  Value Plus(Value a, Value b) const { return a < b ? a : b; }
  Value Times(Value a, Value b) const {
    if (a == kInfinity || b == kInfinity) return kInfinity;
    return a + b;
  }
  bool Equal(Value a, Value b) const { return a == b; }

  /// Natural order: a <= b iff exists c with min(a, c) = b, i.e. b <= a
  /// numerically.  (Infinity = 0_K is the least element, as required.)
  bool NaturalLeq(Value a, Value b) const { return b <= a; }

  /// a monus b: the <=_K-smallest (numerically largest) c with
  /// min(b, c) <= a numerically.
  Value Monus(Value a, Value b) const { return b <= a ? kInfinity : a; }

  std::string ToString(Value a) const {
    return a == kInfinity ? "inf" : std::to_string(a);
  }
  std::string Name() const { return "Trop"; }

  Value RandomValue(Rng& rng) const {
    if (rng.Chance(0.2)) return kInfinity;
    return static_cast<Value>(rng.Uniform(20));
  }
};

}  // namespace periodk

#endif  // PERIODK_SEMIRING_TROPICAL_SEMIRING_H_
