// The semiring of natural numbers N = (N, +, *, 0, 1): multiset (bag)
// semantics, the central semiring of the paper.  N is an m-semiring with
// truncating subtraction as monus, which makes difference over
// N-relations SQL's EXCEPT ALL (paper Section 7.1).
#ifndef PERIODK_SEMIRING_NAT_SEMIRING_H_
#define PERIODK_SEMIRING_NAT_SEMIRING_H_

#include <cstdint>
#include <string>

#include "common/rng.h"

namespace periodk {

class NatSemiring {
 public:
  /// Multiplicities.  int64_t (not uint64_t) so accidental underflow in
  /// client code is detectable; all operations keep values >= 0.
  using Value = int64_t;

  Value Zero() const { return 0; }
  Value One() const { return 1; }
  Value Plus(Value a, Value b) const { return a + b; }
  Value Times(Value a, Value b) const { return a * b; }
  bool Equal(Value a, Value b) const { return a == b; }

  /// Natural order of N is the usual order on naturals.
  bool NaturalLeq(Value a, Value b) const { return a <= b; }
  /// Truncating minus: max(0, a - b).
  Value Monus(Value a, Value b) const { return a > b ? a - b : 0; }

  std::string ToString(Value a) const { return std::to_string(a); }
  std::string Name() const { return "N"; }

  /// Random element for property tests (small values keep products small).
  Value RandomValue(Rng& rng) const {
    return static_cast<Value>(rng.Uniform(5));
  }
};

}  // namespace periodk

#endif  // PERIODK_SEMIRING_NAT_SEMIRING_H_
