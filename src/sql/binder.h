// The binder translates parsed SQL into bound logical plans (ra/).
//
// In *snapshot mode* (SEQ VT blocks) every table access must be a period
// table: its interval columns (from the PERIOD clause or the registered
// metadata) are hidden from the query's scope, the plan is expressed
// over snapshot schemas, and an encoded-table mapping is produced for
// the rewriter (reordering the interval columns into the trailing
// position when they are stored elsewhere).
//
// Binding performs simple predicate pushdown: single-table conjuncts
// move below the joins and equi-join conjuncts attach to the lowest
// join, which lets the executor use hash joins.
#ifndef PERIODK_SQL_BINDER_H_
#define PERIODK_SQL_BINDER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engine/executor.h"
#include "ra/plan.h"
#include "sql/ast.h"

namespace periodk {
namespace sql {

/// Which columns of a registered table store its validity interval.
struct PeriodTableInfo {
  std::string begin_column;
  std::string end_column;
};

struct BoundStatement {
  bool snapshot = false;
  /// SEQ VT AS OF t: timeslice the snapshot result at t.
  std::optional<int64_t> as_of;
  /// Snapshot queries: plan over snapshot schemas (input to REWR).
  /// Plain queries: directly executable plan.
  PlanPtr plan;
  /// Table name -> encoded-scan plan (interval columns last).
  std::map<std::string, PlanPtr> encoded_tables;
  /// Unbound ORDER BY items; resolve against the final result schema
  /// with BindOrderBy once rewriting determined that schema.
  std::vector<OrderItem> order_by;
};

class Binder {
 public:
  Binder(const Catalog* catalog,
         const std::map<std::string, PeriodTableInfo>* period_tables)
      : catalog_(catalog), period_tables_(period_tables) {}

  [[nodiscard]] Result<BoundStatement> Bind(const Statement& statement) const;

 private:
  const Catalog* catalog_;
  const std::map<std::string, PeriodTableInfo>* period_tables_;
};

/// Resolves ORDER BY items against a result schema.  Integer literals
/// are 1-based ordinals; column references match by (qualifier,) name.
[[nodiscard]] Result<std::vector<SortKey>> BindOrderBy(
    const std::vector<OrderItem>& items, const Schema& schema);

}  // namespace sql
}  // namespace periodk

#endif  // PERIODK_SQL_BINDER_H_
