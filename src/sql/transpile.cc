#include "sql/transpile.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/str_util.h"
#include "common/value.h"
#include "engine/expr.h"

namespace periodk {

namespace {

std::vector<int> Iota(size_t n, int start = 0) {
  std::vector<int> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = start + static_cast<int>(i);
  return out;
}

// --- kSplitAggregate lowering ---------------------------------------------

/// Unfused equivalent of one kSplitAggregate node, mirroring the
/// rewriter's unfused aggregation path: normalize groups/args into
/// columns, union a neutral tuple when gap rows are requested (a
/// constant full-domain tuple for global aggregation, one per observed
/// group otherwise), split, clamp fragments to the domain (gap rows
/// declare the result complete over it), aggregate per (group,
/// fragment) and reorder to the fused operator's column order.
PlanPtr LowerOneSplitAggregate(const Plan& q, PlanPtr child) {
  int arity = static_cast<int>(child->schema.size());
  int nattr = arity - 2;
  for (int g : q.split_group) {
    if (g < 0 || g >= nattr) {
      throw TranspileError(
          "cannot lower a split-aggregate grouped on temporal columns");
    }
  }
  size_t n_groups = q.split_group.size();
  bool global = n_groups == 0;

  // Normalized projection: (group..., arg..., a_begin, a_end).  With
  // gap synthesis, count(*) becomes count(marker) over a constant-1
  // column so the neutral tuple (all-NULL args) is not counted.
  std::vector<ExprPtr> proj;
  std::vector<Column> proj_names;
  for (size_t g = 0; g < n_groups; ++g) {
    int c = q.split_group[g];
    proj.push_back(Col(c, child->schema.at(static_cast<size_t>(c)).name));
    proj_names.push_back(child->schema.at(static_cast<size_t>(c)));
  }
  std::vector<AggExpr> aggs;
  for (size_t a = 0; a < q.aggs.size(); ++a) {
    AggExpr agg = q.aggs[a];
    if (agg.func == AggFunc::kCountStar) {
      if (q.gap_rows) {
        agg.func = AggFunc::kCount;
        agg.arg = LitInt(1);
      } else {
        aggs.push_back(agg);
        continue;
      }
    }
    int arg_col = static_cast<int>(proj.size());
    proj.push_back(agg.arg);
    proj_names.emplace_back(StrCat("agg_arg_", a));
    agg.arg = Col(arg_col, proj_names.back().name);
    aggs.push_back(std::move(agg));
  }
  size_t n_args = proj.size() - n_groups;
  proj.push_back(Col(nattr, "a_begin"));
  proj_names.emplace_back("a_begin");
  proj.push_back(Col(nattr + 1, "a_end"));
  proj_names.emplace_back("a_end");
  PlanPtr normalized = MakeProject(child, std::move(proj), proj_names);

  PlanPtr split_input = normalized;
  if (q.gap_rows) {
    if (global) {
      Row neutral(n_args, Value::Null());
      neutral.push_back(Value::Int(q.domain.tmin));
      neutral.push_back(Value::Int(q.domain.tmax));
      Relation constant(normalized->schema);
      constant.AddRow(std::move(neutral));
      split_input = MakeUnionAll(normalized, MakeConstant(std::move(constant)));
    } else {
      // Per-observed-group neutrals (Teradata-style grouped gaps): a
      // group is observed iff it has at least one valid-interval row.
      PlanPtr valid = MakeSelect(child, Lt(Col(nattr), Col(nattr + 1)));
      PlanPtr groups_only = MakeProjectColumns(std::move(valid), q.split_group);
      PlanPtr distinct = MakeDistinct(std::move(groups_only));
      std::vector<ExprPtr> nexprs;
      for (size_t g = 0; g < n_groups; ++g) {
        nexprs.push_back(Col(static_cast<int>(g), proj_names[g].name));
      }
      for (size_t a2 = 0; a2 < n_args; ++a2) nexprs.push_back(Lit(Value::Null()));
      nexprs.push_back(LitInt(q.domain.tmin));
      nexprs.push_back(LitInt(q.domain.tmax));
      PlanPtr neutral =
          MakeProject(std::move(distinct), std::move(nexprs), proj_names);
      split_input = MakeUnionAll(normalized, std::move(neutral));
    }
  }
  PlanPtr split =
      MakeSplit(std::move(split_input), normalized, Iota(n_groups));

  PlanPtr body = std::move(split);
  int fb = static_cast<int>(n_groups + n_args);
  if (q.gap_rows) {
    // Gap rows declare the result complete over the domain, so the
    // fused operator clamps fragments to it; unfused, the neutral
    // tuple's endpoints already cut every straddling interval at the
    // domain bounds, and dropping the out-of-domain fragments finishes
    // the clamp.
    body = MakeSelect(std::move(body),
                      And(Ge(Col(fb), LitInt(q.domain.tmin)),
                          Le(Col(fb + 1), LitInt(q.domain.tmax))));
  }

  std::vector<ExprPtr> group_exprs;
  std::vector<Column> group_names;
  for (size_t g = 0; g < n_groups; ++g) {
    group_exprs.push_back(Col(static_cast<int>(g), proj_names[g].name));
    group_names.push_back(proj_names[g]);
  }
  group_exprs.push_back(Col(fb, "a_begin"));
  group_names.emplace_back("a_begin");
  group_exprs.push_back(Col(fb + 1, "a_end"));
  group_names.emplace_back("a_end");
  std::vector<AggExpr> named = aggs;
  for (size_t a = 0; a < named.size(); ++a) {
    named[a].name = q.schema.at(n_groups + a).name;
  }
  PlanPtr agg = MakeAggregate(std::move(body), std::move(group_exprs),
                              std::move(group_names), std::move(named));
  // (groups..., b, e, aggs...) -> (groups..., aggs..., b, e).
  std::vector<int> order;
  for (size_t g = 0; g < n_groups; ++g) order.push_back(static_cast<int>(g));
  for (size_t a = 0; a < aggs.size(); ++a) {
    order.push_back(static_cast<int>(n_groups + 2 + a));
  }
  order.push_back(static_cast<int>(n_groups));
  order.push_back(static_cast<int>(n_groups) + 1);
  return MakeProjectColumns(std::move(agg), order);
}

PlanPtr LowerNode(const PlanPtr& p,
                  std::unordered_map<const Plan*, PlanPtr>& memo) {
  if (p == nullptr) return p;
  auto it = memo.find(p.get());
  if (it != memo.end()) return it->second;
  PlanPtr left = LowerNode(p->left, memo);
  PlanPtr right = LowerNode(p->right, memo);
  PlanPtr out;
  if (p->kind == PlanKind::kSplitAggregate) {
    out = LowerOneSplitAggregate(*p, std::move(left));
  } else if (left == p->left && right == p->right) {
    out = p;  // untouched subtree: keep the original (and its sharing)
  } else {
    switch (p->kind) {
      case PlanKind::kSelect:
        out = MakeSelect(std::move(left), p->predicate);
        break;
      case PlanKind::kProject:
        out = MakeProject(std::move(left), p->exprs, p->schema.columns());
        break;
      case PlanKind::kJoin:
        out = MakeJoin(std::move(left), std::move(right), p->predicate);
        break;
      case PlanKind::kUnionAll:
        out = MakeUnionAll(std::move(left), std::move(right));
        break;
      case PlanKind::kExceptAll:
        out = MakeExceptAll(std::move(left), std::move(right));
        break;
      case PlanKind::kAntiJoin:
        out = MakeAntiJoin(std::move(left), std::move(right));
        break;
      case PlanKind::kAggregate: {
        std::vector<Column> names;
        for (size_t g = 0; g < p->exprs.size(); ++g) {
          names.push_back(p->schema.at(g));
        }
        out = MakeAggregate(std::move(left), p->exprs, std::move(names),
                            p->aggs);
        break;
      }
      case PlanKind::kDistinct:
        out = MakeDistinct(std::move(left));
        break;
      case PlanKind::kSort:
        out = MakeSort(std::move(left), p->sort_keys);
        break;
      case PlanKind::kCoalesce:
        out = MakeCoalesce(std::move(left), p->coalesce_impl);
        break;
      case PlanKind::kSplit:
        out = MakeSplit(std::move(left), std::move(right), p->split_group);
        break;
      case PlanKind::kTimeslice: {
        auto [bcol, ecol] = ResolveSliceColumns(*p);
        out = MakeTimesliceAt(std::move(left), p->slice_time, bcol, ecol);
        break;
      }
      default:
        throw TranspileError(StrCat("cannot rebuild plan node: ",
                                    PlanKindName(p->kind)));
    }
  }
  memo.emplace(p.get(), out);
  return out;
}

// --- Expression SQL --------------------------------------------------------

using ColNamer = std::function<std::string(int)>;

std::string DoubleSql(double d) {
  if (std::isnan(d)) {
    throw TranspileError("NaN literal has no SQL spelling");
  }
  if (std::isinf(d)) return d > 0 ? "9e999" : "-9e999";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  std::string s = buf;
  if (s.find_first_of(".eE") == std::string::npos) s += ".0";
  return s;
}

std::string LiteralSql(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return v.AsBool() ? "1" : "0";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kDouble:
      return DoubleSql(v.AsDouble());
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      return out + "'";
    }
  }
  throw TranspileError("unknown literal type");
}

const char* CompareSql(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ExprSql(const ExprPtr& e, const ColNamer& col);

/// least/greatest with Postgres NULL-skipping semantics (the engine's),
/// which SQLite's scalar min/max do not have: fold pairwise through a
/// CASE that passes the non-NULL side through.
std::string ExtremumSql(bool least, const std::vector<ExprPtr>& args,
                        const ColNamer& col) {
  if (args.empty()) throw TranspileError("least/greatest needs arguments");
  std::string acc = ExprSql(args[0], col);
  for (size_t i = 1; i < args.size(); ++i) {
    std::string b = ExprSql(args[i], col);
    acc = StrCat("CASE WHEN ", acc, " IS NULL THEN ", b, " WHEN ", b,
                 " IS NULL THEN ", acc, " WHEN ", acc,
                 least ? " <= " : " >= ", b, " THEN ", acc, " ELSE ", b,
                 " END");
  }
  return StrCat("(", acc, ")");
}

std::string ExprSql(const ExprPtr& e, const ColNamer& col) {
  switch (e->kind) {
    case ExprKind::kColumn:
      return col(e->column);
    case ExprKind::kLiteral:
      return LiteralSql(e->literal);
    case ExprKind::kCompare:
      return StrCat("(", ExprSql(e->children[0], col), " ", CompareSql(e->cmp),
                    " ", ExprSql(e->children[1], col), ")");
    case ExprKind::kAnd:
      return StrCat("(", ExprSql(e->children[0], col), " AND ",
                    ExprSql(e->children[1], col), ")");
    case ExprKind::kOr:
      return StrCat("(", ExprSql(e->children[0], col), " OR ",
                    ExprSql(e->children[1], col), ")");
    case ExprKind::kNot:
      return StrCat("(NOT ", ExprSql(e->children[0], col), ")");
    case ExprKind::kArith: {
      std::string a = ExprSql(e->children[0], col);
      std::string b = ExprSql(e->children[1], col);
      switch (e->arith) {
        case ArithOp::kAdd:
          return StrCat("(", a, " + ", b, ")");
        case ArithOp::kSub:
          return StrCat("(", a, " - ", b, ")");
        case ArithOp::kMul:
          return StrCat("(", a, " * ", b, ")");
        case ArithOp::kDiv:
          // The engine's division is always decimal (and x/0 is NULL,
          // which real division already gives in SQL).
          return StrCat("(CAST(", a, " AS REAL) / CAST(", b, " AS REAL))");
        case ArithOp::kMod:
          return StrCat("(", a, " % ", b, ")");
      }
      throw TranspileError("unknown arithmetic operator");
    }
    case ExprKind::kNeg:
      return StrCat("(-", ExprSql(e->children[0], col), ")");
    case ExprKind::kFunc:
      switch (e->func) {
        case ScalarFunc::kLeast:
          return ExtremumSql(true, e->children, col);
        case ScalarFunc::kGreatest:
          return ExtremumSql(false, e->children, col);
        case ScalarFunc::kAbs:
          return StrCat("abs(", ExprSql(e->children[0], col), ")");
        case ScalarFunc::kYear:
          // Integer day / 365 with the engine's 1992 epoch; both C++
          // and SQL integer division truncate toward zero.
          return StrCat("(1992 + (", ExprSql(e->children[0], col),
                        " / 365))");
        case ScalarFunc::kIfNull:
          return StrCat("ifnull(", ExprSql(e->children[0], col), ", ",
                        ExprSql(e->children[1], col), ")");
      }
      throw TranspileError("unknown scalar function");
    case ExprKind::kCase: {
      std::string out = "(CASE";
      size_t n_branches = e->children.size() / 2;
      for (size_t i = 0; i < n_branches; ++i) {
        out += StrCat(" WHEN ", ExprSql(e->children[2 * i], col), " THEN ",
                      ExprSql(e->children[2 * i + 1], col));
      }
      if (e->children.size() % 2 == 1) {
        out += StrCat(" ELSE ", ExprSql(e->children.back(), col));
      }
      return out + " END)";
    }
    case ExprKind::kIn: {
      std::string needle = ExprSql(e->children[0], col);
      if (e->children.size() == 1) {
        // IN () is false (NOT IN () true) unless the needle is NULL --
        // spelled out because SQL engines disagree on the empty list.
        return StrCat("(CASE WHEN ", needle, " IS NULL THEN NULL ELSE ",
                      e->negated ? "1" : "0", " END)");
      }
      std::string out = StrCat("(", needle, e->negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (i > 1) out += ", ";
        out += ExprSql(e->children[i], col);
      }
      return out + "))";
    }
    case ExprKind::kBetween:
      return StrCat("(", ExprSql(e->children[0], col),
                    e->negated ? " NOT BETWEEN " : " BETWEEN ",
                    ExprSql(e->children[1], col), " AND ",
                    ExprSql(e->children[2], col), ")");
    case ExprKind::kIsNull:
      return StrCat("(", ExprSql(e->children[0], col),
                    e->negated ? " IS NOT NULL" : " IS NULL", ")");
    case ExprKind::kLike:
      return StrCat("(", ExprSql(e->children[0], col),
                    e->negated ? " NOT LIKE " : " LIKE ",
                    ExprSql(e->children[1], col), ")");
  }
  throw TranspileError("unknown expression kind");
}

std::string AggSql(const AggExpr& agg, const ColNamer& col) {
  switch (agg.func) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return StrCat("COUNT(", ExprSql(agg.arg, col), ")");
    case AggFunc::kSum:
      return StrCat("SUM(", ExprSql(agg.arg, col), ")");
    case AggFunc::kAvg:
      return StrCat("AVG(", ExprSql(agg.arg, col), ")");
    case AggFunc::kMin:
      return StrCat("MIN(", ExprSql(agg.arg, col), ")");
    case AggFunc::kMax:
      return StrCat("MAX(", ExprSql(agg.arg, col), ")");
  }
  throw TranspileError("unknown aggregate function");
}

std::string QuoteIdent(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    out += c;
    if (c == '"') out += '"';
  }
  return out + "\"";
}

// --- Plan SQL --------------------------------------------------------------

class Transpiler {
 public:
  SqlScript Run(const PlanPtr& root) {
    CountRefs(root);
    SqlScript out;
    out.query = Tr(root);
    out.setup = std::move(stages_);
    return out;
  }

 private:
  void CountRefs(const PlanPtr& p) {
    if (p == nullptr) return;
    if (++refs_[p.get()] > 1) return;
    CountRefs(p->left);
    CountRefs(p->right);
  }

  std::string NewName(const char* stem) { return StrCat(stem, next_++); }

  /// Materializes `sql` as temp table `name`.  NOT a CTE: SQLite
  /// expands every CTE reference at parse time, so multiply-referenced
  /// stages would make parsing exponential in the pipeline depth.
  void PushStage(const std::string& name, const std::string& sql) {
    stages_.push_back(StrCat("CREATE TEMP TABLE ", name, " AS ", sql, ";"));
  }

  /// "c0, c1, ..." over `cols`, optionally alias-qualified.
  static std::string ColList(const std::vector<int>& cols,
                             const std::string& qual = "") {
    std::string out;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) out += ", ";
      if (!qual.empty()) out += qual + ".";
      out += StrCat("c", cols[i]);
    }
    return out;
  }

  /// Column namer over a single aliased input with columns c0..cN-1.
  static ColNamer Namer(const std::string& alias) {
    return [alias](int c) { return StrCat(alias, ".c", c); };
  }

  /// A statement computing `p` (columns c0..cN-1).  Shared nodes are
  /// materialized once as a stage and referenced thereafter.
  std::string Tr(const PlanPtr& p) {
    auto it = memo_.find(p.get());
    if (it != memo_.end()) return "SELECT * FROM " + it->second;
    std::string sql = TrNode(*p);
    if (refs_[p.get()] > 1) {
      std::string name = NewName("q");
      PushStage(name, sql);
      memo_.emplace(p.get(), name);
      return "SELECT * FROM " + name;
    }
    return sql;
  }

  std::string TrNode(const Plan& p) {
    int arity = static_cast<int>(p.schema.size());
    switch (p.kind) {
      case PlanKind::kScan:
        return StrCat("SELECT ", ColList(Iota(p.schema.size())), " FROM ",
                      QuoteIdent(p.table));
      case PlanKind::kConstant:
        return TrConstant(p);
      case PlanKind::kSelect: {
        std::string a = NewName("s");
        return StrCat("SELECT * FROM (", Tr(p.left), ") AS ", a, " WHERE ",
                      ExprSql(p.predicate, Namer(a)));
      }
      case PlanKind::kProject: {
        std::string a = NewName("s");
        std::string items;
        for (size_t i = 0; i < p.exprs.size(); ++i) {
          if (i > 0) items += ", ";
          items += StrCat(ExprSql(p.exprs[i], Namer(a)), " AS c", i);
        }
        if (p.exprs.empty()) {
          throw TranspileError("cannot transpile a zero-column projection");
        }
        return StrCat("SELECT ", items, " FROM (", Tr(p.left), ") AS ", a);
      }
      case PlanKind::kJoin: {
        int nl = static_cast<int>(p.left->schema.size());
        std::string a = NewName("s");
        std::string b = NewName("s");
        std::string items;
        for (int i = 0; i < arity; ++i) {
          if (i > 0) items += ", ";
          items += i < nl ? StrCat(a, ".c", i, " AS c", i)
                          : StrCat(b, ".c", i - nl, " AS c", i);
        }
        ColNamer namer = [=](int c) {
          return c < nl ? StrCat(a, ".c", c) : StrCat(b, ".c", c - nl);
        };
        return StrCat("SELECT ", items, " FROM (", Tr(p.left), ") AS ", a,
                      " CROSS JOIN (", Tr(p.right), ") AS ", b, " WHERE ",
                      ExprSql(p.predicate, namer));
      }
      case PlanKind::kUnionAll: {
        std::string a = NewName("s");
        std::string b = NewName("s");
        return StrCat("SELECT * FROM (", Tr(p.left), ") AS ", a,
                      " UNION ALL SELECT * FROM (", Tr(p.right), ") AS ", b);
      }
      case PlanKind::kExceptAll:
        return TrExceptAll(p);
      case PlanKind::kAntiJoin:
        return TrAntiJoin(p);
      case PlanKind::kAggregate:
        return TrAggregate(p);
      case PlanKind::kDistinct: {
        std::string a = NewName("s");
        return StrCat("SELECT DISTINCT * FROM (", Tr(p.left), ") AS ", a);
      }
      case PlanKind::kSort:
        // A multiset comparison ignores order, so ORDER BY would only
        // constrain the oracle's output order for nothing.
        return Tr(p.left);
      case PlanKind::kCoalesce:
        return TrCoalesce(p);
      case PlanKind::kSplit:
        return TrSplit(p);
      case PlanKind::kTimeslice:
        return TrTimeslice(p);
      case PlanKind::kSplitAggregate:
        throw TranspileError(
            "kSplitAggregate must be lowered before transpiling "
            "(use TranspilePlanToSql)");
    }
    throw TranspileError(StrCat("unknown plan kind: ", PlanKindName(p.kind)));
  }

  std::string TrConstant(const Plan& p) {
    size_t k = p.schema.size();
    if (k == 0) {
      throw TranspileError("cannot transpile a zero-arity constant");
    }
    const Relation& rel = *p.constant;
    if (rel.empty()) {
      std::string items;
      for (size_t i = 0; i < k; ++i) {
        if (i > 0) items += ", ";
        items += StrCat("NULL AS c", i);
      }
      return StrCat("SELECT ", items, " WHERE 1 = 0");
    }
    std::string out;
    for (size_t r = 0; r < rel.size(); ++r) {
      if (r > 0) out += " UNION ALL ";
      out += "SELECT ";
      for (size_t i = 0; i < k; ++i) {
        if (i > 0) out += ", ";
        out += LiteralSql(rel.rows()[r][i]);
        if (r == 0) out += StrCat(" AS c", i);
      }
    }
    return out;
  }

  /// Bag difference: each right row cancels one left duplicate.  Left
  /// duplicates are numbered within their value class; a copy survives
  /// iff its number exceeds the count of matching right rows (IS for
  /// the engine's NULL-safe row equality).
  std::string TrExceptAll(const Plan& p) {
    int k = static_cast<int>(p.schema.size());
    if (k == 0) throw TranspileError("zero-arity difference");
    std::string a = NewName("s");
    std::string cols = ColList(Iota(static_cast<size_t>(k)));
    std::string numbered =
        StrCat("SELECT *, ROW_NUMBER() OVER (PARTITION BY ", cols,
               ") AS rn FROM (", Tr(p.left), ") AS ", a);
    std::string match;
    for (int i = 0; i < k; ++i) {
      if (i > 0) match += " AND ";
      match += StrCat("r.c", i, " IS l.c", i);
    }
    return StrCat("SELECT ", cols, " FROM (", numbered,
                  ") AS l WHERE l.rn > (SELECT COUNT(*) FROM (", Tr(p.right),
                  ") AS r WHERE ", match, ")");
  }

  /// Exact-row anti join under the engine's NULL-safe row equality.
  std::string TrAntiJoin(const Plan& p) {
    int k = static_cast<int>(p.schema.size());
    if (k == 0) throw TranspileError("zero-arity anti join");
    std::string match;
    for (int i = 0; i < k; ++i) {
      if (i > 0) match += " AND ";
      match += StrCat("r.c", i, " IS l.c", i);
    }
    return StrCat("SELECT * FROM (", Tr(p.left),
                  ") AS l WHERE NOT EXISTS (SELECT 1 FROM (", Tr(p.right),
                  ") AS r WHERE ", match, ")");
  }

  std::string TrAggregate(const Plan& p) {
    std::string a = NewName("s");
    ColNamer namer = Namer(a);
    std::string items;
    size_t n_groups = p.exprs.size();
    for (size_t g = 0; g < n_groups; ++g) {
      if (g > 0) items += ", ";
      items += StrCat(ExprSql(p.exprs[g], namer), " AS c", g);
    }
    for (size_t i = 0; i < p.aggs.size(); ++i) {
      if (!items.empty()) items += ", ";
      items += StrCat(AggSql(p.aggs[i], namer), " AS c", n_groups + i);
    }
    std::string out =
        StrCat("SELECT ", items, " FROM (", Tr(p.left), ") AS ", a);
    if (n_groups > 0) {
      out += " GROUP BY ";
      for (size_t g = 0; g < n_groups; ++g) {
        if (g > 0) out += ", ";
        out += std::to_string(g + 1);
      }
    }
    return out;
  }

  std::string TrTimeslice(const Plan& p) {
    auto [bcol, ecol] = ResolveSliceColumns(p);
    std::string a = NewName("s");
    std::string items;
    int out_col = 0;
    int child_arity = static_cast<int>(p.left->schema.size());
    for (int c = 0; c < child_arity; ++c) {
      if (c == bcol || c == ecol) continue;
      if (out_col > 0) items += ", ";
      items += StrCat(a, ".c", c, " AS c", out_col++);
    }
    return StrCat("SELECT ", items, " FROM (", Tr(p.left), ") AS ", a,
                  " WHERE ", a, ".c", bcol, " <= ", p.slice_time, " AND ",
                  p.slice_time, " < ", a, ".c", ecol);
  }

  /// Multiset coalescing (Def 8.2) as +1/-1 endpoint events, grouped
  /// into net-delta changepoints, turned into maximal segments with
  /// LEAD, and re-duplicated by joining each segment back against the
  /// source rows covering it (one output copy per covering row — the
  /// segment's open-interval count, by construction).
  std::string TrCoalesce(const Plan& p) {
    int k = static_cast<int>(p.schema.size());
    int d = k - 2;
    std::string child = Tr(p.left);
    std::string base = NewName("co");
    std::string src = base + "_src";
    std::string ev = base + "_ev";
    std::string chg = base + "_chg";
    std::string seg = base + "_seg";
    std::string a = NewName("s");
    PushStage(src, StrCat("SELECT * FROM (", child, ") AS ", a, " WHERE ", a,
                          ".c", d, " < ", a, ".c", d + 1));
    std::string data = ColList(Iota(static_cast<size_t>(d)));
    std::string data_pfx = d > 0 ? data + ", " : "";
    PushStage(ev, StrCat("SELECT ", data_pfx, "c", d,
                         " AS t, 1 AS delta FROM ", src, " UNION ALL SELECT ",
                         data_pfx, "c", d + 1, ", -1 FROM ", src));
    PushStage(chg, StrCat("SELECT ", data_pfx, "t, SUM(delta) AS net FROM ",
                          ev, " GROUP BY ", data_pfx,
                          "t HAVING SUM(delta) <> 0"));
    std::string part = d > 0 ? StrCat("PARTITION BY ", data, " ") : "";
    PushStage(seg, StrCat("SELECT ", data_pfx, "t AS fb, LEAD(t) OVER (",
                          part, "ORDER BY t) AS fe FROM ", chg));
    std::string items;
    for (int i = 0; i < d; ++i) items += StrCat("g.c", i, " AS c", i, ", ");
    items += StrCat("g.fb AS c", d, ", g.fe AS c", d + 1);
    std::string cond = StrCat("r.c", d, " <= g.fb AND g.fb < r.c", d + 1);
    for (int i = 0; i < d; ++i) cond += StrCat(" AND r.c", i, " IS g.c", i);
    return StrCat("SELECT ", items, " FROM ", seg, " AS g JOIN ", src,
                  " AS r ON ", cond);
  }

  /// N_G (Def 8.3): valid left rows are cut at every distinct endpoint
  /// of valid G-group-mates (from both inputs) strictly inside their
  /// interval; consecutive cut points delimit the output fragments.
  std::string TrSplit(const Plan& p) {
    int k = static_cast<int>(p.schema.size());
    int d = k - 2;
    std::string base = NewName("sp");
    std::string lsrc = base + "_l";
    std::string rsrc = base + "_r";
    std::string pts = base + "_pts";
    std::string lrows = base + "_rows";
    std::string cuts = base + "_cuts";
    std::string frags = base + "_frag";
    {
      std::string child = Tr(p.left);
      std::string a = NewName("s");
      PushStage(lsrc, StrCat("SELECT * FROM (", child, ") AS ", a, " WHERE ",
                             a, ".c", d, " < ", a, ".c", d + 1));
    }
    {
      std::string child = Tr(p.right);
      std::string a = NewName("s");
      PushStage(rsrc, StrCat("SELECT * FROM (", child, ") AS ", a, " WHERE ",
                             a, ".c", d, " < ", a, ".c", d + 1));
    }
    size_t n_groups = p.split_group.size();
    auto group_items = [&](int endpoint_col, bool with_alias) {
      std::string out;
      for (size_t g = 0; g < n_groups; ++g) {
        out += StrCat("c", p.split_group[g]);
        if (with_alias) out += StrCat(" AS g", g);
        out += ", ";
      }
      out += StrCat("c", endpoint_col);
      if (with_alias) out += " AS t";
      return out;
    };
    PushStage(pts,
              StrCat("SELECT DISTINCT * FROM (SELECT ", group_items(d, true),
                     " FROM ", lsrc, " UNION ALL SELECT ",
                     group_items(d + 1, false), " FROM ", lsrc,
                     " UNION ALL SELECT ", group_items(d, false), " FROM ",
                     rsrc, " UNION ALL SELECT ", group_items(d + 1, false),
                     " FROM ", rsrc, ") AS u"));
    PushStage(lrows,
              StrCat("SELECT *, ROW_NUMBER() OVER () AS rid FROM ", lsrc));
    std::string match = StrCat("p.t > l.c", d, " AND p.t < l.c", d + 1);
    for (size_t g = 0; g < n_groups; ++g) {
      match += StrCat(" AND p.g", g, " IS l.c", p.split_group[g]);
    }
    PushStage(cuts, StrCat("SELECT rid, c", d, " AS t FROM ", lrows,
                           " UNION ALL SELECT l.rid, p.t FROM ", lrows,
                           " AS l JOIN ", pts, " AS p ON ", match));
    PushStage(frags,
              StrCat("SELECT rid, t AS fb, LEAD(t) OVER (PARTITION BY rid",
                     " ORDER BY t) AS fe FROM ", cuts));
    std::string items;
    for (int i = 0; i < d; ++i) items += StrCat("l.c", i, " AS c", i, ", ");
    items += StrCat("f.fb AS c", d, ", COALESCE(f.fe, l.c", d + 1, ") AS c",
                    d + 1);
    return StrCat("SELECT ", items, " FROM ", lrows, " AS l JOIN ", frags,
                  " AS f ON f.rid = l.rid");
  }

  std::unordered_map<const Plan*, int> refs_;
  std::unordered_map<const Plan*, std::string> memo_;
  std::vector<std::string> stages_;
  int next_ = 0;
};

}  // namespace

PlanPtr LowerSplitAggregates(const PlanPtr& plan) {
  std::unordered_map<const Plan*, PlanPtr> memo;
  return LowerNode(plan, memo);
}

SqlScript TranspilePlan(const PlanPtr& plan) {
  if (plan == nullptr) throw TranspileError("null plan");
  Transpiler t;
  return t.Run(LowerSplitAggregates(plan));
}

std::string TranspilePlanToSql(const PlanPtr& plan) {
  SqlScript script = TranspilePlan(plan);
  std::string out;
  for (const std::string& stage : script.setup) out += stage + "\n";
  return out + script.query;
}

}  // namespace periodk
