#include "sql/binder.h"

#include <functional>
#include <set>

#include "common/str_util.h"

namespace periodk {
namespace sql {

namespace {

struct BindFailure {
  explicit BindFailure(std::string m) : message(std::move(m)) {}
  std::string message;
};

[[noreturn]] void Fail(const std::string& message) {
  throw BindFailure(message);
}

AggFunc AggFuncFromName(const std::string& name, bool star_arg) {
  if (name == "count") return star_arg ? AggFunc::kCountStar : AggFunc::kCount;
  if (name == "sum") return AggFunc::kSum;
  if (name == "avg") return AggFunc::kAvg;
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  Fail(StrCat("unknown aggregate function: ", name));
}

void SplitConjuncts(const SqlExprPtr& e, std::vector<SqlExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExprKind::kBinary && e->op == "and") {
    SplitConjuncts(e->args[0], out);
    SplitConjuncts(e->args[1], out);
    return;
  }
  out->push_back(e);
}

void CollectColumnRefs(const SqlExprPtr& e,
                       std::vector<const SqlExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExprKind::kColumnRef) out->push_back(e.get());
  for (const SqlExprPtr& a : e->args) CollectColumnRefs(a, out);
}

bool ResolvableIn(const SqlExprPtr& e, const Schema& scope) {
  std::vector<const SqlExpr*> refs;
  CollectColumnRefs(e, &refs);
  for (const SqlExpr* ref : refs) {
    if (scope.Find(ref->qualifier, ref->name) < 0) return false;
  }
  return true;
}

void CollectAggregateCalls(const SqlExprPtr& e,
                           std::vector<SqlExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == SqlExprKind::kFuncCall && IsAggregateName(e->name)) {
    out->push_back(e);
    return;  // no nested aggregates
  }
  for (const SqlExprPtr& a : e->args) CollectAggregateCalls(a, out);
}

// Binds a scalar SQL expression against a scope schema.  Aggregate
// calls are rejected (they are handled by the aggregation path).
ExprPtr BindScalar(const SqlExprPtr& e, const Schema& scope) {
  switch (e->kind) {
    case SqlExprKind::kColumnRef: {
      int idx = scope.Find(e->qualifier, e->name);
      if (idx == -1) Fail(StrCat("unknown column: ", e->ToString()));
      if (idx == -2) Fail(StrCat("ambiguous column: ", e->ToString()));
      return Col(idx, e->ToString());
    }
    case SqlExprKind::kLiteral:
      return Lit(e->literal);
    case SqlExprKind::kBinary: {
      ExprPtr l = BindScalar(e->args[0], scope);
      ExprPtr r = BindScalar(e->args[1], scope);
      if (e->op == "and") return And(std::move(l), std::move(r));
      if (e->op == "or") return Or(std::move(l), std::move(r));
      if (e->op == "=") return Eq(std::move(l), std::move(r));
      if (e->op == "<>") return Ne(std::move(l), std::move(r));
      if (e->op == "<") return Lt(std::move(l), std::move(r));
      if (e->op == "<=") return Le(std::move(l), std::move(r));
      if (e->op == ">") return Gt(std::move(l), std::move(r));
      if (e->op == ">=") return Ge(std::move(l), std::move(r));
      if (e->op == "+") return Add(std::move(l), std::move(r));
      if (e->op == "-") return Sub(std::move(l), std::move(r));
      if (e->op == "*") return Mul(std::move(l), std::move(r));
      if (e->op == "/") return Div(std::move(l), std::move(r));
      if (e->op == "%") return Arith(ArithOp::kMod, std::move(l), std::move(r));
      Fail(StrCat("unknown binary operator: ", e->op));
    }
    case SqlExprKind::kUnary: {
      ExprPtr c = BindScalar(e->args[0], scope);
      if (e->op == "not") return Not(std::move(c));
      if (e->op == "-") return Neg(std::move(c));
      Fail(StrCat("unknown unary operator: ", e->op));
    }
    case SqlExprKind::kFuncCall: {
      if (IsAggregateName(e->name)) {
        Fail(StrCat("aggregate not allowed here: ", e->ToString()));
      }
      std::vector<ExprPtr> args;
      for (const SqlExprPtr& a : e->args) {
        args.push_back(BindScalar(a, scope));
      }
      if (e->name == "least") return Func(ScalarFunc::kLeast, std::move(args));
      if (e->name == "greatest") {
        return Func(ScalarFunc::kGreatest, std::move(args));
      }
      if (e->name == "abs") return Func(ScalarFunc::kAbs, std::move(args));
      if (e->name == "year") return Func(ScalarFunc::kYear, std::move(args));
      if (e->name == "ifnull" || e->name == "coalesce") {
        return Func(ScalarFunc::kIfNull, std::move(args));
      }
      Fail(StrCat("unknown function: ", e->name));
    }
    case SqlExprKind::kStar:
      Fail("'*' is only valid inside count(*)");
    case SqlExprKind::kCase: {
      size_t pairs = (e->args.size() - (e->has_else ? 1 : 0)) / 2;
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      for (size_t i = 0; i < pairs; ++i) {
        branches.emplace_back(BindScalar(e->args[2 * i], scope),
                              BindScalar(e->args[2 * i + 1], scope));
      }
      ExprPtr else_expr =
          e->has_else ? BindScalar(e->args.back(), scope) : nullptr;
      return CaseWhen(std::move(branches), std::move(else_expr));
    }
    case SqlExprKind::kIn: {
      ExprPtr needle = BindScalar(e->args[0], scope);
      std::vector<ExprPtr> candidates;
      for (size_t i = 1; i < e->args.size(); ++i) {
        candidates.push_back(BindScalar(e->args[i], scope));
      }
      return InList(std::move(needle), std::move(candidates), e->negated);
    }
    case SqlExprKind::kBetween:
      return Between(BindScalar(e->args[0], scope),
                     BindScalar(e->args[1], scope),
                     BindScalar(e->args[2], scope), e->negated);
    case SqlExprKind::kIsNull:
      return IsNull(BindScalar(e->args[0], scope), e->negated);
    case SqlExprKind::kLike:
      return Like(BindScalar(e->args[0], scope),
                  BindScalar(e->args[1], scope), e->negated);
  }
  Fail("unknown expression kind");
}

std::string DeriveName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == SqlExprKind::kColumnRef) return item.expr->name;
  if (item.expr->kind == SqlExprKind::kFuncCall) return item.expr->name;
  return StrCat("col_", index);
}

// Recursive binder for the full statement tree.
class BinderImpl {
 public:
  BinderImpl(const Catalog* catalog,
             const std::map<std::string, PeriodTableInfo>* period_tables,
             bool snapshot)
      : catalog_(catalog),
        period_tables_(period_tables),
        snapshot_(snapshot) {}

  PlanPtr BindQuery(const SqlQuery& query) {
    switch (query.kind) {
      case SqlQuery::Kind::kSelect:
        return BindSelect(*query.select);
      case SqlQuery::Kind::kUnionAll: {
        PlanPtr l = BindQuery(*query.left);
        PlanPtr r = BindQuery(*query.right);
        if (l->schema.size() != r->schema.size()) {
          Fail("UNION ALL inputs must have the same number of columns");
        }
        return MakeUnionAll(std::move(l), std::move(r));
      }
      case SqlQuery::Kind::kExceptAll: {
        PlanPtr l = BindQuery(*query.left);
        PlanPtr r = BindQuery(*query.right);
        if (l->schema.size() != r->schema.size()) {
          Fail("EXCEPT ALL inputs must have the same number of columns");
        }
        return MakeExceptAll(std::move(l), std::move(r));
      }
    }
    Fail("unknown query kind");
  }

  std::map<std::string, PlanPtr> TakeEncodedTables() {
    return std::move(encoded_tables_);
  }

 private:
  PlanPtr BindTableRef(const TableRef& ref) {
    if (ref.kind == TableRef::Kind::kSubquery) {
      PlanPtr sub = BindQuery(*ref.subquery);
      // Re-qualify the subquery's output columns with its alias.
      auto aliased = std::make_shared<Plan>(*sub);
      aliased->schema = sub->schema.WithQualifier(ref.alias);
      return aliased;
    }
    if (!catalog_->Has(ref.table)) {
      Fail(StrCat("unknown table: ", ref.table));
    }
    const Schema& stored = catalog_->Get(ref.table).schema();
    if (!snapshot_) {
      return MakeScan(ref.table, stored.WithQualifier(ref.alias));
    }
    // Snapshot mode: identify the period columns.
    std::string begin_name = ref.period_begin;
    std::string end_name = ref.period_end;
    if (begin_name.empty()) {
      auto it = period_tables_->find(ref.table);
      if (it == period_tables_->end()) {
        Fail(StrCat("table ", ref.table,
                    " is not a period table; declare PERIOD(begin, end) or "
                    "register it as a period table"));
      }
      begin_name = it->second.begin_column;
      end_name = it->second.end_column;
    }
    int begin_idx = stored.Find("", begin_name);
    int end_idx = stored.Find("", end_name);
    if (begin_idx < 0 || end_idx < 0) {
      Fail(StrCat("period columns (", begin_name, ", ", end_name,
                  ") not found in table ", ref.table));
    }
    // Snapshot schema: every non-period column, qualified by the alias.
    std::vector<Column> snapshot_columns;
    std::vector<int> keep;
    for (size_t i = 0; i < stored.size(); ++i) {
      if (static_cast<int>(i) == begin_idx || static_cast<int>(i) == end_idx) {
        continue;
      }
      snapshot_columns.emplace_back(ref.alias, stored.at(i).name);
      keep.push_back(static_cast<int>(i));
    }
    // Encoded plan: the stored table with period columns moved last.
    PlanPtr encoded;
    if (begin_idx == static_cast<int>(stored.size()) - 2 &&
        end_idx == static_cast<int>(stored.size()) - 1) {
      encoded = MakeScan(ref.table, stored);
    } else {
      std::vector<int> order = keep;
      order.push_back(begin_idx);
      order.push_back(end_idx);
      encoded = MakeProjectColumns(MakeScan(ref.table, stored), order);
    }
    encoded_tables_[ref.table] = encoded;
    return MakeScan(ref.table, Schema(std::move(snapshot_columns)));
  }

  PlanPtr BindFrom(const SelectQuery& select) {
    std::vector<PlanPtr> plans;
    for (const TableRef& ref : select.from) {
      plans.push_back(BindTableRef(ref));
    }
    std::vector<SqlExprPtr> conjuncts;
    for (const SqlExprPtr& on : select.join_conditions) {
      SplitConjuncts(on, &conjuncts);
    }
    SplitConjuncts(select.where, &conjuncts);
    // Reject aggregates in WHERE/ON.
    for (const SqlExprPtr& c : conjuncts) {
      if (ContainsAggregate(c)) {
        Fail("aggregates are not allowed in WHERE or ON clauses");
      }
    }
    std::vector<bool> used(conjuncts.size(), false);
    // Push single-table conjuncts below the joins.
    for (PlanPtr& plan : plans) {
      std::vector<ExprPtr> local;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (used[c] || !ResolvableIn(conjuncts[c], plan->schema)) continue;
        local.push_back(BindScalar(conjuncts[c], plan->schema));
        used[c] = true;
      }
      if (!local.empty()) {
        plan = MakeSelect(std::move(plan), AndAll(std::move(local)));
      }
    }
    // Left-deep join tree; attach each conjunct at the lowest join where
    // it becomes resolvable (equi-keys then drive hash joins).
    PlanPtr acc = plans[0];
    for (size_t i = 1; i < plans.size(); ++i) {
      Schema combined = Schema::Concat(acc->schema, plans[i]->schema);
      std::vector<ExprPtr> join_preds;
      for (size_t c = 0; c < conjuncts.size(); ++c) {
        if (used[c] || !ResolvableIn(conjuncts[c], combined)) continue;
        join_preds.push_back(BindScalar(conjuncts[c], combined));
        used[c] = true;
      }
      acc = MakeJoin(std::move(acc), plans[i], AndAll(std::move(join_preds)));
    }
    // Anything left (should not happen) goes into a final selection.
    std::vector<ExprPtr> rest;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (used[c]) continue;
      rest.push_back(BindScalar(conjuncts[c], acc->schema));
    }
    if (!rest.empty()) acc = MakeSelect(std::move(acc), AndAll(std::move(rest)));
    return acc;
  }

  PlanPtr BindSelect(const SelectQuery& select) {
    PlanPtr from = BindFrom(select);
    bool has_aggregate = !select.group_by.empty() ||
                         ContainsAggregate(select.having);
    for (const SelectItem& item : select.items) {
      if (!item.star && ContainsAggregate(item.expr)) has_aggregate = true;
    }

    PlanPtr result =
        has_aggregate ? BindAggregateSelect(select, std::move(from))
                      : BindPlainSelect(select, std::move(from));
    if (select.distinct) result = MakeDistinct(std::move(result));
    return result;
  }

  PlanPtr BindPlainSelect(const SelectQuery& select, PlanPtr from) {
    const Schema& scope = from->schema;
    std::vector<ExprPtr> exprs;
    std::vector<Column> names;
    for (size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      if (item.star) {
        for (size_t c = 0; c < scope.size(); ++c) {
          if (!item.star_qualifier.empty() &&
              !EqualsIgnoreCase(scope.at(c).table, item.star_qualifier)) {
            continue;
          }
          exprs.push_back(Col(static_cast<int>(c), scope.at(c).ToString()));
          names.emplace_back(scope.at(c).name);
        }
        continue;
      }
      exprs.push_back(BindScalar(item.expr, scope));
      names.emplace_back(DeriveName(item, i));
    }
    if (exprs.empty()) Fail("empty select list");
    return MakeProject(std::move(from), std::move(exprs), std::move(names));
  }

  PlanPtr BindAggregateSelect(const SelectQuery& select, PlanPtr from) {
    const Schema scope = from->schema;
    // Bind GROUP BY expressions.
    std::vector<ExprPtr> group_exprs;
    std::vector<Column> group_names;
    for (size_t g = 0; g < select.group_by.size(); ++g) {
      group_exprs.push_back(BindScalar(select.group_by[g], scope));
      if (select.group_by[g]->kind == SqlExprKind::kColumnRef) {
        group_names.emplace_back(select.group_by[g]->qualifier,
                                 select.group_by[g]->name);
      } else {
        group_names.emplace_back(StrCat("group_", g));
      }
    }
    // Collect distinct aggregate calls from SELECT and HAVING.
    std::vector<SqlExprPtr> calls;
    for (const SelectItem& item : select.items) {
      if (item.star) Fail("'*' cannot be mixed with aggregation");
      CollectAggregateCalls(item.expr, &calls);
    }
    CollectAggregateCalls(select.having, &calls);
    std::vector<std::string> call_keys;
    std::vector<AggExpr> aggs;
    auto agg_index = [&](const SqlExprPtr& call) -> int {
      std::string key = call->ToString();
      for (size_t i = 0; i < call_keys.size(); ++i) {
        if (call_keys[i] == key) return static_cast<int>(i);
      }
      return -1;
    };
    for (const SqlExprPtr& call : calls) {
      if (agg_index(call) >= 0) continue;
      if (call->args.size() != 1) {
        Fail(StrCat("aggregate takes exactly one argument: ",
                    call->ToString()));
      }
      bool star = call->args[0]->kind == SqlExprKind::kStar;
      AggExpr agg;
      agg.func = AggFuncFromName(call->name, star);
      if (star && call->name != "count") {
        Fail(StrCat("'*' is only valid for count: ", call->ToString()));
      }
      agg.arg = star ? nullptr : BindScalar(call->args[0], scope);
      agg.name = StrCat("agg_", call_keys.size());
      call_keys.push_back(call->ToString());
      aggs.push_back(std::move(agg));
    }
    PlanPtr agg_plan =
        MakeAggregate(std::move(from), group_exprs, group_names, aggs);
    size_t n_groups = group_exprs.size();

    // Translate post-aggregation expressions: aggregate calls resolve to
    // aggregate output columns; any other subexpression must match a
    // GROUP BY expression (checked structurally) or be built from such.
    std::function<ExprPtr(const SqlExprPtr&)> translate =
        [&](const SqlExprPtr& e) -> ExprPtr {
      if (e->kind == SqlExprKind::kFuncCall && IsAggregateName(e->name)) {
        int idx = agg_index(e);
        if (idx < 0) Fail("internal: aggregate call not collected");
        return Col(static_cast<int>(n_groups) + idx, e->ToString());
      }
      if (!ContainsAggregate(e) && ResolvableIn(e, scope)) {
        ExprPtr bound = BindScalar(e, scope);
        for (size_t g = 0; g < group_exprs.size(); ++g) {
          if (ExprStructurallyEqual(bound, group_exprs[g])) {
            return Col(static_cast<int>(g), e->ToString());
          }
        }
        if (e->kind == SqlExprKind::kColumnRef) {
          Fail(StrCat("column ", e->ToString(),
                      " must appear in GROUP BY or inside an aggregate"));
        }
      }
      // Rebuild from translated children.
      if (e->args.empty()) {
        if (e->kind == SqlExprKind::kLiteral) return Lit(e->literal);
        Fail(StrCat("expression ", e->ToString(),
                    " must appear in GROUP BY or inside an aggregate"));
      }
      auto copy = std::make_shared<SqlExpr>(*e);
      // Translate by binding against a pseudo-scope: replace children
      // first, which requires rebuilding via BindScalar-like dispatch.
      // Reuse BindScalar by constructing a wrapper scope is not possible
      // for mixed expressions, so rebuild manually per kind.
      std::vector<ExprPtr> kids;
      for (const SqlExprPtr& a : e->args) kids.push_back(translate(a));
      switch (e->kind) {
        case SqlExprKind::kBinary: {
          const std::string& op = e->op;
          if (op == "and") return And(kids[0], kids[1]);
          if (op == "or") return Or(kids[0], kids[1]);
          if (op == "=") return Eq(kids[0], kids[1]);
          if (op == "<>") return Ne(kids[0], kids[1]);
          if (op == "<") return Lt(kids[0], kids[1]);
          if (op == "<=") return Le(kids[0], kids[1]);
          if (op == ">") return Gt(kids[0], kids[1]);
          if (op == ">=") return Ge(kids[0], kids[1]);
          if (op == "+") return Add(kids[0], kids[1]);
          if (op == "-") return Sub(kids[0], kids[1]);
          if (op == "*") return Mul(kids[0], kids[1]);
          if (op == "/") return Div(kids[0], kids[1]);
          if (op == "%") return Arith(ArithOp::kMod, kids[0], kids[1]);
          Fail(StrCat("unknown operator: ", op));
        }
        case SqlExprKind::kUnary:
          return e->op == "not" ? Not(kids[0]) : Neg(kids[0]);
        case SqlExprKind::kFuncCall: {
          if (e->name == "least") return Func(ScalarFunc::kLeast, kids);
          if (e->name == "greatest") return Func(ScalarFunc::kGreatest, kids);
          if (e->name == "abs") return Func(ScalarFunc::kAbs, kids);
          if (e->name == "year") return Func(ScalarFunc::kYear, kids);
          if (e->name == "ifnull" || e->name == "coalesce") {
            return Func(ScalarFunc::kIfNull, kids);
          }
          Fail(StrCat("unknown function: ", e->name));
        }
        case SqlExprKind::kCase: {
          size_t pairs = (e->args.size() - (e->has_else ? 1 : 0)) / 2;
          std::vector<std::pair<ExprPtr, ExprPtr>> branches;
          for (size_t i = 0; i < pairs; ++i) {
            branches.emplace_back(kids[2 * i], kids[2 * i + 1]);
          }
          return CaseWhen(std::move(branches),
                          e->has_else ? kids.back() : nullptr);
        }
        case SqlExprKind::kIn: {
          std::vector<ExprPtr> candidates(kids.begin() + 1, kids.end());
          return InList(kids[0], std::move(candidates), e->negated);
        }
        case SqlExprKind::kBetween:
          return Between(kids[0], kids[1], kids[2], e->negated);
        case SqlExprKind::kIsNull:
          return IsNull(kids[0], e->negated);
        case SqlExprKind::kLike:
          return Like(kids[0], kids[1], e->negated);
        default:
          Fail(StrCat("unsupported expression after aggregation: ",
                      e->ToString()));
      }
    };

    PlanPtr result = agg_plan;
    if (select.having != nullptr) {
      result = MakeSelect(std::move(result), translate(select.having));
    }
    std::vector<ExprPtr> exprs;
    std::vector<Column> names;
    for (size_t i = 0; i < select.items.size(); ++i) {
      exprs.push_back(translate(select.items[i].expr));
      names.emplace_back(DeriveName(select.items[i], i));
    }
    return MakeProject(std::move(result), std::move(exprs), std::move(names));
  }

  const Catalog* catalog_;
  const std::map<std::string, PeriodTableInfo>* period_tables_;
  bool snapshot_;
  std::map<std::string, PlanPtr> encoded_tables_;
};

}  // namespace

Result<BoundStatement> Binder::Bind(const Statement& statement) const {
  try {
    BinderImpl impl(catalog_, period_tables_, statement.snapshot);
    BoundStatement bound;
    bound.snapshot = statement.snapshot;
    bound.as_of = statement.as_of;
    bound.plan = impl.BindQuery(*statement.query);
    bound.encoded_tables = impl.TakeEncodedTables();
    bound.order_by = statement.order_by;
    return bound;
  } catch (const BindFailure& failure) {
    return Status::BindError(failure.message);
  } catch (const EngineError& error) {
    return Status::BindError(error.what());
  }
}

Result<std::vector<SortKey>> BindOrderBy(const std::vector<OrderItem>& items,
                                         const Schema& schema) {
  std::vector<SortKey> keys;
  for (const OrderItem& item : items) {
    SortKey key;
    key.ascending = item.ascending;
    if (item.expr->kind == SqlExprKind::kLiteral &&
        item.expr->literal.type() == ValueType::kInt) {
      int64_t ordinal = item.expr->literal.AsInt();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(schema.size())) {
        return Status::BindError(
            StrCat("ORDER BY ordinal out of range: ", ordinal));
      }
      key.column = static_cast<int>(ordinal - 1);
    } else if (item.expr->kind == SqlExprKind::kColumnRef) {
      int idx = schema.Find(item.expr->qualifier, item.expr->name);
      if (idx == -1) {
        return Status::BindError(
            StrCat("unknown ORDER BY column: ", item.expr->ToString()));
      }
      if (idx == -2) {
        return Status::BindError(
            StrCat("ambiguous ORDER BY column: ", item.expr->ToString()));
      }
      key.column = idx;
    } else {
      return Status::BindError(
          "ORDER BY supports column references and ordinals only");
    }
    keys.push_back(key);
  }
  return keys;
}

}  // namespace sql
}  // namespace periodk
