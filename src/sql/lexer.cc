#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace periodk {
namespace sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      token.type = TokenType::kIdent;
      token.text = sql.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        token.type = TokenType::kFloat;
        token.float_value = std::stod(text);
      } else {
        token.type = TokenType::kInt;
        token.int_value = std::stoll(text);
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            contents += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrCat("unterminated string literal at offset ", token.offset));
      }
      token.type = TokenType::kString;
      token.text = std::move(contents);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-character operators first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (c == op[0] && i + 1 < n && sql[i + 1] == op[1]) {
        token.type = TokenType::kSymbol;
        token.text = op;
        tokens.push_back(std::move(token));
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "(),.*=<>+-/%";
    if (kSingles.find(c) != std::string::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::ParseError(
        StrCat("unexpected character '", std::string(1, c), "' at offset ",
               i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace periodk
