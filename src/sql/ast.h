// Abstract syntax trees for the middleware's SQL dialect (paper Sec. 9):
// SELECT/FROM/WHERE/GROUP BY/HAVING with joins, UNION ALL / EXCEPT ALL,
// subqueries in FROM, and the SEQ VT (...) statement modifier that
// requests snapshot semantics.  Inside a SEQ VT block each period-table
// access may carry a PERIOD (begin_col, end_col) annotation naming the
// attributes that store the validity interval (tables registered with
// period metadata may omit it).
#ifndef PERIODK_SQL_AST_H_
#define PERIODK_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace periodk {
namespace sql {

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

enum class SqlExprKind {
  kColumnRef,  // qualifier.name or name
  kLiteral,
  kBinary,   // op in {or, and, =, <>, <, <=, >, >=, +, -, *, /, %}
  kUnary,    // op in {not, -}
  kFuncCall,  // aggregate or scalar function
  kStar,      // only as count(*) argument
  kCase,      // args: [when1, then1, ..., else?]; odd size => has else
  kIn,        // args: [needle, v1, ..., vn]
  kBetween,   // args: [expr, lo, hi]
  kIsNull,    // args: [expr]
  kLike,      // args: [expr, pattern]
};

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kLiteral;
  std::string qualifier;  // kColumnRef
  std::string name;       // kColumnRef / kFuncCall (lower-cased)
  Value literal;          // kLiteral
  std::string op;         // kBinary / kUnary (lower-cased)
  bool negated = false;   // kIn / kBetween / kIsNull / kLike
  bool has_else = false;  // kCase
  std::vector<SqlExprPtr> args;

  /// Round-trippable-ish rendering for diagnostics.
  std::string ToString() const;
};

SqlExprPtr MakeColumnRef(std::string qualifier, std::string name);
SqlExprPtr MakeSqlLiteral(Value v);
SqlExprPtr MakeBinary(std::string op, SqlExprPtr l, SqlExprPtr r);
SqlExprPtr MakeUnary(std::string op, SqlExprPtr e);
SqlExprPtr MakeFuncCall(std::string name, std::vector<SqlExprPtr> args);

struct SelectQuery;
struct SqlQuery;

/// One entry of the FROM clause.
struct TableRef {
  enum class Kind { kTable, kSubquery };
  Kind kind = Kind::kTable;
  std::string table;  // kTable
  std::shared_ptr<SqlQuery> subquery;
  std::string alias;  // defaults to table name
  // PERIOD (begin, end) annotation; empty = use catalog metadata.
  std::string period_begin;
  std::string period_end;
};

struct SelectItem {
  SqlExprPtr expr;     // null when star
  std::string alias;   // may be empty
  bool star = false;
  std::string star_qualifier;  // "t.*"; empty = plain "*"
};

struct OrderItem {
  SqlExprPtr expr;
  bool ascending = true;
};

struct SelectQuery {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  /// ON-clause conjuncts; merged with `where` during binding.
  std::vector<SqlExprPtr> join_conditions;
  SqlExprPtr where;  // may be null
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;  // may be null
};

/// Set-operation tree over SELECT blocks.
struct SqlQuery {
  enum class Kind { kSelect, kUnionAll, kExceptAll };
  Kind kind = Kind::kSelect;
  std::shared_ptr<SelectQuery> select;  // kSelect
  std::shared_ptr<SqlQuery> left;
  std::shared_ptr<SqlQuery> right;
};

struct Statement {
  /// True when the query is wrapped in SEQ VT ( ... ).
  bool snapshot = false;
  /// SEQ VT AS OF t ( ... ): evaluate under snapshot semantics, then
  /// timeslice at t (the tau_T operator); the result is an ordinary
  /// non-temporal relation.  Only meaningful with snapshot = true.
  std::optional<int64_t> as_of;
  std::shared_ptr<SqlQuery> query;
  /// Statement-level ORDER BY; for snapshot queries it is applied to the
  /// final encoded result (the paper's workaround for ORDER BY).
  std::vector<OrderItem> order_by;
};

/// True iff the expression contains an aggregate function call.
bool ContainsAggregate(const SqlExprPtr& expr);

/// True for count/sum/avg/min/max.
bool IsAggregateName(const std::string& lower_name);

}  // namespace sql
}  // namespace periodk

#endif  // PERIODK_SQL_AST_H_
