// Recursive-descent parser for the middleware dialect (see sql/ast.h).
#ifndef PERIODK_SQL_PARSER_H_
#define PERIODK_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace periodk {
namespace sql {

/// Parses one statement:
///   [SEQ VT (] query [)] [ORDER BY ...]
/// where query is a UNION ALL / EXCEPT ALL tree of SELECT blocks.
[[nodiscard]] Result<Statement> Parse(const std::string& sql);

}  // namespace sql
}  // namespace periodk

#endif  // PERIODK_SQL_PARSER_H_
