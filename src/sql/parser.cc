#include "sql/parser.h"

#include <set>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace periodk {
namespace sql {

namespace {

// Words that terminate an implicit alias position.
const std::set<std::string>& ReservedWords() {
  static const std::set<std::string> kReserved = {
      "select", "from",  "where",  "group",  "having", "order",  "by",
      "union",  "except", "all",   "join",   "inner",  "on",     "as",
      "and",    "or",     "not",   "in",     "between", "like",  "is",
      "null",   "case",   "when",  "then",   "else",   "end",    "distinct",
      "period", "seq",    "vt",    "asc",    "desc",   "true",   "false"};
  return kReserved;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    try {
      Statement stmt;
      if (MatchKeyword("seq")) {
        ExpectKeyword("vt");
        if (MatchKeyword("as")) {
          ExpectKeyword("of");
          bool negative = MatchSymbol("-");
          if (Peek().type != TokenType::kInt) {
            throw ParseFailure("AS OF expects an integer time point",
                               Peek().offset);
          }
          int64_t t = Advance().int_value;
          stmt.as_of = negative ? -t : t;
        }
        ExpectSymbol("(");
        stmt.snapshot = true;
        stmt.query = ParseQuery();
        ExpectSymbol(")");
      } else {
        stmt.query = ParseQuery();
      }
      if (MatchKeyword("order")) {
        ExpectKeyword("by");
        stmt.order_by = ParseOrderItems();
      }
      if (Peek().type != TokenType::kEnd) {
        throw ParseFailure(StrCat("unexpected trailing input: '",
                                  Peek().text, "'"),
                           Peek().offset);
      }
      return stmt;
    } catch (const ParseFailure& failure) {
      return Status::ParseError(
          StrCat(failure.message, " (at offset ", failure.offset, ")"));
    }
  }

 private:
  struct ParseFailure {
    ParseFailure(std::string m, size_t o) : message(std::move(m)), offset(o) {}
    std::string message;
    size_t offset;
  };

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& word, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdent && EqualsIgnoreCase(t.text, word);
  }

  bool MatchKeyword(const std::string& word) {
    if (!PeekKeyword(word)) return false;
    ++pos_;
    return true;
  }

  void ExpectKeyword(const std::string& word) {
    if (!MatchKeyword(word)) {
      throw ParseFailure(StrCat("expected '", word, "', found '",
                                Peek().text, "'"),
                         Peek().offset);
    }
  }

  bool PeekSymbol(const std::string& symbol, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == symbol;
  }

  bool MatchSymbol(const std::string& symbol) {
    if (!PeekSymbol(symbol)) return false;
    ++pos_;
    return true;
  }

  void ExpectSymbol(const std::string& symbol) {
    if (!MatchSymbol(symbol)) {
      throw ParseFailure(StrCat("expected '", symbol, "', found '",
                                Peek().text.empty() ? "<end>" : Peek().text,
                                "'"),
                         Peek().offset);
    }
  }

  std::string ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdent) {
      throw ParseFailure(StrCat("expected ", what, ", found '", Peek().text,
                                "'"),
                         Peek().offset);
    }
    return Advance().text;
  }

  // --- Query structure. ----------------------------------------------------

  std::shared_ptr<SqlQuery> ParseQuery() {
    auto query = std::make_shared<SqlQuery>();
    query->kind = SqlQuery::Kind::kSelect;
    query->select = ParseSelect();
    while (PeekKeyword("union") || PeekKeyword("except")) {
      bool is_union = MatchKeyword("union");
      if (!is_union) ExpectKeyword("except");
      ExpectKeyword("all");  // only ALL (bag) variants are supported
      auto parent = std::make_shared<SqlQuery>();
      parent->kind = is_union ? SqlQuery::Kind::kUnionAll
                              : SqlQuery::Kind::kExceptAll;
      parent->left = query;
      auto rhs = std::make_shared<SqlQuery>();
      rhs->kind = SqlQuery::Kind::kSelect;
      rhs->select = ParseSelect();
      parent->right = rhs;
      query = parent;
    }
    return query;
  }

  std::shared_ptr<SelectQuery> ParseSelect() {
    ExpectKeyword("select");
    auto select = std::make_shared<SelectQuery>();
    select->distinct = MatchKeyword("distinct");
    select->items.push_back(ParseSelectItem());
    while (MatchSymbol(",")) select->items.push_back(ParseSelectItem());
    ExpectKeyword("from");
    ParseFromList(select.get());
    if (MatchKeyword("where")) select->where = ParseExpr();
    if (MatchKeyword("group")) {
      ExpectKeyword("by");
      select->group_by.push_back(ParseExpr());
      while (MatchSymbol(",")) select->group_by.push_back(ParseExpr());
    }
    if (MatchKeyword("having")) select->having = ParseExpr();
    return select;
  }

  SelectItem ParseSelectItem() {
    SelectItem item;
    if (PeekSymbol("*")) {
      Advance();
      item.star = true;
      return item;
    }
    // "alias.*"
    if (Peek().type == TokenType::kIdent && PeekSymbol(".", 1) &&
        PeekSymbol("*", 2)) {
      item.star = true;
      item.star_qualifier = Advance().text;
      Advance();
      Advance();
      return item;
    }
    item.expr = ParseExpr();
    if (MatchKeyword("as")) {
      item.alias = ExpectIdent("alias");
    } else if (Peek().type == TokenType::kIdent &&
               ReservedWords().count(ToLower(Peek().text)) == 0) {
      item.alias = Advance().text;
    }
    return item;
  }

  void ParseFromList(SelectQuery* select) {
    select->from.push_back(ParseTableRef());
    while (true) {
      if (MatchSymbol(",")) {
        select->from.push_back(ParseTableRef());
        continue;
      }
      if (PeekKeyword("inner") || PeekKeyword("join")) {
        MatchKeyword("inner");
        ExpectKeyword("join");
        select->from.push_back(ParseTableRef());
        ExpectKeyword("on");
        select->join_conditions.push_back(ParseExpr());
        continue;
      }
      break;
    }
  }

  TableRef ParseTableRef() {
    TableRef ref;
    if (MatchSymbol("(")) {
      ref.kind = TableRef::Kind::kSubquery;
      ref.subquery = ParseQuery();
      ExpectSymbol(")");
      MatchKeyword("as");
      ref.alias = ExpectIdent("subquery alias");
      return ref;
    }
    ref.kind = TableRef::Kind::kTable;
    ref.table = ExpectIdent("table name");
    ref.alias = ref.table;
    if (MatchKeyword("period")) {
      ExpectSymbol("(");
      ref.period_begin = ExpectIdent("period begin column");
      ExpectSymbol(",");
      ref.period_end = ExpectIdent("period end column");
      ExpectSymbol(")");
    }
    if (MatchKeyword("as")) {
      ref.alias = ExpectIdent("alias");
    } else if (Peek().type == TokenType::kIdent &&
               ReservedWords().count(ToLower(Peek().text)) == 0) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  std::vector<OrderItem> ParseOrderItems() {
    std::vector<OrderItem> items;
    do {
      OrderItem item;
      item.expr = ParseExpr();
      if (MatchKeyword("desc")) {
        item.ascending = false;
      } else {
        MatchKeyword("asc");
      }
      items.push_back(std::move(item));
    } while (MatchSymbol(","));
    return items;
  }

  // --- Expressions (precedence climbing). -----------------------------------

  SqlExprPtr ParseExpr() { return ParseOr(); }

  SqlExprPtr ParseOr() {
    SqlExprPtr e = ParseAnd();
    while (MatchKeyword("or")) e = MakeBinary("or", e, ParseAnd());
    return e;
  }

  SqlExprPtr ParseAnd() {
    SqlExprPtr e = ParseNot();
    while (MatchKeyword("and")) e = MakeBinary("and", e, ParseNot());
    return e;
  }

  SqlExprPtr ParseNot() {
    if (MatchKeyword("not")) return MakeUnary("not", ParseNot());
    return ParsePredicate();
  }

  SqlExprPtr ParsePredicate() {
    SqlExprPtr e = ParseAdditive();
    // Comparison operators.
    static const char* kCompare[] = {"=", "<>", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kCompare) {
      if (PeekSymbol(op)) {
        Advance();
        return MakeBinary(op == std::string("!=") ? "<>" : op, e,
                          ParseAdditive());
      }
    }
    bool negated = false;
    if (PeekKeyword("not") &&
        (PeekKeyword("between", 1) || PeekKeyword("in", 1) ||
         PeekKeyword("like", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("between")) {
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kBetween;
      node->negated = negated;
      node->args.push_back(e);
      node->args.push_back(ParseAdditive());
      ExpectKeyword("and");
      node->args.push_back(ParseAdditive());
      return node;
    }
    if (MatchKeyword("in")) {
      ExpectSymbol("(");
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kIn;
      node->negated = negated;
      node->args.push_back(e);
      node->args.push_back(ParseExpr());
      while (MatchSymbol(",")) node->args.push_back(ParseExpr());
      ExpectSymbol(")");
      return node;
    }
    if (MatchKeyword("like")) {
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kLike;
      node->negated = negated;
      node->args.push_back(e);
      node->args.push_back(ParseAdditive());
      return node;
    }
    if (MatchKeyword("is")) {
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExprKind::kIsNull;
      node->negated = MatchKeyword("not");
      ExpectKeyword("null");
      node->args.push_back(e);
      return node;
    }
    return e;
  }

  SqlExprPtr ParseAdditive() {
    SqlExprPtr e = ParseMultiplicative();
    while (PeekSymbol("+") || PeekSymbol("-")) {
      std::string op = Advance().text;
      e = MakeBinary(op, e, ParseMultiplicative());
    }
    return e;
  }

  SqlExprPtr ParseMultiplicative() {
    SqlExprPtr e = ParseUnary();
    while (PeekSymbol("*") || PeekSymbol("/") || PeekSymbol("%")) {
      std::string op = Advance().text;
      e = MakeBinary(op, e, ParseUnary());
    }
    return e;
  }

  SqlExprPtr ParseUnary() {
    if (MatchSymbol("-")) return MakeUnary("-", ParseUnary());
    return ParsePrimary();
  }

  SqlExprPtr ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return MakeSqlLiteral(Value::Int(t.int_value));
      case TokenType::kFloat:
        Advance();
        return MakeSqlLiteral(Value::Double(t.float_value));
      case TokenType::kString:
        Advance();
        return MakeSqlLiteral(Value::String(t.text));
      case TokenType::kSymbol:
        if (MatchSymbol("(")) {
          SqlExprPtr e = ParseExpr();
          ExpectSymbol(")");
          return e;
        }
        break;
      case TokenType::kIdent: {
        if (MatchKeyword("null")) return MakeSqlLiteral(Value::Null());
        if (MatchKeyword("true")) return MakeSqlLiteral(Value::Bool(true));
        if (MatchKeyword("false")) return MakeSqlLiteral(Value::Bool(false));
        if (MatchKeyword("case")) return ParseCase();
        // Function call: ident '('.
        if (PeekSymbol("(", 1)) {
          std::string name = Advance().text;
          Advance();  // '('
          std::vector<SqlExprPtr> args;
          if (PeekSymbol("*")) {
            Advance();
            auto star = std::make_shared<SqlExpr>();
            star->kind = SqlExprKind::kStar;
            args.push_back(std::move(star));
          } else if (!PeekSymbol(")")) {
            args.push_back(ParseExpr());
            while (MatchSymbol(",")) args.push_back(ParseExpr());
          }
          ExpectSymbol(")");
          return MakeFuncCall(name, std::move(args));
        }
        // Column reference: ident or ident.ident.
        std::string first = Advance().text;
        if (MatchSymbol(".")) {
          std::string second = ExpectIdent("column name");
          return MakeColumnRef(first, second);
        }
        return MakeColumnRef("", first);
      }
      default:
        break;
    }
    throw ParseFailure(StrCat("unexpected token '",
                              t.text.empty() ? "<end>" : t.text, "'"),
                       t.offset);
  }

  SqlExprPtr ParseCase() {
    auto node = std::make_shared<SqlExpr>();
    node->kind = SqlExprKind::kCase;
    while (MatchKeyword("when")) {
      node->args.push_back(ParseExpr());
      ExpectKeyword("then");
      node->args.push_back(ParseExpr());
    }
    if (node->args.empty()) {
      throw ParseFailure("CASE requires at least one WHEN branch",
                         Peek().offset);
    }
    if (MatchKeyword("else")) {
      node->has_else = true;
      node->args.push_back(ParseExpr());
    }
    ExpectKeyword("end");
    return node;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace periodk
