// SQL tokenizer: identifiers/keywords (case-insensitive), integer and
// float literals, single-quoted strings ('' escapes a quote), operators
// and punctuation, -- line comments.
#ifndef PERIODK_SQL_LEXER_H_
#define PERIODK_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace periodk {
namespace sql {

enum class TokenType { kIdent, kInt, kFloat, kString, kSymbol, kEnd };

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // identifier as written / symbol / string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

[[nodiscard]] Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace periodk

#endif  // PERIODK_SQL_LEXER_H_
