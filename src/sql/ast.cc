#include "sql/ast.h"

#include "common/str_util.h"

namespace periodk {
namespace sql {

std::string SqlExpr::ToString() const {
  switch (kind) {
    case SqlExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case SqlExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? StrCat("'", literal.ToString(), "'")
                 : literal.ToString();
    case SqlExprKind::kBinary:
      return StrCat("(", args[0]->ToString(), " ", op, " ",
                    args[1]->ToString(), ")");
    case SqlExprKind::kUnary:
      return StrCat("(", op, " ", args[0]->ToString(), ")");
    case SqlExprKind::kFuncCall:
      return StrCat(name, "(",
                    JoinMapped(args, ", ",
                               [](const SqlExprPtr& a) {
                                 return a->ToString();
                               }),
                    ")");
    case SqlExprKind::kStar:
      return "*";
    case SqlExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = (args.size() - (has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += StrCat(" WHEN ", args[2 * i]->ToString(), " THEN ",
                      args[2 * i + 1]->ToString());
      }
      if (has_else) out += StrCat(" ELSE ", args.back()->ToString());
      return out + " END";
    }
    case SqlExprKind::kIn: {
      std::vector<SqlExprPtr> rest(args.begin() + 1, args.end());
      return StrCat(args[0]->ToString(), negated ? " NOT IN (" : " IN (",
                    JoinMapped(rest, ", ",
                               [](const SqlExprPtr& a) {
                                 return a->ToString();
                               }),
                    ")");
    }
    case SqlExprKind::kBetween:
      return StrCat(args[0]->ToString(),
                    negated ? " NOT BETWEEN " : " BETWEEN ",
                    args[1]->ToString(), " AND ", args[2]->ToString());
    case SqlExprKind::kIsNull:
      return StrCat(args[0]->ToString(),
                    negated ? " IS NOT NULL" : " IS NULL");
    case SqlExprKind::kLike:
      return StrCat(args[0]->ToString(), negated ? " NOT LIKE " : " LIKE ",
                    args[1]->ToString());
  }
  return "?";
}

SqlExprPtr MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->name = std::move(name);
  return e;
}

SqlExprPtr MakeSqlLiteral(Value v) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr MakeBinary(std::string op, SqlExprPtr l, SqlExprPtr r) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExprKind::kBinary;
  e->op = ToLower(op);
  e->args = {std::move(l), std::move(r)};
  return e;
}

SqlExprPtr MakeUnary(std::string op, SqlExprPtr child) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExprKind::kUnary;
  e->op = ToLower(op);
  e->args = {std::move(child)};
  return e;
}

SqlExprPtr MakeFuncCall(std::string name, std::vector<SqlExprPtr> args) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExprKind::kFuncCall;
  e->name = ToLower(name);
  e->args = std::move(args);
  return e;
}

bool IsAggregateName(const std::string& lower_name) {
  return lower_name == "count" || lower_name == "sum" ||
         lower_name == "avg" || lower_name == "min" || lower_name == "max";
}

bool ContainsAggregate(const SqlExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind == SqlExprKind::kFuncCall && IsAggregateName(expr->name)) {
    return true;
  }
  for (const SqlExprPtr& a : expr->args) {
    if (ContainsAggregate(a)) return true;
  }
  return false;
}

}  // namespace sql
}  // namespace periodk
