// Plan -> SQL transpiler for differential testing against an external
// SQL engine (tests/sqlite_oracle.*).  Any logical Plan the executor can
// run -- including full REWR output with its temporal operators over
// PERIODENC-encoded relations -- compiles to a self-contained SQL
// script in a portable dialect (subqueries, window functions; SQLite
// >= 3.25 or PostgreSQL): zero or more CREATE TEMP TABLE stages
// followed by one final SELECT.
//
// Conventions:
//  * Every (sub)select aliases its output columns positionally as
//    c0..cN-1, and base tables are expected to exist with exactly those
//    column names (SqliteOracle::LoadTable creates them that way), so
//    composition never depends on source column names.
//  * Shared subplans (plans are DAGs: REWR references rewritten inputs
//    several times) and the pipelines behind the temporal operators
//    become CREATE TEMP TABLE stages rather than CTEs: SQLite expands
//    every CTE reference at parse time, so a chain of multiply-
//    referenced CTEs parses in exponential time, while temp-table
//    stages keep the script linear in the DAG size.
//  * kSplitAggregate is first lowered to the equivalent unfused
//    Split + Aggregate plan (mirroring the rewriter's unfused path,
//    including the union-with-neutral-tuple trick and domain clamping),
//    so the SQL side never needs a fused operator.
//
// Known, deliberate semantic gaps (all unreachable from the fuzzer's
// grammar, which is type-stable over integers and NULLs):
//  * The engine returns NULL when comparing values of incomparable
//    types (int vs string); SQL engines apply a cross-type total order.
//  * The engine raises on arithmetic over non-numeric values and on
//    non-integer timeslice endpoints; SQL coerces or filters instead.
//  * CASE WHEN in the engine requires a boolean condition; SQL treats
//    any non-zero numeric as true.
#ifndef PERIODK_SQL_TRANSPILE_H_
#define PERIODK_SQL_TRANSPILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ra/plan.h"

namespace periodk {

/// Thrown when a plan contains a construct the transpiler cannot
/// express in SQL (zero-arity constants, unknown node kinds).
class TranspileError : public EngineError {
 public:
  explicit TranspileError(const std::string& what) : EngineError(what) {}
};

/// Rewrites every kSplitAggregate node into the equivalent unfused
/// Split + Aggregate subplan (with neutral-tuple gap synthesis and
/// domain clamping where gap_rows is set).  Semantics-preserving for
/// plans whose split groups are non-temporal columns; exposed so tests
/// can check the lowering against the fused operator directly.
PlanPtr LowerSplitAggregates(const PlanPtr& plan);

/// A transpiled plan: `setup` statements (CREATE TEMP TABLE ...;) to
/// run in order, then `query`, a single SELECT producing the plan's
/// result with columns c0..cN-1 (no trailing semicolon).  Row order is
/// unspecified; compare under bag equality.
struct SqlScript {
  std::vector<std::string> setup;
  std::string query;
};

/// Compiles `plan` to a SQL script.  Throws TranspileError on
/// untranspilable constructs.
SqlScript TranspilePlan(const PlanPtr& plan);

/// TranspilePlan flattened to one newline-joined script string (for
/// reproducer dumps and logs; the final SELECT has no semicolon).
std::string TranspilePlanToSql(const PlanPtr& plan);

}  // namespace periodk

#endif  // PERIODK_SQL_TRANSPILE_H_
