// Valid-time TPC-H generator: the stand-in for TPC-BiH (Kaufmann et
// al.) used in the paper's Section 10.4 experiment (substitution
// documented in docs/benchmarks.md).  Generates the eight TPC-H tables
// as period
// relations: dimension rows carry a small version history (account
// balances and quantities change over time), orders/lineitems are valid
// from their creation until a generated end-of-life.  Dates are integer
// day numbers in the synthetic 365-day calendar anchored at 1992 (used
// by the year() SQL function).  Deterministic given the seed.
#ifndef PERIODK_DATAGEN_TPCBIH_H_
#define PERIODK_DATAGEN_TPCBIH_H_

#include <cstdint>

#include "middleware/temporal_db.h"

namespace periodk {

struct TpcBihConfig {
  /// Fraction of the official TPC-H cardinalities (SF1 = 1.0 would be
  /// 6M lineitems; the default keeps benchmarks laptop-scale).
  double scale_factor = 0.01;
  uint64_t seed = 0x79c'b1ff;
  /// Seven years of days (1992-01-01 .. 1998-12-31), like TPC-H.
  TimeDomain domain{0, 2556};
};

/// Creates and fills: region, nation, customer, supplier, part,
/// partsupp, orders, lineitem (all period tables on vt_begin/vt_end).
[[nodiscard]] Status LoadTpcBih(TemporalDB* db, const TpcBihConfig& config);

}  // namespace periodk

#endif  // PERIODK_DATAGEN_TPCBIH_H_
