// The benchmark workloads of the paper's Section 10: the ten snapshot
// queries over the employees dataset (10.3) and the TPC-H queries
// evaluated under snapshot semantics over TPC-BiH (10.4).  Each query
// is expressed in the middleware's SEQ VT dialect.
#ifndef PERIODK_DATAGEN_WORKLOADS_H_
#define PERIODK_DATAGEN_WORKLOADS_H_

#include <string>
#include <vector>

namespace periodk {

struct WorkloadQuery {
  std::string name;
  std::string sql;
  /// Which bug (paper Table 3 rightmost column) native approaches
  /// exhibit on this query: "AG", "BD" or "".
  std::string bug;
};

/// join-1..4, agg-1..3, agg-join, diff-1, diff-2 (paper Section 10.1).
const std::vector<WorkloadQuery>& EmployeeWorkload();

/// The TPC-H queries used in Table 2/3 (Q1, Q3, Q5, Q6, Q7, Q8, Q9,
/// Q10, Q12, Q14, Q19) under snapshot semantics.
const std::vector<WorkloadQuery>& TpcBihWorkload();

}  // namespace periodk

#endif  // PERIODK_DATAGEN_WORKLOADS_H_
