#include "datagen/workloads.h"

namespace periodk {

const std::vector<WorkloadQuery>& EmployeeWorkload() {
  static const std::vector<WorkloadQuery> kQueries = {
      // join-1: salary and department for each employee.
      {"join-1",
       "SEQ VT (SELECT d.emp_no, d.dept_no, s.salary "
       "FROM dept_emp d, salaries s WHERE d.emp_no = s.emp_no)",
       ""},
      // join-2: salary and title for each employee.
      {"join-2",
       "SEQ VT (SELECT s.emp_no, s.salary, t.title "
       "FROM salaries s, titles t WHERE s.emp_no = t.emp_no)",
       ""},
      // join-3: departments whose manager earns more than $70,000.
      {"join-3",
       "SEQ VT (SELECT m.dept_no FROM dept_manager m, salaries s "
       "WHERE m.emp_no = s.emp_no AND s.salary > 70000)",
       ""},
      // join-4: all information for each manager.
      {"join-4",
       "SEQ VT (SELECT m.dept_no, e.first_name, e.last_name, s.salary "
       "FROM dept_manager m, salaries s, employees e "
       "WHERE m.emp_no = s.emp_no AND m.emp_no = e.emp_no)",
       ""},
      // agg-1: average salary per department.
      {"agg-1",
       "SEQ VT (SELECT d.dept_no, avg(s.salary) AS avg_sal "
       "FROM dept_emp d, salaries s WHERE d.emp_no = s.emp_no "
       "GROUP BY d.dept_no)",
       ""},
      // agg-2: average salary of managers (global aggregation -> AG).
      {"agg-2",
       "SEQ VT (SELECT avg(s.salary) AS avg_sal "
       "FROM dept_manager m, salaries s WHERE m.emp_no = s.emp_no)",
       "AG"},
      // agg-3: number of departments with more than 21 employees
      // (two nested aggregations -> AG).
      {"agg-3",
       "SEQ VT (SELECT count(*) AS cnt FROM "
       "(SELECT d.dept_no, count(*) AS c FROM dept_emp d "
       "GROUP BY d.dept_no) x WHERE x.c > 21)",
       "AG"},
      // agg-join: employees with the highest salary in their department.
      {"agg-join",
       "SEQ VT (SELECT e.first_name, d.dept_no "
       "FROM employees e, dept_emp d, salaries s, "
       "(SELECT d2.dept_no AS dn, max(s2.salary) AS msal "
       " FROM dept_emp d2, salaries s2 WHERE d2.emp_no = s2.emp_no "
       " GROUP BY d2.dept_no) m "
       "WHERE e.emp_no = d.emp_no AND d.emp_no = s.emp_no "
       "AND d.dept_no = m.dn AND s.salary = m.msal)",
       ""},
      // diff-1: employees that are not managers (bag difference -> BD).
      {"diff-1",
       "SEQ VT (SELECT emp_no FROM employees EXCEPT ALL "
       "SELECT emp_no FROM dept_manager)",
       "BD"},
      // diff-2: salaries of employees that are not managers.
      {"diff-2",
       "SEQ VT (SELECT emp_no, salary FROM salaries EXCEPT ALL "
       "SELECT s.emp_no, s.salary FROM salaries s, dept_manager m "
       "WHERE s.emp_no = m.emp_no)",
       "BD"},
  };
  return kQueries;
}

const std::vector<WorkloadQuery>& TpcBihWorkload() {
  static const std::vector<WorkloadQuery> kQueries = {
      {"Q1",
       "SEQ VT (SELECT l_returnflag, l_linestatus, "
       "sum(l_quantity) AS sum_qty, sum(l_extendedprice) AS sum_base_price, "
       "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
       "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
       "avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, "
       "avg(l_discount) AS avg_disc, count(*) AS count_order "
       "FROM lineitem WHERE l_shipdate <= 2400 "
       "GROUP BY l_returnflag, l_linestatus)",
       ""},
      {"Q3",
       "SEQ VT (SELECT l_orderkey, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue, "
       "o_orderdate, o_shippriority "
       "FROM customer, orders, lineitem "
       "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
       "AND l_orderkey = o_orderkey AND o_orderdate < 1180 "
       "AND l_shipdate > 1180 "
       "GROUP BY l_orderkey, o_orderdate, o_shippriority)",
       ""},
      {"Q5",
       "SEQ VT (SELECT n_name, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM customer, orders, lineitem, supplier, nation, region "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
       "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
       "AND r_name = 'ASIA' AND o_orderdate >= 730 AND o_orderdate < 1095 "
       "GROUP BY n_name)",
       ""},
      {"Q6",
       "SEQ VT (SELECT sum(l_extendedprice * l_discount) AS revenue "
       "FROM lineitem WHERE l_shipdate >= 730 AND l_shipdate < 1095 "
       "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24)",
       "AG"},
      {"Q7",
       "SEQ VT (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
       "year(l_shipdate) AS l_year, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
       "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
       "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
       "AND c_nationkey = n2.n_nationkey "
       "AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
       " OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
       "AND l_shipdate BETWEEN 365 AND 1095 "
       "GROUP BY n1.n_name, n2.n_name, year(l_shipdate))",
       ""},
      {"Q8",
       "SEQ VT (SELECT year(o_orderdate) AS o_year, "
       "sum(CASE WHEN n2.n_name = 'BRAZIL' "
       "THEN l_extendedprice * (1 - l_discount) ELSE 0 END) / "
       "sum(l_extendedprice * (1 - l_discount)) AS mkt_share "
       "FROM part, supplier, lineitem, orders, customer, "
       "nation n1, nation n2, region "
       "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
       "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
       "AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey "
       "AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey "
       "AND o_orderdate BETWEEN 365 AND 1095 "
       "AND p_type = 'ECONOMY ANODIZED STEEL' "
       "GROUP BY year(o_orderdate))",
       ""},
      {"Q9",
       "SEQ VT (SELECT n_name AS nation, year(o_orderdate) AS o_year, "
       "sum(l_extendedprice * (1 - l_discount) "
       " - ps_supplycost * l_quantity) AS sum_profit "
       "FROM part, supplier, lineitem, partsupp, orders, nation "
       "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
       "AND ps_partkey = l_partkey AND p_partkey = l_partkey "
       "AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
       "AND p_name LIKE '%green%' "
       "GROUP BY n_name, year(o_orderdate))",
       ""},
      {"Q10",
       "SEQ VT (SELECT c_custkey, c_name, "
       "sum(l_extendedprice * (1 - l_discount)) AS revenue, "
       "c_acctbal, n_name "
       "FROM customer, orders, lineitem, nation "
       "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
       "AND o_orderdate >= 900 AND o_orderdate < 990 "
       "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
       "GROUP BY c_custkey, c_name, c_acctbal, n_name)",
       ""},
      {"Q12",
       "SEQ VT (SELECT l_shipmode, "
       "sum(CASE WHEN o_orderpriority = '1-URGENT' "
       " OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) "
       " AS high_line_count, "
       "sum(CASE WHEN o_orderpriority <> '1-URGENT' "
       " AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) "
       " AS low_line_count "
       "FROM orders, lineitem "
       "WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') "
       "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
       "AND l_receiptdate >= 730 AND l_receiptdate < 1095 "
       "GROUP BY l_shipmode)",
       ""},
      {"Q14",
       "SEQ VT (SELECT 100.00 * "
       "sum(CASE WHEN p_type LIKE 'PROMO%' "
       "THEN l_extendedprice * (1 - l_discount) ELSE 0 END) / "
       "sum(l_extendedprice * (1 - l_discount)) AS promo_revenue "
       "FROM lineitem, part "
       "WHERE l_partkey = p_partkey AND l_shipdate >= 900 "
       "AND l_shipdate < 930)",
       "AG"},
      // Q19's official text repeats the join condition in every
      // disjunct; the common conjunct is factored out here so the
      // disjunction remains a residual predicate on the join.
      {"Q19",
       "SEQ VT (SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM lineitem, part "
       "WHERE p_partkey = l_partkey AND l_shipinstruct = 'DELIVER IN PERSON' "
       "AND ((p_brand = 'Brand#12' "
       "  AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') "
       "  AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5 "
       "  AND l_shipmode IN ('AIR', 'REG AIR')) "
       " OR (p_brand = 'Brand#23' "
       "  AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') "
       "  AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10 "
       "  AND l_shipmode IN ('AIR', 'REG AIR')) "
       " OR (p_brand = 'Brand#34' "
       "  AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') "
       "  AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15 "
       "  AND l_shipmode IN ('AIR', 'REG AIR'))))",
       "AG"},
  };
  return kQueries;
}

}  // namespace periodk
