#include "datagen/tpcbih.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"

namespace periodk {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "RUSSIA", "SAUDI ARABIA", "VIETNAM", "UNITED KINGDOM", "UNITED STATES"};
// TPC-H nation -> region mapping.
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 3, 4, 2, 3, 3};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kShipInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                               "TAKE BACK RETURN"};
const char* kContainers[] = {"SM CASE", "SM BOX",  "SM PACK", "SM PKG",
                             "MED BAG", "MED BOX", "MED PKG", "MED PACK",
                             "LG CASE", "LG BOX",  "LG PACK", "LG PKG"};
const char* kTypes[] = {"ECONOMY ANODIZED STEEL", "STANDARD POLISHED TIN",
                        "PROMO BURNISHED COPPER", "MEDIUM PLATED BRASS",
                        "SMALL BRUSHED NICKEL",   "PROMO PLATED STEEL",
                        "LARGE ANODIZED BRASS",   "STANDARD BRUSHED STEEL"};
const char* kColors[] = {"green", "blue", "red",    "ivory", "salmon",
                         "peach", "navy", "yellow", "azure", "rosy"};

int64_t ScaledCount(double base, double sf) {
  int64_t n = static_cast<int64_t>(base * sf);
  return n < 1 ? 1 : n;
}

}  // namespace

Status LoadTpcBih(TemporalDB* db, const TpcBihConfig& config) {
  Rng rng(config.seed);
  const TimePoint tmin = config.domain.tmin;
  const TimePoint tmax = config.domain.tmax;
  const double sf = config.scale_factor;

  struct TableDef {
    const char* name;
    std::vector<std::string> columns;
  };
  const TableDef tables[] = {
      {"region", {"r_regionkey", "r_name", "vt_begin", "vt_end"}},
      {"nation",
       {"n_nationkey", "n_name", "n_regionkey", "vt_begin", "vt_end"}},
      {"customer",
       {"c_custkey", "c_name", "c_acctbal", "c_nationkey", "c_mktsegment",
        "vt_begin", "vt_end"}},
      {"supplier",
       {"s_suppkey", "s_name", "s_nationkey", "s_acctbal", "vt_begin",
        "vt_end"}},
      {"part",
       {"p_partkey", "p_name", "p_type", "p_brand", "p_container", "p_size",
        "p_retailprice", "vt_begin", "vt_end"}},
      {"partsupp",
       {"ps_partkey", "ps_suppkey", "ps_supplycost", "ps_availqty",
        "vt_begin", "vt_end"}},
      {"orders",
       {"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
        "o_orderdate", "o_orderpriority", "o_shippriority", "vt_begin",
        "vt_end"}},
      {"lineitem",
       {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
        "l_extendedprice", "l_discount", "l_tax", "l_returnflag",
        "l_linestatus", "l_shipdate", "l_commitdate", "l_receiptdate",
        "l_shipmode", "l_shipinstruct", "vt_begin", "vt_end"}},
  };
  for (const TableDef& def : tables) {
    Status status =
        db->CreatePeriodTable(def.name, def.columns, "vt_begin", "vt_end");
    if (!status.ok()) return status;
  }

  // Row-at-a-time Insert() is copy-on-write (O(table) per call); batch
  // the whole load and ship it per table at the end.
  BulkLoader loader(db);
  for (int r = 0; r < 5; ++r) {
    Status status =
        loader.Insert("region", {Value::Int(r), Value::String(kRegions[r]),
                              Value::Int(tmin), Value::Int(tmax)});
    if (!status.ok()) return status;
  }
  for (int n = 0; n < 25; ++n) {
    Status status = loader.Insert(
        "nation", {Value::Int(n), Value::String(kNations[n]),
                   Value::Int(kNationRegion[n]), Value::Int(tmin),
                   Value::Int(tmax)});
    if (!status.ok()) return status;
  }

  // Dimension rows get 1-3 versions whose periods partition
  // [birth, tmax); numeric attributes drift across versions.
  auto versioned = [&](TimePoint birth, auto emit) -> Status {
    int versions = 1 + static_cast<int>(rng.Uniform(3));
    TimePoint from = birth;
    for (int v = 0; v < versions && from < tmax; ++v) {
      TimePoint to = v == versions - 1
                         ? tmax
                         : std::min<TimePoint>(
                               tmax, from + rng.Range(200, (tmax - from) /
                                                                (versions - v) +
                                                            200));
      if (to <= from) to = tmax;
      Status status = emit(v, from, to);
      if (!status.ok()) return status;
      from = to;
    }
    return Status::OK();
  };

  const int64_t n_customers = ScaledCount(150000, sf);
  for (int64_t c = 1; c <= n_customers; ++c) {
    int64_t nation = static_cast<int64_t>(rng.Uniform(25));
    const char* segment = kSegments[rng.Uniform(5)];
    int64_t acctbal = rng.Range(-999, 9999);
    Status status = versioned(
        tmin, [&](int version, TimePoint from, TimePoint to) {
          return loader.Insert(
              "customer",
              {Value::Int(c), Value::String(StrCat("Customer#", c)),
               Value::Int(acctbal + version * 500), Value::Int(nation),
               Value::String(segment), Value::Int(from), Value::Int(to)});
        });
    if (!status.ok()) return status;
  }

  const int64_t n_suppliers = ScaledCount(10000, sf);
  for (int64_t s = 1; s <= n_suppliers; ++s) {
    int64_t nation = static_cast<int64_t>(rng.Uniform(25));
    int64_t acctbal = rng.Range(-999, 9999);
    Status status = versioned(
        tmin, [&](int version, TimePoint from, TimePoint to) {
          return loader.Insert(
              "supplier",
              {Value::Int(s), Value::String(StrCat("Supplier#", s)),
               Value::Int(nation), Value::Int(acctbal + version * 300),
               Value::Int(from), Value::Int(to)});
        });
    if (!status.ok()) return status;
  }

  const int64_t n_parts = ScaledCount(200000, sf);
  for (int64_t p = 1; p <= n_parts; ++p) {
    std::string name = StrCat(kColors[rng.Uniform(10)], " ",
                              kColors[rng.Uniform(10)], " part");
    std::string brand = StrCat("Brand#", 1 + rng.Uniform(5), 1 + rng.Uniform(5));
    Status status = loader.Insert(
        "part", {Value::Int(p), Value::String(name),
                 Value::String(kTypes[rng.Uniform(8)]), Value::String(brand),
                 Value::String(kContainers[rng.Uniform(12)]),
                 Value::Int(rng.Range(1, 50)),
                 Value::Double(900.0 + static_cast<double>(p % 1000)),
                 Value::Int(tmin), Value::Int(tmax)});
    if (!status.ok()) return status;
    // partsupp: 4 suppliers per part, with availability history.
    for (int i = 0; i < 4; ++i) {
      int64_t supp = 1 + static_cast<int64_t>(
                             rng.Uniform(static_cast<uint64_t>(n_suppliers)));
      int64_t cost = rng.Range(100, 1000);
      Status ps_status = versioned(
          tmin, [&](int version, TimePoint from, TimePoint to) {
            return loader.Insert(
                "partsupp",
                {Value::Int(p), Value::Int(supp), Value::Int(cost),
                 Value::Int(rng.Range(1, 9999) + version * 10),
                 Value::Int(from), Value::Int(to)});
          });
      if (!ps_status.ok()) return ps_status;
    }
  }

  const int64_t n_orders = ScaledCount(150000, sf) * 10;
  for (int64_t o = 1; o <= n_orders; ++o) {
    int64_t cust = 1 + static_cast<int64_t>(
                           rng.Uniform(static_cast<uint64_t>(n_customers)));
    TimePoint orderdate = tmin + rng.Range(0, tmax - tmin - 180);
    TimePoint death = std::min<TimePoint>(
        tmax, orderdate + rng.Range(30, 120));  // active life of the order
    Status status = loader.Insert(
        "orders",
        {Value::Int(o), Value::Int(cust),
         Value::String(rng.Chance(0.5) ? "F" : "O"),
         Value::Double(1000.0 + rng.NextDouble() * 400000.0),
         Value::Int(orderdate), Value::String(kPriorities[rng.Uniform(5)]),
         Value::Int(0), Value::Int(orderdate), Value::Int(death)});
    if (!status.ok()) return status;
    // 1..7 lineitems per order (TPC-H averages 4).
    int n_lines = 1 + static_cast<int>(rng.Uniform(7));
    for (int l = 0; l < n_lines; ++l) {
      int64_t part = 1 + static_cast<int64_t>(
                             rng.Uniform(static_cast<uint64_t>(n_parts)));
      int64_t supp = 1 + static_cast<int64_t>(
                             rng.Uniform(static_cast<uint64_t>(n_suppliers)));
      int64_t quantity = rng.Range(1, 50);
      double price = static_cast<double>(quantity) *
                     (900.0 + static_cast<double>(part % 1000));
      double discount = static_cast<double>(rng.Uniform(11)) / 100.0;
      double tax = static_cast<double>(rng.Uniform(9)) / 100.0;
      TimePoint shipdate = orderdate + rng.Range(1, 121);
      TimePoint commitdate = orderdate + rng.Range(30, 90);
      TimePoint receiptdate = shipdate + rng.Range(1, 30);
      Status li_status = loader.Insert(
          "lineitem",
          {Value::Int(o), Value::Int(part), Value::Int(supp),
           Value::Int(quantity), Value::Double(price),
           Value::Double(discount), Value::Double(tax),
           Value::String(rng.Chance(0.25) ? "R"
                                          : (rng.Chance(0.5) ? "A" : "N")),
           Value::String(rng.Chance(0.5) ? "O" : "F"), Value::Int(shipdate),
           Value::Int(commitdate), Value::Int(receiptdate),
           Value::String(kShipModes[rng.Uniform(7)]),
           Value::String(kShipInstruct[rng.Uniform(4)]),
           Value::Int(orderdate), Value::Int(death)});
      if (!li_status.ok()) return li_status;
    }
  }
  return loader.Flush();
}

}  // namespace periodk
