// Synthetic generator for the MySQL `employees` benchmark dataset used
// in the paper's Section 10 evaluation (substitution documented in
// docs/benchmarks.md): six period tables with the same schemas and temporal
// shape -- salaries dominate with roughly yearly raises per employee,
// titles and department assignments change occasionally, and each
// department has a succession of managers.  Fully deterministic given
// the seed.
#ifndef PERIODK_DATAGEN_EMPLOYEES_H_
#define PERIODK_DATAGEN_EMPLOYEES_H_

#include <cstdint>

#include "middleware/temporal_db.h"

namespace periodk {

struct EmployeesConfig {
  /// Number of employees; salary rows are ~9x this (the real dataset has
  /// 300k employees and 2.8M salary rows).
  int num_employees = 1000;
  uint64_t seed = 0xe39'10ee5;
  /// Days; the real dataset spans 1985-2003 (~6570 days).
  TimeDomain domain{0, 6570};
};

/// Creates and fills the period tables:
///   departments(dept_no, dept_name, vt_begin, vt_end)
///   employees(emp_no, first_name, last_name, hire_date, vt_begin, vt_end)
///   salaries(emp_no, salary, vt_begin, vt_end)
///   titles(emp_no, title, vt_begin, vt_end)
///   dept_emp(emp_no, dept_no, vt_begin, vt_end)
///   dept_manager(dept_no, emp_no, vt_begin, vt_end)
[[nodiscard]] Status LoadEmployees(TemporalDB* db,
                                   const EmployeesConfig& config);

}  // namespace periodk

#endif  // PERIODK_DATAGEN_EMPLOYEES_H_
