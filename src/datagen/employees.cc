#include "datagen/employees.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace periodk {

namespace {

constexpr int kNumDepartments = 9;

const char* kDeptNames[kNumDepartments] = {
    "Marketing",       "Finance",           "Human Resources",
    "Production",      "Development",       "Quality Management",
    "Sales",           "Research",          "Customer Service"};

const char* kFirstNames[] = {"Georgi", "Bezalel", "Parto",  "Chirstian",
                             "Kyoichi", "Anneke", "Tzvetan", "Saniya",
                             "Sumant",  "Duangkaew"};
const char* kLastNames[] = {"Facello", "Simmel",   "Bamford", "Koblick",
                            "Maliniak", "Preusig", "Zielinski", "Kalloufi",
                            "Peac",     "Piveteau"};
const char* kTitles[] = {"Staff",           "Engineer",        "Senior Staff",
                         "Senior Engineer", "Technique Leader", "Manager"};

}  // namespace

Status LoadEmployees(TemporalDB* db, const EmployeesConfig& config) {
  Rng rng(config.seed);
  const TimePoint tmin = config.domain.tmin;
  const TimePoint tmax = config.domain.tmax;

  Status status = db->CreatePeriodTable(
      "departments", {"dept_no", "dept_name", "vt_begin", "vt_end"},
      "vt_begin", "vt_end");
  if (!status.ok()) return status;
  status = db->CreatePeriodTable(
      "employees",
      {"emp_no", "first_name", "last_name", "hire_date", "vt_begin", "vt_end"},
      "vt_begin", "vt_end");
  if (!status.ok()) return status;
  status = db->CreatePeriodTable(
      "salaries", {"emp_no", "salary", "vt_begin", "vt_end"}, "vt_begin",
      "vt_end");
  if (!status.ok()) return status;
  status = db->CreatePeriodTable(
      "titles", {"emp_no", "title", "vt_begin", "vt_end"}, "vt_begin",
      "vt_end");
  if (!status.ok()) return status;
  status = db->CreatePeriodTable(
      "dept_emp", {"emp_no", "dept_no", "vt_begin", "vt_end"}, "vt_begin",
      "vt_end");
  if (!status.ok()) return status;
  status = db->CreatePeriodTable(
      "dept_manager", {"dept_no", "emp_no", "vt_begin", "vt_end"}, "vt_begin",
      "vt_end");
  if (!status.ok()) return status;

  // Row-at-a-time Insert() is copy-on-write (O(table) per call); batch
  // the whole load and ship it per table at the end.
  BulkLoader loader(db);
  for (int d = 0; d < kNumDepartments; ++d) {
    status = loader.Insert("departments",
                        {Value::String(StrCat("d", d + 1)),
                         Value::String(kDeptNames[d]), Value::Int(tmin),
                         Value::Int(tmax)});
    if (!status.ok()) return status;
  }

  for (int e = 0; e < config.num_employees; ++e) {
    int64_t emp_no = 10001 + e;
    // Hire somewhere in the first 60% of the domain so histories are
    // long enough for ~9 salary segments on average.
    TimePoint hire = tmin + rng.Range(0, (tmax - tmin) * 6 / 10);
    status = loader.Insert(
        "employees",
        {Value::Int(emp_no), Value::String(kFirstNames[rng.Uniform(10)]),
         Value::String(kLastNames[rng.Uniform(10)]), Value::Int(hire),
         Value::Int(hire), Value::Int(tmax)});
    if (!status.ok()) return status;

    // Salaries: raises on (365-day) calendar year boundaries, like the
    // real dataset where from_date clusters on review dates.  The
    // clustering is what makes the paper's pre-aggregation optimization
    // effective: many tuples share identical (group, begin, end) cells.
    int64_t salary = rng.Range(38000, 70000);
    TimePoint from = hire;
    while (from < tmax) {
      TimePoint to = (from / 365 + 1) * 365;
      if (to > tmax) to = tmax;
      status = loader.Insert("salaries", {Value::Int(emp_no), Value::Int(salary),
                                       Value::Int(from), Value::Int(to)});
      if (!status.ok()) return status;
      salary += rng.Range(500, 4500);
      from = to;
    }

    // Titles: one to three career steps partitioning [hire, tmax).
    int steps = 1 + static_cast<int>(rng.Uniform(3));
    TimePoint title_from = hire;
    int title_idx = static_cast<int>(rng.Uniform(3));
    for (int s = 0; s < steps && title_from < tmax; ++s) {
      TimePoint title_to =
          s == steps - 1 ? tmax
                         : title_from + rng.Range(365, (tmax - title_from) /
                                                               (steps - s) +
                                                           365);
      if (title_to > tmax) title_to = tmax;
      status = loader.Insert("titles",
                          {Value::Int(emp_no),
                           Value::String(kTitles[title_idx % 6]),
                           Value::Int(title_from), Value::Int(title_to)});
      if (!status.ok()) return status;
      title_from = title_to;
      ++title_idx;
    }

    // Department assignments: most employees stay put, some move once.
    int64_t dept = 1 + static_cast<int64_t>(rng.Uniform(kNumDepartments));
    if (rng.Chance(0.12) && tmax - hire > 730) {
      TimePoint move = hire + rng.Range(365, tmax - hire - 180);
      status = loader.Insert("dept_emp", {Value::Int(emp_no),
                                       Value::String(StrCat("d", dept)),
                                       Value::Int(hire), Value::Int(move)});
      if (!status.ok()) return status;
      int64_t dept2 = 1 + static_cast<int64_t>(rng.Uniform(kNumDepartments));
      status = loader.Insert("dept_emp", {Value::Int(emp_no),
                                       Value::String(StrCat("d", dept2)),
                                       Value::Int(move), Value::Int(tmax)});
      if (!status.ok()) return status;
    } else {
      status = loader.Insert("dept_emp", {Value::Int(emp_no),
                                       Value::String(StrCat("d", dept)),
                                       Value::Int(hire), Value::Int(tmax)});
      if (!status.ok()) return status;
    }
  }

  // Managers: each department sees a succession of 3-5 managers drawn
  // from the employee pool (their on-duty periods partition the domain).
  for (int d = 0; d < kNumDepartments; ++d) {
    int terms = 3 + static_cast<int>(rng.Uniform(3));
    TimePoint from = tmin;
    for (int t = 0; t < terms && from < tmax; ++t) {
      TimePoint to =
          t == terms - 1
              ? tmax
              : from + (tmax - from) / (terms - t) + rng.Range(-200, 200);
      if (to <= from) to = from + 1;
      if (to > tmax) to = tmax;
      int64_t emp_no =
          10001 + static_cast<int64_t>(rng.Uniform(
                      static_cast<uint64_t>(config.num_employees)));
      status = loader.Insert("dept_manager",
                          {Value::String(StrCat("d", d + 1)),
                           Value::Int(emp_no), Value::Int(from),
                           Value::Int(to)});
      if (!status.ok()) return status;
      from = to;
    }
  }
  return loader.Flush();
}

}  // namespace periodk
