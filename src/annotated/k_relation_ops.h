// Positive relational algebra over K-relations (paper Def 4.1) plus the
// monus-based difference for m-semirings (Section 7.1) and bag
// aggregation for N-relations (used snapshot-wise by Def 7.1).
//
// Selection multiplies annotations with the {0_K, 1_K}-valued predicate;
// projection sums the annotations of all input tuples mapped to the same
// output tuple; join multiplies the annotations of join partners; union
// adds annotations.
#ifndef PERIODK_ANNOTATED_K_RELATION_OPS_H_
#define PERIODK_ANNOTATED_K_RELATION_OPS_H_

#include <optional>
#include <vector>

#include "annotated/k_relation.h"
#include "engine/agg.h"
#include "semiring/nat_semiring.h"

namespace periodk {

/// sigma_theta(R)(t) = R(t) * theta(t).
template <Semiring K, typename Pred>
KRelation<K> Select(const KRelation<K>& r, Pred pred) {
  KRelation<K> out(r.semiring());
  for (const auto& [t, v] : r.tuples()) {
    if (pred(t)) out.Add(t, v);
  }
  return out;
}

/// Pi_A(R)(t) = sum over u with u.A = t of R(u); `fn` maps each input
/// tuple to its projection.
template <Semiring K, typename Fn>
KRelation<K> Project(const KRelation<K>& r, Fn fn) {
  KRelation<K> out(r.semiring());
  for (const auto& [t, v] : r.tuples()) {
    out.Add(fn(t), v);
  }
  return out;
}

/// (R join_theta S)(t ++ u) = R(t) * S(u) * theta(t ++ u).  The
/// predicate receives the concatenated tuple.
template <Semiring K, typename Pred>
KRelation<K> Join(const KRelation<K>& r, const KRelation<K>& s, Pred pred) {
  KRelation<K> out(r.semiring());
  for (const auto& [t, vt] : r.tuples()) {
    for (const auto& [u, vu] : s.tuples()) {
      Row combined = t;
      combined.insert(combined.end(), u.begin(), u.end());
      if (pred(combined)) {
        out.Add(combined, r.semiring().Times(vt, vu));
      }
    }
  }
  return out;
}

/// (R union S)(t) = R(t) + S(t).
template <Semiring K>
KRelation<K> Union(const KRelation<K>& r, const KRelation<K>& s) {
  KRelation<K> out = r;
  for (const auto& [t, v] : s.tuples()) {
    out.Add(t, v);
  }
  return out;
}

/// (R - S)(t) = R(t) monus S(t) (Geerts & Poggi difference; EXCEPT ALL
/// for K = N, set difference for K = B).
template <MSemiring K>
KRelation<K> Monus(const KRelation<K>& r, const KRelation<K>& s) {
  KRelation<K> out(r.semiring());
  for (const auto& [t, v] : r.tuples()) {
    out.Set(t, r.semiring().Monus(v, s.At(t)));
  }
  return out;
}

/// One aggregation function over one column; column is ignored for
/// count(*).
struct BagAggSpec {
  AggFunc func = AggFunc::kCountStar;
  int column = -1;
};

/// SQL bag aggregation over an N-relation: groups on `group_cols`,
/// computes all `aggs` per group, and annotates each result tuple
/// (group values ++ aggregate values) with multiplicity 1.  With an
/// empty group list the aggregation *always* returns exactly one row --
/// for empty input count yields 0 and sum/avg/min/max yield NULL -- which
/// is precisely the behaviour whose absence over temporal gaps is the
/// paper's aggregation gap (AG) bug.
KRelation<NatSemiring> BagAggregate(const KRelation<NatSemiring>& r,
                                    const std::vector<int>& group_cols,
                                    const std::vector<BagAggSpec>& aggs);

/// Bag distinct: every present tuple gets multiplicity 1 (SQL DISTINCT).
KRelation<NatSemiring> BagDistinct(const KRelation<NatSemiring>& r);

}  // namespace periodk

#endif  // PERIODK_ANNOTATED_K_RELATION_OPS_H_
