// Period K-relations (paper Section 6): the *logical model*.  A period
// K-relation is a K^T-relation -- a K-relation over the period semiring
// -- i.e. every tuple is annotated with a coalesced temporal K-element.
//
// This header provides:
//  * the PeriodKRelation<K> alias,
//  * ENC_K / ENC_K^{-1} between snapshot K-relations and period
//    K-relations (Def 6.3; bijective by Lemma 6.4),
//  * the timeslice operator for K^T-relations (Def 6.2), a semiring
//    homomorphism applied tuple-wise (Thm 6.3),
//  * snapshot-wise aggregation over N^T-relations (Def 7.1).
#ifndef PERIODK_ANNOTATED_PERIOD_K_RELATION_H_
#define PERIODK_ANNOTATED_PERIOD_K_RELATION_H_

#include <map>
#include <vector>

#include "annotated/k_relation.h"
#include "annotated/k_relation_ops.h"
#include "annotated/snapshot_k_relation.h"
#include "temporal/period_semiring.h"

namespace periodk {

template <Semiring K>
using PeriodKRelation = KRelation<PeriodSemiring<K>>;

/// ENC_K (Def 6.3): merges all occurrences of a tuple across snapshots
/// into one tuple annotated with the coalesced temporal element built
/// from singleton intervals [T, T+1) -> R(T)(t).
template <Semiring K>
PeriodKRelation<K> EncodeSnapshots(const SnapshotKRelation<K>& r) {
  const K& k = r.semiring();
  PeriodSemiring<K> kt(k, r.domain());
  std::map<Row, TemporalElement<K>, RowLess> raw;
  for (TimePoint t = r.domain().tmin; t < r.domain().tmax; ++t) {
    for (const auto& [tuple, annot] : r.At(t).tuples()) {
      raw[tuple].Add(Interval(t, t + 1), annot);
    }
  }
  PeriodKRelation<K> out(kt);
  for (auto& [tuple, te] : raw) {
    out.Set(tuple, Coalesce(k, te));
  }
  return out;
}

/// ENC_K^{-1}: recovers the snapshot K-relation by slicing every tuple's
/// temporal element at every time point (Lemma 6.5: ENC preserves
/// snapshots, so Decode(Encode(R)) == R).
template <Semiring K>
SnapshotKRelation<K> DecodeSnapshots(const PeriodKRelation<K>& r) {
  const PeriodSemiring<K>& kt = r.semiring();
  SnapshotKRelation<K> out(kt.base(), kt.domain());
  for (const auto& [tuple, te] : r.tuples()) {
    for (const auto& [interval, annot] : te.entries()) {
      out.AddDuring(tuple, interval, annot);
    }
  }
  return out;
}

/// Timeslice for K^T-relations (Def 6.2): annotates each tuple with
/// tau_T of its temporal element (dropping tuples that vanish at T).
template <Semiring K>
KRelation<K> TimesliceRelation(const PeriodKRelation<K>& r, TimePoint t) {
  const PeriodSemiring<K>& kt = r.semiring();
  KRelation<K> out(kt.base());
  for (const auto& [tuple, te] : r.tuples()) {
    out.Add(tuple, kt.TimesliceAt(te, t));
  }
  return out;
}

/// Snapshot aggregation over N^T-relations (Def 7.1): for every time
/// point T, aggregate the snapshot at T under bag semantics; each result
/// tuple is annotated with the coalesced indicator element of the time
/// points at which it is produced.  This is the definitional (pointwise)
/// evaluation used as a correctness oracle; the efficient interval-wise
/// evaluation lives in the rewrite layer (split operator).
PeriodKRelation<NatSemiring> SnapshotAggregate(
    const PeriodKRelation<NatSemiring>& r,
    const std::vector<int>& group_cols, const std::vector<BagAggSpec>& aggs);

}  // namespace periodk

#endif  // PERIODK_ANNOTATED_PERIOD_K_RELATION_H_
