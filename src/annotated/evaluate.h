// Query evaluation over K-relations: interprets the same logical plans
// the engine executes, but with semiring annotation semantics
// (Def 4.1).  Because PeriodSemiring<K> satisfies the Semiring concept,
// the very same interpreter evaluates queries over the *logical model*
// (period K-relations); aggregation over N^T uses the snapshot-wise
// Def 7.1, and over plain N the bag aggregation -- dispatched with
// `if constexpr`.
//
// This gives executable versions of all three levels of the paper's
// Figure 2:
//   abstract model  = EvaluateSnapshots (per-snapshot evaluation),
//   logical model   = Evaluate over KRelation<PeriodSemiring<K>>,
//   implementation  = rewrite/ + engine/.
#ifndef PERIODK_ANNOTATED_EVALUATE_H_
#define PERIODK_ANNOTATED_EVALUATE_H_

#include <map>
#include <string>
#include <type_traits>

#include "annotated/k_relation_ops.h"
#include "annotated/period_k_relation.h"
#include "annotated/snapshot_k_relation.h"
#include "common/status.h"
#include "ra/plan.h"

namespace periodk {

template <Semiring K>
using KCatalog = std::map<std::string, KRelation<K>>;

namespace internal {

template <Semiring K>
constexpr bool kIsBag = std::is_same_v<K, NatSemiring>;
template <Semiring K>
constexpr bool kIsPeriodBag = std::is_same_v<K, PeriodSemiring<NatSemiring>>;

/// Columns of aggregate argument expressions; Def 7.1-style aggregation
/// operates on column indices, so arguments are normalized to columns by
/// pre-projection.
template <Semiring K>
KRelation<K> ProjectForAggregate(const K& k, const KRelation<K>& input,
                                 const std::vector<ExprPtr>& groups,
                                 const std::vector<AggExpr>& aggs,
                                 std::vector<int>* group_cols,
                                 std::vector<BagAggSpec>* specs) {
  std::vector<ExprPtr> exprs = groups;
  for (const AggExpr& a : aggs) {
    BagAggSpec spec;
    spec.func = a.func;
    if (a.func != AggFunc::kCountStar) {
      spec.column = static_cast<int>(exprs.size());
      exprs.push_back(a.arg);
    }
    specs->push_back(spec);
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    group_cols->push_back(static_cast<int>(g));
  }
  (void)k;
  return Project(input, [&exprs](const Row& t) {
    Row out;
    out.reserve(exprs.size());
    for (const ExprPtr& e : exprs) out.push_back(e->Eval(t));
    return out;
  });
}

}  // namespace internal

/// Evaluates a plan over a K-catalog.  RA+ works for every semiring;
/// difference requires an m-semiring; aggregation and distinct require
/// N (bag) or N^T (period bag, Def 7.1) annotations.  Constant relations
/// are annotated 1_K per duplicate row.
template <Semiring K>
KRelation<K> Evaluate(const PlanPtr& plan, const K& k,
                      const KCatalog<K>& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      auto it = catalog.find(plan->table);
      if (it == catalog.end()) {
        throw EngineError("unknown K-relation: " + plan->table);
      }
      return it->second;
    }
    case PlanKind::kConstant: {
      KRelation<K> out(k);
      for (const Row& row : plan->constant->rows()) {
        out.Add(row, k.One());
      }
      return out;
    }
    case PlanKind::kSelect: {
      const ExprPtr& pred = plan->predicate;
      return Select(Evaluate(plan->left, k, catalog),
                    [&pred](const Row& t) { return pred->EvalBool(t); });
    }
    case PlanKind::kProject: {
      const std::vector<ExprPtr>& exprs = plan->exprs;
      return Project(Evaluate(plan->left, k, catalog),
                     [&exprs](const Row& t) {
                       Row out;
                       out.reserve(exprs.size());
                       for (const ExprPtr& e : exprs) {
                         out.push_back(e->Eval(t));
                       }
                       return out;
                     });
    }
    case PlanKind::kJoin: {
      const ExprPtr& pred = plan->predicate;
      return Join(Evaluate(plan->left, k, catalog),
                  Evaluate(plan->right, k, catalog),
                  [&pred](const Row& t) { return pred->EvalBool(t); });
    }
    case PlanKind::kUnionAll:
      return Union(Evaluate(plan->left, k, catalog),
                   Evaluate(plan->right, k, catalog));
    case PlanKind::kExceptAll: {
      if constexpr (MSemiring<K>) {
        return Monus(Evaluate(plan->left, k, catalog),
                     Evaluate(plan->right, k, catalog));
      } else {
        throw EngineError("difference requires an m-semiring");
      }
    }
    case PlanKind::kAggregate: {
      std::vector<int> group_cols;
      std::vector<BagAggSpec> specs;
      if constexpr (internal::kIsBag<K>) {
        KRelation<K> normalized = internal::ProjectForAggregate(
            k, Evaluate(plan->left, k, catalog), plan->exprs, plan->aggs,
            &group_cols, &specs);
        return BagAggregate(normalized, group_cols, specs);
      } else if constexpr (internal::kIsPeriodBag<K>) {
        KRelation<K> normalized = internal::ProjectForAggregate(
            k, Evaluate(plan->left, k, catalog), plan->exprs, plan->aggs,
            &group_cols, &specs);
        return SnapshotAggregate(normalized, group_cols, specs);
      } else {
        throw EngineError("aggregation requires bag (N or N^T) annotations");
      }
    }
    case PlanKind::kDistinct: {
      if constexpr (internal::kIsBag<K>) {
        return BagDistinct(Evaluate(plan->left, k, catalog));
      } else if constexpr (internal::kIsPeriodBag<K>) {
        // Snapshot DISTINCT over N^T: clamp each multiplicity to 1,
        // re-coalescing since neighbouring entries may merge.
        KRelation<K> input = Evaluate(plan->left, k, catalog);
        KRelation<K> out(k);
        for (const auto& [tuple, te] : input.tuples()) {
          TemporalElement<NatSemiring> clamped;
          for (const auto& [interval, mult] : te.entries()) {
            clamped.Add(interval, mult > 0 ? 1 : 0);
          }
          out.Set(tuple, Coalesce(k.base(), clamped));
        }
        return out;
      } else {
        throw EngineError("distinct requires bag (N or N^T) annotations");
      }
    }
    default:
      throw EngineError(
          std::string("operator not supported over K-relations: ") +
          PlanKindName(plan->kind));
  }
}

template <Semiring K>
using SnapshotCatalog = std::map<std::string, SnapshotKRelation<K>>;

/// The abstract model's snapshot semantics (Def 4.4): evaluates the
/// plan independently at every time point.
template <Semiring K>
SnapshotKRelation<K> EvaluateSnapshots(const PlanPtr& plan, const K& k,
                                       const SnapshotCatalog<K>& catalog,
                                       const TimeDomain& domain) {
  SnapshotKRelation<K> out(k, domain);
  for (TimePoint t = domain.tmin; t < domain.tmax; ++t) {
    KCatalog<K> sliced;
    for (const auto& [name, rel] : catalog) {
      sliced.emplace(name, rel.At(t));
    }
    out.MutableAt(t) = Evaluate(plan, k, sliced);
  }
  return out;
}

}  // namespace periodk

#endif  // PERIODK_ANNOTATED_EVALUATE_H_
