// Snapshot K-relations (paper Def 4.3): the *abstract model*.  A snapshot
// K-relation maps every time point of a finite time domain to a
// K-relation; queries are evaluated per snapshot (Def 4.4), which makes
// the model snapshot-reducible by construction.
#ifndef PERIODK_ANNOTATED_SNAPSHOT_K_RELATION_H_
#define PERIODK_ANNOTATED_SNAPSHOT_K_RELATION_H_

#include <cassert>
#include <string>
#include <vector>

#include "annotated/k_relation.h"
#include "temporal/interval.h"

namespace periodk {

template <Semiring K>
class SnapshotKRelation {
 public:
  SnapshotKRelation(K semiring, TimeDomain domain)
      : semiring_(std::move(semiring)),
        domain_(domain),
        snapshots_(static_cast<size_t>(domain.size()),
                   KRelation<K>(semiring_)) {}

  const K& semiring() const { return semiring_; }
  const TimeDomain& domain() const { return domain_; }

  /// The timeslice operator tau_T(R) = R(T).
  const KRelation<K>& At(TimePoint t) const {
    assert(domain_.Contains(t));
    return snapshots_[static_cast<size_t>(t - domain_.tmin)];
  }

  KRelation<K>& MutableAt(TimePoint t) {
    assert(domain_.Contains(t));
    return snapshots_[static_cast<size_t>(t - domain_.tmin)];
  }

  /// Convenience: asserts tuple `t` with annotation `v` into every
  /// snapshot within `valid` (how period tables are loaded in tests).
  void AddDuring(const Row& t, const Interval& valid,
                 const typename K::Value& v) {
    for (TimePoint p = valid.begin; p < valid.end; ++p) {
      MutableAt(p).Add(t, v);
    }
  }

  bool Equal(const SnapshotKRelation& other) const {
    if (!(domain_ == other.domain_)) return false;
    for (size_t i = 0; i < snapshots_.size(); ++i) {
      if (!snapshots_[i].Equal(other.snapshots_[i])) return false;
    }
    return true;
  }

  std::string ToString() const {
    std::string out;
    for (TimePoint t = domain_.tmin; t < domain_.tmax; ++t) {
      if (At(t).empty()) continue;
      out += StrCat(t, " ->\n", At(t).ToString(), "\n");
    }
    return out;
  }

 private:
  K semiring_;
  TimeDomain domain_;
  std::vector<KRelation<K>> snapshots_;
};

}  // namespace periodk

#endif  // PERIODK_ANNOTATED_SNAPSHOT_K_RELATION_H_
