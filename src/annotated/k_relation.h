// K-relations (paper Section 4.1, after Green et al.): relations whose
// tuples are annotated with elements of a commutative semiring K.
// Tuples annotated with 0_K are not in the relation; only finitely many
// tuples have non-zero annotations.
//
// Because PeriodSemiring<K> satisfies the same Semiring concept, a
// KRelation<PeriodSemiring<K>> *is* the paper's period K-relation
// (logical model) and shares all the generic algebra below.
#ifndef PERIODK_ANNOTATED_K_RELATION_H_
#define PERIODK_ANNOTATED_K_RELATION_H_

#include <map>
#include <string>
#include <utility>

#include "common/str_util.h"
#include "common/value.h"
#include "semiring/semiring.h"

namespace periodk {

template <Semiring K>
class KRelation {
 public:
  using Annot = typename K::Value;
  using TupleMap = std::map<Row, Annot, RowLess>;

  explicit KRelation(K semiring) : semiring_(std::move(semiring)) {}

  const K& semiring() const { return semiring_; }

  /// R(t) with the convention that absent tuples map to 0_K.
  Annot At(const Row& t) const {
    auto it = tuples_.find(t);
    return it == tuples_.end() ? semiring_.Zero() : it->second;
  }

  bool Contains(const Row& t) const { return tuples_.count(t) > 0; }

  /// R(t) += v; erases the tuple if the sum is 0_K.
  void Add(const Row& t, const Annot& v) {
    if (IsZero(semiring_, v)) return;
    auto it = tuples_.find(t);
    if (it == tuples_.end()) {
      tuples_.emplace(t, v);
      return;
    }
    it->second = semiring_.Plus(it->second, v);
    if (IsZero(semiring_, it->second)) tuples_.erase(it);
  }

  /// R(t) = v (overwrite); erases the tuple if v is 0_K.
  void Set(const Row& t, const Annot& v) {
    if (IsZero(semiring_, v)) {
      tuples_.erase(t);
    } else {
      tuples_.insert_or_assign(t, v);
    }
  }

  const TupleMap& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  bool Equal(const KRelation& other) const {
    if (tuples_.size() != other.tuples_.size()) return false;
    auto it = tuples_.begin(), jt = other.tuples_.begin();
    for (; it != tuples_.end(); ++it, ++jt) {
      if (CompareRows(it->first, jt->first) != 0) return false;
      if (!semiring_.Equal(it->second, jt->second)) return false;
    }
    return true;
  }

  /// One "tuple -> annotation" line per tuple, in row order.
  std::string ToString() const {
    return JoinMapped(tuples_, "\n", [&](const auto& entry) {
      return StrCat(RowToString(entry.first), " -> ",
                    semiring_.ToString(entry.second));
    });
  }

 private:
  K semiring_;
  TupleMap tuples_;
};

}  // namespace periodk

#endif  // PERIODK_ANNOTATED_K_RELATION_H_
