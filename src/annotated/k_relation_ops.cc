#include "annotated/k_relation_ops.h"

#include <map>

#include "common/status.h"

namespace periodk {

namespace {

struct GroupState {
  int64_t star_count = 0;
  std::vector<AggState> states;
};

}  // namespace

KRelation<NatSemiring> BagAggregate(const KRelation<NatSemiring>& r,
                                    const std::vector<int>& group_cols,
                                    const std::vector<BagAggSpec>& aggs) {
  std::map<Row, GroupState, RowLess> groups;
  for (const auto& [t, mult] : r.tuples()) {
    Row key;
    key.reserve(group_cols.size());
    for (int c : group_cols) key.push_back(t[static_cast<size_t>(c)]);
    GroupState& g = groups[key];
    if (g.states.empty()) g.states.resize(aggs.size());
    g.star_count += mult;
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].func == AggFunc::kCountStar) continue;
      g.states[i].Accumulate(t[static_cast<size_t>(aggs[i].column)], mult);
    }
  }
  // Aggregation without grouping returns a row even for empty input.
  if (group_cols.empty() && groups.empty()) {
    GroupState& g = groups[Row{}];
    g.states.resize(aggs.size());
  }
  KRelation<NatSemiring> out(r.semiring());
  for (const auto& [key, g] : groups) {
    Row t = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      t.push_back(g.states[i].Finalize(aggs[i].func, g.star_count));
    }
    out.Add(t, 1);
  }
  return out;
}

KRelation<NatSemiring> BagDistinct(const KRelation<NatSemiring>& r) {
  KRelation<NatSemiring> out(r.semiring());
  for (const auto& [t, mult] : r.tuples()) {
    (void)mult;
    out.Set(t, 1);
  }
  return out;
}

}  // namespace periodk
