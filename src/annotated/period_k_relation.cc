#include "annotated/period_k_relation.h"

namespace periodk {

PeriodKRelation<NatSemiring> SnapshotAggregate(
    const PeriodKRelation<NatSemiring>& r,
    const std::vector<int>& group_cols, const std::vector<BagAggSpec>& aggs) {
  const PeriodSemiring<NatSemiring>& nt = r.semiring();
  const TimeDomain& dom = nt.domain();
  std::map<Row, TemporalElement<NatSemiring>, RowLess> raw;
  for (TimePoint t = dom.tmin; t < dom.tmax; ++t) {
    KRelation<NatSemiring> snapshot = TimesliceRelation(r, t);
    KRelation<NatSemiring> agg = BagAggregate(snapshot, group_cols, aggs);
    for (const auto& [tuple, mult] : agg.tuples()) {
      raw[tuple].Add(Interval(t, t + 1), mult);
    }
  }
  PeriodKRelation<NatSemiring> out(nt);
  for (auto& [tuple, te] : raw) {
    out.Set(tuple, Coalesce(nt.base(), te));
  }
  return out;
}

}  // namespace periodk
