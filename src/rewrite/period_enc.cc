#include "rewrite/period_enc.h"

#include "common/status.h"

namespace periodk {

Schema EncodedSchema(const Schema& snapshot_schema) {
  Schema schema = snapshot_schema;
  schema.Append(Column(kBeginColumn));
  schema.Append(Column(kEndColumn));
  return schema;
}

Relation PeriodEnc(const PeriodKRelation<NatSemiring>& r,
                   const Schema& snapshot_schema) {
  Relation out(EncodedSchema(snapshot_schema));
  for (const auto& [tuple, te] : r.tuples()) {
    if (tuple.size() != snapshot_schema.size()) {
      throw EngineError("PeriodEnc: tuple arity does not match schema");
    }
    for (const auto& [interval, mult] : te.entries()) {
      for (int64_t m = 0; m < mult; ++m) {
        Row row = tuple;
        row.push_back(Value::Int(interval.begin));
        row.push_back(Value::Int(interval.end));
        out.AddRow(std::move(row));
      }
    }
  }
  return out;
}

PeriodKRelation<NatSemiring> PeriodDec(const Relation& r,
                                       const TimeDomain& domain) {
  if (r.schema().size() < 2) {
    throw EngineError("PeriodDec: input is not period-encoded");
  }
  size_t nattr = r.schema().size() - 2;
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, domain);
  std::map<Row, TemporalElement<NatSemiring>, RowLess> raw;
  for (const Row& row : r.rows()) {
    TimePoint b = row[nattr].AsInt();
    TimePoint e = row[nattr + 1].AsInt();
    if (b >= e) continue;
    Row tuple(row.begin(), row.begin() + static_cast<long>(nattr));
    raw[tuple].Add(Interval(b, e), 1);
  }
  PeriodKRelation<NatSemiring> out(nt);
  for (auto& [tuple, te] : raw) {
    out.Set(tuple, Coalesce(n, te));
  }
  return out;
}

bool SnapshotEquivalentEncodings(const Relation& a, const Relation& b,
                                 const TimeDomain& domain) {
  return PeriodDec(a, domain).Equal(PeriodDec(b, domain));
}

}  // namespace periodk
