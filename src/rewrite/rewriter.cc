#include "rewrite/rewriter.h"

#include "common/status.h"
#include "common/str_util.h"
#include "ra/cost_model.h"
#include "rewrite/period_enc.h"

namespace periodk {

const char* SnapshotSemanticsName(SnapshotSemantics semantics) {
  switch (semantics) {
    case SnapshotSemantics::kPeriodK:
      return "period-K (ours)";
    case SnapshotSemantics::kAlignment:
      return "alignment (PG-Nat-like)";
    case SnapshotSemantics::kIntervalPreservation:
      return "interval preservation (ATSQL-like)";
    case SnapshotSemantics::kTeradata:
      return "statement modifiers (Teradata-like)";
  }
  return "?";
}

namespace {

std::vector<int> Iota(size_t n, int start = 0) {
  std::vector<int> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = start + static_cast<int>(i);
  return out;
}

/// Projection that keeps columns `keep` (by index) with their names.
PlanPtr Reorder(PlanPtr child, const std::vector<int>& keep) {
  return MakeProjectColumns(std::move(child), keep);
}

}  // namespace

SnapshotRewriter::SnapshotRewriter(TimeDomain domain, RewriteOptions options,
                                   std::map<std::string, PlanPtr> encoded_tables,
                                   const CostModel* cost_model)
    : domain_(domain),
      options_(options),
      encoded_tables_(std::move(encoded_tables)),
      cost_model_(cost_model) {}

PlanPtr SnapshotRewriter::Rewrite(const PlanPtr& query) const {
  // Join reorder runs on the *snapshot* query, before REWR: the
  // snapshot plan is where commutative join clusters are still plain
  // (REWR interleaves coalescing and endpoint projections), and the
  // cost model maps snapshot scans to stored-table statistics by
  // column name.
  PlanPtr q = query;
  if (cost_model_ != nullptr && options_.use_cost_model) {
    q = ReorderJoins(q, *cost_model_);
  }
  PlanPtr rewritten = RewriteNode(q);
  if (options_.semantics != SnapshotSemantics::kPeriodK ||
      !options_.final_coalesce) {
    return rewritten;
  }
  if (rewritten->kind == PlanKind::kCoalesce) return rewritten;
  return MakeCoalesce(std::move(rewritten), options_.coalesce_impl);
}

PlanPtr SnapshotRewriter::MaybeCoalesce(PlanPtr p) const {
  // Baselines never coalesce (their encodings are not unique); with
  // hoisting, Lemma 6.1 lets us drop all intermediate coalescing steps.
  if (options_.semantics != SnapshotSemantics::kPeriodK) return p;
  if (options_.hoist_coalesce) return p;
  return MakeCoalesce(std::move(p), options_.coalesce_impl);
}

PlanPtr SnapshotRewriter::RewriteNode(const PlanPtr& q) const {
  switch (q->kind) {
    case PlanKind::kScan:
      return RewriteScan(q);
    case PlanKind::kConstant:
      return RewriteConstant(q);
    case PlanKind::kSelect:
      // REWR(sigma_theta(Q)) = C(sigma_theta(REWR(Q))); theta references
      // only the unchanged non-temporal prefix.
      return MaybeCoalesce(MakeSelect(RewriteNode(q->left), q->predicate));
    case PlanKind::kProject: {
      // REWR(Pi_A(Q)) = C(Pi_{A, a_begin, a_end}(REWR(Q))).
      PlanPtr child = RewriteNode(q->left);
      int b = static_cast<int>(child->schema.size()) - 2;
      std::vector<ExprPtr> exprs = q->exprs;
      exprs.push_back(Col(b, kBeginColumn));
      exprs.push_back(Col(b + 1, kEndColumn));
      std::vector<Column> names = q->schema.columns();
      names.emplace_back(kBeginColumn);
      names.emplace_back(kEndColumn);
      return MaybeCoalesce(
          MakeProject(std::move(child), std::move(exprs), std::move(names)));
    }
    case PlanKind::kJoin:
      return RewriteJoin(q);
    case PlanKind::kUnionAll:
      // REWR(Q1 union Q2) = C(REWR(Q1) union REWR(Q2)).
      return MaybeCoalesce(
          MakeUnionAll(RewriteNode(q->left), RewriteNode(q->right)));
    case PlanKind::kExceptAll:
      return RewriteDifference(q);
    case PlanKind::kAggregate:
      return RewriteAggregate(q);
    case PlanKind::kDistinct:
      return RewriteDistinct(q);
    default:
      throw EngineError(
          StrCat("operator not supported under snapshot semantics: ",
                 PlanKindName(q->kind)));
  }
}

PlanPtr SnapshotRewriter::RewriteScan(const PlanPtr& q) const {
  auto it = encoded_tables_.find(q->table);
  if (it != encoded_tables_.end()) {
    if (it->second->schema.size() != q->schema.size() + 2) {
      throw EngineError(StrCat("encoded table ", q->table,
                               " has unexpected arity"));
    }
    return it->second;
  }
  return MakeScan(q->table, EncodedSchema(q->schema));
}

PlanPtr SnapshotRewriter::RewriteConstant(const PlanPtr& q) const {
  // A constant snapshot relation holds at every point of the domain.
  Relation encoded(EncodedSchema(q->constant->schema()));
  for (const Row& row : q->constant->rows()) {
    Row r = row;
    r.push_back(Value::Int(domain_.tmin));
    r.push_back(Value::Int(domain_.tmax));
    encoded.AddRow(std::move(r));
  }
  return MakeConstant(std::move(encoded));
}

PlanPtr SnapshotRewriter::RewriteJoin(const PlanPtr& q) const {
  // REWR(Q1 join_theta Q2) =
  //   C(Pi_{sch, greatest(b1,b2), least(e1,e2)}(
  //       REWR(Q1) join_{theta' and overlaps} REWR(Q2))).
  PlanPtr left = RewriteNode(q->left);
  PlanPtr right = RewriteNode(q->right);
  int nl = static_cast<int>(q->left->schema.size());
  int nr = static_cast<int>(q->right->schema.size());
  int lb = nl, le = nl + 1;                    // left endpoints
  int rb = nl + 2 + nr, re = nl + 2 + nr + 1;  // right endpoints
  // Shift the original predicate's right-side references past the left
  // temporal columns.
  ExprPtr shifted = RemapColumns(
      q->predicate, [nl](int c) { return c < nl ? c : c + 2; });
  ExprPtr overlaps =
      And(Lt(Col(lb, "l.a_begin"), Col(re, "r.a_end")),
          Lt(Col(rb, "r.a_begin"), Col(le, "l.a_end")));
  PlanPtr join = MakeJoin(std::move(left), std::move(right),
                          And(shifted, overlaps));
  std::vector<ExprPtr> exprs;
  std::vector<Column> names;
  for (int i = 0; i < nl; ++i) {
    exprs.push_back(Col(i, q->schema.at(static_cast<size_t>(i)).name));
    names.push_back(q->schema.at(static_cast<size_t>(i)));
  }
  for (int i = 0; i < nr; ++i) {
    exprs.push_back(
        Col(nl + 2 + i, q->schema.at(static_cast<size_t>(nl + i)).name));
    names.push_back(q->schema.at(static_cast<size_t>(nl + i)));
  }
  exprs.push_back(Func(ScalarFunc::kGreatest, {Col(lb), Col(rb)}));
  names.emplace_back(kBeginColumn);
  exprs.push_back(Func(ScalarFunc::kLeast, {Col(le), Col(re)}));
  names.emplace_back(kEndColumn);
  return MaybeCoalesce(
      MakeProject(std::move(join), std::move(exprs), std::move(names)));
}

PlanPtr SnapshotRewriter::RewriteDifference(const PlanPtr& q) const {
  PlanPtr left = RewriteNode(q->left);
  PlanPtr right = RewriteNode(q->right);
  std::vector<int> group = Iota(q->schema.size());
  PlanPtr left_frags = MakeSplit(left, right, group);
  PlanPtr right_frags = MakeSplit(right, left, group);
  switch (options_.semantics) {
    case SnapshotSemantics::kPeriodK:
      // REWR(Q1 - Q2) = C(N_sch(R1, R2) -bag- N_sch(R2, R1)): aligned
      // fragments cancel one-for-one => snapshot bag difference (monus).
      return MaybeCoalesce(
          MakeExceptAll(std::move(left_frags), std::move(right_frags)));
    case SnapshotSemantics::kAlignment:
      // PG-Nat difference has *set* semantics: duplicates collapse and a
      // single right tuple erases the left tuple entirely (BD bug).
      return MakeAntiJoin(MakeDistinct(std::move(left_frags)),
                          std::move(right_frags));
    case SnapshotSemantics::kIntervalPreservation:
      // NOT EXISTS flavour: keeps left duplicates but ignores right
      // multiplicities (BD bug).
      return MakeAntiJoin(std::move(left_frags), std::move(right_frags));
    case SnapshotSemantics::kTeradata:
      // Teradata's rewriting-based implementation does not support
      // snapshot difference (paper Table 1: N/A).
      throw EngineError(
          "Teradata semantics does not support snapshot difference");
  }
  throw EngineError("unknown snapshot semantics");
}

PlanPtr SnapshotRewriter::RewriteAggregate(const PlanPtr& q) const {
  PlanPtr child = RewriteNode(q->left);
  int child_arity = static_cast<int>(child->schema.size());
  int cb = child_arity - 2;
  size_t n_groups = q->exprs.size();
  bool global = n_groups == 0;
  bool ours = options_.semantics == SnapshotSemantics::kPeriodK;
  bool teradata = options_.semantics == SnapshotSemantics::kTeradata;
  // The union-with-neutral-tuple trick is only needed on the unfused
  // path; the fused operator emits gap rows natively.  Teradata's
  // native operators map to the fused operator with its inverted gap
  // behaviour (gaps for groups, none for global aggregation).
  bool unfused = !(ours && options_.fuse_aggregation) && !teradata;
  bool add_gap_tuple = ours && global && unfused;

  // Normalize: materialize group expressions and aggregate arguments as
  // columns (group1..groupG, arg1..argK, a_begin, a_end).  count(*) is
  // rewritten to count(lit 1) on the unfused path so that the neutral
  // tuple (all NULLs) is not counted -- Fig. 4's count(*) rule.
  std::vector<ExprPtr> proj;
  std::vector<Column> proj_names;
  for (size_t g = 0; g < n_groups; ++g) {
    proj.push_back(q->exprs[g]);
    proj_names.push_back(q->schema.at(g));
  }
  std::vector<AggExpr> aggs;  // over the normalized projection
  for (size_t a = 0; a < q->aggs.size(); ++a) {
    AggExpr agg = q->aggs[a];
    if (agg.func == AggFunc::kCountStar) {
      if (add_gap_tuple) {
        agg.func = AggFunc::kCount;
        agg.arg = LitInt(1);
      } else {
        aggs.push_back(agg);
        continue;
      }
    }
    int arg_col = static_cast<int>(proj.size());
    proj.push_back(agg.arg);
    proj_names.emplace_back(StrCat("agg_arg_", a));
    agg.arg = Col(arg_col, proj_names.back().name);
    aggs.push_back(std::move(agg));
  }
  size_t n_args = proj.size() - n_groups;
  proj.push_back(Col(cb, kBeginColumn));
  proj_names.emplace_back(kBeginColumn);
  proj.push_back(Col(cb + 1, kEndColumn));
  proj_names.emplace_back(kEndColumn);
  PlanPtr normalized =
      MakeProject(std::move(child), std::move(proj), std::move(proj_names));
  std::vector<int> group_cols = Iota(n_groups);

  if (!unfused) {
    // Fused split+aggregate with optional pre-aggregation (Sec. 9).
    std::vector<AggExpr> named = aggs;
    for (size_t a = 0; a < named.size(); ++a) {
      named[a].name = q->schema.at(n_groups + a).name;
    }
    bool gap_rows = teradata ? !global : (global && ours);
    return MaybeCoalesce(MakeSplitAggregate(
        std::move(normalized), group_cols, std::move(named), gap_rows,
        domain_, options_.pre_aggregate));
  }

  PlanPtr split_input = normalized;
  if (add_gap_tuple) {
    // REWR(gamma_f(A)(Q)) unions {(null, ..., Tmin, Tmax)} below the
    // split so gaps produce fragments; count counts 0 over them and the
    // other aggregates yield NULL.
    Row neutral(n_groups + n_args, Value::Null());
    neutral.push_back(Value::Int(domain_.tmin));
    neutral.push_back(Value::Int(domain_.tmax));
    Relation constant(normalized->schema);
    constant.AddRow(std::move(neutral));
    split_input = MakeUnionAll(normalized, MakeConstant(std::move(constant)));
  }
  PlanPtr split = MakeSplit(split_input, normalized, group_cols);

  // Standard aggregation grouping on (groups..., a_begin, a_end).
  int sb = static_cast<int>(n_groups + n_args);
  std::vector<ExprPtr> group_exprs;
  std::vector<Column> group_names;
  for (size_t g = 0; g < n_groups; ++g) {
    group_exprs.push_back(Col(static_cast<int>(g)));
    group_names.push_back(q->schema.at(g));
  }
  group_exprs.push_back(Col(sb, kBeginColumn));
  group_names.emplace_back(kBeginColumn);
  group_exprs.push_back(Col(sb + 1, kEndColumn));
  group_names.emplace_back(kEndColumn);
  std::vector<AggExpr> named = aggs;
  for (size_t a = 0; a < named.size(); ++a) {
    named[a].name = q->schema.at(n_groups + a).name;
  }
  PlanPtr agg = MakeAggregate(std::move(split), std::move(group_exprs),
                              std::move(group_names), std::move(named));
  // Reorder (groups..., b, e, aggs...) -> (groups..., aggs..., b, e).
  std::vector<int> order;
  for (size_t g = 0; g < n_groups; ++g) order.push_back(static_cast<int>(g));
  for (size_t a = 0; a < aggs.size(); ++a) {
    order.push_back(static_cast<int>(n_groups + 2 + a));
  }
  order.push_back(static_cast<int>(n_groups));
  order.push_back(static_cast<int>(n_groups) + 1);
  return MaybeCoalesce(Reorder(std::move(agg), order));
}

namespace {

/// Column remap for expressions that move below a slice dropping
/// (begin_col, end_col): every surviving column shifts down past the
/// dropped ones.  Only called on expressions already known to avoid
/// both endpoint columns.
int DropShift(int c, int begin_col, int end_col) {
  return c - (c > begin_col ? 1 : 0) - (c > end_col ? 1 : 0);
}

/// Pushes tau_{t, (begin_col, end_col)} into `node` — the endpoint
/// columns are positions in node's *output* schema, trailing or not
/// (non-trailing positions arise below the encoded-table projection of
/// a period table that stores its interval columns elsewhere).
PlanPtr PushTimesliceInto(TimePoint t, const PlanPtr& node, int begin_col,
                          int end_col) {
  int arity = static_cast<int>(node->schema.size());
  switch (node->kind) {
    case PlanKind::kCoalesce:
      // tau_t(C(X)) = tau_t(X): skip the coalesce entirely.  C always
      // merges on the trailing two columns, so the identity only
      // applies when the slice reads exactly those.
      if (begin_col == arity - 2 && end_col == arity - 1) {
        return PushTimesliceInto(t, node->left, begin_col, end_col);
      }
      break;
    case PlanKind::kSelect:
      if (TimesliceCommutesWithSelect(*node, begin_col, end_col)) {
        // The slice below removes the endpoint columns, so the
        // predicate's surviving references shift down past them.
        ExprPtr pred = RemapColumns(node->predicate, [&](int c) {
          return DropShift(c, begin_col, end_col);
        });
        return MakeSelect(
            PushTimesliceInto(t, node->left, begin_col, end_col),
            std::move(pred));
      }
      break;
    case PlanKind::kProject: {
      int child_begin = -1;
      int child_end = -1;
      if (TimesliceCommutesWithProject(*node, begin_col, end_col,
                                       &child_begin, &child_end)) {
        // Drop the two endpoint expressions and remap the rest onto
        // the sliced child (which lost columns child_begin/child_end).
        std::vector<ExprPtr> exprs;
        std::vector<Column> names;
        for (int i = 0; i < arity; ++i) {
          if (i == begin_col || i == end_col) continue;
          exprs.push_back(
              RemapColumns(node->exprs[static_cast<size_t>(i)], [&](int c) {
                return DropShift(c, child_begin, child_end);
              }));
          names.push_back(node->schema.at(static_cast<size_t>(i)));
        }
        return MakeProject(
            PushTimesliceInto(t, node->left, child_begin, child_end),
            std::move(exprs), std::move(names));
      }
      break;
    }
    default:
      break;
  }
  return MakeTimesliceAt(node, t, begin_col, end_col);
}

}  // namespace

PlanPtr PushDownTimeslice(const PlanPtr& plan) {
  if (plan == nullptr || plan->kind != PlanKind::kTimeslice) return plan;
  auto [begin_col, end_col] = ResolveSliceColumns(*plan);
  return PushTimesliceInto(plan->slice_time, plan->left, begin_col, end_col);
}

PlanPtr SnapshotRewriter::RewriteDistinct(const PlanPtr& q) const {
  // Snapshot DISTINCT: align value-equivalent tuples, collapse
  // duplicates per fragment.
  PlanPtr child = RewriteNode(q->left);
  std::vector<int> group = Iota(q->schema.size());
  PlanPtr split = MakeSplit(child, child, group);
  return MaybeCoalesce(MakeDistinct(std::move(split)));
}

}  // namespace periodk
