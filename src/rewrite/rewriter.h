// REWR (paper Fig. 4): reduces a query with snapshot semantics over
// N^T-relations to an ordinary multiset query over PERIODENC-encoded
// period relations.  The input plan is expressed over *snapshot*
// schemas (no temporal columns); the output plan is expressed over
// encoded relations whose last two columns are the interval endpoints.
//
// The rewriter implements three semantics:
//
//  * kPeriodK -- the paper's provably correct semantics: coalescing for
//    a unique encoding, split-based difference with bag semantics
//    (fixes the BD bug), aggregation with gap rows via the
//    union-with-neutral-tuple rule or the fused split+aggregate
//    operator (fixes the AG bug).
//  * kAlignment -- models the PG-Nat comparator [16, 18]: align
//    (split) then apply standard operators; *set*-semantics difference
//    (BD bug), no gap rows (AG bug), no coalescing (non-unique
//    encoding), no pre-aggregation.
//  * kIntervalPreservation -- models ATSQL [9]: like alignment for
//    RA+, difference as bag-preserving NOT EXISTS (BD bug), no gap rows
//    (AG bug), non-unique encoding.
//  * kTeradata -- models Teradata's statement modifiers [45, 2]: gap
//    rows *with* grouping but not without (the inverse of
//    snapshot-reducibility; still the AG bug), no snapshot difference
//    (N/A in the paper's Table 1), optional coalescing not applied
//    (non-unique encoding).
//
// Options toggle the Section 9 optimizations for the ablation study:
// coalesce hoisting (one final C instead of one per operator, justified
// by Lemma 6.1) and pre-aggregation inside split.
#ifndef PERIODK_REWRITE_REWRITER_H_
#define PERIODK_REWRITE_REWRITER_H_

#include <map>
#include <string>

#include "ra/plan.h"
#include "temporal/interval.h"

namespace periodk {

enum class SnapshotSemantics {
  kPeriodK,
  kAlignment,
  kIntervalPreservation,
  kTeradata,
};

const char* SnapshotSemanticsName(SnapshotSemantics semantics);

struct RewriteOptions {
  SnapshotSemantics semantics = SnapshotSemantics::kPeriodK;
  /// Apply coalescing once at the top instead of after every operator.
  bool hoist_coalesce = true;
  /// Use the fused split+aggregate operator instead of split followed by
  /// a standard aggregation.
  bool fuse_aggregation = true;
  /// Pre-aggregate per (group, begin, end) inside the fused operator.
  bool pre_aggregate = true;
  /// Apply the final coalesce that makes the output encoding unique.
  bool final_coalesce = true;
  CoalesceImpl coalesce_impl = CoalesceImpl::kNative;
  /// Push the kTimeslice of a SEQ VT AS OF query below the final
  /// coalesce and through selections/projections toward the scans (see
  /// PushDownTimeslice), so point-in-time queries reach the timeline
  /// index before materializing anything.  Plan-shaping: part of the
  /// middleware's plan-cache key.
  bool push_down_timeslice = true;
  /// Intra-query parallelism for execution (not a rewrite knob, but
  /// plumbed here so middleware callers configure one options struct):
  /// partitioned operators fan out to this many threads; 1 keeps
  /// execution sequential and bit-identical.  Does not change the
  /// produced plan, so it is excluded from the plan-cache key.
  int num_threads = 1;
  /// Serve timeslices from lazily built per-table timeline indexes
  /// (engine/timeline_index.h).  Like num_threads, an execution knob:
  /// it never changes the produced plan (and is excluded from the
  /// plan-cache key); false keeps the O(table) scan path bit for bit.
  bool use_timeline_index = true;
  /// Let the cost model (ra/cost_model.h) shape the plan: commutative
  /// join clusters are reordered by estimated cardinality before REWR
  /// and tiny overlap joins are marked for the nested loop.  Plan
  /// *shaping* — reordering changes row order — so this is part of the
  /// middleware's plan-cache key; false reproduces today's structural
  /// plans bit-identically.  (The executor's row-identical gates are
  /// the separate ExecOptions::use_cost_model.)
  bool use_cost_model = true;
};

class CostModel;

class SnapshotRewriter {
 public:
  /// `encoded_tables` maps a table name appearing in Scan nodes to the
  /// plan producing its encoding (used by the middleware when a period
  /// table stores its interval columns somewhere other than the last
  /// two positions).  Unmapped scans default to the table itself with
  /// (a_begin, a_end) appended.
  ///
  /// `cost_model`, when non-null and options.use_cost_model is set,
  /// drives a join-reorder pre-pass over the snapshot query (the
  /// caller keeps the model alive for the rewriter's lifetime; the
  /// middleware builds one per query over its pinned snapshot).
  SnapshotRewriter(TimeDomain domain, RewriteOptions options = {},
                   std::map<std::string, PlanPtr> encoded_tables = {},
                   const CostModel* cost_model = nullptr);

  /// Rewrites a snapshot query.  Result plan evaluates to the
  /// PERIODENC encoding of the query's N^T result (for kPeriodK; the
  /// baseline semantics yield their respective buggy encodings).
  PlanPtr Rewrite(const PlanPtr& query) const;

  const TimeDomain& domain() const { return domain_; }
  const RewriteOptions& options() const { return options_; }

 private:
  PlanPtr RewriteNode(const PlanPtr& q) const;
  PlanPtr MaybeCoalesce(PlanPtr p) const;
  PlanPtr RewriteScan(const PlanPtr& q) const;
  PlanPtr RewriteConstant(const PlanPtr& q) const;
  PlanPtr RewriteJoin(const PlanPtr& q) const;
  PlanPtr RewriteDifference(const PlanPtr& q) const;
  PlanPtr RewriteAggregate(const PlanPtr& q) const;
  PlanPtr RewriteDistinct(const PlanPtr& q) const;

  TimeDomain domain_;
  RewriteOptions options_;
  std::map<std::string, PlanPtr> encoded_tables_;
  const CostModel* cost_model_ = nullptr;
};

/// Pushes a top-level kTimeslice (the plan shape of SEQ VT AS OF t)
/// toward the leaves, one legal step at a time:
///
///   * tau_t(C(X))       = tau_t(X)            -- coalescing preserves
///     every snapshot (Def 8.2: C re-encodes the same N^T-relation, and
///     equivalent encodings have equal timeslices), so the coalesce is
///     dead work under a timeslice;
///   * tau_t(sigma_p(X)) = sigma_p(tau_t(X))   when p ignores the
///     endpoint columns (TimesliceCommutesWithSelect);
///   * tau_t(pi_E(X))    = pi_E'(tau_t(X))     when E passes the
///     endpoints through untouched (TimesliceCommutesWithProject); E'
///     is E without its two endpoint expressions.
///
/// Stops at the first non-commuting node.  The result is bag-equal to
/// the input plan (row order may differ when a coalesce is elided) and
/// has the same output schema.  Plans whose root is not kTimeslice are
/// returned unchanged.
PlanPtr PushDownTimeslice(const PlanPtr& plan);

}  // namespace periodk

#endif  // PERIODK_REWRITE_REWRITER_H_
