// PERIODENC / PERIODENC^{-1} (paper Def 8.1): the bridge between the
// logical model (N^T-relations) and the implementation (SQL period
// relations, i.e. engine::Relation with the interval endpoints in the
// last two columns).  A tuple annotated with {I1 -> m1, I2 -> m2, ...}
// becomes m1 duplicates carrying I1's endpoints, m2 duplicates carrying
// I2's endpoints, and so on.
#ifndef PERIODK_REWRITE_PERIOD_ENC_H_
#define PERIODK_REWRITE_PERIOD_ENC_H_

#include "annotated/period_k_relation.h"
#include "engine/relation.h"
#include "semiring/nat_semiring.h"

namespace periodk {

/// Names used for the appended temporal attributes.
inline constexpr const char* kBeginColumn = "a_begin";
inline constexpr const char* kEndColumn = "a_end";

/// Appends "a_begin"/"a_end" columns to a snapshot schema.
Schema EncodedSchema(const Schema& snapshot_schema);

/// PERIODENC: one row per (interval -> multiplicity m) entry, duplicated
/// m times.  `snapshot_schema` names the non-temporal attributes.
Relation PeriodEnc(const PeriodKRelation<NatSemiring>& r,
                   const Schema& snapshot_schema);

/// PERIODENC^{-1}: interprets each row as a singleton interval with
/// multiplicity 1, sums per tuple, and coalesces -- yielding the unique
/// N^T-relation that is snapshot-equivalent to the encoding.
PeriodKRelation<NatSemiring> PeriodDec(const Relation& r,
                                       const TimeDomain& domain);

/// True iff the two encoded relations represent snapshot-equivalent
/// N^T-relations (equal coalesced decodings).
bool SnapshotEquivalentEncodings(const Relation& a, const Relation& b,
                                 const TimeDomain& domain);

}  // namespace periodk

#endif  // PERIODK_REWRITE_PERIOD_ENC_H_
