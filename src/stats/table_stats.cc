#include "stats/table_stats.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/str_util.h"
#include "engine/column.h"

namespace periodk {

namespace {

/// Distinct non-null values of column `c`; exact.  Columnar fast-keyable
/// columns go through the packed-key machinery (dictionary codes keep
/// string comparisons out of the loop); everything else falls back to a
/// Value set.
int64_t CountDistinct(const Relation& rel, size_t c) {
  const size_t n = rel.size();
  if (n == 0) return 0;
  if (rel.is_columnar() && FastKeyable(rel.col(c))) {
    std::vector<uint64_t> packed;
    if (BuildPackedKeys(rel.columns(), {static_cast<int>(c)}, n, &packed)) {
      const ColumnData& col = rel.col(c);
      PackedKeyMap map(/*width=*/2, /*expected=*/n);
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) continue;
        map.FindOrInsert(&packed[i * 2]);
      }
      return static_cast<int64_t>(map.size());
    }
  }
  std::unordered_set<Value, ValueHash> seen;
  seen.reserve(n);
  if (rel.is_columnar()) {
    const ColumnData& col = rel.col(c);
    for (size_t i = 0; i < n; ++i) {
      if (!col.IsNull(i)) seen.insert(col.Get(i));
    }
  } else {
    for (const Row& row : rel.rows()) {
      if (!row[c].is_null()) seen.insert(row[c]);
    }
  }
  return static_cast<int64_t>(seen.size());
}

}  // namespace

std::shared_ptr<const TableStats> TableStats::Collect(
    std::shared_ptr<const Relation> source, int begin_col, int end_col) {
  std::shared_ptr<TableStats> stats(new TableStats());
  const Relation& rel = *source;
  const size_t n = rel.size();
  const size_t arity = rel.schema().size();
  stats->row_count_ = static_cast<int64_t>(n);
  stats->names_.reserve(arity);
  for (size_t c = 0; c < arity; ++c) stats->names_.push_back(rel.schema().at(c).name);
  stats->columns_.resize(arity);

  for (size_t c = 0; c < arity; ++c) {
    ColumnStats& cs = stats->columns_[c];
    cs.distinct = CountDistinct(rel, c);
    if (rel.is_columnar()) {
      const ColumnData& col = rel.col(c);
      cs.null_count = static_cast<int64_t>(col.null_count());
      if (col.tag() == ColumnTag::kInt) {
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(i)) continue;
          const int64_t v = col.ints()[i];
          if (!cs.has_int_range) {
            cs.has_int_range = true;
            cs.min_int = cs.max_int = v;
          } else {
            cs.min_int = std::min(cs.min_int, v);
            cs.max_int = std::max(cs.max_int, v);
          }
        }
      } else if (col.tag() == ColumnTag::kMixed) {
        for (const Value& v : col.mixed()) {
          const int64_t* i = v.TryInt();
          if (i == nullptr) continue;
          if (!cs.has_int_range) {
            cs.has_int_range = true;
            cs.min_int = cs.max_int = *i;
          } else {
            cs.min_int = std::min(cs.min_int, *i);
            cs.max_int = std::max(cs.max_int, *i);
          }
        }
      }
    } else {
      for (const Row& row : rel.rows()) {
        const Value& v = row[c];
        if (v.is_null()) {
          ++cs.null_count;
          continue;
        }
        const int64_t* i = v.TryInt();
        if (i == nullptr) continue;
        if (!cs.has_int_range) {
          cs.has_int_range = true;
          cs.min_int = cs.max_int = *i;
        } else {
          cs.min_int = std::min(cs.min_int, *i);
          cs.max_int = std::max(cs.max_int, *i);
        }
      }
    }
  }

  if (begin_col >= 0 && end_col >= 0 &&
      static_cast<size_t>(begin_col) < arity &&
      static_cast<size_t>(end_col) < arity && begin_col != end_col) {
    stats->begin_col_ = begin_col;
    stats->end_col_ = end_col;
    auto record = [&stats](const Value& b, const Value& e) {
      const int64_t* bi = b.TryInt();
      const int64_t* ei = e.TryInt();
      if (bi == nullptr || ei == nullptr || *bi >= *ei) return;
      const int64_t len = *ei - *bi;
      if (stats->interval_count_ == 0) {
        stats->min_begin_ = *bi;
        stats->max_end_ = *ei;
      } else {
        stats->min_begin_ = std::min(stats->min_begin_, *bi);
        stats->max_end_ = std::max(stats->max_end_, *ei);
      }
      ++stats->interval_count_;
      stats->length_sum_ += len;
      int bucket = 0;
      for (int64_t v = len; v > 1 && bucket < kLengthBuckets - 1; v >>= 1) {
        ++bucket;
      }
      ++stats->length_histogram_[bucket];
    };
    if (rel.is_columnar()) {
      const ColumnData& bc = rel.col(static_cast<size_t>(begin_col));
      const ColumnData& ec = rel.col(static_cast<size_t>(end_col));
      for (size_t i = 0; i < n; ++i) {
        if (bc.IsNull(i) || ec.IsNull(i)) continue;
        record(bc.Get(i), ec.Get(i));
      }
    } else {
      for (const Row& row : rel.rows()) {
        record(row[static_cast<size_t>(begin_col)],
               row[static_cast<size_t>(end_col)]);
      }
    }
  }

  stats->source_ = std::move(source);
  return stats;
}

int TableStats::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

double TableStats::AvgAliveRows() const {
  if (interval_count_ == 0) return 0.0;
  const int64_t s = std::max<int64_t>(span(), 1);
  return static_cast<double>(length_sum_) / static_cast<double>(s);
}

std::string TableStats::ToString() const {
  std::string out = StrCat("rows=", row_count_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnStats& cs = columns_[c];
    out += StrCat("\n  ", names_[c], ": nulls=", cs.null_count,
                  " distinct=", cs.distinct);
    if (cs.has_int_range) {
      out += StrCat(" range=[", cs.min_int, "..", cs.max_int, "]");
    }
  }
  if (has_period()) {
    out += StrCat("\n  period(", names_[static_cast<size_t>(begin_col_)], ", ",
                  names_[static_cast<size_t>(end_col_)],
                  "): intervals=", interval_count_, " length_sum=", length_sum_,
                  " span=[", min_begin_, "..", max_end_, ") hist=[");
    for (int b = 0; b < kLengthBuckets; ++b) {
      if (b > 0) out += ",";
      out += StrCat(length_histogram_[b]);
    }
    out += "]";
  }
  return out;
}

}  // namespace periodk
