// Per-table statistics for cost-based planning (docs/architecture.md
// §11).  A TableStats is collected in one columnar pass when a writer
// publishes a relation, stored in the Catalog as a
// shared_ptr<const TableStats> slot alongside the relation and its
// timeline index, and consumed by ra/cost_model.h at plan time.  The
// object is immutable after Collect and pinned to the exact Relation
// object it was built from (BuiltFor, mirroring TimelineIndex), so a
// stats handle can never describe a different table version than the
// relation published with it.
#ifndef PERIODK_STATS_TABLE_STATS_H_
#define PERIODK_STATS_TABLE_STATS_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/relation.h"
#include "temporal/interval.h"

namespace periodk {

/// Statistics for one column: NULL count, exact distinct count over the
/// non-null values (packed-key counting reuses the dictionary/key
/// machinery of engine/column.h), and the observed integer range when
/// the column holds integers.
struct ColumnStats {
  int64_t null_count = 0;
  /// Distinct non-null values (exact; 0 for an all-null column).
  int64_t distinct = 0;
  /// True when at least one non-null integer was observed; min_int /
  /// max_int then bound the integer values (other types, if any, are
  /// not covered -- good enough for range-selectivity estimates).
  bool has_int_range = false;
  int64_t min_int = 0;
  int64_t max_int = 0;
};

/// Immutable statistics snapshot of one relation.
class TableStats {
 public:
  /// log2 interval-length histogram buckets: bucket i counts intervals
  /// with floor(log2(length)) == i, the last bucket absorbs the tail.
  static constexpr int kLengthBuckets = 16;

  /// Collects statistics over `source` in one pass.  When `begin_col` /
  /// `end_col` name the stored interval columns of a period table, the
  /// interval profile (length histogram, average length, observed
  /// domain coverage) is collected too; -1/-1 means no period columns.
  /// Ill-formed cells (non-int endpoints, begin >= end) are skipped.
  [[nodiscard]] static std::shared_ptr<const TableStats> Collect(
      std::shared_ptr<const Relation> source, int begin_col = -1,
      int end_col = -1);

  /// True iff these stats were built from exactly this relation object
  /// (pointer identity, like TimelineIndex::BuiltFor).  The collected
  /// source handle is retained, so the pointer can never be reused by a
  /// different relation while the stats object is alive.
  [[nodiscard]] bool BuiltFor(const Relation* relation) const {
    return source_.get() == relation;
  }

  int64_t row_count() const { return row_count_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnStats& column(size_t i) const { return columns_[i]; }
  const std::string& column_name(size_t i) const { return names_[i]; }
  /// Index of the column with this (unqualified) name, or -1.
  int FindColumn(const std::string& name) const;

  bool has_period() const { return begin_col_ >= 0; }
  int begin_col() const { return begin_col_; }
  int end_col() const { return end_col_; }
  /// Well-formed [begin, end) intervals observed.
  int64_t interval_count() const { return interval_count_; }
  double avg_interval_length() const {
    return interval_count_ == 0
               ? 0.0
               : static_cast<double>(length_sum_) / interval_count_;
  }
  TimePoint min_begin() const { return min_begin_; }
  TimePoint max_end() const { return max_end_; }
  /// Observed endpoint span (0 when no well-formed interval).
  int64_t span() const {
    return interval_count_ == 0 ? 0 : max_end_ - min_begin_;
  }
  const std::array<int64_t, kLengthBuckets>& length_histogram() const {
    return length_histogram_;
  }
  /// Average number of rows alive at a random point of the observed
  /// span: sum of interval lengths / span.  Sizes timeline-index
  /// checkpoints and overlap-join estimates.
  double AvgAliveRows() const;

  /// Deterministic rendering (integers only -- no pointers, no
  /// unordered containers), safe for golden files.
  std::string ToString() const;

 private:
  TableStats() = default;

  std::shared_ptr<const Relation> source_;
  int64_t row_count_ = 0;
  std::vector<std::string> names_;
  std::vector<ColumnStats> columns_;

  int begin_col_ = -1;
  int end_col_ = -1;
  int64_t interval_count_ = 0;
  int64_t length_sum_ = 0;
  TimePoint min_begin_ = 0;
  TimePoint max_end_ = 0;
  std::array<int64_t, kLengthBuckets> length_histogram_{};
};

}  // namespace periodk

#endif  // PERIODK_STATS_TABLE_STATS_H_
