// Edge-case and failure-injection tests across layers: empty inputs,
// degenerate schemas, arity violations, unsupported operations inside
// snapshot blocks, and boundary time points.
#include <gtest/gtest.h>

#include "common/status.h"
#include "engine/temporal_ops.h"
#include "engine/window.h"
#include "middleware/temporal_db.h"
#include "rewrite/rewriter.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

TEST(EdgeCaseTest, WindowOnEmptyRelation) {
  Relation empty(Schema::FromNames({"g", "t", "d"}));
  WindowSpec spec{{0}, {{1, true}}, WindowFunc::kRunningSumRange, 2};
  EXPECT_EQ(ApplyWindow(empty, spec, "s").size(), 0u);
}

TEST(EdgeCaseTest, WindowSinglePartitionSingleRow) {
  Relation one(Schema::FromNames({"g", "t"}));
  one.AddRow({Value::Int(1), Value::Int(5)});
  Relation lag = ApplyWindow(
      one, WindowSpec{{0}, {{1, true}}, WindowFunc::kLag, 1}, "prev");
  EXPECT_TRUE(lag.rows()[0][2].is_null());
  Relation lead = ApplyWindow(
      one, WindowSpec{{0}, {{1, true}}, WindowFunc::kLead, 1}, "next");
  EXPECT_TRUE(lead.rows()[0][2].is_null());
  Relation rn = ApplyWindow(
      one, WindowSpec{{}, {{1, true}}, WindowFunc::kRowNumber, -1}, "rn");
  EXPECT_EQ(rn.rows()[0][2], Value::Int(1));
}

TEST(EdgeCaseTest, SplitAggregateWholeDomainInterval) {
  // A tuple valid over the entire domain with gap rows enabled: exactly
  // one output fragment covering the domain.
  Relation in = EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 24)}});
  Relation out = SplitAggregateRelation(
      in, {}, {AggExpr{AggFunc::kCountStar, nullptr, "c"}},
      /*gap_rows=*/true, TimeDomain{0, 24});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0], Value::Int(1));
  EXPECT_EQ(out.rows()[0][1], Value::Int(0));
  EXPECT_EQ(out.rows()[0][2], Value::Int(24));
}

TEST(EdgeCaseTest, GroupedGapRowsOverEmptyInputEmitNothing) {
  // Regression: grouped SplitAggregate with gap_rows over an empty
  // input used to synthesize a groups[Row{}] entry and emit a gap row
  // *missing the group columns* -- a malformed row narrower than the
  // schema.  Grouped gaps cover observed groups only; an empty input
  // observes none.
  Relation empty(Schema::FromNames({"g", "a_begin", "a_end"}));
  Relation out = SplitAggregateRelation(
      empty, {0}, {AggExpr{AggFunc::kCountStar, nullptr, "c"}},
      /*gap_rows=*/true, TimeDomain{0, 24});
  EXPECT_EQ(out.size(), 0u);
  // Rows with empty validity count as unobserved too.
  Relation degenerate(Schema::FromNames({"g", "a_begin", "a_end"}));
  degenerate.AddRow({Value::Int(1), Value::Int(5), Value::Int(5)});
  EXPECT_EQ(SplitAggregateRelation(
                degenerate, {0}, {AggExpr{AggFunc::kCountStar, nullptr, "c"}},
                /*gap_rows=*/true, TimeDomain{0, 24})
                .size(),
            0u);
  // The global (ungrouped) gap row over an empty input is still emitted.
  Relation out_global = SplitAggregateRelation(
      empty, {}, {AggExpr{AggFunc::kCountStar, nullptr, "c"}},
      /*gap_rows=*/true, TimeDomain{0, 24});
  ASSERT_EQ(out_global.size(), 1u);
  EXPECT_EQ(out_global.rows()[0][0], Value::Int(0));
  EXPECT_EQ(out_global.rows()[0][1], Value::Int(0));
  EXPECT_EQ(out_global.rows()[0][2], Value::Int(24));
}

TEST(EdgeCaseTest, AddRowRejectsArityMismatch) {
  Relation rel(Schema::FromNames({"a", "b"}));
  EXPECT_THROW(rel.AddRow({Value::Int(1)}), EngineError);
  EXPECT_THROW(rel.AddRow({Value::Int(1), Value::Int(2), Value::Int(3)}),
               EngineError);
  rel.AddRow({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(rel.size(), 1u);
  // The bulk constructor applies the same check.
  EXPECT_THROW(Relation(Schema::FromNames({"a", "b"}),
                        {{Value::Int(1)}, {Value::Int(1), Value::Int(2)}}),
               EngineError);
}

TEST(EdgeCaseTest, SplitBudgetScopeEnforcesLimit) {
  Relation left = EncodedRelation({"g"}, {{{Value::Int(1)}, Interval(0, 20)}});
  Relation right(left.schema());
  for (int i = 1; i < 20; ++i) {
    right.AddRow({Value::Int(1), Value::Int(i), Value::Int(i + 1)});
  }
  {
    SplitBudgetScope budget(5);
    EXPECT_THROW(SplitRelation(left, right, {0}), SplitBudgetExceeded);
  }
  // Outside the scope the same split succeeds.
  EXPECT_EQ(SplitRelation(left, right, {0}).size(), 20u);
}

TEST(EdgeCaseTest, PlanBuilderArityValidation) {
  PlanPtr narrow = MakeScan("t", Schema::FromNames({"a"}));
  PlanPtr wide = MakeScan("u", Schema::FromNames({"a", "b"}));
  EXPECT_THROW(MakeUnionAll(narrow, wide), EngineError);
  EXPECT_THROW(MakeExceptAll(narrow, wide), EngineError);
  EXPECT_THROW(MakeAntiJoin(narrow, wide), EngineError);
  EXPECT_THROW(MakeCoalesce(MakeScan("t", Schema::FromNames({"a"}))),
               EngineError);
  EXPECT_THROW(MakeTimeslice(MakeScan("t", Schema::FromNames({"a"})), 0),
               EngineError);
  EXPECT_THROW(MakeProject(narrow, {Col(0)}, {}), EngineError);
}

TEST(EdgeCaseTest, RewriterRejectsUnsupportedOperators) {
  SnapshotRewriter rewriter(kExampleDomain, RewriteOptions{});
  PlanPtr sorted = MakeSort(MakeScan("works", WorksSnapshotSchema()),
                            {SortKey{0, true}});
  EXPECT_THROW(rewriter.Rewrite(sorted), EngineError);
}

TEST(EdgeCaseTest, TemporalColumnsMustBeIntegers) {
  Relation bad(Schema::FromNames({"v", "a_begin", "a_end"}));
  bad.AddRow({Value::Int(1), Value::String("x"), Value::Int(5)});
  EXPECT_THROW(CoalesceNative(bad), EngineError);
  EXPECT_THROW(TimesliceEncoded(bad, 1), EngineError);
}

TEST(EdgeCaseTest, SnapshotQueryOverEmptyTables) {
  TemporalDB db(TimeDomain{0, 50});
  ASSERT_TRUE(db.CreatePeriodTable("t", {"v", "b", "e"}, "b", "e").ok());
  // Global aggregation over an empty period table: one gap row covering
  // the whole domain with count 0.
  auto result = db.Query("SEQ VT (SELECT count(*) AS c FROM t)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0][0], Value::Int(0));
  EXPECT_EQ(result->rows()[0][1], Value::Int(0));
  EXPECT_EQ(result->rows()[0][2], Value::Int(50));
  // Non-aggregate snapshot query: empty result.
  auto plain = db.Query("SEQ VT (SELECT v FROM t)");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), 0u);
}

TEST(EdgeCaseTest, IntervalsTouchingDomainBounds) {
  TemporalDB db(TimeDomain{0, 10});
  ASSERT_TRUE(db.CreatePeriodTable("t", {"v", "b", "e"}, "b", "e").ok());
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(1), Value::Int(0), Value::Int(10)}).ok());
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(2), Value::Int(9), Value::Int(10)}).ok());
  auto result = db.Query("SEQ VT (SELECT count(*) AS c FROM t)");
  ASSERT_TRUE(result.ok());
  Relation expected = EncodedRelation({"c"},
                                      {{{Value::Int(1)}, Interval(0, 9)},
                                       {{Value::Int(2)}, Interval(9, 10)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(EdgeCaseTest, InnerOrderByIsRejected) {
  TemporalDB db(TimeDomain{0, 10});
  ASSERT_TRUE(db.CreatePeriodTable("t", {"v", "b", "e"}, "b", "e").ok());
  // ORDER BY belongs outside the SEQ VT block (paper Sec. 10.1).
  auto result = db.Query("SEQ VT (SELECT v FROM t ORDER BY v)");
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(EdgeCaseTest, JoinOfTableWithItselfUnderSnapshots) {
  TemporalDB db(TimeDomain{0, 24});
  ASSERT_TRUE(
      db.PutPeriodTable("works", WorksRelation(), "a_begin", "a_end").ok());
  // Pairs of distinct workers sharing a skill at the same time.
  auto result = db.Query(
      "SEQ VT (SELECT a.name, b.name FROM works a, works b "
      "WHERE a.skill = b.skill AND a.name < b.name)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Relation expected = EncodedRelation(
      {"name", "name_b"},
      {{{Value::String("Ann"), Value::String("Sam")}, Interval(8, 10)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(EdgeCaseTest, LargeMultiplicityCoalescing) {
  // 500 duplicates of one tuple over one interval: coalesce keeps the
  // multiplicity (500 identical rows), no quadratic surprises.
  Relation in(Schema::FromNames({"v", "a_begin", "a_end"}));
  for (int i = 0; i < 500; ++i) {
    in.AddRow({Value::Int(7), Value::Int(10), Value::Int(20)});
  }
  Relation out = CoalesceNative(in);
  EXPECT_EQ(out.size(), 500u);
  EXPECT_TRUE(CoalesceWindow(in).BagEquals(out));
}

}  // namespace
}  // namespace periodk
