// Unit tests for the SQL lexer and parser.
#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace periodk {
namespace sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a_1, 'it''s', 42, 3.5 <> <= -- cmt\n(");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kIdent);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[1].text, "a_1");
  EXPECT_EQ(t[2].text, ",");
  EXPECT_EQ(t[3].type, TokenType::kString);
  EXPECT_EQ(t[3].text, "it's");
  EXPECT_EQ(t[5].type, TokenType::kInt);
  EXPECT_EQ(t[5].int_value, 42);
  EXPECT_EQ(t[7].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(t[7].float_value, 3.5);
  EXPECT_EQ(t[8].text, "<>");
  EXPECT_EQ(t[9].text, "<=");
  EXPECT_EQ(t[10].text, "(");  // comment skipped
  EXPECT_EQ(t[11].type, TokenType::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT #").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT name, skill FROM works WHERE skill = 'SP'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_FALSE(stmt->snapshot);
  ASSERT_EQ(stmt->query->kind, SqlQuery::Kind::kSelect);
  const SelectQuery& s = *stmt->query->select;
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].expr->name, "name");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "works");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->ToString(), "(skill = 'SP')");
}

TEST(ParserTest, SeqVtBlockAndPeriodClause) {
  auto stmt = Parse(
      "SEQ VT (SELECT count(*) AS cnt FROM works PERIOD (ts, te) w "
      "WHERE w.skill = 'SP')");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->snapshot);
  const SelectQuery& s = *stmt->query->select;
  EXPECT_EQ(s.from[0].period_begin, "ts");
  EXPECT_EQ(s.from[0].period_end, "te");
  EXPECT_EQ(s.from[0].alias, "w");
  EXPECT_EQ(s.items[0].alias, "cnt");
  EXPECT_EQ(s.items[0].expr->name, "count");
  EXPECT_EQ(s.items[0].expr->args[0]->kind, SqlExprKind::kStar);
}

TEST(ParserTest, SetOperationsLeftAssociative) {
  auto stmt = Parse(
      "SELECT a FROM r EXCEPT ALL SELECT a FROM s UNION ALL SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->query->kind, SqlQuery::Kind::kUnionAll);
  EXPECT_EQ(stmt->query->left->kind, SqlQuery::Kind::kExceptAll);
}

TEST(ParserTest, JoinsAndSubqueries) {
  auto stmt = Parse(
      "SELECT e.name, x.m FROM emp e JOIN "
      "(SELECT dept, max(sal) AS m FROM salaries GROUP BY dept) AS x "
      "ON e.dept = x.dept, titles t WHERE t.emp_no = e.emp_no");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectQuery& s = *stmt->query->select;
  ASSERT_EQ(s.from.size(), 3u);
  EXPECT_EQ(s.from[1].kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(s.from[1].alias, "x");
  ASSERT_EQ(s.join_conditions.size(), 1u);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto stmt = Parse("SELECT a + b * 2 FROM t WHERE NOT a < 3 OR b = 1 AND c = 2");
  ASSERT_TRUE(stmt.ok());
  const SelectQuery& s = *stmt->query->select;
  EXPECT_EQ(s.items[0].expr->ToString(), "(a + (b * 2))");
  // NOT binds tighter than OR; AND tighter than OR.
  EXPECT_EQ(s.where->ToString(),
            "((not (a < 3)) or ((b = 1) and (c = 2)))");
}

TEST(ParserTest, CaseBetweenInLike) {
  auto stmt = Parse(
      "SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t "
      "WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) AND c NOT LIKE '%z%' "
      "AND d IS NOT NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const SelectQuery& s = *stmt->query->select;
  EXPECT_EQ(s.items[0].expr->kind, SqlExprKind::kCase);
  EXPECT_TRUE(s.items[0].expr->has_else);
}

TEST(ParserTest, OrderByOutsideSnapshotBlock) {
  auto stmt = Parse("SEQ VT (SELECT a FROM t) ORDER BY a DESC, 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_TRUE(stmt->order_by[1].ascending);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = Parse(
      "SELECT dept, avg(sal) FROM s GROUP BY dept HAVING count(*) > 21");
  ASSERT_TRUE(stmt.ok());
  const SelectQuery& s = *stmt->query->select;
  ASSERT_EQ(s.group_by.size(), 1u);
  ASSERT_NE(s.having, nullptr);
  EXPECT_TRUE(ContainsAggregate(s.having));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra_token !").ok());
  EXPECT_FALSE(Parse("SEQ VT SELECT a FROM t").ok());  // missing parens
  EXPECT_FALSE(Parse("SELECT a FROM t UNION SELECT a FROM s").ok());  // no ALL
  EXPECT_FALSE(Parse("SELECT CASE END FROM t").ok());
}

}  // namespace
}  // namespace sql
}  // namespace periodk
