// Columnar relation storage (engine/column.h, engine/relation.h;
// docs/architecture.md §9): encode-time tag selection, sorted string
// dictionaries, validity bitmaps, the lazily materialized row view --
// and whole-plan equivalence: the vectorized kernel fast paths must
// produce row-for-row identical output to the row storage path at
// num_threads=1, and bag-equal output under parallel execution.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "engine/column.h"
#include "engine/executor.h"
#include "engine/relation.h"
#include "engine/schema.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"

namespace periodk {
namespace {

// --- ColumnData ------------------------------------------------------------

TEST(ColumnDataTest, EncodePicksNarrowestTag) {
  std::vector<Row> rows = {
      {Value::Int(1), Value::Double(1.5), Value::Bool(true),
       Value::String("x"), Value::Int(1)},
      {Value::Int(2), Value::Double(2.5), Value::Bool(false),
       Value::String("y"), Value::String("mixed")},
  };
  EXPECT_EQ(ColumnData::Encode(rows, 0).tag(), ColumnTag::kInt);
  EXPECT_EQ(ColumnData::Encode(rows, 1).tag(), ColumnTag::kDouble);
  EXPECT_EQ(ColumnData::Encode(rows, 2).tag(), ColumnTag::kBool);
  EXPECT_EQ(ColumnData::Encode(rows, 3).tag(), ColumnTag::kString);
  EXPECT_EQ(ColumnData::Encode(rows, 4).tag(), ColumnTag::kMixed);
}

TEST(ColumnDataTest, StringDictionaryIsSortedAndSharedByGather) {
  std::vector<Row> rows = {{Value::String("beta")},
                           {Value::String("alpha")},
                           {Value::String("beta")}};
  ColumnData col = ColumnData::Encode(rows, 0);
  ASSERT_EQ(col.tag(), ColumnTag::kString);
  // Sorted, duplicate-free dictionary: code order == string order.
  ASSERT_EQ(col.dict()->size(), 2u);
  EXPECT_EQ(col.dict()->At(0), "alpha");
  EXPECT_EQ(col.dict()->At(1), "beta");
  EXPECT_EQ(col.codes()[0], 1u);
  EXPECT_EQ(col.codes()[1], 0u);
  EXPECT_EQ(col.codes()[2], 1u);
  // Gather reuses the source dictionary by pointer.
  ColumnData picked = ColumnData::Gather(col, {2, 0});
  EXPECT_EQ(picked.dict().get(), col.dict().get());
  EXPECT_EQ(picked.Get(0), Value::String("beta"));
}

TEST(ColumnDataTest, ValidityBitmapTracksNulls) {
  std::vector<Row> rows = {{Value::Int(7)}, {Value::Null()}, {Value::Int(9)}};
  ColumnData col = ColumnData::Encode(rows, 0);
  EXPECT_EQ(col.tag(), ColumnTag::kInt);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.Get(1), Value::Null());
  EXPECT_EQ(col.Get(2), Value::Int(9));
  // All-null columns have no representable type; they encode as kInt
  // with an all-invalid bitmap.
  std::vector<Row> all_null = {{Value::Null()}, {Value::Null()}};
  ColumnData nulls = ColumnData::Encode(all_null, 0);
  EXPECT_EQ(nulls.tag(), ColumnTag::kInt);
  EXPECT_EQ(nulls.null_count(), 2u);
}

TEST(ColumnDataTest, PackedKeysMatchValueEquality) {
  // -0.0 and +0.0 compare equal under Value::Compare, so their packed
  // key words must collide; NaN breaks the order, so the column is not
  // fast-keyable at all.
  std::vector<Row> rows = {{Value::Double(-0.0)}, {Value::Double(0.0)}};
  std::vector<ColumnData> cols = {ColumnData::Encode(rows, 0)};
  ASSERT_TRUE(FastKeyable(cols[0]));
  std::vector<uint64_t> keys;
  ASSERT_TRUE(BuildPackedKeys(cols, {0}, rows.size(), &keys));
  ASSERT_EQ(keys.size(), 4u);  // 2 rows x (1 key word + null word)
  EXPECT_EQ(keys[0], keys[2]);
  std::vector<Row> nan_rows = {{Value::Double(0.0 / 0.0)}};
  EXPECT_FALSE(FastKeyable(ColumnData::Encode(nan_rows, 0)));
}

// --- Relation: dual storage ------------------------------------------------

Relation MixedRelation() {
  Relation rel(Schema::FromNames({"i", "s", "d"}));
  rel.AddRow({Value::Int(1), Value::String("bb"), Value::Double(0.5)});
  rel.AddRow({Value::Null(), Value::String("aa"), Value::Null()});
  rel.AddRow({Value::Int(3), Value::Null(), Value::Double(-1.0)});
  rel.AddRow({Value::Int(1), Value::String("bb"), Value::Double(0.5)});
  return rel;
}

TEST(RelationColumnarTest, RowViewRoundTripsInOrder) {
  Relation rel = MixedRelation();
  std::vector<Row> original = rel.rows();
  rel.ToColumnar();
  ASSERT_TRUE(rel.is_columnar());
  ASSERT_EQ(rel.size(), original.size());
  const std::vector<Row>& view = rel.rows();  // lazy materialization
  ASSERT_EQ(view.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(CompareRows(view[i], original[i]), 0) << "row " << i;
  }
}

TEST(RelationColumnarTest, MutationDecaysToRowStorage) {
  Relation rel = MixedRelation();
  rel.ToColumnar();
  rel.AddRow({Value::Int(9), Value::String("zz"), Value::Double(9.0)});
  EXPECT_FALSE(rel.is_columnar());
  EXPECT_EQ(rel.size(), 5u);
  EXPECT_EQ(rel.rows().back()[0], Value::Int(9));
}

TEST(RelationColumnarTest, ConcurrentRowViewMaterializationIsSafe) {
  // Shared base tables are read by many query threads; the first rows()
  // call on each copy must build the view exactly once, race-free.
  Relation rel = MixedRelation();
  rel.ToColumnar();
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rel, &mismatches] {
      const std::vector<Row>& view = rel.rows();
      if (view.size() != 4 || view[1][1] != Value::String("aa")) {
        ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- Schema name lookup (the lazily built index) ---------------------------

TEST(SchemaTest, DuplicateNameShadowingUnchanged) {
  Schema schema({Column("r", "a"), Column("s", "a"), Column("", "b")});
  // Two unqualified matches: ambiguous, exactly like the linear scan.
  EXPECT_EQ(schema.Find("", "a"), -2);
  // A qualifier narrows to the unique match; matching is
  // case-insensitive on both parts.
  EXPECT_EQ(schema.Find("r", "a"), 0);
  EXPECT_EQ(schema.Find("S", "A"), 1);
  EXPECT_EQ(schema.Find("", "b"), 2);
  EXPECT_EQ(schema.Find("", "missing"), -1);
  EXPECT_EQ(schema.Find("t", "a"), -1);
  // Append invalidates the built index: a new duplicate turns the
  // previously unique name ambiguous.
  schema.Append(Column("t", "b"));
  EXPECT_EQ(schema.Find("", "b"), -2);
  EXPECT_EQ(schema.Find("t", "b"), 3);
}

// --- Columnar vs row-path equivalence --------------------------------------

/// nullopt when `a` and `b` hold identical rows in identical order.
std::optional<std::string> ExactDiff(const Relation& a, const Relation& b) {
  if (a.size() != b.size()) {
    return StrCat("row count ", a.size(), " vs ", b.size());
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareRows(a.rows()[i], b.rows()[i]) != 0) {
      return StrCat("row ", i, ": ", RowToString(a.rows()[i]), " vs ",
                    RowToString(b.rows()[i]));
    }
  }
  return std::nullopt;
}

Catalog Columnarized(const Catalog& catalog) {
  Catalog out = catalog;
  for (const std::string& name : out.TableNames()) {
    Relation rel = out.Get(name);
    rel.ToColumnar();
    out.Put(name, std::move(rel));
  }
  return out;
}

TEST(ColumnarEquivalenceTest, StringKeyJoinTranslatesDictionaries) {
  // The two inputs dictionary-encode different string sets, so equal
  // strings carry *different* codes; the join fast lane must translate
  // right codes into the left dictionary space instead of comparing
  // codes raw.  "zeta" exists only on the right: never matches.
  Schema schema = Schema::FromNames({"k", "v", "a_begin", "a_end"});
  Relation l(schema);
  l.AddRow({Value::String("ant"), Value::Int(1), Value::Int(0),
            Value::Int(10)});
  l.AddRow({Value::String("bee"), Value::Int(2), Value::Int(2),
            Value::Int(6)});
  l.AddRow({Value::Null(), Value::Int(3), Value::Int(0), Value::Int(16)});
  Relation r(schema);
  r.AddRow({Value::String("bee"), Value::Int(10), Value::Int(4),
            Value::Int(9)});
  r.AddRow({Value::String("zeta"), Value::Int(20), Value::Int(0),
            Value::Int(16)});
  r.AddRow({Value::String("ant"), Value::Int(30), Value::Int(9),
            Value::Int(12)});
  Catalog rows_cat;
  rows_cat.Put("l", std::move(l));
  rows_cat.Put("r", std::move(r));
  Catalog cols_cat = Columnarized(rows_cat);

  ExprPtr pred = And(Eq(Col(0), Col(4)),
                     And(Lt(Col(2), Col(7)), Lt(Col(6), Col(3))));
  PlanPtr plan = MakeJoin(MakeScan("l", schema), MakeScan("r", schema),
                          std::move(pred));
  Relation by_rows = Execute(plan, rows_cat, ExecOptions{});
  Relation by_cols = Execute(plan, cols_cat, ExecOptions{});
  EXPECT_EQ(by_cols.size(), 2u);
  auto diff = ExactDiff(by_cols, by_rows);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(ColumnarEquivalenceTest, StringGroupedTemporalOperatorsMatch) {
  Schema schema = Schema::FromNames({"g", "a_begin", "a_end"});
  Relation rel(schema);
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    const char* names[] = {"x", "y", "z"};
    TimePoint b = rng.Range(0, 30);
    rel.AddRow({rng.Chance(0.1) ? Value::Null()
                                : Value::String(names[rng.Uniform(3)]),
                Value::Int(b), Value::Int(b + 1 + rng.Range(0, 6))});
  }
  Catalog rows_cat;
  rows_cat.Put("t", std::move(rel));
  Catalog cols_cat = Columnarized(rows_cat);
  PlanPtr scan = MakeScan("t", schema);
  std::vector<PlanPtr> plans = {
      MakeCoalesce(scan),
      MakeSplitAggregate(scan, {0},
                         {AggExpr{AggFunc::kCountStar, nullptr, "cnt"}},
                         /*gap_rows=*/false, TimeDomain{0, 40}),
  };
  for (const PlanPtr& plan : plans) {
    Relation by_rows = Execute(plan, rows_cat, ExecOptions{});
    Relation by_cols = Execute(plan, cols_cat, ExecOptions{});
    auto diff = ExactDiff(by_cols, by_rows);
    EXPECT_FALSE(diff.has_value()) << PlanKindName(plan->kind) << ": "
                                   << *diff;
  }
}

TEST(ColumnarEquivalenceTest, TwoHundredRandomPlansMatchRowPath) {
  // The satellite property test: 200 randomized rewritten plans,
  // NULL-heavy data and duplicate-amplifying query shapes, executed
  // over row and columnar storage of the same base tables.  At
  // num_threads=1 the outputs must be row-for-row identical (whether a
  // kernel takes its vectorized lane or falls back); under the chunked
  // parallel paths they must stay bag-equal.
  constexpr TimeDomain kDomain{0, 16};
  for (int seed = 0; seed < 200; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 0xc01a7);
    Catalog rows_cat = RandomEncodedCatalog(&rng, kDomain, /*max_rows=*/10,
                                            /*null_chance=*/0.25,
                                            /*empty_validity_chance=*/0.2);
    PlanPtr encoded_p = AddRandomPeriodTable(&rng, &rows_cat, kDomain, 10,
                                             0.25, 0.2);
    Catalog cols_cat = Columnarized(rows_cat);

    RewriteOptions options;
    SnapshotSemantics all[] = {SnapshotSemantics::kPeriodK,
                               SnapshotSemantics::kAlignment,
                               SnapshotSemantics::kIntervalPreservation,
                               SnapshotSemantics::kTeradata};
    options.semantics = all[rng.Uniform(4)];
    options.hoist_coalesce = rng.Chance(0.5);
    options.fuse_aggregation = rng.Chance(0.5);
    options.pre_aggregate = rng.Chance(0.5);
    options.final_coalesce = rng.Chance(0.7);
    options.coalesce_impl =
        rng.Chance(0.5) ? CoalesceImpl::kNative : CoalesceImpl::kWindow;

    RandomQueryConfig qc;
    qc.null_literal_chance = 0.2;   // NULL-heavy
    qc.union_dup_chance = 0.35;     // duplicate-amplifying
    qc.period_scan_chance = 0.25;
    qc.allow_difference = options.semantics != SnapshotSemantics::kTeradata;
    RandomQueryGenerator gen(&rng, qc);
    PlanPtr plan = SnapshotRewriter(kDomain, options, {{"p", encoded_p}})
                       .Rewrite(gen.Generate(3 + static_cast<int>(
                                                     rng.Uniform(2))));

    Relation by_rows = Execute(plan, rows_cat, ExecOptions{});
    Relation by_cols = Execute(plan, cols_cat, ExecOptions{});
    auto diff = ExactDiff(by_cols, by_rows);
    ASSERT_FALSE(diff.has_value())
        << "seed " << seed << ": " << *diff << "\nplan:\n" << plan->ToString();

    ExecOptions parallel;
    parallel.num_threads = 4;
    Relation by_cols_mt = Execute(plan, cols_cat, parallel);
    ASSERT_TRUE(by_cols_mt.BagEquals(by_rows))
        << "seed " << seed << " (parallel)\nplan:\n" << plan->ToString();
  }
}

}  // namespace
}  // namespace periodk
