// Concurrent serving smoke test: reader threads issue (cached) queries
// while a writer mutates the catalog with Insert and PutPeriodTable.
// Snapshot isolation must make every observed result equal to the
// query's answer over *some* published catalog state — no torn reads,
// no mixed schemas, no crashes.  Run under TSan/ASan in CI; the
// assertions here are linearizability checks that hold on any schedule.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "middleware/temporal_db.h"

namespace periodk {
namespace {

TEST(ConcurrencyTest, ReadersObservePrefixConsistentInsertCounts) {
  TemporalDB db(TimeDomain{0, 1000});
  ASSERT_TRUE(
      db.CreatePeriodTable("t", {"v", "ts", "te"}, "ts", "te").ok());

  constexpr int kInserts = 300;
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 150;

  // started/completed bracket every insert: a query that begins after
  // insert i completed must see at least i+1 rows, and can never see
  // more rows than inserts started.
  std::atomic<int> started{0};
  std::atomic<int> completed{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 0; i < kInserts; ++i) {
      started.fetch_add(1);
      Status status = db.Insert(
          "t", {Value::Int(i), Value::Int(0), Value::Int(100)});
      if (!status.ok()) {
        failed.store(true);
        return;
      }
      completed.fetch_add(1);
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // Alternate a plain aggregate with a snapshot (SEQ VT) statement
      // so both the direct and the rewritten serving paths run hot
      // against the plan cache while it is being invalidated.
      const std::string plain = "SELECT count(*) AS c FROM t";
      const std::string seq =
          "SEQ VT AS OF 50 (SELECT count(*) AS c FROM t)";
      for (int q = 0; q < kQueriesPerReader; ++q) {
        int floor = completed.load();
        auto result = db.Query(q % 2 == 0 ? plain : seq, db.options());
        int ceiling = started.load();
        if (!result.ok()) {
          ADD_FAILURE() << "reader " << r << ": " << result.status().ToString();
          failed.store(true);
          return;
        }
        ASSERT_EQ(result->size(), 1u);
        int64_t n = result->rows()[0][0].AsInt();
        // Every row is valid at time 50, so both statements count the
        // whole table of the pinned snapshot.
        EXPECT_GE(n, floor) << "reader " << r << " query " << q;
        EXPECT_LE(n, ceiling) << "reader " << r << " query " << q;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  auto final_count = db.Query("SELECT count(*) AS c FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows()[0][0].AsInt(), kInserts);
}

TEST(ConcurrencyTest, ReadersNeverObserveTornTableReplacements) {
  TemporalDB db(TimeDomain{0, 1000});
  // Each published version v of "u" holds exactly v rows, every row
  // carrying the value v: any snapshot therefore satisfies
  // count == min == max.  A reader that ever mixes two versions (a torn
  // catalog read) breaks that invariant.
  auto make_version = [](int64_t v) {
    Relation rel(Schema::FromNames({"v", "ts", "te"}));
    for (int64_t i = 0; i < v; ++i) {
      rel.AddRow({Value::Int(v), Value::Int(0), Value::Int(100)});
    }
    return rel;
  };
  ASSERT_TRUE(
      db.PutPeriodTable("u", make_version(1), "ts", "te").ok());

  constexpr int kVersions = 200;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (int64_t v = 2; v <= kVersions; ++v) {
      ASSERT_TRUE(
          db.PutPeriodTable("u", make_version(v), "ts", "te").ok());
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const std::string sql =
          "SELECT count(*) AS c, min(v) AS mn, max(v) AS mx FROM u";
      int iters = 0;
      while (!done.load() || iters < 50) {
        ++iters;
        auto result = db.Query(sql);
        if (!result.ok()) {
          ADD_FAILURE() << "reader " << r << ": " << result.status().ToString();
          return;
        }
        ASSERT_EQ(result->size(), 1u);
        const Row& row = result->rows()[0];
        int64_t count = row[0].AsInt();
        ASSERT_GE(count, 1) << "reader " << r;
        ASSERT_LE(count, kVersions) << "reader " << r;
        EXPECT_EQ(row[1].AsInt(), count) << "reader " << r << ": torn read";
        EXPECT_EQ(row[2].AsInt(), count) << "reader " << r << ": torn read";
        if (iters > 5000) break;  // bound runtime on slow schedules
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
}

// Readers racing the plan-cache enable/disable toggle and catalog
// mutations: generation-tagged entries mean a plan bound against one
// catalog state is never served against another, whatever the
// interleaving.  The correctness signal is the same count invariant.
TEST(ConcurrencyTest, PlanCacheToggleRacesStayConsistent) {
  TemporalDB db(TimeDomain{0, 1000});
  ASSERT_TRUE(
      db.CreatePeriodTable("t", {"v", "ts", "te"}, "ts", "te").ok());

  std::atomic<int> started{0};
  std::atomic<int> completed{0};
  constexpr int kMutations = 150;

  std::thread writer([&] {
    for (int i = 0; i < kMutations; ++i) {
      started.fetch_add(1);
      ASSERT_TRUE(
          db.Insert("t", {Value::Int(i), Value::Int(0), Value::Int(100)})
              .ok());
      completed.fetch_add(1);
      db.set_plan_cache_enabled(i % 2 == 0);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int q = 0; q < 200; ++q) {
        int floor = completed.load();
        auto result = db.Query("SELECT count(*) AS c FROM t");
        int ceiling = started.load();
        ASSERT_TRUE(result.ok());
        int64_t n = result->rows()[0][0].AsInt();
        EXPECT_GE(n, floor);
        EXPECT_LE(n, ceiling);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  db.set_plan_cache_enabled(true);
}

// Differential index maintenance under contention: reader threads issue
// indexed timeslices (both the SQL AS-OF route and the Timeslice entry
// point) while a writer streams inserts and background compactions race
// the whole time.  Each insert publishes relation + delta index in one
// exclusive section, so the snapshot count invariant (floor from
// completed inserts, ceiling from started ones) must hold on every
// schedule; after draining maintenance, the settled index must agree
// with the scan path row-for-row.
TEST(ConcurrencyTest, IndexedReadsRaceStreamingWritesAndCompaction) {
  TemporalDB db(TimeDomain{0, 1000});
  IndexMaintenanceOptions maint;
  maint.background_compaction = true;
  // A tiny threshold keeps compactions racing throughout the run.
  maint.min_compaction_events = 16;
  maint.max_compaction_events = 16;
  db.set_index_maintenance(maint);
  ASSERT_TRUE(
      db.CreatePeriodTable("t", {"v", "ts", "te"}, "ts", "te").ok());
  // Warm the index so every append maintains it differentially instead
  // of just dropping the slot.  (The Timeslice entry point, not an
  // aggregate query: a timeslice above SplitAggregate is not indexable.)
  ASSERT_TRUE(db.Timeslice("t", 50).ok());
  ASSERT_NE(db.catalog().GetIndex("t"), nullptr);

  constexpr int kInserts = 200;
  constexpr int kReaders = 3;
  std::atomic<int> started{0};
  std::atomic<int> completed{0};
  std::atomic<bool> failed{false};

  std::thread writer([&] {
    for (int i = 0; i < kInserts; ++i) {
      started.fetch_add(1);
      Status status =
          db.Insert("t", {Value::Int(i), Value::Int(0), Value::Int(100)});
      if (!status.ok()) {
        failed.store(true);
        return;
      }
      completed.fetch_add(1);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const std::string seq = "SEQ VT AS OF 50 (SELECT v FROM t)";
      for (int q = 0; q < 120; ++q) {
        int floor = completed.load();
        int64_t n;
        if (q % 2 == 0) {
          auto result = db.Query(seq);
          int ceiling = started.load();
          if (!result.ok()) {
            ADD_FAILURE() << "reader " << r << ": "
                          << result.status().ToString();
            failed.store(true);
            return;
          }
          n = static_cast<int64_t>(result->size());
          EXPECT_LE(n, ceiling) << "reader " << r << " query " << q;
        } else {
          auto slice = db.Timeslice("t", 50);
          int ceiling = started.load();
          if (!slice.ok()) {
            ADD_FAILURE() << "reader " << r << ": "
                          << slice.status().ToString();
            failed.store(true);
            return;
          }
          n = static_cast<int64_t>(slice->size());
          EXPECT_LE(n, ceiling) << "reader " << r << " slice " << q;
        }
        // Every inserted row is valid at time 50, so any snapshot's
        // timeslice counts exactly its inserts — delta layer included.
        EXPECT_GE(n, floor) << "reader " << r << " query " << q;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  db.WaitForIndexMaintenance();
  auto indexed = db.Timeslice("t", 50);
  ASSERT_TRUE(indexed.ok());
  EXPECT_EQ(indexed->size(), static_cast<size_t>(kInserts));
  RewriteOptions scan_opts = db.options();
  scan_opts.use_timeline_index = false;
  scan_opts.push_down_timeslice = false;
  auto scanned =
      db.Query("SEQ VT AS OF 50 (SELECT v FROM t)", scan_opts);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->size(), indexed->size());
  IndexMaintenanceStats stats = db.index_maintenance_stats();
  EXPECT_GT(stats.delta_publishes, 0) << stats.ToString();
}

}  // namespace
}  // namespace periodk
