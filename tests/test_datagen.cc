// Tests for the data generators and the benchmark workloads at tiny
// scale: every workload query must parse, bind, rewrite and execute, the
// generators must be deterministic, and the data must respect the time
// domain and schema invariants.
#include <gtest/gtest.h>

#include "datagen/employees.h"
#include "datagen/tpcbih.h"
#include "datagen/workloads.h"

namespace periodk {
namespace {

EmployeesConfig TinyEmployees() {
  EmployeesConfig config;
  config.num_employees = 40;
  config.domain = TimeDomain{0, 1500};
  return config;
}

TpcBihConfig TinyTpcBih() {
  TpcBihConfig config;
  config.scale_factor = 0.001;
  return config;
}

void CheckPeriodsWithinDomain(const TemporalDB& db, const std::string& table) {
  const Relation& rel = db.catalog().Get(table);
  size_t n = rel.schema().size();
  for (const Row& row : rel.rows()) {
    TimePoint b = row[n - 2].AsInt();
    TimePoint e = row[n - 1].AsInt();
    ASSERT_LT(b, e) << table << ": empty validity period";
    ASSERT_GE(b, db.domain().tmin) << table;
    ASSERT_LE(e, db.domain().tmax) << table;
  }
}

TEST(EmployeesGenTest, GeneratesAllTablesWithValidPeriods) {
  TemporalDB db(TinyEmployees().domain);
  ASSERT_TRUE(LoadEmployees(&db, TinyEmployees()).ok());
  for (const char* table : {"departments", "employees", "salaries", "titles",
                            "dept_emp", "dept_manager"}) {
    ASSERT_TRUE(db.catalog().Has(table)) << table;
    ASSERT_TRUE(db.IsPeriodTable(table)) << table;
    CheckPeriodsWithinDomain(db, table);
  }
  EXPECT_EQ(db.catalog().Get("departments").size(), 9u);
  EXPECT_EQ(db.catalog().Get("employees").size(), 40u);
  // Salary histories dominate (roughly (days/365)-ish rows per employee).
  EXPECT_GT(db.catalog().Get("salaries").size(), 80u);
  EXPECT_GE(db.catalog().Get("dept_emp").size(), 40u);
}

TEST(EmployeesGenTest, Deterministic) {
  TemporalDB a(TinyEmployees().domain), b(TinyEmployees().domain);
  ASSERT_TRUE(LoadEmployees(&a, TinyEmployees()).ok());
  ASSERT_TRUE(LoadEmployees(&b, TinyEmployees()).ok());
  for (const char* table : {"salaries", "titles", "dept_manager"}) {
    EXPECT_TRUE(a.catalog().Get(table).BagEquals(b.catalog().Get(table)))
        << table;
  }
}

TEST(EmployeesGenTest, SalaryHistoryIsContiguousPerEmployee) {
  TemporalDB db(TinyEmployees().domain);
  ASSERT_TRUE(LoadEmployees(&db, TinyEmployees()).ok());
  // Per employee, salary periods must tile [hire, tmax) without overlap:
  // group rows and check coverage equals sum of durations.
  std::map<int64_t, std::vector<std::pair<TimePoint, TimePoint>>> periods;
  for (const Row& row : db.catalog().Get("salaries").rows()) {
    periods[row[0].AsInt()].emplace_back(row[2].AsInt(), row[3].AsInt());
  }
  for (auto& [emp, spans] : periods) {
    std::sort(spans.begin(), spans.end());
    for (size_t i = 1; i < spans.size(); ++i) {
      ASSERT_EQ(spans[i - 1].second, spans[i].first)
          << "salary history of employee " << emp
          << " has a gap or overlap";
    }
    ASSERT_EQ(spans.back().second, db.domain().tmax);
  }
}

TEST(EmployeesGenTest, WorkloadQueriesAllExecute) {
  TemporalDB db(TinyEmployees().domain);
  ASSERT_TRUE(LoadEmployees(&db, TinyEmployees()).ok());
  for (const WorkloadQuery& q : EmployeeWorkload()) {
    auto result = db.Query(q.sql);
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
    EXPECT_GT(result->size(), 0u) << q.name << " returned no rows";
  }
}

TEST(TpcBihGenTest, GeneratesAllTablesWithValidPeriods) {
  TemporalDB db(TinyTpcBih().domain);
  ASSERT_TRUE(LoadTpcBih(&db, TinyTpcBih()).ok());
  for (const char* table : {"region", "nation", "customer", "supplier",
                            "part", "partsupp", "orders", "lineitem"}) {
    ASSERT_TRUE(db.catalog().Has(table)) << table;
    CheckPeriodsWithinDomain(db, table);
  }
  EXPECT_EQ(db.catalog().Get("region").size(), 5u);
  EXPECT_EQ(db.catalog().Get("nation").size(), 25u);
  EXPECT_GT(db.catalog().Get("lineitem").size(),
            db.catalog().Get("orders").size());
}

TEST(TpcBihGenTest, WorkloadQueriesAllExecute) {
  TemporalDB db(TinyTpcBih().domain);
  ASSERT_TRUE(LoadTpcBih(&db, TinyTpcBih()).ok());
  for (const WorkloadQuery& q : TpcBihWorkload()) {
    auto result = db.Query(q.sql);
    ASSERT_TRUE(result.ok()) << q.name << ": " << result.status().ToString();
    // Global aggregations (Q6, Q14, Q19) must cover the whole domain
    // including gaps -- the AG-bug fix at work.
    if (q.bug == "AG") {
      TimePoint covered = 0;
      size_t arity = result->schema().size();
      for (const Row& row : result->rows()) {
        covered += row[arity - 1].AsInt() - row[arity - 2].AsInt();
      }
      EXPECT_EQ(covered, db.domain().size())
          << q.name << " does not cover the domain";
    }
  }
}

TEST(TpcBihGenTest, ScaleFactorScalesCardinalities) {
  TpcBihConfig small = TinyTpcBih();
  TpcBihConfig larger = TinyTpcBih();
  larger.scale_factor = 0.002;
  TemporalDB db_small(small.domain), db_larger(larger.domain);
  ASSERT_TRUE(LoadTpcBih(&db_small, small).ok());
  ASSERT_TRUE(LoadTpcBih(&db_larger, larger).ok());
  EXPECT_GT(db_larger.catalog().Get("lineitem").size(),
            db_small.catalog().Get("lineitem").size() * 3 / 2);
}

}  // namespace
}  // namespace periodk
