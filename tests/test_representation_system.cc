// Tests for the paper's central formal results about the three-level
// framework:
//   Lemma 6.4  -- ENC_K is bijective,
//   Lemma 6.5  -- ENC_K preserves snapshots,
//   Thm 6.6    -- K^T-relations are a representation system for RA+,
//   Thm 7.1/7.2 -- ... and for difference over m-semirings,
//   Thm 7.3    -- ... and for aggregation over N (Def 7.1),
// plus the full Figure 2 commutative diagram connecting the abstract
// model, the logical model and the engine implementation on both the
// running example and random databases/queries.
#include <gtest/gtest.h>

#include "annotated/evaluate.h"
#include "rewrite/period_enc.h"
#include "rewrite/rewriter.h"
#include "semiring/bool_semiring.h"
#include "semiring/lineage_semiring.h"
#include "semiring/tropical_semiring.h"
#include "tests/random_query.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 12};

// --- Lemmas 6.4 / 6.5 over every semiring. ---------------------------------

template <typename S>
class EncodingTest : public ::testing::Test {};

using AllSemirings = ::testing::Types<BoolSemiring, NatSemiring,
                                      LineageSemiring, TropicalSemiring>;
TYPED_TEST_SUITE(EncodingTest, AllSemirings);

TYPED_TEST(EncodingTest, Lemma64EncIsInvertible) {
  TypeParam k;
  Rng rng(0x6406406);
  for (int iter = 0; iter < 60; ++iter) {
    SnapshotKRelation<TypeParam> r =
        RandomSnapshotKRelation(k, kDomain, &rng);
    PeriodKRelation<TypeParam> encoded = EncodeSnapshots(r);
    SnapshotKRelation<TypeParam> decoded = DecodeSnapshots(encoded);
    ASSERT_TRUE(r.Equal(decoded)) << "ENC not invertible";
    // Injectivity on re-encoding: the normal form is reproduced exactly.
    PeriodKRelation<TypeParam> reencoded = EncodeSnapshots(decoded);
    ASSERT_TRUE(encoded.Equal(reencoded));
  }
}

TYPED_TEST(EncodingTest, Lemma65EncPreservesSnapshots) {
  TypeParam k;
  Rng rng(0x6506506);
  for (int iter = 0; iter < 40; ++iter) {
    SnapshotKRelation<TypeParam> r =
        RandomSnapshotKRelation(k, kDomain, &rng);
    PeriodKRelation<TypeParam> encoded = EncodeSnapshots(r);
    for (TimePoint t = kDomain.tmin; t < kDomain.tmax; ++t) {
      ASSERT_TRUE(TimesliceRelation(encoded, t).Equal(r.At(t)))
          << "tau_" << t << "(ENC(R)) != tau_" << t << "(R)";
    }
  }
}

TYPED_TEST(EncodingTest, EncodedAnnotationsAreCoalesced) {
  TypeParam k;
  Rng rng(0x6556565);
  for (int iter = 0; iter < 40; ++iter) {
    PeriodKRelation<TypeParam> encoded =
        EncodeSnapshots(RandomSnapshotKRelation(k, kDomain, &rng));
    for (const auto& [tuple, te] : encoded.tuples()) {
      ASSERT_TRUE(StructurallyEqual(k, te, Coalesce(k, te)));
    }
  }
}

// --- Theorem 6.6 / 7.x: queries commute with the encoding. -----------------

template <Semiring K>
void CheckRepresentationSystem(const K& k, RandomQueryConfig config,
                               uint64_t seed, int iterations) {
  Rng rng(seed);
  PeriodSemiring<K> kt(k, kDomain);
  for (int iter = 0; iter < iterations; ++iter) {
    SnapshotCatalog<K> abstract;
    KCatalog<PeriodSemiring<K>> logical;
    for (const char* name : {"r", "s"}) {
      SnapshotKRelation<K> r = RandomSnapshotKRelation(k, kDomain, &rng);
      logical.emplace(name, EncodeSnapshots(r));
      abstract.emplace(name, std::move(r));
    }
    RandomQueryGenerator gen(&rng, config);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(4)));

    // Abstract model: evaluate per snapshot (Def 4.4).
    SnapshotKRelation<K> expected =
        EvaluateSnapshots(query, k, abstract, kDomain);
    // Logical model: evaluate once over K^T annotations.
    PeriodKRelation<K> actual = Evaluate(query, kt, logical);
    // Snapshot-reducibility: tau_T commutes with the query.
    ASSERT_TRUE(DecodeSnapshots(actual).Equal(expected))
        << k.Name() << " query:\n" << query->ToString();
    // Uniqueness: the K^T result is exactly the canonical encoding.
    ASSERT_TRUE(actual.Equal(EncodeSnapshots(expected)))
        << k.Name() << " (non-canonical encoding) query:\n"
        << query->ToString();
  }
}

TEST(RepresentationSystemTest, Theorem66PositiveAlgebraBool) {
  CheckRepresentationSystem(BoolSemiring(), {false, false, false},
                            0x66000001, 60);
}

TEST(RepresentationSystemTest, Theorem66PositiveAlgebraLineage) {
  CheckRepresentationSystem(LineageSemiring(), {false, false, false},
                            0x66000002, 40);
}

TEST(RepresentationSystemTest, Theorem66PositiveAlgebraTropical) {
  CheckRepresentationSystem(TropicalSemiring(), {false, false, false},
                            0x66000003, 40);
}

TEST(RepresentationSystemTest, Theorem71DifferenceBool) {
  CheckRepresentationSystem(BoolSemiring(), {false, true, false},
                            0x71000001, 60);
}

TEST(RepresentationSystemTest, Theorem71DifferenceTropical) {
  CheckRepresentationSystem(TropicalSemiring(), {false, true, false},
                            0x71000002, 40);
}

TEST(RepresentationSystemTest, Theorem73FullBagAlgebra) {
  CheckRepresentationSystem(NatSemiring(), {true, true, true}, 0x73000001,
                            80);
}

// --- The full Figure 2 commutative diagram on the running example. ---------

TEST(Figure2Test, AllThreeLevelsAgreeOnQOnDuty) {
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, kExampleDomain);

  // Abstract model: load `works` as a snapshot N-database.
  SnapshotKRelation<NatSemiring> works_abs(n, kExampleDomain);
  works_abs.AddDuring({Value::String("Ann"), Value::String("SP")},
                      Interval(3, 10), 1);
  works_abs.AddDuring({Value::String("Joe"), Value::String("NS")},
                      Interval(8, 16), 1);
  works_abs.AddDuring({Value::String("Sam"), Value::String("SP")},
                      Interval(8, 16), 1);
  works_abs.AddDuring({Value::String("Ann"), Value::String("SP")},
                      Interval(18, 20), 1);
  SnapshotCatalog<NatSemiring> abstract;
  abstract.emplace("works", works_abs);

  PlanPtr q = QOnDuty();
  SnapshotKRelation<NatSemiring> abstract_result =
      EvaluateSnapshots(q, n, abstract, kExampleDomain);
  // Spot-check the abstract result: cnt=2 at 08:00, cnt=0 at 00:00.
  EXPECT_EQ(abstract_result.At(8).At({Value::Int(2)}), 1);
  EXPECT_EQ(abstract_result.At(0).At({Value::Int(0)}), 1);
  EXPECT_EQ(abstract_result.At(8).At({Value::Int(0)}), 0);

  // Logical model: ENC then evaluate over N^T.
  KCatalog<PeriodSemiring<NatSemiring>> logical;
  logical.emplace("works", EncodeSnapshots(works_abs));
  PeriodKRelation<NatSemiring> logical_result = Evaluate(q, nt, logical);
  EXPECT_TRUE(logical_result.Equal(EncodeSnapshots(abstract_result)));
  // The annotation of (cnt=1) is the paper's example element.
  EXPECT_EQ(nt.ToString(logical_result.At({Value::Int(1)})),
            "{[3, 8) -> 1, [10, 16) -> 1, [18, 20) -> 1}");

  // Implementation: PERIODENC + REWR over the engine.
  Catalog engine_catalog = ExampleCatalog();
  SnapshotRewriter rewriter(kExampleDomain, RewriteOptions{});
  Relation engine_result = Execute(rewriter.Rewrite(q), engine_catalog);
  Relation from_logical =
      PeriodEnc(logical_result, Schema::FromNames({"cnt"}));
  EXPECT_TRUE(engine_result.BagEquals(from_logical));
}

TEST(Figure2Test, RandomizedLogicalVersusImplementation) {
  // PERIODENC(Evaluate_{N^T}(Q)) == Execute(REWR(Q)) over random inputs:
  // the right square of the paper's Figure 2 diagram.
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, kDomain);
  Rng rng(0xf260f260);
  for (int iter = 0; iter < 60; ++iter) {
    Catalog engine_catalog = RandomEncodedCatalog(&rng, kDomain);
    KCatalog<PeriodSemiring<NatSemiring>> logical;
    for (const char* name : {"r", "s"}) {
      logical.emplace(name,
                      PeriodDec(engine_catalog.Get(name), kDomain));
    }
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(3)));
    PeriodKRelation<NatSemiring> logical_result =
        Evaluate(query, nt, logical);
    SnapshotRewriter rewriter(kDomain, RewriteOptions{});
    Relation engine_result = Execute(rewriter.Rewrite(query), engine_catalog);
    Relation expected = PeriodEnc(logical_result, query->schema);
    ASSERT_TRUE(engine_result.BagEquals(expected))
        << "query:\n" << query->ToString() << "engine:\n"
        << engine_result.ToString() << "logical:\n" << expected.ToString();
  }
}

}  // namespace
}  // namespace periodk
