// Tests for the abstract model: snapshot K-relations (Def 4.3), snapshot
// semantics (Def 4.4) and snapshot-reducibility -- evaluating per
// snapshot trivially commutes with the timeslice, and the per-snapshot
// evaluator agrees with the engine pipeline end to end.
#include "annotated/snapshot_k_relation.h"

#include <gtest/gtest.h>

#include "annotated/evaluate.h"
#include "rewrite/period_enc.h"
#include "rewrite/rewriter.h"
#include "semiring/bool_semiring.h"
#include "tests/random_query.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 10};

TEST(SnapshotKRelationTest, AddDuringPopulatesSnapshots) {
  NatSemiring n;
  SnapshotKRelation<NatSemiring> r(n, kDomain);
  r.AddDuring({Value::Int(1)}, Interval(2, 5), 3);
  EXPECT_EQ(r.At(1).At({Value::Int(1)}), 0);
  EXPECT_EQ(r.At(2).At({Value::Int(1)}), 3);
  EXPECT_EQ(r.At(4).At({Value::Int(1)}), 3);
  EXPECT_EQ(r.At(5).At({Value::Int(1)}), 0);
  // Overlapping additions accumulate.
  r.AddDuring({Value::Int(1)}, Interval(4, 6), 1);
  EXPECT_EQ(r.At(4).At({Value::Int(1)}), 4);
  EXPECT_EQ(r.At(5).At({Value::Int(1)}), 1);
}

TEST(SnapshotKRelationTest, EqualityIsPointwise) {
  BoolSemiring b;
  SnapshotKRelation<BoolSemiring> r(b, kDomain), s(b, kDomain);
  r.AddDuring({Value::Int(1)}, Interval(0, 5), true);
  s.AddDuring({Value::Int(1)}, Interval(0, 5), true);
  EXPECT_TRUE(r.Equal(s));
  s.AddDuring({Value::Int(1)}, Interval(7, 8), true);
  EXPECT_FALSE(r.Equal(s));
}

TEST(SnapshotSemanticsTest, Definition44EvaluatesPerSnapshot) {
  // A selection under snapshot semantics: at each T the snapshot result
  // is exactly the non-temporal query over the snapshot.
  NatSemiring n;
  SnapshotKRelation<NatSemiring> r(n, kDomain);
  r.AddDuring({Value::Int(1), Value::Int(10)}, Interval(0, 6), 1);
  r.AddDuring({Value::Int(2), Value::Int(20)}, Interval(3, 9), 2);
  SnapshotCatalog<NatSemiring> catalog;
  catalog.emplace("r", r);
  PlanPtr q = MakeSelect(MakeScan("r", Schema::FromNames({"a", "b"})),
                         Ge(Col(1), LitInt(15)));
  SnapshotKRelation<NatSemiring> result =
      EvaluateSnapshots(q, n, catalog, kDomain);
  for (TimePoint t = kDomain.tmin; t < kDomain.tmax; ++t) {
    // Snapshot-reducibility, by construction: tau_T(Q(D)) = Q(tau_T(D)).
    KCatalog<NatSemiring> sliced;
    sliced.emplace("r", r.At(t));
    ASSERT_TRUE(result.At(t).Equal(Evaluate(q, n, sliced))) << "t=" << t;
  }
  EXPECT_EQ(result.At(4).At({Value::Int(2), Value::Int(20)}), 2);
  EXPECT_TRUE(result.At(1).empty());
}

TEST(SnapshotSemanticsTest, AbstractModelAgreesWithEnginePipeline) {
  // Left square of the paper's Figure 2, randomized: per-snapshot
  // evaluation == decode(engine evaluation of REWR) for bag queries.
  Rng rng(0xab57ac7);
  NatSemiring n;
  for (int iter = 0; iter < 30; ++iter) {
    Catalog engine_catalog = RandomEncodedCatalog(&rng, kDomain);
    SnapshotCatalog<NatSemiring> abstract;
    for (const char* name : {"r", "s"}) {
      SnapshotKRelation<NatSemiring> rel(n, kDomain);
      const Relation& stored = engine_catalog.Get(name);
      for (const Row& row : stored.rows()) {
        rel.AddDuring({row[0], row[1]},
                      Interval(row[2].AsInt(), row[3].AsInt()), 1);
      }
      abstract.emplace(name, std::move(rel));
    }
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(3)));
    SnapshotKRelation<NatSemiring> expected =
        EvaluateSnapshots(query, n, abstract, kDomain);
    SnapshotRewriter rewriter(kDomain, RewriteOptions{});
    Relation engine_result = Execute(rewriter.Rewrite(query), engine_catalog);
    SnapshotKRelation<NatSemiring> actual =
        DecodeSnapshots(PeriodDec(engine_result, kDomain));
    ASSERT_TRUE(actual.Equal(expected)) << query->ToString();
  }
}

TEST(SnapshotSemanticsTest, RunningExampleSnapshotsMatchFigure2) {
  // Figure 2 (bottom): the snapshots of `works` at 00, 08 and 18.
  NatSemiring n;
  SnapshotKRelation<NatSemiring> works(n, kExampleDomain);
  works.AddDuring({Value::String("Ann"), Value::String("SP")},
                  Interval(3, 10), 1);
  works.AddDuring({Value::String("Joe"), Value::String("NS")},
                  Interval(8, 16), 1);
  works.AddDuring({Value::String("Sam"), Value::String("SP")},
                  Interval(8, 16), 1);
  works.AddDuring({Value::String("Ann"), Value::String("SP")},
                  Interval(18, 20), 1);
  EXPECT_TRUE(works.At(0).empty());
  EXPECT_EQ(works.At(8).size(), 3u);
  EXPECT_EQ(works.At(18).size(), 1u);
  EXPECT_EQ(works.At(18).At({Value::String("Ann"), Value::String("SP")}), 1);
}

}  // namespace
}  // namespace periodk
