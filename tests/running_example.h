// The paper's running example (Figure 1): period relations `works`
// (factory workers, their skills, on-duty periods) and `assign`
// (machines requiring a worker with a given skill), over the hours of
// 2018-01-01 encoded as T = [0, 24).
#ifndef PERIODK_TESTS_RUNNING_EXAMPLE_H_
#define PERIODK_TESTS_RUNNING_EXAMPLE_H_

#include "engine/executor.h"
#include "engine/relation.h"
#include "temporal/interval.h"

namespace periodk {

inline constexpr TimeDomain kExampleDomain{0, 24};

inline Relation WorksRelation() {
  Relation works(
      Schema::FromNames({"name", "skill", "a_begin", "a_end"}));
  auto add = [&](const char* name, const char* skill, int64_t b, int64_t e) {
    works.AddRow({Value::String(name), Value::String(skill), Value::Int(b),
                  Value::Int(e)});
  };
  add("Ann", "SP", 3, 10);
  add("Joe", "NS", 8, 16);
  add("Sam", "SP", 8, 16);
  add("Ann", "SP", 18, 20);
  return works;
}

inline Relation AssignRelation() {
  Relation assign(
      Schema::FromNames({"mach", "skill", "a_begin", "a_end"}));
  auto add = [&](const char* mach, const char* skill, int64_t b, int64_t e) {
    assign.AddRow({Value::String(mach), Value::String(skill), Value::Int(b),
                   Value::Int(e)});
  };
  add("M1", "SP", 3, 12);
  add("M2", "SP", 6, 14);
  add("M3", "NS", 3, 16);
  return assign;
}

inline Catalog ExampleCatalog() {
  Catalog catalog;
  catalog.Put("works", WorksRelation());
  catalog.Put("assign", AssignRelation());
  return catalog;
}

/// Snapshot schemas (without the temporal columns).
inline Schema WorksSnapshotSchema() {
  return Schema::FromNames({"name", "skill"});
}
inline Schema AssignSnapshotSchema() {
  return Schema::FromNames({"mach", "skill"});
}

/// Q_onduty: SELECT count(*) AS cnt FROM works WHERE skill = 'SP'.
inline PlanPtr QOnDuty() {
  PlanPtr scan = MakeScan("works", WorksSnapshotSchema());
  PlanPtr select = MakeSelect(scan, Eq(Col(1, "skill"), LitStr("SP")));
  return MakeAggregate(select, {}, {},
                       {AggExpr{AggFunc::kCountStar, nullptr, "cnt"}});
}

/// Q_skillreq: SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works.
inline PlanPtr QSkillReq() {
  PlanPtr a = MakeProject(MakeScan("assign", AssignSnapshotSchema()),
                          {Col(1, "skill")}, {Column("skill")});
  PlanPtr w = MakeProject(MakeScan("works", WorksSnapshotSchema()),
                          {Col(1, "skill")}, {Column("skill")});
  return MakeExceptAll(a, w);
}

/// Builds an encoded relation from (row, begin, end) triples.
inline Relation EncodedRelation(
    const std::vector<std::string>& names,
    const std::vector<std::pair<Row, Interval>>& rows) {
  std::vector<std::string> all = names;
  all.push_back("a_begin");
  all.push_back("a_end");
  Relation out(Schema::FromNames(all));
  for (const auto& [row, interval] : rows) {
    Row r = row;
    r.push_back(Value::Int(interval.begin));
    r.push_back(Value::Int(interval.end));
    out.AddRow(std::move(r));
  }
  return out;
}

}  // namespace periodk

#endif  // PERIODK_TESTS_RUNNING_EXAMPLE_H_
