// Differential testing against the embedded SQLite oracle
// (docs/testing.md): randomized snapshot queries are rewritten with
// REWR, executed by the engine, transpiled to SQL
// (src/sql/transpile.h), executed by SQLite over the same data, and
// compared as multisets.  A divergence is shrunk to a minimal plan and
// minimal data, then dumped as a self-contained SQL reproducer
// (differential_repro_<seed>.sql in the working directory).
//
// Seed count: PERIODK_DIFF_SEEDS (default 500).  Operator-kind
// coverage is asserted only at >= 300 seeds so a quick
// PERIODK_DIFF_SEEDS=20 debugging run still passes.
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "engine/executor.h"
#include "engine/timeline_index.h"
#include "ra/cost_model.h"
#include "random_query.h"
#include "rewrite/rewriter.h"
#include "sql/transpile.h"
#include "sqlite_oracle.h"
#include "stats/table_stats.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 16};

using EngineFn = std::function<Relation(const PlanPtr&, const Catalog&)>;

int SeedCount() {
  const char* env = std::getenv("PERIODK_DIFF_SEEDS");
  if (env != nullptr && std::atoi(env) > 0) return std::atoi(env);
  return 500;
}

Relation PlainEngine(const PlanPtr& plan, const Catalog& catalog) {
  return Execute(plan, catalog, ExecOptions{});
}

/// Engine variant with every base table forced into columnar storage
/// (dictionary-encoded strings included), so the fuzz corpus exercises
/// the vectorized kernel fast paths and their row-path fallbacks.
Relation ColumnarEngine(const PlanPtr& plan, const Catalog& catalog) {
  Catalog columnar = catalog;
  for (const std::string& name : columnar.TableNames()) {
    Relation rel = columnar.Get(name);
    rel.ToColumnar();
    columnar.Put(name, std::move(rel));
  }
  return Execute(plan, columnar, ExecOptions{});
}

/// One generated differential case: data + rewritten multiset plan,
/// plus (when the mid_insert_chance knob is on) per-table append
/// batches to apply *between* query evaluations.
struct FuzzCase {
  Catalog catalog;
  PlanPtr plan;
  std::string description;
  std::map<std::string, std::vector<Row>> mid_inserts;
};

FuzzCase BuildCase(int seed, double mid_insert_chance = 0.0) {
  Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 0x5107ab);
  FuzzCase out;
  out.catalog = RandomEncodedCatalog(&rng, kDomain, /*max_rows=*/10,
                                     /*null_chance=*/0.15,
                                     /*empty_validity_chance=*/0.15);
  PlanPtr encoded_p = AddRandomPeriodTable(&rng, &out.catalog, kDomain,
                                           /*max_rows=*/10,
                                           /*null_chance=*/0.15,
                                           /*empty_validity_chance=*/0.15);

  RewriteOptions options;
  SnapshotSemantics all[] = {
      SnapshotSemantics::kPeriodK, SnapshotSemantics::kAlignment,
      SnapshotSemantics::kIntervalPreservation, SnapshotSemantics::kTeradata};
  options.semantics = all[rng.Uniform(4)];
  options.hoist_coalesce = rng.Chance(0.5);
  options.fuse_aggregation = rng.Chance(0.5);
  options.pre_aggregate = rng.Chance(0.5);
  options.final_coalesce = rng.Chance(0.7);
  options.coalesce_impl =
      rng.Chance(0.5) ? CoalesceImpl::kNative : CoalesceImpl::kWindow;
  options.use_cost_model = rng.Chance(0.5);
  if (options.use_cost_model) {
    // Attach statistics so the cost model's join-reorder pre-pass sees
    // real cardinalities (tables without stats estimate flat and keep
    // the structural order).  The oracle compares multisets, so a
    // reorder-induced row-order change is invisible to it.
    for (const std::string& name : out.catalog.TableNames()) {
      std::shared_ptr<const Relation> rel = out.catalog.GetShared(name);
      // "p" stores its interval columns at (0, 2); "r"/"s" are
      // PERIODENC with trailing endpoints.
      int b = name == "p" ? 0 : static_cast<int>(rel->schema().size()) - 2;
      int e = name == "p" ? 2 : static_cast<int>(rel->schema().size()) - 1;
      out.catalog.PutStats(name, TableStats::Collect(rel, b, e));
    }
  }

  RandomQueryConfig qc;
  qc.null_literal_chance = 0.15;
  qc.union_dup_chance = 0.2;
  qc.period_scan_chance = 0.25;
  qc.mid_insert_chance = mid_insert_chance;
  // Snapshot difference is N/A under Teradata semantics (Table 1).
  qc.allow_difference = options.semantics != SnapshotSemantics::kTeradata;

  RandomQueryGenerator gen(&rng, qc);
  int depth = 3 + static_cast<int>(rng.Uniform(2));
  PlanPtr snapshot_query = gen.Generate(depth);
  CostModel cost(&out.catalog, kDomain);
  SnapshotRewriter rewriter(kDomain, options, {{"p", encoded_p}},
                            options.use_cost_model ? &cost : nullptr);
  PlanPtr plan = rewriter.Rewrite(snapshot_query);

  std::string wrappers;
  if (rng.Chance(0.2)) {
    TimePoint t = rng.Range(kDomain.tmin, kDomain.tmax);
    plan = MakeTimeslice(plan, t);
    if (rng.Chance(0.5)) {
      plan = PushDownTimeslice(plan);
      wrappers += StrCat(" timeslice@", t, "(pushed)");
    } else {
      wrappers += StrCat(" timeslice@", t);
    }
  }
  if (rng.Chance(0.2)) {
    plan = MakeSort(plan, {SortKey{0, rng.Chance(0.5)}});
    wrappers += " sort";
  }
  out.plan = plan;
  out.description =
      StrCat("seed ", seed, " semantics=",
             SnapshotSemanticsName(options.semantics),
             " hoist=", options.hoist_coalesce, " fuse=",
             options.fuse_aggregation, " preagg=", options.pre_aggregate,
             " final_coalesce=", options.final_coalesce, " impl=",
             options.coalesce_impl == CoalesceImpl::kNative ? "native"
                                                            : "window",
             " cost=", options.use_cost_model, " depth=", depth, wrappers);
  // Mid-sequence insert batches are drawn *last*, so a zero-valued knob
  // leaves every existing seed's plan/data stream bit-identical.
  if (qc.mid_insert_chance > 0) {
    for (const char* name : {"r", "s", "p"}) {
      if (!rng.Chance(qc.mid_insert_chance)) continue;
      int count = 1 + static_cast<int>(rng.Uniform(4));
      out.mid_inserts[name] = RandomAppendRows(
          &rng, kDomain, /*period_layout=*/std::string(name) == "p", count,
          /*null_chance=*/0.15, /*empty_validity_chance=*/0.15);
    }
    if (!out.mid_inserts.empty()) out.description += " +mid-inserts";
  }
  return out;
}

/// Applies a case's mid-sequence inserts the way the middleware's write
/// path does: copy-on-write append, then attach a differential
/// (WithDelta) timeline index built from the pre-insert index, so the
/// executor's indexed routes serve post-write reads through the delta.
/// Returns the names of the tables that grew.
std::vector<std::string> ApplyMidInsertsWithIndexes(FuzzCase* c) {
  std::vector<std::string> grown;
  for (const auto& [table, rows] : c->mid_inserts) {
    std::shared_ptr<const Relation> old_rel = c->catalog.GetShared(table);
    int arity = static_cast<int>(old_rel->schema().size());
    // "p" stores its interval columns at (0, 2); "r"/"s" are PERIODENC
    // with trailing endpoints (same mapping as the stats attachment).
    int b = table == "p" ? 0 : arity - 2;
    int e = table == "p" ? 2 : arity - 1;
    std::shared_ptr<const TimelineIndex> old_index =
        TimelineIndex::Build(old_rel, b, e);
    Relation next = *old_rel;
    for (const Row& row : rows) next.AddRow(Row(row));
    auto next_shared = std::make_shared<const Relation>(std::move(next));
    c->catalog.PutShared(table, next_shared);
    if (old_index != nullptr) {
      auto with_delta = TimelineIndex::WithDelta(old_index, next_shared);
      // Appended endpoints are integers by construction, so the delta
      // build can only refuse on a contract bug — surface it.
      EXPECT_NE(with_delta, nullptr) << table;
      if (with_delta != nullptr) c->catalog.PutIndex(table, with_delta);
    }
    grown.push_back(table);
  }
  return grown;
}

/// Runs `plan` through the engine and the oracle; nullopt = match.
std::optional<std::string> Diverges(const PlanPtr& plan,
                                    const Catalog& catalog,
                                    const EngineFn& engine) {
  SqlScript script = TranspilePlan(plan);
  SqliteOracle oracle;
  oracle.LoadCatalog(catalog);
  Relation ours = engine(plan, catalog);
  Relation theirs = oracle.RunScript(script, plan->schema.size());
  return DiffRelations(ours, theirs);
}

bool DivergesQuietly(const PlanPtr& plan, const Catalog& catalog,
                     const EngineFn& engine) {
  try {
    return Diverges(plan, catalog, engine).has_value();
  } catch (const std::exception&) {
    return false;  // an error is not a clean reproduction of the diff
  }
}

/// Greedy structural shrink: descend into a direct child subplan as
/// long as the child alone still reproduces the divergence.
PlanPtr ShrinkPlan(PlanPtr plan, const Catalog& catalog,
                   const EngineFn& engine) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const PlanPtr& child : {plan->left, plan->right}) {
      if (child != nullptr && DivergesQuietly(child, catalog, engine)) {
        plan = child;
        progressed = true;
        break;
      }
    }
  }
  return plan;
}

/// Data shrink: drop base-table rows one at a time while the
/// divergence persists, to a fixpoint.
Catalog ShrinkRows(const PlanPtr& plan, Catalog catalog,
                   const EngineFn& engine) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const std::string& name : catalog.TableNames()) {
      const Relation& rel = catalog.Get(name);
      for (size_t drop = 0; drop < rel.size(); ++drop) {
        Relation smaller(rel.schema());
        for (size_t i = 0; i < rel.size(); ++i) {
          if (i != drop) smaller.AddRow(Row(rel.rows()[i]));
        }
        Catalog trial = catalog;  // snapshot copy, O(#tables)
        trial.Put(name, std::move(smaller));
        if (DivergesQuietly(plan, trial, engine)) {
          catalog = std::move(trial);
          progressed = true;
          break;
        }
      }
      if (progressed) break;
    }
  }
  return catalog;
}

/// Writes the self-contained SQL reproducer and returns its path.
std::string DumpReproducer(const std::string& dir, int seed,
                           const PlanPtr& plan, const Catalog& catalog,
                           const std::string& diff,
                           const std::string& description) {
  std::map<std::string, Relation> tables;
  for (const std::string& name : catalog.TableNames()) {
    tables.emplace(name, catalog.Get(name));
  }
  std::string header =
      StrCat("periodk differential fuzzer reproducer\n", description,
             "\ndivergence:\n", diff, "\nplan:\n", plan->ToString());
  std::string body =
      BuildReproducerSql(tables, TranspilePlanToSql(plan), header);
  std::string path = StrCat(dir, "differential_repro_", seed, ".sql");
  std::ofstream file(path);
  file << body;
  return path;
}

void CountKinds(const PlanPtr& plan, std::unordered_set<const Plan*>* seen,
                std::map<PlanKind, int>* counts) {
  if (plan == nullptr || !seen->insert(plan.get()).second) return;
  ++(*counts)[plan->kind];
  CountKinds(plan->left, seen, counts);
  CountKinds(plan->right, seen, counts);
}

/// Shared fuzz driver; returns the number of divergences found (after
/// shrinking and dumping each into `dump_dir`).
int RunFuzz(int seeds, const EngineFn& engine, const std::string& dump_dir,
            int stop_after, std::map<PlanKind, int>* kind_counts) {
  int found = 0;
  for (int seed = 0; seed < seeds && found < stop_after; ++seed) {
    FuzzCase c = BuildCase(seed);
    if (kind_counts != nullptr) {
      // Per-case visited set: addresses recycle across cases.
      std::unordered_set<const Plan*> seen;
      CountKinds(c.plan, &seen, kind_counts);
    }
    std::optional<std::string> diff;
    try {
      diff = Diverges(c.plan, c.catalog, engine);
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.description << "\nerror: " << e.what() << "\nplan:\n"
                    << c.plan->ToString();
      ++found;
      continue;
    }
    if (!diff.has_value()) continue;
    ++found;
    PlanPtr small = ShrinkPlan(c.plan, c.catalog, engine);
    Catalog data = ShrinkRows(small, c.catalog, engine);
    std::string small_diff = Diverges(small, data, engine).value_or(*diff);
    std::string path = DumpReproducer(dump_dir, seed, small, data, small_diff,
                                      c.description);
    ADD_FAILURE() << c.description << "\n"
                  << small_diff << "\nreproducer: " << path
                  << "\nshrunk plan:\n"
                  << small->ToString();
  }
  return found;
}

// --- Deterministic warm-up cases ------------------------------------------

Catalog TinyCatalog() {
  Catalog catalog;
  Relation r(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
  r.AddRow({Value::Int(1), Value::Int(2), Value::Int(0), Value::Int(8)});
  r.AddRow({Value::Int(1), Value::Int(2), Value::Int(4), Value::Int(12)});
  r.AddRow({Value::Int(1), Value::Null(), Value::Int(2), Value::Int(6)});
  r.AddRow({Value::Int(3), Value::Int(0), Value::Int(5), Value::Int(5)});
  Relation s(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
  s.AddRow({Value::Int(1), Value::Int(2), Value::Int(6), Value::Int(10)});
  s.AddRow({Value::Null(), Value::Null(), Value::Int(0), Value::Int(16)});
  catalog.Put("r", std::move(r));
  catalog.Put("s", std::move(s));
  return catalog;
}

PlanPtr EncodedScan(const char* name) {
  return MakeScan(name, Schema::FromNames({"a", "b", "a_begin", "a_end"}));
}

TEST(DifferentialOracle, HandBuiltCoalesceMatches) {
  Catalog catalog = TinyCatalog();
  for (CoalesceImpl impl : {CoalesceImpl::kNative, CoalesceImpl::kWindow}) {
    PlanPtr plan = MakeCoalesce(EncodedScan("r"), impl);
    auto diff = Diverges(plan, catalog, PlainEngine);
    EXPECT_FALSE(diff.has_value()) << diff.value_or("");
  }
}

TEST(DifferentialOracle, HandBuiltBagDifferenceMatches) {
  Catalog catalog = TinyCatalog();
  PlanPtr plan = MakeExceptAll(EncodedScan("r"), EncodedScan("s"));
  auto diff = Diverges(plan, catalog, PlainEngine);
  EXPECT_FALSE(diff.has_value()) << diff.value_or("");
}

TEST(DifferentialOracle, HandBuiltSplitAggregateMatches) {
  Catalog catalog = TinyCatalog();
  for (bool gap_rows : {false, true}) {
    PlanPtr plan = MakeSplitAggregate(
        EncodedScan("r"), {},
        {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
         AggExpr{AggFunc::kSum, Col(1, "b"), "sum_b"}},
        gap_rows, kDomain);
    auto diff = Diverges(plan, catalog, PlainEngine);
    EXPECT_FALSE(diff.has_value()) << "gap_rows=" << gap_rows << "\n"
                                   << diff.value_or("");
    // Grouped variant (Teradata-style gap rows per observed group).
    PlanPtr grouped = MakeSplitAggregate(
        EncodedScan("r"), {0}, {AggExpr{AggFunc::kMax, Col(1, "b"), "max_b"}},
        gap_rows, kDomain);
    diff = Diverges(grouped, catalog, PlainEngine);
    EXPECT_FALSE(diff.has_value()) << "grouped gap_rows=" << gap_rows << "\n"
                                   << diff.value_or("");
  }
}

TEST(DifferentialOracle, HandBuiltTimesliceOnNonTrailingColumnsMatches) {
  Catalog catalog = TinyCatalog();
  // Slice on explicit non-trailing endpoint columns: reorder r to
  // (a_begin, a, a_end, b) first, then slice columns 0 and 2.
  PlanPtr reordered = MakeProjectColumns(EncodedScan("r"), {2, 0, 3, 1});
  PlanPtr plan = MakeTimesliceAt(reordered, 5, 0, 2);
  auto diff = Diverges(plan, catalog, PlainEngine);
  EXPECT_FALSE(diff.has_value()) << diff.value_or("");
}

// LowerSplitAggregates checked engine-vs-engine, isolating lowering
// bugs from transpiler bugs.
TEST(DifferentialOracle, SplitAggregateLoweringMatchesFusedOperator) {
  Rng rng(20260807);
  for (int i = 0; i < 50; ++i) {
    Catalog catalog =
        RandomEncodedCatalog(&rng, kDomain, 10, 0.2, 0.2);
    bool grouped = rng.Chance(0.5);
    bool gap_rows = rng.Chance(0.5);
    AggFunc funcs[] = {AggFunc::kCountStar, AggFunc::kCount, AggFunc::kSum,
                       AggFunc::kAvg,       AggFunc::kMin,   AggFunc::kMax};
    AggFunc f = funcs[rng.Uniform(6)];
    AggExpr agg{f, f == AggFunc::kCountStar ? nullptr : Col(1, "b"), "agg"};
    PlanPtr fused = MakeSplitAggregate(
        EncodedScan("r"), grouped ? std::vector<int>{0} : std::vector<int>{},
        {agg}, gap_rows, kDomain);
    PlanPtr lowered = LowerSplitAggregates(fused);
    ASSERT_FALSE(ContainsKind(lowered, PlanKind::kSplitAggregate));
    Relation a = Execute(fused, catalog, ExecOptions{});
    Relation b = Execute(lowered, catalog, ExecOptions{});
    auto diff = DiffRelations(a, b);
    EXPECT_FALSE(diff.has_value())
        << "i=" << i << " grouped=" << grouped << " gap_rows=" << gap_rows
        << " func=" << static_cast<int>(f) << "\n"
        << diff.value_or("");
    if (diff.has_value()) break;
  }
}

// --- The randomized differential suite ------------------------------------

TEST(DifferentialOracle, RandomizedQueriesMatchSqlite) {
  int seeds = SeedCount();
  std::map<PlanKind, int> kind_counts;
  int found = RunFuzz(seeds, PlainEngine, "", /*stop_after=*/3, &kind_counts);
  EXPECT_EQ(found, 0) << "reproducers dumped to the working directory";

  if (seeds >= 300) {
    // Every operator kind must be reachable from the fuzzer's grammar
    // (kConstant via the gap tuple, kAntiJoin via alignment/IP
    // difference, kSplitAggregate via fusion, kSplit via the unfused
    // path and snapshot DISTINCT, kTimeslice/kSort via the wrappers).
    for (PlanKind kind :
         {PlanKind::kScan, PlanKind::kConstant, PlanKind::kSelect,
          PlanKind::kProject, PlanKind::kJoin, PlanKind::kUnionAll,
          PlanKind::kExceptAll, PlanKind::kAggregate, PlanKind::kDistinct,
          PlanKind::kSort, PlanKind::kAntiJoin, PlanKind::kCoalesce,
          PlanKind::kSplit, PlanKind::kSplitAggregate,
          PlanKind::kTimeslice}) {
      EXPECT_GT(kind_counts[kind], 0)
          << "operator kind never generated: " << PlanKindName(kind);
    }
  }
}

TEST(DifferentialOracle, RandomizedQueriesMatchSqliteOnColumnarStorage) {
  // Same corpus, columnar base tables: the engine must agree with the
  // oracle whether a kernel takes its vectorized lane or falls back.
  int found = RunFuzz(SeedCount(), ColumnarEngine, "", /*stop_after=*/3,
                      /*kind_counts=*/nullptr);
  EXPECT_EQ(found, 0) << "reproducers dumped to the working directory";
}

// Mid-sequence writes (ISSUE 10): evaluate each fuzz query, apply the
// case's random insert batches the way the middleware does (COW append
// + WithDelta index), and evaluate again — the SQLite oracle, reloaded
// with the post-write data, validates post-write reads.  On top of the
// re-run query, a forced indexed timeslice probe per grown table pins
// the executor's delta-merging route itself against the oracle and
// checks (via ExecStats) that the index, delta included, really served.
TEST(DifferentialOracle, MidSequenceInsertsKeepIndexedReadsExact) {
  int seeds = SeedCount();
  int failures = 0;
  for (int seed = 0; seed < seeds && failures < 3; ++seed) {
    FuzzCase c = BuildCase(seed, /*mid_insert_chance=*/0.5);
    if (c.mid_inserts.empty()) continue;  // pre-write runs cover this seed
    // Query evaluation #1: before any write (same stream as the main
    // suite; kept so a failure here localizes to the write application).
    std::optional<std::string> diff;
    try {
      diff = Diverges(c.plan, c.catalog, PlainEngine);
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.description << "\npre-insert error: " << e.what();
      ++failures;
      continue;
    }
    if (diff.has_value()) {
      ADD_FAILURE() << c.description << "\npre-insert divergence:\n" << *diff;
      ++failures;
      continue;
    }
    std::vector<std::string> grown = ApplyMidInsertsWithIndexes(&c);
    // Query evaluation #2: post-write, oracle reloaded with the grown
    // tables, engine serving scans of them plus delta-carrying indexes.
    try {
      diff = Diverges(c.plan, c.catalog, PlainEngine);
    } catch (const std::exception& e) {
      ADD_FAILURE() << c.description << "\npost-insert error: " << e.what();
      ++failures;
      continue;
    }
    if (diff.has_value()) {
      ADD_FAILURE() << c.description << "\npost-insert divergence:\n" << *diff;
      ++failures;
      continue;
    }
    // Forced indexed AS-OF probes: a timeslice directly over each grown
    // table's scan takes the executor's indexed route.
    for (const std::string& table : grown) {
      auto index = c.catalog.GetIndex(table);
      if (index == nullptr) continue;  // base was unindexable
      const Schema& stored = c.catalog.Get(table).schema();
      for (TimePoint t : {kDomain.tmin, TimePoint{7}, kDomain.tmax - 1}) {
        PlanPtr probe =
            table == "p"
                ? MakeTimesliceAt(MakeScan(table, stored), t, 0, 2)
                : MakeTimeslice(MakeScan(table, stored), t);
        ExecStats stats;
        Relation indexed = Execute(probe, c.catalog, ExecOptions{}, &stats);
        EXPECT_EQ(stats.index_timeslices, 1)
            << c.description << " table=" << table << " t=" << t;
        EXPECT_EQ(stats.index_delta_events,
                  static_cast<int64_t>(index->num_delta_events()))
            << c.description << " table=" << table << " t=" << t;
        auto probe_diff = Diverges(probe, c.catalog, PlainEngine);
        if (probe_diff.has_value()) {
          ADD_FAILURE() << c.description << " table=" << table << " t=" << t
                        << "\nindexed probe divergence:\n"
                        << *probe_diff;
          ++failures;
          break;
        }
      }
      if (failures >= 3) break;
    }
  }
  EXPECT_EQ(failures, 0);
}

// --- Sensitivity: an injected executor bug must be caught -----------------

TEST(DifferentialOracle, InjectedDuplicateDropIsCaught) {
  // Classic bag bug: the "engine" silently drops one copy of every
  // duplicated result row.  The differential harness must catch it and
  // shrink it to a reproducer.
  struct RowCmp {
    bool operator()(const Row& a, const Row& b) const {
      return CompareRows(a, b) < 0;
    }
  };
  EngineFn buggy = [](const PlanPtr& plan, const Catalog& catalog) {
    Relation out = Execute(plan, catalog, ExecOptions{});
    std::map<Row, int, RowCmp> counts;
    for (const Row& row : out.rows()) ++counts[row];
    Relation shaved(out.schema());
    for (const auto& [row, count] : counts) {
      int keep = count > 1 ? count - 1 : count;
      for (int i = 0; i < keep; ++i) shaved.AddRow(Row(row));
    }
    return shaved;
  };

  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  bool caught = false;
  for (int seed = 0; seed < 200 && !caught; ++seed) {
    FuzzCase c = BuildCase(seed);
    std::optional<std::string> diff;
    try {
      diff = Diverges(c.plan, c.catalog, buggy);
    } catch (const std::exception&) {
      continue;
    }
    if (!diff.has_value()) continue;
    caught = true;
    PlanPtr small = ShrinkPlan(c.plan, c.catalog, buggy);
    Catalog data = ShrinkRows(small, c.catalog, buggy);
    std::string small_diff = Diverges(small, data, buggy).value_or(*diff);
    std::string path =
        DumpReproducer(dir, seed, small, data, small_diff, c.description);

    // The dump must be a self-contained replayable script.
    std::ifstream file(path);
    ASSERT_TRUE(file.good()) << path;
    std::stringstream content;
    content << file.rdbuf();
    std::string text = content.str();
    EXPECT_NE(text.find("CREATE TABLE"), std::string::npos);
    EXPECT_NE(text.find("SELECT"), std::string::npos);
    EXPECT_NE(text.find("divergence:"), std::string::npos);

    // Shrinking must not lose the divergence, and the minimal plan
    // should be no larger than the original.
    EXPECT_TRUE(Diverges(small, data, buggy).has_value());
  }
  EXPECT_TRUE(caught)
      << "injected duplicate-dropping bug survived 200 fuzz seeds";
}

}  // namespace
}  // namespace periodk
