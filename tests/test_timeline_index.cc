// TimelineIndex coverage: the checkpointed timeslice index must be
// *row-exact* against the scan path (`TimesliceEncoded`) — same rows in
// the same order — and bag-exact against the naive snapshot-by-snapshot
// oracle, for every t (domain bounds, begin/end endpoints, in between)
// and every checkpoint-interval shape (K = 1, K > #events).  On top of
// the index itself: the executor's routing (ExecStats::index_timeslices,
// stale-index rejection, use_timeline_index = false fallback), the
// rewriter's timeslice pushdown, the middleware's lazy index lifecycle,
// and a concurrent AS-OF serving smoke test.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>

#include "baseline/naive.h"
#include "common/str_util.h"
#include "common/rng.h"
#include "engine/temporal_ops.h"
#include "engine/timeline_index.h"
#include "middleware/temporal_db.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 16};

Relation EncodedRelation(const std::vector<std::array<int64_t, 4>>& rows) {
  Relation rel(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
  for (const auto& r : rows) {
    rel.AddRow({Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2]),
                Value::Int(r[3])});
  }
  return rel;
}

/// Exact comparison: same rows in the same order (stronger than
/// BagEquals — the index promises scan-path row order).
void ExpectRowsIdentical(const Relation& got, const Relation& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  ASSERT_EQ(got.schema().size(), want.schema().size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.rows()[i], want.rows()[i]) << context << " at row " << i;
  }
}

TEST(TimelineIndexTest, TimesliceMatchesScanOnSmallTable) {
  auto rel = std::make_shared<const Relation>(EncodedRelation({
      {1, 10, 3, 10},
      {2, 20, 8, 16},
      {3, 30, 8, 16},
      {1, 11, 0, 3},
      {4, 40, 15, 16},
  }));
  for (int64_t k : {1, 2, 3, 64, 1000}) {
    auto index = TimelineIndex::Build(rel, k);
    ASSERT_NE(index, nullptr);
    EXPECT_TRUE(index->ColumnsAreTrailing());
    for (TimePoint t = -2; t <= 18; ++t) {
      ExpectRowsIdentical(index->Timeslice(t), TimesliceEncoded(*rel, t),
                          "K=" + std::to_string(k) +
                              " t=" + std::to_string(t));
    }
  }
}

TEST(TimelineIndexTest, EndpointAndBoundTimePoints) {
  // t exactly on a begin is alive, exactly on an end is not (half-open
  // [b, e)); domain bounds behave like any other point.
  auto rel = std::make_shared<const Relation>(EncodedRelation({
      {1, 0, 0, 16},   // spans the whole domain
      {2, 0, 5, 9},
  }));
  auto index = TimelineIndex::Build(rel, 2);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->AliveAt(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(index->AliveAt(5), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index->AliveAt(8), (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index->AliveAt(9), (std::vector<uint32_t>{0}));
  EXPECT_EQ(index->AliveAt(15), (std::vector<uint32_t>{0}));
  EXPECT_EQ(index->AliveAt(16), (std::vector<uint32_t>{}));
  EXPECT_EQ(index->AliveAt(-1), (std::vector<uint32_t>{}));
}

TEST(TimelineIndexTest, EmptyTableAndEmptyIntervals) {
  auto empty = std::make_shared<const Relation>(EncodedRelation({}));
  auto index = TimelineIndex::Build(empty, 1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_events(), 0u);
  EXPECT_TRUE(index->Timeslice(5).empty());
  EXPECT_TRUE(index->AliveInRange(0, 16).empty());

  // Empty (b == e) and reversed (b > e) validity intervals are never
  // alive — exactly the scan path's behavior.
  auto degenerate = std::make_shared<const Relation>(EncodedRelation({
      {1, 0, 5, 5},
      {2, 0, 9, 3},
      {3, 0, 2, 4},
  }));
  index = TimelineIndex::Build(degenerate, 1);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_events(), 2u);  // only the valid row
  for (TimePoint t = 0; t < 16; ++t) {
    ExpectRowsIdentical(index->Timeslice(t), TimesliceEncoded(*degenerate, t),
                        "degenerate t=" + std::to_string(t));
  }
}

TEST(TimelineIndexTest, RefusesNonIntegerEndpointsAndNarrowSchemas) {
  // The scan path throws on non-integer endpoints; the index must not
  // silently differ, so Build refuses and callers keep the scan.
  Relation rel(Schema::FromNames({"a", "a_begin", "a_end"}));
  rel.AddRow({Value::Int(1), Value::Int(0), Value::Null()});
  EXPECT_EQ(TimelineIndex::Build(
                std::make_shared<const Relation>(std::move(rel))),
            nullptr);

  Relation text(Schema::FromNames({"a", "a_begin", "a_end"}));
  text.AddRow({Value::Int(1), Value::String("x"), Value::Int(3)});
  EXPECT_EQ(TimelineIndex::Build(
                std::make_shared<const Relation>(std::move(text))),
            nullptr);

  Relation narrow(Schema::FromNames({"only"}));
  EXPECT_EQ(TimelineIndex::Build(
                std::make_shared<const Relation>(std::move(narrow))),
            nullptr);
}

TEST(TimelineIndexTest, AliveInRangeMatchesBruteForce) {
  Rng rng(0x7136713);
  for (int iter = 0; iter < 60; ++iter) {
    Catalog catalog =
        RandomEncodedCatalog(&rng, kDomain, /*max_rows=*/20, 0.0,
                             /*empty_validity_chance=*/0.2);
    auto rel = catalog.GetShared("r");
    int64_t k = static_cast<int64_t>(rng.Uniform(6)) + 1;
    auto index = TimelineIndex::Build(rel, k);
    ASSERT_NE(index, nullptr);
    for (int probe = 0; probe < 12; ++probe) {
      TimePoint b = rng.Range(kDomain.tmin - 1, kDomain.tmax);
      TimePoint e = rng.Range(kDomain.tmin - 1, kDomain.tmax + 1);
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < rel->size(); ++i) {
        TimePoint rb = rel->rows()[i][2].AsInt();
        TimePoint re = rel->rows()[i][3].AsInt();
        if (rb < re && rb < e && re > b && b < e) {
          expected.push_back(static_cast<uint32_t>(i));
        }
      }
      EXPECT_EQ(index->AliveInRange(b, e), expected)
          << "[" << b << ", " << e << ") K=" << k;
    }
  }
}

TEST(TimelineIndexTest, RandomTablesRowExactAcrossCheckpointIntervals) {
  Rng rng(0x11d3f00d);
  for (int iter = 0; iter < 80; ++iter) {
    Catalog catalog =
        RandomEncodedCatalog(&rng, kDomain, /*max_rows=*/24, 0.0,
                             /*empty_validity_chance=*/0.15);
    for (const char* name : {"r", "s"}) {
      auto rel = catalog.GetShared(name);
      // K = 1 checkpoints after every event; the last K is far beyond
      // 2 * max_rows, so the index degenerates to one empty checkpoint
      // plus a full replay — both edge shapes must stay exact.
      for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{64}, int64_t{999}}) {
        auto index = TimelineIndex::Build(rel, k);
        ASSERT_NE(index, nullptr);
        for (TimePoint t = kDomain.tmin - 1; t <= kDomain.tmax; ++t) {
          ExpectRowsIdentical(
              index->Timeslice(t), TimesliceEncoded(*rel, t),
              StrCat(name, " iter=", iter, " K=", k, " t=", t));
        }
      }
    }
  }
}

// --- Executor routing. -----------------------------------------------------

TEST(TimelineIndexExecTest, RoutesTimesliceOverScanThroughIndex) {
  Rng rng(0xe0e0e0);
  Catalog catalog = RandomEncodedCatalog(&rng, kDomain, 20);
  auto rel = catalog.GetShared("r");
  catalog.PutIndex("r", TimelineIndex::Build(rel));
  PlanPtr plan = MakeTimeslice(
      MakeScan("r", Schema::FromNames({"a", "b", "a_begin", "a_end"})), 7);

  ExecStats stats;
  ExecOptions options;
  Relation indexed = Execute(plan, catalog, options, &stats);
  EXPECT_EQ(stats.index_timeslices, 1);

  ExecStats scan_stats;
  ExecOptions scan_options;
  scan_options.use_timeline_index = false;
  Relation scanned = Execute(plan, catalog, scan_options, &scan_stats);
  EXPECT_EQ(scan_stats.index_timeslices, 0);

  ExpectRowsIdentical(indexed, scanned, "indexed vs scan");
  ExpectRowsIdentical(indexed, TimesliceEncoded(*rel, 7), "indexed vs direct");
}

TEST(TimelineIndexExecTest, StaleOrMislayoutedIndexFallsBackToScan) {
  Catalog catalog;
  catalog.Put("r", EncodedRelation({{1, 2, 0, 8}, {3, 4, 4, 12}}));
  auto index = TimelineIndex::Build(catalog.GetShared("r"));
  ASSERT_NE(index, nullptr);
  catalog.PutIndex("r", index);
  // Replacing the relation both drops the catalog's index slot and, if
  // an old index were re-attached, fails its BuiltFor identity check.
  catalog.Put("r", EncodedRelation({{9, 9, 0, 16}}));
  EXPECT_EQ(catalog.GetIndex("r"), nullptr);
  catalog.PutIndex("r", index);  // stale on purpose

  PlanPtr plan = MakeTimeslice(
      MakeScan("r", Schema::FromNames({"a", "b", "a_begin", "a_end"})), 5);
  ExecStats stats;
  Relation result = Execute(plan, catalog, ExecOptions{}, &stats);
  EXPECT_EQ(stats.index_timeslices, 0);  // stale index rejected
  ExpectRowsIdentical(result, TimesliceEncoded(catalog.Get("r"), 5), "stale");

  // An index over non-trailing endpoint columns never serves kTimeslice.
  Relation odd(Schema::FromNames({"vb", "ve", "x"}));
  odd.AddRow({Value::Int(0), Value::Int(9), Value::Int(1)});
  catalog.Put("odd", std::move(odd));
  auto odd_index = TimelineIndex::Build(catalog.GetShared("odd"), 0, 1);
  ASSERT_NE(odd_index, nullptr);
  EXPECT_FALSE(odd_index->ColumnsAreTrailing());
  catalog.PutIndex("odd", odd_index);
  PlanPtr odd_plan =
      MakeTimeslice(MakeScan("odd", Schema::FromNames({"vb", "ve", "x"})), 4);
  ExecStats odd_stats;
  Execute(odd_plan, catalog, ExecOptions{}, &odd_stats);
  EXPECT_EQ(odd_stats.index_timeslices, 0);
}

// --- Rewriter pushdown. ----------------------------------------------------

TEST(TimeslicePushdownTest, PushesThroughCoalesceSelectProject) {
  Schema encoded = Schema::FromNames({"a", "b", "a_begin", "a_end"});
  PlanPtr scan = MakeScan("r", encoded);
  PlanPtr select = MakeSelect(scan, Eq(Col(0), LitInt(1)));
  PlanPtr project = MakeProject(
      select, {Col(1, "b"), Col(2, "a_begin"), Col(3, "a_end")},
      {Column("b"), Column("a_begin"), Column("a_end")});
  PlanPtr pushed =
      PushDownTimeslice(MakeTimeslice(MakeCoalesce(project), 5));
  // Expected shape: Project(Select(Timeslice(Scan))).
  ASSERT_EQ(pushed->kind, PlanKind::kProject);
  ASSERT_EQ(pushed->left->kind, PlanKind::kSelect);
  ASSERT_EQ(pushed->left->left->kind, PlanKind::kTimeslice);
  ASSERT_EQ(pushed->left->left->left->kind, PlanKind::kScan);
  EXPECT_EQ(pushed->schema.size(), 1u);
  EXPECT_EQ(pushed->schema.at(0).name, "b");
}

TEST(TimeslicePushdownTest, StopsAtTemporalPredicatesAndComputedEndpoints) {
  Schema encoded = Schema::FromNames({"a", "b", "a_begin", "a_end"});
  // Predicate touching an endpoint column: tau must stay above.
  PlanPtr temporal_select =
      MakeSelect(MakeScan("r", encoded), Ge(Col(2), LitInt(3)));
  PlanPtr pushed = PushDownTimeslice(MakeTimeslice(temporal_select, 5));
  EXPECT_EQ(pushed->kind, PlanKind::kTimeslice);
  EXPECT_EQ(pushed->left->kind, PlanKind::kSelect);

  // An endpoint that is computed, not a plain column reference.
  PlanPtr computed = MakeProject(
      MakeScan("r", encoded),
      {Col(0, "a"), Col(2, "a_begin"), Add(Col(3), LitInt(1))},
      {Column("a"), Column("a_begin"), Column("a_end")});
  pushed = PushDownTimeslice(MakeTimeslice(computed, 5));
  EXPECT_EQ(pushed->kind, PlanKind::kTimeslice);
  EXPECT_EQ(pushed->left->kind, PlanKind::kProject);

  // A data column reading an endpoint column: slicing below would drop
  // the column it needs.
  PlanPtr leaky = MakeProject(
      MakeScan("r", encoded), {Col(2, "copy"), Col(2, "b"), Col(3, "e")},
      {Column("copy"), Column("b"), Column("e")});
  pushed = PushDownTimeslice(MakeTimeslice(leaky, 5));
  EXPECT_EQ(pushed->kind, PlanKind::kTimeslice);
  EXPECT_EQ(pushed->left->kind, PlanKind::kProject);
}

TEST(TimeslicePushdownTest, CrossesReorderingAndNonTrailingProjections) {
  Schema encoded = Schema::FromNames({"a", "b", "a_begin", "a_end"});
  // Projection that moves the endpoints away from the trailing
  // positions (swapped, even).  tau_{t} over its output reads columns
  // (1, 2) = (a_end, a_begin) of the child, so the pushdown must land a
  // generalized slice reading exactly those child columns.
  PlanPtr reshaped = MakeProject(
      MakeScan("r", encoded), {Col(0, "a"), Col(3, "e"), Col(2, "b2")},
      {Column("a"), Column("e"), Column("b2")});
  PlanPtr pushed = PushDownTimeslice(MakeTimeslice(reshaped, 5));
  ASSERT_EQ(pushed->kind, PlanKind::kProject);
  ASSERT_EQ(pushed->left->kind, PlanKind::kTimeslice);
  EXPECT_EQ(pushed->left->slice_begin_col, 3);
  EXPECT_EQ(pushed->left->slice_end_col, 2);
  ASSERT_EQ(pushed->left->left->kind, PlanKind::kScan);
  EXPECT_EQ(pushed->schema.size(), 1u);
  EXPECT_EQ(pushed->schema.at(0).name, "a");

  // Equivalence on data, including rows the swap makes empty.
  Catalog catalog;
  catalog.Put("r", EncodedRelation(
                       {{1, 10, 3, 9}, {2, 20, 0, 4}, {3, 30, 9, 3}}));
  PlanPtr sliced = MakeTimeslice(reshaped, 5);
  ExpectRowsIdentical(Execute(pushed, catalog), Execute(sliced, catalog),
                      "reordered endpoints");
}

// The encoded-table projection of a period table whose interval columns
// are stored away from the trailing position (the shape the middleware
// binder emits): the pushdown must cross it and the executor must serve
// the landed slice from an index over the stored positions.
TEST(TimeslicePushdownTest, NonTrailingPeriodTableReachesScanAndIndex) {
  Schema stored = Schema::FromNames({"vb", "ve", "x", "y"});
  PlanPtr scan = MakeScan("p", stored);
  // Encoded projection: data columns first, endpoints last.
  PlanPtr encoded = MakeProjectColumns(scan, {2, 3, 0, 1});
  PlanPtr sliced = MakeTimeslice(encoded, 6);
  PlanPtr pushed = PushDownTimeslice(sliced);
  ASSERT_EQ(pushed->kind, PlanKind::kProject);
  ASSERT_EQ(pushed->left->kind, PlanKind::kTimeslice);
  EXPECT_EQ(pushed->left->slice_begin_col, 0);
  EXPECT_EQ(pushed->left->slice_end_col, 1);
  ASSERT_EQ(pushed->left->left->kind, PlanKind::kScan);

  Catalog catalog;
  Relation rel(stored);
  Rng rng(0x5107ab);
  for (int i = 0; i < 40; ++i) {
    TimePoint b = rng.Range(kDomain.tmin, kDomain.tmax - 2);
    TimePoint e = rng.Chance(0.2) ? rng.Range(kDomain.tmin, b)
                                  : rng.Range(b + 1, kDomain.tmax - 1);
    rel.AddRow({Value::Int(b), Value::Int(e), Value::Int(rng.Range(0, 5)),
                Value::Int(rng.Range(0, 5))});
  }
  catalog.Put("p", std::move(rel));
  catalog.PutIndex(
      "p", TimelineIndex::Build(catalog.GetShared("p"), /*begin_col=*/0,
                                /*end_col=*/1));
  for (TimePoint t = kDomain.tmin - 1; t <= kDomain.tmax; ++t) {
    PlanPtr at = PushDownTimeslice(MakeTimeslice(encoded, t));
    ExecStats stats;
    Relation indexed = Execute(at, catalog, ExecOptions{}, &stats);
    EXPECT_EQ(stats.index_timeslices, 1) << "t=" << t;
    ExecOptions scan_options;
    scan_options.use_timeline_index = false;
    Relation scanned = Execute(at, catalog, scan_options);
    ExpectRowsIdentical(indexed, scanned, StrCat("pushed t=", t));
    Relation unpushed = Execute(MakeTimeslice(encoded, t), catalog);
    ExpectRowsIdentical(indexed, unpushed, StrCat("unpushed t=", t));
  }
}

TEST(TimeslicePushdownTest, PushedPlansStayBagEqualOnRandomQueries) {
  Rng rng(0x9a5bacc);
  RandomQueryConfig config;
  config.allow_aggregate = false;  // rewritten agg plans end in
  config.allow_difference = true;  // split-aggregate, not pi/sigma chains
  for (int iter = 0; iter < 60; ++iter) {
    Catalog catalog = RandomEncodedCatalog(&rng, kDomain, 10, 0.1, 0.1);
    RandomQueryGenerator gen(&rng, config);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(3)));
    SnapshotRewriter rewriter(kDomain, RewriteOptions{});
    TimePoint t = rng.Range(kDomain.tmin, kDomain.tmax - 1);
    PlanPtr sliced = MakeTimeslice(rewriter.Rewrite(query), t);
    PlanPtr pushed = PushDownTimeslice(sliced);
    ASSERT_EQ(pushed->schema.size(), sliced->schema.size());
    // Give the pushed plan real indexes so Timeslice-over-scan nodes
    // take the indexed route.
    catalog.PutIndex("r", TimelineIndex::Build(catalog.GetShared("r")));
    catalog.PutIndex("s", TimelineIndex::Build(catalog.GetShared("s")));
    Relation a = Execute(sliced, catalog);
    Relation b = Execute(pushed, catalog);
    ASSERT_TRUE(a.BagEquals(b))
        << "t=" << t << "\noriginal:\n" << sliced->ToString()
        << "\npushed:\n" << pushed->ToString();
    // Abstract-model oracle: tau_t of the naive snapshot-by-snapshot
    // evaluation must agree with both routes (Thm 6.3).
    Relation oracle = TimesliceEncoded(NaiveSnapshotEval(query, catalog,
                                                         kDomain), t);
    ASSERT_TRUE(b.BagEquals(oracle))
        << "t=" << t << "\nquery:\n" << query->ToString();
  }
}

// --- Middleware: AS OF serving, lazy index lifecycle, oracle. --------------

TemporalDB SeededDb(Rng* rng, int rows) {
  TemporalDB db(kDomain);
  EXPECT_TRUE(
      db.CreatePeriodTable("t", {"grp", "val", "vb", "ve"}, "vb", "ve").ok());
  std::vector<Row> batch;
  for (int i = 0; i < rows; ++i) {
    TimePoint b = rng->Range(kDomain.tmin, kDomain.tmax - 2);
    TimePoint e = rng->Range(b + 1, kDomain.tmax - 1);
    batch.push_back({Value::Int(rng->Range(0, 3)), Value::Int(rng->Range(0, 9)),
                     Value::Int(b), Value::Int(e)});
  }
  EXPECT_TRUE(db.InsertRows("t", std::move(batch)).ok());
  return db;
}

TEST(TimelineIndexMiddlewareTest, AsOfQueriesMatchScanPathAndOracle) {
  Rng rng(0xa50f);
  for (int iter = 0; iter < 25; ++iter) {
    TemporalDB db = SeededDb(&rng, static_cast<int>(rng.Uniform(30)));
    for (const char* sql :
         {"SELECT grp, val FROM t", "SELECT val FROM t WHERE grp = 1",
          "SELECT grp FROM t WHERE val >= 4 "
          "UNION ALL SELECT grp FROM t WHERE grp = 2"}) {
      TimePoint t = rng.Range(kDomain.tmin, kDomain.tmax - 1);
      std::string as_of = StrCat("SEQ VT AS OF ", t, " (", sql, ")");
      auto indexed = db.Query(as_of);
      ASSERT_TRUE(indexed.ok()) << as_of;

      RewriteOptions scan_opts;
      scan_opts.use_timeline_index = false;
      scan_opts.push_down_timeslice = false;
      auto scanned = db.Query(as_of, scan_opts);
      ASSERT_TRUE(scanned.ok()) << as_of;
      EXPECT_TRUE(indexed->BagEquals(*scanned)) << as_of;

      // Thm 6.3 commutation check: AS OF t must equal tau_t of the full
      // SEQ VT period result computed on the independent scan path.
      auto encoded = db.Query(StrCat("SEQ VT (", sql, ")"), scan_opts);
      ASSERT_TRUE(encoded.ok());
      Relation oracle = TimesliceEncoded(*encoded, t);
      EXPECT_TRUE(indexed->BagEquals(oracle)) << as_of;
    }
  }
}

TEST(TimelineIndexMiddlewareTest, TimesliceEntryPointUsesIndexAndStaysExact) {
  Rng rng(0x5EED);
  TemporalDB db = SeededDb(&rng, 40);
  RewriteOptions scan_opts;
  scan_opts.use_timeline_index = false;
  for (TimePoint t = kDomain.tmin - 1; t <= kDomain.tmax; ++t) {
    auto indexed = db.Timeslice("t", t);
    ASSERT_TRUE(indexed.ok());
    TemporalDB scan_db(kDomain, scan_opts);
    // Same data through a scan-only instance.
    Relation copy = db.catalog().Get("t");
    ASSERT_TRUE(scan_db.PutPeriodTable("t", std::move(copy), "vb", "ve").ok());
    auto scanned = scan_db.Timeslice("t", t);
    ASSERT_TRUE(scanned.ok());
    ExpectRowsIdentical(*indexed, *scanned, StrCat("t=", t));
  }
}

TEST(TimelineIndexMiddlewareTest, ExplainAnalyzeShowsIndexHits) {
  Rng rng(0xEA);
  TemporalDB db = SeededDb(&rng, 10);
  auto explained = db.ExplainAnalyze("SEQ VT AS OF 5 (SELECT grp FROM t)");
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("index timeslices: 1"), std::string::npos)
      << *explained;
}

TEST(TimelineIndexMiddlewareTest, NonTrailingPeriodTableServedFromIndex) {
  Rng rng(0xb0b);
  TemporalDB db(kDomain);
  ASSERT_TRUE(
      db.CreatePeriodTable("t", {"vb", "grp", "ve", "val"}, "vb", "ve").ok());
  std::vector<Row> batch;
  for (int i = 0; i < 30; ++i) {
    TimePoint b = rng.Range(kDomain.tmin, kDomain.tmax - 2);
    TimePoint e = rng.Range(b + 1, kDomain.tmax - 1);
    batch.push_back({Value::Int(b), Value::Int(rng.Range(0, 3)), Value::Int(e),
                     Value::Int(rng.Range(0, 9))});
  }
  ASSERT_TRUE(db.InsertRows("t", std::move(batch)).ok());
  auto explained = db.ExplainAnalyze("SEQ VT AS OF 5 (SELECT grp, val FROM t)");
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("index timeslices: 1"), std::string::npos)
      << *explained;
  for (TimePoint t = kDomain.tmin; t < kDomain.tmax; ++t) {
    auto indexed =
        db.Query(StrCat("SEQ VT AS OF ", t, " (SELECT grp, val FROM t)"));
    ASSERT_TRUE(indexed.ok());
    RewriteOptions scan_opts;
    scan_opts.use_timeline_index = false;
    scan_opts.push_down_timeslice = false;
    auto scanned =
        db.Query(StrCat("SEQ VT AS OF ", t, " (SELECT grp, val FROM t)"),
                 scan_opts);
    ASSERT_TRUE(scanned.ok());
    EXPECT_TRUE(indexed->BagEquals(*scanned)) << "t=" << t;
  }
}

TEST(TimelineIndexMiddlewareTest, WritersInvalidateLazilyBuiltIndexes) {
  Rng rng(0x17a1);
  TemporalDB db = SeededDb(&rng, 10);
  auto before = db.Query("SEQ VT AS OF 5 (SELECT grp, val FROM t)");
  ASSERT_TRUE(before.ok());
  // Insert a row alive at t = 5; the next AS-OF read must see it (a
  // stale index would keep serving the old snapshot).
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(7), Value::Int(7), Value::Int(0),
                      Value::Int(16)})
          .ok());
  auto after = db.Query("SEQ VT AS OF 5 (SELECT grp, val FROM t)");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1);
}

TEST(TimelineIndexMiddlewareTest, ConcurrentAsOfServingStaysConsistent) {
  TemporalDB db(kDomain);
  ASSERT_TRUE(
      db.CreatePeriodTable("t", {"grp", "val", "vb", "ve"}, "vb", "ve").ok());
  constexpr int kWrites = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = db.Query("SEQ VT AS OF 8 (SELECT val FROM t)");
        if (!result.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int i = 0; i < kWrites; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i % 4), Value::Int(i),
                                Value::Int(i % 8), Value::Int(8 + i % 8)})
                    .ok());
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  // Final state: every row with vb <= 8 < ve is visible.
  auto final_result = db.Query("SEQ VT AS OF 8 (SELECT val FROM t)");
  ASSERT_TRUE(final_result.ok());
  RewriteOptions scan_opts;
  scan_opts.use_timeline_index = false;
  scan_opts.push_down_timeslice = false;
  auto scan_result = db.Query("SEQ VT AS OF 8 (SELECT val FROM t)", scan_opts);
  ASSERT_TRUE(scan_result.ok());
  EXPECT_TRUE(final_result->BagEquals(*scan_result));
}

}  // namespace
}  // namespace periodk
