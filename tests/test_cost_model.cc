// Cost-based planning (docs/architecture.md §11): table statistics
// collection, cardinality estimation, the join-reorder and
// strategy-hint transforms, the executor's row-identical gates, the
// plan cache's use_cost_model keying, and the cost-on/cost-off
// equivalence property over randomized snapshot queries.
#include "ra/cost_model.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "engine/executor.h"
#include "middleware/temporal_db.h"
#include "random_query.h"
#include "rewrite/rewriter.h"
#include "stats/table_stats.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 32};

void AttachStats(Catalog* catalog, const std::string& name, int begin_col = -1,
                 int end_col = -1) {
  catalog->PutStats(
      name, TableStats::Collect(catalog->GetShared(name), begin_col, end_col));
}

// --- Statistics collection. ------------------------------------------------

TEST(TableStatsTest, CollectBasics) {
  Relation rel(Schema::FromNames({"a", "b", "ts", "te"}));
  rel.AddRow({Value::Int(1), Value::String("x"), Value::Int(0), Value::Int(4)});
  rel.AddRow({Value::Int(1), Value::String("y"), Value::Int(2), Value::Int(6)});
  rel.AddRow({Value::Int(3), Value::Null(), Value::Int(5), Value::Int(7)});
  rel.AddRow({Value::Int(7), Value::String("x"), Value::Int(9), Value::Int(3)});
  rel.ToColumnar();
  auto shared = std::make_shared<const Relation>(std::move(rel));
  auto stats = TableStats::Collect(shared, /*begin_col=*/2, /*end_col=*/3);

  EXPECT_EQ(stats->row_count(), 4);
  EXPECT_EQ(stats->column(0).null_count, 0);
  EXPECT_EQ(stats->column(0).distinct, 3);  // {1, 3, 7}
  EXPECT_TRUE(stats->column(0).has_int_range);
  EXPECT_EQ(stats->column(0).min_int, 1);
  EXPECT_EQ(stats->column(0).max_int, 7);
  EXPECT_EQ(stats->column(1).null_count, 1);
  EXPECT_EQ(stats->column(1).distinct, 2);  // {"x", "y"}
  EXPECT_FALSE(stats->column(1).has_int_range);

  // The (9, 3) interval is ill-formed and excluded from the profile.
  ASSERT_TRUE(stats->has_period());
  EXPECT_EQ(stats->interval_count(), 3);
  EXPECT_EQ(stats->min_begin(), 0);
  EXPECT_EQ(stats->max_end(), 7);
  EXPECT_EQ(stats->span(), 7);
  EXPECT_DOUBLE_EQ(stats->avg_interval_length(), (4 + 4 + 2) / 3.0);
  int64_t histogram_total = 0;
  for (int64_t bucket : stats->length_histogram()) histogram_total += bucket;
  EXPECT_EQ(histogram_total, stats->interval_count());
  EXPECT_EQ(stats->FindColumn("b"), 1);
  EXPECT_EQ(stats->FindColumn("nope"), -1);

  // Deterministic rendering, twice.
  EXPECT_EQ(stats->ToString(), stats->ToString());
  EXPECT_NE(stats->ToString().find("rows=4"), std::string::npos);
}

TEST(TableStatsTest, BuiltForIsPointerIdentity) {
  auto r1 = std::make_shared<const Relation>(
      Relation(Schema::FromNames({"a"})));
  auto r2 = std::make_shared<const Relation>(
      Relation(Schema::FromNames({"a"})));
  auto stats = TableStats::Collect(r1);
  EXPECT_TRUE(stats->BuiltFor(r1.get()));
  EXPECT_FALSE(stats->BuiltFor(r2.get()));
}

TEST(TableStatsTest, CatalogDropsStatsOnRepublish) {
  Catalog catalog;
  Relation rel(Schema::FromNames({"a"}));
  rel.AddRow({Value::Int(1)});
  catalog.Put("t", std::move(rel));
  AttachStats(&catalog, "t");
  ASSERT_NE(catalog.GetStats("t"), nullptr);
  Relation next(Schema::FromNames({"a"}));
  catalog.Put("t", std::move(next));
  EXPECT_EQ(catalog.GetStats("t"), nullptr);
}

// --- Cardinality estimation. -----------------------------------------------

// Catalog with three equi-joinable tables of very different sizes:
// a{x, pay} (300 rows, x distinct), b{y, val} (250 rows, y distinct),
// tiny{z} (6 rows).
Catalog JoinCatalog() {
  Catalog catalog;
  Relation a(Schema::FromNames({"x", "pay"}));
  for (int i = 0; i < 300; ++i) {
    a.AddRow({Value::Int(i), Value::Int(i % 7)});
  }
  Relation b(Schema::FromNames({"y", "val"}));
  for (int i = 0; i < 250; ++i) {
    b.AddRow({Value::Int(i), Value::Int(i % 5)});
  }
  Relation tiny(Schema::FromNames({"z"}));
  for (int i = 0; i < 6; ++i) tiny.AddRow({Value::Int(i)});
  catalog.Put("a", std::move(a));
  catalog.Put("b", std::move(b));
  catalog.Put("tiny", std::move(tiny));
  for (const char* name : {"a", "b", "tiny"}) AttachStats(&catalog, name);
  return catalog;
}

PlanPtr ScanOf(const Catalog& catalog, const std::string& name) {
  return MakeScan(name, catalog.Get(name).schema());
}

TEST(CostModelTest, ScanAndSelectEstimates) {
  Catalog catalog = JoinCatalog();
  CostModel cost(&catalog, kDomain);
  PlanPtr scan = ScanOf(catalog, "a");
  EXPECT_DOUBLE_EQ(cost.EstimateRows(scan), 300.0);
  EXPECT_DOUBLE_EQ(cost.EstimateDistinct(*scan, 0), 300.0);
  EXPECT_DOUBLE_EQ(cost.EstimateDistinct(*scan, 1), 7.0);

  // x = const: 1/distinct(x) of the table.
  PlanPtr eq = MakeSelect(scan, Eq(Col(0), LitInt(5)));
  EXPECT_NEAR(cost.EstimateRows(eq), 1.0, 0.01);
  // pay = const over 7 distinct values.
  PlanPtr eq_pay = MakeSelect(scan, Eq(Col(1), LitInt(3)));
  EXPECT_NEAR(cost.EstimateRows(eq_pay), 300.0 / 7.0, 0.5);
}

TEST(CostModelTest, EquiJoinEstimateDividesByDistinct) {
  Catalog catalog = JoinCatalog();
  CostModel cost(&catalog, kDomain);
  PlanPtr join = MakeJoin(ScanOf(catalog, "a"), ScanOf(catalog, "tiny"),
                          Eq(Col(0), Col(2)));
  // 300 * 6 / max(300, 6) = 6 matching rows.
  EXPECT_NEAR(cost.EstimateRows(join), 6.0, 0.5);
}

// --- Join reorder. ---------------------------------------------------------

// Structural shape the binder would produce for
//   FROM a, b, tiny WHERE a.x = tiny.z AND b.y = tiny.z
// if written in an order that crosses a and b first: both conjuncts
// only become coverable at the top join, leaving a 300 x 250 cross
// product underneath.
PlanPtr CrossFirstPlan(const Catalog& catalog) {
  PlanPtr cross = MakeJoin(ScanOf(catalog, "a"), ScanOf(catalog, "b"),
                           Lit(Value::Bool(true)));
  return MakeJoin(cross, ScanOf(catalog, "tiny"),
                  And(Eq(Col(0), Col(4)), Eq(Col(2), Col(4))));
}

TEST(ReorderJoinsTest, EliminatesCrossProduct) {
  Catalog catalog = JoinCatalog();
  CostModel cost(&catalog, kDomain);
  PlanPtr original = CrossFirstPlan(catalog);
  PlanPtr reordered = ReorderJoins(original, cost);
  ASSERT_NE(reordered, nullptr);
  EXPECT_NE(reordered.get(), original.get());
  EXPECT_NE(reordered->ToString(), original->ToString());
  // Same output schema, same bag of rows, drastically lower estimate.
  ASSERT_EQ(reordered->schema.size(), original->schema.size());
  for (size_t i = 0; i < original->schema.size(); ++i) {
    EXPECT_EQ(reordered->schema.at(i).name, original->schema.at(i).name);
  }
  // The root estimate is order-invariant; the win shows up in the
  // intermediate join volume (sum of per-join-node estimates), which
  // drops from cross-product scale to a few rows.
  std::function<double(const Plan*)> join_volume = [&](const Plan* n) {
    if (n == nullptr) return 0.0;
    double total = join_volume(n->left.get()) + join_volume(n->right.get());
    if (n->kind == PlanKind::kJoin) total += cost.EstimateRows(*n);
    return total;
  };
  EXPECT_LT(join_volume(reordered.get()), 0.8 * join_volume(original.get()));
  Relation rows_original = Execute(original, catalog);
  Relation rows_reordered = Execute(reordered, catalog);
  EXPECT_TRUE(rows_reordered.BagEquals(rows_original))
      << rows_reordered.ToString() << "\nvs\n"
      << rows_original.ToString();
}

TEST(ReorderJoinsTest, FlatEstimatesKeepThePlanBitIdentical) {
  // No statistics: every scan estimate degrades to the relation size
  // and no ordering clears the improvement margin, so the exact same
  // plan object comes back.
  Catalog catalog;
  for (const char* name : {"a", "b", "tiny"}) {
    Relation rel(Schema::FromNames({"c"}));
    for (int i = 0; i < 10; ++i) rel.AddRow({Value::Int(i)});
    catalog.Put(name, std::move(rel));
  }
  CostModel cost(&catalog, kDomain);
  PlanPtr join = MakeJoin(
      MakeJoin(ScanOf(catalog, "a"), ScanOf(catalog, "b"),
               Eq(Col(0), Col(1))),
      ScanOf(catalog, "tiny"), Eq(Col(1), Col(2)));
  EXPECT_EQ(ReorderJoins(join, cost).get(), join.get());
}

// --- Executor gates (row-identical substitutions). -------------------------

TEST(CostGateTest, TinyEquiJoinRunsAsNestedLoopRowIdentically) {
  Catalog catalog;
  Relation l(Schema::FromNames({"x"}));
  Relation r(Schema::FromNames({"y"}));
  for (int i = 0; i < 10; ++i) {
    l.AddRow({Value::Int(i % 4)});
    r.AddRow({Value::Int(i % 3)});
  }
  catalog.Put("l", std::move(l));
  catalog.Put("r", std::move(r));
  PlanPtr join = MakeJoin(ScanOf(catalog, "l"), ScanOf(catalog, "r"),
                          Eq(Col(0), Col(1)));

  ExecOptions off;
  off.use_cost_model = false;
  ExecStats stats_off;
  Relation rows_off = Execute(join, catalog, off, &stats_off);
  EXPECT_EQ(stats_off.cost_nl_joins, 0);

  ExecOptions on;
  on.use_cost_model = true;
  ExecStats stats_on;
  Relation rows_on = Execute(join, catalog, on, &stats_on);
  EXPECT_GE(stats_on.cost_nl_joins, 1);
  // The demotion must preserve rows *and* row order.
  EXPECT_EQ(rows_on.ToString(), rows_off.ToString());
}

TEST(CostGateTest, SmallInputsSkipTheThreadPool) {
  // 100-row coalesce with ~100 groups: enough chunks to fan out at 4
  // threads, far below kParallelMinRows.
  Catalog catalog;
  Relation rel(Schema::FromNames({"g", "a_begin", "a_end"}));
  for (int i = 0; i < 100; ++i) {
    rel.AddRow({Value::Int(i), Value::Int(i % 8), Value::Int(i % 8 + 4)});
  }
  catalog.Put("t", std::move(rel));
  PlanPtr plan = MakeCoalesce(ScanOf(catalog, "t"));

  ExecOptions off;
  off.num_threads = 4;
  off.use_cost_model = false;
  ExecStats stats_off;
  Relation rows_off = Execute(plan, catalog, off, &stats_off);
  EXPECT_GT(stats_off.parallel_tasks, 0);

  ExecOptions on = off;
  on.use_cost_model = true;
  ExecStats stats_on;
  Relation rows_on = Execute(plan, catalog, on, &stats_on);
  EXPECT_EQ(stats_on.parallel_tasks, 0);
  EXPECT_GE(stats_on.cost_gated_fanouts, 1);
  // Chunked and sequential runs are bit-identical by construction.
  EXPECT_EQ(rows_on.ToString(), rows_off.ToString());
}

// --- Timeline-index checkpoint sizing. -------------------------------------

TEST(CostModelTest, PickCheckpointIntervalTracksAliveSet) {
  auto profile = [](int rows, int64_t begin, int64_t end) {
    Relation rel(Schema::FromNames({"a", "ts", "te"}));
    for (int i = 0; i < rows; ++i) {
      rel.AddRow({Value::Int(i), Value::Int(begin), Value::Int(end)});
    }
    auto shared = std::make_shared<const Relation>(std::move(rel));
    return TableStats::Collect(shared, 1, 2);
  };
  // Everything alive across the whole span vs. a handful of rows.
  int64_t k_dense = CostModel::PickCheckpointInterval(*profile(5000, 0, 32));
  int64_t k_sparse = CostModel::PickCheckpointInterval(*profile(10, 0, 32));
  for (int64_t k : {k_dense, k_sparse}) {
    EXPECT_GE(k, 16);
    EXPECT_LE(k, 4096);
    EXPECT_EQ(k & (k - 1), 0) << k << " is not a power of two";
  }
  EXPECT_GT(k_dense, k_sparse);
}

// --- Middleware integration. -----------------------------------------------

TemporalDB ExampleDB() {
  TemporalDB db(TimeDomain{0, 24});
  EXPECT_TRUE(db.CreatePeriodTable("works", {"name", "skill", "ts", "te"},
                                   "ts", "te")
                  .ok());
  EXPECT_TRUE(
      db.CreatePeriodTable("assign", {"mach", "skill", "ts", "te"}, "ts", "te")
          .ok());
  auto w = [&](const char* n, const char* s, int64_t b, int64_t e) {
    EXPECT_TRUE(db.Insert("works", {Value::String(n), Value::String(s),
                                    Value::Int(b), Value::Int(e)})
                    .ok());
  };
  w("Ann", "SP", 3, 10);
  w("Joe", "NS", 8, 16);
  w("Sam", "SP", 8, 16);
  auto a = [&](const char* m, const char* s, int64_t b, int64_t e) {
    EXPECT_TRUE(db.Insert("assign", {Value::String(m), Value::String(s),
                                     Value::Int(b), Value::Int(e)})
                    .ok());
  };
  a("M1", "SP", 3, 12);
  a("M2", "SP", 6, 14);
  a("M3", "NS", 3, 16);
  return db;
}

constexpr const char* kJoinSql =
    "SEQ VT (SELECT w.name, a.mach FROM works w, assign a "
    "WHERE w.skill = a.skill)";

TEST(CostModelMiddlewareTest, TinyOverlapJoinGetsTheNestedLoopHint) {
  TemporalDB db = ExampleDB();
  RewriteOptions on = db.options();
  on.use_cost_model = true;
  RewriteOptions off = db.options();
  off.use_cost_model = false;
  auto plan_on = db.Plan(kJoinSql, on);
  auto plan_off = db.Plan(kJoinSql, off);
  ASSERT_TRUE(plan_on.ok()) << plan_on.status().ToString();
  ASSERT_TRUE(plan_off.ok()) << plan_off.status().ToString();
  // 3 x 3 rows is far below kTinyJoinProduct: the hint must appear with
  // the cost model on and must not without.
  EXPECT_NE((*plan_on)->ToString().find("nested loop: tiny inputs"),
            std::string::npos)
      << (*plan_on)->ToString();
  EXPECT_EQ((*plan_off)->ToString().find("nested loop: tiny inputs"),
            std::string::npos)
      << (*plan_off)->ToString();
  // Same result bag either way.
  auto rows_on = db.Query(kJoinSql, on);
  auto rows_off = db.Query(kJoinSql, off);
  ASSERT_TRUE(rows_on.ok());
  ASSERT_TRUE(rows_off.ok());
  EXPECT_TRUE(rows_on->BagEquals(*rows_off));
}

TEST(CostModelMiddlewareTest, PlanCacheNeverCrossesTheCostModelToggle) {
  TemporalDB db = ExampleDB();
  RewriteOptions on = db.options();
  on.use_cost_model = true;
  RewriteOptions off = db.options();
  off.use_cost_model = false;

  ASSERT_TRUE(db.Prepare(kJoinSql, on).ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1);
  int64_t hits = db.plan_cache_stats().hits;

  // Different toggle value: must miss (and bind its own entry), never
  // serve the plan built under the other options.
  ASSERT_TRUE(db.Query(kJoinSql, off).ok());
  EXPECT_EQ(db.plan_cache_stats().hits, hits);
  EXPECT_EQ(db.plan_cache_stats().entries, 2);

  // Matching toggles are hits on their own entries.
  ASSERT_TRUE(db.Query(kJoinSql, on).ok());
  ASSERT_TRUE(db.Query(kJoinSql, off).ok());
  EXPECT_EQ(db.plan_cache_stats().hits, hits + 2);
  EXPECT_EQ(db.plan_cache_stats().entries, 2);

  // The served plans reflect their own options even while both entries
  // are warm.
  auto plan_on = db.Plan(kJoinSql, on);
  auto plan_off = db.Plan(kJoinSql, off);
  ASSERT_TRUE(plan_on.ok());
  ASSERT_TRUE(plan_off.ok());
  EXPECT_NE((*plan_on)->ToString(), (*plan_off)->ToString());
}

TEST(CostModelMiddlewareTest, ExplainAnalyzeIsDeterministicAndAnnotated) {
  TemporalDB db = ExampleDB();
  auto first = db.ExplainAnalyze(kJoinSql);
  auto second = db.ExplainAnalyze(kJoinSql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_NE(first->find("est="), std::string::npos) << *first;
  EXPECT_NE(first->find("actual="), std::string::npos) << *first;

  RewriteOptions off = db.options();
  off.use_cost_model = false;
  db.set_options(off);
  auto plain = db.ExplainAnalyze(kJoinSql);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->find("est="), std::string::npos) << *plain;
}

// --- Cost-on vs cost-off equivalence property. -----------------------------

// Randomized snapshot queries over random data: the cost model may
// reorder joins and demote join strategies, but the result bag must
// match the structural plan's, parallel execution included; when the
// plans render identically, the rows must match exactly (the
// execution-time gates are row-identical by design).
TEST(CostModelPropertyTest, CostOnAgreesWithCostOff) {
  int reordered_plans = 0;
  for (int seed = 0; seed < 48; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 0xc057);
    Catalog catalog = RandomEncodedCatalog(&rng, kDomain, /*max_rows=*/12,
                                           /*null_chance=*/0.1,
                                           /*empty_validity_chance=*/0.1);
    PlanPtr encoded_p = AddRandomPeriodTable(&rng, &catalog, kDomain,
                                             /*max_rows=*/12,
                                             /*null_chance=*/0.1,
                                             /*empty_validity_chance=*/0.1);
    for (const std::string& name : catalog.TableNames()) {
      std::shared_ptr<const Relation> rel = catalog.GetShared(name);
      int b = name == "p" ? 0 : static_cast<int>(rel->schema().size()) - 2;
      int e = name == "p" ? 2 : static_cast<int>(rel->schema().size()) - 1;
      catalog.PutStats(name, TableStats::Collect(rel, b, e));
    }

    RandomQueryConfig qc;
    qc.period_scan_chance = 0.25;
    RandomQueryGenerator gen(&rng, qc);
    PlanPtr query = gen.Generate(3);

    RewriteOptions off_options;
    off_options.use_cost_model = false;
    SnapshotRewriter plain(kDomain, off_options, {{"p", encoded_p}});
    PlanPtr plan_off = plain.Rewrite(query);

    RewriteOptions on_options;
    on_options.use_cost_model = true;
    CostModel cost(&catalog, kDomain);
    SnapshotRewriter costed(kDomain, on_options, {{"p", encoded_p}}, &cost);
    PlanPtr plan_on = ApplyJoinStrategyHints(costed.Rewrite(query), cost);
    if (plan_on->ToString() != plan_off->ToString()) ++reordered_plans;

    ExecOptions exec_off;
    exec_off.use_cost_model = false;
    Relation rows_off = Execute(plan_off, catalog, exec_off);

    ExecOptions exec_on;
    exec_on.use_cost_model = true;
    Relation rows_on = Execute(plan_on, catalog, exec_on);
    EXPECT_TRUE(rows_on.BagEquals(rows_off))
        << "seed " << seed << "\ncost-on plan:\n" << plan_on->ToString()
        << "\ncost-off plan:\n" << plan_off->ToString();
    if (plan_on->ToString() == plan_off->ToString()) {
      EXPECT_EQ(rows_on.ToString(), rows_off.ToString()) << "seed " << seed;
    }

    ExecOptions exec_parallel = exec_on;
    exec_parallel.num_threads = 4;
    Relation rows_parallel = Execute(plan_on, catalog, exec_parallel);
    EXPECT_TRUE(rows_parallel.BagEquals(rows_on)) << "seed " << seed;
  }
  // The corpus must actually exercise the cost-shaped paths, not just
  // reproduce the structural plans 48 times.
  EXPECT_GT(reordered_plans, 0);
}

}  // namespace
}  // namespace periodk
