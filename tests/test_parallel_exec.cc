// Partition-parallel execution: the work-stealing pool itself, and the
// equivalence of parallel operator execution (interval join, hash
// aggregation, coalesce and split+aggregate sweeps) with the sequential
// reference — including the hard guarantee that num_threads == 1 is
// bit-identical to the pre-parallel executor.
#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "engine/executor.h"
#include "engine/temporal_ops.h"
#include "ra/plan.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"

namespace periodk {
namespace {

// --- Thread pool unit tests. -----------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.Run(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int runs = 0;
  pool.Run({[&] { ++runs; }, [&] { ++runs; }});
  EXPECT_EQ(runs, 2);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 7; ++i) tasks.push_back([&] { total.fetch_add(1); });
    pool.Run(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 140);
}

TEST(ThreadPoolTest, PropagatesTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&completed, i] {
      if (i == 5) throw std::runtime_error("task 5 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Run(std::move(tasks)), std::runtime_error);
  // The batch still drained: the failure does not abandon peers.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPoolTest, ChunkPlanCoversRangeWithoutOverlap) {
  for (int64_t n : {0, 1, 2, 7, 100, 4097}) {
    auto ranges = PlanChunks(/*num_threads=*/4, n, /*min_grain=*/1);
    int64_t expect_begin = 0;
    for (const auto& [b, e] : ranges) {
      EXPECT_EQ(b, expect_begin);
      EXPECT_LE(b, e);
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ThreadPoolTest, ChunkPlanRespectsGrainAndSequentialBudget) {
  // A single-thread budget always yields one chunk.
  EXPECT_EQ(PlanChunks(1, 1000, 1).size(), 1u);
  // Grain: a small input must not shatter into per-item chunks.
  EXPECT_EQ(PlanChunks(4, 100, 4096).size(), 1u);
  EXPECT_GT(PlanChunks(4, 100000, 4096).size(), 1u);
}

// --- Operator equivalence. -------------------------------------------------

PlanPtr OverlapJoinPlan(bool with_keys) {
  Schema schema = Schema::FromNames({"a", "b", "a_begin", "a_end"});
  PlanPtr r = MakeScan("r", schema);
  PlanPtr s = MakeScan("s", schema);
  // b1 < e2 AND b2 < e1 (+ equi-key), the shape RewriteJoin emits.
  ExprPtr overlap = And(Lt(Col(2), Col(7)), Lt(Col(6), Col(3)));
  ExprPtr pred = with_keys ? And(Eq(Col(0), Col(4)), overlap) : overlap;
  return MakeJoin(r, s, pred);
}

Catalog BigEncodedCatalog(Rng* rng, int rows, int keys,
                          const TimeDomain& domain) {
  Catalog catalog;
  for (const char* name : {"r", "s"}) {
    Relation rel(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
    rel.Reserve(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      TimePoint b = rng->Range(domain.tmin, domain.tmax - 2);
      TimePoint e = rng->Range(b + 1, std::min(b + 40, domain.tmax));
      rel.AddRow({Value::Int(rng->Range(0, keys)), Value::Int(rng->Range(0, 5)),
                  Value::Int(b), Value::Int(e)});
    }
    catalog.Put(name, std::move(rel));
  }
  return catalog;
}

TEST(ParallelExecTest, IntervalJoinMatchesSequential) {
  Rng rng(7101);
  TimeDomain domain{0, 500};
  Catalog catalog = BigEncodedCatalog(&rng, 3000, 64, domain);
  for (bool with_keys : {true, false}) {
    PlanPtr plan = OverlapJoinPlan(with_keys);
    Relation seq = Execute(plan, catalog);
    ExecStats stats;
    Relation par = Execute(plan, catalog, ExecOptions{true, 4}, &stats);
    EXPECT_TRUE(seq.BagEquals(par)) << "with_keys=" << with_keys;
    if (with_keys) {
      // 64 key partitions fan out; the counter proves the pool ran.
      EXPECT_GT(stats.parallel_tasks, 0);
    } else {
      // A single-bucket pure temporal join stays sequential.
      EXPECT_EQ(stats.parallel_tasks, 0);
    }
  }
}

TEST(ParallelExecTest, HashAggregateMatchesSequential) {
  Rng rng(7102);
  TimeDomain domain{0, 500};
  Catalog catalog = BigEncodedCatalog(&rng, 20000, 100, domain);
  Schema schema = Schema::FromNames({"a", "b", "a_begin", "a_end"});
  PlanPtr agg = MakeAggregate(
      MakeScan("r", schema), {Col(0, "a")}, {Column("a")},
      {AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
       AggExpr{AggFunc::kSum, Col(1), "s"},
       AggExpr{AggFunc::kMin, Col(2), "mn"},
       AggExpr{AggFunc::kMax, Col(3), "mx"},
       AggExpr{AggFunc::kAvg, Col(1), "av"}});
  Relation seq = Execute(agg, catalog);
  ExecStats stats;
  Relation par = Execute(agg, catalog, ExecOptions{true, 4}, &stats);
  EXPECT_TRUE(seq.BagEquals(par));
  EXPECT_GT(stats.parallel_tasks, 0);
}

TEST(ParallelExecTest, CoalesceAndSplitAggregateMatchSequential) {
  Rng rng(7103);
  TimeDomain domain{0, 300};
  Catalog catalog = BigEncodedCatalog(&rng, 8000, 200, domain);
  const Relation& input = catalog.Get("r");
  LazyThreadPool pool(4);

  ExecStats stats;
  OpContext ctx{&pool, &stats};
  Relation seq_c = CoalesceNative(input);
  Relation par_c = CoalesceNative(input, ctx);
  EXPECT_TRUE(seq_c.BagEquals(par_c));

  std::vector<AggExpr> aggs{AggExpr{AggFunc::kCountStar, nullptr, "cnt"},
                            AggExpr{AggFunc::kSum, Col(1), "s"}};
  for (bool gap_rows : {false, true}) {
    Relation seq_a =
        SplitAggregateRelation(input, {0}, aggs, gap_rows, domain);
    Relation par_a =
        SplitAggregateRelation(input, {0}, aggs, gap_rows, domain, true, ctx);
    EXPECT_TRUE(seq_a.BagEquals(par_a)) << "gap_rows=" << gap_rows;
  }
  EXPECT_GT(stats.parallel_tasks, 0);
}

// Randomized end-to-end property: rewritten snapshot queries execute
// identically at 1 and 4 threads; thread count 1 is bit-identical
// (row order included) with the legacy entry point.
TEST(ParallelExecTest, RandomizedSnapshotQueriesAgreeAcrossThreadCounts) {
  Rng rng(7104);
  TimeDomain domain{0, 40};
  SnapshotRewriter rewriter(domain);
  RandomQueryGenerator gen(&rng);
  for (int iter = 0; iter < 120; ++iter) {
    Catalog catalog = RandomEncodedCatalog(&rng, domain, 24, 0.1, 0.1);
    PlanPtr query = gen.Generate(2 + static_cast<int>(rng.Uniform(2)));
    PlanPtr plan = rewriter.Rewrite(query);
    Relation legacy = Execute(plan, catalog);
    Relation one = Execute(plan, catalog, ExecOptions{true, 1});
    Relation four = Execute(plan, catalog, ExecOptions{true, 4});
    ASSERT_EQ(legacy.rows(), one.rows())
        << "iter " << iter << ": thread count 1 must be bit-identical\n"
        << query->ToString();
    ASSERT_TRUE(legacy.BagEquals(four))
        << "iter " << iter << "\n" << query->ToString();
  }
}

// Sequential runs must never touch the pool: the counter stays zero.
TEST(ParallelExecTest, SequentialRunReportsNoParallelTasks) {
  Rng rng(7105);
  TimeDomain domain{0, 500};
  Catalog catalog = BigEncodedCatalog(&rng, 3000, 64, domain);
  ExecStats stats;
  Execute(OverlapJoinPlan(true), catalog, ExecOptions{true, 1}, &stats);
  EXPECT_EQ(stats.parallel_tasks, 0);
}

// EngineError thrown inside a pooled partition must surface intact:
// the aggregate argument does arithmetic on a string column, which
// only fails when a worker evaluates it mid-chunk.
TEST(ParallelExecTest, OperatorErrorPropagatesFromWorkers) {
  Relation rel(Schema::FromNames({"a", "b"}));
  rel.Reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    rel.AddRow({Value::Int(i % 7), Value::String("bad")});
  }
  Catalog catalog;
  catalog.Put("t", std::move(rel));
  PlanPtr agg = MakeAggregate(
      MakeScan("t", Schema::FromNames({"a", "b"})), {Col(0, "a")},
      {Column("a")}, {AggExpr{AggFunc::kSum, Add(Col(1), LitInt(1)), "s"}});
  EXPECT_THROW(Execute(agg, catalog, ExecOptions{true, 4}), EngineError);
}

}  // namespace
}  // namespace periodk
