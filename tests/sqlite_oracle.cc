#include "sqlite_oracle.h"

#include <sqlite3.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"
#include "engine/column.h"

namespace periodk {

namespace {

std::string QuoteIdent(const std::string& name) {
  std::string out = "\"";
  for (char c : name) {
    out += c;
    if (c == '"') out += '"';
  }
  return out + "\"";
}

std::string SqlLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return v.AsBool() ? "1" : "0";
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kDouble: {
      double d = v.AsDouble();
      if (std::isnan(d)) throw EngineError("cannot spell NaN in SQL");
      if (std::isinf(d)) return d > 0 ? "9e999" : "-9e999";
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      std::string s = buf;
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      return out + "'";
    }
  }
  throw EngineError("unknown value type");
}

std::string ColumnDefs(size_t arity) {
  std::string out;
  for (size_t i = 0; i < arity; ++i) {
    if (i > 0) out += ", ";
    out += StrCat("c", i);
  }
  return out;
}

/// RAII prepared statement.
class Stmt {
 public:
  Stmt(sqlite3* db, const std::string& sql) {
    if (sqlite3_prepare_v2(db, sql.c_str(), -1, &stmt_, nullptr) !=
        SQLITE_OK) {
      throw EngineError(
          StrCat("sqlite prepare failed: ", sqlite3_errmsg(db), "\n  ", sql));
    }
  }
  ~Stmt() { sqlite3_finalize(stmt_); }
  sqlite3_stmt* get() { return stmt_; }

 private:
  sqlite3_stmt* stmt_ = nullptr;
};

void Exec(sqlite3* db, const std::string& sql) {
  char* err = nullptr;
  if (sqlite3_exec(db, sql.c_str(), nullptr, nullptr, &err) != SQLITE_OK) {
    std::string msg = err != nullptr ? err : "unknown error";
    sqlite3_free(err);
    throw EngineError(StrCat("sqlite exec failed: ", msg, "\n  ", sql));
  }
}

void BindValue(sqlite3* db, sqlite3_stmt* stmt, int index, const Value& v) {
  int rc = SQLITE_OK;
  switch (v.type()) {
    case ValueType::kNull:
      rc = sqlite3_bind_null(stmt, index);
      break;
    case ValueType::kBool:
      rc = sqlite3_bind_int64(stmt, index, v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      rc = sqlite3_bind_int64(stmt, index, v.AsInt());
      break;
    case ValueType::kDouble:
      rc = sqlite3_bind_double(stmt, index, v.AsDouble());
      break;
    case ValueType::kString:
      rc = sqlite3_bind_text(stmt, index, v.AsString().c_str(), -1,
                             SQLITE_TRANSIENT);
      break;
  }
  if (rc != SQLITE_OK) {
    throw EngineError(StrCat("sqlite bind failed: ", sqlite3_errmsg(db)));
  }
}

/// Columnar bind: straight from the typed arrays / dictionary, no Value
/// round trip and no row-view materialization of the loaded relation.
void BindColumnCell(sqlite3* db, sqlite3_stmt* stmt, int index,
                    const ColumnData& col, size_t row) {
  int rc = SQLITE_OK;
  if (col.IsNull(row)) {
    rc = sqlite3_bind_null(stmt, index);
  } else {
    switch (col.tag()) {
      case ColumnTag::kInt:
        rc = sqlite3_bind_int64(stmt, index, col.ints()[row]);
        break;
      case ColumnTag::kDouble:
        rc = sqlite3_bind_double(stmt, index, col.doubles()[row]);
        break;
      case ColumnTag::kBool:
        rc = sqlite3_bind_int64(stmt, index, col.bools()[row] != 0 ? 1 : 0);
        break;
      case ColumnTag::kString: {
        // SQLITE_STATIC is safe: the dictionary outlives the statement.
        const std::string& s = col.dict()->At(col.codes()[row]);
        rc = sqlite3_bind_text(stmt, index, s.c_str(),
                               static_cast<int>(s.size()), SQLITE_STATIC);
        break;
      }
      case ColumnTag::kMixed:
        BindValue(db, stmt, index, col.mixed()[row]);
        return;
    }
  }
  if (rc != SQLITE_OK) {
    throw EngineError(StrCat("sqlite bind failed: ", sqlite3_errmsg(db)));
  }
}

Value NormalizeValue(const Value& v) {
  // The engine's booleans read back from SQL as integers.
  if (v.type() == ValueType::kBool) return Value::Int(v.AsBool() ? 1 : 0);
  return v;
}

Relation Normalized(const Relation& rel) {
  Relation out(rel.schema());
  for (const Row& row : rel.rows()) {
    Row r;
    r.reserve(row.size());
    for (const Value& v : row) r.push_back(NormalizeValue(v));
    out.AddRow(std::move(r));
  }
  out.SortRows();
  return out;
}

/// Equality for the diff: NULL matches only NULL; numerics compare
/// numerically, doubles with a tiny relative tolerance (SUM/AVG
/// accumulate in different orders on the two sides).
bool ValuesMatch(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  bool numeric_a =
      a.type() == ValueType::kInt || a.type() == ValueType::kDouble;
  bool numeric_b =
      b.type() == ValueType::kInt || b.type() == ValueType::kDouble;
  if (numeric_a != numeric_b) return false;
  if (a.type() == ValueType::kDouble || b.type() == ValueType::kDouble) {
    double x = a.NumericAsDouble();
    double y = b.NumericAsDouble();
    if (x == y) return true;
    double scale = std::max(std::fabs(x), std::fabs(y));
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return a.Compare(b) == 0;
}

}  // namespace

SqliteOracle::SqliteOracle() {
  if (sqlite3_open(":memory:", &db_) != SQLITE_OK) {
    std::string msg = db_ != nullptr ? sqlite3_errmsg(db_) : "out of memory";
    sqlite3_close(db_);
    db_ = nullptr;
    throw EngineError(StrCat("sqlite open failed: ", msg));
  }
  // The engine's LIKE is case-sensitive; SQLite's defaults to not.
  Exec(db_, "PRAGMA case_sensitive_like = ON;");
}

SqliteOracle::~SqliteOracle() { sqlite3_close(db_); }

void SqliteOracle::LoadTable(const std::string& name,
                             const Relation& relation) {
  size_t arity = relation.schema().size();
  if (arity == 0) throw EngineError("cannot load a zero-column table");
  Exec(db_, StrCat("DROP TABLE IF EXISTS ", QuoteIdent(name), ";"));
  Exec(db_, StrCat("CREATE TABLE ", QuoteIdent(name), "(", ColumnDefs(arity),
                   ");"));
  std::string placeholders;
  for (size_t i = 0; i < arity; ++i) {
    placeholders += i > 0 ? ", ?" : "?";
  }
  Stmt insert(db_, StrCat("INSERT INTO ", QuoteIdent(name), " VALUES (",
                          placeholders, ");"));
  Exec(db_, "BEGIN;");
  if (relation.is_columnar()) {
    const std::vector<ColumnData>& cols = relation.columns();
    for (size_t r = 0; r < relation.size(); ++r) {
      for (size_t i = 0; i < arity; ++i) {
        BindColumnCell(db_, insert.get(), static_cast<int>(i) + 1, cols[i], r);
      }
      if (sqlite3_step(insert.get()) != SQLITE_DONE) {
        throw EngineError(
            StrCat("sqlite insert failed: ", sqlite3_errmsg(db_)));
      }
      sqlite3_reset(insert.get());
      sqlite3_clear_bindings(insert.get());
    }
  } else {
    for (const Row& row : relation.rows()) {
      for (size_t i = 0; i < arity; ++i) {
        BindValue(db_, insert.get(), static_cast<int>(i) + 1, row[i]);
      }
      if (sqlite3_step(insert.get()) != SQLITE_DONE) {
        throw EngineError(
            StrCat("sqlite insert failed: ", sqlite3_errmsg(db_)));
      }
      sqlite3_reset(insert.get());
      sqlite3_clear_bindings(insert.get());
    }
  }
  Exec(db_, "COMMIT;");
}

void SqliteOracle::LoadCatalog(const Catalog& catalog) {
  for (const std::string& name : catalog.TableNames()) {
    LoadTable(name, catalog.Get(name));
  }
}

void SqliteOracle::Execute(const std::string& sql) { Exec(db_, sql); }

Relation SqliteOracle::RunScript(const SqlScript& script, size_t arity) {
  for (const std::string& stage : script.setup) Exec(db_, stage);
  return Query(script.query, arity);
}

Relation SqliteOracle::Query(const std::string& sql, size_t arity) {
  Stmt stmt(db_, sql);
  size_t cols = static_cast<size_t>(sqlite3_column_count(stmt.get()));
  if (cols != arity) {
    throw EngineError(StrCat("oracle query returned ", cols,
                             " columns, expected ", arity, "\n  ", sql));
  }
  std::vector<std::string> names;
  for (size_t i = 0; i < arity; ++i) names.push_back(StrCat("c", i));
  Relation out{Schema::FromNames(names)};
  while (true) {
    int rc = sqlite3_step(stmt.get());
    if (rc == SQLITE_DONE) break;
    if (rc != SQLITE_ROW) {
      throw EngineError(StrCat("sqlite step failed: ", sqlite3_errmsg(db_),
                               "\n  ", sql));
    }
    Row row;
    row.reserve(arity);
    for (size_t i = 0; i < arity; ++i) {
      int c = static_cast<int>(i);
      switch (sqlite3_column_type(stmt.get(), c)) {
        case SQLITE_NULL:
          row.push_back(Value::Null());
          break;
        case SQLITE_INTEGER:
          row.push_back(Value::Int(sqlite3_column_int64(stmt.get(), c)));
          break;
        case SQLITE_FLOAT:
          row.push_back(Value::Double(sqlite3_column_double(stmt.get(), c)));
          break;
        case SQLITE_TEXT: {
          const unsigned char* text = sqlite3_column_text(stmt.get(), c);
          row.push_back(Value::String(
              text != nullptr ? reinterpret_cast<const char*>(text) : ""));
          break;
        }
        default:
          throw EngineError("oracle query returned a BLOB column");
      }
    }
    out.AddRow(std::move(row));
  }
  return out;
}

std::optional<std::string> DiffRelations(const Relation& engine,
                                         const Relation& oracle) {
  Relation a = Normalized(engine);
  Relation b = Normalized(oracle);
  std::string prefix;
  if (a.size() != b.size()) {
    prefix = StrCat("row count: engine ", a.size(), " vs oracle ", b.size(),
                    "\n");
  }
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const Row& ra = a.rows()[i];
    const Row& rb = b.rows()[i];
    bool match = ra.size() == rb.size();
    for (size_t c = 0; match && c < ra.size(); ++c) {
      match = ValuesMatch(ra[c], rb[c]);
    }
    if (!match) {
      return StrCat(prefix, "first divergence at sorted row ", i,
                    ":\n  engine: ", RowToString(ra),
                    "\n  oracle: ", RowToString(rb),
                    "\nengine result:\n", a.ToString(20),
                    "oracle result:\n", b.ToString(20));
    }
  }
  if (a.size() != b.size()) {
    const Relation& longer = a.size() > b.size() ? a : b;
    return StrCat(prefix, "extra ",
                  a.size() > b.size() ? "engine" : "oracle", " row: ",
                  RowToString(longer.rows()[n]), "\nengine result:\n",
                  a.ToString(20), "oracle result:\n", b.ToString(20));
  }
  return std::nullopt;
}

std::string BuildReproducerSql(const std::map<std::string, Relation>& tables,
                               const std::string& sql,
                               const std::string& header_comment) {
  std::string out;
  if (!header_comment.empty()) {
    size_t start = 0;
    while (start <= header_comment.size()) {
      size_t end = header_comment.find('\n', start);
      if (end == std::string::npos) end = header_comment.size();
      out += "-- " + header_comment.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  out += "-- Replay with: sqlite3 :memory: < this_file.sql\n";
  for (const auto& [name, rel] : tables) {
    size_t arity = rel.schema().size();
    out += StrCat("DROP TABLE IF EXISTS ", QuoteIdent(name), ";\n");
    out += StrCat("CREATE TABLE ", QuoteIdent(name), "(", ColumnDefs(arity),
                  ");\n");
    for (const Row& row : rel.rows()) {
      out += StrCat("INSERT INTO ", QuoteIdent(name), " VALUES (");
      for (size_t i = 0; i < arity; ++i) {
        if (i > 0) out += ", ";
        out += SqlLiteral(row[i]);
      }
      out += ");\n";
    }
  }
  out += sql;
  out += ";\n";
  return out;
}

}  // namespace periodk
