// Unit tests for intervals and time domains (paper Section 5.1).
#include "temporal/interval.h"

#include <gtest/gtest.h>

namespace periodk {
namespace {

TEST(TimeDomainTest, Basics) {
  TimeDomain dom{0, 24};
  EXPECT_EQ(dom.size(), 24);
  EXPECT_TRUE(dom.Contains(0));
  EXPECT_TRUE(dom.Contains(23));
  EXPECT_FALSE(dom.Contains(24));
  EXPECT_FALSE(dom.Contains(-1));
  EXPECT_EQ(dom.ToString(), "T=[0, 24)");
}

TEST(IntervalTest, ContainsPoint) {
  Interval i(3, 10);
  EXPECT_TRUE(i.Contains(3));
  EXPECT_TRUE(i.Contains(9));
  EXPECT_FALSE(i.Contains(10));
  EXPECT_FALSE(i.Contains(2));
  EXPECT_EQ(i.duration(), 7);
}

TEST(IntervalTest, ContainsInterval) {
  Interval i(3, 10);
  EXPECT_TRUE(i.Contains(Interval(3, 10)));
  EXPECT_TRUE(i.Contains(Interval(4, 9)));
  EXPECT_FALSE(i.Contains(Interval(2, 9)));
  EXPECT_FALSE(i.Contains(Interval(4, 11)));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(3, 10).Overlaps(Interval(8, 16)));
  EXPECT_TRUE(Interval(8, 16).Overlaps(Interval(3, 10)));
  EXPECT_FALSE(Interval(3, 10).Overlaps(Interval(10, 16)));  // adjacent
  EXPECT_FALSE(Interval(3, 10).Overlaps(Interval(11, 16)));
  EXPECT_TRUE(Interval(3, 10).Overlaps(Interval(4, 5)));
}

TEST(IntervalTest, Adjacent) {
  EXPECT_TRUE(Interval(3, 10).Adjacent(Interval(10, 16)));
  EXPECT_TRUE(Interval(10, 16).Adjacent(Interval(3, 10)));
  EXPECT_FALSE(Interval(3, 10).Adjacent(Interval(11, 16)));
  EXPECT_FALSE(Interval(3, 10).Adjacent(Interval(9, 16)));
}

TEST(IntervalTest, Intersect) {
  auto i = Interval::Intersect(Interval(3, 10), Interval(8, 16));
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(*i, Interval(8, 10));
  EXPECT_FALSE(Interval::Intersect(Interval(3, 10), Interval(10, 16)));
  EXPECT_FALSE(Interval::Intersect(Interval(3, 5), Interval(8, 16)));
  // Intersection is symmetric.
  EXPECT_EQ(Interval::Intersect(Interval(8, 16), Interval(3, 10)), i);
}

TEST(IntervalTest, UnionOnlyWhenOverlappingOrAdjacent) {
  EXPECT_EQ(*Interval::Union(Interval(3, 10), Interval(8, 16)),
            Interval(3, 16));
  EXPECT_EQ(*Interval::Union(Interval(3, 10), Interval(10, 16)),
            Interval(3, 16));
  EXPECT_FALSE(Interval::Union(Interval(3, 10), Interval(12, 16)));
}

TEST(IntervalTest, OrderingAndToString) {
  EXPECT_LT(Interval(3, 10), Interval(3, 11));
  EXPECT_LT(Interval(3, 10), Interval(4, 5));
  EXPECT_EQ(Interval(3, 10).ToString(), "[3, 10)");
}

}  // namespace
}  // namespace periodk
