// Differential timeline index coverage (ISSUE 10): every merge path of
// the delta layer must be row-exact against the rebuild-from-scratch
// oracle and the unindexed scan path.  Unit level: WithDelta across
// append batches straddling the compaction threshold, K = 1, empty
// deltas, duplicate rows, and domain-bound endpoints.  Middleware
// level: random Insert/InsertRows interleaved with Timeslice/AS-OF
// probes under every maintenance mode (compact-always, thresholded,
// never-compact, disabled, background), the stale-plan-cache/index
// regression, and the ExplainAnalyze delta counter.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "engine/temporal_ops.h"
#include "engine/timeline_index.h"
#include "middleware/temporal_db.h"
#include "rewrite/rewriter.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 16};

Relation EncodedRelation(const std::vector<std::array<int64_t, 4>>& rows) {
  Relation rel(Schema::FromNames({"a", "b", "a_begin", "a_end"}));
  for (const auto& r : rows) {
    rel.AddRow({Value::Int(r[0]), Value::Int(r[1]), Value::Int(r[2]),
                Value::Int(r[3])});
  }
  return rel;
}

/// Exact comparison: same rows in the same order (the index promises
/// scan-path row order, delta layer included).
void ExpectRowsIdentical(const Relation& got, const Relation& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  ASSERT_EQ(got.schema().size(), want.schema().size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.rows()[i], want.rows()[i]) << context << " at row " << i;
  }
}

/// A random encoded row; occasionally degenerate (empty validity), a
/// domain-spanning interval, or an exact duplicate of an existing row.
Row RandomEncodedRow(Rng* rng, const Relation& existing) {
  if (!existing.empty() && rng->Chance(0.2)) {
    return existing.rows()[rng->Uniform(existing.size())];  // duplicate
  }
  if (rng->Chance(0.1)) {
    // Domain-bound endpoints: alive from the first to the last instant.
    return {Value::Int(rng->Range(0, 3)), Value::Int(rng->Range(0, 9)),
            Value::Int(kDomain.tmin), Value::Int(kDomain.tmax)};
  }
  TimePoint b = rng->Range(kDomain.tmin, kDomain.tmax - 1);
  TimePoint e = rng->Chance(0.15) ? b  // empty validity: never alive
                                  : rng->Range(b + 1, kDomain.tmax);
  return {Value::Int(rng->Range(0, 3)), Value::Int(rng->Range(0, 9)),
          Value::Int(b), Value::Int(e)};
}

// --- Unit level: WithDelta against the rebuild oracle. ---------------------

TEST(IncrementalIndexTest, WithDeltaMatchesRebuildAcrossAppendChains) {
  Rng rng(0xD1FF);
  // K = 1 checkpoints after every event; 3 makes deltas straddle
  // checkpoint boundaries; 64 is the default; 999 never checkpoints.
  for (int64_t k : {int64_t{1}, int64_t{3}, int64_t{64}, int64_t{999}}) {
    for (int iter = 0; iter < 8; ++iter) {
      Relation current = EncodedRelation({});
      for (int i = static_cast<int>(rng.Uniform(6)); i > 0; --i) {
        current.AddRow(RandomEncodedRow(&rng, current));
      }
      auto shared = std::make_shared<const Relation>(current);
      std::shared_ptr<const TimelineIndex> index =
          TimelineIndex::Build(shared, k);
      ASSERT_NE(index, nullptr);
      std::shared_ptr<const TimelineIndex> core;  // set by the first wrap
      for (int batch = 0; batch < 5; ++batch) {
        // Batch sizes 0..4 — empty deltas and threshold-straddlers.
        for (int i = static_cast<int>(rng.Uniform(5)); i > 0; --i) {
          current.AddRow(RandomEncodedRow(&rng, current));
        }
        shared = std::make_shared<const Relation>(current);
        index = TimelineIndex::WithDelta(index, shared);
        ASSERT_NE(index, nullptr) << "K=" << k << " batch=" << batch;
        EXPECT_TRUE(index->has_delta());
        EXPECT_TRUE(index->BuiltFor(shared.get()));
        // Chains flatten: one core, never a delta-of-a-delta.
        ASSERT_NE(index->base(), nullptr);
        EXPECT_FALSE(index->base()->has_delta());
        if (core == nullptr) {
          core = index->base();
        } else {
          EXPECT_EQ(index->base(), core) << "flattening must keep the core";
        }
        auto rebuilt = TimelineIndex::Build(shared, k);
        ASSERT_NE(rebuilt, nullptr);
        EXPECT_EQ(index->num_events(), rebuilt->num_events());
        for (TimePoint t = kDomain.tmin - 1; t <= kDomain.tmax + 1; ++t) {
          std::string ctx = StrCat("K=", k, " iter=", iter, " batch=", batch,
                                   " t=", t);
          // (a) rebuild-from-scratch oracle, (b) unindexed scan path.
          ExpectRowsIdentical(index->Timeslice(t), rebuilt->Timeslice(t), ctx);
          ExpectRowsIdentical(index->Timeslice(t), TimesliceEncoded(*shared, t),
                              ctx);
          EXPECT_EQ(index->AliveAt(t), rebuilt->AliveAt(t)) << ctx;
        }
        for (int probe = 0; probe < 6; ++probe) {
          TimePoint b = rng.Range(kDomain.tmin - 1, kDomain.tmax);
          TimePoint e = rng.Range(kDomain.tmin - 1, kDomain.tmax + 1);
          EXPECT_EQ(index->AliveInRange(b, e), rebuilt->AliveInRange(b, e))
              << "K=" << k << " range [" << b << ", " << e << ")";
        }
      }
    }
  }
}

TEST(IncrementalIndexTest, EmptyDeltaIsValidAndExact) {
  auto rel = std::make_shared<const Relation>(EncodedRelation({
      {1, 10, 0, 5},
      {2, 20, 3, 16},
  }));
  auto base = TimelineIndex::Build(rel, 2);
  ASSERT_NE(base, nullptr);
  // A copy with zero appended rows: the copy-on-write contract holds
  // (prefix identical), the delta is just empty.
  auto same = std::make_shared<const Relation>(*rel);
  auto wrapped = TimelineIndex::WithDelta(base, same);
  ASSERT_NE(wrapped, nullptr);
  EXPECT_TRUE(wrapped->has_delta());
  EXPECT_EQ(wrapped->num_delta_events(), 0u);
  EXPECT_EQ(wrapped->num_events(), base->num_events());
  EXPECT_TRUE(wrapped->BuiltFor(same.get()));
  for (TimePoint t = kDomain.tmin - 1; t <= kDomain.tmax; ++t) {
    ExpectRowsIdentical(wrapped->Timeslice(t), TimesliceEncoded(*same, t),
                        StrCat("t=", t));
  }
}

TEST(IncrementalIndexTest, DuplicateRowsKeepTheirMultiplicity) {
  auto rel = std::make_shared<const Relation>(EncodedRelation({
      {1, 10, 2, 9},
  }));
  auto base = TimelineIndex::Build(rel, 2);
  ASSERT_NE(base, nullptr);
  // Append two exact duplicates of the base row: a timeslice inside the
  // interval must return the row three times (multiset semantics).
  Relation next = *rel;
  next.AddRow({Value::Int(1), Value::Int(10), Value::Int(2), Value::Int(9)});
  next.AddRow({Value::Int(1), Value::Int(10), Value::Int(2), Value::Int(9)});
  auto shared = std::make_shared<const Relation>(std::move(next));
  auto index = TimelineIndex::WithDelta(base, shared);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_delta_events(), 4u);
  EXPECT_EQ(index->Timeslice(5).size(), 3u);
  ExpectRowsIdentical(index->Timeslice(5), TimesliceEncoded(*shared, 5),
                      "duplicates");
}

TEST(IncrementalIndexTest, WithDeltaRefusesBadShapes) {
  auto rel = std::make_shared<const Relation>(EncodedRelation({
      {1, 10, 0, 5},
  }));
  auto base = TimelineIndex::Build(rel, 2);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(TimelineIndex::WithDelta(nullptr, rel), nullptr);
  EXPECT_EQ(TimelineIndex::WithDelta(base, nullptr), nullptr);
  // Arity mismatch: not a copy-on-write append of the same table.
  Relation narrow(Schema::FromNames({"a", "a_begin", "a_end"}));
  EXPECT_EQ(TimelineIndex::WithDelta(
                base, std::make_shared<const Relation>(std::move(narrow))),
            nullptr);
  // Fewer rows than the base covers: prefix contract violated.
  EXPECT_EQ(TimelineIndex::WithDelta(
                base, std::make_shared<const Relation>(EncodedRelation({}))),
            nullptr);
  // Non-integer endpoint in an appended row: the scan path throws on
  // such rows, so the delta refuses exactly like Build does.
  Relation bad = *rel;
  bad.AddRow({Value::Int(2), Value::Int(20), Value::Null(), Value::Int(9)});
  EXPECT_EQ(TimelineIndex::WithDelta(
                base, std::make_shared<const Relation>(std::move(bad))),
            nullptr);
}

// --- Middleware: maintenance modes, thresholds, plan cache. ----------------

TemporalDB SeededDb(Rng* rng, int rows, IndexMaintenanceOptions maint = {}) {
  TemporalDB db(kDomain);
  db.set_index_maintenance(maint);
  EXPECT_TRUE(
      db.CreatePeriodTable("t", {"grp", "val", "vb", "ve"}, "vb", "ve").ok());
  std::vector<Row> batch;
  Relation empty = EncodedRelation({});
  for (int i = 0; i < rows; ++i) batch.push_back(RandomEncodedRow(rng, empty));
  EXPECT_TRUE(db.InsertRows("t", std::move(batch)).ok());
  return db;
}

/// One probe round: the DB's indexed answers vs. (a) an index rebuilt
/// from scratch over the current relation and (b) the scan path.
void ExpectProbesExact(TemporalDB& db, Rng* rng, const std::string& context) {
  std::shared_ptr<const Relation> current = db.catalog().GetShared("t");
  auto rebuilt = TimelineIndex::Build(current);
  ASSERT_NE(rebuilt, nullptr) << context;
  RewriteOptions scan_opts;
  scan_opts.use_timeline_index = false;
  scan_opts.push_down_timeslice = false;
  for (int probe = 0; probe < 3; ++probe) {
    TimePoint t = rng->Range(kDomain.tmin, kDomain.tmax - 1);
    std::string ctx = StrCat(context, " t=", t);
    auto sliced = db.Timeslice("t", t);
    ASSERT_TRUE(sliced.ok()) << ctx;
    ExpectRowsIdentical(*sliced, rebuilt->Timeslice(t), ctx + " (rebuild)");
    ExpectRowsIdentical(*sliced, TimesliceEncoded(*current, t),
                        ctx + " (scan)");
    std::string as_of =
        StrCat("SEQ VT AS OF ", t, " (SELECT grp, val FROM t)");
    auto indexed = db.Query(as_of);
    ASSERT_TRUE(indexed.ok()) << ctx;
    auto scanned = db.Query(as_of, scan_opts);
    ASSERT_TRUE(scanned.ok()) << ctx;
    EXPECT_TRUE(indexed->BagEquals(*scanned)) << ctx;
  }
}

TEST(IncrementalIndexMiddlewareTest, InterleavedWritesAndProbesStayExact) {
  struct Mode {
    const char* name;
    IndexMaintenanceOptions maint;
  };
  std::vector<Mode> modes;
  modes.push_back({"compact-always", {}});
  modes.back().maint.min_compaction_events = 1;
  modes.back().maint.max_compaction_events = 1;
  modes.push_back({"threshold-8", {}});
  modes.back().maint.min_compaction_events = 8;
  modes.back().maint.max_compaction_events = 8;
  modes.push_back({"never-compact", {}});
  modes.back().maint.min_compaction_events = 1 << 30;
  modes.back().maint.max_compaction_events = 1 << 30;
  modes.push_back({"background", {}});
  modes.back().maint.min_compaction_events = 8;
  modes.back().maint.max_compaction_events = 8;
  modes.back().maint.background_compaction = true;
  for (const Mode& mode : modes) {
    Rng rng(0xBEEF ^ static_cast<uint64_t>(mode.name[0]));
    TemporalDB db = SeededDb(&rng, 6, mode.maint);
    ExpectProbesExact(db, &rng, StrCat(mode.name, " warmup"));
    for (int iter = 0; iter < 30; ++iter) {
      const Relation& existing = db.catalog().Get("t");
      if (rng.Chance(0.5)) {
        ASSERT_TRUE(db.Insert("t", RandomEncodedRow(&rng, existing)).ok());
      } else {
        std::vector<Row> batch;
        for (int i = static_cast<int>(rng.Uniform(5)); i > 0; --i) {
          batch.push_back(RandomEncodedRow(&rng, existing));
        }
        ASSERT_TRUE(db.InsertRows("t", std::move(batch)).ok());
      }
      ExpectProbesExact(db, &rng, StrCat(mode.name, " iter=", iter));
    }
    db.WaitForIndexMaintenance();
    ExpectProbesExact(db, &rng, StrCat(mode.name, " settled"));
    IndexMaintenanceStats stats = db.index_maintenance_stats();
    if (std::string(mode.name) == "compact-always") {
      EXPECT_GT(stats.compactions, 0) << mode.name;
    }
    if (std::string(mode.name) == "never-compact") {
      EXPECT_GT(stats.delta_publishes, 0) << mode.name;
      EXPECT_EQ(stats.compactions, 0) << mode.name;
      auto index = db.catalog().GetIndex("t");
      ASSERT_NE(index, nullptr);
      EXPECT_TRUE(index->has_delta());
      EXPECT_GT(index->num_delta_events(), 8u)
          << "deltas must keep accumulating past the (disabled) threshold";
    }
  }
}

TEST(IncrementalIndexMiddlewareTest, DisabledMaintenanceDropsIndexOnWrite) {
  IndexMaintenanceOptions maint;
  maint.maintain_indexes = false;
  Rng rng(0x0FF);
  TemporalDB db = SeededDb(&rng, 10, maint);
  ASSERT_TRUE(db.Query("SEQ VT AS OF 5 (SELECT grp FROM t)").ok());
  ASSERT_NE(db.catalog().GetIndex("t"), nullptr) << "lazy build on read";
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(1), Value::Int(0),
                              Value::Int(16)})
                  .ok());
  // Pre-differential behavior: the write dropped the slot outright.
  EXPECT_EQ(db.catalog().GetIndex("t"), nullptr);
  EXPECT_EQ(db.index_maintenance_stats().delta_publishes, 0);
  ExpectProbesExact(db, &rng, "disabled");
}

// The stale-plan-cache / index interaction regression (ISSUE 10): a
// plan bound and cached *before* an insert must never be served with
// the pre-delta index after it.  Plans and indexes are invalidated
// through different mechanisms (per-table version tags vs. BuiltFor
// pointer identity + the publish under the same exclusive section), so
// this pins their composition: post-insert reads see the new row AND
// still run indexed, through the delta.
TEST(IncrementalIndexMiddlewareTest, CachedPlanNeverServesPreDeltaIndex) {
  Rng rng(0xCAC4E);
  TemporalDB db = SeededDb(&rng, 12);
  const std::string sql = "SEQ VT AS OF 5 (SELECT grp, val FROM t)";
  ASSERT_TRUE(db.Prepare(sql).ok());
  auto before = db.Query(sql);
  ASSERT_TRUE(before.ok());
  EXPECT_GE(db.plan_cache_stats().hits, 1) << "the prepared plan must serve";
  auto old_index = db.catalog().GetIndex("t");
  ASSERT_NE(old_index, nullptr);

  ASSERT_TRUE(db.Insert("t", {Value::Int(7), Value::Int(7), Value::Int(0),
                              Value::Int(16)})
                  .ok());
  // The publish swapped relation and index together (generation tag
  // bumped in the same exclusive section): the slot now holds a
  // delta-carrying index built for the new relation, not the old one.
  auto current = db.catalog().GetShared("t");
  auto new_index = db.catalog().GetIndex("t");
  ASSERT_NE(new_index, nullptr);
  EXPECT_NE(new_index, old_index);
  EXPECT_TRUE(new_index->has_delta());
  EXPECT_TRUE(new_index->BuiltFor(current.get()));
  EXPECT_FALSE(new_index->BuiltFor(nullptr));
  EXPECT_FALSE(old_index->BuiltFor(current.get()))
      << "the executor's BuiltFor check must reject the pre-delta index";

  auto after = db.Query(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() + 1)
      << "a cached plan served a pre-insert snapshot";
  // Still indexed, and the read crossed exactly the one-row delta.
  auto explained = db.ExplainAnalyze(sql);
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->find("index timeslices: 1"), std::string::npos)
      << *explained;
  EXPECT_NE(explained->find("index delta events: 2"), std::string::npos)
      << *explained;
  EXPECT_NE(explained->find("index maintenance: "), std::string::npos)
      << *explained;
}

TEST(IncrementalIndexMiddlewareTest, BackgroundCompactionPublishesUnderTag) {
  IndexMaintenanceOptions maint;
  maint.background_compaction = true;
  maint.min_compaction_events = 4;
  maint.max_compaction_events = 4;
  Rng rng(0xB6);
  TemporalDB db = SeededDb(&rng, 5, maint);
  ASSERT_TRUE(db.Query("SEQ VT AS OF 5 (SELECT grp FROM t)").ok());
  // Two appended rows cross the 4-event threshold; waiting between
  // inserts makes each scheduled compaction settle deterministically.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i), Value::Int(i), Value::Int(1),
                                Value::Int(9)})
                    .ok());
    db.WaitForIndexMaintenance();
  }
  IndexMaintenanceStats stats = db.index_maintenance_stats();
  EXPECT_GE(stats.background_compactions, 1) << stats.ToString();
  EXPECT_GT(stats.delta_publishes, 0) << stats.ToString();
  auto index = db.catalog().GetIndex("t");
  ASSERT_NE(index, nullptr);
  EXPECT_FALSE(index->has_delta()) << "the folded index must have landed";
  EXPECT_TRUE(index->BuiltFor(db.catalog().GetShared("t").get()));

  // Race a writer against the published version: the compaction built
  // for the pre-race state must lose its generation-tag check (or the
  // racing order makes it moot) — either way the live slot may only
  // hold an index for the *current* relation.
  ASSERT_TRUE(db.InsertRows("t", {{Value::Int(8), Value::Int(8), Value::Int(0),
                                   Value::Int(16)},
                                  {Value::Int(9), Value::Int(9), Value::Int(2),
                                   Value::Int(7)}})
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(3), Value::Int(3), Value::Int(4),
                              Value::Int(12)})
                  .ok());
  db.WaitForIndexMaintenance();
  auto current = db.catalog().GetShared("t");
  auto settled = db.catalog().GetIndex("t");
  if (settled != nullptr) {
    EXPECT_TRUE(settled->BuiltFor(current.get()))
        << "a stale compaction must never replace a newer index";
  }
  ExpectProbesExact(db, &rng, "post-race");
}

}  // namespace
}  // namespace periodk
