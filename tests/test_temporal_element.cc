// Tests for temporal K-elements and K-coalescing, covering the paper's
// Examples 5.1-5.3 and Lemma 5.1 (idempotence, uniqueness, equivalence
// preservation) as property tests over every semiring in the library.
#include "temporal/temporal_element.h"

#include <gtest/gtest.h>

#include "semiring/bool_semiring.h"
#include "semiring/lineage_semiring.h"
#include "semiring/nat_semiring.h"
#include "semiring/tropical_semiring.h"

namespace periodk {
namespace {

TEST(TemporalElementTest, TimesliceSumsOverlappingIntervals) {
  // Paper Section 5.1: T = {[00,05) -> 2, [04,05) -> 1} has annotation
  // 2 + 1 = 3 at time 04.
  NatSemiring n;
  TemporalElement<NatSemiring> te;
  te.Add(Interval(0, 5), 2);
  te.Add(Interval(4, 5), 1);
  EXPECT_EQ(Timeslice(n, te, 4), 3);
  EXPECT_EQ(Timeslice(n, te, 3), 2);
  EXPECT_EQ(Timeslice(n, te, 5), 0);
  EXPECT_EQ(Timeslice(n, te, 7), 0);
}

TEST(TemporalElementTest, CoalesceExample53Multiset) {
  // Paper Example 5.3: T_30k = {[3,10) -> 1, [3,13) -> 1} coalesces to
  // {[3,10) -> 2, [10,13) -> 1} under N.
  NatSemiring n;
  TemporalElement<NatSemiring> t30k;
  t30k.Add(Interval(3, 10), 1);
  t30k.Add(Interval(3, 13), 1);
  TemporalElement<NatSemiring> c = Coalesce(n, t30k);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(ToString(n, c), "{[3, 10) -> 2, [10, 13) -> 1}");
}

TEST(TemporalElementTest, CoalesceExample53Set) {
  // Same relation under B coalesces to {[3,13) -> true}.
  BoolSemiring b;
  TemporalElement<BoolSemiring> t30k;
  t30k.Add(Interval(3, 10), true);
  t30k.Add(Interval(3, 13), true);
  TemporalElement<BoolSemiring> c = Coalesce(b, t30k);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.entries()[0].first, Interval(3, 13));
  EXPECT_TRUE(c.entries()[0].second);
}

TEST(TemporalElementTest, CoalesceDropsZeroAnnotations) {
  NatSemiring n;
  TemporalElement<NatSemiring> te;
  te.Add(Interval(3, 10), 0);
  te.Add(Interval(12, 14), 2);
  TemporalElement<NatSemiring> c = Coalesce(n, te);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.entries()[0].first, Interval(12, 14));
}

TEST(TemporalElementTest, CoalesceKeepsGapsSeparate) {
  NatSemiring n;
  TemporalElement<NatSemiring> te;
  te.Add(Interval(3, 10), 1);
  te.Add(Interval(18, 20), 1);
  TemporalElement<NatSemiring> c = Coalesce(n, te);
  EXPECT_EQ(ToString(n, c), "{[3, 10) -> 1, [18, 20) -> 1}");
}

TEST(TemporalElementTest, CoalesceMergesAdjacentEqual) {
  NatSemiring n;
  TemporalElement<NatSemiring> te;
  te.Add(Interval(3, 5), 3);
  te.Add(Interval(5, 9), 3);
  EXPECT_EQ(ToString(n, Coalesce(n, te)), "{[3, 9) -> 3}");
}

TEST(TemporalElementTest, SnapshotEquivalenceExample52) {
  // Paper Example 5.2: T1 ~ T2 ~ T3 (with the multiplicities from
  // Example 5.1: 3 during [03,09), 2 during [18,20)).
  NatSemiring n;
  TemporalElement<NatSemiring> t1;
  t1.Add(Interval(3, 9), 3);
  t1.Add(Interval(18, 20), 2);
  TemporalElement<NatSemiring> t2;
  t2.Add(Interval(3, 9), 1);
  t2.Add(Interval(3, 6), 2);
  t2.Add(Interval(6, 9), 2);
  t2.Add(Interval(18, 20), 2);
  TemporalElement<NatSemiring> t3;
  t3.Add(Interval(3, 5), 3);
  t3.Add(Interval(5, 9), 3);
  t3.Add(Interval(18, 20), 2);
  EXPECT_TRUE(SnapshotEquivalent(n, t1, t2));
  EXPECT_TRUE(SnapshotEquivalent(n, t1, t3));
  TemporalElement<NatSemiring> different;
  different.Add(Interval(3, 9), 3);
  EXPECT_FALSE(SnapshotEquivalent(n, t1, different));
}

// --- Lemma 5.1 as property tests over all semirings. -----------------------

template <typename S>
class CoalesceLemmaTest : public ::testing::Test {};

using AllSemirings = ::testing::Types<BoolSemiring, NatSemiring,
                                      LineageSemiring, TropicalSemiring>;
TYPED_TEST_SUITE(CoalesceLemmaTest, AllSemirings);

TYPED_TEST(CoalesceLemmaTest, Idempotence) {
  TypeParam k;
  Rng rng(0x5eed0001);
  TimeDomain dom{0, 20};
  for (int i = 0; i < 300; ++i) {
    auto te = RandomTemporalElement(k, dom, rng, 5);
    auto c1 = Coalesce(k, te);
    auto c2 = Coalesce(k, c1);
    ASSERT_TRUE(StructurallyEqual(k, c1, c2))
        << "C(C(T)) != C(T) for T = " << ToString(k, te);
  }
}

TYPED_TEST(CoalesceLemmaTest, EquivalencePreservation) {
  TypeParam k;
  Rng rng(0x5eed0002);
  TimeDomain dom{0, 20};
  for (int i = 0; i < 300; ++i) {
    auto te = RandomTemporalElement(k, dom, rng, 5);
    auto c = Coalesce(k, te);
    for (TimePoint t = dom.tmin; t < dom.tmax; ++t) {
      ASSERT_TRUE(k.Equal(Timeslice(k, te, t), Timeslice(k, c, t)))
          << "tau_" << t << " differs after coalescing "
          << ToString(k, te);
    }
  }
}

TYPED_TEST(CoalesceLemmaTest, Uniqueness) {
  // T1 ~ T2 iff C(T1) == C(T2): coalescing is a unique normal form for
  // snapshot-equivalence classes.
  TypeParam k;
  Rng rng(0x5eed0003);
  TimeDomain dom{0, 16};
  for (int i = 0; i < 300; ++i) {
    auto t1 = RandomTemporalElement(k, dom, rng, 4);
    auto t2 = RandomTemporalElement(k, dom, rng, 4);
    bool equivalent = true;
    for (TimePoint t = dom.tmin; t < dom.tmax && equivalent; ++t) {
      equivalent = k.Equal(Timeslice(k, t1, t), Timeslice(k, t2, t));
    }
    bool same_normal_form =
        StructurallyEqual(k, Coalesce(k, t1), Coalesce(k, t2));
    ASSERT_EQ(equivalent, same_normal_form)
        << "uniqueness violated for T1 = " << ToString(k, t1)
        << ", T2 = " << ToString(k, t2);
  }
}

TYPED_TEST(CoalesceLemmaTest, NormalFormShape) {
  // Coalesced elements have disjoint, sorted intervals; adjacent
  // intervals carry different annotations; no zero annotations.
  TypeParam k;
  Rng rng(0x5eed0004);
  TimeDomain dom{0, 20};
  for (int i = 0; i < 300; ++i) {
    auto c = Coalesce(k, RandomTemporalElement(k, dom, rng, 5));
    for (size_t j = 0; j < c.size(); ++j) {
      ASSERT_FALSE(IsZero(k, c.entries()[j].second));
      if (j + 1 < c.size()) {
        const Interval& cur = c.entries()[j].first;
        const Interval& nxt = c.entries()[j + 1].first;
        ASSERT_LE(cur.end, nxt.begin) << "overlapping normal form";
        if (cur.end == nxt.begin) {
          ASSERT_FALSE(k.Equal(c.entries()[j].second,
                               c.entries()[j + 1].second))
              << "adjacent equal annotations not merged";
        }
      }
    }
  }
}

}  // namespace
}  // namespace periodk
