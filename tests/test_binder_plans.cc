// Tests for binder-produced plan *shapes*: predicate pushdown placing
// single-table filters below joins, equi-join conjuncts attached at the
// join (so the executor can use hash joins), encoded-table reordering
// for non-trailing period columns, and EXPLAIN-style plan printing.
#include <gtest/gtest.h>

#include "middleware/temporal_db.h"

namespace periodk {
namespace {

TemporalDB Db() {
  TemporalDB db(TimeDomain{0, 100});
  EXPECT_TRUE(
      db.CreatePeriodTable("emp", {"id", "dept", "sal", "b", "e"}, "b", "e")
          .ok());
  EXPECT_TRUE(
      db.CreatePeriodTable("dept", {"dno", "dname", "b", "e"}, "b", "e").ok());
  // Period columns in the middle: forces the reordering projection.
  EXPECT_TRUE(
      db.CreatePeriodTable("log", {"id", "b", "e", "msg"}, "b", "e").ok());
  return db;
}

const Plan* FindNode(const PlanPtr& plan, PlanKind kind) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == kind) return plan.get();
  if (const Plan* l = FindNode(plan->left, kind)) return l;
  return FindNode(plan->right, kind);
}

TEST(BinderPlanTest, SingleTablePredicatesPushBelowJoin) {
  TemporalDB db = Db();
  auto plan = db.Plan(
      "SELECT e.id FROM emp e, dept d "
      "WHERE e.dept = d.dno AND e.sal > 100 AND d.dname = 'R'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const Plan* join = FindNode(*plan, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  // The join predicate must contain the equi conjunct (hash-joinable),
  // recognized at plan build time...
  EXPECT_EQ(join->join.equi_keys.size(), 1u);
  EXPECT_EQ(join->join.residual, nullptr);
  // ...and both single-table filters sit below it.
  ASSERT_NE(FindNode(join->left, PlanKind::kSelect), nullptr);
  ASSERT_NE(FindNode(join->right, PlanKind::kSelect), nullptr);
}

TEST(BinderPlanTest, SnapshotScanHidesPeriodColumns) {
  TemporalDB db = Db();
  auto plan = db.Plan("SEQ VT (SELECT * FROM emp)");
  ASSERT_TRUE(plan.ok());
  // Final schema: snapshot columns + a_begin/a_end.
  ASSERT_EQ((*plan)->schema.size(), 5u);
  EXPECT_EQ((*plan)->schema.at(0).name, "id");
  EXPECT_EQ((*plan)->schema.at(3).name, "a_begin");
  EXPECT_EQ((*plan)->schema.at(4).name, "a_end");
}

TEST(BinderPlanTest, NonTrailingPeriodColumnsGetReordered) {
  TemporalDB db = Db();
  ASSERT_TRUE(db.Insert("log", {Value::Int(1), Value::Int(10), Value::Int(20),
                                Value::String("boot")})
                  .ok());
  auto result = db.Query("SEQ VT (SELECT msg FROM log)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0][0], Value::String("boot"));
  EXPECT_EQ(result->rows()[0][1], Value::Int(10));
  EXPECT_EQ(result->rows()[0][2], Value::Int(20));
}

TEST(BinderPlanTest, RewrittenAggregateUsesFusedOperatorByDefault) {
  TemporalDB db = Db();
  auto plan =
      db.Plan("SEQ VT (SELECT dept, count(*) AS n FROM emp GROUP BY dept)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(FindNode(*plan, PlanKind::kSplitAggregate), nullptr);
  EXPECT_EQ(FindNode(*plan, PlanKind::kSplit), nullptr);
  RewriteOptions unfused;
  unfused.fuse_aggregation = false;
  auto plan2 = db.Plan(
      "SEQ VT (SELECT dept, count(*) AS n FROM emp GROUP BY dept)", unfused);
  ASSERT_TRUE(plan2.ok());
  EXPECT_EQ(FindNode(*plan2, PlanKind::kSplitAggregate), nullptr);
  EXPECT_NE(FindNode(*plan2, PlanKind::kSplit), nullptr);
  EXPECT_NE(FindNode(*plan2, PlanKind::kAggregate), nullptr);
}

TEST(BinderPlanTest, PlanToStringMentionsEveryOperator) {
  TemporalDB db = Db();
  auto plan = db.Plan(
      "SEQ VT (SELECT dept, count(*) AS n FROM emp WHERE sal > 10 "
      "GROUP BY dept) ORDER BY n DESC");
  ASSERT_TRUE(plan.ok());
  std::string text = (*plan)->ToString();
  for (const char* expected :
       {"Sort", "Coalesce", "SplitAggregate", "Select", "Scan emp"}) {
    EXPECT_NE(text.find(expected), std::string::npos)
        << "missing " << expected << " in:\n" << text;
  }
}

TEST(BinderPlanTest, CrossJoinWithoutPredicates) {
  TemporalDB db = Db();
  ASSERT_TRUE(db.Insert("emp", {Value::Int(1), Value::String("d1"),
                                Value::Int(10), Value::Int(0), Value::Int(50)})
                  .ok());
  ASSERT_TRUE(db.Insert("dept", {Value::String("d1"), Value::String("Dev"),
                                 Value::Int(0), Value::Int(100)})
                  .ok());
  auto result = db.Query("SELECT e.id, d.dname FROM emp e, dept d");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
  // Under snapshot semantics the cross join intersects validity.
  auto snapshot = db.Query("SEQ VT (SELECT e.id, d.dname FROM emp e, dept d)");
  ASSERT_TRUE(snapshot.ok());
  ASSERT_EQ(snapshot->size(), 1u);
  EXPECT_EQ(snapshot->rows()[0][2], Value::Int(0));
  EXPECT_EQ(snapshot->rows()[0][3], Value::Int(50));
}

TEST(BinderPlanTest, OrderByOrdinalAndName) {
  TemporalDB db = Db();
  ASSERT_TRUE(db.Insert("emp", {Value::Int(1), Value::String("d1"),
                                Value::Int(10), Value::Int(0), Value::Int(50)})
                  .ok());
  ASSERT_TRUE(db.Insert("emp", {Value::Int(2), Value::String("d2"),
                                Value::Int(30), Value::Int(0), Value::Int(50)})
                  .ok());
  auto by_name = db.Query("SELECT id, sal FROM emp ORDER BY sal DESC");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->rows()[0][0], Value::Int(2));
  auto by_ordinal = db.Query("SELECT id, sal FROM emp ORDER BY 2");
  ASSERT_TRUE(by_ordinal.ok());
  EXPECT_EQ(by_ordinal->rows()[0][0], Value::Int(1));
  EXPECT_EQ(db.Query("SELECT id FROM emp ORDER BY 9").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Query("SELECT id FROM emp ORDER BY nope").status().code(),
            StatusCode::kBindError);
}

}  // namespace
}  // namespace periodk
