// Probe for Clang's -Wthread-safety over the annotated wrappers in
// common/thread_annotations.h.  Compiled twice by CTest with
// -fsyntax-only -Werror=thread-safety (Clang builds only):
//
//   * as is: the guarded accesses below hold the right locks, so the
//     translation unit must be accepted -- proving the annotations
//     attach to the wrappers at all;
//   * with -DPERIODK_SEED_TS_VIOLATION: Touch() reads the guarded
//     field without the lock, and the test asserts the compiler
//     REJECTS the unit (WILL_FAIL).  If the analysis were silently
//     disabled -- a macro gate rotting, a flag falling out of the CI
//     job -- the seeded violation would compile and the test would
//     fail, which is the point.
#include <cstdint>

#include "common/thread_annotations.h"

namespace periodk {
namespace {

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    value_ += 1;
  }

  int64_t Read() const {
    MutexLock lock(mu_);
    return value_;
  }

  int64_t Touch() const {
#ifdef PERIODK_SEED_TS_VIOLATION
    return value_;  // unguarded read: -Wthread-safety must reject this
#else
    MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  mutable Mutex mu_;
  int64_t value_ PERIODK_GUARDED_BY(mu_) = 0;
};

class SharedCounter {
 public:
  void Set(int64_t v) {
    SharedMutexLock lock(mu_);
    value_ = v;
  }

  int64_t Get() const {
    SharedReaderLock lock(mu_);
    return value_;
  }

 private:
  mutable SharedMutex mu_;
  int64_t value_ PERIODK_GUARDED_BY(mu_) = 0;
};

// Model of the catalog's index-slot publish protocol (differential
// index maintenance): the slot is guarded by the catalog's SharedMutex,
// and a background compaction may only publish its folded index while
// holding that lock exclusively (double-checked against the generation
// tag).  With -DPERIODK_SEED_TS_COMPACTION_VIOLATION the publish skips
// the lock -- exactly the race a miswritten compaction task would
// introduce -- and -Wthread-safety must reject the unit (WILL_FAIL).
class IndexSlot {
 public:
  void ReaderConsult(int64_t* out) const {
    SharedReaderLock lock(catalog_mu_);
    *out = slot_ + generation_;
  }

  void PublishCompacted(int64_t built_for_generation, int64_t index) {
#ifdef PERIODK_SEED_TS_COMPACTION_VIOLATION
    // Unlocked publish: races every reader and writer on the slot.
    if (generation_ == built_for_generation) slot_ = index;
#else
    SharedMutexLock lock(catalog_mu_);
    if (generation_ == built_for_generation) slot_ = index;
#endif
  }

  void WriterAppend(int64_t delta_index) {
    SharedMutexLock lock(catalog_mu_);
    slot_ = delta_index;
    generation_ += 1;
  }

 private:
  mutable SharedMutex catalog_mu_;
  int64_t slot_ PERIODK_GUARDED_BY(catalog_mu_) = 0;
  int64_t generation_ PERIODK_GUARDED_BY(catalog_mu_) = 0;
};

// Odr-use the probes so the definitions are fully analyzed.
int64_t Drive() {
  Counter c;
  c.Increment();
  SharedCounter s;
  s.Set(c.Read());
  IndexSlot slot;
  slot.WriterAppend(1);
  slot.PublishCompacted(1, 2);
  int64_t consulted = 0;
  slot.ReaderConsult(&consulted);
  return s.Get() + c.Touch() + consulted;
}

int64_t sink = Drive();

}  // namespace
}  // namespace periodk
