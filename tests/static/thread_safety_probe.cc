// Probe for Clang's -Wthread-safety over the annotated wrappers in
// common/thread_annotations.h.  Compiled twice by CTest with
// -fsyntax-only -Werror=thread-safety (Clang builds only):
//
//   * as is: the guarded accesses below hold the right locks, so the
//     translation unit must be accepted -- proving the annotations
//     attach to the wrappers at all;
//   * with -DPERIODK_SEED_TS_VIOLATION: Touch() reads the guarded
//     field without the lock, and the test asserts the compiler
//     REJECTS the unit (WILL_FAIL).  If the analysis were silently
//     disabled -- a macro gate rotting, a flag falling out of the CI
//     job -- the seeded violation would compile and the test would
//     fail, which is the point.
#include <cstdint>

#include "common/thread_annotations.h"

namespace periodk {
namespace {

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    value_ += 1;
  }

  int64_t Read() const {
    MutexLock lock(mu_);
    return value_;
  }

  int64_t Touch() const {
#ifdef PERIODK_SEED_TS_VIOLATION
    return value_;  // unguarded read: -Wthread-safety must reject this
#else
    MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  mutable Mutex mu_;
  int64_t value_ PERIODK_GUARDED_BY(mu_) = 0;
};

class SharedCounter {
 public:
  void Set(int64_t v) {
    SharedMutexLock lock(mu_);
    value_ = v;
  }

  int64_t Get() const {
    SharedReaderLock lock(mu_);
    return value_;
  }

 private:
  mutable SharedMutex mu_;
  int64_t value_ PERIODK_GUARDED_BY(mu_) = 0;
};

// Odr-use the probes so the definitions are fully analyzed.
int64_t Drive() {
  Counter c;
  c.Increment();
  SharedCounter s;
  s.Set(c.Read());
  return s.Get() + c.Touch();
}

int64_t sink = Drive();

}  // namespace
}  // namespace periodk
