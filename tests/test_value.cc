// Unit tests for the dynamically typed Value and row helpers.
#include "common/value.h"

#include <gtest/gtest.h>

namespace periodk {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // null < bool < numeric < string.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::String(""));
}

TEST(ValueTest, NumericComparesAcrossIntAndDouble) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_LT(Value::Int(3), Value::Double(3.5));
  EXPECT_LT(Value::Double(2.5), Value::Int(3));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, NullsEqualUnderTotalOrder) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, SqlCompareNullPropagates) {
  EXPECT_FALSE(SqlCompare(Value::Null(), Value::Int(1)).has_value());
  EXPECT_FALSE(SqlCompare(Value::Int(1), Value::Null()).has_value());
  EXPECT_EQ(SqlCompare(Value::Int(1), Value::Int(1)).value(), 0);
  EXPECT_LT(SqlCompare(Value::Int(1), Value::Int(2)).value(), 0);
  EXPECT_GT(SqlCompare(Value::String("b"), Value::String("a")).value(), 0);
}

TEST(ValueTest, SqlCompareIncomparableTypes) {
  EXPECT_FALSE(SqlCompare(Value::Int(1), Value::String("1")).has_value());
  EXPECT_FALSE(SqlCompare(Value::Bool(true), Value::Int(1)).has_value());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Int(1), Value::String("y")};
  Row c = {Value::Int(1)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  EXPECT_LT(CompareRows(c, a), 0);  // prefix sorts first
}

TEST(RowTest, HashConsistentWithEquality) {
  Row a = {Value::Int(3), Value::Null()};
  Row b = {Value::Double(3.0), Value::Null()};
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_EQ(RowHash()(a), RowHash()(b));
}

TEST(RowTest, ToString) {
  Row r = {Value::Int(1), Value::String("a"), Value::Null()};
  EXPECT_EQ(RowToString(r), "(1, a, NULL)");
}

}  // namespace
}  // namespace periodk
