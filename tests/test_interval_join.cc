// The sweep-based interval-overlap join (engine/interval_join.h) and
// the join-predicate analysis feeding it (ra/join_analysis.h): unit
// tests for the structural recognition, plus randomized property tests
// asserting bag equality against the nested-loop reference across
// equi+overlap and overlap-only predicates -- including NULL keys,
// NULL/ill-typed endpoints and empty-validity rows, which must take the
// slow lane rather than silently diverge from SQL comparison semantics.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/str_util.h"
#include "engine/executor.h"
#include "engine/interval_join.h"
#include "engine/timeline_index.h"
#include "ra/join_analysis.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

// Predicate helpers over two concatenated {a, b, a_begin, a_end}
// schemas: left columns 0..3, right columns 4..7.
ExprPtr OverlapPred() {
  return And(Lt(Col(2), Col(7)), Lt(Col(6), Col(3)));
}

Schema EncodedAbSchema() {
  return Schema::FromNames({"a", "b", "a_begin", "a_end"});
}

const Plan* FindJoin(const PlanPtr& plan) {
  if (plan == nullptr) return nullptr;
  if (plan->kind == PlanKind::kJoin) return plan.get();
  const Plan* found = FindJoin(plan->left);
  return found != nullptr ? found : FindJoin(plan->right);
}

TEST(JoinAnalysisTest, RecognizesRewriteJoinShape) {
  // theta' AND b1 < e2 AND b2 < e1, the exact shape RewriteJoin emits.
  ExprPtr pred = And(Eq(Col(0), Col(4)), OverlapPred());
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 4);
  ASSERT_EQ(ja.equi_keys.size(), 1u);
  EXPECT_EQ(ja.equi_keys[0], (std::pair<int, int>{0, 0}));
  ASSERT_TRUE(ja.overlap.has_value());
  EXPECT_EQ(ja.overlap->left_begin, 2);
  EXPECT_EQ(ja.overlap->left_end, 3);
  EXPECT_EQ(ja.overlap->right_begin, 2);
  EXPECT_EQ(ja.overlap->right_end, 3);
  EXPECT_EQ(ja.residual, nullptr);
}

TEST(JoinAnalysisTest, RecognizesFlippedComparisons) {
  // b1 < e2 written as e2 > b1, b2 < e1 as e1 > b2.
  ExprPtr pred = And(Gt(Col(7), Col(2)), Gt(Col(3), Col(6)));
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 4);
  ASSERT_TRUE(ja.overlap.has_value());
  EXPECT_EQ(ja.overlap->left_begin, 2);
  EXPECT_EQ(ja.overlap->left_end, 3);
  EXPECT_EQ(ja.overlap->right_begin, 2);
  EXPECT_EQ(ja.overlap->right_end, 3);
  EXPECT_TRUE(ja.equi_keys.empty());
  EXPECT_EQ(ja.residual, nullptr);
}

TEST(JoinAnalysisTest, SameSideComparisonStaysResidual) {
  ExprPtr pred = And(Lt(Col(0), Col(1)), Lt(Col(4), Col(5)));
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 4);
  EXPECT_FALSE(ja.overlap.has_value());
  ASSERT_NE(ja.residual, nullptr);
}

TEST(JoinAnalysisTest, UnmatchedHalfStaysResidual) {
  // Only one direction present: no overlap conjunct, the inequality
  // must survive in the residual.
  ExprPtr pred = And(Eq(Col(0), Col(4)), Lt(Col(2), Col(7)));
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 4);
  EXPECT_FALSE(ja.overlap.has_value());
  ASSERT_EQ(ja.equi_keys.size(), 1u);
  ASSERT_NE(ja.residual, nullptr);
}

TEST(JoinAnalysisTest, ExtraConjunctsLandInResidual) {
  ExprPtr pred = AndAll({Eq(Col(0), Col(4)), OverlapPred(),
                         Ne(Col(1), Col(5)), Lt(Col(0), LitInt(10))});
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 4);
  EXPECT_TRUE(ja.overlap.has_value());
  EXPECT_EQ(ja.equi_keys.size(), 1u);
  ASSERT_NE(ja.residual, nullptr);
}

TEST(JoinAnalysisTest, RewriterJoinPlansCarryOverlapStructurally) {
  // The plan REWR produces for a snapshot join must route through the
  // sweep: its kJoin node carries the recognized overlap.
  SnapshotRewriter rewriter(kExampleDomain, RewriteOptions{});
  PlanPtr query =
      MakeJoin(MakeScan("works", WorksSnapshotSchema()),
               MakeScan("assign", AssignSnapshotSchema()),
               Eq(Col(1), Col(3)));
  PlanPtr rewritten = rewriter.Rewrite(query);
  const Plan* node = FindJoin(rewritten);
  ASSERT_NE(node, nullptr);
  ASSERT_TRUE(node->join.overlap.has_value());
  ASSERT_EQ(node->join.equi_keys.size(), 1u);
  EXPECT_EQ(node->join.residual, nullptr);
}

TEST(IntervalJoinTest, MatchesNestedLoopOnHandPickedEdgeCases) {
  Relation r(EncodedAbSchema());
  // Normal rows, duplicates, an empty-validity row, NULL and string
  // endpoints: everything the slow lane exists for.
  r.AddRow({Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(5)});
  r.AddRow({Value::Int(1), Value::Int(10), Value::Int(0), Value::Int(5)});
  r.AddRow({Value::Int(2), Value::Int(20), Value::Int(7), Value::Int(7)});
  r.AddRow({Value::Int(3), Value::Int(30), Value::Null(), Value::Int(9)});
  r.AddRow({Value::Int(4), Value::Int(40), Value::String("b"),
            Value::String("d")});
  Relation s(EncodedAbSchema());
  s.AddRow({Value::Int(1), Value::Int(11), Value::Int(3), Value::Int(8)});
  s.AddRow({Value::Int(2), Value::Int(21), Value::Int(6), Value::Int(9)});
  s.AddRow({Value::Int(5), Value::Int(51), Value::String("a"),
            Value::String("c")});
  s.AddRow({Value::Null(), Value::Int(0), Value::Int(0), Value::Int(10)});

  Catalog catalog;
  catalog.Put("r", std::move(r));
  catalog.Put("s", std::move(s));
  for (const ExprPtr& pred :
       {OverlapPred(), And(Eq(Col(0), Col(4)), OverlapPred())}) {
    PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                            MakeScan("s", EncodedAbSchema()), pred);
    ASSERT_TRUE(join->join.overlap.has_value());
    Relation sweep = Execute(join, catalog);
    Relation reference = NestedLoopJoin(*join, catalog.Get("r"),
                                        catalog.Get("s"));
    EXPECT_TRUE(sweep.BagEquals(reference))
        << "sweep:\n" << sweep.ToString() << "reference:\n"
        << reference.ToString();
  }
}

TEST(IntervalJoinTest, EmptyIntervalCanStillMatchViaSlowLane) {
  // An empty interval [7, 7) satisfies b1 < e2 AND b2 < e1 against any
  // interval strictly containing the point: the raw predicate does not
  // know about validity, so the sweep must reproduce the match.
  Relation r(EncodedAbSchema());
  r.AddRow({Value::Int(1), Value::Int(0), Value::Int(7), Value::Int(7)});
  Relation s(EncodedAbSchema());
  s.AddRow({Value::Int(1), Value::Int(0), Value::Int(5), Value::Int(9)});
  Catalog catalog;
  catalog.Put("r", std::move(r));
  catalog.Put("s", std::move(s));
  PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                          MakeScan("s", EncodedAbSchema()), OverlapPred());
  Relation out = Execute(join, catalog);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.BagEquals(
      NestedLoopJoin(*join, catalog.Get("r"), catalog.Get("s"))));
}

TEST(IntervalJoinPropertyTest, SweepEqualsNestedLoopReference) {
  TimeDomain domain{0, 40};
  for (uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(seed * 7919 + 17);
    Catalog catalog = RandomEncodedCatalog(&rng, domain, /*max_rows=*/25,
                                           /*null_chance=*/0.2,
                                           /*empty_validity_chance=*/0.15);
    std::vector<ExprPtr> preds = {
        // Pure temporal join (the nested-loop killer).
        OverlapPred(),
        // REWR's equi + overlap shape.
        And(Eq(Col(0), Col(4)), OverlapPred()),
        // With an extra opaque residual.
        AndAll({Eq(Col(0), Col(4)), OverlapPred(), Ne(Col(1), Col(5))}),
        // Flipped comparison spelling.
        And(Gt(Col(7), Col(2)), Gt(Col(3), Col(6))),
        // Data columns participating in the inequality pair: still a
        // valid "overlap" of derived intervals, still must agree.
        And(Lt(Col(1), Col(5)), Lt(Col(6), Col(3))),
    };
    for (size_t p = 0; p < preds.size(); ++p) {
      PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                              MakeScan("s", EncodedAbSchema()), preds[p]);
      ASSERT_TRUE(join->join.overlap.has_value());
      Relation sweep = Execute(join, catalog);
      Relation reference = NestedLoopJoin(*join, catalog.Get("r"),
                                          catalog.Get("s"));
      ASSERT_TRUE(sweep.BagEquals(reference))
          << "seed " << seed << " predicate #" << p << "\nsweep:\n"
          << sweep.ToString() << "reference:\n" << reference.ToString();
    }
  }
}

/// Exact comparison: same rows in the same order.  The index-pruned
/// sweep promises row identity with the unindexed sweep, not just bag
/// equality.
void ExpectRowsIdentical(const Relation& got, const Relation& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.rows()[i], want.rows()[i]) << context << " at row " << i;
  }
}

TEST(IntervalJoinPropertyTest, IndexCandidatesKeepSweepRowExact) {
  // Timeline-index candidate pruning (AliveInRange over the opposite
  // side's endpoint span) must leave the join output row-identical to
  // the unindexed sweep — including NULL keys, empty/reversed validity
  // intervals (slow lane) and duplicate rows.
  TimeDomain domain{0, 40};
  for (uint64_t seed = 0; seed < 80; ++seed) {
    Rng rng(seed * 6151 + 11);
    Catalog catalog = RandomEncodedCatalog(&rng, domain, /*max_rows=*/25,
                                           /*null_chance=*/0.2,
                                           /*empty_validity_chance=*/0.25);
    std::vector<ExprPtr> preds = {
        OverlapPred(),
        And(Eq(Col(0), Col(4)), OverlapPred()),
        AndAll({Eq(Col(0), Col(4)), OverlapPred(), Ne(Col(1), Col(5))}),
    };
    catalog.PutIndex("r", TimelineIndex::Build(catalog.GetShared("r")));
    catalog.PutIndex("s", TimelineIndex::Build(catalog.GetShared("s")));
    for (size_t p = 0; p < preds.size(); ++p) {
      for (const char* rhs : {"s", "r"}) {  // r-s and self-join shapes
        PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                                MakeScan(rhs, EncodedAbSchema()), preds[p]);
        ASSERT_TRUE(join->join.overlap.has_value());
        ExecOptions no_index;
        no_index.use_timeline_index = false;
        ExecStats plain_stats;
        Relation plain = Execute(join, catalog, no_index, &plain_stats);
        EXPECT_EQ(plain_stats.index_join_prunes, 0);
        ExecStats stats;
        Relation pruned = Execute(join, catalog, ExecOptions{}, &stats);
        EXPECT_EQ(stats.index_join_prunes, 2)
            << "seed " << seed << " predicate #" << p;
        ExpectRowsIdentical(pruned, plain,
                            StrCat("seed ", seed, " predicate #", p, " rhs ",
                                   rhs));
      }
    }
  }
}

TEST(IntervalJoinPropertyTest, IndexCandidatesHandleDegenerateSpans) {
  // One side holds only empty/reversed intervals: the combined span
  // collapses (lo >= hi) and pruning must fall back to AliveAt without
  // losing the slow-lane matches those rows still produce.
  Relation r(EncodedAbSchema());
  r.AddRow({Value::Int(1), Value::Int(0), Value::Int(7), Value::Int(7)});
  r.AddRow({Value::Int(2), Value::Int(0), Value::Int(8), Value::Int(6)});
  Relation s(EncodedAbSchema());
  s.AddRow({Value::Int(1), Value::Int(0), Value::Int(5), Value::Int(9)});
  s.AddRow({Value::Int(2), Value::Int(0), Value::Int(2), Value::Int(4)});
  s.AddRow({Value::Int(3), Value::Int(0), Value::Int(30), Value::Int(35)});
  Catalog catalog;
  catalog.Put("r", std::move(r));
  catalog.Put("s", std::move(s));
  catalog.PutIndex("s", TimelineIndex::Build(catalog.GetShared("s")));
  PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                          MakeScan("s", EncodedAbSchema()), OverlapPred());
  ExecOptions no_index;
  no_index.use_timeline_index = false;
  Relation plain = Execute(join, catalog, no_index);
  ExecStats stats;
  Relation pruned = Execute(join, catalog, ExecOptions{}, &stats);
  EXPECT_EQ(stats.index_join_prunes, 1);  // only s carries an index
  ExpectRowsIdentical(pruned, plain, "degenerate span");
  // [7,7) and [8,6) both satisfy the raw conjunct against [5,9): two
  // slow-lane hits the pruning must not lose.
  EXPECT_EQ(plain.size(), 2u);

  // Double endpoints on the unindexed side widen the span via
  // floor/ceil (SQL compares int and double numerically).
  Relation d(EncodedAbSchema());
  d.AddRow({Value::Int(9), Value::Int(0), Value::Double(4.5),
            Value::Double(8.25)});
  catalog.Put("d", std::move(d));
  PlanPtr djoin = MakeJoin(MakeScan("d", EncodedAbSchema()),
                           MakeScan("s", EncodedAbSchema()), OverlapPred());
  Relation dplain = Execute(djoin, catalog, no_index);
  ExecStats dstats;
  Relation dpruned = Execute(djoin, catalog, ExecOptions{}, &dstats);
  EXPECT_EQ(dstats.index_join_prunes, 1);
  ExpectRowsIdentical(dpruned, dplain, "double endpoints");
  EXPECT_EQ(dplain.size(), 1u);  // [4.5, 8.25) overlaps [5, 9) only
}

TEST(IntervalJoinPropertyTest, SelfJoinOverlapOnly) {
  // Self-joins over time have no equi-key at all; the partition
  // degenerates to a single bucket and the sweep must still agree.
  TimeDomain domain{0, 60};
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 104729 + 3);
    Catalog catalog = RandomEncodedCatalog(&rng, domain, /*max_rows=*/30,
                                           /*null_chance=*/0.1,
                                           /*empty_validity_chance=*/0.1);
    PlanPtr join = MakeJoin(MakeScan("r", EncodedAbSchema()),
                            MakeScan("r", EncodedAbSchema()),
                            AndAll({OverlapPred(), Lt(Col(0), Col(4))}));
    ASSERT_TRUE(join->join.overlap.has_value());
    Relation sweep = Execute(join, catalog);
    Relation reference =
        NestedLoopJoin(*join, catalog.Get("r"), catalog.Get("r"));
    ASSERT_TRUE(sweep.BagEquals(reference)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace periodk
