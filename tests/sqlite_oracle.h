// Embedded SQLite oracle for differential testing (docs/testing.md).
//
// The oracle loads the same base relations as the engine's Catalog into
// an in-memory SQLite database (every table "name" gets positional
// columns c0..cN-1, matching the transpiler's column convention), runs
// SQL produced by TranspilePlanToSql, and reads the result back as a
// Relation for multiset comparison against the executor's output.
//
// Comparison is order-insensitive: both sides are canonically sorted,
// engine booleans normalize to SQL integers, and doubles compare with a
// tiny relative tolerance to absorb accumulation-order drift in SUM/AVG.
#ifndef PERIODK_TESTS_SQLITE_ORACLE_H_
#define PERIODK_TESTS_SQLITE_ORACLE_H_

#include <map>
#include <optional>
#include <string>

#include "engine/executor.h"
#include "engine/relation.h"
#include "sql/transpile.h"

struct sqlite3;

namespace periodk {

/// One in-memory SQLite database.  Not thread-safe; create one per test.
class SqliteOracle {
 public:
  /// Opens a fresh :memory: database with case-sensitive LIKE (the
  /// engine's LIKE is case-sensitive).  Throws EngineError on failure.
  SqliteOracle();
  ~SqliteOracle();

  SqliteOracle(const SqliteOracle&) = delete;
  SqliteOracle& operator=(const SqliteOracle&) = delete;

  /// Creates table `name`(c0..cN-1) and inserts every row, binding
  /// values natively (NULL / INTEGER / REAL / TEXT; engine booleans
  /// become 0/1).  Replaces any previous table of the same name.
  void LoadTable(const std::string& name, const Relation& relation);

  /// LoadTable for every table in the catalog.
  void LoadCatalog(const Catalog& catalog);

  /// Runs one or more non-SELECT statements (DDL, temp-table stages).
  void Execute(const std::string& sql);

  /// Runs one SELECT statement and returns its rows; every column must
  /// be NULL / INTEGER / REAL / TEXT.  `arity` is the expected column
  /// count (mismatch throws — it means the transpiler and the plan
  /// disagree about the output schema).
  Relation Query(const std::string& sql, size_t arity);

  /// Runs a transpiled script: every setup stage, then the query.
  /// Stages persist in this database, so run each script in a fresh
  /// oracle (stage names are unique per transpilation, not globally).
  Relation RunScript(const SqlScript& script, size_t arity);

 private:
  sqlite3* db_ = nullptr;
};

/// Multiset comparison with canonical ordering: returns std::nullopt
/// when `engine` and `oracle` are equal as bags (after normalizing
/// engine booleans to integers, with int==double numeric equality and a
/// ~1e-9 relative tolerance between doubles), else a human-readable
/// description of the first divergence.
std::optional<std::string> DiffRelations(const Relation& engine,
                                         const Relation& oracle);

/// A self-contained SQLite reproducer script: CREATE TABLE + INSERT
/// statements for every base table, then the query itself.  Feed to
/// `sqlite3 :memory: < repro.sql` to replay the oracle side.
std::string BuildReproducerSql(
    const std::map<std::string, Relation>& tables, const std::string& sql,
    const std::string& header_comment = "");

}  // namespace periodk

#endif  // PERIODK_TESTS_SQLITE_ORACLE_H_
