// End-to-end middleware tests: SQL in, period relations out.  Covers the
// paper's running example expressed in the SEQ VT dialect, period-column
// normalization, plain (non-snapshot) SQL, ORDER BY handling, binder
// diagnostics, and parity with the naive oracle.
#include "middleware/temporal_db.h"

#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

// The running example with period columns *not* in trailing position,
// exercising the encoded-table reordering path.
TemporalDB MakeExampleDB() {
  TemporalDB db(kExampleDomain);
  EXPECT_TRUE(db.CreatePeriodTable("works", {"ts", "name", "skill", "te"},
                                   "ts", "te")
                  .ok());
  EXPECT_TRUE(
      db.CreatePeriodTable("assign", {"mach", "skill", "ts", "te"}, "ts", "te")
          .ok());
  auto w = [&](const char* n, const char* s, int64_t b, int64_t e) {
    EXPECT_TRUE(db.Insert("works", {Value::Int(b), Value::String(n),
                                    Value::String(s), Value::Int(e)})
                    .ok());
  };
  w("Ann", "SP", 3, 10);
  w("Joe", "NS", 8, 16);
  w("Sam", "SP", 8, 16);
  w("Ann", "SP", 18, 20);
  auto a = [&](const char* m, const char* s, int64_t b, int64_t e) {
    EXPECT_TRUE(db.Insert("assign", {Value::String(m), Value::String(s),
                                     Value::Int(b), Value::Int(e)})
                    .ok());
  };
  a("M1", "SP", 3, 12);
  a("M2", "SP", 6, 14);
  a("M3", "NS", 3, 16);
  return db;
}

TEST(MiddlewareTest, QOnDutySql) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Relation expected = EncodedRelation({"cnt"},
                                      {{{Value::Int(0)}, Interval(0, 3)},
                                       {{Value::Int(1)}, Interval(3, 8)},
                                       {{Value::Int(2)}, Interval(8, 10)},
                                       {{Value::Int(1)}, Interval(10, 16)},
                                       {{Value::Int(0)}, Interval(16, 18)},
                                       {{Value::Int(1)}, Interval(18, 20)},
                                       {{Value::Int(0)}, Interval(20, 24)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, QSkillReqSql) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL "
      "SELECT skill FROM works)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Relation expected =
      EncodedRelation({"skill"}, {{{Value::String("SP")}, Interval(6, 8)},
                                  {{Value::String("SP")}, Interval(10, 12)},
                                  {{Value::String("NS")}, Interval(3, 8)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, PeriodClauseOverridesMetadata) {
  // Period columns can also be given inline; result must be identical.
  TemporalDB db = MakeExampleDB();
  auto with_clause = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works PERIOD (ts, te) "
      "WHERE skill = 'SP')");
  ASSERT_TRUE(with_clause.ok()) << with_clause.status().ToString();
  auto without = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(with_clause->BagEquals(*without));
}

TEST(MiddlewareTest, SnapshotJoinWithAliases) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT w.name, a.mach FROM works w, assign a "
      "WHERE w.skill = a.skill AND a.mach = 'M1')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // M1 requires SP: Ann [3,10), Sam [8,12) (M1 ends at 12).
  Relation expected = EncodedRelation(
      {"name", "mach"},
      {{{Value::String("Ann"), Value::String("M1")}, Interval(3, 10)},
       {{Value::String("Sam"), Value::String("M1")}, Interval(8, 12)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, GroupByWithHaving) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT skill, count(*) AS c FROM works GROUP BY skill "
      "HAVING count(*) >= 2)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only (SP, 2) during [8, 10) survives the HAVING.
  Relation expected = EncodedRelation(
      {"skill", "c"},
      {{{Value::String("SP"), Value::Int(2)}, Interval(8, 10)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, SubqueryInFrom) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT x.skill FROM (SELECT skill FROM works "
      "WHERE name <> 'Joe') AS x WHERE x.skill = 'SP')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Canonical (coalesced) encoding: Ann+Sam overlap during [8, 10).
  Relation expected =
      EncodedRelation({"skill"}, {{{Value::String("SP")}, Interval(3, 8)},
                                  {{Value::String("SP")}, Interval(8, 10)},
                                  {{Value::String("SP")}, Interval(8, 10)},
                                  {{Value::String("SP")}, Interval(10, 16)},
                                  {{Value::String("SP")}, Interval(18, 20)}});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, StarExpansionUsesSnapshotSchema) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query("SEQ VT (SELECT * FROM works WHERE name = 'Joe')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Snapshot star excludes the period columns; the rewriting appends
  // a_begin/a_end.
  ASSERT_EQ(result->schema().size(), 4u);
  EXPECT_EQ(result->schema().at(0).name, "name");
  EXPECT_EQ(result->schema().at(1).name, "skill");
  EXPECT_EQ(result->schema().at(2).name, "a_begin");
  ASSERT_EQ(result->size(), 1u);
}

TEST(MiddlewareTest, OrderByAppliedAfterRewriting) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP') "
      "ORDER BY cnt DESC, a_begin");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 7u);
  EXPECT_EQ(result->rows()[0][0], Value::Int(2));
  EXPECT_EQ(result->rows()[6][0], Value::Int(0));
}

TEST(MiddlewareTest, PlainNonSnapshotSql) {
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SELECT name, te - ts AS hours FROM works WHERE skill = 'SP'");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  Relation expected(Schema::FromNames({"name", "hours"}));
  expected.AddRow({Value::String("Ann"), Value::Int(7)});
  expected.AddRow({Value::String("Sam"), Value::Int(8)});
  expected.AddRow({Value::String("Ann"), Value::Int(2)});
  EXPECT_TRUE(result->BagEquals(expected)) << result->ToString();
}

TEST(MiddlewareTest, TimesliceAccessor) {
  TemporalDB db = MakeExampleDB();
  auto at8 = db.Timeslice("works", 8);
  ASSERT_TRUE(at8.ok());
  EXPECT_EQ(at8->size(), 3u);
  auto at0 = db.Timeslice("works", 0);
  ASSERT_TRUE(at0.ok());
  EXPECT_EQ(at0->size(), 0u);
}

TEST(MiddlewareTest, MatchesNaiveOracleOnRandomSql) {
  TemporalDB db = MakeExampleDB();
  const char* queries[] = {
      "SEQ VT (SELECT skill FROM works)",
      "SEQ VT (SELECT DISTINCT skill FROM works)",
      "SEQ VT (SELECT w.skill, count(*) AS c FROM works w GROUP BY w.skill)",
      "SEQ VT (SELECT mach FROM assign WHERE skill = 'NS' UNION ALL "
      "SELECT name FROM works WHERE skill = 'SP')",
      "SEQ VT (SELECT min(name) AS lo, max(name) AS hi FROM works)",
  };
  for (const char* q : queries) {
    auto plan = db.Plan(q);
    ASSERT_TRUE(plan.ok()) << q;
    auto result = db.Query(q);
    ASSERT_TRUE(result.ok()) << q << ": " << result.status().ToString();
    // Reconstruct the snapshot plan for the oracle: re-bind without
    // rewriting by parsing and binding, then run the naive evaluator
    // over normalized encodings.
    // (The middleware normalizes period columns to trailing position for
    // the rewriter; replicate that here.)
    TemporalDB normalized(kExampleDomain);
    ASSERT_TRUE(normalized
                    .PutPeriodTable("works", WorksRelation(), "a_begin",
                                    "a_end")
                    .ok());
    ASSERT_TRUE(normalized
                    .PutPeriodTable("assign", AssignRelation(), "a_begin",
                                    "a_end")
                    .ok());
    auto normalized_result = normalized.Query(q);
    ASSERT_TRUE(normalized_result.ok()) << q;
    ASSERT_TRUE(result->BagEquals(*normalized_result)) << q;
  }
}

TEST(MiddlewareTest, ErrorDiagnostics) {
  TemporalDB db = MakeExampleDB();
  EXPECT_EQ(db.Query("SELEC a FROM works").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(db.Query("SELECT missing FROM works").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Query("SELECT name FROM nope").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(db.Query("SEQ VT (SELECT skill FROM works w, works w2)")
                .status()
                .code(),
            StatusCode::kBindError);  // ambiguous 'skill'
  // Aggregate of non-grouped column.
  EXPECT_EQ(db.Query("SELECT name, count(*) FROM works GROUP BY skill")
                .status()
                .code(),
            StatusCode::kBindError);
  // Non-period table inside SEQ VT.
  ASSERT_TRUE(db.CreateTable("plain", {"x"}).ok());
  EXPECT_EQ(db.Query("SEQ VT (SELECT x FROM plain)").status().code(),
            StatusCode::kBindError);
  // Insert arity mismatch.
  EXPECT_EQ(db.Insert("plain", {Value::Int(1), Value::Int(2)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.CreateTable("plain", {"x"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(MiddlewareTest, InsertRowsIsAtomicOnArityMismatch) {
  TemporalDB db(kExampleDomain);
  ASSERT_TRUE(db.CreateTable("t", {"a", "b"}).ok());
  // Row 1 is too narrow: nothing may land, not even row 0.
  std::vector<Row> rows = {{Value::Int(1), Value::Int(2)},
                           {Value::Int(3)},
                           {Value::Int(4), Value::Int(5)}};
  Status status = db.InsertRows("t", std::move(rows));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.catalog().Get("t").size(), 0u);
  // A clean batch still lands in full.
  ASSERT_TRUE(db.InsertRows("t", {{Value::Int(1), Value::Int(2)},
                                  {Value::Int(3), Value::Int(4)}})
                  .ok());
  EXPECT_EQ(db.catalog().Get("t").size(), 2u);
  EXPECT_EQ(db.InsertRows("nope", {{Value::Int(1)}}).code(),
            StatusCode::kNotFound);
}

TEST(MiddlewareTest, PeriodTableRejectsIdenticalBeginAndEnd) {
  TemporalDB db(kExampleDomain);
  EXPECT_EQ(db.CreatePeriodTable("t", {"x", "ts"}, "ts", "ts").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(db.catalog().Has("t"));
  Relation rel(Schema::FromNames({"x", "ts"}));
  EXPECT_EQ(db.PutPeriodTable("u", std::move(rel), "ts", "ts").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(db.catalog().Has("u"));
}

TEST(MiddlewareTest, PlanCacheServesRepeatedQueries) {
  TemporalDB db = MakeExampleDB();
  const char* sql =
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')";
  PlanCacheStats before = db.plan_cache_stats();
  auto prepared = db.Prepare(sql);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto first = db.Query(sql);
  ASSERT_TRUE(first.ok());
  auto second = db.Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->BagEquals(*second));
  PlanCacheStats after = db.plan_cache_stats();
  // Prepare planned once; both queries were served from the cache.
  EXPECT_EQ(after.misses - before.misses, 1);
  EXPECT_EQ(after.hits - before.hits, 2);
  EXPECT_EQ(after.entries, 1);
}

TEST(MiddlewareTest, PlanCacheInvalidatedByMutations) {
  TemporalDB db = MakeExampleDB();
  const char* sql = "SEQ VT (SELECT skill FROM works)";
  ASSERT_TRUE(db.Prepare(sql).ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1);
  int64_t flushes = db.plan_cache_stats().invalidations;
  // Insert flushes the cache, and the next query sees the new row.
  ASSERT_TRUE(db.Insert("works", {Value::Int(20), Value::String("Zoe"),
                                  Value::String("SP"), Value::Int(22)})
                  .ok());
  PlanCacheStats after = db.plan_cache_stats();
  EXPECT_EQ(after.entries, 0);
  EXPECT_EQ(after.invalidations, flushes + 1);
  auto result = db.Query(sql);
  ASSERT_TRUE(result.ok());
  // Coalescing may merge the new [20, 22) interval with an adjacent
  // one; it must be covered by some SP row.
  bool found = false;
  for (const Row& row : result->rows()) {
    if (row[0] == Value::String("SP") && row[1].AsInt() <= 20 &&
        row[2].AsInt() >= 22) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result->ToString();
  // CreateTable also invalidates.
  ASSERT_TRUE(db.Prepare(sql).ok());
  ASSERT_TRUE(db.CreateTable("other", {"x"}).ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 0);
}

TEST(MiddlewareTest, PlanCacheSurvivesUnrelatedMutations) {
  TemporalDB db = MakeExampleDB();
  const char* sql = "SEQ VT (SELECT skill FROM works)";
  ASSERT_TRUE(db.Prepare(sql).ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1);
  // Mutating a table the cached plan never reads must keep it hot:
  // cache entries record their base-table set at bind time and only
  // mutations of those tables evict them.
  ASSERT_TRUE(db.CreateTable("unrelated", {"x"}).ok());  // full flush
  ASSERT_TRUE(db.Prepare(sql).ok());
  PlanCacheStats warm = db.plan_cache_stats();
  ASSERT_EQ(warm.entries, 1);
  ASSERT_TRUE(db.Insert("unrelated", {Value::Int(1)}).ok());
  PlanCacheStats after = db.plan_cache_stats();
  EXPECT_EQ(after.entries, 1);
  EXPECT_EQ(after.invalidations, warm.invalidations);
  auto result = db.Query(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(db.plan_cache_stats().hits, warm.hits + 1);
  // A mutation of the plan's own table still evicts exactly it.
  ASSERT_TRUE(db.Insert("works", {Value::Int(30), Value::String("Ada"),
                                  Value::String("SP"), Value::Int(32)})
                  .ok());
  EXPECT_EQ(db.plan_cache_stats().entries, 0);
  EXPECT_EQ(db.plan_cache_stats().invalidations, warm.invalidations + 1);
}

TEST(MiddlewareTest, PlanCacheKeyedByRewriteOptions) {
  TemporalDB db = MakeExampleDB();
  const char* sql = "SEQ VT (SELECT skill FROM assign EXCEPT ALL "
                    "SELECT skill FROM works)";
  auto ours = db.Query(sql);
  ASSERT_TRUE(ours.ok());
  RewriteOptions alignment;
  alignment.semantics = SnapshotSemantics::kAlignment;
  auto theirs = db.Query(sql, alignment);
  ASSERT_TRUE(theirs.ok());
  // Same SQL under different options is a different cache entry — the
  // alignment baseline's (buggy) set-semantics result must not be
  // served from the period-K plan or vice versa.
  EXPECT_EQ(db.plan_cache_stats().entries, 2);
  EXPECT_FALSE(ours->BagEquals(*theirs));
}

TEST(MiddlewareTest, PlanCacheCanBeDisabled) {
  TemporalDB db = MakeExampleDB();
  db.set_plan_cache_enabled(false);
  const char* sql = "SEQ VT (SELECT skill FROM works)";
  auto first = db.Query(sql);
  ASSERT_TRUE(first.ok());
  auto second = db.Query(sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first->BagEquals(*second));
  EXPECT_EQ(db.plan_cache_stats().entries, 0);
  EXPECT_EQ(db.plan_cache_stats().hits, 0);
}

TEST(MiddlewareTest, AggregateExpressionOverAggregates) {
  // Arithmetic over aggregate results (needed by TPC-H Q8/Q14).
  TemporalDB db = MakeExampleDB();
  auto result = db.Query(
      "SEQ VT (SELECT count(*) + 10 AS c10, "
      "100 * count(*) / greatest(count(*), 1) AS pct FROM works "
      "WHERE skill = 'SP')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // At [8,10): count=2 -> c10=12, pct=100.
  bool found = false;
  for (const Row& row : result->rows()) {
    if (row[2] == Value::Int(8)) {
      EXPECT_EQ(row[0], Value::Int(12));
      EXPECT_EQ(row[1], Value::Double(100.0));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MiddlewareTest, DisablingPlanCacheDropsExistingEntries) {
  TemporalDB db = MakeExampleDB();
  const char* sql = "SEQ VT (SELECT skill FROM works)";
  ASSERT_TRUE(db.Prepare(sql).ok());
  ASSERT_EQ(db.plan_cache_stats().entries, 1);
  // The toggle must not leave a bound plan behind: a plan cached before
  // a disable/mutate/enable sequence would otherwise be served stale.
  db.set_plan_cache_enabled(false);
  EXPECT_EQ(db.plan_cache_stats().entries, 0);
  ASSERT_TRUE(db.Insert("works", {Value::Int(20), Value::String("Zoe"),
                                  Value::String("SP"), Value::Int(22)})
                  .ok());
  db.set_plan_cache_enabled(true);
  auto result = db.Query(sql);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const Row& row : result->rows()) {
    if (row[0] == Value::String("SP") && row[1].AsInt() <= 20 &&
        row[2].AsInt() >= 22) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << result->ToString();
}

TEST(MiddlewareTest, PrepareOnUnknownTableReturnsStatus) {
  TemporalDB db = MakeExampleDB();
  // Both the plain and the snapshot path must report the unknown table
  // as a Status across the middleware boundary, never as an exception.
  auto plain = db.Prepare("SELECT * FROM no_such_table");
  EXPECT_FALSE(plain.ok());
  auto snapshot = db.Prepare("SEQ VT (SELECT count(*) AS c FROM nope)");
  EXPECT_FALSE(snapshot.ok());
  // Failed statements are not cached, and the cache still works after.
  EXPECT_EQ(db.plan_cache_stats().entries, 0);
  auto ok = db.Prepare("SEQ VT (SELECT skill FROM works)");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(MiddlewareTest, QueryWithThreadCountMatchesSequential) {
  TemporalDB db = MakeExampleDB();
  const char* sql =
      "SEQ VT (SELECT w.skill, count(*) AS cnt FROM works w, assign a "
      "WHERE w.skill = a.skill GROUP BY w.skill)";
  auto sequential = db.Query(sql);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  RewriteOptions parallel = db.options();
  parallel.num_threads = 4;
  auto threaded = db.Query(sql, parallel);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_TRUE(sequential->BagEquals(*threaded));
  // num_threads is not part of the plan identity: the second query hit
  // the plan cached by the first.
  EXPECT_GE(db.plan_cache_stats().hits, 1);
}

}  // namespace
}  // namespace periodk
