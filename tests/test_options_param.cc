// Value-parameterized sweep (TEST_P / INSTANTIATE_TEST_SUITE_P) over
// the rewriter's optimization matrix: every combination of coalesce
// hoisting x aggregation fusion x pre-aggregation x coalesce
// implementation must produce the identical, canonical result on the
// running example and on randomized inputs -- optimizations may only
// change cost, never semantics.
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "rewrite/period_enc.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

struct OptionCombo {
  bool hoist;
  bool fuse;
  bool preagg;
  CoalesceImpl impl;

  RewriteOptions ToOptions() const {
    RewriteOptions options;
    options.hoist_coalesce = hoist;
    options.fuse_aggregation = fuse;
    options.pre_aggregate = preagg;
    options.coalesce_impl = impl;
    return options;
  }
};

// Printable parameter name for ctest output.
std::string ComboName(const ::testing::TestParamInfo<OptionCombo>& info) {
  return std::string(info.param.hoist ? "hoist" : "nohoist") + "_" +
         (info.param.fuse ? "fused" : "unfused") + "_" +
         (info.param.preagg ? "preagg" : "nopreagg") + "_" +
         (info.param.impl == CoalesceImpl::kNative ? "native" : "window");
}

std::vector<OptionCombo> AllCombos() {
  std::vector<OptionCombo> combos;
  for (bool hoist : {true, false}) {
    for (bool fuse : {true, false}) {
      for (bool preagg : {true, false}) {
        for (CoalesceImpl impl :
             {CoalesceImpl::kNative, CoalesceImpl::kWindow}) {
          combos.push_back({hoist, fuse, preagg, impl});
        }
      }
    }
  }
  return combos;
}

class RewriteOptionsSweep : public ::testing::TestWithParam<OptionCombo> {};

TEST_P(RewriteOptionsSweep, RunningExampleInvariant) {
  SnapshotRewriter rewriter(kExampleDomain, GetParam().ToOptions());
  Catalog catalog = ExampleCatalog();
  Relation onduty = Execute(rewriter.Rewrite(QOnDuty()), catalog);
  EXPECT_TRUE(
      onduty.BagEquals(NaiveSnapshotEval(QOnDuty(), catalog, kExampleDomain)));
  Relation skillreq = Execute(rewriter.Rewrite(QSkillReq()), catalog);
  EXPECT_TRUE(skillreq.BagEquals(
      NaiveSnapshotEval(QSkillReq(), catalog, kExampleDomain)));
}

TEST_P(RewriteOptionsSweep, RandomizedInvariant) {
  constexpr TimeDomain kDomain{0, 14};
  Rng rng(0x715eed);  // fixed seed: every combo sees the same inputs
  SnapshotRewriter rewriter(kDomain, GetParam().ToOptions());
  for (int iter = 0; iter < 25; ++iter) {
    Catalog catalog = RandomEncodedCatalog(&rng, kDomain);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(3)));
    Relation ours = Execute(rewriter.Rewrite(query), catalog);
    Relation oracle = NaiveSnapshotEval(query, catalog, kDomain);
    ASSERT_TRUE(ours.BagEquals(oracle)) << query->ToString();
  }
}

TEST_P(RewriteOptionsSweep, CoalesceCountMatchesHoisting) {
  SnapshotRewriter rewriter(kExampleDomain, GetParam().ToOptions());
  PlanPtr rewritten = rewriter.Rewrite(QOnDuty());
  if (GetParam().hoist) {
    EXPECT_EQ(CountKind(rewritten, PlanKind::kCoalesce), 1);
  } else {
    EXPECT_GE(CountKind(rewritten, PlanKind::kCoalesce), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOptimizationCombos, RewriteOptionsSweep,
                         ::testing::ValuesIn(AllCombos()), ComboName);

}  // namespace
}  // namespace periodk
