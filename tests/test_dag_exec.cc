// DAG-aware execution: shared subplans (REWR reuses rewritten inputs in
// snapshot DISTINCT/EXCEPT) must execute exactly once per run, the memo
// must never hand a consumer a relation another consumer still needs,
// and memoized execution must be bag-equivalent to the memo-free
// reference executor on arbitrary plans.
#include <gtest/gtest.h>

#include "engine/executor.h"
#include "middleware/temporal_db.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

PlanPtr SnapshotScan(const char* table) {
  return MakeScan(table, Schema::FromNames({"a", "b"}));
}

TEST(DagExecTest, SharedSubplanExecutesOnce) {
  Rng rng(7);
  Catalog catalog = RandomEncodedCatalog(&rng, TimeDomain{0, 16}, 12);
  // One shared projection feeding two selections: 5 unique nodes, 7
  // after tree expansion.
  PlanPtr shared = MakeProjectColumns(
      MakeScan("r", Schema::FromNames({"a", "b", "a_begin", "a_end"})),
      {0, 1});
  PlanPtr plan = MakeUnionAll(MakeSelect(shared, Ge(Col(0), LitInt(1))),
                              MakeSelect(shared, Lt(Col(0), LitInt(1))));
  ExecStats memo;
  Relation memoized = Execute(plan, catalog, &memo);
  EXPECT_EQ(memo.nodes_executed, 5);
  EXPECT_EQ(memo.memo_hits, 1);
  ExecStats reference;
  Relation expanded = Execute(plan, catalog, &reference, /*memoize=*/false);
  EXPECT_EQ(reference.nodes_executed, 7);
  EXPECT_EQ(reference.memo_hits, 0);
  EXPECT_TRUE(memoized.BagEquals(expanded)) << memoized.ToString();
}

TEST(DagExecTest, MemoizedHandleNotStolenWhileConsumersRemain) {
  Rng rng(11);
  Catalog catalog = RandomEncodedCatalog(&rng, TimeDomain{0, 16}, 12);
  // Both consumers of the shared node are Distinct, which consumes
  // (Materializes) its input.  If the first consumer stole the memoized
  // relation, the second would aggregate over gutted rows.
  PlanPtr shared = MakeProjectColumns(
      MakeScan("r", Schema::FromNames({"a", "b", "a_begin", "a_end"})),
      {0, 1});
  PlanPtr plan = MakeUnionAll(MakeDistinct(shared), MakeDistinct(shared));
  ExecStats stats;
  Relation memoized = Execute(plan, catalog, &stats);
  EXPECT_EQ(stats.memo_hits, 1);
  Relation reference = Execute(plan, catalog, nullptr, /*memoize=*/false);
  EXPECT_TRUE(memoized.BagEquals(reference)) << memoized.ToString();
}

TEST(DagExecTest, RewrittenNestedDistinctSharesSplitInputs) {
  Rng rng(23);
  TimeDomain domain{0, 16};
  Catalog catalog = RandomEncodedCatalog(&rng, domain, 12);
  // distinct(distinct(r)): each snapshot DISTINCT splits its input
  // against itself, so the rewritten plan references every rewritten
  // child twice.
  PlanPtr query = MakeDistinct(MakeDistinct(SnapshotScan("r")));
  SnapshotRewriter rewriter(domain);
  PlanPtr plan = rewriter.Rewrite(query);
  ExecStats memo;
  Relation memoized = Execute(plan, catalog, &memo);
  ExecStats reference;
  Relation expanded = Execute(plan, catalog, &reference, /*memoize=*/false);
  // Two nesting levels -> two shared nodes -> two executions avoided;
  // the tree expansion nearly doubles per level instead.
  EXPECT_EQ(memo.memo_hits, 2);
  EXPECT_EQ(memo.nodes_executed, 6);
  EXPECT_EQ(reference.nodes_executed, 11);
  EXPECT_TRUE(memoized.BagEquals(expanded)) << plan->ToString();
}

TEST(DagExecTest, RewrittenExceptAllExecutesEachInputOnce) {
  Rng rng(31);
  TimeDomain domain{0, 16};
  Catalog catalog = RandomEncodedCatalog(&rng, domain, 12);
  // REWR(Q1 - Q2) = C(N(R1, R2) -bag- N(R2, R1)): R1 and R2 are each
  // referenced by both splits.
  PlanPtr query = MakeExceptAll(SnapshotScan("r"), SnapshotScan("s"));
  SnapshotRewriter rewriter(domain);
  PlanPtr plan = rewriter.Rewrite(query);
  ExecStats memo;
  Relation memoized = Execute(plan, catalog, &memo);
  EXPECT_EQ(memo.memo_hits, 2);
  ExecStats reference;
  Relation expanded = Execute(plan, catalog, &reference, /*memoize=*/false);
  EXPECT_EQ(reference.nodes_executed, memo.nodes_executed + 2);
  EXPECT_TRUE(memoized.BagEquals(expanded)) << plan->ToString();
}

TEST(DagExecTest, PlanToStringAnnotatesSharedNodes) {
  TimeDomain domain{0, 16};
  SnapshotRewriter rewriter(domain);
  PlanPtr plan = rewriter.Rewrite(MakeDistinct(SnapshotScan("r")));
  std::string text = plan->ToString();
  EXPECT_NE(text.find("[shared #1]"), std::string::npos) << text;
  EXPECT_NE(text.find("[shared #1, see above]"), std::string::npos) << text;
  // Trees stay annotation-free.
  PlanPtr tree = MakeDistinct(SnapshotScan("r"));
  EXPECT_EQ(tree->ToString().find("[shared"), std::string::npos);
}

TemporalDB ExampleDb() {
  TemporalDB db(kExampleDomain);
  EXPECT_TRUE(
      db.PutPeriodTable("works", WorksRelation(), "a_begin", "a_end").ok());
  EXPECT_TRUE(
      db.PutPeriodTable("assign", AssignRelation(), "a_begin", "a_end").ok());
  return db;
}

TEST(DagExecTest, MiddlewareExplainShowsDagAndStats) {
  TemporalDB db = ExampleDb();
  auto text = db.Explain(
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("[shared #"), std::string::npos) << *text;
  auto analyzed = db.ExplainAnalyze(
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)");
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(analyzed->find("memo hits"), std::string::npos) << *analyzed;
  EXPECT_NE(analyzed->find("result rows"), std::string::npos) << *analyzed;
}

TEST(DagExecPropertyTest, MemoizedMatchesMemoFreeReference) {
  Rng rng(0xDA6);
  TimeDomain domain{0, 16};
  for (int iter = 0; iter < 120; ++iter) {
    Catalog catalog =
        RandomEncodedCatalog(&rng, domain, 12, /*null_chance=*/0.15,
                             /*empty_validity_chance=*/0.1);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(3);
    SnapshotRewriter rewriter(domain);
    PlanPtr plan = rewriter.Rewrite(query);
    ExecStats memo;
    Relation memoized = Execute(plan, catalog, &memo);
    ExecStats reference;
    Relation expanded = Execute(plan, catalog, &reference, /*memoize=*/false);
    ASSERT_TRUE(memoized.BagEquals(expanded))
        << "iter " << iter << "\nquery:\n" << query->ToString()
        << "rewritten:\n" << plan->ToString();
    // Memoization may only remove work, never add it.
    ASSERT_LE(memo.nodes_executed, reference.nodes_executed);
    ASSERT_LE(memo.rows_materialized, reference.rows_materialized);
  }
}

}  // namespace
}  // namespace periodk
