// Unit tests for the multiset engine: expressions, schemas, and every
// physical operator.
#include <gtest/gtest.h>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/expr.h"
#include "engine/window.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

Row R(std::initializer_list<int64_t> vals) {
  Row row;
  for (int64_t v : vals) row.push_back(Value::Int(v));
  return row;
}

Relation IntRelation(const std::vector<std::string>& names,
                     const std::vector<Row>& rows) {
  Relation rel(Schema::FromNames(names));
  for (const Row& r : rows) rel.AddRow(r);
  return rel;
}

// --- Expressions. -----------------------------------------------------------

TEST(ExprTest, ColumnAndLiteral) {
  Row row = {Value::Int(7), Value::String("x")};
  EXPECT_EQ(Col(0)->Eval(row), Value::Int(7));
  EXPECT_EQ(Col(1)->Eval(row), Value::String("x"));
  EXPECT_EQ(LitInt(3)->Eval(row), Value::Int(3));
  EXPECT_THROW(Col(5)->Eval(row), EngineError);
}

TEST(ExprTest, ComparisonsWithNullPropagation) {
  Row row = {Value::Int(5), Value::Null()};
  EXPECT_EQ(Gt(Col(0), LitInt(3))->Eval(row), Value::Bool(true));
  EXPECT_EQ(Gt(Col(1), LitInt(3))->Eval(row), Value::Null());
  EXPECT_FALSE(Gt(Col(1), LitInt(3))->EvalBool(row));
}

TEST(ExprTest, KleeneLogic) {
  Row row;
  ExprPtr t = Lit(Value::Bool(true));
  ExprPtr f = Lit(Value::Bool(false));
  ExprPtr n = Lit(Value::Null());
  EXPECT_EQ(And(t, n)->Eval(row), Value::Null());
  EXPECT_EQ(And(f, n)->Eval(row), Value::Bool(false));
  EXPECT_EQ(Or(t, n)->Eval(row), Value::Bool(true));
  EXPECT_EQ(Or(f, n)->Eval(row), Value::Null());
  EXPECT_EQ(Not(n)->Eval(row), Value::Null());
  EXPECT_EQ(Not(f)->Eval(row), Value::Bool(true));
}

TEST(ExprTest, Arithmetic) {
  Row row;
  EXPECT_EQ(Add(LitInt(2), LitInt(3))->Eval(row), Value::Int(5));
  EXPECT_EQ(Mul(LitInt(2), Lit(Value::Double(1.5)))->Eval(row),
            Value::Double(3.0));
  // Division always yields double; division by zero yields NULL.
  EXPECT_EQ(Div(LitInt(7), LitInt(2))->Eval(row), Value::Double(3.5));
  EXPECT_EQ(Div(LitInt(7), LitInt(0))->Eval(row), Value::Null());
  EXPECT_EQ(Sub(LitInt(1), Lit(Value::Null()))->Eval(row), Value::Null());
  EXPECT_EQ(Neg(LitInt(4))->Eval(row), Value::Int(-4));
}

TEST(ExprTest, ScalarFunctions) {
  Row row;
  EXPECT_EQ(Func(ScalarFunc::kLeast, {LitInt(3), LitInt(1)})->Eval(row),
            Value::Int(1));
  EXPECT_EQ(Func(ScalarFunc::kGreatest, {LitInt(3), Lit(Value::Null())})
                ->Eval(row),
            Value::Int(3));
  EXPECT_EQ(Func(ScalarFunc::kAbs, {LitInt(-9)})->Eval(row), Value::Int(9));
  // year(): synthetic 365-day calendar anchored at 1992.
  EXPECT_EQ(Func(ScalarFunc::kYear, {LitInt(0)})->Eval(row),
            Value::Int(1992));
  EXPECT_EQ(Func(ScalarFunc::kYear, {LitInt(730)})->Eval(row),
            Value::Int(1994));
  EXPECT_EQ(
      Func(ScalarFunc::kIfNull, {Lit(Value::Null()), LitInt(1)})->Eval(row),
      Value::Int(1));
}

TEST(ExprTest, CaseInBetweenLike) {
  Row row = {Value::Int(5), Value::String("promo box")};
  ExprPtr case_expr = CaseWhen(
      {{Gt(Col(0), LitInt(10)), LitStr("big")},
       {Gt(Col(0), LitInt(3)), LitStr("mid")}},
      LitStr("small"));
  EXPECT_EQ(case_expr->Eval(row), Value::String("mid"));
  EXPECT_EQ(InList(Col(0), {LitInt(1), LitInt(5)})->Eval(row),
            Value::Bool(true));
  EXPECT_EQ(InList(Col(0), {LitInt(1)}, /*negated=*/true)->Eval(row),
            Value::Bool(true));
  EXPECT_EQ(Between(Col(0), LitInt(1), LitInt(5))->Eval(row),
            Value::Bool(true));
  EXPECT_EQ(Like(Col(1), LitStr("promo%"))->Eval(row), Value::Bool(true));
  EXPECT_EQ(Like(Col(1), LitStr("%box"))->Eval(row), Value::Bool(true));
  EXPECT_EQ(Like(Col(1), LitStr("_romo box"))->Eval(row), Value::Bool(true));
  EXPECT_EQ(Like(Col(1), LitStr("box%"))->Eval(row), Value::Bool(false));
  EXPECT_EQ(IsNull(Col(0))->Eval(row), Value::Bool(false));
  EXPECT_EQ(IsNull(Col(0), /*negated=*/true)->Eval(row), Value::Bool(true));
}

TEST(ExprTest, RemapAndCollect) {
  ExprPtr e = And(Eq(Col(0), Col(3)), Gt(Col(1), LitInt(5)));
  ExprPtr shifted = ShiftColumns(e, 2);
  std::vector<int> cols;
  CollectColumns(shifted, &cols);
  EXPECT_EQ(cols, (std::vector<int>{2, 5, 3}));
}

TEST(ExprTest, JoinPredicateEquiKeyAnalysis) {
  // Predicate over concat schema with left arity 2: #0 = #2 is an
  // equi-key; #1 > 5 is residual.
  ExprPtr pred = And(Eq(Col(0), Col(2)), Gt(Col(1), LitInt(5)));
  JoinAnalysis ja = AnalyzeJoinPredicate(pred, 2);
  ASSERT_EQ(ja.equi_keys.size(), 1u);
  EXPECT_EQ(ja.equi_keys[0], (std::pair<int, int>{0, 0}));
  EXPECT_FALSE(ja.overlap.has_value());
  ASSERT_NE(ja.residual, nullptr);
}

// --- Schema resolution. -----------------------------------------------------

TEST(SchemaTest, FindQualifiedAndAmbiguous) {
  Schema s({Column("e", "id"), Column("d", "id"), Column("d", "name")});
  EXPECT_EQ(s.Find("e", "id"), 0);
  EXPECT_EQ(s.Find("d", "id"), 1);
  EXPECT_EQ(s.Find("", "id"), -2);  // ambiguous
  EXPECT_EQ(s.Find("", "name"), 2);
  EXPECT_EQ(s.Find("", "salary"), -1);
  EXPECT_EQ(s.Find("", "NAME"), 2);  // case-insensitive
}

// --- Operators. -------------------------------------------------------------

TEST(ExecutorTest, SelectProject) {
  Catalog cat;
  cat.Put("t", IntRelation({"a", "b"}, {R({1, 10}), R({2, 20}), R({3, 30})}));
  PlanPtr plan = MakeProject(
      MakeSelect(MakeScan("t", Schema::FromNames({"a", "b"})),
                 Ge(Col(1), LitInt(20))),
      {Add(Col(0), Col(1))}, {Column("s")});
  Relation out = Execute(plan, cat);
  EXPECT_TRUE(out.BagEquals(IntRelation({"s"}, {R({22}), R({33})})));
}

TEST(ExecutorTest, HashJoinWithResidual) {
  Catalog cat;
  cat.Put("l", IntRelation({"a", "x"}, {R({1, 5}), R({2, 6}), R({2, 7})}));
  cat.Put("r", IntRelation({"a", "y"}, {R({2, 1}), R({2, 9}), R({3, 2})}));
  PlanPtr plan = MakeJoin(MakeScan("l", Schema::FromNames({"a", "x"})),
                          MakeScan("r", Schema::FromNames({"a", "y"})),
                          And(Eq(Col(0), Col(2)), Lt(Col(3), Col(1))));
  Relation out = Execute(plan, cat);
  // Matches: (2,6)x(2,1), (2,7)x(2,1); (2,*)x(2,9) fails residual.
  EXPECT_TRUE(out.BagEquals(IntRelation(
      {"a", "x", "a2", "y"}, {R({2, 6, 2, 1}), R({2, 7, 2, 1})})));
}

TEST(ExecutorTest, NestedLoopJoin) {
  Catalog cat;
  cat.Put("l", IntRelation({"a"}, {R({1}), R({5})}));
  cat.Put("r", IntRelation({"b"}, {R({3}), R({4})}));
  PlanPtr plan = MakeJoin(MakeScan("l", Schema::FromNames({"a"})),
                          MakeScan("r", Schema::FromNames({"b"})),
                          Lt(Col(0), Col(1)));
  EXPECT_TRUE(Execute(plan, cat)
                  .BagEquals(IntRelation({"a", "b"},
                                         {R({1, 3}), R({1, 4})})));
}

TEST(ExecutorTest, JoinNullKeysNeverMatch) {
  Catalog cat;
  Relation l(Schema::FromNames({"a"}));
  l.AddRow({Value::Null()});
  l.AddRow({Value::Int(1)});
  Relation r(Schema::FromNames({"b"}));
  r.AddRow({Value::Null()});
  r.AddRow({Value::Int(1)});
  cat.Put("l", std::move(l));
  cat.Put("r", std::move(r));
  PlanPtr plan = MakeJoin(MakeScan("l", Schema::FromNames({"a"})),
                          MakeScan("r", Schema::FromNames({"b"})),
                          Eq(Col(0), Col(1)));
  Relation out = Execute(plan, cat);
  EXPECT_EQ(out.size(), 1u);  // only (1, 1)
}

TEST(ExecutorTest, UnionAllKeepsDuplicates) {
  Catalog cat;
  cat.Put("l", IntRelation({"a"}, {R({1}), R({1})}));
  cat.Put("r", IntRelation({"a"}, {R({1}), R({2})}));
  PlanPtr plan = MakeUnionAll(MakeScan("l", Schema::FromNames({"a"})),
                              MakeScan("r", Schema::FromNames({"a"})));
  EXPECT_EQ(Execute(plan, cat).size(), 4u);
}

TEST(ExecutorTest, ExceptAllBagSemantics) {
  Catalog cat;
  cat.Put("l", IntRelation({"a"}, {R({1}), R({1}), R({1}), R({2})}));
  cat.Put("r", IntRelation({"a"}, {R({1}), R({3})}));
  PlanPtr plan = MakeExceptAll(MakeScan("l", Schema::FromNames({"a"})),
                               MakeScan("r", Schema::FromNames({"a"})));
  // 3 - 1 = 2 copies of (1); (2) survives.
  EXPECT_TRUE(Execute(plan, cat)
                  .BagEquals(IntRelation({"a"}, {R({1}), R({1}), R({2})})));
}

TEST(ExecutorTest, AntiJoinExactRows) {
  Catalog cat;
  cat.Put("l", IntRelation({"a"}, {R({1}), R({1}), R({2})}));
  cat.Put("r", IntRelation({"a"}, {R({1})}));
  PlanPtr plan = MakeAntiJoin(MakeScan("l", Schema::FromNames({"a"})),
                              MakeScan("r", Schema::FromNames({"a"})));
  // NOT EXISTS semantics: *all* copies of (1) are removed.
  EXPECT_TRUE(Execute(plan, cat).BagEquals(IntRelation({"a"}, {R({2})})));
}

TEST(ExecutorTest, GroupedAggregate) {
  Catalog cat;
  cat.Put("t", IntRelation({"g", "v"},
                           {R({1, 10}), R({1, 20}), R({2, 5}), R({2, 5})}));
  PlanPtr plan = MakeAggregate(
      MakeScan("t", Schema::FromNames({"g", "v"})), {Col(0, "g")},
      {Column("g")},
      {AggExpr{AggFunc::kCountStar, nullptr, "c"},
       AggExpr{AggFunc::kSum, Col(1), "s"},
       AggExpr{AggFunc::kAvg, Col(1), "a"},
       AggExpr{AggFunc::kMin, Col(1), "lo"},
       AggExpr{AggFunc::kMax, Col(1), "hi"}});
  Relation out = Execute(plan, cat);
  Relation expected(Schema::FromNames({"g", "c", "s", "a", "lo", "hi"}));
  expected.AddRow({Value::Int(1), Value::Int(2), Value::Int(30),
                   Value::Double(15.0), Value::Int(10), Value::Int(20)});
  expected.AddRow({Value::Int(2), Value::Int(2), Value::Int(10),
                   Value::Double(5.0), Value::Int(5), Value::Int(5)});
  EXPECT_TRUE(out.BagEquals(expected));
}

TEST(ExecutorTest, GlobalAggregateOnEmptyInputYieldsRow) {
  Catalog cat;
  cat.Put("t", IntRelation({"v"}, {}));
  PlanPtr plan =
      MakeAggregate(MakeScan("t", Schema::FromNames({"v"})), {}, {},
                    {AggExpr{AggFunc::kCountStar, nullptr, "c"},
                     AggExpr{AggFunc::kSum, Col(0), "s"}});
  Relation out = Execute(plan, cat);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0], Value::Int(0));
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST(ExecutorTest, CountIgnoresNulls) {
  Catalog cat;
  Relation t(Schema::FromNames({"v"}));
  t.AddRow({Value::Int(1)});
  t.AddRow({Value::Null()});
  t.AddRow({Value::Int(2)});
  cat.Put("t", std::move(t));
  PlanPtr plan =
      MakeAggregate(MakeScan("t", Schema::FromNames({"v"})), {}, {},
                    {AggExpr{AggFunc::kCount, Col(0), "c"},
                     AggExpr{AggFunc::kCountStar, nullptr, "cs"}});
  Relation out = Execute(plan, cat);
  EXPECT_EQ(out.rows()[0][0], Value::Int(2));
  EXPECT_EQ(out.rows()[0][1], Value::Int(3));
}

TEST(ExecutorTest, DistinctAndSort) {
  Catalog cat;
  cat.Put("t", IntRelation({"a"}, {R({2}), R({1}), R({2}), R({3})}));
  PlanPtr distinct = MakeDistinct(MakeScan("t", Schema::FromNames({"a"})));
  EXPECT_EQ(Execute(distinct, cat).size(), 3u);
  PlanPtr sorted = MakeSort(MakeScan("t", Schema::FromNames({"a"})),
                            {SortKey{0, false}});
  Relation out = Execute(sorted, cat);
  EXPECT_EQ(out.rows()[0][0], Value::Int(3));
  EXPECT_EQ(out.rows()[3][0], Value::Int(1));
}

TEST(ExecutorTest, UnknownTableThrows) {
  Catalog cat;
  EXPECT_THROW(Execute(MakeScan("missing", Schema::FromNames({"a"})), cat),
               EngineError);
}

// --- Window functions. ------------------------------------------------------

TEST(WindowTest, RunningSumRangePeersShareFrame) {
  Relation in = IntRelation(
      {"g", "t", "d"},
      {R({1, 5, 1}), R({1, 5, -1}), R({1, 3, 1}), R({1, 8, -1}),
       R({2, 3, 1})});
  WindowSpec spec{{0}, {{1, true}}, WindowFunc::kRunningSumRange, 2};
  Relation out = ApplyWindow(in, spec, "s");
  // Group 1 ordered by t: t=3 -> 1; t=5 (two peers, +1 -1) -> 1 for both;
  // t=8 -> 0.  Group 2: t=3 -> 1.
  auto value_at = [&](size_t i) { return out.rows()[i][3].AsInt(); };
  EXPECT_EQ(value_at(0), 1);  // (1,5,1)
  EXPECT_EQ(value_at(1), 1);  // (1,5,-1) peer
  EXPECT_EQ(value_at(2), 1);  // (1,3,1)
  EXPECT_EQ(value_at(3), 0);  // (1,8,-1)
  EXPECT_EQ(value_at(4), 1);  // (2,3,1)
}

TEST(WindowTest, RowNumberLagLead) {
  Relation in = IntRelation({"g", "t"},
                            {R({1, 30}), R({1, 10}), R({1, 20}), R({2, 7})});
  Relation rn = ApplyWindow(
      in, WindowSpec{{0}, {{1, true}}, WindowFunc::kRowNumber, -1}, "rn");
  EXPECT_EQ(rn.rows()[0][2].AsInt(), 3);  // t=30 is third in group 1
  EXPECT_EQ(rn.rows()[1][2].AsInt(), 1);
  EXPECT_EQ(rn.rows()[3][2].AsInt(), 1);
  Relation lag = ApplyWindow(
      in, WindowSpec{{0}, {{1, true}}, WindowFunc::kLag, 1}, "prev");
  EXPECT_EQ(lag.rows()[0][2].AsInt(), 20);
  EXPECT_TRUE(lag.rows()[1][2].is_null());
  Relation lead = ApplyWindow(
      in, WindowSpec{{0}, {{1, true}}, WindowFunc::kLead, 1}, "next");
  EXPECT_TRUE(lead.rows()[0][2].is_null());
  EXPECT_EQ(lead.rows()[1][2].AsInt(), 20);
}

}  // namespace
}  // namespace periodk
