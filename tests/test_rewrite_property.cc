// Randomized property test for Theorem 8.1 (the commutative diagram):
// for random period databases and random RA^agg queries, evaluating the
// REWR-rewritten query over the PERIODENC encoding must equal the naive
// snapshot-by-snapshot evaluation (the abstract model), for every
// combination of optimization options.  This is the strongest
// correctness check in the suite: it exercises selection, projection,
// join, union, bag difference, distinct and grouped/global aggregation
// in arbitrary nestings.
#include <gtest/gtest.h>

#include "baseline/naive.h"
#include "common/rng.h"
#include "engine/temporal_ops.h"
#include "rewrite/period_enc.h"
#include "rewrite/rewriter.h"
#include "tests/random_query.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 16};

Catalog RandomCatalog(Rng* rng) { return RandomEncodedCatalog(rng, kDomain); }

TEST(RewritePropertyTest, Theorem81CommutativeDiagram) {
  Rng rng(0x81081081);
  int checked = 0;
  for (int iter = 0; iter < 150; ++iter) {
    Catalog catalog = RandomCatalog(&rng);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(4)));
    Relation oracle = NaiveSnapshotEval(query, catalog, kDomain);
    RewriteOptions options;  // defaults: hoisted, fused, pre-aggregated
    SnapshotRewriter rewriter(kDomain, options);
    Relation ours = Execute(rewriter.Rewrite(query), catalog);
    ASSERT_TRUE(ours.BagEquals(oracle))
        << "query:\n" << query->ToString() << "\nrewritten:\n"
        << rewriter.Rewrite(query)->ToString() << "\nours:\n"
        << ours.ToString() << "\noracle:\n" << oracle.ToString();
    ++checked;
  }
  EXPECT_EQ(checked, 150);
}

TEST(RewritePropertyTest, OptimizationOptionsPreserveResults) {
  Rng rng(0x0f7105);
  for (int iter = 0; iter < 40; ++iter) {
    Catalog catalog = RandomCatalog(&rng);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(3);
    Relation oracle = NaiveSnapshotEval(query, catalog, kDomain);
    for (bool hoist : {true, false}) {
      for (bool fuse : {true, false}) {
        for (bool preagg : {true, false}) {
          RewriteOptions options;
          options.hoist_coalesce = hoist;
          options.fuse_aggregation = fuse;
          options.pre_aggregate = preagg;
          options.coalesce_impl =
              rng.Chance(0.5) ? CoalesceImpl::kNative : CoalesceImpl::kWindow;
          SnapshotRewriter rewriter(kDomain, options);
          Relation ours = Execute(rewriter.Rewrite(query), catalog);
          ASSERT_TRUE(ours.BagEquals(oracle))
              << "hoist=" << hoist << " fuse=" << fuse << " preagg=" << preagg
              << "\nquery:\n" << query->ToString();
        }
      }
    }
  }
}

TEST(RewritePropertyTest, OutputEncodingIsAlwaysCoalesced) {
  // Uniqueness: the result must be the canonical encoding -- coalescing
  // it again changes nothing, and re-encoding the decoded N^T relation
  // reproduces it exactly.
  Rng rng(0xca11ab1e);
  for (int iter = 0; iter < 60; ++iter) {
    Catalog catalog = RandomCatalog(&rng);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(static_cast<int>(rng.Uniform(3)));
    SnapshotRewriter rewriter(kDomain, RewriteOptions{});
    Relation ours = Execute(rewriter.Rewrite(query), catalog);
    Relation recoalesced = CoalesceRelation(ours, CoalesceImpl::kNative);
    ASSERT_TRUE(ours.BagEquals(recoalesced));
    Relation canonical =
        PeriodEnc(PeriodDec(ours, kDomain), ours.schema().Prefix(
                                                ours.schema().size() - 2));
    ASSERT_TRUE(ours.BagEquals(canonical));
  }
}

TEST(RewritePropertyTest, BaselinesAgreeOnPositiveAlgebra) {
  // For RA+ (no aggregation/difference/distinct) the baselines are
  // snapshot-reducible too (paper Table 1): they must be
  // snapshot-equivalent to the oracle (though not canonically encoded).
  Rng rng(0xba5e11);
  for (int iter = 0; iter < 60; ++iter) {
    Catalog catalog = RandomCatalog(&rng);
    RandomQueryGenerator gen(&rng);
    PlanPtr query = gen.Generate(2);
    if (ContainsKind(query, PlanKind::kAggregate) ||
        ContainsKind(query, PlanKind::kExceptAll) ||
        ContainsKind(query, PlanKind::kDistinct)) {
      continue;
    }
    Relation oracle = NaiveSnapshotEval(query, catalog, kDomain);
    for (SnapshotSemantics semantics :
         {SnapshotSemantics::kAlignment,
          SnapshotSemantics::kIntervalPreservation}) {
      RewriteOptions options;
      options.semantics = semantics;
      SnapshotRewriter rewriter(kDomain, options);
      Relation theirs = Execute(rewriter.Rewrite(query), catalog);
      ASSERT_TRUE(SnapshotEquivalentEncodings(theirs, oracle, kDomain))
          << SnapshotSemanticsName(semantics) << "\nquery:\n"
          << query->ToString();
    }
  }
}

}  // namespace
}  // namespace periodk
