// Tests for the Teradata-like baseline semantics (paper Table 1 /
// Sec. 1): statement modifiers provide gap rows *with* grouping but
// omit them for global aggregation (the inverse of
// snapshot-reducibility -> still the AG bug), and snapshot difference
// is unsupported (N/A), plus the Explain API.
#include <gtest/gtest.h>

#include "middleware/temporal_db.h"
#include "rewrite/period_enc.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

TemporalDB ExampleDb() {
  TemporalDB db(kExampleDomain);
  EXPECT_TRUE(
      db.PutPeriodTable("works", WorksRelation(), "a_begin", "a_end").ok());
  EXPECT_TRUE(
      db.PutPeriodTable("assign", AssignRelation(), "a_begin", "a_end").ok());
  return db;
}

RewriteOptions Teradata() {
  RewriteOptions options;
  options.semantics = SnapshotSemantics::kTeradata;
  return options;
}

TEST(TeradataSemanticsTest, GlobalAggregationOmitsGaps) {
  TemporalDB db = ExampleDb();
  auto result = db.Query(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')",
      Teradata());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Row& row : result->rows()) {
    ASSERT_NE(row[0], Value::Int(0)) << "Teradata mode produced a gap row";
  }
}

TEST(TeradataSemanticsTest, GroupedAggregationProvidesGaps) {
  // "provides gaps in the presence of grouping, while omitting them
  // otherwise" -- per observed group, the whole domain is covered.
  TemporalDB db = ExampleDb();
  auto result = db.Query(
      "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)",
      Teradata());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  TimePoint sp_covered = 0, ns_covered = 0;
  bool saw_zero = false;
  for (const Row& row : result->rows()) {
    TimePoint span = row[3].AsInt() - row[2].AsInt();
    if (row[0] == Value::String("SP")) sp_covered += span;
    if (row[0] == Value::String("NS")) ns_covered += span;
    if (row[1] == Value::Int(0)) saw_zero = true;
  }
  EXPECT_EQ(sp_covered, kExampleDomain.size());
  EXPECT_EQ(ns_covered, kExampleDomain.size());
  EXPECT_TRUE(saw_zero);
  // Snapshot semantics (ours) never emits count-0 rows for groups: a
  // group that has no tuples at time T does not exist at T.
  auto ours = db.Query(
      "SEQ VT (SELECT skill, count(*) AS cnt FROM works GROUP BY skill)");
  ASSERT_TRUE(ours.ok());
  for (const Row& row : ours->rows()) {
    ASSERT_NE(row[1], Value::Int(0));
  }
}

TEST(TeradataSemanticsTest, DifferenceUnsupported) {
  TemporalDB db = ExampleDb();
  auto result = db.Query(
      "SEQ VT (SELECT skill FROM assign EXCEPT ALL SELECT skill FROM works)",
      Teradata());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(TeradataSemanticsTest, PositiveAlgebraStillSnapshotEquivalent) {
  // For RA+ Teradata's modifiers are snapshot-reducible; results must be
  // snapshot-equivalent to ours (though not canonically encoded).
  TemporalDB db = ExampleDb();
  const char* sql =
      "SEQ VT (SELECT w.name, a.mach FROM works w, assign a "
      "WHERE w.skill = a.skill)";
  auto ours = db.Query(sql);
  auto theirs = db.Query(sql, Teradata());
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(theirs.ok());
  EXPECT_TRUE(SnapshotEquivalentEncodings(*ours, *theirs, kExampleDomain));
}

TEST(ExplainTest, RendersThePlanTree) {
  TemporalDB db = ExampleDb();
  auto text = db.Explain(
      "SEQ VT (SELECT count(*) AS cnt FROM works WHERE skill = 'SP')");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Coalesce"), std::string::npos) << *text;
  EXPECT_NE(text->find("SplitAggregate"), std::string::npos) << *text;
  EXPECT_NE(text->find("Scan works"), std::string::npos) << *text;
  auto bad = db.Explain("SELECT nope FROM works");
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace periodk
