// Tests for PERIODENC / PERIODENC^{-1} (paper Def 8.1): the encoding of
// N^T-relations as SQL period relations, multiplicity handling, and
// round-trip properties connecting the logical model to the engine.
#include "rewrite/period_enc.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "tests/running_example.h"

namespace periodk {
namespace {

constexpr TimeDomain kDomain{0, 24};

TEST(PeriodEncTest, MultiplicityBecomesDuplicateRows) {
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, kDomain);
  PeriodKRelation<NatSemiring> r(nt);
  TemporalElement<NatSemiring> te;
  te.Add(Interval(3, 10), 2);
  te.Add(Interval(12, 14), 1);
  r.Set({Value::String("x")}, te);
  Relation encoded = PeriodEnc(r, Schema::FromNames({"v"}));
  // 2 duplicates of [3,10) + 1 row of [12,14).
  EXPECT_EQ(encoded.size(), 3u);
  Relation expected = EncodedRelation(
      {"v"}, {{{Value::String("x")}, Interval(3, 10)},
              {{Value::String("x")}, Interval(3, 10)},
              {{Value::String("x")}, Interval(12, 14)}});
  EXPECT_TRUE(encoded.BagEquals(expected));
}

TEST(PeriodEncTest, DecodeCoalescesToTheCanonicalForm) {
  // Two rows [3,10) and [3,13) decode to {[3,10)->2, [10,13)->1}.
  Relation encoded = EncodedRelation(
      {"v"}, {{{Value::Int(30)}, Interval(3, 10)},
              {{Value::Int(30)}, Interval(3, 13)}});
  PeriodKRelation<NatSemiring> decoded = PeriodDec(encoded, kDomain);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded.semiring().ToString(decoded.At({Value::Int(30)})),
            "{[3, 10) -> 2, [10, 13) -> 1}");
}

TEST(PeriodEncTest, RoundTripFromLogicalModel) {
  Rng rng(0x0e2c0de);
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, kDomain);
  for (int iter = 0; iter < 50; ++iter) {
    PeriodKRelation<NatSemiring> r(nt);
    int tuples = static_cast<int>(rng.Uniform(5));
    for (int t = 0; t < tuples; ++t) {
      r.Set({Value::Int(rng.Range(0, 3)), Value::Int(rng.Range(0, 3))},
            nt.RandomValue(rng));
    }
    Schema schema = Schema::FromNames({"a", "b"});
    // PERIODENC^{-1}(PERIODENC(R)) == R (Def 8.1: the mappings are
    // mutually inverse on coalesced relations).
    PeriodKRelation<NatSemiring> back =
        PeriodDec(PeriodEnc(r, schema), kDomain);
    ASSERT_TRUE(back.Equal(r));
  }
}

TEST(PeriodEncTest, RoundTripFromEncoding) {
  // For an arbitrary engine encoding, Enc(Dec(.)) yields the canonical
  // snapshot-equivalent encoding.
  Rng rng(0x0e2c0df);
  for (int iter = 0; iter < 50; ++iter) {
    Relation raw(Schema::FromNames({"a", "a_begin", "a_end"}));
    int n = static_cast<int>(rng.Uniform(15));
    for (int i = 0; i < n; ++i) {
      TimePoint b = rng.Range(0, 22);
      TimePoint e = rng.Range(b + 1, 23);
      raw.AddRow({Value::Int(rng.Range(0, 2)), Value::Int(b), Value::Int(e)});
    }
    Relation canonical =
        PeriodEnc(PeriodDec(raw, kDomain), raw.schema().Prefix(1));
    ASSERT_TRUE(SnapshotEquivalentEncodings(raw, canonical, kDomain));
    // Canonical form is a fixpoint.
    Relation twice =
        PeriodEnc(PeriodDec(canonical, kDomain), raw.schema().Prefix(1));
    ASSERT_TRUE(canonical.BagEquals(twice));
  }
}

TEST(PeriodEncTest, DegenerateIntervalsAreDropped) {
  Relation raw(Schema::FromNames({"a", "a_begin", "a_end"}));
  raw.AddRow({Value::Int(1), Value::Int(5), Value::Int(5)});
  raw.AddRow({Value::Int(1), Value::Int(7), Value::Int(6)});
  EXPECT_TRUE(PeriodDec(raw, kDomain).empty());
}

TEST(PeriodEncTest, ArityMismatchThrows) {
  NatSemiring n;
  PeriodSemiring<NatSemiring> nt(n, kDomain);
  PeriodKRelation<NatSemiring> r(nt);
  r.Set({Value::Int(1), Value::Int(2)},
        TemporalElement<NatSemiring>(Interval(0, 5), 1));
  EXPECT_THROW(PeriodEnc(r, Schema::FromNames({"only_one"})), EngineError);
  Relation not_encoded(Schema::FromNames({"x"}));
  EXPECT_THROW(PeriodDec(not_encoded, kDomain), EngineError);
}

TEST(PeriodEncTest, SnapshotEquivalenceDetectsDifferences) {
  Relation a = EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 10)}});
  Relation b = EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 5)},
                                       {{Value::Int(1)}, Interval(5, 10)}});
  Relation c = EncodedRelation({"v"}, {{{Value::Int(1)}, Interval(0, 9)}});
  EXPECT_TRUE(SnapshotEquivalentEncodings(a, b, kDomain));
  EXPECT_FALSE(SnapshotEquivalentEncodings(a, c, kDomain));
}

}  // namespace
}  // namespace periodk
