// Unit tests for K-relations and their algebra (paper Section 4.1),
// including the paper's Example 4.1 verbatim and the bag aggregation /
// distinct operations used by Def 7.1.
#include "annotated/k_relation.h"

#include <gtest/gtest.h>

#include "annotated/k_relation_ops.h"
#include "semiring/bool_semiring.h"
#include "semiring/lineage_semiring.h"
#include "semiring/tropical_semiring.h"

namespace periodk {
namespace {

Row Strs(std::initializer_list<const char*> vals) {
  Row row;
  for (const char* v : vals) row.push_back(Value::String(v));
  return row;
}

TEST(KRelationTest, ZeroAnnotatedTuplesAreAbsent) {
  KRelation<NatSemiring> r((NatSemiring()));
  r.Add({Value::Int(1)}, 0);
  EXPECT_TRUE(r.empty());
  r.Add({Value::Int(1)}, 2);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.At({Value::Int(1)}), 2);
  EXPECT_EQ(r.At({Value::Int(9)}), 0);  // absent -> 0_K
  r.Set({Value::Int(1)}, 0);
  EXPECT_TRUE(r.empty());
}

TEST(KRelationTest, AddAccumulatesWithSemiringPlus) {
  KRelation<NatSemiring> n((NatSemiring()));
  n.Add({Value::Int(1)}, 2);
  n.Add({Value::Int(1)}, 3);
  EXPECT_EQ(n.At({Value::Int(1)}), 5);

  KRelation<BoolSemiring> b((BoolSemiring()));
  b.Add({Value::Int(1)}, true);
  b.Add({Value::Int(1)}, true);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.At({Value::Int(1)}));

  KRelation<TropicalSemiring> t((TropicalSemiring()));
  t.Add({Value::Int(1)}, 7);
  t.Add({Value::Int(1)}, 3);  // min
  EXPECT_EQ(t.At({Value::Int(1)}), 3);
}

TEST(KRelationTest, PaperExample41JoinAndProjection) {
  // works(name, skill) and assign(mach, skill) under N; the join then
  // projection onto mach yields (M1) with annotation 1*4 + 1*4 = 8.
  NatSemiring n;
  KRelation<NatSemiring> works(n), assign(n);
  works.Add(Strs({"Pete", "SP"}), 1);
  works.Add(Strs({"Bob", "SP"}), 1);
  works.Add(Strs({"Alice", "NS"}), 1);
  assign.Add(Strs({"M1", "SP"}), 4);
  assign.Add(Strs({"M2", "NS"}), 5);

  auto joined = Join(works, assign,
                     [](const Row& t) { return t[1] == t[3]; });
  auto result = Project(joined, [](const Row& t) { return Row{t[2]}; });
  EXPECT_EQ(result.At(Strs({"M1"})), 8);
  EXPECT_EQ(result.At(Strs({"M2"})), 5);

  // Homomorphism h: N -> B (nonzero -> true) commutes with the query
  // (paper: h(8) = true).
  KRelation<BoolSemiring> works_b((BoolSemiring())), assign_b((BoolSemiring()));
  for (const auto& [t, v] : works.tuples()) works_b.Add(t, v > 0);
  for (const auto& [t, v] : assign.tuples()) assign_b.Add(t, v > 0);
  auto result_b = Project(
      Join(works_b, assign_b, [](const Row& t) { return t[1] == t[3]; }),
      [](const Row& t) { return Row{t[2]}; });
  for (const auto& [t, v] : result.tuples()) {
    EXPECT_EQ(result_b.At(t), v > 0) << RowToString(t);
  }
}

TEST(KRelationTest, SelectMultipliesWithPredicate) {
  NatSemiring n;
  KRelation<NatSemiring> r(n);
  r.Add({Value::Int(1)}, 3);
  r.Add({Value::Int(2)}, 4);
  auto filtered = Select(r, [](const Row& t) { return t[0].AsInt() > 1; });
  EXPECT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.At({Value::Int(2)}), 4);
}

TEST(KRelationTest, ProjectionSumsAnnotations) {
  NatSemiring n;
  KRelation<NatSemiring> r(n);
  r.Add({Value::Int(1), Value::String("x")}, 2);
  r.Add({Value::Int(1), Value::String("y")}, 3);
  auto projected = Project(r, [](const Row& t) { return Row{t[0]}; });
  EXPECT_EQ(projected.At({Value::Int(1)}), 5);
}

TEST(KRelationTest, UnionAddsMonusSubtracts) {
  NatSemiring n;
  KRelation<NatSemiring> r(n), s(n);
  r.Add({Value::Int(1)}, 3);
  r.Add({Value::Int(2)}, 1);
  s.Add({Value::Int(1)}, 1);
  s.Add({Value::Int(3)}, 7);
  auto u = Union(r, s);
  EXPECT_EQ(u.At({Value::Int(1)}), 4);
  EXPECT_EQ(u.At({Value::Int(3)}), 7);
  auto d = Monus(r, s);
  EXPECT_EQ(d.At({Value::Int(1)}), 2);
  EXPECT_EQ(d.At({Value::Int(2)}), 1);
  EXPECT_EQ(d.At({Value::Int(3)}), 0);  // 0 monus 7
}

TEST(KRelationTest, LineageJoinUnionsWitnesses) {
  LineageSemiring lin;
  KRelation<LineageSemiring> r(lin), s(lin);
  r.Add({Value::Int(1)}, std::set<int>{1});
  s.Add({Value::Int(1)}, std::set<int>{2});
  auto joined = Join(r, s, [](const Row& t) { return t[0] == t[1]; });
  EXPECT_EQ(lin.ToString(joined.At({Value::Int(1), Value::Int(1)})),
            "{1,2}");
}

TEST(BagAggregateTest, GroupedWithMultiplicities) {
  NatSemiring n;
  KRelation<NatSemiring> r(n);
  // (g=1, v=10) x3, (g=1, v=20) x1, (g=2, v=5) x2.
  r.Add({Value::Int(1), Value::Int(10)}, 3);
  r.Add({Value::Int(1), Value::Int(20)}, 1);
  r.Add({Value::Int(2), Value::Int(5)}, 2);
  auto agg = BagAggregate(r, {0},
                          {{AggFunc::kCountStar, -1},
                           {AggFunc::kSum, 1},
                           {AggFunc::kAvg, 1},
                           {AggFunc::kMin, 1},
                           {AggFunc::kMax, 1}});
  // Group 1: count 4, sum 50, avg 12.5, min 10, max 20; annotated 1.
  Row g1 = {Value::Int(1), Value::Int(4), Value::Int(50),
            Value::Double(12.5), Value::Int(10), Value::Int(20)};
  EXPECT_EQ(agg.At(g1), 1);
  Row g2 = {Value::Int(2), Value::Int(2), Value::Int(10), Value::Double(5.0),
            Value::Int(5), Value::Int(5)};
  EXPECT_EQ(agg.At(g2), 1);
}

TEST(BagAggregateTest, GlobalOnEmptyInputReturnsNeutralRow) {
  // The behaviour whose absence over gaps is the AG bug.
  NatSemiring n;
  KRelation<NatSemiring> empty(n);
  auto agg = BagAggregate(empty, {},
                          {{AggFunc::kCountStar, -1}, {AggFunc::kSum, 0}});
  ASSERT_EQ(agg.size(), 1u);
  const Row& row = agg.tuples().begin()->first;
  EXPECT_EQ(row[0], Value::Int(0));
  EXPECT_TRUE(row[1].is_null());
  // Grouped aggregation over empty input stays empty.
  auto grouped = BagAggregate(empty, {0}, {{AggFunc::kCountStar, -1}});
  EXPECT_TRUE(grouped.empty());
}

TEST(BagDistinctTest, ClampsMultiplicities) {
  NatSemiring n;
  KRelation<NatSemiring> r(n);
  r.Add({Value::Int(1)}, 5);
  r.Add({Value::Int(2)}, 1);
  auto d = BagDistinct(r);
  EXPECT_EQ(d.At({Value::Int(1)}), 1);
  EXPECT_EQ(d.At({Value::Int(2)}), 1);
}

TEST(KRelationTest, EqualComparesTuplesAndAnnotations) {
  NatSemiring n;
  KRelation<NatSemiring> a(n), b(n);
  a.Add({Value::Int(1)}, 2);
  b.Add({Value::Int(1)}, 2);
  EXPECT_TRUE(a.Equal(b));
  b.Add({Value::Int(1)}, 1);
  EXPECT_FALSE(a.Equal(b));
}

}  // namespace
}  // namespace periodk
