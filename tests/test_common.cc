// Unit tests for the common layer: Status/Result, string utilities,
// LIKE matching and the deterministic RNG.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace periodk {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok_result = 42;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 42);
  Result<int> err_result = Status::NotFound("gone");
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  Result<std::string> moved = std::string("abc");
  EXPECT_EQ(moved->size(), 3u);
}

TEST(StrUtilTest, StrCatAndJoin) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(JoinMapped(std::vector<int>{1, 2}, "+",
                       [](int x) { return std::to_string(x * x); }),
            "1+4");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("group", "groups"));
}

TEST(StrUtilTest, SqlLikeMatch) {
  EXPECT_TRUE(SqlLikeMatch("promo box", "promo%"));
  EXPECT_TRUE(SqlLikeMatch("promo box", "%box"));
  EXPECT_TRUE(SqlLikeMatch("promo box", "%omo%"));
  EXPECT_TRUE(SqlLikeMatch("promo box", "_romo box"));
  EXPECT_TRUE(SqlLikeMatch("", ""));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  EXPECT_FALSE(SqlLikeMatch("abc", "abcd"));
  EXPECT_FALSE(SqlLikeMatch("abc", "b%"));
  EXPECT_TRUE(SqlLikeMatch("aXbXc", "a%b%c"));
  EXPECT_TRUE(SqlLikeMatch("green forest", "%green%"));
  // Backtracking case: first % match must retreat.
  EXPECT_TRUE(SqlLikeMatch("aab", "%ab"));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
  Rng r(123);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Range(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
    double d = r.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    ASSERT_LT(r.Uniform(10), 10u);
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace periodk
